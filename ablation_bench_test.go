// Ablation benchmarks for the design choices DESIGN.md calls out:
// operator fusion (intra-PE direct calls vs. serialized cross-PE links),
// and input queue capacity (backpressure granularity).
package streamorca_test

import (
	"fmt"
	"testing"
	"time"

	"streamorca/internal/ops"
	"streamorca/streams"
)

// ablationPipeline pushes b.N tuples through a 4-stage pipeline under
// the given fusion mode, reporting per-tuple end-to-end cost. FuseAll
// keeps every hop an in-process function call; FuseNone forces every hop
// through the serializing transport — the cost operator fusion exists to
// avoid (§2.1's COLA reference).
func ablationPipeline(b *testing.B, fusion streams.FusionMode, queueCap int) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
		QueueCap:        queueCap,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(inst.Close)
	collector := buniq("abl")
	ops.ResetCollector(collector)
	bl := streams.NewApp("Ablation")
	src := bl.AddOperator("src", "Beacon").Out(benchSchema).Param("count", fmt.Sprint(b.N))
	f1 := bl.AddOperator("f1", "Functor").In(benchSchema).Out(benchSchema).Param("addInt", "seq:1")
	f2 := bl.AddOperator("f2", "Functor").In(benchSchema).Out(benchSchema).Param("addInt", "seq:1")
	sink := bl.AddOperator("sink", "CollectSink").In(benchSchema).
		Param("collectorId", collector).Param("limit", "1")
	bl.Connect(src, 0, f1, 0)
	bl.Connect(f1, 0, f2, 0)
	bl.Connect(f2, 0, sink, 0)
	app, err := bl.Build(streams.BuildOptions{Fusion: fusion})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := inst.SAM.SubmitJob(app, streams.SubmitOptions{}); err != nil {
		b.Fatal(err)
	}
	for ops.Collector(collector).Finals() != 1 {
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkAblationFusedPipeline: all four operators in one PE.
func BenchmarkAblationFusedPipeline(b *testing.B) {
	ablationPipeline(b, streams.FuseAll, 0)
}

// BenchmarkAblationUnfusedPipeline: one PE per operator; every hop pays
// encode+decode through the transport.
func BenchmarkAblationUnfusedPipeline(b *testing.B) {
	ablationPipeline(b, streams.FuseNone, 0)
}

// BenchmarkAblationQueueCap measures the unfused pipeline under
// different input-queue capacities (backpressure granularity).
func BenchmarkAblationQueueCap(b *testing.B) {
	for _, cap := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("cap%d", cap), func(b *testing.B) {
			ablationPipeline(b, streams.FuseNone, cap)
		})
	}
}
