// Root benchmark harness: one benchmark (or benchmark pair) per
// experiment in DESIGN.md's per-experiment index. Run with:
//
//	go test -bench=. -benchmem .
package streamorca_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/apps"
	"streamorca/internal/baseline"
	"streamorca/internal/exp"
	"streamorca/internal/extjob"
	"streamorca/internal/graph"
	"streamorca/internal/ids"
	"streamorca/internal/ops"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
	"streamorca/orca"
	"streamorca/streams"
)

var benchSeq atomic.Int64

func buniq(p string) string { return fmt.Sprintf("bench-%s-%d", p, benchSeq.Add(1)) }

var benchSchema = streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})

func benchNoop() orca.Routine {
	return orca.NewRoutine("noop", func(*orca.SetupContext) error { return nil })
}

func benchInstance(b *testing.B, hosts ...string) *streams.Instance {
	b.Helper()
	specs := make([]streams.HostSpec, len(hosts))
	for i, h := range hosts {
		specs[i] = streams.HostSpec{Name: h}
	}
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts: specs, MetricsInterval: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(inst.Close)
	return inst
}

// BenchmarkE1SentimentAdaptation runs the full Figure 8 control loop
// (shift → threshold crossing → batch job → recovery) once per iteration.
func BenchmarkE1SentimentAdaptation(b *testing.B) {
	cfg := exp.E1Config{
		TweetPeriod: 50 * time.Microsecond, ShiftAt: 1500, RecentWindow: 200,
		Threshold: 1.0, JobLatency: 10 * time.Millisecond,
		Suppression: 100 * time.Millisecond, PullEvery: 2 * time.Millisecond,
		MaxDuration: 30 * time.Second,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2FailoverReaction runs the Figure 9 failover (kill → promote
// → restart → window refill) once per iteration and reports the failover
// latency.
func BenchmarkE2FailoverReaction(b *testing.B) {
	cfg := exp.E2Config{
		Window: 200 * time.Millisecond, TickPeriod: time.Millisecond,
		Sample: 20 * time.Millisecond, MaxDuration: 30 * time.Second,
	}
	var totalFailover time.Duration
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		totalFailover += res.FailoverLatency
	}
	b.ReportMetric(float64(totalFailover.Microseconds())/float64(b.N), "failover-us/op")
}

// BenchmarkE3DynamicComposition runs the Figure 10 expansion/contraction
// cycle once per iteration.
func BenchmarkE3DynamicComposition(b *testing.B) {
	cfg := exp.E3Config{
		ProfilePeriod: 50 * time.Microsecond, Threshold: 500,
		PullEvery: 2 * time.Millisecond, MaxDuration: 30 * time.Second,
	}
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPipeline submits a 3-PE pipeline pushing b.N tuples and waits for
// the final punctuation; the reported ns/op is per tuple end-to-end.
func benchPipeline(b *testing.B, withOrca bool) {
	inst := benchInstance(b, "h1")
	collector := buniq("e5")
	ops.ResetCollector(collector)
	bl := streams.NewApp("BenchPipe")
	src := bl.AddOperator("src", "Beacon").Out(benchSchema).Param("count", fmt.Sprint(b.N))
	fn := bl.AddOperator("fn", "Functor").In(benchSchema).Out(benchSchema).Param("addInt", "seq:1")
	sink := bl.AddOperator("sink", "CollectSink").In(benchSchema).
		Param("collectorId", collector).Param("limit", "1")
	bl.Connect(src, 0, fn, 0)
	bl.Connect(fn, 0, sink, 0)
	app, err := bl.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		b.Fatal(err)
	}

	var svc *orca.Service
	if withOrca {
		svc, err = orca.NewRoutineService(orca.Config{
			Name: buniq("orca"), SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
		}, benchNoop())
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.RegisterApplication(app); err != nil {
			b.Fatal(err)
		}
		if err := svc.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(svc.Stop)
		if err := svc.RegisterEventScope(orca.NewOperatorMetricScope("all")); err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		b.Cleanup(func() { close(stop) })
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-time.After(2 * time.Millisecond):
					inst.FlushMetrics()
					svc.PullMetricsNow()
				}
			}
		}()
	}

	b.ResetTimer()
	if withOrca {
		if _, err := svc.SubmitApplication("BenchPipe", nil); err != nil {
			b.Fatal(err)
		}
	} else {
		if _, err := inst.SAM.SubmitJob(app, streams.SubmitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	for ops.Collector(collector).Finals() != 1 {
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkE5HotPathNoOrca measures per-tuple pipeline cost without an
// orchestrator attached.
func BenchmarkE5HotPathNoOrca(b *testing.B) { benchPipeline(b, false) }

// BenchmarkE5HotPathWithOrca measures the same pipeline with an
// orchestrator pulling broad metric scopes every 2 ms — §3's claim is
// that the difference stays marginal.
func BenchmarkE5HotPathWithOrca(b *testing.B) { benchPipeline(b, true) }

// BenchmarkE6FailureReactionAuto measures kill→running latency under
// SAM's auto-restart flag.
func BenchmarkE6FailureReactionAuto(b *testing.B) {
	inst := benchInstance(b, "h1")
	collector := buniq("e6")
	ops.ResetCollector(collector)
	bl := streams.NewApp("BenchAuto")
	src := bl.AddOperator("src", "Beacon").Out(benchSchema).Param("count", "0").Param("period", "1ms")
	sink := bl.AddOperator("sink", "CollectSink").In(benchSchema).
		Param("collectorId", collector).Param("limit", "10")
	bl.Connect(src, 0, sink, 0)
	app, err := bl.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		b.Fatal(err)
	}
	for i := range app.PEs {
		app.PEs[i].Restart = true
	}
	job, err := inst.SAM.SubmitJob(app, streams.SubmitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	sinkPE := findPE(b, inst, job, "sink")
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		if err := inst.SAM.KillPE(sinkPE, "bench"); err != nil {
			b.Fatal(err)
		}
		waitRestarts(b, inst, job, sinkPE, i)
	}
}

// BenchmarkE6FailureReactionOrca measures the same recovery through the
// orchestrator's PE-failure handler (one extra hop).
func BenchmarkE6FailureReactionOrca(b *testing.B) {
	inst := benchInstance(b, "h1")
	collector := buniq("e6o")
	ops.ResetCollector(collector)
	bl := streams.NewApp("BenchOrcaRestart")
	src := bl.AddOperator("src", "Beacon").Out(benchSchema).Param("count", "0").Param("period", "1ms")
	sink := bl.AddOperator("sink", "CollectSink").In(benchSchema).
		Param("collectorId", collector).Param("limit", "10")
	bl.Connect(src, 0, sink, 0)
	app, err := bl.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		b.Fatal(err)
	}
	policy := orca.NewRoutine("restart", func(sc *orca.SetupContext) error {
		return sc.Subscribe(orca.OnPEFailure(
			orca.NewPEFailureScope("f").AddApplicationFilter("BenchOrcaRestart"),
			func(ctx *orca.PEFailureContext, act *orca.Actions) error {
				return act.RestartPE(ctx.PE)
			}))
	})
	svc, err := orca.NewRoutineService(orca.Config{
		Name: buniq("orca"), SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, policy)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		b.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Stop)
	job, err := svc.SubmitApplication("BenchOrcaRestart", nil)
	if err != nil {
		b.Fatal(err)
	}
	sinkPE := findPE(b, inst, job, "sink")
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		if err := svc.KillPE(sinkPE, "bench"); err != nil {
			b.Fatal(err)
		}
		waitRestarts(b, inst, job, sinkPE, i)
	}
}

func findPE(b *testing.B, inst *streams.Instance, job streams.JobID, op string) streams.PEID {
	b.Helper()
	info, ok := inst.SAM.Job(job)
	if !ok {
		b.Fatal("job missing")
	}
	for _, p := range info.PEs {
		for _, o := range p.Operators {
			if o == op {
				return p.ID
			}
		}
	}
	b.Fatalf("no PE holds %q", op)
	return 0
}

func waitRestarts(b *testing.B, inst *streams.Instance, job streams.JobID, pe streams.PEID, want int) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, _ := inst.SAM.Job(job)
		for _, p := range info.PEs {
			if p.ID == pe && p.State == "running" && p.Restarts >= want {
				return
			}
		}
		time.Sleep(20 * time.Microsecond)
	}
	b.Fatalf("PE never reached %d restarts", want)
}

// e7Graph builds a deep composite nest with many operators for the scope
// matching comparison.
func e7Graph(b *testing.B, depth, opsPerLevel int) *graph.Graph {
	b.Helper()
	app := &adl.Application{Name: "E7"}
	parent := ""
	intAttr := []tuple.Attribute{{Name: "v", Type: tuple.Int}}
	var peOps []string
	for d := 0; d < depth; d++ {
		name := fmt.Sprintf("comp%d", d)
		app.Composites = append(app.Composites, adl.CompositeInstance{
			Name: name, Kind: fmt.Sprintf("kind%d", d), Parent: parent,
		})
		for i := 0; i < opsPerLevel; i++ {
			opName := fmt.Sprintf("op_%d_%d", d, i)
			app.Operators = append(app.Operators, adl.Operator{
				Name: opName, Kind: "Split", Composite: name,
				Outputs: []adl.Port{{Schema: intAttr}},
			})
			peOps = append(peOps, opName)
		}
		parent = name
	}
	app.PEs = []adl.PE{{Index: 0, Operators: peOps}}
	if err := app.Validate(); err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(app, 1, map[int]ids.PEID{0: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkE7ScopeMatchFilterAPI evaluates composite-containment checks
// through the memoised chain lookup the scope filters use (§4.1).
func BenchmarkE7ScopeMatchFilterAPI(b *testing.B) {
	g := e7Graph(b, 8, 16)
	names := g.OperatorNames()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := names[i%len(names)]
		g.InCompositeType(op, "kind0")
	}
}

// BenchmarkE7NaiveSQL evaluates the same predicate with the recursive
// SQL-style CompPairs closure the paper contrasts against.
func BenchmarkE7NaiveSQL(b *testing.B) {
	g := e7Graph(b, 8, 16)
	names := g.OperatorNames()
	q := graph.NaiveQuery{CompositeKinds: []string{"kind0"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := names[i%len(names)]
		graph.NaiveMatch(g, op, "m", q)
	}
}

// BenchmarkE8EventDelivery measures user events through the full match →
// queue → dispatch pipeline (§4.2).
func BenchmarkE8EventDelivery(b *testing.B) {
	inst := benchInstance(b, "h1")
	var delivered atomic.Int64
	logic := orca.NewRoutine("count", func(sc *orca.SetupContext) error {
		return sc.Subscribe(orca.OnUserEvent(orca.NewUserEventScope("all"),
			func(ctx *orca.UserEventContext, act *orca.Actions) error {
				delivered.Add(1)
				return nil
			}))
	})
	svc, err := orca.NewRoutineService(orca.Config{
		Name: buniq("orca"), SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, logic)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Stop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.RaiseUserEvent("tick", nil)
	}
	for delivered.Load() < int64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
}

// BenchmarkE9DependencyScheduler measures one Figure 7 start/stop/GC
// cycle of the application-set manager per iteration.
func BenchmarkE9DependencyScheduler(b *testing.B) {
	inst := benchInstance(b, "h1", "h2")
	svc, err := orca.NewRoutineService(orca.Config{
		Name: buniq("orca"), SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, benchNoop())
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Stop)
	names := []string{"fb", "tw", "fox", "msnbc", "sn"}
	for _, n := range names {
		bl := streams.NewApp(n)
		src := bl.AddOperator("src", "Beacon").Out(benchSchema).Param("count", "0").Param("period", "1ms")
		sink := bl.AddOperator("sink", "CountSink").In(benchSchema)
		bl.Connect(src, 0, sink, 0)
		app, err := bl.Build(streams.BuildOptions{Fusion: streams.FuseAll})
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.RegisterApplication(app); err != nil {
			b.Fatal(err)
		}
		if err := svc.RegisterAppConfig(orca.AppConfig{
			ID: n, AppName: n, GarbageCollectable: true, GCTimeout: time.Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for _, dep := range []string{"fb", "tw"} {
		if err := svc.RegisterDependency("sn", dep, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.StartApp("sn"); err != nil {
			b.Fatal(err)
		}
		if err := svc.StopApp("sn"); err != nil {
			b.Fatal(err)
		}
		// Wait out the GC of fb/tw so the next iteration resubmits.
		deadline := time.Now().Add(5 * time.Second)
		for len(svc.RunningConfigs()) != 0 {
			if time.Now().After(deadline) {
				b.Fatal("GC never drained")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// BenchmarkE10Embedded runs the Figure 1 embedded-adaptation sentiment
// graph to completion (adaptation included) — the baseline whose control
// logic rides the data path.
func BenchmarkE10Embedded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst := benchInstance(b, "h1")
		modelID, storeID := buniq("m"), buniq("s")
		extjob.SetModel(modelID, extjob.NewModel("flash", "screen"))
		collector := buniq("c")
		ops.ResetCollector(collector)
		app, err := baseline.EmbeddedSentimentApp(baseline.EmbeddedConfig{
			SentimentConfig: apps.SentimentConfig{
				Name: "Embedded", Collector: collector, ModelID: modelID, StoreID: storeID,
				Seed: 42, Count: 4000, Causes: "flash,screen",
				ShiftAt: 2000, CausesAfter: "antenna", RecentWindow: 200,
			},
			RunnerID: buniq("r"), Threshold: 1.0,
			Suppression: 50 * time.Millisecond, JobLatency: 5 * time.Millisecond, MinSupport: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{}); err != nil {
			b.Fatal(err)
		}
		for ops.Collector(collector).Finals() != 1 {
			time.Sleep(200 * time.Microsecond)
		}
		inst.Close()
	}
}

// BenchmarkE10Orchestrated runs the same pipeline without embedded
// control operators, the adaptation living in a reusable ORCA policy.
func BenchmarkE10Orchestrated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst := benchInstance(b, "h1")
		modelID, storeID := buniq("m"), buniq("s")
		extjob.SetModel(modelID, extjob.NewModel("flash", "screen"))
		collector := buniq("c")
		ops.ResetCollector(collector)
		app, err := apps.SentimentApp(apps.SentimentConfig{
			Name: "Clean", Collector: collector, ModelID: modelID, StoreID: storeID,
			Seed: 42, Count: 4000, Causes: "flash,screen",
			ShiftAt: 2000, CausesAfter: "antenna", RecentWindow: 200,
		})
		if err != nil {
			b.Fatal(err)
		}
		svc, err := orca.NewRoutineService(orca.Config{
			Name: buniq("orca"), SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
		}, benchNoop())
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.RegisterApplication(app); err != nil {
			b.Fatal(err)
		}
		if err := svc.Start(); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.SubmitApplication("Clean", nil); err != nil {
			b.Fatal(err)
		}
		for ops.Collector(collector).Finals() != 1 {
			time.Sleep(200 * time.Microsecond)
		}
		svc.Stop()
		inst.Close()
	}
}

// BenchmarkGraphInspection covers the §4.2 inspection queries the ORCA
// logic combines with event contexts.
func BenchmarkGraphInspection(b *testing.B) {
	g := e7Graph(b, 4, 64)
	names := g.OperatorNames()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := names[i%len(names)]
		if _, ok := g.PEOfOperator(op); !ok {
			b.Fatal("lookup failed")
		}
		g.EnclosingComposite(op)
	}
}
