// Command adltool inspects ADL artifacts and the operator model: it can
// emit the packaged use-case applications as ADL JSON, validate an ADL
// file, answer the containment/partition queries the ORCA service
// offers at runtime, and dump the operator-model catalog the compiler
// validates applications against.
//
// Usage:
//
//	go run ./cmd/adltool emit -app sentiment > sentiment.adl.json
//	go run ./cmd/adltool validate sentiment.adl.json
//	go run ./cmd/adltool query sentiment.adl.json -op analysis.causes
//	go run ./cmd/adltool pemap sentiment.adl.json
//	go run ./cmd/adltool catalog [-kind Beacon]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/apps"
	"streamorca/internal/opapi"

	// Register the embedded-adaptation baseline kinds so the catalog
	// covers every operator the repository ships.
	_ "streamorca/internal/baseline"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "emit":
		emit(os.Args[2:])
	case "validate":
		validate(os.Args[2:])
	case "query":
		query(os.Args[2:])
	case "pemap":
		pemap(os.Args[2:])
	case "catalog":
		catalog(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adltool emit|validate|query|pemap|catalog ...")
	os.Exit(2)
}

// catalog prints the registered operator models: every kind's ports and
// declared parameters, or one kind in detail with -kind.
func catalog(args []string) {
	fs := flag.NewFlagSet("catalog", flag.ExitOnError)
	kind := fs.String("kind", "", "print only this operator kind")
	_ = fs.Parse(args)
	kinds := opapi.Default.Kinds()
	if *kind != "" {
		if !opapi.Default.Registered(*kind) {
			log.Fatalf("unknown operator kind %q", *kind)
		}
		kinds = []string{*kind}
	}
	for i, k := range kinds {
		if i > 0 {
			fmt.Println()
		}
		printModel(k, opapi.Default.Model(k))
	}
}

func printModel(kind string, m *opapi.OpModel) {
	if m == nil {
		fmt.Printf("operator %s (no declared model)\n", kind)
		return
	}
	fmt.Printf("operator %s — %s\n", kind, m.Doc)
	fmt.Printf("  inputs:  %s%s\n", m.Inputs, attrList(m.Inputs))
	fmt.Printf("  outputs: %s%s\n", m.Outputs, attrList(m.Outputs))
	if len(m.Params) == 0 {
		fmt.Println("  params:  none")
		return
	}
	fmt.Println("  params:")
	for _, p := range m.Params {
		var notes []string
		if p.Required {
			notes = append(notes, "required")
		} else if p.Default != "" {
			notes = append(notes, "default "+p.Default)
		}
		if len(p.Enum) > 0 {
			notes = append(notes, "one of "+strings.Join(p.Enum, "|"))
		}
		bound := func(v float64) string {
			if p.Type == opapi.ParamDuration {
				// Duration bounds are stored in seconds; show units.
				return time.Duration(v * float64(time.Second)).String()
			}
			return fmt.Sprintf("%g", v)
		}
		if p.Min != nil {
			notes = append(notes, "min "+bound(*p.Min))
		}
		if p.Max != nil {
			notes = append(notes, "max "+bound(*p.Max))
		}
		note := ""
		if len(notes) > 0 {
			note = " (" + strings.Join(notes, ", ") + ")"
		}
		fmt.Printf("    %-14s %-9s%s — %s\n", p.Name, p.Type, note, p.Doc)
	}
}

func attrList(ps opapi.PortSpec) string {
	if len(ps.Attrs) == 0 {
		return ""
	}
	parts := make([]string, len(ps.Attrs))
	for i, a := range ps.Attrs {
		parts[i] = fmt.Sprintf("%s %s", a.Type, a.Name)
	}
	return " requiring <" + strings.Join(parts, ", ") + ">"
}

func emit(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	name := fs.String("app", "sentiment", "sentiment | trend | c1 | c2 | c3")
	_ = fs.Parse(args)
	var (
		app *adl.Application
		err error
	)
	social := apps.SocialConfig{StoreID: "profiles"}
	switch *name {
	case "sentiment":
		app, err = apps.SentimentApp(apps.SentimentConfig{
			Name: "Sentiment", Collector: "display", ModelID: "model", StoreID: "corpus",
		})
	case "trend":
		app, err = apps.TrendApp(apps.TrendConfig{})
	case "c1":
		app, err = apps.C1App("TwitterStreamReader", "twitter", social)
	case "c2":
		app, err = apps.C2App("TwitterQuery", social)
	case "c3":
		app, err = apps.C3App("AttributeAggregator", social)
	default:
		log.Fatalf("unknown app %q", *name)
	}
	if err != nil {
		log.Fatal(err)
	}
	data, err := app.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
}

func load(path string) *adl.Application {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	app, err := adl.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	return app
}

func validate(args []string) {
	if len(args) < 1 {
		log.Fatal("validate: need an ADL file")
	}
	app := load(args[0])
	fmt.Printf("%s: valid (%d operators, %d composites, %d connections, %d PEs)\n",
		app.Name, len(app.Operators), len(app.Composites), len(app.Connects), len(app.PEs))
}

func query(args []string) {
	if len(args) < 1 {
		log.Fatal("query: need an ADL file")
	}
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	op := fs.String("op", "", "operator instance to inspect")
	_ = fs.Parse(args[1:])
	app := load(args[0])
	if *op == "" {
		log.Fatal("query: -op required")
	}
	o := app.OperatorByName(*op)
	if o == nil {
		log.Fatalf("no operator %q in %s", *op, app.Name)
	}
	fmt.Printf("operator:   %s (kind %s)\n", o.Name, o.Kind)
	fmt.Printf("composites: %v (types %v)\n", app.CompositeChain(*op), app.CompositeKindChain(*op))
	fmt.Printf("partition:  PE %d (fused with %v)\n", app.PEOfOperator(*op), app.OperatorsInPE(app.PEOfOperator(*op)))
	fmt.Printf("upstream:   %v\n", app.UpstreamOf(*op))
	fmt.Printf("downstream: %v\n", app.DownstreamOf(*op))
}

func pemap(args []string) {
	if len(args) < 1 {
		log.Fatal("pemap: need an ADL file")
	}
	app := load(args[0])
	for _, pe := range app.PEs {
		pool := pe.Pool
		if pool == "" {
			pool = adl.DefaultPool
		}
		fmt.Printf("PE %d (pool %s): %v\n", pe.Index, pool, pe.Operators)
	}
}
