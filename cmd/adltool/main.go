// Command adltool inspects ADL artifacts: it can emit the packaged
// use-case applications as ADL JSON, validate an ADL file, and answer
// the containment/partition queries the ORCA service offers at runtime.
//
// Usage:
//
//	go run ./cmd/adltool emit -app sentiment > sentiment.adl.json
//	go run ./cmd/adltool validate sentiment.adl.json
//	go run ./cmd/adltool query sentiment.adl.json -op analysis.causes
//	go run ./cmd/adltool pemap sentiment.adl.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"streamorca/internal/adl"
	"streamorca/internal/apps"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "emit":
		emit(os.Args[2:])
	case "validate":
		validate(os.Args[2:])
	case "query":
		query(os.Args[2:])
	case "pemap":
		pemap(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adltool emit|validate|query|pemap ...")
	os.Exit(2)
}

func emit(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	name := fs.String("app", "sentiment", "sentiment | trend | c1 | c2 | c3")
	_ = fs.Parse(args)
	var (
		app *adl.Application
		err error
	)
	social := apps.SocialConfig{StoreID: "profiles"}
	switch *name {
	case "sentiment":
		app, err = apps.SentimentApp(apps.SentimentConfig{
			Name: "Sentiment", Collector: "display", ModelID: "model", StoreID: "corpus",
		})
	case "trend":
		app, err = apps.TrendApp(apps.TrendConfig{})
	case "c1":
		app, err = apps.C1App("TwitterStreamReader", "twitter", social)
	case "c2":
		app, err = apps.C2App("TwitterQuery", social)
	case "c3":
		app, err = apps.C3App("AttributeAggregator", social)
	default:
		log.Fatalf("unknown app %q", *name)
	}
	if err != nil {
		log.Fatal(err)
	}
	data, err := app.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
}

func load(path string) *adl.Application {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	app, err := adl.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	return app
}

func validate(args []string) {
	if len(args) < 1 {
		log.Fatal("validate: need an ADL file")
	}
	app := load(args[0])
	fmt.Printf("%s: valid (%d operators, %d composites, %d connections, %d PEs)\n",
		app.Name, len(app.Operators), len(app.Composites), len(app.Connects), len(app.PEs))
}

func query(args []string) {
	if len(args) < 1 {
		log.Fatal("query: need an ADL file")
	}
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	op := fs.String("op", "", "operator instance to inspect")
	_ = fs.Parse(args[1:])
	app := load(args[0])
	if *op == "" {
		log.Fatal("query: -op required")
	}
	o := app.OperatorByName(*op)
	if o == nil {
		log.Fatalf("no operator %q in %s", *op, app.Name)
	}
	fmt.Printf("operator:   %s (kind %s)\n", o.Name, o.Kind)
	fmt.Printf("composites: %v (types %v)\n", app.CompositeChain(*op), app.CompositeKindChain(*op))
	fmt.Printf("partition:  PE %d (fused with %v)\n", app.PEOfOperator(*op), app.OperatorsInPE(app.PEOfOperator(*op)))
	fmt.Printf("upstream:   %v\n", app.UpstreamOf(*op))
	fmt.Printf("downstream: %v\n", app.DownstreamOf(*op))
}

func pemap(args []string) {
	if len(args) < 1 {
		log.Fatal("pemap: need an ADL file")
	}
	app := load(args[0])
	for _, pe := range app.PEs {
		pool := pe.Pool
		if pool == "" {
			pool = adl.DefaultPool
		}
		fmt.Printf("PE %d (pool %s): %v\n", pe.Index, pool, pe.Operators)
	}
}
