// Command expdriver regenerates every experiment from the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// the recorded results):
//
//	e1  Figure 8  — sentiment adaptation to data-distribution change
//	e2  Figure 9  — replica failover on PE failure
//	e3  Figure 10 — on-demand dynamic composition
//	e4  §5 LoC    — policy vs application code sizes
//	e5  §3        — hot-path overhead of an attached orchestrator
//	e6  §3        — failure-reaction latency decomposition
//
// Usage:
//
//	go run ./cmd/expdriver -exp all
//	go run ./cmd/expdriver -exp e2 -out results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"streamorca/internal/exp"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: e1|e2|e3|e4|e5|e6|all")
	outDir := flag.String("out", "", "directory for CSV output (default: stdout only)")
	root := flag.String("root", ".", "repository root (for the e4 line count)")
	flag.Parse()

	runs := map[string]func(string) error{
		"e1": runE1, "e2": runE2, "e3": runE3,
		"e4": func(string) error { return runE4(*root) },
		"e5": runE5, "e6": runE6,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6"}
	want := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		want = order
	}
	for _, name := range want {
		run, ok := runs[name]
		if !ok {
			log.Fatalf("unknown experiment %q (want e1..e6 or all)", name)
		}
		fmt.Printf("==== experiment %s ====\n", name)
		if err := run(*outDir); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}
}

func writeCSV(outDir, name, contents string) error {
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(outDir, name), []byte(contents), 0o644)
}

func runE1(outDir string) error {
	res, err := exp.RunE1(exp.DefaultE1())
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("epoch,unknown_to_known_ratio\n")
	for _, p := range res.Series {
		fmt.Fprintf(&b, "%d,%.4f\n", p.Epoch, p.Ratio)
	}
	fmt.Print(b.String())
	fmt.Printf("threshold crossed at epoch %d; batch jobs: %d; model v%d (%v); recovered at epoch %d\n",
		res.CrossEpoch, res.Triggers, res.ModelVersion, res.FinalCauses, res.RecoverEpoch)
	return writeCSV(outDir, "e1_figure8.csv", b.String())
}

func runE2(outDir string) error {
	cfg := exp.DefaultE2()
	res, err := exp.RunE2(cfg)
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("elapsed_ms,active_replica,win_r0,win_r1,win_r2,out_r0,out_r1,out_r2\n")
	for _, s := range res.Series {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d\n", s.Elapsed.Milliseconds(), s.Active,
			s.WindowCounts[0], s.WindowCounts[1], s.WindowCounts[2],
			s.Outputs[0], s.Outputs[1], s.Outputs[2])
	}
	fmt.Print(b.String())
	fmt.Printf("replica hosts: %v\n", res.Hosts)
	fmt.Printf("active %d -> %d after kill of replica %d; failover %v; output gap %v; refill %v (window %v)\n",
		res.ActiveBefore, res.ActiveAfter, res.KilledReplica,
		res.FailoverLatency, res.OutputGap, res.RefillTime, cfg.Window)
	return writeCSV(outDir, "e2_figure9.csv", b.String())
}

func runE3(outDir string) error {
	res, err := exp.RunE3(exp.DefaultE3())
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("elapsed_ms,running_jobs\n")
	for _, s := range res.Timeline {
		fmt.Fprintf(&b, "%d,%d\n", s.Elapsed.Milliseconds(), s.Jobs)
	}
	fmt.Print(b.String())
	fmt.Printf("base=%d max=%d final=%d jobs; C3 submissions %v; cancellations %v; %d profiles stored\n",
		res.BaseJobs, res.MaxJobs, res.FinalJobs, res.Submissions, res.Cancellations, res.StoreProfiles)
	return writeCSV(outDir, "e3_figure10.csv", b.String())
}

// runE4 reports the §5 LoC comparison: each ORCA policy against the
// application code it manages (the paper: 114 / 196 / 139 C++ lines).
func runE4(root string) error {
	count := func(paths ...string) (int, error) {
		total := 0
		for _, p := range paths {
			data, err := os.ReadFile(filepath.Join(root, p))
			if err != nil {
				return 0, err
			}
			for _, line := range strings.Split(string(data), "\n") {
				s := strings.TrimSpace(line)
				if s == "" || strings.HasPrefix(s, "//") {
					continue
				}
				total++
			}
		}
		return total, nil
	}
	rows := []struct {
		useCase string
		paper   int
		policy  []string
	}{
		{"5.1 sentiment / model recompute", 114, []string{"internal/policies/sentiment.go"}},
		{"5.2 trend calculator / failover", 196, []string{"internal/policies/failover.go"}},
		{"5.3 social media / composition", 139, []string{"internal/policies/composition.go"}},
	}
	appLoc, err := count("internal/apps/operators.go", "internal/apps/builders.go")
	if err != nil {
		return err
	}
	fmt.Println("use_case,paper_cpp_loc,our_go_policy_loc")
	for _, r := range rows {
		n, err := count(r.policy...)
		if err != nil {
			return err
		}
		fmt.Printf("%s,%d,%d\n", r.useCase, r.paper, n)
	}
	fmt.Printf("shared application code (all three use cases): %d Go lines\n", appLoc)
	return nil
}

func runE5(string) error {
	res, err := exp.RunE5(500_000)
	if err != nil {
		return err
	}
	fmt.Printf("tuples: %d\n", res.Tuples)
	fmt.Printf("baseline:   %.0f tuples/s\n", res.BaselineTPS)
	fmt.Printf("with orca:  %.0f tuples/s (%d metric events consumed)\n", res.WithOrcaTPS, res.MetricEvents)
	fmt.Printf("overhead:   %.1f%%\n", res.OverheadPercent)
	return nil
}

func runE6(string) error {
	res, err := exp.RunE6(7)
	if err != nil {
		return err
	}
	fmt.Printf("trials: %d (medians)\n", res.Trials)
	fmt.Printf("platform auto-restart:        %v\n", res.AutoRestart)
	fmt.Printf("orchestrated restart (no-op): %v\n", res.OrcaRestart)
	fmt.Printf("orchestrated + %v handler:  %v\n", res.HandlerDelay, res.OrcaSlowHandler)
	return nil
}
