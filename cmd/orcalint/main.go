// Command orcalint runs the platform's static-analysis suite
// (internal/lint) over the named packages and fails on any finding.
//
// Usage:
//
//	orcalint [-list] [packages]
//
// With no package patterns it analyzes ./... from the current
// directory. -list prints the analyzer catalog (name and summary, one
// per line) and exits; CI greps this output to keep the documentation
// in lockstep with the registered analyzers, the same way the
// load-generation scenario catalog is checked.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamorca/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: orcalint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Summary())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", lint.Analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orcalint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "orcalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
