// Command orcarun runs one of the paper's three use-case scenarios with
// adjustable scale parameters — a CLI front-end over the same scenario
// code the examples and experiments use.
//
// Usage:
//
//	go run ./cmd/orcarun -scenario sentiment -shift 4000
//	go run ./cmd/orcarun -scenario failover -window 600ms
//	go run ./cmd/orcarun -scenario composition -threshold 1500
//	go run ./cmd/orcarun -scenario recovery
//	go run ./cmd/orcarun -scenario staleness-failover
//	go run ./cmd/orcarun -scenario chaos -seed 42
//	go run ./cmd/orcarun -list-scenarios
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"streamorca/internal/exp"
)

// scenarios lists the runnable scenarios in -scenario order; CI's
// example-drift smoke greps this listing.
var scenarios = []string{"sentiment", "failover", "composition", "recovery", "staleness-failover", "chaos"}

func main() {
	scenario := flag.String("scenario", "sentiment", "sentiment | failover | composition | recovery | staleness-failover | chaos")
	list := flag.Bool("list-scenarios", false, "list available scenarios and exit")
	shift := flag.Int64("shift", 4000, "sentiment: tweet index of the cause-distribution shift")
	threshold := flag.Float64("ratio", 1.0, "sentiment: actuation ratio threshold")
	window := flag.Duration("window", 600*time.Millisecond, "failover: sliding window duration")
	tick := flag.Duration("tick", time.Millisecond, "failover: tick period")
	c3thresh := flag.Int64("threshold", 1500, "composition: new-profile threshold for C3 spawn")
	warm := flag.Int64("warm", 100, "recovery: window fill to reach before the checkpoint")
	storeDir := flag.String("store", "", "recovery, staleness-failover, chaos: checkpoint store directory (default: a temp dir; chaos: memory)")
	maxAge := flag.Duration("max-snapshot-age", 100*time.Millisecond, "staleness-failover: staleness gate bound")
	seed := flag.Int64("seed", 42, "chaos: fault schedule and retry jitter seed")
	benchOut := flag.String("bench-out", "", "chaos: write the recovery-gap record to this JSON file")
	maxDur := flag.Duration("max", 30*time.Second, "run time budget")
	flag.Parse()

	if *list {
		for _, s := range scenarios {
			fmt.Println(s)
		}
		return
	}

	switch *scenario {
	case "sentiment":
		cfg := exp.DefaultE1()
		cfg.ShiftAt = *shift
		cfg.Threshold = *threshold
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE1(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("crossed threshold at epoch %d, triggered %d job(s), model v%d, recovered at epoch %d\n",
			res.CrossEpoch, res.Triggers, res.ModelVersion, res.RecoverEpoch)
	case "failover":
		cfg := exp.DefaultE2()
		cfg.Window = *window
		cfg.TickPeriod = *tick
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE2(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("active %d -> %d; failover %v; output gap %v; window refill %v\n",
			res.ActiveBefore, res.ActiveAfter, res.FailoverLatency, res.OutputGap, res.RefillTime)
	case "composition":
		cfg := exp.DefaultE3()
		cfg.Threshold = *c3thresh
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE3(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("jobs base=%d max=%d final=%d; C3 submissions %v; cancellations %v\n",
			res.BaseJobs, res.MaxJobs, res.FinalJobs, res.Submissions, res.Cancellations)
	case "recovery":
		cfg := exp.DefaultRecovery()
		cfg.WarmCount = *warm
		cfg.MaxDuration = *maxDur
		cfg.StoreDir = *storeDir
		var tmp string
		if cfg.StoreDir == "" {
			dir, err := os.MkdirTemp("", "orca-ckpt-*")
			if err != nil {
				log.Fatal(err)
			}
			tmp = dir
			cfg.StoreDir = dir
		}
		res, err := exp.RunRecovery(cfg)
		if tmp != "" {
			// Remove before any Fatal below: log.Fatal skips defers, and
			// failing CI retries must not accumulate temp snapshot dirs.
			os.RemoveAll(tmp)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpointed at count %d; pre-failure max %d; first post-restart count %d; restores %d\n",
			res.CountAtCheckpoint, res.MaxPreFailure, res.FirstPostRestart, res.Restores)
		fmt.Println("recovery OK: restarted PE resumed from checkpointed state")
	case "staleness-failover":
		cfg := exp.DefaultStalenessFailover()
		cfg.MaxSnapshotAge = *maxAge
		cfg.MaxDuration = *maxDur
		cfg.StoreDir = *storeDir
		var tmp string
		if cfg.StoreDir == "" {
			dir, err := os.MkdirTemp("", "orca-ckpt-*")
			if err != nil {
				log.Fatal(err)
			}
			tmp = dir
			cfg.StoreDir = dir
		}
		res, err := exp.RunStalenessFailover(cfg)
		if tmp != "" {
			// Remove before any Fatal below: log.Fatal skips defers, and
			// failing CI retries must not accumulate temp snapshot dirs.
			os.RemoveAll(tmp)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gate refreshes %d; backup snapshot ages %dms (stale) vs %dms (fresh); promoted replica %d; pre-promotion checkpoints %d; restores %d\n",
			res.SnapshotRefreshes, res.StaleAgeMs, res.FreshAgeMs,
			res.PromotedReplica, res.PrePromotionCheckpoints, res.PromotedStateRestores)
		fmt.Printf("window fill: checkpointed %d, min post-restore %d (no refill)\n",
			res.CountAtCheckpoint, res.MinPostRestore)
		fmt.Println("staleness-failover OK: fresher-snapshot replica promoted and resumed from restore")
	case "chaos":
		cfg := exp.DefaultChaos(*seed)
		cfg.MaxDuration = *maxDur
		cfg.StoreDir = *storeDir
		res, err := exp.RunChaos(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("schedule fingerprint: %s\n", res.Fingerprint)
		fmt.Printf("faults applied %d, skipped %d; restarts %d/%d attempts succeeded; degradations %d\n",
			res.FaultsApplied, res.FaultsSkipped, res.RestartsSucceeded, res.RestartsAttempted, res.Degradations)
		fmt.Printf("store: %d clean saves, %d failed, %d dropped, %d torn\n",
			res.StoreStats.Saves, res.StoreStats.FailedSaves, res.StoreStats.DroppedSaves, res.StoreStats.TornSaves)
		fmt.Printf("output gaps: max %.1fms, p99 %.1fms; final count %d\n",
			res.MaxGapMs, res.P99GapMs, res.FinalCount)
		if *benchOut != "" {
			record := struct {
				Scenario          string  `json:"scenario"`
				Seed              int64   `json:"seed"`
				Fingerprint       string  `json:"fingerprint"`
				FaultsApplied     int     `json:"faults_applied"`
				FaultsSkipped     int     `json:"faults_skipped"`
				RestartsAttempted int     `json:"restarts_attempted"`
				RestartsSucceeded int     `json:"restarts_succeeded"`
				Degradations      int     `json:"degradations"`
				MaxGapMs          float64 `json:"max_gap_ms"`
				P99GapMs          float64 `json:"p99_gap_ms"`
				FinalCount        int     `json:"final_count"`
			}{
				Scenario: "chaos", Seed: *seed, Fingerprint: res.Fingerprint,
				FaultsApplied: res.FaultsApplied, FaultsSkipped: res.FaultsSkipped,
				RestartsAttempted: res.RestartsAttempted, RestartsSucceeded: res.RestartsSucceeded,
				Degradations: res.Degradations,
				MaxGapMs:     res.MaxGapMs, P99GapMs: res.P99GapMs, FinalCount: res.FinalCount,
			}
			data, err := json.MarshalIndent(record, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("chaos OK: zero PEs lost, pipeline recovered after the sweep")
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
}
