// Command orcarun runs one of the paper's three use-case scenarios with
// adjustable scale parameters — a CLI front-end over the same scenario
// code the examples and experiments use.
//
// Usage:
//
//	go run ./cmd/orcarun -scenario sentiment -shift 4000
//	go run ./cmd/orcarun -scenario failover -window 600ms
//	go run ./cmd/orcarun -scenario composition -threshold 1500
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"streamorca/internal/exp"
)

func main() {
	scenario := flag.String("scenario", "sentiment", "sentiment | failover | composition")
	shift := flag.Int64("shift", 4000, "sentiment: tweet index of the cause-distribution shift")
	threshold := flag.Float64("ratio", 1.0, "sentiment: actuation ratio threshold")
	window := flag.Duration("window", 600*time.Millisecond, "failover: sliding window duration")
	tick := flag.Duration("tick", time.Millisecond, "failover: tick period")
	c3thresh := flag.Int64("threshold", 1500, "composition: new-profile threshold for C3 spawn")
	maxDur := flag.Duration("max", 30*time.Second, "run time budget")
	flag.Parse()

	switch *scenario {
	case "sentiment":
		cfg := exp.DefaultE1()
		cfg.ShiftAt = *shift
		cfg.Threshold = *threshold
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE1(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("crossed threshold at epoch %d, triggered %d job(s), model v%d, recovered at epoch %d\n",
			res.CrossEpoch, res.Triggers, res.ModelVersion, res.RecoverEpoch)
	case "failover":
		cfg := exp.DefaultE2()
		cfg.Window = *window
		cfg.TickPeriod = *tick
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE2(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("active %d -> %d; failover %v; output gap %v; window refill %v\n",
			res.ActiveBefore, res.ActiveAfter, res.FailoverLatency, res.OutputGap, res.RefillTime)
	case "composition":
		cfg := exp.DefaultE3()
		cfg.Threshold = *c3thresh
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE3(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("jobs base=%d max=%d final=%d; C3 submissions %v; cancellations %v\n",
			res.BaseJobs, res.MaxJobs, res.FinalJobs, res.Submissions, res.Cancellations)
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
}
