// Command orcarun runs one of the paper's three use-case scenarios with
// adjustable scale parameters — a CLI front-end over the same scenario
// code the examples and experiments use.
//
// Usage:
//
//	go run ./cmd/orcarun -scenario sentiment -shift 4000
//	go run ./cmd/orcarun -scenario failover -window 600ms
//	go run ./cmd/orcarun -scenario composition -threshold 1500
//	go run ./cmd/orcarun -scenario recovery
//	go run ./cmd/orcarun -scenario staleness-failover
//	go run ./cmd/orcarun -scenario chaos -seed 42
//	go run ./cmd/orcarun -scenario loadtest -seed 42 -rate 2000 -duration 2s
//	go run ./cmd/orcarun -scenario chaos-load -seed 42
//	go run ./cmd/orcarun -scenario fission -seed 42
//	go run ./cmd/orcarun -list-scenarios
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"streamorca/internal/exp"
	"streamorca/internal/load"
)

// scenarios lists the runnable scenarios in -scenario order; CI's
// example-drift smoke greps this listing.
var scenarios = []string{"sentiment", "failover", "composition", "recovery", "staleness-failover", "chaos", "loadtest", "chaos-load", "fission"}

func main() {
	scenario := flag.String("scenario", "sentiment", "sentiment | failover | composition | recovery | staleness-failover | chaos | loadtest | chaos-load | fission")
	list := flag.Bool("list-scenarios", false, "list available scenarios and exit")
	shift := flag.Int64("shift", 4000, "sentiment: tweet index of the cause-distribution shift")
	threshold := flag.Float64("ratio", 1.0, "sentiment: actuation ratio threshold")
	window := flag.Duration("window", 600*time.Millisecond, "failover: sliding window duration")
	tick := flag.Duration("tick", time.Millisecond, "failover: tick period")
	c3thresh := flag.Int64("threshold", 1500, "composition: new-profile threshold for C3 spawn")
	warm := flag.Int64("warm", 100, "recovery: window fill to reach before the checkpoint")
	storeDir := flag.String("store", "", "recovery, staleness-failover, chaos, loadtest, chaos-load: checkpoint store directory (default: a temp dir; chaos, loadtest: memory)")
	maxAge := flag.Duration("max-snapshot-age", 100*time.Millisecond, "staleness-failover: staleness gate bound")
	seed := flag.Int64("seed", 42, "chaos, loadtest, chaos-load: fault schedule, workload, and retry jitter seed")
	benchOut := flag.String("bench-out", "", "chaos, loadtest, chaos-load: write the run's bench record to this JSON file")
	rate := flag.Float64("rate", 0, "offered rate in tuples/sec: loadtest, chaos-load open-loop rate; chaos source rate (0 = scenario default)")
	duration := flag.Duration("duration", 0, "offered-load schedule length: loadtest, chaos-load duration; chaos injection window (0 = scenario default)")
	users := flag.Int("users", 0, "loadtest, chaos-load: closed-loop mode with this many concurrent users (0 = open loop)")
	think := flag.Duration("think", 10*time.Millisecond, "loadtest, chaos-load: closed-loop per-user think time")
	keys := flag.Int("keys", 0, "loadtest, chaos-load: user key-space size (0 = scenario default)")
	skew := flag.Float64("skew", -1, "loadtest, chaos-load: Zipf key-skew exponent (-1 = scenario default)")
	maxDur := flag.Duration("max", 30*time.Second, "run time budget")
	flag.Parse()

	if *list {
		for _, s := range scenarios {
			fmt.Println(s)
		}
		return
	}

	switch *scenario {
	case "sentiment":
		cfg := exp.DefaultE1()
		cfg.ShiftAt = *shift
		cfg.Threshold = *threshold
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE1(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("crossed threshold at epoch %d, triggered %d job(s), model v%d, recovered at epoch %d\n",
			res.CrossEpoch, res.Triggers, res.ModelVersion, res.RecoverEpoch)
	case "failover":
		cfg := exp.DefaultE2()
		cfg.Window = *window
		cfg.TickPeriod = *tick
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE2(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("active %d -> %d; failover %v; output gap %v; window refill %v\n",
			res.ActiveBefore, res.ActiveAfter, res.FailoverLatency, res.OutputGap, res.RefillTime)
	case "composition":
		cfg := exp.DefaultE3()
		cfg.Threshold = *c3thresh
		cfg.MaxDuration = *maxDur
		res, err := exp.RunE3(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("jobs base=%d max=%d final=%d; C3 submissions %v; cancellations %v\n",
			res.BaseJobs, res.MaxJobs, res.FinalJobs, res.Submissions, res.Cancellations)
	case "recovery":
		cfg := exp.DefaultRecovery()
		cfg.WarmCount = *warm
		cfg.MaxDuration = *maxDur
		cfg.StoreDir = *storeDir
		var tmp string
		if cfg.StoreDir == "" {
			dir, err := os.MkdirTemp("", "orca-ckpt-*")
			if err != nil {
				log.Fatal(err)
			}
			tmp = dir
			cfg.StoreDir = dir
		}
		res, err := exp.RunRecovery(cfg)
		if tmp != "" {
			// Remove before any Fatal below: log.Fatal skips defers, and
			// failing CI retries must not accumulate temp snapshot dirs.
			os.RemoveAll(tmp)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpointed at count %d; pre-failure max %d; first post-restart count %d; restores %d\n",
			res.CountAtCheckpoint, res.MaxPreFailure, res.FirstPostRestart, res.Restores)
		fmt.Println("recovery OK: restarted PE resumed from checkpointed state")
	case "staleness-failover":
		cfg := exp.DefaultStalenessFailover()
		cfg.MaxSnapshotAge = *maxAge
		cfg.MaxDuration = *maxDur
		cfg.StoreDir = *storeDir
		var tmp string
		if cfg.StoreDir == "" {
			dir, err := os.MkdirTemp("", "orca-ckpt-*")
			if err != nil {
				log.Fatal(err)
			}
			tmp = dir
			cfg.StoreDir = dir
		}
		res, err := exp.RunStalenessFailover(cfg)
		if tmp != "" {
			// Remove before any Fatal below: log.Fatal skips defers, and
			// failing CI retries must not accumulate temp snapshot dirs.
			os.RemoveAll(tmp)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gate refreshes %d; backup snapshot ages %dms (stale) vs %dms (fresh); promoted replica %d; pre-promotion checkpoints %d; restores %d\n",
			res.SnapshotRefreshes, res.StaleAgeMs, res.FreshAgeMs,
			res.PromotedReplica, res.PrePromotionCheckpoints, res.PromotedStateRestores)
		fmt.Printf("window fill: checkpointed %d, min post-restore %d (no refill)\n",
			res.CountAtCheckpoint, res.MinPostRestore)
		fmt.Println("staleness-failover OK: fresher-snapshot replica promoted and resumed from restore")
	case "chaos":
		cfg := exp.DefaultChaos(*seed)
		cfg.MaxDuration = *maxDur
		cfg.StoreDir = *storeDir
		if *duration > 0 {
			cfg.Window = *duration
		}
		if *rate > 0 {
			cfg.TickPeriod = time.Duration(float64(time.Second) / *rate)
		}
		res, err := exp.RunChaos(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("schedule fingerprint: %s\n", res.Fingerprint)
		fmt.Printf("faults applied %d, skipped %d; restarts %d/%d attempts succeeded; degradations %d\n",
			res.FaultsApplied, res.FaultsSkipped, res.RestartsSucceeded, res.RestartsAttempted, res.Degradations)
		fmt.Printf("store: %d clean saves, %d failed, %d dropped, %d torn\n",
			res.StoreStats.Saves, res.StoreStats.FailedSaves, res.StoreStats.DroppedSaves, res.StoreStats.TornSaves)
		fmt.Printf("output gaps: max %.1fms, p99 %.1fms; final count %d\n",
			res.MaxGapMs, res.P99GapMs, res.FinalCount)
		if *benchOut != "" {
			if err := load.WriteReport(*benchOut, res.BenchReport(*seed)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("chaos OK: zero PEs lost, pipeline recovered after the sweep")
	case "loadtest", "chaos-load":
		var cfg exp.LoadConfig
		if *scenario == "chaos-load" {
			cfg = exp.DefaultChaosLoad(*seed)
		} else {
			cfg = exp.DefaultLoad(*seed)
		}
		cfg.MaxDuration = *maxDur
		cfg.StoreDir = *storeDir
		if *rate > 0 {
			cfg.Rate = *rate
		}
		if *duration > 0 {
			cfg.Duration = *duration
		}
		if *users > 0 {
			cfg.Users = *users
			cfg.Think = *think
			cfg.Rate = 0
		}
		if *keys > 0 {
			cfg.Keys = *keys
		}
		if *skew >= 0 {
			cfg.Skew = *skew
		}
		res, err := exp.RunLoadTest(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// The determinism smoke diffs this line across same-seed runs:
		// everything on it must be wall-clock-independent.
		fmt.Printf("deterministic: seed=%d offered=%d hotKeyShare=%.4f fingerprint=%s\n",
			cfg.Seed, res.Offered, res.HotKeyShare, res.Fingerprint)
		fmt.Printf("offered %.0f tuples/sec for %v: %d offered, %d delivered, %d lost\n",
			cfg.Rate, cfg.Duration, res.Offered, res.Delivered, res.Lost)
		fmt.Printf("latency ms: p50 %.2f, p99 %.2f, p999 %.2f, max %.2f, mean %.2f\n",
			res.P50Ms, res.P99Ms, res.P999Ms, res.MaxMs, res.MeanMs)
		fmt.Printf("throughput tuples/sec: sustained %.0f; windows %d (min %.0f, max %.0f); PE gauges max in %d, out %d\n",
			res.SustainedRate, res.Windows, res.MinWindowRate, res.MaxWindowRate,
			res.MaxIngestRate, res.MaxEgressRate)
		fmt.Printf("workers: w0=%d w1=%d w2=%d tuples\n",
			res.WorkerTuples["w0"], res.WorkerTuples["w1"], res.WorkerTuples["w2"])
		if *scenario == "chaos-load" {
			fmt.Printf("schedule fingerprint: %s\n", res.Fingerprint)
			fmt.Printf("faults applied %d, skipped %d; PEs lost forever %d\n",
				res.FaultsApplied, res.FaultsSkipped, res.LostForever)
		}
		if *benchOut != "" {
			if err := load.WriteReport(*benchOut, res.BenchReport(*scenario, cfg)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s OK: sustained the offered load with a full latency record\n", *scenario)
	case "fission":
		cfg := exp.DefaultFission(*seed)
		cfg.MaxDuration = *maxDur
		if *keys > 0 {
			cfg.Keys = *keys
		}
		if *skew >= 0 {
			cfg.Skew = *skew
		}
		if *duration > 0 {
			cfg.AdaptDuration = *duration
		}
		res, err := exp.RunFission(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// The determinism smoke diffs this line across same-seed runs:
		// everything on it must be wall-clock-independent.
		fmt.Printf("deterministic: seed=%d keys=%d skew=%.2f hotKeyShare=%.4f region=work maxWidth=%d workDelay=%s\n",
			cfg.Seed, cfg.Keys, cfg.Skew, res.HotKeyShare, cfg.MaxWidth, cfg.WorkDelay)
		fmt.Printf("capacity: width 1 sustained %.0f tps, width %d sustained %.0f tps, speedup %.2fx\n",
			res.W1Sustained, cfg.MaxWidth, res.WideSustained, res.Speedup)
		fmt.Printf("adaptive: routine widened %d time(s) to width %d (ingress threshold %d tps, offered %.0f tps)\n",
			res.Widenings, res.FinalWidth, res.WidenAboveRate, res.AdaptRate)
		for _, c := range res.Log {
			fmt.Printf("  width %d -> %d at ingress %d tps (queue depth %d)\n",
				c.From, c.To, c.IngestPerSec, c.QueueDepth)
		}
		fmt.Printf("adaptive delivery: %d offered, %d delivered, %d lost in flight; latency p50 %.2fms p99 %.2fms\n",
			res.Offered, res.Delivered, res.Lost, res.P50Ms, res.P99Ms)
		if *benchOut != "" {
			if err := load.WriteReport(*benchOut, res.BenchReport(cfg)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("fission OK: the adaptation routine, not the dataplane, widened the region under load")
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
}
