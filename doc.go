// Package streamorca is a from-scratch Go reproduction of "Building
// User-defined Runtime Adaptation Routines for Stream Processing
// Applications" (Jacques-Silva et al., VLDB 2012): a System S–style
// distributed stream processing platform plus the paper's contribution,
// the orchestrator (ORCA) — a first-class runtime component that lets
// developers write application-management policies (failure recovery,
// model recomputation, dynamic composition) separately from the data
// processing logic.
//
// Public API:
//
//   - package streams — build and run streaming applications
//   - package orca    — write runtime adaptation routines (ORCA logic)
//
// # Dataplane
//
// The tuple dataplane is columnar and unboxed: a schema compiles each
// attribute to a fixed slot in typed storage (int64s carry ints, float
// bits, bools, and unix-nano timestamps; strings ride in their own
// array), so no attribute value ever sits behind an interface. Operators
// resolve attribute names once at setup into compiled FieldRefs and read
// tuples with no per-tuple lookups; the name-based accessors remain as a
// compatibility layer. Cross-PE stream connections frame tuples in small
// batches through a zero-copy-reuse codec (encode buffers are pooled,
// frames decode into per-frame tuple blocks, batches enter the remote PE
// as one queue operation), which makes the steady-state cross-PE hop
// allocation-free for fixed-width schemas. See internal/tuple and
// internal/transport for the layout and framing contracts.
//
// # Operator model
//
// Operator kinds register declarative descriptors (opapi.OpModel) —
// typed parameter specs with required/default/range/enum constraints,
// and port specs with arity and schema requirements — mirroring SPL's
// operator model (§2.1). The compiler validates every application
// against the registered descriptors at Build: unknown kinds,
// missing/mistyped/out-of-range parameters, port-arity violations, and
// connections between disagreeing schemas all accumulate into one
// operator-qualified error before SAM ever places a PE. Operators bind
// their configuration at Open through error-reporting accessors
// (Params.BindInt, BindEnum, Binder), so malformed values that slip
// past compile-time checks (e.g. substituted at submission time) fail
// loudly instead of silently falling back to defaults. `adltool
// catalog` dumps the full registered catalog.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The root-level benchmarks (bench_test.go)
// regenerate one measurement per experiment.
package streamorca
