// Package streamorca is a from-scratch Go reproduction of "Building
// User-defined Runtime Adaptation Routines for Stream Processing
// Applications" (Jacques-Silva et al., VLDB 2012): a System S–style
// distributed stream processing platform plus the paper's contribution,
// the orchestrator (ORCA) — a first-class runtime component that lets
// developers write application-management policies (failure recovery,
// model recomputation, dynamic composition) separately from the data
// processing logic.
//
// Public API:
//
//   - package streams — build and run streaming applications
//   - package orca    — write runtime adaptation routines (ORCA logic)
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The root-level benchmarks (bench_test.go)
// regenerate one measurement per experiment.
package streamorca
