// Package streamorca is a from-scratch Go reproduction of "Building
// User-defined Runtime Adaptation Routines for Stream Processing
// Applications" (Jacques-Silva et al., VLDB 2012): a System S–style
// distributed stream processing platform plus the paper's contribution,
// the orchestrator (ORCA) — a first-class runtime component that lets
// developers write application-management policies (failure recovery,
// model recomputation, dynamic composition) separately from the data
// processing logic.
//
// Public API:
//
//   - package streams — build and run streaming applications
//   - package orca    — write runtime adaptation routines (ORCA logic)
//
// # Dataplane
//
// The tuple dataplane is columnar and unboxed: a schema compiles each
// attribute to a fixed slot in typed storage (int64s carry ints, float
// bits, bools, and unix-nano timestamps; strings ride in their own
// array), so no attribute value ever sits behind an interface. Operators
// resolve attribute names once at setup into compiled FieldRefs and read
// tuples with no per-tuple lookups; the name-based accessors remain as a
// compatibility layer. Cross-PE stream connections frame tuples in small
// batches through a zero-copy-reuse codec (encode buffers are pooled,
// frames decode into per-frame tuple blocks, batches enter the remote PE
// as one queue operation), which makes the steady-state cross-PE hop
// allocation-free for fixed-width schemas. See internal/tuple and
// internal/transport for the layout and framing contracts.
//
// # Batch execution
//
// Batches survive past the PE boundary: the delivery loop executes
// whole runs, not single tuples. An operator opts in by implementing
// streams.BatchOperator — ProcessBatch(port, *tuple.Batch) alongside
// the mandatory per-tuple Process — and the PE hands it each maximal
// run of consecutive tuples on a port as one call, reusing a single
// Batch view per operator (zero allocations on the steady-state path).
// Punctuation splits runs: marks are always delivered in position
// through ProcessMark, so window boundaries and final marks keep their
// ordering guarantees. Operators that do not implement the interface
// see no change — runs unroll through Process one tuple at a time.
//
// The Batch is a borrowed view. It is valid only for the duration of
// the ProcessBatch call; an operator that retains tuples beyond the
// call must copy them (tuple.Clone), exactly the contract Process has
// always had. Submissions made while a batch executes are coalesced:
// outputs buffer per port and flush as one batch into same-PE
// consumers (one queue operation) and as one run into cross-PE links,
// so a chain of batch-aware operators inside a PE never degrades to
// per-tuple handoff. If ProcessBatch returns an error the buffered
// outputs of the failing call are discarded rather than forwarded —
// restart-based recovery replays from upstream, and forwarding the
// partial effects would double-deliver them — the PE crashes, and the
// undelivered remainder of the accepted batch is logged and counted on
// nTuplesDropped. The hot built-ins (Functor, Filter, Aggregate
// ingest, CountSink, LatencySink) implement the interface with tight
// column-slice loops; the orcalint batchspi analyzer guards the
// signature contracts (a mis-typed ProcessBatch would otherwise
// silently fall back to the per-tuple path).
//
// # Operator model
//
// Operator kinds register declarative descriptors (opapi.OpModel) —
// typed parameter specs with required/default/range/enum constraints,
// and port specs with arity and schema requirements — mirroring SPL's
// operator model (§2.1). The compiler validates every application
// against the registered descriptors at Build: unknown kinds,
// missing/mistyped/out-of-range parameters, port-arity violations, and
// connections between disagreeing schemas all accumulate into one
// operator-qualified error before SAM ever places a PE. Operators bind
// their configuration at Open through error-reporting accessors
// (Params.BindInt, BindEnum, Binder), so malformed values that slip
// past compile-time checks (e.g. substituted at submission time) fail
// loudly instead of silently falling back to defaults. `adltool
// catalog` dumps the full registered catalog.
//
// Deprecation timeline: the silent Params accessors (Int, Float, Bool,
// Duration) were deprecated when the Bind* family landed (PR 2), left
// for one release of overlap with zero in-tree callers (PR 3), and have
// now been removed (PR 4) — out-of-tree operators must bind through the
// error-reporting Bind* family.
//
// # Authoring adaptation routines
//
// ORCA logic is written as composable adaptation routines (package
// orca): a Routine pairs each event scope with its typed handler in one
// expression and declares everything in a Setup(*SetupContext) error —
// registration problems, rejected submissions, and duplicate scope keys
// propagate out of Service.Start instead of panicking inside a handler.
// Cross-cutting activation logic comes from reusable guard combinators
// rather than per-policy mutex-and-timestamp state: Threshold/AtLeast
// gate on an observed value, SuppressFor bounds re-trigger frequency on
// the service clock, Debounce demands a sustained condition, and
// OncePerEpoch collapses one incident's failure fan-out into a single
// actuation. A guard records state only when its inner handler fired
// (returned nil); ErrSkipped and errors leave it unarmed so the next
// delivery retries. The §5.1 policy is the canonical composition —
// ratio threshold around a suppression window:
//
//	func (p *policy) Setup(sc *orca.SetupContext) error {
//	    if _, err := sc.Actions().SubmitApplication(p.App, nil); err != nil {
//	        return err
//	    }
//	    handler := orca.Threshold(p.observeRatio, 1.0,
//	        orca.SuppressFor(10*time.Minute, p.recomputeModel))
//	    return sc.Subscribe(orca.OnOperatorMetric(p.scope(), handler))
//	}
//
// Independent routines compose into one service with orca.Compose (or
// by passing several to NewRoutineService); each keeps its own name for
// setup-error attribution. Routines that acquire resources release them
// through teardown hooks — implement the optional orca.Closer interface
// or register a function with SetupContext.OnStop — which Service.Stop
// runs in reverse setup order while the actuation surface is still
// live. The legacy wide Orchestrator interface (embed orca.Base,
// override Handle*) had its one release of deprecated overlap behind
// the NewService adapter and has now been removed (PR 6).
//
// # Checkpointing
//
// Operator state is checkpointable (internal/ckpt). An operator opts in
// by implementing streams.StatefulOperator — SaveState serialises its
// state through a StateEncoder, RestoreState reads the same values back
// in the same order — and a platform opts in by setting a
// CheckpointStore (in-memory or filesystem-backed) in InstanceOptions.
// Snapshots are per PE: a versioned, CRC-32C-guarded binary blob with
// one section per stateful operator, taken periodically on the platform
// clock (CheckpointInterval; 0 disables the timer) and on demand via
// the orchestrator actuation Service.CheckpointPE. SAM's RestartPE then
// restores every section into the fresh container before any tuple is
// delivered, so a restarted PE resumes with its aggregate windows and
// application counters instead of rebuilding them from live traffic.
//
// What a snapshot captures is exactly what operators write in
// SaveState — nothing else. Input-queue contents, in-flight tuples, and
// built-in metrics are lost on a crash (restart-based recovery keeps
// the paper's §5.2 tuple-loss semantics; only declared operator state
// survives). Capture is per-operator atomic — SaveState runs serialised
// with tuple processing for operators with inputs, and against the
// operator's own synchronisation for sources — but not consistent
// across operators or PEs. A corrupt, truncated, or version-skewed
// snapshot is detected (bad magic, CRC mismatch, version check),
// logged, and discarded: a bad snapshot never blocks a restart, it just
// makes the restart cold. Cancelling a job deletes its snapshots.
//
// # Checkpoint-aware failover
//
// Every PE publishes a snapshot-age gauge, lastCheckpointAgeMs
// (streams.MetricCheckpointAgeMs): milliseconds since its state was
// last anchored to a snapshot — a completed checkpoint, or a restore at
// start-up — and -1 before any anchor. Snapshots record their capture
// instant in the header (format v2; v1 snapshots still parse, with the
// instant unknown), so a restore anchors the gauge to when the state
// was actually captured, not to the restart — a replica restored from
// an hour-old snapshot honestly reports an hour of staleness. The gauge
// rides the ordinary HC→SRM→orchestrator metric path, so adaptation
// routines observe it with an OnPEMetric subscription like any other PE
// metric.
//
// The §5.2 failover policy (internal/policies.Failover, and the
// orcarun staleness-failover scenario) is built on this signal. The
// paper promoted the replica with the longest uptime as a proxy for the
// fullest sliding windows; with durable snapshots the better question
// is "how little state would this replica lose if it had to restart?",
// which is exactly the snapshot age. Promotion ranks backups by their
// worst observed PE snapshot age (no snapshot ranks last; uptime
// remains only as the tie-break, so a store-less platform degrades to
// the paper's behaviour), is deduplicated per failure epoch with
// OncePerEpoch, and checkpoints the demoted replica's surviving PEs
// before committing — the loser's recoverable state is never older than
// the incident (those CheckpointPE calls are journalled under the
// failure event's transaction id). A second guard composition keeps the
// signal fresh:
//
//	refresh := orca.Threshold(p.observeSnapshotAge, -1, // -1: any anchored age
//	    perPE(func() orca.Handler[orca.PEMetricContext] {
//	        return orca.Debounce(p.StalenessDebounce, p.overLimit, p.checkpointActive)
//	    }))
//	sc.Subscribe(orca.OnPEMetric(
//	    orca.NewPEMetricScope("snapshotAge").
//	        AddApplicationFilter(p.App).
//	        AddPEMetric(streams.MetricCheckpointAgeMs),
//	    refresh))
//
// observeSnapshotAge folds every observation into the policy's ranking
// table and reports the age when it concerns the active replica, so the
// Threshold passes every anchored active-replica observation (limit -1)
// down to a per-PE Debounce whose holds predicate checks the
// MaxSnapshotAge breach. Healthy observations reach the Debounce too
// and reset its streak; only StalenessDebounce consecutive breaching
// observations of the same PE fire the CheckpointPE actuation
// (journalled, like every actuation).
//
// # Chaos and fault injection
//
// The robustness claims are exercised, not asserted: internal/chaos is
// a deterministic fault-injection harness. Generate(seed, opts) builds
// a seeded Schedule of timestamped fault events — PE kills, host kills
// and revivals, checkpoint-store write failures, silently dropped
// saves (stale-checkpoint injection), torn writes, store latency, and
// metric-delivery delays — and a Runner drives any live platform
// instance through it. Host state is simulated during generation, so
// the same seed always produces the same schedule (compare
// Schedule.Fingerprint across runs) and the generator never kills the
// last live host: the retry budget, not resource exhaustion, is what
// the harness stresses.
//
// Store faults land through streams.NewFaultCheckpointStore, a
// transparent CheckpointStore decorator armed with one-shot fault
// budgets. Actuation resilience comes from streams.RetryPolicy
// (InstanceOptions.Retry): SAM's RestartPE and CheckpointPE retry
// transient failures with exponential backoff and seeded jitter,
// journalling every attempt (SAM.AttemptJournal), and a PE whose retry
// budget is exhausted is marked unplaceable and announced through a
// degradation PEFailure event ("restart abandoned ...") instead of
// being retried forever — policies observe the degradation and decide;
// the zero-value policy keeps the old single-attempt determinism. The
// orcarun chaos scenario (internal/exp.RunChaos) layers all of it over
// a live checkpointing pipeline, then sweeps: disarm the store, revive
// the cluster, restart what is down, and fail the run unless every PE
// comes back and output resumes. Recovery-gap statistics land in
// BENCH_pr6.json.
//
// # Load generation and latency measurement
//
// internal/load is the heavy-traffic regression harness. Two driver
// models inject tuples into a running application through a
// "LoadSource" operator (fed via a registered injector channel, so a
// chaos-killed source PE reattaches mid-run):
//
//   - Open loop (load.RunOpenLoop): a constant offered rate,
//     coordinated-omission-correct. Tuple i is stamped with its
//     *intended* send instant start + i/rate before the (possibly
//     blocking) push, so a stalled pipeline inflates the recorded tail
//     even though fewer tuples were delivered during the stall. This
//     is the driver the loadtest gate uses.
//   - Closed loop (load.RunClosedLoop): N concurrent users with think
//     time, stamped at the actual send. Offered rate is bounded by
//     users/think and throttles under back-pressure — the classic
//     model the open-loop driver exists to correct for.
//
// Keys come from workload.KeyGen, a Zipf sampler (any exponent s >= 0,
// seeded, CDF-inverted) whose rank-0-hottest keys make hot partitions
// emerge naturally under hash routing. A "LatencySink" operator reads
// the injection timestamp attribute and records source-to-sink latency
// into a load.Meter: a mergeable log-bucketed histogram (2^5 linear
// sub-buckets per octave, <= ~3.1% relative quantile error,
// allocation-free four-atomic-op Record) plus windowed throughput
// bins. Per-PE ingest/egress tuples-per-second gauges
// (streams.MetricIngestRate / MetricEgressRate) are derived from
// counter deltas at each metric snapshot — the signal both the load
// reports and the elastic fission routine read.
//
// The orcarun loadtest scenario (internal/exp.RunLoadTest) drives a
// checkpointing three-host pipeline — LoadSource -> hash-split over
// three Functor workers -> merge -> LatencySink, with an Aggregate
// branch holding checkpointable window state — and writes
// p50/p99/p999/max latency plus sustained and per-window throughput to
// BENCH_pr7.json in the shared load.Report schema (one schema for
// every BENCH_*.json: name, seed, deterministic meta, measured
// metrics). The chaos-load scenario layers the PR-6 chaos schedule
// over the same workload, so recovery gaps show up as measured p999
// and min-window-throughput dips; for a fixed seed the schedule
// fingerprint, offered count, and hot-key share are identical across
// runs.
//
// # Parallel regions and elastic fission
//
// Parallel regions are the platform's adaptation showcase: the worked
// example of the paper's thesis that runtime adaptation is orchestrator
// logic, not dataplane machinery. An operator with a declared partition
// key (OpModel.PartitionKey names the parameter holding the key
// attribute — Aggregate's groupBy, KeyedWorker's keyAttr) can be
// declared data-parallel in the builder with .Parallel(width). The
// compiler expands the declaration into a key-partitioned region: an
// auto-inserted hash split (FNV-1a over the key attribute, the same
// hash opapi.PartitionOf exposes), width replicated instances of the
// operator each isolated in its own PE, and a merge fanning back into
// one stream. Neighbours connect to the split and merge, so the
// region's width is invisible to the rest of the graph.
//
// Width is a runtime property. SAM's ResizeRegion actuation recompiles
// the job's ADL to the new width, quiesces the region, migrates the
// replicas' per-key state through the checkpoint store — old snapshots
// are folded together (MergeState) and re-cut along the new
// partitioning (SplitState), so every group window lands on exactly the
// replica the resized hash split will route its key to — and restarts
// the region, rewiring every stream link that touched it. Migration is
// best-effort in the platform's usual "a bad snapshot never blocks a
// restart" spirit: any failure degrades to a region-wide cold start,
// losing window state but never wedging the region.
//
// The decision to scale lives where the paper says it should: in an
// adaptation routine (internal/policies.Fission), built from the same
// subscription-and-guard vocabulary as every other routine. It watches
// the region's offered load — the split PE's ingestRatePerSec gauge,
// width-independent by construction — plus egress rates and operator
// queue depths, and composes a Threshold (anchor the ingress
// observation, fold the load picture), a Debounce (demand sustained
// overload, not a one-pull spike), and a SuppressFor cooldown (let the
// last resize warm up) around the ResizeRegion actuation, growing the
// region one replica at a time up to a cap. The orcarun fission
// scenario runs the whole loop live — probes the region's capacity at
// width 1 and max width, then offers a Zipf-skewed load above the
// width-1 ceiling and lets the routine, not the driver, widen the
// region — and records both capacities, the actuation log, and the
// delivered-latency histogram in BENCH_pr8.json.
//
// # Static analysis and lint contracts
//
// The platform's layering leans on contracts the compiler cannot see:
// an OpModel declares parameters that Open binds by string key, metric
// scopes and guards select metrics by name, checkpoint SPI methods are
// discovered by interface assertion, and actuations report failures
// through errors the retry machinery consumes. Each of those drifts
// silently — a misspelled Bind key takes its default forever, a
// misspelled metric name matches nothing, a SaveState without
// RestoreState checkpoints state that is never restored, a discarded
// actuation error hides a failed restart. internal/lint encodes these
// invariants as orcalint analyzers (paramdrift, metrickey, batchspi,
// statespi, actuationcheck), built on the standard library's go/types
// against
// build-cache export data so the module keeps its zero-dependency
// property. cmd/orcalint runs the suite over any package pattern and
// fails on the first finding; -list prints the analyzer catalog. CI
// runs it over the whole tree. A finding that is genuinely intended —
// a best-effort rollback, a deliberately external restore path — is
// suppressed in the source with
//
//	//orcalint:ignore <analyzer>[,<analyzer>] <reason>
//
// at the end of the offending line (or alone on the line above), and
// the reason is mandatory: an undocumented exemption is itself a
// diagnostic. The analyzers' own fixtures live under
// internal/lint/testdata and pin both the positive findings and the
// exemption forms.
//
// See ARCHITECTURE.md for the component map, the tuple/frame and
// checkpoint/restore lifecycles, the analyzer catalog, and the catalog
// of every orcarun scenario with what it proves; ROADMAP.md for the
// open directions. The root-level benchmarks (bench_test.go)
// regenerate one measurement per experiment.
package streamorca
