// Command quickstart is the smallest end-to-end orchestrator program:
// it boots a two-host platform, submits a tiny pipeline, writes an ORCA
// policy inline that restarts crashed PEs, injects a failure, and shows
// the policy healing the application.
package main

import (
	"fmt"
	"log"
	"time"

	"streamorca/orca"
	"streamorca/streams"
)

// restartPolicy is a complete ORCA logic: subscribe to PE failures of the
// managed application and restart whatever crashes.
type restartPolicy struct {
	orca.Base
	restarted chan streams.PEID
}

func (p *restartPolicy) HandleOrcaStart(svc *orca.Service, ctx *orca.OrcaStartContext) {
	fmt.Printf("orchestrator %s started\n", ctx.Name)
	scope := orca.NewPEFailureScope("failures").AddApplicationFilter("hello")
	if err := svc.RegisterEventScope(scope); err != nil {
		log.Fatal(err)
	}
	if _, err := svc.SubmitApplication("hello", nil); err != nil {
		log.Fatal(err)
	}
}

func (p *restartPolicy) HandlePEFailure(svc *orca.Service, ctx *orca.PEFailureContext, scopes []string) {
	fmt.Printf("PE %s crashed on %s (%s), operators %v — restarting\n",
		ctx.PE, ctx.Host, ctx.Reason, ctx.Operators)
	if err := svc.RestartPE(ctx.PE); err != nil {
		log.Fatal(err)
	}
	p.restarted <- ctx.PE
}

func main() {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts: []streams.HostSpec{{Name: "alpha"}, {Name: "beta"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	// Build the application: an unbounded beacon feeding a collecting
	// sink, one PE per operator so the failure hits a single stage.
	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	b := streams.NewApp("hello")
	src := b.AddOperator("src", "Beacon").Out(schema).
		Param("count", "0").Param("period", "1ms")
	sink := b.AddOperator("sink", "CollectSink").In(schema).
		Param("collectorId", "quickstart")
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		log.Fatal(err)
	}

	policy := &restartPolicy{restarted: make(chan streams.PEID, 1)}
	svc, err := orca.NewService(orca.Config{
		Name: "quickstart", SAM: inst.SAM, SRM: inst.SRM,
	}, policy)
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		log.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}
	defer svc.Stop()

	// Let some data flow, then inject a failure into the sink's PE.
	coll := streams.Collector("quickstart")
	for coll.Len() < 20 {
		time.Sleep(time.Millisecond)
	}
	jobs := svc.ManagedJobs()
	g, _ := svc.Graph(jobs[0].Job)
	sinkPE, _ := g.PEOfOperator("sink")
	host, _ := g.HostOfPE(sinkPE)
	fmt.Printf("pipeline running: %d tuples so far; sink in %s on %s\n", coll.Len(), sinkPE, host)

	if err := svc.KillPE(sinkPE, "demo fault injection"); err != nil {
		log.Fatal(err)
	}
	<-policy.restarted

	// Confirm the flow resumes after the restart.
	before := coll.Len()
	for coll.Len() <= before {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("flow resumed after restart: %d tuples delivered\n", coll.Len())
	fmt.Println("quickstart OK")
}
