// Command quickstart is the smallest end-to-end orchestrator program:
// it boots a two-host platform with operator-state checkpointing,
// submits a tiny pipeline with a custom stateful operator (registered
// with a declarative descriptor, so the builder validates its
// configuration at Build time), writes an ORCA policy inline that
// restarts crashed PEs, injects a failure, and shows the policy healing
// the application with the operator's state restored from its latest
// snapshot rather than reset to zero.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"streamorca/orca"
	"streamorca/streams"
)

// restoredCount observes what the restarted operator got back from the
// snapshot, so main can print the recovery (single-process demo only).
var restoredCount atomic.Int64

// scaleOp is a custom stateful operator: it adds "delta" to the "seq"
// attribute and counts how many tuples it has scaled. The counter is
// checkpointable state — on a checkpointing platform it survives PE
// restarts. Its descriptor below declares the parameter and port
// shapes, so a misconfigured application fails at Build, not at
// runtime.
type scaleOp struct {
	streams.OperatorBase
	ctx    streams.OpContext
	delta  int64
	scaled int64
	seq    streams.FieldRef
}

func init() {
	streams.RegisterOperatorModel("QuickScale", func() streams.Operator { return &scaleOp{} },
		&streams.OpModel{
			Doc:     "adds delta to the seq attribute, counting scaled tuples",
			Inputs:  streams.ExactlyPorts(1),
			Outputs: streams.ExactlyPorts(1),
			Params: []streams.ParamSpec{
				{Name: "delta", Type: streams.ParamInt, Default: "1", Min: streams.Bound(0), Doc: "amount added to seq"},
			},
		})
}

func (o *scaleOp) Open(ctx streams.OpContext) error {
	o.ctx = ctx
	// Error-reporting bind: a malformed delta fails Open instead of
	// silently running with the default.
	delta, err := ctx.Params().BindInt("delta", 1)
	if err != nil {
		return err
	}
	o.delta = delta
	o.seq, err = ctx.OutputSchema(0).TypedRef("seq", streams.Int)
	return err
}

func (o *scaleOp) Process(port int, t streams.Tuple) error {
	o.scaled++
	o.seq.SetInt(t, o.seq.Int(t)+o.delta)
	return o.ctx.Submit(0, t)
}

// SaveState and RestoreState make the operator checkpointable: the PE
// snapshots the counter (periodically, and on orca.Service.CheckpointPE)
// and a restarted PE hands it back before the first tuple arrives.
func (o *scaleOp) SaveState(e *streams.StateEncoder) error {
	e.PutInt(o.scaled)
	return nil
}

func (o *scaleOp) RestoreState(d *streams.StateDecoder) error {
	v := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	o.scaled = v
	restoredCount.Store(v)
	return nil
}

// restartPolicy is a complete adaptation routine: its Setup submits the
// managed application and pairs a PE-failure scope with its typed
// handler in one expression; the platform checkpoints on an interval,
// so restarting whatever crashes is stateful. Setup errors (unknown
// application, duplicate scope key) surface out of svc.Start instead of
// panicking inside an event handler.
type restartPolicy struct {
	restarted chan streams.PEID
}

func (p *restartPolicy) Name() string { return "restart" }

func (p *restartPolicy) Setup(sc *orca.SetupContext) error {
	fmt.Printf("routine %s setting up\n", sc.Routine())
	if _, err := sc.Actions().SubmitApplication("hello", nil); err != nil {
		return err
	}
	return sc.Subscribe(orca.OnPEFailure(
		orca.NewPEFailureScope("failures").AddApplicationFilter("hello"),
		func(ctx *orca.PEFailureContext, act *orca.Actions) error {
			fmt.Printf("PE %s crashed on %s (%s), operators %v — restarting with restore\n",
				ctx.PE, ctx.Host, ctx.Reason, ctx.Operators)
			if err := act.RestartPE(ctx.PE); err != nil {
				return err
			}
			p.restarted <- ctx.PE
			return nil
		}))
}

func main() {
	// A checkpoint store turns PE restarts stateful. NewFSCheckpointStore
	// persists across processes; the in-memory store is enough here.
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:              []streams.HostSpec{{Name: "alpha"}, {Name: "beta"}},
		Checkpoint:         streams.NewMemCheckpointStore(),
		CheckpointInterval: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	// The operator model catches misconfiguration at Build time: an
	// unknown kind, a mistyped parameter, and a bad port index all
	// surface in one accumulated, operator-qualified error.
	bad := streams.NewApp("broken")
	badSrc := bad.AddOperator("src", "Beacn").Out( // typo'd kind
		streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int}))
	badScale := bad.AddOperator("scale", "QuickScale").
		In(streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})).
		Out(streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})).
		Param("delta", "ten") // not an int64
	bad.Connect(badSrc, 2, badScale, 0) // no output port 2
	if _, err := bad.Build(streams.BuildOptions{}); err != nil {
		fmt.Printf("build-time validation caught the broken app:\n  %v\n\n", err)
	}

	// Build the real application: an unbounded beacon feeding the custom
	// scaler and a collecting sink, one PE per operator so the failure
	// hits a single stage.
	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	b := streams.NewApp("hello")
	src := b.AddOperator("src", "Beacon").Out(schema).
		Param("count", "0").Param("period", "1ms")
	scale := b.AddOperator("scale", "QuickScale").In(schema).Out(schema).
		Param("delta", "10")
	sink := b.AddOperator("sink", "CollectSink").In(schema).
		Param("collectorId", "quickstart")
	b.Connect(src, 0, scale, 0)
	b.Connect(scale, 0, sink, 0)
	app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		log.Fatal(err)
	}

	policy := &restartPolicy{restarted: make(chan streams.PEID, 1)}
	svc, err := orca.NewRoutineService(orca.Config{
		Name: "quickstart", SAM: inst.SAM, SRM: inst.SRM,
	}, policy)
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		log.Fatal(err)
	}
	// Start runs the routine's Setup: the subscription registers and the
	// application submits before the first event is delivered.
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}
	defer svc.Stop()

	// Let some data flow, then inject a failure into the stateful
	// scaler's PE.
	coll := streams.Collector("quickstart")
	for coll.Len() < 20 {
		time.Sleep(time.Millisecond)
	}
	jobs := svc.ManagedJobs()
	g, _ := svc.Graph(jobs[0].Job)
	scalePE, _ := g.PEOfOperator("scale")
	host, _ := g.HostOfPE(scalePE)
	fmt.Printf("pipeline running: %d tuples so far; scaler in %s on %s\n", coll.Len(), scalePE, host)

	// Snapshot on demand right before the fault, so the demo recovers
	// the freshest possible state (the 20 ms interval checkpoints too).
	if err := svc.CheckpointPE(scalePE); err != nil {
		log.Fatal(err)
	}
	if err := svc.KillPE(scalePE, "demo fault injection"); err != nil {
		log.Fatal(err)
	}
	<-policy.restarted

	// Confirm the flow resumes after the restart, with restored state.
	before := coll.Len()
	for coll.Len() <= before {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("flow resumed after restart: %d tuples delivered\n", coll.Len())
	if n := restoredCount.Load(); n > 0 {
		fmt.Printf("scaler state survived the crash: restored counter = %d scaled tuples\n", n)
	} else {
		log.Fatal("scaler state was not restored")
	}
	fmt.Println("quickstart OK")
}
