// Command sentiment runs the paper's §5.1 use case end to end:
// a Twitter sentiment-analysis pipeline whose complaint-cause model is
// recomputed by an external batch job whenever the orchestrator observes
// too many unknown causes (Figure 8). The complaint distribution shifts
// mid-stream to an unmodelled cause ("antenna"); the policy detects the
// threshold crossing, launches the batch job, and the ratio recovers.
package main

import (
	"fmt"
	"log"

	"streamorca/internal/exp"
)

func main() {
	cfg := exp.DefaultE1()
	fmt.Printf("running sentiment adaptation: shift at tweet %d, threshold %.1f\n",
		cfg.ShiftAt, cfg.Threshold)
	res, err := exp.RunE1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunknown/known cause ratio by metric epoch (Figure 8):")
	fmt.Println("epoch,ratio")
	for _, p := range res.Series {
		fmt.Printf("%d,%.3f\n", p.Epoch, p.Ratio)
	}
	fmt.Printf("\nthreshold crossed at epoch %d\n", res.CrossEpoch)
	fmt.Printf("batch jobs triggered: %d\n", res.Triggers)
	fmt.Printf("model version after adaptation: %d (causes %v)\n", res.ModelVersion, res.FinalCauses)
	fmt.Printf("ratio back below 1.0 at epoch %d\n", res.RecoverEpoch)
}
