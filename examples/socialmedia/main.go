// Command socialmedia runs the paper's §5.3 use case end to end: the
// C1/C2/C3 social-media application set under a dynamic-composition
// orchestrator. C2 query applications are started through the dependency
// manager (their C1 readers come up automatically); when enough new
// profiles with an attribute accumulate, a C3 segmentation job spawns;
// its final punctuation contracts the graph again (Figure 10).
package main

import (
	"fmt"
	"log"

	"streamorca/internal/exp"
)

func main() {
	cfg := exp.DefaultE3()
	fmt.Printf("running dynamic composition: C3 threshold %d new profiles\n", cfg.Threshold)
	res, err := exp.RunE3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbase application set: %d jobs (2 C1 readers + 3 C2 queries)\n", res.BaseJobs)
	fmt.Printf("peak concurrent jobs: %d\n", res.MaxJobs)
	fmt.Printf("final jobs after contraction: %d\n", res.FinalJobs)
	fmt.Printf("C3 submissions (attribute order): %v\n", res.Submissions)
	fmt.Printf("C3 cancellations: %v\n", res.Cancellations)
	fmt.Printf("deduplicated profiles in the data store: %d\n", res.StoreProfiles)
	fmt.Println("\nrunning job count over time (Figure 10):")
	fmt.Println("elapsed_ms,jobs")
	for _, s := range res.Timeline {
		fmt.Printf("%d,%d\n", s.Elapsed.Milliseconds(), s.Jobs)
	}
}
