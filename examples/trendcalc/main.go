// Command trendcalc runs the paper's §5.2 use case end to end: three
// replicas of the Trend Calculator financial application in exclusive
// host pools, managed by a failover orchestrator. A PE of the active
// replica is killed; the policy promotes a backup (without a checkpoint
// store no snapshot ages exist, so the staleness ranking falls back to
// the oldest backup) and restarts the failed PE, which then needs a
// full sliding window of fresh ticks before its output matches the
// healthy replicas again (Figure 9).
package main

import (
	"fmt"
	"log"

	"streamorca/internal/exp"
)

func main() {
	cfg := exp.DefaultE2()
	fmt.Printf("running trend calculator failover: window %v, tick every %v\n",
		cfg.Window, cfg.TickPeriod)
	res, err := exp.RunE2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplica hosts (exclusive pools): %v\n", res.Hosts)
	fmt.Printf("active before kill: replica %d; killed: replica %d\n", res.ActiveBefore, res.KilledReplica)
	fmt.Printf("active after failover: replica %d (oldest backup: uptime fallback)\n", res.ActiveAfter)
	fmt.Printf("failover latency: %v\n", res.FailoverLatency)
	fmt.Printf("failed replica output gap: %v\n", res.OutputGap)
	fmt.Printf("window refill time: %v (window %v)\n", res.RefillTime, cfg.Window)
	fmt.Println("\nwindow fill per replica over time (Figure 9):")
	fmt.Println("elapsed_ms,active,win_r0,win_r1,win_r2")
	for _, s := range res.Series {
		fmt.Printf("%d,%d,%d,%d,%d\n", s.Elapsed.Milliseconds(), s.Active,
			s.WindowCounts[0], s.WindowCounts[1], s.WindowCounts[2])
	}
}
