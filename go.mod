module streamorca

go 1.24
