// Package adl implements the Application Description Language artifact:
// the compiler-produced description of a streaming application covering
// both its logical view (operators, composite instance tree, stream
// connections, exports/imports) and its physical view (PE partitions,
// host pools, placement constraints). The System S runtime starts jobs
// from an ADL, and the ORCA service builds its in-memory stream graph
// representation from the same artifact, as described in §2.1 and §3 of
// the paper.
package adl

import (
	"encoding/json"
	"fmt"
	"sort"

	"streamorca/internal/tuple"
)

// Application is a complete ADL document.
type Application struct {
	Name       string              `json:"name"`
	Composites []CompositeInstance `json:"composites,omitempty"`
	Operators  []Operator          `json:"operators"`
	Connects   []Connection        `json:"connections,omitempty"`
	Exports    []Export            `json:"exports,omitempty"`
	Imports    []Import            `json:"imports,omitempty"`
	PEs        []PE                `json:"pes"`
	HostPools  []HostPool          `json:"hostPools,omitempty"`
	Regions    []Region            `json:"regions,omitempty"`
}

// Region records one key-partitioned parallel region the compiler
// expanded: the replicated operators plus the hash split and merge
// wrapped around them. SAM's ResizeRegion actuation reads this record
// to know which operators (and hence PEs) a width change replaces, and
// rewrites it to the new width.
type Region struct {
	Name     string   `json:"name"`     // the declared operator's name (replica name prefix)
	Key      string   `json:"key"`      // tuple attribute the split hashes on
	Width    int      `json:"width"`    // current replica count
	Split    string   `json:"split"`    // auto-inserted hash-split operator
	Merge    string   `json:"merge"`    // auto-inserted merge operator
	Replicas []string `json:"replicas"` // replica operator names, port order
}

// CompositeInstance is one instantiation of a composite operator type in
// the application's instance tree. Parent is the enclosing composite
// instance name, or "" for top-level instances.
type CompositeInstance struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Parent string `json:"parent,omitempty"`
}

// Operator is one operator instance of the logical graph.
type Operator struct {
	Name      string            `json:"name"` // fully qualified instance name
	Kind      string            `json:"kind"` // operator type, e.g. "Filter"
	Composite string            `json:"composite,omitempty"`
	Params    map[string]string `json:"params,omitempty"`
	Inputs    []Port            `json:"inputs,omitempty"`
	Outputs   []Port            `json:"outputs,omitempty"`
}

// Port describes one input or output port and its stream schema.
type Port struct {
	Schema []tuple.Attribute `json:"schema"`
}

// SchemaOf materialises the port's schema object.
func (p Port) SchemaOf() (*tuple.Schema, error) { return tuple.NewSchema(p.Schema...) }

// Connection is a static stream edge between two operators of the same
// application.
type Connection struct {
	FromOp   string `json:"fromOp"`
	FromPort int    `json:"fromPort"`
	ToOp     string `json:"toOp"`
	ToPort   int    `json:"toPort"`
}

// Export publishes an operator output port under a stream id and a set of
// properties, so other jobs can import it at runtime (§2.1).
type Export struct {
	Operator   string            `json:"operator"`
	Port       int               `json:"port"`
	StreamID   string            `json:"streamId,omitempty"`
	Properties map[string]string `json:"properties,omitempty"`
}

// Import subscribes an operator input port to exported streams, either by
// exact stream id or by requiring a subset of properties.
type Import struct {
	Operator   string            `json:"operator"`
	Port       int               `json:"port"`
	StreamID   string            `json:"streamId,omitempty"`
	Properties map[string]string `json:"properties,omitempty"`
}

// Matches reports whether the import subscription selects the given
// export: stream ids must match when the import names one; otherwise every
// import property must be present with the same value on the export.
func (im Import) Matches(ex Export) bool {
	if im.StreamID != "" {
		return im.StreamID == ex.StreamID
	}
	if len(im.Properties) == 0 {
		return false
	}
	for k, v := range im.Properties {
		if ex.Properties[k] != v {
			return false
		}
	}
	return true
}

// PE is one physical partition: the set of operators fused into a single
// runtime container (operating-system process in System S, goroutine
// container here).
type PE struct {
	Index     int      `json:"index"` // partition index within the application
	Operators []string `json:"operators"`
	Pool      string   `json:"pool,omitempty"`      // host pool to place on
	Colocate  string   `json:"colocate,omitempty"`  // PEs sharing a tag land on the same host
	IsolatePE bool     `json:"isolatePE,omitempty"` // demand a host with no other PE of this app
	Restart   bool     `json:"restart,omitempty"`   // platform auto-restart on crash (off by default; the orchestrator decides)
}

// HostPool names a set of candidate hosts (explicitly, or by tag). An
// exclusive pool's hosts may not be used by any other application —
// the ORCA service's MakeExclusiveHostPools actuation rewrites pools to
// exclusive before submission (§4.3).
type HostPool struct {
	Name      string   `json:"name"`
	Hosts     []string `json:"hosts,omitempty"`
	Tags      []string `json:"tags,omitempty"`
	Size      int      `json:"size,omitempty"` // 0 means unbounded
	Exclusive bool     `json:"exclusive,omitempty"`
}

// DefaultPool is the pool name used when an application does not declare
// any host pools: it admits every host in the cluster.
const DefaultPool = "default"

// Validate checks structural integrity: unique names, resolvable
// references, schema-compatible connections, and an exact partition of the
// operators into PEs.
func (a *Application) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("adl: application has no name")
	}
	comps := make(map[string]*CompositeInstance, len(a.Composites))
	for i := range a.Composites {
		c := &a.Composites[i]
		if c.Name == "" || c.Kind == "" {
			return fmt.Errorf("adl: composite %d has empty name or kind", i)
		}
		if _, dup := comps[c.Name]; dup {
			return fmt.Errorf("adl: duplicate composite instance %q", c.Name)
		}
		comps[c.Name] = c
	}
	for _, c := range a.Composites {
		if c.Parent != "" {
			if _, ok := comps[c.Parent]; !ok {
				return fmt.Errorf("adl: composite %q has unknown parent %q", c.Name, c.Parent)
			}
		}
	}
	if err := a.checkCompositeAcyclic(comps); err != nil {
		return err
	}

	ops := make(map[string]*Operator, len(a.Operators))
	for i := range a.Operators {
		op := &a.Operators[i]
		if op.Name == "" || op.Kind == "" {
			return fmt.Errorf("adl: operator %d has empty name or kind", i)
		}
		if _, dup := ops[op.Name]; dup {
			return fmt.Errorf("adl: duplicate operator %q", op.Name)
		}
		if op.Composite != "" {
			if _, ok := comps[op.Composite]; !ok {
				return fmt.Errorf("adl: operator %q in unknown composite %q", op.Name, op.Composite)
			}
		}
		for pi, p := range append(append([]Port(nil), op.Inputs...), op.Outputs...) {
			if _, err := p.SchemaOf(); err != nil {
				return fmt.Errorf("adl: operator %q port %d: %v", op.Name, pi, err)
			}
		}
		ops[op.Name] = op
	}

	for _, c := range a.Connects {
		from, ok := ops[c.FromOp]
		if !ok {
			return fmt.Errorf("adl: connection from unknown operator %q", c.FromOp)
		}
		to, ok := ops[c.ToOp]
		if !ok {
			return fmt.Errorf("adl: connection to unknown operator %q", c.ToOp)
		}
		if c.FromPort < 0 || c.FromPort >= len(from.Outputs) {
			return fmt.Errorf("adl: connection from %q port %d out of range", c.FromOp, c.FromPort)
		}
		if c.ToPort < 0 || c.ToPort >= len(to.Inputs) {
			return fmt.Errorf("adl: connection to %q port %d out of range", c.ToOp, c.ToPort)
		}
		fs, _ := from.Outputs[c.FromPort].SchemaOf()
		ts, _ := to.Inputs[c.ToPort].SchemaOf()
		if !fs.Equal(ts) {
			return fmt.Errorf("adl: schema mismatch on %s:%d -> %s:%d (%s vs %s)",
				c.FromOp, c.FromPort, c.ToOp, c.ToPort, fs, ts)
		}
	}

	for _, e := range a.Exports {
		op, ok := ops[e.Operator]
		if !ok {
			return fmt.Errorf("adl: export from unknown operator %q", e.Operator)
		}
		if e.Port < 0 || e.Port >= len(op.Outputs) {
			return fmt.Errorf("adl: export port %d of %q out of range", e.Port, e.Operator)
		}
		if e.StreamID == "" && len(e.Properties) == 0 {
			return fmt.Errorf("adl: export from %q has neither stream id nor properties", e.Operator)
		}
	}
	for _, im := range a.Imports {
		op, ok := ops[im.Operator]
		if !ok {
			return fmt.Errorf("adl: import into unknown operator %q", im.Operator)
		}
		if im.Port < 0 || im.Port >= len(op.Inputs) {
			return fmt.Errorf("adl: import port %d of %q out of range", im.Port, im.Operator)
		}
		if im.StreamID == "" && len(im.Properties) == 0 {
			return fmt.Errorf("adl: import into %q has neither stream id nor properties", im.Operator)
		}
	}

	pools := make(map[string]bool, len(a.HostPools))
	for _, hp := range a.HostPools {
		if hp.Name == "" {
			return fmt.Errorf("adl: host pool with empty name")
		}
		if pools[hp.Name] {
			return fmt.Errorf("adl: duplicate host pool %q", hp.Name)
		}
		pools[hp.Name] = true
	}

	if len(a.PEs) == 0 && len(a.Operators) > 0 {
		return fmt.Errorf("adl: application has operators but no PEs")
	}
	seen := make(map[string]int, len(ops))
	for _, pe := range a.PEs {
		if len(pe.Operators) == 0 {
			return fmt.Errorf("adl: PE %d contains no operators", pe.Index)
		}
		for _, name := range pe.Operators {
			if _, ok := ops[name]; !ok {
				return fmt.Errorf("adl: PE %d contains unknown operator %q", pe.Index, name)
			}
			if prev, dup := seen[name]; dup {
				return fmt.Errorf("adl: operator %q assigned to PEs %d and %d", name, prev, pe.Index)
			}
			seen[name] = pe.Index
		}
		if pe.Pool != "" && !pools[pe.Pool] && pe.Pool != DefaultPool {
			return fmt.Errorf("adl: PE %d references unknown pool %q", pe.Index, pe.Pool)
		}
	}
	for name := range ops {
		if _, ok := seen[name]; !ok {
			return fmt.Errorf("adl: operator %q is not assigned to any PE", name)
		}
	}

	regions := make(map[string]bool, len(a.Regions))
	for _, r := range a.Regions {
		if r.Name == "" || r.Key == "" {
			return fmt.Errorf("adl: region with empty name or key")
		}
		if regions[r.Name] {
			return fmt.Errorf("adl: duplicate region %q", r.Name)
		}
		regions[r.Name] = true
		if r.Width < 1 || r.Width != len(r.Replicas) {
			return fmt.Errorf("adl: region %q width %d does not match %d replicas", r.Name, r.Width, len(r.Replicas))
		}
		for _, name := range append([]string{r.Split, r.Merge}, r.Replicas...) {
			if _, ok := ops[name]; !ok {
				return fmt.Errorf("adl: region %q references unknown operator %q", r.Name, name)
			}
		}
	}
	return nil
}

// Region returns the named parallel region, or nil.
func (a *Application) Region(name string) *Region {
	for i := range a.Regions {
		if a.Regions[i].Name == name {
			return &a.Regions[i]
		}
	}
	return nil
}

func (a *Application) checkCompositeAcyclic(comps map[string]*CompositeInstance) error {
	for name := range comps {
		slow, fast := name, name
		for {
			fast = comps[fast].Parent
			if fast == "" {
				break
			}
			if _, ok := comps[fast]; !ok {
				break // dangling parent reported elsewhere
			}
			fast = comps[fast].Parent
			if fast == "" {
				break
			}
			slow = comps[slow].Parent
			if slow == fast {
				return fmt.Errorf("adl: composite containment cycle through %q", name)
			}
		}
	}
	return nil
}

// OperatorByName returns the named operator, or nil.
func (a *Application) OperatorByName(name string) *Operator {
	for i := range a.Operators {
		if a.Operators[i].Name == name {
			return &a.Operators[i]
		}
	}
	return nil
}

// CompositeByName returns the named composite instance, or nil.
func (a *Application) CompositeByName(name string) *CompositeInstance {
	for i := range a.Composites {
		if a.Composites[i].Name == name {
			return &a.Composites[i]
		}
	}
	return nil
}

// CompositeChain returns the composite instance names enclosing the
// operator, innermost first. An operator outside any composite yields nil.
func (a *Application) CompositeChain(opName string) []string {
	op := a.OperatorByName(opName)
	if op == nil || op.Composite == "" {
		return nil
	}
	var chain []string
	for cur := op.Composite; cur != ""; {
		c := a.CompositeByName(cur)
		if c == nil {
			break
		}
		chain = append(chain, c.Name)
		cur = c.Parent
	}
	return chain
}

// CompositeKindChain returns the composite *types* enclosing the operator,
// innermost first.
func (a *Application) CompositeKindChain(opName string) []string {
	var kinds []string
	for _, name := range a.CompositeChain(opName) {
		if c := a.CompositeByName(name); c != nil {
			kinds = append(kinds, c.Kind)
		}
	}
	return kinds
}

// InCompositeType reports whether the operator is (transitively) contained
// in any composite instance of the given type.
func (a *Application) InCompositeType(opName, kind string) bool {
	for _, k := range a.CompositeKindChain(opName) {
		if k == kind {
			return true
		}
	}
	return false
}

// PEOfOperator returns the partition index containing the operator, or -1.
func (a *Application) PEOfOperator(opName string) int {
	for _, pe := range a.PEs {
		for _, n := range pe.Operators {
			if n == opName {
				return pe.Index
			}
		}
	}
	return -1
}

// OperatorsInPE returns the sorted operator names in the given partition.
func (a *Application) OperatorsInPE(index int) []string {
	for _, pe := range a.PEs {
		if pe.Index == index {
			out := append([]string(nil), pe.Operators...)
			sort.Strings(out)
			return out
		}
	}
	return nil
}

// MakeExclusive marks every host pool exclusive, the ADL rewrite behind
// the orchestrator's exclusive-host-pool actuation (§4.3). Applications
// with no declared pools receive a synthetic exclusive pool covering any
// host.
func (a *Application) MakeExclusive() {
	if len(a.HostPools) == 0 {
		a.HostPools = []HostPool{{Name: DefaultPool, Exclusive: true}}
		for i := range a.PEs {
			a.PEs[i].Pool = DefaultPool
		}
		return
	}
	for i := range a.HostPools {
		a.HostPools[i].Exclusive = true
	}
}

// Clone returns a deep copy, so ADL rewrites (exclusivity, parameters) on
// one submission do not leak into other submissions of the same artifact.
func (a *Application) Clone() *Application {
	data, err := json.Marshal(a)
	if err != nil {
		panic(fmt.Sprintf("adl: clone marshal: %v", err)) // all fields are JSON-safe
	}
	var out Application
	if err := json.Unmarshal(data, &out); err != nil {
		panic(fmt.Sprintf("adl: clone unmarshal: %v", err))
	}
	return &out
}

// Marshal renders the ADL as indented JSON (the XML of the paper's System
// S, transposed to Go's stdlib).
func (a *Application) Marshal() ([]byte, error) { return json.MarshalIndent(a, "", "  ") }

// Unmarshal parses and validates an ADL document.
func Unmarshal(data []byte) (*Application, error) {
	var a Application
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("adl: parse: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// UpstreamOf returns connections feeding the operator's input ports.
func (a *Application) UpstreamOf(opName string) []Connection {
	var out []Connection
	for _, c := range a.Connects {
		if c.ToOp == opName {
			out = append(out, c)
		}
	}
	return out
}

// DownstreamOf returns connections leaving the operator's output ports.
func (a *Application) DownstreamOf(opName string) []Connection {
	var out []Connection
	for _, c := range a.Connects {
		if c.FromOp == opName {
			out = append(out, c)
		}
	}
	return out
}
