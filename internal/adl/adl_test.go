package adl

import (
	"strings"
	"testing"

	"streamorca/internal/tuple"
)

func intSchema() []tuple.Attribute { return []tuple.Attribute{{Name: "v", Type: tuple.Int}} }

// figure2App builds the paper's Figure 2 application: two sources feeding
// two instances of a split-and-merge composite (composite1), fused into
// PEs that cross composite boundaries as in Figure 3.
func figure2App() *Application {
	app := &Application{Name: "Figure2"}
	app.Composites = []CompositeInstance{
		{Name: "composite1'", Kind: "composite1"},
		{Name: "composite1''", Kind: "composite1"},
	}
	addOp := func(name, kind, comp string, nin, nout int) {
		op := Operator{Name: name, Kind: kind, Composite: comp}
		for i := 0; i < nin; i++ {
			op.Inputs = append(op.Inputs, Port{Schema: intSchema()})
		}
		for i := 0; i < nout; i++ {
			op.Outputs = append(op.Outputs, Port{Schema: intSchema()})
		}
		app.Operators = append(app.Operators, op)
	}
	addOp("op1", "Beacon", "", 0, 1)
	addOp("op2", "Beacon", "", 0, 1)
	for _, suffix := range []string{"'", "''"} {
		comp := "composite1" + suffix
		addOp("op3"+suffix, "Split", comp, 1, 2)
		addOp("op4"+suffix, "Functor", comp, 1, 1)
		addOp("op5"+suffix, "Functor", comp, 1, 1)
		addOp("op6"+suffix, "Merge", comp, 2, 1)
	}
	addOp("op7", "Sink", "", 1, 0)
	addOp("op8", "Sink", "", 1, 0)
	connect := func(f string, fp int, t string, tp int) {
		app.Connects = append(app.Connects, Connection{FromOp: f, FromPort: fp, ToOp: t, ToPort: tp})
	}
	connect("op1", 0, "op3'", 0)
	connect("op2", 0, "op3''", 0)
	for _, s := range []string{"'", "''"} {
		connect("op3"+s, 0, "op4"+s, 0)
		connect("op3"+s, 1, "op5"+s, 0)
		connect("op4"+s, 0, "op6"+s, 0)
		connect("op5"+s, 0, "op6"+s, 1)
	}
	connect("op6'", 0, "op7", 0)
	connect("op6''", 0, "op8", 0)
	app.PEs = []PE{
		{Index: 0, Operators: []string{"op1", "op2", "op3'", "op3''"}},
		{Index: 1, Operators: []string{"op4'", "op5'", "op6'", "op4''", "op5''", "op6''"}},
		{Index: 2, Operators: []string{"op7", "op8"}},
	}
	return app
}

func TestFigure2Validates(t *testing.T) {
	if err := figure2App().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Application)
		want   string
	}{
		{"empty app name", func(a *Application) { a.Name = "" }, "no name"},
		{"duplicate operator", func(a *Application) { a.Operators = append(a.Operators, a.Operators[0]) }, "duplicate operator"},
		{"unknown composite", func(a *Application) { a.Operators[2].Composite = "ghost" }, "unknown composite"},
		{"duplicate composite", func(a *Application) { a.Composites = append(a.Composites, a.Composites[0]) }, "duplicate composite"},
		{"unknown parent", func(a *Application) { a.Composites[0].Parent = "ghost" }, "unknown parent"},
		{"conn from unknown", func(a *Application) { a.Connects[0].FromOp = "ghost" }, "unknown operator"},
		{"conn to unknown", func(a *Application) { a.Connects[0].ToOp = "ghost" }, "unknown operator"},
		{"conn port range", func(a *Application) { a.Connects[0].FromPort = 5 }, "out of range"},
		{"pe unknown op", func(a *Application) { a.PEs[0].Operators[0] = "ghost" }, "unknown operator"},
		{"op in two pes", func(a *Application) { a.PEs[1].Operators = append(a.PEs[1].Operators, "op1") }, "assigned to PEs"},
		{"op in no pe", func(a *Application) { a.PEs[2].Operators = []string{"op7"} }, "not assigned"},
		{"empty pe", func(a *Application) { a.PEs[2].Operators = nil }, "no operators"},
		{"bad pool ref", func(a *Application) { a.PEs[0].Pool = "ghost" }, "unknown pool"},
		{"dup pool", func(a *Application) {
			a.HostPools = []HostPool{{Name: "p"}, {Name: "p"}}
		}, "duplicate host pool"},
		{"export unknown op", func(a *Application) {
			a.Exports = []Export{{Operator: "ghost", StreamID: "s"}}
		}, "unknown operator"},
		{"export no id", func(a *Application) {
			a.Exports = []Export{{Operator: "op6'", Port: 0}}
		}, "neither stream id"},
		{"import bad port", func(a *Application) {
			a.Imports = []Import{{Operator: "op7", Port: 3, StreamID: "s"}}
		}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := figure2App()
			tc.mutate(app)
			err := app.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateSchemaMismatch(t *testing.T) {
	app := figure2App()
	app.Operators[2].Inputs[0].Schema = []tuple.Attribute{{Name: "other", Type: tuple.String}}
	err := app.Validate()
	if err == nil || !strings.Contains(err.Error(), "schema mismatch") {
		t.Fatalf("Validate() = %v, want schema mismatch", err)
	}
}

func TestValidateCompositeCycle(t *testing.T) {
	app := figure2App()
	app.Composites[0].Parent = "composite1''"
	app.Composites[1].Parent = "composite1'"
	err := app.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate() = %v, want containment cycle", err)
	}
}

func TestCompositeChains(t *testing.T) {
	app := figure2App()
	// Nest composite1' inside a new outer composite to exercise chains.
	app.Composites = append(app.Composites, CompositeInstance{Name: "outer", Kind: "outerKind"})
	app.Composites[0].Parent = "outer"
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	chain := app.CompositeChain("op4'")
	if len(chain) != 2 || chain[0] != "composite1'" || chain[1] != "outer" {
		t.Fatalf("CompositeChain(op4') = %v", chain)
	}
	kinds := app.CompositeKindChain("op4'")
	if len(kinds) != 2 || kinds[0] != "composite1" || kinds[1] != "outerKind" {
		t.Fatalf("CompositeKindChain(op4') = %v", kinds)
	}
	if !app.InCompositeType("op4'", "outerKind") {
		t.Fatal("op4' not reported inside outerKind")
	}
	if app.InCompositeType("op1", "composite1") {
		t.Fatal("op1 reported inside composite1")
	}
	if app.CompositeChain("op1") != nil {
		t.Fatal("top-level operator has a composite chain")
	}
}

func TestPEQueries(t *testing.T) {
	app := figure2App()
	if pe := app.PEOfOperator("op4''"); pe != 1 {
		t.Fatalf("PEOfOperator(op4'') = %d", pe)
	}
	if pe := app.PEOfOperator("ghost"); pe != -1 {
		t.Fatalf("PEOfOperator(ghost) = %d", pe)
	}
	ops := app.OperatorsInPE(0)
	if len(ops) != 4 || ops[0] != "op1" {
		t.Fatalf("OperatorsInPE(0) = %v", ops)
	}
	if app.OperatorsInPE(99) != nil {
		t.Fatal("OperatorsInPE(99) non-nil")
	}
}

func TestUpstreamDownstream(t *testing.T) {
	app := figure2App()
	up := app.UpstreamOf("op6'")
	if len(up) != 2 {
		t.Fatalf("UpstreamOf(op6') = %v", up)
	}
	down := app.DownstreamOf("op3'")
	if len(down) != 2 {
		t.Fatalf("DownstreamOf(op3') = %v", down)
	}
}

func TestImportMatches(t *testing.T) {
	ex := Export{StreamID: "trades", Properties: map[string]string{"kind": "stock", "venue": "nyse"}}
	cases := []struct {
		im   Import
		want bool
	}{
		{Import{StreamID: "trades"}, true},
		{Import{StreamID: "quotes"}, false},
		{Import{Properties: map[string]string{"kind": "stock"}}, true},
		{Import{Properties: map[string]string{"kind": "stock", "venue": "nyse"}}, true},
		{Import{Properties: map[string]string{"kind": "fx"}}, false},
		{Import{Properties: map[string]string{"kind": "stock", "extra": "x"}}, false},
		{Import{}, false},
	}
	for i, tc := range cases {
		if got := tc.im.Matches(ex); got != tc.want {
			t.Fatalf("case %d: Matches = %v, want %v", i, got, tc.want)
		}
	}
}

func TestMakeExclusive(t *testing.T) {
	app := figure2App()
	app.MakeExclusive()
	if len(app.HostPools) != 1 || !app.HostPools[0].Exclusive || app.HostPools[0].Name != DefaultPool {
		t.Fatalf("MakeExclusive with no pools: %+v", app.HostPools)
	}
	for _, pe := range app.PEs {
		if pe.Pool != DefaultPool {
			t.Fatalf("PE %d pool = %q", pe.Index, pe.Pool)
		}
	}
	app2 := figure2App()
	app2.HostPools = []HostPool{{Name: "a"}, {Name: "b", Exclusive: true}}
	app2.MakeExclusive()
	for _, p := range app2.HostPools {
		if !p.Exclusive {
			t.Fatalf("pool %q not exclusive", p.Name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	app := figure2App()
	app.HostPools = []HostPool{{Name: "p", Hosts: []string{"h1"}}}
	app.PEs[0].Pool = "p"
	cl := app.Clone()
	cl.HostPools[0].Hosts[0] = "h2"
	cl.Operators[0].Name = "renamed"
	cl.PEs[0].Operators[0] = "renamed"
	if app.HostPools[0].Hosts[0] != "h1" || app.Operators[0].Name != "op1" {
		t.Fatal("Clone shares storage with original")
	}
	if err := app.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	app := figure2App()
	app.Exports = []Export{{Operator: "op6'", Port: 0, StreamID: "merged", Properties: map[string]string{"k": "v"}}}
	app.Imports = []Import{{Operator: "op7", Port: 0, StreamID: "merged"}}
	data, err := app.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != app.Name || len(got.Operators) != len(app.Operators) ||
		len(got.Connects) != len(app.Connects) || len(got.PEs) != len(app.PEs) {
		t.Fatal("round trip lost structure")
	}
	if got.PEOfOperator("op5''") != app.PEOfOperator("op5''") {
		t.Fatal("round trip changed partitioning")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"name":""}`)); err == nil {
		t.Fatal("Unmarshal accepted invalid ADL")
	}
	if _, err := Unmarshal([]byte(`not json`)); err == nil {
		t.Fatal("Unmarshal accepted garbage")
	}
}
