package apps

import (
	"testing"
	"time"

	"streamorca/internal/extjob"
	"streamorca/internal/ids"
	"streamorca/internal/opapi"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
)

func newInst(t *testing.T) *platform.Instance {
	t.Helper()
	inst, err := platform.NewInstance(platform.Options{
		Hosts:           []platform.HostSpec{{Name: "h1"}, {Name: "h2"}, {Name: "h3"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return inst
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestProfileStoreDedup(t *testing.T) {
	s := NewProfileStore()
	if !s.Add(ProfileRecord{User: "u1", HasAge: true}) {
		t.Fatal("first add not new")
	}
	if s.Add(ProfileRecord{User: "u1"}) {
		t.Fatal("duplicate add reported new")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].User != "u1" || !snap[0].HasAge {
		t.Fatalf("Snapshot = %+v", snap)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestGetProfileStoreShared(t *testing.T) {
	a := GetProfileStore("apps-test-shared")
	b := GetProfileStore("apps-test-shared")
	if a != b {
		t.Fatal("registry returned distinct stores")
	}
}

func TestSentimentAppEndToEnd(t *testing.T) {
	inst := newInst(t)
	extjob.SetModel("sa-model", extjob.NewModel("flash", "screen"))
	ops.ResetCollector("sa-coll")
	app, err := SentimentApp(SentimentConfig{
		Name: "SA", Collector: "sa-coll", ModelID: "sa-model", StoreID: "sa-store",
		Product: "iPhone", Seed: 1, Count: 500, Causes: "flash,screen",
		RecentWindow: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if app.OperatorByName(MatcherOp) == nil {
		t.Fatalf("matcher operator %q missing", MatcherOp)
	}
	if !app.InCompositeType(MatcherOp, "SentimentAnalysis") {
		t.Fatal("matcher not inside the analysis composite")
	}
	job, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pipeline completion", func() bool { return ops.Collector("sa-coll").Finals() == 1 })
	// All causes were known: the display stream carries known=true rows,
	// the corpus collected negative tweets, the metrics counted them.
	coll := ops.Collector("sa-coll")
	if coll.Len() == 0 {
		t.Fatal("no cause-matched output")
	}
	for _, tp := range coll.Tuples() {
		if !tp.Bool("known") {
			t.Fatalf("unexpected unknown cause: %s", tp.Format())
		}
	}
	if extjob.GetStore("sa-store").Len() != coll.Len() {
		t.Fatalf("corpus %d != matched %d", extjob.GetStore("sa-store").Len(), coll.Len())
	}
	inst.FlushMetrics()
	var known, unknown int64
	for _, m := range inst.SRM.Query([]ids.JobID{job}) {
		if m.Operator == MatcherOp && m.Custom {
			switch m.Name {
			case "totalKnownCauses":
				known = m.Value
			case "totalUnknownCauses":
				unknown = m.Value
			}
		}
	}
	if known == 0 || unknown != 0 {
		t.Fatalf("metrics known=%d unknown=%d", known, unknown)
	}
}

func TestTrendAppProducesWindowStats(t *testing.T) {
	inst := newInst(t)
	ops.ResetCollector("ta-coll")
	app, err := TrendApp(TrendConfig{
		Name: "TA", Symbols: "IBM,HPQ", Seed: 2, Count: 400,
		Period: 0, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.PEs) != 3 {
		t.Fatalf("TrendApp PEs = %d", len(app.PEs))
	}
	if _, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{
		Params: map[string]string{"collector": "ta-coll"},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "trend output", func() bool { return ops.Collector("ta-coll").Finals() == 1 })
	coll := ops.Collector("ta-coll")
	if coll.Len() != 400 {
		t.Fatalf("outputs = %d", coll.Len())
	}
	last, _ := coll.Last()
	if last.Float("min") > last.Float("avg") || last.Float("avg") > last.Float("max") {
		t.Fatalf("stats inconsistent: %s", last.Format())
	}
	if last.Float("bbUpper") < last.Float("avg") || last.Float("bbLower") > last.Float("avg") {
		t.Fatalf("bollinger inconsistent: %s", last.Format())
	}
	if last.Int("count") != 200 { // two symbols round-robin over 400 ticks
		t.Fatalf("window count = %d", last.Int("count"))
	}
}

func TestSocialAppsComposeViaImportExport(t *testing.T) {
	inst := newInst(t)
	storeID := "social-test-store"
	GetProfileStore(storeID).Reset()
	cfg := SocialConfig{StoreID: storeID, Seed: 3, Period: 100 * time.Microsecond}
	c1, err := C1App("C1T", "twitter", cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := C2App("C2Q", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SAM.SubmitJob(c1, sam.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SAM.SubmitJob(c2, sam.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "profiles in store", func() bool { return GetProfileStore(storeID).Len() > 100 })

	// C3 snapshots the store and finishes with a final punctuation.
	ops.ResetCollector("social-seg")
	c3, err := C3App("C3A", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SAM.SubmitJob(c3, sam.SubmitOptions{
		Params: map[string]string{"attribute": "age", "collector": "social-seg"},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "segmentation done", func() bool { return ops.Collector("social-seg").Finals() == 1 })
	rows := ops.Collector("social-seg").Tuples()
	if len(rows) != 2 {
		t.Fatalf("segment rows = %d", len(rows))
	}
	var total int64
	for _, r := range rows {
		if r.String("attribute") != "age" {
			t.Fatalf("row attribute %q", r.String("attribute"))
		}
		total += r.Int("count")
	}
	if total == 0 {
		t.Fatal("segmentation counted nothing")
	}
}

func TestC3AppRejectsBadAttribute(t *testing.T) {
	inst := newInst(t)
	cfg := SocialConfig{StoreID: "social-bad", Period: time.Millisecond}
	c3, err := C3App("C3Bad", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Missing attribute parameter: the operator fails to open and the
	// submission rolls back.
	if _, err := inst.SAM.SubmitJob(c3, sam.SubmitOptions{
		Params: map[string]string{"collector": "x"},
	}); err == nil {
		t.Fatal("submission with unresolved attribute succeeded")
	}
}

// TestAppKindsDeclareModels pins the descriptor contract: every
// application operator kind registers an operator model, so the
// compiler validates app pipelines at Build time.
func TestAppKindsDeclareModels(t *testing.T) {
	for _, kind := range []string{
		KindTweetSource, KindSentiment, KindCauseMatcher, KindTickSource,
		KindProfileSource, KindProfileEnrich, KindSegmentSource,
	} {
		if opapi.Default.Model(kind) == nil {
			t.Errorf("kind %s registered without an operator model", kind)
		}
	}
}
