package apps

import (
	"fmt"
	"strconv"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/compiler"
	"streamorca/internal/ops"
)

// SentimentConfig parameterises the §5.1 sentiment-analysis application.
type SentimentConfig struct {
	Name         string
	Collector    string // CollectSink collection id
	ModelID      string // shared cause model
	StoreID      string // shared negative-tweet corpus
	Product      string
	Seed         int64
	Count        int64 // tweets to emit; 0 = unbounded
	Period       time.Duration
	Causes       string // csv cause vocabulary before the shift
	ShiftAt      int64  // tweet index where the cause mix changes
	CausesAfter  string // csv vocabulary after the shift
	RecentWindow int64
}

// SentimentApp builds the Figure 1 pipeline without the embedded
// adaptation operators (the orchestrator owns adaptation instead): tweet
// source → product filter → sentiment classifier → cause matcher → sink,
// with the analysis stages grouped in a composite.
func SentimentApp(cfg SentimentConfig) (*adl.Application, error) {
	if cfg.Name == "" {
		cfg.Name = "Sentiment"
	}
	if cfg.Product == "" {
		cfg.Product = "iPhone"
	}
	b := compiler.NewApp(cfg.Name)
	src := b.AddOperator("tweets", KindTweetSource).Out(TweetSchema).
		Param("product", cfg.Product).
		Param("seed", strconv.FormatInt(cfg.Seed, 10)).
		Param("count", strconv.FormatInt(cfg.Count, 10)).
		Param("period", cfg.Period.String()).
		Param("causes", cfg.Causes).
		Param("shiftAt", strconv.FormatInt(cfg.ShiftAt, 10)).
		Param("causesAfter", cfg.CausesAfter)
	filt := b.AddOperator("productFilter", ops.KindFilter).In(TweetSchema).Out(TweetSchema).
		Param("attr", "product").Param("op", "eq").Param("value", cfg.Product)
	var classify, match *compiler.OpHandle
	b.Composite("SentimentAnalysis", "analysis", func() {
		classify = b.AddOperator("classify", KindSentiment).In(TweetSchema).Out(TweetSchema).Colocate("analysis")
		match = b.AddOperator("causes", KindCauseMatcher).In(TweetSchema).Out(CauseSchema).
			Param("modelId", cfg.ModelID).
			Param("storeId", cfg.StoreID).
			Param("recentWindow", strconv.FormatInt(cfg.RecentWindow, 10)).
			Colocate("analysis")
	})
	sink := b.AddOperator("display", ops.KindCollectSink).In(CauseSchema).
		Param("collectorId", cfg.Collector).Param("limit", "1000")
	b.Connect(src, 0, filt, 0)
	b.Connect(filt, 0, classify, 0)
	b.Connect(classify, 0, match, 0)
	b.Connect(match, 0, sink, 0)
	return b.Build(compiler.Options{Fusion: compiler.FuseByTag})
}

// MatcherOp is the fully qualified instance name of the sentiment
// application's cause-matcher operator.
const MatcherOp = "analysis.causes"

// TrendConfig parameterises the §5.2 Trend Calculator application.
type TrendConfig struct {
	Name    string
	Symbols string // csv
	Seed    int64
	Count   int64 // ticks to emit; 0 = unbounded
	Period  time.Duration
	Window  time.Duration // sliding window (paper: 600 s)
}

// TrendApp builds the Trend Calculator: tick source → windowed financial
// aggregation (min/max/avg/Bollinger) → display sink. The collector id is
// a submission-time parameter ("collector"), so each replica writes to
// its own collection. Every PE is separate (FuseNone) so that killing the
// aggregation PE loses exactly the sliding-window state, and the single
// host pool has size 1 so exclusive-pool rewriting puts each replica on
// its own host (§5.2).
func TrendApp(cfg TrendConfig) (*adl.Application, error) {
	if cfg.Name == "" {
		cfg.Name = "TrendCalculator"
	}
	if cfg.Symbols == "" {
		cfg.Symbols = "IBM"
	}
	if cfg.Window <= 0 {
		cfg.Window = 600 * time.Second
	}
	b := compiler.NewApp(cfg.Name)
	b.HostPool(adl.HostPool{Name: "replicaPool", Size: 1})
	src := b.AddOperator("ticks", KindTickSource).Out(TickSchema).
		Param("symbols", cfg.Symbols).
		Param("seed", strconv.FormatInt(cfg.Seed, 10)).
		Param("count", strconv.FormatInt(cfg.Count, 10)).
		Param("period", cfg.Period.String()).
		Pool("replicaPool")
	agg := b.AddOperator("trend", ops.KindAggregate).In(TickSchema).Out(TrendSchema).
		Param("window", cfg.Window.String()).
		Param("groupBy", "sym").
		Param("valueAttr", "price").
		Pool("replicaPool")
	sink := b.AddOperator("display", ops.KindCollectSink).In(TrendSchema).
		Param("collectorId", "{{collector}}").Param("limit", "100000").
		Pool("replicaPool")
	b.Connect(src, 0, agg, 0)
	b.Connect(agg, 0, sink, 0)
	return b.Build(compiler.Options{Fusion: compiler.FuseNone})
}

// TrendAggregateOp is the instance name of the Trend Calculator's
// windowed aggregation operator (the stateful one whose PE the failure
// experiment kills).
const TrendAggregateOp = "trend"

// SocialConfig parameterises the §5.3 social-media application set.
type SocialConfig struct {
	StoreID string // shared profile data store
	Seed    int64
	Period  time.Duration // per-profile emission period of C1 readers
}

// C1App builds a category-1 reader application: a profile source
// exporting its stream under properties {kind: profiles, source: <name>}.
func C1App(name, source string, cfg SocialConfig) (*adl.Application, error) {
	b := compiler.NewApp(name)
	src := b.AddOperator("reader", KindProfileSource).Out(ProfileSchema).
		Param("source", source).
		Param("seed", strconv.FormatInt(cfg.Seed, 10)).
		Param("period", cfg.Period.String()).
		Param("count", "0")
	b.Export(src, 0, "", map[string]string{"kind": "profiles", "source": source})
	return b.Build(compiler.Options{Fusion: compiler.FuseAll})
}

// C2App builds a category-2 query application: it imports every exported
// profile stream and enriches profiles into the shared data store while
// maintaining the per-attribute custom metrics.
func C2App(name string, cfg SocialConfig) (*adl.Application, error) {
	b := compiler.NewApp(name)
	enrich := b.AddOperator("enricher", KindProfileEnrich).In(ProfileSchema).
		Param("storeId", cfg.StoreID)
	b.Import(enrich, 0, "", map[string]string{"kind": "profiles"})
	return b.Build(compiler.Options{Fusion: compiler.FuseAll})
}

// C3App builds the category-3 segmentation application
// (AttributeAggregator): it reads the shared data store, correlates
// sentiment with the attribute given at submission time, emits its
// results, and finishes — its sink's final punctuation drives automatic
// cancellation.
func C3App(name string, cfg SocialConfig) (*adl.Application, error) {
	b := compiler.NewApp(name)
	src := b.AddOperator("segment", KindSegmentSource).Out(SegmentSchema).
		Param("storeId", cfg.StoreID).
		Param("attribute", "{{attribute}}")
	sink := b.AddOperator("results", ops.KindCollectSink).In(SegmentSchema).
		Param("collectorId", "{{collector}}")
	b.Connect(src, 0, sink, 0)
	return b.Build(compiler.Options{Fusion: compiler.FuseAll})
}

// C3SinkOp is the instance name of the C3 result sink whose input port's
// final-punctuation metric the composition policy watches.
const C3SinkOp = "results"

// Itoa is a tiny convenience for building submission parameter maps.
func Itoa(v int64) string { return strconv.FormatInt(v, 10) }

// ReplicaCollector names the collection a Trend Calculator replica writes
// to.
func ReplicaCollector(app string, replica int) string {
	return fmt.Sprintf("%s-replica-%d", app, replica)
}
