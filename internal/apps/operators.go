package apps

import (
	"fmt"
	"strings"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/extjob"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
	"streamorca/internal/workload"
)

// segmentAttributes are the profile attributes SegmentSource segments
// by; shared between the operator model and Open's BindEnum so the two
// can never diverge.
var segmentAttributes = []string{"age", "gender", "location"}

// Application-specific operator kinds registered by this package.
const (
	KindTweetSource   = "TweetSource"
	KindSentiment     = "SentimentClassifier"
	KindCauseMatcher  = "CauseMatcher"
	KindTickSource    = "TickSource"
	KindProfileSource = "ProfileSource"
	KindProfileEnrich = "ProfileEnricher"
	KindSegmentSource = "SegmentSource"
)

// Custom metric names published by this package's operators. Adaptation
// routines subscribe to these by name, so producers and consumers share
// one constant per metric instead of re-spelling the string.
const (
	// MetricTweetsClassified counts tweets the sentiment classifier
	// has labelled.
	MetricTweetsClassified = "nTweetsClassified"
	// MetricTotalKnownCauses / MetricTotalUnknownCauses are the cause
	// matcher's cumulative counters (§5.1).
	MetricTotalKnownCauses   = "totalKnownCauses"
	MetricTotalUnknownCauses = "totalUnknownCauses"
	// MetricRecentKnownCauses / MetricRecentUnknownCauses are the cause
	// matcher's sliding-window gauges the recompute policy watches.
	MetricRecentKnownCauses   = "recentKnownCauses"
	MetricRecentUnknownCauses = "recentUnknownCauses"
	// MetricProfilesWith* count profiles the enricher discovered with
	// each attribute (§5.3); the composition policy aggregates them.
	MetricProfilesWithAge      = "profilesWithAge"
	MetricProfilesWithGender   = "profilesWithGender"
	MetricProfilesWithLocation = "profilesWithLocation"
)

func init() {
	opapi.Default.RegisterOp(KindTweetSource, func() opapi.Operator { return &tweetSource{} }, &opapi.OpModel{
		Doc: "emits synthetic tweets from the workload generator",
		Outputs: opapi.ExactlyPorts(1).WithAttrs(
			tuple.Attribute{Name: "user", Type: tuple.String},
			tuple.Attribute{Name: "text", Type: tuple.String},
			tuple.Attribute{Name: "product", Type: tuple.String},
			tuple.Attribute{Name: "negative", Type: tuple.Bool},
		),
		Params: []opapi.ParamSpec{
			{Name: "product", Type: opapi.ParamString, Default: "phone", Doc: "product the tweets mention"},
			{Name: "seed", Type: opapi.ParamInt, Default: "1", Doc: "generator seed"},
			{Name: "count", Type: opapi.ParamInt, Default: "0", Min: opapi.Bound(0), Doc: "tweets to emit; 0 = unbounded"},
			{Name: "period", Type: opapi.ParamDuration, Default: "0", Min: opapi.Bound(0), Doc: "inter-tweet delay"},
			{Name: "negRatio", Type: opapi.ParamFloat, Default: "0.8", Min: opapi.Bound(0), Max: opapi.Bound(1), Doc: "fraction of negative tweets"},
			{Name: "causes", Type: opapi.ParamString, Doc: "csv cause vocabulary before the shift"},
			{Name: "shiftAt", Type: opapi.ParamInt, Default: "0", Min: opapi.Bound(0), Doc: "tweet index where the cause mix changes"},
			{Name: "causesAfter", Type: opapi.ParamString, Doc: "csv cause vocabulary after the shift"},
		},
	})
	opapi.Default.RegisterOp(KindSentiment, func() opapi.Operator { return &sentimentClassifier{} }, &opapi.OpModel{
		Doc: "derives sentiment from tweet text",
		Inputs: opapi.ExactlyPorts(1).WithAttrs(
			tuple.Attribute{Name: "text", Type: tuple.String},
			tuple.Attribute{Name: "negative", Type: tuple.Bool},
		),
		Outputs: opapi.ExactlyPorts(1),
	})
	opapi.Default.RegisterOp(KindCauseMatcher, func() opapi.Operator { return &causeMatcher{} }, &opapi.OpModel{
		Doc: "correlates negative tweets with the known-cause model",
		Inputs: opapi.ExactlyPorts(1).WithAttrs(
			tuple.Attribute{Name: "negative", Type: tuple.Bool},
			tuple.Attribute{Name: "text", Type: tuple.String},
			tuple.Attribute{Name: "user", Type: tuple.String},
		),
		Outputs: opapi.ExactlyPorts(1).WithAttrs(
			tuple.Attribute{Name: "user", Type: tuple.String},
			tuple.Attribute{Name: "cause", Type: tuple.String},
			tuple.Attribute{Name: "known", Type: tuple.Bool},
		),
		Params: []opapi.ParamSpec{
			{Name: "modelId", Type: opapi.ParamString, Required: true, Doc: "shared cause model id"},
			{Name: "storeId", Type: opapi.ParamString, Required: true, Doc: "shared negative-tweet corpus id"},
			{Name: "recentWindow", Type: opapi.ParamInt, Default: "200", Min: opapi.Bound(0), Doc: "sliding window of recent matches"},
		},
	})
	opapi.Default.RegisterOp(KindTickSource, func() opapi.Operator { return &tickSource{} }, &opapi.OpModel{
		Doc: "emits synthetic stock trades",
		Outputs: opapi.ExactlyPorts(1).WithAttrs(
			tuple.Attribute{Name: "sym", Type: tuple.String},
			tuple.Attribute{Name: "price", Type: tuple.Float},
			tuple.Attribute{Name: "seq", Type: tuple.Int},
		),
		Params: []opapi.ParamSpec{
			{Name: "symbols", Type: opapi.ParamString, Doc: "csv stock symbols"},
			{Name: "seed", Type: opapi.ParamInt, Default: "1", Doc: "generator seed"},
			{Name: "count", Type: opapi.ParamInt, Default: "0", Min: opapi.Bound(0), Doc: "ticks to emit; 0 = unbounded"},
			{Name: "period", Type: opapi.ParamDuration, Default: "0", Min: opapi.Bound(0), Doc: "inter-tick delay"},
			{Name: "start", Type: opapi.ParamFloat, Default: "100", Doc: "starting price"},
			{Name: "step", Type: opapi.ParamFloat, Default: "1", Doc: "random-walk step size"},
		},
	})
	opapi.Default.RegisterOp(KindProfileSource, func() opapi.Operator { return &profileSource{} }, &opapi.OpModel{
		Doc:     "emits synthetic social-media profiles",
		Outputs: opapi.ExactlyPorts(1).WithAttrs(profileAttrs()...),
		Params: []opapi.ParamSpec{
			{Name: "source", Type: opapi.ParamString, Default: "twitter", Doc: "social-media site name"},
			{Name: "seed", Type: opapi.ParamInt, Default: "1", Doc: "generator seed"},
			{Name: "count", Type: opapi.ParamInt, Default: "0", Min: opapi.Bound(0), Doc: "profiles to emit; 0 = unbounded"},
			{Name: "period", Type: opapi.ParamDuration, Default: "0", Min: opapi.Bound(0), Doc: "inter-profile delay"},
			{Name: "pAge", Type: opapi.ParamFloat, Default: "0.5", Min: opapi.Bound(0), Max: opapi.Bound(1), Doc: "probability a profile carries an age"},
			{Name: "pGen", Type: opapi.ParamFloat, Default: "0.5", Min: opapi.Bound(0), Max: opapi.Bound(1), Doc: "probability a profile carries a gender"},
			{Name: "pLoc", Type: opapi.ParamFloat, Default: "0.5", Min: opapi.Bound(0), Max: opapi.Bound(1), Doc: "probability a profile carries a location"},
		},
	})
	opapi.Default.RegisterOp(KindProfileEnrich, func() opapi.Operator { return &profileEnricher{} }, &opapi.OpModel{
		Doc:    "enriches profiles into the shared data store with per-attribute metrics",
		Inputs: opapi.ExactlyPorts(1).WithAttrs(profileAttrs()...),
		Params: []opapi.ParamSpec{
			{Name: "storeId", Type: opapi.ParamString, Required: true, Doc: "shared profile store id"},
		},
	})
	opapi.Default.RegisterOp(KindSegmentSource, func() opapi.Operator { return &segmentSource{} }, &opapi.OpModel{
		Doc: "correlates stored profiles with sentiment for one attribute, then finishes",
		Outputs: opapi.ExactlyPorts(1).WithAttrs(
			tuple.Attribute{Name: "attribute", Type: tuple.String},
			tuple.Attribute{Name: "group", Type: tuple.String},
			tuple.Attribute{Name: "count", Type: tuple.Int},
		),
		Params: []opapi.ParamSpec{
			{Name: "storeId", Type: opapi.ParamString, Required: true, Doc: "shared profile store id"},
			{Name: "attribute", Type: opapi.ParamEnum, Required: true, Enum: segmentAttributes, Doc: "profile attribute to segment by"},
		},
	})
}

// profileAttrs is the attribute contract shared by the profile source's
// output and the enricher's input.
func profileAttrs() []tuple.Attribute {
	return []tuple.Attribute{
		{Name: "user", Type: tuple.String},
		{Name: "source", Type: tuple.String},
		{Name: "negative", Type: tuple.Bool},
		{Name: "hasAge", Type: tuple.Bool},
		{Name: "hasGen", Type: tuple.Bool},
		{Name: "hasLoc", Type: tuple.Bool},
	}
}

// Stream schemas of the use-case applications.
var (
	// TweetSchema carries raw tweets.
	TweetSchema = tuple.MustSchema(
		tuple.Attribute{Name: "user", Type: tuple.String},
		tuple.Attribute{Name: "text", Type: tuple.String},
		tuple.Attribute{Name: "product", Type: tuple.String},
		tuple.Attribute{Name: "negative", Type: tuple.Bool},
	)
	// CauseSchema carries cause-matched negative tweets.
	CauseSchema = tuple.MustSchema(
		tuple.Attribute{Name: "user", Type: tuple.String},
		tuple.Attribute{Name: "cause", Type: tuple.String},
		tuple.Attribute{Name: "known", Type: tuple.Bool},
	)
	// TickSchema carries stock trades.
	TickSchema = tuple.MustSchema(
		tuple.Attribute{Name: "sym", Type: tuple.String},
		tuple.Attribute{Name: "price", Type: tuple.Float},
		tuple.Attribute{Name: "seq", Type: tuple.Int},
	)
	// TrendSchema carries windowed financial aggregates (§5.2).
	TrendSchema = tuple.MustSchema(
		tuple.Attribute{Name: "sym", Type: tuple.String},
		tuple.Attribute{Name: "min", Type: tuple.Float},
		tuple.Attribute{Name: "max", Type: tuple.Float},
		tuple.Attribute{Name: "avg", Type: tuple.Float},
		tuple.Attribute{Name: "bbUpper", Type: tuple.Float},
		tuple.Attribute{Name: "bbLower", Type: tuple.Float},
		tuple.Attribute{Name: "count", Type: tuple.Int},
	)
	// ProfileSchema carries social-media profiles.
	ProfileSchema = tuple.MustSchema(
		tuple.Attribute{Name: "user", Type: tuple.String},
		tuple.Attribute{Name: "source", Type: tuple.String},
		tuple.Attribute{Name: "negative", Type: tuple.Bool},
		tuple.Attribute{Name: "hasAge", Type: tuple.Bool},
		tuple.Attribute{Name: "hasGen", Type: tuple.Bool},
		tuple.Attribute{Name: "hasLoc", Type: tuple.Bool},
	)
	// SegmentSchema carries C3 correlation results.
	SegmentSchema = tuple.MustSchema(
		tuple.Attribute{Name: "attribute", Type: tuple.String},
		tuple.Attribute{Name: "group", Type: tuple.String},
		tuple.Attribute{Name: "count", Type: tuple.Int},
	)
)

// tweetSource emits synthetic tweets from workload.TweetGen.
//
// Parameters: product, seed, count (0 = unbounded), period, negRatio,
// causes (csv), shiftAt, causesAfter (csv).
type tweetSource struct {
	opapi.Base
	ctx                      opapi.Context
	gen                      *workload.TweetGen
	count                    int64
	period                   time.Duration
	user, text, product, neg tuple.FieldRef
}

func (s *tweetSource) Open(ctx opapi.Context) error {
	s.ctx = ctx
	p := ctx.Params()
	bound := p.Bind()
	cfg := workload.TweetConfig{
		Seed:          bound.Int("seed", 1),
		Product:       bound.Str("product", "phone"),
		NegativeRatio: bound.Float("negRatio", 0.8),
		ShiftAt:       int(bound.Int("shiftAt", 0)),
	}
	s.count = bound.Int("count", 0)
	s.period = bound.Duration("period", 0)
	if err := bound.Err(); err != nil {
		return fmt.Errorf("TweetSource %s: %w", ctx.Name(), err)
	}
	if v := p.Get("causes", ""); v != "" {
		cfg.Causes = strings.Split(v, ",")
	}
	if v := p.Get("causesAfter", ""); v != "" {
		cfg.CausesAfter = strings.Split(v, ",")
	}
	s.gen = workload.NewTweetGen(cfg)
	out := ctx.OutputSchema(0)
	var err error
	if s.user, err = out.TypedRef("user", tuple.String); err != nil {
		return fmt.Errorf("TweetSource %s: %w", ctx.Name(), err)
	}
	if s.text, err = out.TypedRef("text", tuple.String); err != nil {
		return fmt.Errorf("TweetSource %s: %w", ctx.Name(), err)
	}
	if s.product, err = out.TypedRef("product", tuple.String); err != nil {
		return fmt.Errorf("TweetSource %s: %w", ctx.Name(), err)
	}
	if s.neg, err = out.TypedRef("negative", tuple.Bool); err != nil {
		return fmt.Errorf("TweetSource %s: %w", ctx.Name(), err)
	}
	return nil
}

func (s *tweetSource) Run(stop <-chan struct{}) error {
	count, period := s.count, s.period
	schema := s.ctx.OutputSchema(0)
	for i := int64(0); count == 0 || i < count; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		tw := s.gen.Next()
		t := tuple.New(schema)
		s.user.SetStr(t, tw.User)
		s.text.SetStr(t, tw.Text)
		s.product.SetStr(t, tw.Product)
		s.neg.SetBool(t, tw.Negative)
		if err := s.ctx.Submit(0, t); err != nil {
			return err
		}
		if !opapi.Sleep(s.ctx.Clock(), period, stop) {
			return nil
		}
	}
	return nil
}

// sentimentClassifier derives sentiment from the tweet text (rather than
// trusting the generator's flag), passing classified tweets through.
type sentimentClassifier struct {
	opapi.Base
	ctx       opapi.Context
	text, neg tuple.FieldRef
}

func (c *sentimentClassifier) Open(ctx opapi.Context) error {
	c.ctx = ctx
	in := ctx.InputSchema(0)
	var err error
	if c.text, err = in.TypedRef("text", tuple.String); err != nil {
		return fmt.Errorf("SentimentClassifier %s: %w", ctx.Name(), err)
	}
	if c.neg, err = in.TypedRef("negative", tuple.Bool); err != nil {
		return fmt.Errorf("SentimentClassifier %s: %w", ctx.Name(), err)
	}
	return nil
}

func (c *sentimentClassifier) Process(port int, t tuple.Tuple) error {
	out := t.Clone()
	c.neg.SetBool(out, strings.Contains(c.text.Str(t), "hate"))
	c.ctx.CustomMetric(MetricTweetsClassified).Inc()
	return c.ctx.Submit(0, out)
}

// ProcessBatch classifies the run with the counter resolved once and
// bumped in one add; the per-tuple clone stays (the classified copy
// escapes downstream).
func (c *sentimentClassifier) ProcessBatch(port int, b *tuple.Batch) error {
	text, neg := c.text, c.neg
	classified := int64(0)
	for _, t := range b.Tuples() {
		out := t.Clone()
		neg.SetBool(out, strings.Contains(text.Str(t), "hate"))
		classified++
		if err := c.ctx.Submit(0, out); err != nil {
			c.ctx.CustomMetric(MetricTweetsClassified).Add(classified)
			return err
		}
	}
	c.ctx.CustomMetric(MetricTweetsClassified).Add(classified)
	return nil
}

// causeMatcher correlates negative tweets with the known-cause model
// (§5.1). It maintains the two cumulative custom metrics the paper
// describes (totalKnownCauses, totalUnknownCauses) plus sliding-window
// gauges (recentKnownCauses, recentUnknownCauses) over the last
// recentWindow negative tweets, which give Figure 8 its post-adaptation
// drop. Negative tweet texts are appended to the batch corpus for later
// model recomputation. The sliding window and the cumulative counters
// are checkpointable state, so a restarted matcher neither forgets its
// recent-match ratio nor resets the totals the orchestrator's metric
// scopes watch.
//
// Parameters: modelId, storeId, recentWindow (default 200).
type causeMatcher struct {
	opapi.Base
	ctx    opapi.Context
	model  *extjob.Model
	store  *extjob.Store
	window int
	recent []bool // true = known
	nKnown int

	inNeg, inText, inUser       tuple.FieldRef
	outUser, outCause, outKnown tuple.FieldRef
}

func (m *causeMatcher) Open(ctx opapi.Context) error {
	m.ctx = ctx
	p := ctx.Params()
	modelID := p.Get("modelId", "")
	storeID := p.Get("storeId", "")
	if modelID == "" || storeID == "" {
		return fmt.Errorf("CauseMatcher %s: modelId and storeId required", ctx.Name())
	}
	m.model = extjob.GetModel(modelID)
	m.store = extjob.GetStore(storeID)
	window, err := p.BindInt("recentWindow", 200)
	if err != nil {
		return fmt.Errorf("CauseMatcher %s: %w", ctx.Name(), err)
	}
	m.window = int(window)
	if m.window <= 0 {
		m.window = 200
	}
	in, out := ctx.InputSchema(0), ctx.OutputSchema(0)
	if m.inNeg, err = in.TypedRef("negative", tuple.Bool); err != nil {
		return fmt.Errorf("CauseMatcher %s: %w", ctx.Name(), err)
	}
	if m.inText, err = in.TypedRef("text", tuple.String); err != nil {
		return fmt.Errorf("CauseMatcher %s: %w", ctx.Name(), err)
	}
	if m.inUser, err = in.TypedRef("user", tuple.String); err != nil {
		return fmt.Errorf("CauseMatcher %s: %w", ctx.Name(), err)
	}
	if m.outUser, err = out.TypedRef("user", tuple.String); err != nil {
		return fmt.Errorf("CauseMatcher %s: %w", ctx.Name(), err)
	}
	if m.outCause, err = out.TypedRef("cause", tuple.String); err != nil {
		return fmt.Errorf("CauseMatcher %s: %w", ctx.Name(), err)
	}
	if m.outKnown, err = out.TypedRef("known", tuple.Bool); err != nil {
		return fmt.Errorf("CauseMatcher %s: %w", ctx.Name(), err)
	}
	return nil
}

func (m *causeMatcher) Process(port int, t tuple.Tuple) error {
	if !m.inNeg.Bool(t) {
		return nil
	}
	text := m.inText.Str(t)
	m.store.Append(text)
	cause := extjob.ExtractCause(text)
	known := cause != "" && m.model.Contains(cause)
	if known {
		m.ctx.CustomMetric(MetricTotalKnownCauses).Inc()
	} else {
		m.ctx.CustomMetric(MetricTotalUnknownCauses).Inc()
	}
	m.recent = append(m.recent, known)
	if known {
		m.nKnown++
	}
	if len(m.recent) > m.window {
		if m.recent[0] {
			m.nKnown--
		}
		m.recent = m.recent[1:]
	}
	m.ctx.CustomMetric(MetricRecentKnownCauses).Set(int64(m.nKnown))
	m.ctx.CustomMetric(MetricRecentUnknownCauses).Set(int64(len(m.recent) - m.nKnown))

	out := tuple.New(m.ctx.OutputSchema(0))
	m.outUser.SetStr(out, m.inUser.Str(t))
	m.outCause.SetStr(out, cause)
	m.outKnown.SetBool(out, known)
	return m.ctx.Submit(0, out)
}

// SaveState snapshots the cumulative cause counters and the sliding
// window of recent match outcomes. The shared model and corpus live in
// extjob registries outside the PE and survive on their own.
func (m *causeMatcher) SaveState(e *ckpt.Encoder) error {
	e.PutInt(m.ctx.CustomMetric(MetricTotalKnownCauses).Value())
	e.PutInt(m.ctx.CustomMetric(MetricTotalUnknownCauses).Value())
	e.PutUint(uint64(len(m.recent)))
	for _, known := range m.recent {
		e.PutBool(known)
	}
	return nil
}

// RestoreState reinstates the counters and rebuilds the window (and its
// derived gauges) from the snapshot.
func (m *causeMatcher) RestoreState(d *ckpt.Decoder) error {
	totalKnown := d.Int()
	totalUnknown := d.Int()
	n := d.Uint()
	if err := d.Err(); err != nil {
		return err
	}
	// Clamp before converting: n is decoder-controlled, and a hostile
	// value past maxint would go negative through int().
	recent := make([]bool, 0, min(n, uint64(m.window)))
	nKnown := 0
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		known := d.Bool()
		recent = append(recent, known)
		if known {
			nKnown++
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	m.recent, m.nKnown = recent, nKnown
	m.ctx.CustomMetric(MetricTotalKnownCauses).Set(totalKnown)
	m.ctx.CustomMetric(MetricTotalUnknownCauses).Set(totalUnknown)
	m.ctx.CustomMetric(MetricRecentKnownCauses).Set(int64(m.nKnown))
	m.ctx.CustomMetric(MetricRecentUnknownCauses).Set(int64(len(m.recent) - m.nKnown))
	return nil
}

// tickSource emits synthetic stock trades from workload.TickGen.
//
// Parameters: symbols (csv), seed, count (0 = unbounded), period, start,
// step.
type tickSource struct {
	opapi.Base
	ctx             opapi.Context
	gen             *workload.TickGen
	count           int64
	period          time.Duration
	sym, price, seq tuple.FieldRef
}

func (s *tickSource) Open(ctx opapi.Context) error {
	s.ctx = ctx
	p := ctx.Params()
	bound := p.Bind()
	cfg := workload.TickConfig{
		Seed:  bound.Int("seed", 1),
		Start: bound.Float("start", 100),
		Step:  bound.Float("step", 1),
	}
	s.count = bound.Int("count", 0)
	s.period = bound.Duration("period", 0)
	if err := bound.Err(); err != nil {
		return fmt.Errorf("TickSource %s: %w", ctx.Name(), err)
	}
	if v := p.Get("symbols", ""); v != "" {
		cfg.Symbols = strings.Split(v, ",")
	}
	s.gen = workload.NewTickGen(cfg)
	out := ctx.OutputSchema(0)
	var err error
	if s.sym, err = out.TypedRef("sym", tuple.String); err != nil {
		return fmt.Errorf("TickSource %s: %w", ctx.Name(), err)
	}
	if s.price, err = out.TypedRef("price", tuple.Float); err != nil {
		return fmt.Errorf("TickSource %s: %w", ctx.Name(), err)
	}
	if s.seq, err = out.TypedRef("seq", tuple.Int); err != nil {
		return fmt.Errorf("TickSource %s: %w", ctx.Name(), err)
	}
	return nil
}

func (s *tickSource) Run(stop <-chan struct{}) error {
	count, period := s.count, s.period
	schema := s.ctx.OutputSchema(0)
	for i := int64(0); count == 0 || i < count; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		tk := s.gen.Next()
		t := tuple.New(schema)
		s.sym.SetStr(t, tk.Symbol)
		s.price.SetFloat(t, tk.Price)
		s.seq.SetInt(t, tk.Seq)
		if err := s.ctx.Submit(0, t); err != nil {
			return err
		}
		if !opapi.Sleep(s.ctx.Clock(), period, stop) {
			return nil
		}
	}
	return nil
}

// profileSource emits synthetic social-media profiles (a C1 reader
// application's extraction stage, §5.3).
//
// Parameters: source, seed, count (0 = unbounded), period, pAge, pGen,
// pLoc.
type profileSource struct {
	opapi.Base
	ctx                   opapi.Context
	gen                   *workload.ProfileGen
	count                 int64
	period                time.Duration
	user, source          tuple.FieldRef
	neg, hAge, hGen, hLoc tuple.FieldRef
}

func (s *profileSource) Open(ctx opapi.Context) error {
	s.ctx = ctx
	bound := ctx.Params().Bind()
	s.gen = workload.NewProfileGen(workload.ProfileConfig{
		Seed:      bound.Int("seed", 1),
		Source:    bound.Str("source", "twitter"),
		PAge:      bound.Float("pAge", 0.5),
		PGender:   bound.Float("pGen", 0.5),
		PLocation: bound.Float("pLoc", 0.5),
	})
	s.count = bound.Int("count", 0)
	s.period = bound.Duration("period", 0)
	if err := bound.Err(); err != nil {
		return fmt.Errorf("ProfileSource %s: %w", ctx.Name(), err)
	}
	out := ctx.OutputSchema(0)
	var err error
	if s.user, err = out.TypedRef("user", tuple.String); err != nil {
		return fmt.Errorf("ProfileSource %s: %w", ctx.Name(), err)
	}
	if s.source, err = out.TypedRef("source", tuple.String); err != nil {
		return fmt.Errorf("ProfileSource %s: %w", ctx.Name(), err)
	}
	if s.neg, err = out.TypedRef("negative", tuple.Bool); err != nil {
		return fmt.Errorf("ProfileSource %s: %w", ctx.Name(), err)
	}
	if s.hAge, err = out.TypedRef("hasAge", tuple.Bool); err != nil {
		return fmt.Errorf("ProfileSource %s: %w", ctx.Name(), err)
	}
	if s.hGen, err = out.TypedRef("hasGen", tuple.Bool); err != nil {
		return fmt.Errorf("ProfileSource %s: %w", ctx.Name(), err)
	}
	if s.hLoc, err = out.TypedRef("hasLoc", tuple.Bool); err != nil {
		return fmt.Errorf("ProfileSource %s: %w", ctx.Name(), err)
	}
	return nil
}

func (s *profileSource) Run(stop <-chan struct{}) error {
	count, period := s.count, s.period
	schema := s.ctx.OutputSchema(0)
	for i := int64(0); count == 0 || i < count; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		pr := s.gen.Next()
		t := tuple.New(schema)
		s.user.SetStr(t, pr.User)
		s.source.SetStr(t, pr.Source)
		s.neg.SetBool(t, pr.Negative)
		s.hAge.SetBool(t, pr.HasAge)
		s.hGen.SetBool(t, pr.HasGen)
		s.hLoc.SetBool(t, pr.HasLoc)
		if err := s.ctx.Submit(0, t); err != nil {
			return err
		}
		if !opapi.Sleep(s.ctx.Clock(), period, stop) {
			return nil
		}
	}
	return nil
}

// profileEnricher is a C2 application's integration stage: it enriches
// profiles into the shared data store (deduplicating by user) and
// maintains the per-attribute custom metrics the composition policy
// subscribes to (profilesWithAge / profilesWithGender /
// profilesWithLocation, §5.3).
//
// Parameters: storeId (required).
type profileEnricher struct {
	opapi.Base
	ctx                   opapi.Context
	store                 *ProfileStore
	user                  tuple.FieldRef
	neg, hAge, hGen, hLoc tuple.FieldRef
}

func (e *profileEnricher) Open(ctx opapi.Context) error {
	e.ctx = ctx
	id := ctx.Params().Get("storeId", "")
	if id == "" {
		return fmt.Errorf("ProfileEnricher %s: storeId required", ctx.Name())
	}
	e.store = GetProfileStore(id)
	in := ctx.InputSchema(0)
	var err error
	if e.user, err = in.TypedRef("user", tuple.String); err != nil {
		return fmt.Errorf("ProfileEnricher %s: %w", ctx.Name(), err)
	}
	if e.neg, err = in.TypedRef("negative", tuple.Bool); err != nil {
		return fmt.Errorf("ProfileEnricher %s: %w", ctx.Name(), err)
	}
	if e.hAge, err = in.TypedRef("hasAge", tuple.Bool); err != nil {
		return fmt.Errorf("ProfileEnricher %s: %w", ctx.Name(), err)
	}
	if e.hGen, err = in.TypedRef("hasGen", tuple.Bool); err != nil {
		return fmt.Errorf("ProfileEnricher %s: %w", ctx.Name(), err)
	}
	if e.hLoc, err = in.TypedRef("hasLoc", tuple.Bool); err != nil {
		return fmt.Errorf("ProfileEnricher %s: %w", ctx.Name(), err)
	}
	return nil
}

func (e *profileEnricher) Process(port int, t tuple.Tuple) error {
	rec := ProfileRecord{
		User:     e.user.Str(t),
		Negative: e.neg.Bool(t),
		HasAge:   e.hAge.Bool(t),
		HasGen:   e.hGen.Bool(t),
		HasLoc:   e.hLoc.Bool(t),
	}
	// The aggregate counts include duplicates across C2 applications,
	// as the paper notes; only the data store is deduplicated.
	if rec.HasAge {
		e.ctx.CustomMetric(MetricProfilesWithAge).Inc()
	}
	if rec.HasGen {
		e.ctx.CustomMetric(MetricProfilesWithGender).Inc()
	}
	if rec.HasLoc {
		e.ctx.CustomMetric(MetricProfilesWithLocation).Inc()
	}
	e.store.Add(rec)
	return nil
}

// segmentSource is a C3 application's reader: it snapshots the profile
// data store, correlates sentiment with one profile attribute, emits the
// segment counts, and finishes — producing the final punctuation whose
// sink port metric triggers the orchestrator's cancellation (§5.3).
//
// Parameters: storeId, attribute (age | gender | location).
type segmentSource struct {
	opapi.Base
	ctx   opapi.Context
	store *ProfileStore
	attr  string
}

func (s *segmentSource) Open(ctx opapi.Context) error {
	s.ctx = ctx
	p := ctx.Params()
	id := p.Get("storeId", "")
	if id == "" {
		return fmt.Errorf("SegmentSource %s: storeId required", ctx.Name())
	}
	attr, err := p.BindEnum("attribute", "", segmentAttributes...)
	if err != nil || attr == "" {
		return fmt.Errorf("SegmentSource %s: attribute must be age|gender|location, got %q", ctx.Name(), p.Get("attribute", ""))
	}
	s.attr = attr
	s.store = GetProfileStore(id)
	return nil
}

func (s *segmentSource) Run(stop <-chan struct{}) error {
	has := func(p ProfileRecord) bool {
		switch s.attr {
		case "age":
			return p.HasAge
		case "gender":
			return p.HasGen
		case "location":
			return p.HasLoc
		default:
			return false
		}
	}
	var withNeg, withPos int64
	for _, p := range s.store.Snapshot() {
		if !has(p) {
			continue
		}
		if p.Negative {
			withNeg++
		} else {
			withPos++
		}
	}
	schema := s.ctx.OutputSchema(0)
	for _, row := range []struct {
		group string
		count int64
	}{{"negative", withNeg}, {"positive", withPos}} {
		select {
		case <-stop:
			return nil
		default:
		}
		t := tuple.Build(schema).
			Str("attribute", s.attr).Str("group", row.group).Int("count", row.count).Done()
		if err := s.ctx.Submit(0, t); err != nil {
			return err
		}
	}
	return nil // exhausts: final punctuation follows
}
