// Package apps implements the paper's three use-case applications (§5) as
// reusable builders plus the application-specific operators they need:
// the Twitter sentiment-analysis pipeline (§5.1), the Trend Calculator
// financial application (§5.2), and the social-media C1/C2/C3 application
// set (§5.3). Examples, integration tests, and the experiment driver all
// share these definitions.
package apps

import (
	"sync"
)

// ProfileRecord is one deduplicated user profile in the shared data store
// (the store C2 applications write and C3 applications read, §5.3).
type ProfileRecord struct {
	User     string
	Negative bool
	HasAge   bool
	HasGen   bool
	HasLoc   bool
}

// ProfileStore deduplicates profiles by user, so C3 applications never
// see the duplicates that C1→C2 fan-out produces (§5.3).
type ProfileStore struct {
	mu       sync.Mutex
	profiles map[string]ProfileRecord
}

// NewProfileStore returns an empty store.
func NewProfileStore() *ProfileStore {
	return &ProfileStore{profiles: make(map[string]ProfileRecord)}
}

// Add inserts a profile, reporting whether it was new.
func (s *ProfileStore) Add(p ProfileRecord) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.profiles[p.User]; dup {
		return false
	}
	s.profiles[p.User] = p
	return true
}

// Len returns the number of distinct profiles.
func (s *ProfileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.profiles)
}

// Snapshot copies the current profiles.
func (s *ProfileStore) Snapshot() []ProfileRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ProfileRecord, 0, len(s.profiles))
	for _, p := range s.profiles {
		out = append(out, p)
	}
	return out
}

// Reset clears the store.
func (s *ProfileStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles = make(map[string]ProfileRecord)
}

var (
	profileRegMu sync.Mutex
	profileRegs  = make(map[string]*ProfileStore)
)

// GetProfileStore returns (creating if needed) the named shared store.
func GetProfileStore(id string) *ProfileStore {
	profileRegMu.Lock()
	defer profileRegMu.Unlock()
	s, ok := profileRegs[id]
	if !ok {
		s = NewProfileStore()
		profileRegs[id] = s
	}
	return s
}
