// Package baseline implements the approaches the paper argues against
// (§1, Figure 1): embedding the adaptation logic into the stream graph as
// extra operators (op8 detecting the actuation condition, op9 executing
// the actuation). It reaches the same adaptation outcome as the
// orchestrated policy, but couples control logic to the data path — the
// E10 comparison measures exactly that coupling (extra graph operators,
// extra hot-path tuple traffic, zero policy reuse).
package baseline

import (
	"fmt"
	"sync"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/apps"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/extjob"
	"streamorca/internal/opapi"
	"streamorca/internal/ops"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

// Operator kinds of the embedded-adaptation graph.
const (
	KindThresholdDetector = "ThresholdDetector"
	KindJobTrigger        = "JobTrigger"
)

// MetricJobsTriggered counts external jobs the embedded trigger
// operator started — the custom metric experiments compare against the
// orchestrated variant.
const MetricJobsTriggered = "nJobsTriggered"

func init() {
	opapi.Default.RegisterOp(KindThresholdDetector, func() opapi.Operator { return &thresholdDetector{} }, &opapi.OpModel{
		Doc:     "emits a trigger tuple when the unknown/known cause ratio crosses a threshold",
		Inputs:  opapi.ExactlyPorts(1).WithAttrs(tuple.Attribute{Name: "known", Type: tuple.Bool}),
		Outputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "threshold", Type: opapi.ParamFloat, Default: "1.0", Doc: "ratio that fires the trigger"},
			{Name: "window", Type: opapi.ParamInt, Default: "200", Min: opapi.Bound(1), Doc: "sliding window of recent matches, in tuples"},
		},
	})
	opapi.Default.RegisterOp(KindJobTrigger, func() opapi.Operator { return &jobTrigger{} }, &opapi.OpModel{
		Doc:    "invokes the external batch job on a trigger tuple, with suppression",
		Inputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "runnerId", Type: opapi.ParamString, Required: true, Doc: "shared batch-job runner id"},
			{Name: "modelId", Type: opapi.ParamString, Required: true, Doc: "shared cause model id"},
			{Name: "storeId", Type: opapi.ParamString, Required: true, Doc: "shared corpus id"},
			{Name: "minSupport", Type: opapi.ParamInt, Default: "10", Doc: "minimum corpus occurrences to enter the model"},
			{Name: "suppression", Type: opapi.ParamDuration, Default: "10m", Min: opapi.Bound(0), Doc: "interval during which repeat triggers are dropped"},
			{Name: "jobLatency", Type: opapi.ParamDuration, Default: "20ms", Min: opapi.Bound(0), Doc: "simulated batch-job duration"},
		},
	})
}

// TriggerSchema is the stream between the detector (op8) and the
// actuator (op9).
var TriggerSchema = tuple.MustSchema(
	tuple.Attribute{Name: "reason", Type: tuple.String},
	tuple.Attribute{Name: "ratio", Type: tuple.Float},
)

// thresholdDetector is Figure 1's op8: it consumes the cause-matched
// stream, recomputes the unknown/known ratio over a sliding window of
// matches on the hot path, and emits a trigger tuple when the ratio
// crosses the threshold.
//
// Parameters: threshold (default 1.0), window (tuples, default 200).
type thresholdDetector struct {
	opapi.Base
	ctx       opapi.Context
	threshold float64
	window    int
	recent    []bool
	known     int
	fired     bool
}

func (d *thresholdDetector) Open(ctx opapi.Context) error {
	d.ctx = ctx
	cfg := ctx.Params().Bind()
	d.threshold = cfg.Float("threshold", 1.0)
	d.window = int(cfg.Int("window", 200))
	if err := cfg.Err(); err != nil {
		return fmt.Errorf("ThresholdDetector %s: %w", ctx.Name(), err)
	}
	if d.window <= 0 {
		return fmt.Errorf("ThresholdDetector %s: window must be positive", ctx.Name())
	}
	return nil
}

func (d *thresholdDetector) Process(port int, t tuple.Tuple) error {
	known := t.Bool("known")
	d.recent = append(d.recent, known)
	if known {
		d.known++
	}
	if len(d.recent) > d.window {
		if d.recent[0] {
			d.known--
		}
		d.recent = d.recent[1:]
	}
	den := d.known
	if den == 0 {
		den = 1
	}
	ratio := float64(len(d.recent)-d.known) / float64(den)
	if ratio > d.threshold && !d.fired {
		d.fired = true
		out := tuple.Build(d.ctx.OutputSchema(0)).
			Str("reason", "unknown causes exceed known").Float("ratio", ratio).Done()
		return d.ctx.Submit(0, out)
	}
	if ratio <= d.threshold {
		d.fired = false // re-arm once the condition clears
	}
	return nil
}

// SaveState snapshots the detection window and trigger latch, so a
// restarted embedded detector neither re-fires a trigger it already
// sent nor forgets the ratio it was tracking.
func (d *thresholdDetector) SaveState(e *ckpt.Encoder) error {
	e.PutBool(d.fired)
	e.PutUint(uint64(len(d.recent)))
	for _, known := range d.recent {
		e.PutBool(known)
	}
	return nil
}

// RestoreState rebuilds the window and latch from the snapshot.
func (d *thresholdDetector) RestoreState(dec *ckpt.Decoder) error {
	fired := dec.Bool()
	n := dec.Uint()
	if err := dec.Err(); err != nil {
		return err
	}
	// Clamp before converting: n is decoder-controlled, and a hostile
	// value past maxint would go negative through int().
	recent := make([]bool, 0, min(n, uint64(d.window)))
	known := 0
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		k := dec.Bool()
		recent = append(recent, k)
		if k {
			known++
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	d.fired, d.recent, d.known = fired, recent, known
	return nil
}

// jobTrigger is Figure 1's op9: on a trigger tuple it invokes the
// external batch job directly from inside the graph, with a suppression
// interval.
//
// Parameters: modelId, storeId, runnerId, minSupport, suppression.
type jobTrigger struct {
	opapi.Base
	ctx         opapi.Context
	runner      *extjob.Runner
	model       *extjob.Model
	store       *extjob.Store
	minSupport  int
	suppression time.Duration
	last        time.Time
	fired       bool
}

func (j *jobTrigger) Open(ctx opapi.Context) error {
	j.ctx = ctx
	p := ctx.Params()
	runnerID := p.Get("runnerId", "")
	modelID := p.Get("modelId", "")
	storeID := p.Get("storeId", "")
	if runnerID == "" || modelID == "" || storeID == "" {
		return fmt.Errorf("JobTrigger %s: runnerId, modelId and storeId required", ctx.Name())
	}
	cfg := p.Bind()
	latency := cfg.Duration("jobLatency", 20*time.Millisecond)
	j.minSupport = int(cfg.Int("minSupport", 10))
	j.suppression = cfg.Duration("suppression", 10*time.Minute)
	if err := cfg.Err(); err != nil {
		return fmt.Errorf("JobTrigger %s: %w", ctx.Name(), err)
	}
	j.runner = GetRunner(runnerID, ctx.Clock(), latency)
	j.model = extjob.GetModel(modelID)
	j.store = extjob.GetStore(storeID)
	return nil
}

func (j *jobTrigger) Process(port int, t tuple.Tuple) error {
	now := j.ctx.Clock().Now()
	if j.fired && now.Sub(j.last) < j.suppression {
		return nil
	}
	if j.runner.Running() {
		return nil
	}
	if err := j.runner.Submit(j.store, j.model, j.minSupport, nil); err != nil {
		return nil // already running: drop the trigger
	}
	j.fired = true
	j.last = now
	j.ctx.CustomMetric(MetricJobsTriggered).Inc()
	return nil
}

var (
	runnerMu sync.Mutex
	runners  = make(map[string]*extjob.Runner)
)

// GetRunner returns (creating if needed) a shared batch-job runner, so
// tests can observe the embedded graph's actuations.
func GetRunner(id string, clock vclock.Clock, latency time.Duration) *extjob.Runner {
	runnerMu.Lock()
	defer runnerMu.Unlock()
	r, ok := runners[id]
	if !ok {
		r = extjob.NewRunner(clock, latency)
		runners[id] = r
	}
	return r
}

// EmbeddedConfig parameterises the embedded-adaptation sentiment graph.
type EmbeddedConfig struct {
	apps.SentimentConfig
	RunnerID    string
	Threshold   float64
	Suppression time.Duration
	JobLatency  time.Duration
	MinSupport  int
}

// EmbeddedSentimentApp builds the Figure 1 graph: the sentiment pipeline
// plus op8/op9 embedded into the application. Contrast with
// apps.SentimentApp + policies.ModelRecompute, where the same pipeline
// stays control-free and the policy is reusable.
func EmbeddedSentimentApp(cfg EmbeddedConfig) (*adl.Application, error) {
	if cfg.Name == "" {
		cfg.Name = "SentimentEmbedded"
	}
	if cfg.Product == "" {
		cfg.Product = "iPhone"
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 1.0
	}
	b := compiler.NewApp(cfg.Name)
	src := b.AddOperator("tweets", apps.KindTweetSource).Out(apps.TweetSchema).
		Param("product", cfg.Product).
		Param("seed", apps.Itoa(cfg.Seed)).
		Param("count", apps.Itoa(cfg.Count)).
		Param("period", cfg.Period.String()).
		Param("causes", cfg.Causes).
		Param("shiftAt", apps.Itoa(cfg.ShiftAt)).
		Param("causesAfter", cfg.CausesAfter)
	filt := b.AddOperator("productFilter", ops.KindFilter).In(apps.TweetSchema).Out(apps.TweetSchema).
		Param("attr", "product").Param("op", "eq").Param("value", cfg.Product)
	classify := b.AddOperator("classify", apps.KindSentiment).In(apps.TweetSchema).Out(apps.TweetSchema)
	match := b.AddOperator("causes", apps.KindCauseMatcher).In(apps.TweetSchema).Out(apps.CauseSchema).
		Param("modelId", cfg.ModelID).
		Param("storeId", cfg.StoreID).
		Param("recentWindow", apps.Itoa(cfg.RecentWindow))
	sink := b.AddOperator("display", ops.KindCollectSink).In(apps.CauseSchema).
		Param("collectorId", cfg.Collector).Param("limit", "1000")
	// The embedded control operators (op8 and op9 of Figure 1).
	detector := b.AddOperator("op8detector", KindThresholdDetector).In(apps.CauseSchema).Out(TriggerSchema).
		Param("threshold", fmt.Sprintf("%g", cfg.Threshold)).
		Param("window", apps.Itoa(cfg.RecentWindow))
	trigger := b.AddOperator("op9trigger", KindJobTrigger).In(TriggerSchema).
		Param("runnerId", cfg.RunnerID).
		Param("modelId", cfg.ModelID).
		Param("storeId", cfg.StoreID).
		Param("minSupport", apps.Itoa(int64(cfg.MinSupport))).
		Param("suppression", cfg.Suppression.String()).
		Param("jobLatency", cfg.JobLatency.String())
	b.Connect(src, 0, filt, 0)
	b.Connect(filt, 0, classify, 0)
	b.Connect(classify, 0, match, 0)
	b.Connect(match, 0, sink, 0)
	b.Connect(match, 0, detector, 0) // control rides the data path
	b.Connect(detector, 0, trigger, 0)
	return b.Build(compiler.Options{Fusion: compiler.FuseAll})
}
