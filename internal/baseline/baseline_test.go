package baseline

import (
	"testing"
	"time"

	"streamorca/internal/apps"
	"streamorca/internal/extjob"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

func newInst(t *testing.T) *platform.Instance {
	t.Helper()
	inst, err := platform.NewInstance(platform.Options{
		Hosts:           []platform.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return inst
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestEmbeddedGraphAdapts is the E10 equivalence check: the Figure 1
// embedded-adaptation graph reaches the same adaptation outcome as the
// orchestrated policy — the distribution shift triggers the in-graph
// actuator, the batch job recomputes the model, and the new cause is
// known afterwards.
func TestEmbeddedGraphAdapts(t *testing.T) {
	inst := newInst(t)
	modelID, storeID, runnerID := "bl-model", "bl-store", "bl-runner"
	extjob.SetModel(modelID, extjob.NewModel("flash", "screen"))
	extjob.GetStore(storeID).Reset()
	ops.ResetCollector("bl-coll")

	app, err := EmbeddedSentimentApp(EmbeddedConfig{
		SentimentConfig: apps.SentimentConfig{
			Name: "Embedded", Collector: "bl-coll",
			ModelID: modelID, StoreID: storeID,
			Seed: 42, Count: 4000, Causes: "flash,screen",
			ShiftAt: 2000, CausesAfter: "antenna", RecentWindow: 200,
		},
		RunnerID: runnerID, Threshold: 1.0,
		Suppression: 50 * time.Millisecond, JobLatency: 5 * time.Millisecond,
		MinSupport: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The embedded variant has two extra operators on the graph compared
	// with the clean pipeline — the coupling the paper criticises.
	clean, err := apps.SentimentApp(apps.SentimentConfig{
		Name: "Clean", Collector: "bl-unused", ModelID: modelID, StoreID: storeID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Operators) != len(clean.Operators)+2 {
		t.Fatalf("embedded graph has %d operators, clean %d", len(app.Operators), len(clean.Operators))
	}
	if app.OperatorByName("op8detector") == nil || app.OperatorByName("op9trigger") == nil {
		t.Fatal("control operators missing from the embedded graph")
	}

	if _, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pipeline completion", func() bool { return ops.Collector("bl-coll").Finals() == 1 })
	runner := GetRunner(runnerID, nil, 0)
	waitFor(t, "embedded batch job", func() bool { return runner.Completed() >= 1 })
	model := extjob.GetModel(modelID)
	waitFor(t, "model refresh", func() bool { return model.Version() >= 2 })
	if !model.Contains("antenna") {
		t.Fatalf("embedded adaptation missed the new cause: %v", model.Causes())
	}
}

// detectorCtx is a minimal opapi.Context for unit-testing the detector.
type detectorCtx struct {
	triggers int
}

func (c *detectorCtx) Name() string                         { return "op8" }
func (c *detectorCtx) Kind() string                         { return KindThresholdDetector }
func (c *detectorCtx) App() string                          { return "test" }
func (c *detectorCtx) Params() opapi.Params                 { return opapi.Params{"threshold": "1.0", "window": "20"} }
func (c *detectorCtx) NumInputs() int                       { return 1 }
func (c *detectorCtx) NumOutputs() int                      { return 1 }
func (c *detectorCtx) InputSchema(int) *tuple.Schema        { return apps.CauseSchema }
func (c *detectorCtx) OutputSchema(int) *tuple.Schema       { return TriggerSchema }
func (c *detectorCtx) Clock() vclock.Clock                  { return vclock.Real() }
func (c *detectorCtx) Done() <-chan struct{}                { return nil }
func (c *detectorCtx) Logf(string, ...any)                  {}
func (c *detectorCtx) CustomMetric(string) *metrics.Counter { return &metrics.Counter{} }

func (c *detectorCtx) Submit(int, tuple.Tuple) error {
	c.triggers++
	return nil
}

func (c *detectorCtx) SubmitMark(int, tuple.Mark) error { return nil }

func TestThresholdDetectorRearms(t *testing.T) {
	// Unit-level: the detector fires once per crossing, re-arming when
	// the ratio falls back under the threshold.
	d := &thresholdDetector{}
	ctx := &detectorCtx{}
	if err := d.Open(ctx); err != nil {
		t.Fatal(err)
	}
	emit := func(known bool) {
		tup := tuple.Build(apps.CauseSchema).Str("user", "u").Str("cause", "c").Bool("known", known).Done()
		if err := d.Process(0, tup); err != nil {
			t.Fatal(err)
		}
	}
	// 10 unknown in a row: crosses once.
	for i := 0; i < 10; i++ {
		emit(false)
	}
	if ctx.triggers != 1 {
		t.Fatalf("triggers after crossing = %d", ctx.triggers)
	}
	// Stay crossed: no duplicates.
	for i := 0; i < 10; i++ {
		emit(false)
	}
	if ctx.triggers != 1 {
		t.Fatalf("detector did not latch: %d", ctx.triggers)
	}
	// Recover, then cross again: second trigger.
	for i := 0; i < 50; i++ {
		emit(true)
	}
	for i := 0; i < 60; i++ {
		emit(false)
	}
	if ctx.triggers != 2 {
		t.Fatalf("triggers after re-crossing = %d", ctx.triggers)
	}
}

// TestBaselineKindsDeclareModels pins the descriptor contract for the
// embedded-adaptation kinds.
func TestBaselineKindsDeclareModels(t *testing.T) {
	for _, kind := range []string{KindThresholdDetector, KindJobTrigger} {
		if opapi.Default.Model(kind) == nil {
			t.Errorf("kind %s registered without an operator model", kind)
		}
	}
}
