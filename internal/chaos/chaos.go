// Package chaos implements the deterministic fault-injection harness:
// a seeded Schedule of timestamped fault events — PE kills, host kills
// and revivals, checkpoint-store write failures, latency, torn writes,
// stale-checkpoint injection, and metric-delivery delays — and a Runner
// that drives any live platform instance through it on a vclock.Clock.
//
// Determinism is the point. Generate(seed, opts) always produces the
// same schedule for the same inputs: host up/down state is simulated
// during generation (host state only ever changes through schedule
// events), so host-targeted events always name a valid concrete host
// and the generator never kills the last live host — the retry budget,
// not resource exhaustion, is what the harness stresses. Two runs with
// one seed therefore inject the same faults at the same offsets, which
// is what lets the chaos scenario compare recovery counts across runs.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"
)

// Kind enumerates injectable fault event types.
type Kind int

// Fault kinds. The Ckpt* kinds arm one-shot faults on the scenario's
// FaultStore; MetricDelay pauses one host's HC metric push loop.
const (
	KillPE Kind = iota + 1
	KillHost
	ReviveHost
	CkptFail
	CkptTear
	CkptDrop
	CkptLatency
	MetricDelay
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KillPE:
		return "kill-pe"
	case KillHost:
		return "kill-host"
	case ReviveHost:
		return "revive-host"
	case CkptFail:
		return "ckpt-fail"
	case CkptTear:
		return "ckpt-tear"
	case CkptDrop:
		return "ckpt-drop"
	case CkptLatency:
		return "ckpt-latency"
	case MetricDelay:
		return "metric-delay"
	default:
		return "unknown"
	}
}

// AllKinds lists every fault kind in declaration order.
func AllKinds() []Kind {
	return []Kind{KillPE, KillHost, ReviveHost, CkptFail, CkptTear, CkptDrop, CkptLatency, MetricDelay}
}

// Event is one scheduled fault.
type Event struct {
	// Offset is the event's fire time relative to the run start.
	Offset time.Duration
	// Kind selects the fault.
	Kind Kind
	// Target is the fault's subject: for KillPE an index into the
	// deterministically ordered PE list (resolved modulo its length at
	// fire time); for KillHost/ReviveHost/MetricDelay an index into the
	// sorted host list, resolved at generation time against the
	// simulated host state. Unused for store faults.
	Target int
	// Amount parameterises CkptLatency and MetricDelay.
	Amount time.Duration
}

// String renders the event for fingerprints and logs.
func (e Event) String() string {
	s := fmt.Sprintf("+%s %s", e.Offset, e.Kind)
	switch e.Kind {
	case KillPE, KillHost, ReviveHost, MetricDelay:
		s += fmt.Sprintf(" #%d", e.Target)
	}
	if e.Amount > 0 {
		s += fmt.Sprintf(" %s", e.Amount)
	}
	return s
}

// Schedule is a seeded, ordered fault plan.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Fingerprint returns a short stable hash of the schedule — identical
// seeds and options yield identical fingerprints, which the determinism
// checks compare across runs.
func (s Schedule) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d;", s.Seed)
	for _, e := range s.Events {
		fmt.Fprintf(h, "%s;", e)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders the whole schedule, one event per line.
func (s Schedule) String() string {
	lines := make([]string, len(s.Events))
	for i, e := range s.Events {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// GenOptions parameterises schedule generation.
type GenOptions struct {
	// Duration is the injection window; events spread across it in
	// order, one per equal slot. Default 1s.
	Duration time.Duration
	// Count is the number of events. Default 10.
	Count int
	// Hosts is the number of cluster hosts (host-targeted events index
	// into the name-sorted host list). 0 disables host faults.
	Hosts int
	// PEs is the number of PE slots kill targets index over. 0 disables
	// PE kills.
	PEs int
	// Kinds restricts the generated kinds; nil means AllKinds pruned to
	// what Hosts/PEs/Store allow.
	Kinds []Kind
	// Store reports whether a fault-wrapping checkpoint store is
	// attached; false prunes the Ckpt* kinds.
	Store bool
	// MinUpHosts is the floor of simulated live hosts KillHost respects
	// (default 1): the generator re-targets rather than stranding every
	// PE with no host to restart onto.
	MinUpHosts int
}

// Generate builds a deterministic schedule from a seed. The same seed
// and options always produce the same schedule.
func Generate(seed int64, opts GenOptions) Schedule {
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.Count <= 0 {
		opts.Count = 10
	}
	if opts.MinUpHosts <= 0 {
		opts.MinUpHosts = 1
	}
	kinds := opts.Kinds
	if kinds == nil {
		kinds = AllKinds()
	}
	var usable []Kind
	for _, k := range kinds {
		switch k {
		case KillPE:
			if opts.PEs > 0 {
				usable = append(usable, k)
			}
		case KillHost, ReviveHost, MetricDelay:
			if opts.Hosts > 0 {
				usable = append(usable, k)
			}
		case CkptFail, CkptTear, CkptDrop, CkptLatency:
			if opts.Store {
				usable = append(usable, k)
			}
		}
	}
	s := Schedule{Seed: seed}
	if len(usable) == 0 {
		return s
	}

	rng := rand.New(rand.NewSource(seed))
	hostUp := make([]bool, opts.Hosts)
	for i := range hostUp {
		hostUp[i] = true
	}
	upCount := opts.Hosts
	pick := func(pred func(int) bool) (int, bool) {
		var cand []int
		for i := range hostUp {
			if pred(i) {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			return 0, false
		}
		return cand[rng.Intn(len(cand))], true
	}

	slot := opts.Duration / time.Duration(opts.Count)
	if slot <= 0 {
		slot = time.Millisecond
	}
	for i := 0; i < opts.Count; i++ {
		ev := Event{Offset: time.Duration(i)*slot + time.Duration(rng.Int63n(int64(slot)))}
		ev.Kind = usable[rng.Intn(len(usable))]
		// Host kinds depend on simulated host state; when the state
		// disallows the drawn kind, degrade to a kind that is always
		// valid rather than skipping the slot, keeping Count exact.
		switch ev.Kind {
		case KillHost:
			if upCount <= opts.MinUpHosts {
				ev.Kind = fallbackKind(usable)
			} else if t, ok := pick(func(i int) bool { return hostUp[i] }); ok {
				ev.Target = t
				hostUp[t] = false
				upCount--
			}
		case ReviveHost:
			if t, ok := pick(func(i int) bool { return !hostUp[i] }); ok {
				ev.Target = t
				hostUp[t] = true
				upCount++
			} else {
				ev.Kind = fallbackKind(usable)
			}
		case MetricDelay:
			if t, ok := pick(func(i int) bool { return hostUp[i] }); ok {
				ev.Target = t
			} else {
				ev.Kind = fallbackKind(usable)
			}
		}
		switch ev.Kind {
		case KillPE:
			ev.Target = rng.Intn(opts.PEs)
		case CkptLatency, MetricDelay:
			ev.Amount = time.Duration(10+rng.Int63n(50)) * time.Millisecond
		}
		s.Events = append(s.Events, ev)
	}
	// Close the loop: revive every host the schedule left down, so the
	// post-run recovery sweep starts from a live cluster.
	for i, up := range hostUp {
		if !up {
			s.Events = append(s.Events, Event{
				Offset: opts.Duration + time.Duration(i+1)*slot/2,
				Kind:   ReviveHost,
				Target: i,
			})
		}
	}
	return s
}

// fallbackKind returns the first always-applicable kind in usable,
// preferring PE kills, then store faults.
func fallbackKind(usable []Kind) Kind {
	for _, k := range usable {
		if k == KillPE {
			return k
		}
	}
	for _, k := range usable {
		switch k {
		case CkptFail, CkptTear, CkptDrop, CkptLatency:
			return k
		}
	}
	return usable[0]
}
