package chaos_test

import (
	"strconv"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/chaos"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
)

func TestGenerateDeterministic(t *testing.T) {
	opts := chaos.GenOptions{Duration: time.Second, Count: 40, Hosts: 3, PEs: 5, Store: true}
	a := chaos.Generate(42, opts)
	b := chaos.Generate(42, opts)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	if len(a.Events) < opts.Count {
		t.Fatalf("generated %d events, want >= %d", len(a.Events), opts.Count)
	}
	c := chaos.Generate(43, opts)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateHostStateInvariants replays the simulated host state and
// checks the generator's promises: kills only target live hosts and
// never drop below MinUpHosts, revivals only target dead hosts, offsets
// are non-decreasing, and the trailing cleanup leaves every host up.
func TestGenerateHostStateInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		opts := chaos.GenOptions{Duration: time.Second, Count: 60, Hosts: 4, PEs: 6, Store: true, MinUpHosts: 2}
		s := chaos.Generate(seed, opts)
		up := make([]bool, opts.Hosts)
		for i := range up {
			up[i] = true
		}
		upCount := opts.Hosts
		var prev time.Duration
		for i, ev := range s.Events {
			if ev.Offset < prev {
				t.Fatalf("seed %d: event %d offset %s < previous %s", seed, i, ev.Offset, prev)
			}
			prev = ev.Offset
			switch ev.Kind {
			case chaos.KillHost:
				if !up[ev.Target] {
					t.Fatalf("seed %d: event %d kills dead host %d", seed, i, ev.Target)
				}
				up[ev.Target] = false
				if upCount--; upCount < opts.MinUpHosts {
					t.Fatalf("seed %d: event %d drops live hosts to %d", seed, i, upCount)
				}
			case chaos.ReviveHost:
				if up[ev.Target] {
					t.Fatalf("seed %d: event %d revives live host %d", seed, i, ev.Target)
				}
				up[ev.Target] = true
				upCount++
			case chaos.KillPE:
				if ev.Target < 0 || ev.Target >= opts.PEs {
					t.Fatalf("seed %d: event %d PE target %d out of range", seed, i, ev.Target)
				}
			case chaos.CkptLatency, chaos.MetricDelay:
				if ev.Amount <= 0 {
					t.Fatalf("seed %d: event %d has no amount", seed, i)
				}
			}
		}
		if upCount != opts.Hosts {
			t.Fatalf("seed %d: schedule leaves %d/%d hosts up", seed, upCount, opts.Hosts)
		}
	}
}

func TestGeneratePrunesKinds(t *testing.T) {
	s := chaos.Generate(7, chaos.GenOptions{Count: 30, PEs: 4}) // no hosts, no store
	for i, ev := range s.Events {
		if ev.Kind != chaos.KillPE {
			t.Fatalf("event %d kind %s despite only PEs being available", i, ev.Kind)
		}
	}
	if s = chaos.Generate(7, chaos.GenOptions{Count: 5}); len(s.Events) != 0 {
		t.Fatalf("nothing usable but got %d events", len(s.Events))
	}
}

var chaosIntS = tuple.MustSchema(tuple.Attribute{Name: "seq", Type: tuple.Int})

func chaosApp(t *testing.T, name, collector string) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	src := b.AddOperator("src", ops.KindBeacon).Out(chaosIntS).
		Param("count", "0").Param("period", "200us")
	filt := b.AddOperator("filt", ops.KindFilter).In(chaosIntS).Out(chaosIntS).
		Param("attr", "seq").Param("op", "ge").Param("value", "0")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(chaosIntS).
		Param("collectorId", collector)
	b.Connect(src, 0, filt, 0)
	b.Connect(filt, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func newChaosInstance(t *testing.T, hosts ...string) *platform.Instance {
	t.Helper()
	specs := make([]platform.HostSpec, len(hosts))
	for i, n := range hosts {
		specs[i] = platform.HostSpec{Name: n}
	}
	inst, err := platform.NewInstance(platform.Options{
		Hosts:           specs,
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return inst
}

// TestRunnerHostAndStoreEvents drives host and store faults through a
// live cluster and checks both the report and the resulting state.
func TestRunnerHostAndStoreEvents(t *testing.T) {
	inst := newChaosInstance(t, "h1", "h2")
	store := ckpt.NewFaultStore(ckpt.NewMemStore(), nil)
	r := &chaos.Runner{Cluster: inst.Cluster, SAM: inst.SAM, Store: store, Logf: t.Logf}
	rep := r.Run(chaos.Schedule{Events: []chaos.Event{
		{Offset: 0, Kind: chaos.KillHost, Target: 0},
		{Offset: time.Millisecond, Kind: chaos.KillHost, Target: 1}, // last live host: skipped
		{Offset: 2 * time.Millisecond, Kind: chaos.ReviveHost, Target: 0},
		{Offset: 3 * time.Millisecond, Kind: chaos.ReviveHost, Target: 1}, // already up: skipped
		{Offset: 4 * time.Millisecond, Kind: chaos.CkptFail},
		{Offset: 5 * time.Millisecond, Kind: chaos.MetricDelay, Target: 1, Amount: 20 * time.Millisecond},
	}})
	if rep.Applied != 4 || rep.Skipped != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if !inst.Cluster.HostUp("h1") || !inst.Cluster.HostUp("h2") {
		t.Fatal("hosts not all up after kill+revive")
	}
	// The CkptFail event armed exactly one failing save.
	if err := store.Save("k", []byte("x")); err == nil {
		t.Fatal("armed store accepted the save")
	}
	if err := store.Save("k", []byte("x")); err != nil {
		t.Fatalf("second save should pass: %v", err)
	}
}

// TestRunnerKillsPE checks PE kill resolution over the deterministic
// PE ordering: the injected kill lands and the crash reason names the
// chaos harness.
func TestRunnerKillsPE(t *testing.T) {
	inst := newChaosInstance(t, "h1", "h2")
	coll := "chaos-runner-" + strconv.Itoa(int(time.Now().UnixNano()))
	ops.ResetCollector(coll)
	if _, err := inst.SAM.SubmitJob(chaosApp(t, "ChaosKill", coll), sam.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	r := &chaos.Runner{Cluster: inst.Cluster, SAM: inst.SAM, Logf: t.Logf}
	rep := r.Run(chaos.Schedule{Events: []chaos.Event{
		{Offset: 0, Kind: chaos.KillPE, Target: 1},
	}})
	if rep.Applied != 1 {
		t.Fatalf("report = %+v", rep)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		crashed := 0
		for _, job := range inst.SAM.Jobs() {
			for _, p := range job.PEs {
				if p.State == "crashed" {
					crashed++
				}
			}
		}
		if crashed == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no crashed PE after injected kill: %+v", inst.SAM.Jobs())
		}
		time.Sleep(time.Millisecond)
	}
}
