package chaos

import (
	"fmt"
	"sort"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/cluster"
	"streamorca/internal/ids"
	"streamorca/internal/sam"
	"streamorca/internal/vclock"
)

// Runner drives a live platform instance through a Schedule. It layers
// over any scenario: point it at the scenario's cluster, SAM, and (for
// store faults) its FaultStore, then call Run while the workload flows.
type Runner struct {
	// Clock paces the schedule; nil means the wall clock.
	Clock vclock.Clock
	// Cluster receives host kills, revivals, and metric delays.
	Cluster *cluster.Cluster
	// SAM resolves and kills PE targets.
	SAM *sam.SAM
	// Store receives the Ckpt* fault arms; nil skips those events.
	Store *ckpt.FaultStore
	// Logf receives one line per applied event; nil discards them.
	Logf func(format string, args ...any)
	// KillWait bounds how long a KillPE event waits for its target to
	// be running before giving up (default 250ms). PE ids are stable
	// across restarts, so waiting out a concurrent restart keeps the
	// number of applied kills deterministic run over run.
	KillWait time.Duration
}

// Report counts what a Run did.
type Report struct {
	// Applied counts events that took effect; Skipped counts events
	// whose target was unavailable (no running PE, host already in the
	// demanded state, no store attached).
	Applied int
	Skipped int
	// PerKind maps each kind to its applied count.
	PerKind map[Kind]int
}

// Run fires every event of the schedule in order, sleeping the
// inter-event gaps on the runner clock, and returns what was applied.
// It blocks until the last event fired; run it from its own goroutine
// to overlap with the workload.
func (r *Runner) Run(s Schedule) *Report {
	clock := r.Clock
	if clock == nil {
		clock = vclock.Real()
	}
	logf := r.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	killWait := r.KillWait
	if killWait <= 0 {
		killWait = 250 * time.Millisecond
	}
	rep := &Report{PerKind: make(map[Kind]int)}
	start := clock.Now()
	for i, ev := range s.Events {
		if wait := ev.Offset - clock.Now().Sub(start); wait > 0 {
			clock.Sleep(wait)
		}
		applied, detail := r.apply(ev, i, clock, killWait)
		if applied {
			rep.Applied++
			rep.PerKind[ev.Kind]++
			logf("chaos: event %d applied: %s%s", i, ev, detail)
		} else {
			rep.Skipped++
			logf("chaos: event %d skipped: %s%s", i, ev, detail)
		}
	}
	return rep
}

// apply fires one event, reporting whether it took effect and a detail
// suffix for the log line.
func (r *Runner) apply(ev Event, i int, clock vclock.Clock, killWait time.Duration) (bool, string) {
	switch ev.Kind {
	case KillPE:
		id, ok := r.resolvePE(ev.Target, clock, killWait)
		if !ok {
			return false, " (no running PE)"
		}
		if err := r.SAM.KillPE(id, fmt.Sprintf("chaos: injected PE kill (event %d)", i)); err != nil {
			return false, fmt.Sprintf(" (%v)", err)
		}
		return true, fmt.Sprintf(" -> %s", id)
	case KillHost:
		name, ok := r.hostName(ev.Target)
		if !ok {
			return false, " (no such host)"
		}
		if !r.Cluster.HostUp(name) {
			return false, " (already down)"
		}
		if r.upHosts() <= 1 {
			return false, " (last live host)"
		}
		if err := r.Cluster.KillHost(name); err != nil {
			return false, fmt.Sprintf(" (%v)", err)
		}
		return true, fmt.Sprintf(" -> %s", name)
	case ReviveHost:
		name, ok := r.hostName(ev.Target)
		if !ok {
			return false, " (no such host)"
		}
		if r.Cluster.HostUp(name) {
			return false, " (already up)"
		}
		if err := r.Cluster.ReviveHost(name); err != nil {
			return false, fmt.Sprintf(" (%v)", err)
		}
		return true, fmt.Sprintf(" -> %s", name)
	case MetricDelay:
		name, ok := r.hostName(ev.Target)
		if !ok {
			return false, " (no such host)"
		}
		if err := r.Cluster.DelayMetrics(name, ev.Amount); err != nil {
			return false, fmt.Sprintf(" (%v)", err)
		}
		return true, fmt.Sprintf(" -> %s", name)
	case CkptFail:
		if r.Store == nil {
			return false, " (no fault store)"
		}
		r.Store.FailSaves(1)
		return true, ""
	case CkptTear:
		if r.Store == nil {
			return false, " (no fault store)"
		}
		r.Store.TearSaves(1)
		return true, ""
	case CkptDrop:
		if r.Store == nil {
			return false, " (no fault store)"
		}
		r.Store.DropSaves(1)
		return true, ""
	case CkptLatency:
		if r.Store == nil {
			return false, " (no fault store)"
		}
		r.Store.SetLatency(ev.Amount)
		return true, ""
	default:
		return false, " (unknown kind)"
	}
}

// resolvePE maps an abstract target index onto the deterministically
// ordered list of all PEs of all jobs (PE ids are stable across
// restarts), then waits — bounded — for that PE to be running, so a
// kill landing during a concurrent restart still applies.
func (r *Runner) resolvePE(target int, clock vclock.Clock, killWait time.Duration) (ids.PEID, bool) {
	deadline := clock.Now().Add(killWait)
	for {
		var pes []sam.PERuntimeInfo
		for _, job := range r.SAM.Jobs() {
			pes = append(pes, job.PEs...)
		}
		if len(pes) == 0 {
			return 0, false
		}
		sort.Slice(pes, func(i, j int) bool { return pes[i].ID < pes[j].ID })
		p := pes[target%len(pes)]
		if p.State == "running" {
			return p.ID, true
		}
		if !clock.Now().Before(deadline) {
			return 0, false
		}
		clock.Sleep(2 * time.Millisecond)
	}
}

// hostName maps a host index onto the name-sorted host list.
func (r *Runner) hostName(idx int) (string, bool) {
	hosts := r.Cluster.Hosts()
	if len(hosts) == 0 {
		return "", false
	}
	return hosts[idx%len(hosts)].Name, true
}

// upHosts counts live hosts.
func (r *Runner) upHosts() int {
	n := 0
	for _, h := range r.Cluster.Hosts() {
		if h.Up {
			n++
		}
	}
	return n
}
