package ckpt

import (
	"fmt"
	"testing"
	"time"
)

// writeAggState emulates the Aggregate operator's snapshot payload:
// groups sliding windows of (timestamp, float) samples keyed by symbol.
func writeAggState(e *Encoder, groups, samples int) error {
	base := time.Unix(0, 1345852800000000000)
	e.PutUint(uint64(groups))
	for g := 0; g < groups; g++ {
		e.PutStr(fmt.Sprintf("SYM%03d", g))
		e.PutUint(uint64(samples))
		for s := 0; s < samples; s++ {
			e.PutTime(base.Add(time.Duration(s) * time.Millisecond))
			e.PutFloat(100 + float64(s)*0.25)
		}
	}
	return nil
}

// benchSnapshot builds one sealed snapshot of the given shape.
func benchSnapshot(groups, samples int) []byte {
	w := NewWriter()
	defer w.Close()
	_ = w.Section("agg", "Aggregate", func(e *Encoder) error {
		return writeAggState(e, groups, samples)
	})
	_ = w.Section("cnt", "CountSink", func(e *Encoder) error {
		e.PutInt(123456)
		return nil
	})
	return append([]byte(nil), w.Finish()...)
}

// BenchmarkCheckpointEncode measures snapshot assembly (the per-interval
// cost the PE checkpoint driver pays): write + CRC seal, no store I/O.
// ns/op is the latency; B/op via SetBytes gives the snapshot size.
func BenchmarkCheckpointEncode(b *testing.B) {
	for _, shape := range []struct{ groups, samples int }{
		{1, 600},  // the paper's one-symbol 600-sample Trend window
		{10, 600}, // ten symbols
		{100, 64}, // wide fan-out, shallow windows
	} {
		name := fmt.Sprintf("g%d_s%d", shape.groups, shape.samples)
		b.Run(name, func(b *testing.B) {
			size := len(benchSnapshot(shape.groups, shape.samples))
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := NewWriter()
				_ = w.Section("agg", "Aggregate", func(e *Encoder) error {
					return writeAggState(e, shape.groups, shape.samples)
				})
				_ = w.Section("cnt", "CountSink", func(e *Encoder) error {
					e.PutInt(123456)
					return nil
				})
				_ = w.Finish()
				w.Close()
			}
		})
	}
}

// TestEncodeReusesPooledBuffers pins the pooled-buffer fast path for
// large snapshots: a ~100 KB encode (the g10_s600 shape) must keep its
// grown buffers through the pool instead of falling back to growing a
// fresh 512-byte buffer every capture. A regression to the old 64 KB
// pool cap shows up here as the full append-doubling ladder (about ten
// allocations and ~200 KB copied) reappearing on every encode.
func TestEncodeReusesPooledBuffers(t *testing.T) {
	// Pre-render the group names: fmt.Sprintf inside the measured loop
	// would charge its own allocations to the encoder.
	names := make([]string, 10)
	for g := range names {
		names[g] = fmt.Sprintf("SYM%03d", g)
	}
	base := time.Unix(0, 1345852800000000000)
	encode := func() {
		w := NewWriter()
		_ = w.Section("agg", "Aggregate", func(e *Encoder) error {
			e.PutUint(uint64(len(names)))
			for _, name := range names {
				e.PutStr(name)
				e.PutUint(600)
				for s := 0; s < 600; s++ {
					e.PutTime(base.Add(time.Duration(s) * time.Millisecond))
					e.PutFloat(100 + float64(s)*0.25)
				}
			}
			return nil
		})
		if len(w.Finish()) < 64<<10 {
			t.Fatal("snapshot unexpectedly small: the test no longer exercises the large-buffer path")
		}
		w.Close()
	}
	encode() // warm the pool with grown buffers
	if allocs := testing.AllocsPerRun(20, encode); allocs > 4 {
		t.Errorf("large snapshot encode allocated %.1f objects/op after warm-up; want <= 4 (pooled buffers not reused)", allocs)
	}
}

// BenchmarkCheckpointDecode measures restore-side parsing: CRC verify,
// section framing, and a full decode of the aggregate payload.
func BenchmarkCheckpointDecode(b *testing.B) {
	data := benchSnapshot(10, 600)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := Parse(data)
		if err != nil {
			b.Fatal(err)
		}
		d := snap.Sections()[0].Decoder()
		groups := d.Uint()
		var sum float64
		for g := uint64(0); g < groups && d.Err() == nil; g++ {
			_ = d.Str()
			n := d.Uint()
			for s := uint64(0); s < n && d.Err() == nil; s++ {
				_ = d.Time()
				sum += d.Float()
			}
		}
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

// BenchmarkCheckpointStoreMem measures a full checkpoint round through
// the in-memory store: encode, persist, load, parse.
func BenchmarkCheckpointStoreMem(b *testing.B) {
	store := NewMemStore()
	data := benchSnapshot(10, 600)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Save("job-1/pe-1", data); err != nil {
			b.Fatal(err)
		}
		got, ok, err := store.Load("job-1/pe-1")
		if !ok || err != nil {
			b.Fatal("load failed")
		}
		if _, err := Parse(got); err != nil {
			b.Fatal(err)
		}
	}
}
