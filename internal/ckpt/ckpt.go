// Package ckpt implements operator-state checkpointing: a versioned,
// CRC-guarded binary snapshot format plus the stores snapshots persist
// into. A snapshot captures the declared state of every stateful
// operator fused into one PE, so a restarted PE can resume with its
// aggregate windows, join state, and application counters intact
// instead of rebuilding them from fresh traffic — turning the paper's
// restart actuation (§5.2, where a restarted replica rejoins with an
// empty window) into a stateful recovery primitive.
//
// # Snapshot format
//
//	magic    4 bytes  "ORCK"
//	version  1 byte   (currently 2)
//	captured varint   capture instant, unix-nanos on the platform clock
//	                  (math.MinInt64 = unknown; absent in version 1)
//	sections repeated:
//	  name    uvarint length + bytes   operator instance name
//	  kind    uvarint length + bytes   operator kind
//	  payload uvarint length + bytes   operator-encoded state
//	crc      4 bytes big-endian CRC-32C over everything before it
//
// The capture timestamp (added in version 2) lets a restarted PE
// compute its exact post-restore staleness: lastCheckpointAgeMs after a
// restore measures from the adopted snapshot's capture instant, not
// from the restore moment. Parse still reads version-1 snapshots; they
// simply carry no capture instant.
//
// Within a payload, operators write primitives through an Encoder and
// read them back through a Decoder in the same order. The wire
// encodings match the tuple codec (zig-zag varints, IEEE-754 floats,
// length-prefixed strings), and snapshot assembly reuses the codec's
// pooled buffers, so steady-state checkpointing of fixed-width state
// allocates only the final persisted copy.
//
// Malformed input never panics: Parse rejects bad magic (ErrNotSnapshot),
// unknown versions (ErrVersion), and truncated or CRC-mismatching bytes
// (ErrCorrupt); Decoder latches the first read-past-end error.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"streamorca/internal/tuple"
)

// Version is the snapshot format version this package writes. Version 2
// added the capture-timestamp header field; version-1 snapshots are
// still parsed (their capture instant reads as unknown).
const Version = 2

// unknownCapture is the captured-header sentinel for "no capture
// instant recorded", matching the tuple codec's zero-time convention.
const unknownCapture = math.MinInt64

// magic identifies a snapshot; it is deliberately not a valid tuple
// frame so a snapshot fed to the tuple codec (or vice versa) fails fast.
var magic = [4]byte{'O', 'R', 'C', 'K'}

// Snapshot parse errors, matched with errors.Is.
var (
	// ErrNotSnapshot reports input that does not start with the magic.
	ErrNotSnapshot = errors.New("ckpt: not a snapshot")
	// ErrVersion reports a snapshot written by an unknown format version.
	ErrVersion = errors.New("ckpt: unsupported snapshot version")
	// ErrCorrupt reports truncation or a CRC mismatch.
	ErrCorrupt = errors.New("ckpt: corrupt snapshot")
)

// castagnoli is the CRC-32C table used for snapshot checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer assembles one snapshot. Obtain with NewWriter, add one section
// per stateful operator, call Finish for the encoded bytes, and Close
// to recycle the internal buffer (after the store has consumed the
// bytes — stores must not retain the slice past Save).
type Writer struct {
	buf      *[]byte
	finished bool
}

// NewWriter starts a snapshot with the header written and no capture
// instant recorded. Checkpoint drivers that know when the capture
// happens should use NewWriterAt so restores can compute exact
// staleness ages.
func NewWriter() *Writer { return NewWriterAt(time.Time{}) }

// NewWriterAt starts a snapshot whose header records at as the capture
// instant (on the platform clock); the zero time records "unknown".
func NewWriterAt(at time.Time) *Writer {
	b := tuple.GetBuf()
	*b = append(*b, magic[:]...)
	*b = append(*b, Version)
	nanos := int64(unknownCapture)
	if !at.IsZero() {
		nanos = at.UnixNano()
	}
	*b = binary.AppendVarint(*b, nanos)
	return &Writer{buf: b}
}

// Section appends one operator's state: fill writes the payload through
// the Encoder, and the section is framed with the operator's instance
// name and kind so restore can match it back. An error from fill (or a
// finished writer) aborts the section and is returned unchanged.
func (w *Writer) Section(name, kind string, fill func(*Encoder) error) error {
	if w.finished {
		return fmt.Errorf("ckpt: section %q added after Finish", name)
	}
	payload := tuple.GetBuf()
	defer tuple.PutBuf(payload)
	if err := fill(&Encoder{buf: payload}); err != nil {
		return err
	}
	appendStr(w.buf, name)
	appendStr(w.buf, kind)
	*w.buf = binary.AppendUvarint(*w.buf, uint64(len(*payload)))
	*w.buf = append(*w.buf, *payload...)
	return nil
}

// Finish seals the snapshot with its CRC trailer and returns the full
// encoding. The returned slice aliases the writer's pooled buffer: it
// is valid until Close.
func (w *Writer) Finish() []byte {
	if !w.finished {
		w.finished = true
		sum := crc32.Checksum(*w.buf, castagnoli)
		*w.buf = binary.BigEndian.AppendUint32(*w.buf, sum)
	}
	return *w.buf
}

// Close recycles the writer's buffer; the slice returned by Finish must
// not be used afterwards.
func (w *Writer) Close() {
	if w.buf != nil {
		tuple.PutBuf(w.buf)
		w.buf = nil
	}
}

func appendStr(dst *[]byte, s string) {
	*dst = binary.AppendUvarint(*dst, uint64(len(s)))
	*dst = append(*dst, s...)
}

// Section is one operator's portion of a parsed snapshot.
type Section struct {
	// Name is the operator instance name the state was captured from.
	Name string
	// Kind is the operator kind, checked at restore so state never
	// flows into a different operator type under a reused name.
	Kind string

	payload []byte
}

// Decoder returns a fresh decoder positioned at the start of the
// section's payload.
func (s Section) Decoder() *Decoder { return &Decoder{data: s.payload} }

// Snapshot is a parsed, checksum-verified snapshot.
type Snapshot struct {
	sections []Section
	captured int64 // unix-nanos; unknownCapture when not recorded
}

// Sections returns the operator sections in capture order.
func (s *Snapshot) Sections() []Section { return s.sections }

// CapturedAt returns the instant the snapshot was captured at, and
// whether the snapshot recorded one (version-1 snapshots, and writers
// not given a clock, did not).
func (s *Snapshot) CapturedAt() (time.Time, bool) {
	if s.captured == unknownCapture {
		return time.Time{}, false
	}
	return time.Unix(0, s.captured), true
}

// Parse verifies and decodes a snapshot. The returned sections alias
// data; callers keeping a snapshot must keep data alive.
func Parse(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+1+crc32.Size {
		if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic[:]) {
			return nil, ErrNotSnapshot
		}
		return nil, fmt.Errorf("%w: %d bytes is shorter than header+trailer", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, ErrNotSnapshot
	}
	v := data[len(magic)]
	if v != 1 && v != Version {
		return nil, fmt.Errorf("%w: version %d (supported: 1-%d)", ErrVersion, v, Version)
	}
	body, trailer := data[:len(data)-crc32.Size], data[len(data)-crc32.Size:]
	if got, want := crc32.Checksum(body, castagnoli), binary.BigEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	snap := &Snapshot{captured: unknownCapture}
	rest := body[len(magic)+1:]
	if v >= 2 {
		captured, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: capture timestamp", ErrCorrupt)
		}
		snap.captured = captured
		rest = rest[n:]
	}
	for len(rest) > 0 {
		var sec Section
		var err error
		if sec.Name, rest, err = readStr(rest); err != nil {
			return nil, fmt.Errorf("%w: section name: %v", ErrCorrupt, err)
		}
		if sec.Kind, rest, err = readStr(rest); err != nil {
			return nil, fmt.Errorf("%w: section kind: %v", ErrCorrupt, err)
		}
		l, n := binary.Uvarint(rest)
		if n <= 0 || l > uint64(len(rest)-n) {
			return nil, fmt.Errorf("%w: payload length of section %q", ErrCorrupt, sec.Name)
		}
		sec.payload = rest[n : n+int(l)]
		rest = rest[n+int(l):]
		snap.sections = append(snap.sections, sec)
	}
	return snap, nil
}

func readStr(data []byte) (string, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)-n) {
		return "", nil, errors.New("truncated string")
	}
	return string(data[n : n+int(l)]), data[n+int(l):], nil
}

// Encoder writes an operator's state into a snapshot section. Values
// must be read back by RestoreState in the same order they were written.
type Encoder struct {
	buf *[]byte
}

// PutInt appends a signed integer (zig-zag varint).
func (e *Encoder) PutInt(v int64) { *e.buf = binary.AppendVarint(*e.buf, v) }

// PutUint appends an unsigned integer (uvarint) — use for lengths.
func (e *Encoder) PutUint(v uint64) { *e.buf = binary.AppendUvarint(*e.buf, v) }

// PutFloat appends a float64 (8 bytes IEEE-754 big endian).
func (e *Encoder) PutFloat(v float64) {
	*e.buf = binary.BigEndian.AppendUint64(*e.buf, math.Float64bits(v))
}

// PutBool appends a boolean (1 byte).
func (e *Encoder) PutBool(v bool) {
	if v {
		*e.buf = append(*e.buf, 1)
	} else {
		*e.buf = append(*e.buf, 0)
	}
}

// PutStr appends a length-prefixed string.
func (e *Encoder) PutStr(s string) { appendStr(e.buf, s) }

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	*e.buf = binary.AppendUvarint(*e.buf, uint64(len(b)))
	*e.buf = append(*e.buf, b...)
}

// PutTime appends a timestamp as varint unix-nanos; the zero time
// encodes as math.MinInt64, matching the tuple codec's convention.
func (e *Encoder) PutTime(t time.Time) {
	if t.IsZero() {
		*e.buf = binary.AppendVarint(*e.buf, math.MinInt64)
		return
	}
	*e.buf = binary.AppendVarint(*e.buf, t.UnixNano())
}

// Decoder reads an operator's state back out of a snapshot section.
// The first malformed or past-the-end read latches an error; subsequent
// reads return zero values, so RestoreState can decode a whole fixed
// layout and check Err once. Loops driven by a decoded length must
// still break on Err inside the loop, since a hostile length would
// otherwise spin on zero values.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread payload bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

// Int reads a signed integer.
func (d *Decoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// Uint reads an unsigned integer.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Float reads a float64.
func (d *Decoder) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("float")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail("bool")
		return false
	}
	v := d.data[d.off] != 0
	d.off++
	return v
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	b := d.Bytes()
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice aliasing the section payload.
func (d *Decoder) Bytes() []byte {
	if d.err != nil {
		return nil
	}
	l, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 || l > uint64(d.Remaining()-n) {
		d.fail("bytes")
		return nil
	}
	d.off += n
	b := d.data[d.off : d.off+int(l)]
	d.off += int(l)
	return b
}

// Time reads a timestamp written by PutTime.
func (d *Decoder) Time() time.Time {
	v := d.Int()
	if d.err != nil || v == math.MinInt64 {
		return time.Time{}
	}
	return time.Unix(0, v)
}
