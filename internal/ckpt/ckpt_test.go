package ckpt

import (
	"errors"
	"hash/crc32"
	"path/filepath"
	"testing"
	"time"
)

// buildSnapshot writes a two-section snapshot exercising every encoder
// primitive and returns an independent copy of the encoding.
func buildSnapshot(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	defer w.Close()
	err := w.Section("agg", "Aggregate", func(e *Encoder) error {
		e.PutInt(-42)
		e.PutUint(7)
		e.PutFloat(101.25)
		e.PutBool(true)
		e.PutStr("IBM")
		e.PutBytes([]byte{1, 2, 3})
		e.PutTime(time.Unix(0, 1234567890))
		e.PutTime(time.Time{})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section("cnt", "CountSink", func(e *Encoder) error {
		e.PutInt(99)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), w.Finish()...)
}

func TestRoundTrip(t *testing.T) {
	data := buildSnapshot(t)
	snap, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	secs := snap.Sections()
	if len(secs) != 2 {
		t.Fatalf("sections = %d", len(secs))
	}
	if secs[0].Name != "agg" || secs[0].Kind != "Aggregate" || secs[1].Name != "cnt" || secs[1].Kind != "CountSink" {
		t.Fatalf("section identity wrong: %+v", secs)
	}
	d := secs[0].Decoder()
	if d.Int() != -42 || d.Uint() != 7 || d.Float() != 101.25 || !d.Bool() || d.Str() != "IBM" {
		t.Fatal("primitive round-trip wrong")
	}
	if b := d.Bytes(); len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Fatalf("bytes = %v", b)
	}
	if !d.Time().Equal(time.Unix(0, 1234567890)) {
		t.Fatal("time round-trip wrong")
	}
	if !d.Time().IsZero() {
		t.Fatal("zero time round-trip wrong")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
	d2 := secs[1].Decoder()
	if d2.Int() != 99 || d2.Err() != nil {
		t.Fatal("second section wrong")
	}
}

func TestEmptySnapshot(t *testing.T) {
	w := NewWriter()
	defer w.Close()
	snap, err := Parse(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sections()) != 0 {
		t.Fatalf("sections = %d", len(snap.Sections()))
	}
}

func TestSectionErrorPropagates(t *testing.T) {
	w := NewWriter()
	defer w.Close()
	boom := errors.New("boom")
	if err := w.Section("x", "K", func(*Encoder) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failed section must not have been framed.
	snap, err := Parse(append([]byte(nil), w.Finish()...))
	if err != nil || len(snap.Sections()) != 0 {
		t.Fatalf("snap=%v err=%v", snap, err)
	}
}

func TestSectionAfterFinish(t *testing.T) {
	w := NewWriter()
	defer w.Close()
	w.Finish()
	if err := w.Section("late", "K", func(*Encoder) error { return nil }); err == nil {
		t.Fatal("section after Finish must fail")
	}
}

func TestParseBadMagic(t *testing.T) {
	if _, err := Parse([]byte("NOPE....more bytes here")); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Parse(nil); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("nil input: err = %v", err)
	}
}

func TestParseVersionSkew(t *testing.T) {
	data := buildSnapshot(t)
	data[4] = Version + 1
	// Re-seal so only the version differs.
	body := data[:len(data)-crc32.Size]
	sum := crc32.Checksum(body, castagnoli)
	data[len(data)-4] = byte(sum >> 24)
	data[len(data)-3] = byte(sum >> 16)
	data[len(data)-2] = byte(sum >> 8)
	data[len(data)-1] = byte(sum)
	if _, err := Parse(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseCRCMismatch(t *testing.T) {
	data := buildSnapshot(t)
	data[7] ^= 0xff // flip a body bit, leave the trailer
	if _, err := Parse(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseTruncation(t *testing.T) {
	data := buildSnapshot(t)
	for cut := 0; cut < len(data); cut++ {
		_, err := Parse(data[:cut])
		if err == nil {
			t.Fatalf("truncation to %d bytes parsed", cut)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("truncation to %d: unexpected error class %v", cut, err)
		}
	}
}

func TestDecoderLatchesError(t *testing.T) {
	d := (&Section{payload: []byte{0x01}}).Decoder()
	_ = d.Float() // needs 8 bytes, has 1
	if d.Err() == nil {
		t.Fatal("expected latched error")
	}
	if d.Int() != 0 || d.Str() != "" || d.Bool() || !d.Time().IsZero() || d.Bytes() != nil {
		t.Fatal("reads after a latched error must return zero values")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v", d.Err())
	}
}

func TestDecoderHostileLength(t *testing.T) {
	// A claimed string length far beyond the payload must fail cleanly,
	// never over-slice.
	payload := []byte{0xff, 0xff, 0xff, 0xff, 0x0f, 'h', 'i'}
	d := (&Section{payload: payload}).Decoder()
	if s := d.Str(); s != "" || d.Err() == nil {
		t.Fatalf("hostile length: s=%q err=%v", s, d.Err())
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, ok, err := s.Load("k"); ok || err != nil {
		t.Fatal("empty store Load wrong")
	}
	data := []byte{1, 2, 3}
	if err := s.Save("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 9 // Save must have copied
	got, ok, err := s.Load("k")
	if err != nil || !ok || got[0] != 1 {
		t.Fatalf("got=%v ok=%v err=%v", got, ok, err)
	}
	got[1] = 9 // Load must hand out a copy too
	got2, _, _ := s.Load("k")
	if got2[1] != 2 {
		t.Fatal("Load aliases stored bytes")
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Load("k"); ok {
		t.Fatal("Delete did not delete")
	}
	if err := s.Delete("missing"); err != nil {
		t.Fatal("deleting a missing key must not error")
	}
}

func TestFSStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("job-1/pe-2"); ok || err != nil {
		t.Fatal("empty store Load wrong")
	}
	if err := s.Save("job-1/pe-2", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Keys with separators must not escape the store directory.
	if err := s.Save("../evil", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load("job-1/pe-2")
	if err != nil || !ok || string(got) != "hello" {
		t.Fatalf("got=%q ok=%v err=%v", got, ok, err)
	}
	if err := s.Save("job-1/pe-2", []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Load("job-1/pe-2")
	if string(got) != "world" {
		t.Fatalf("overwrite: got %q", got)
	}
	if err := s.Delete("job-1/pe-2"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Load("job-1/pe-2"); ok {
		t.Fatal("Delete did not delete")
	}
	if err := s.Delete("job-1/pe-2"); err != nil {
		t.Fatal("double delete must not error")
	}
}
