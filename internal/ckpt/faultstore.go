package ckpt

import (
	"errors"
	"sync"
	"time"

	"streamorca/internal/vclock"
)

// ErrInjected is the error a FaultStore returns from saves it was armed
// to fail. Callers matching errors.Is can tell injected faults from real
// storage errors in assertions.
var ErrInjected = errors.New("ckpt: injected store fault")

// FaultStore decorates any Store with deterministic fault injection for
// the chaos harness and hostile-storage tests: failed saves, silently
// dropped saves (the stored snapshot stays stale while the caller
// believes it refreshed), torn writes (the persisted bytes are truncated
// so Parse's CRC rejects them on load), and per-operation latency slept
// on a virtual clock. Faults are armed as one-shot budgets — FailSaves(2)
// fails the next two saves and then the store behaves normally — so a
// schedule of fault events maps directly onto arm calls.
//
// The zero fault state is fully transparent: every operation delegates
// to the wrapped store unchanged.
type FaultStore struct {
	inner Store
	clock vclock.Clock

	mu        sync.Mutex
	failSaves int
	dropSaves int
	tearSaves int
	latency   time.Duration
	stats     FaultStats
}

// FaultStats counts a FaultStore's operations and injected faults.
type FaultStats struct {
	// Saves counts Save calls that reached the store untampered.
	Saves int
	// FailedSaves counts saves rejected with ErrInjected.
	FailedSaves int
	// DroppedSaves counts saves acknowledged but never persisted — the
	// stale-checkpoint injection: the caller's staleness gauge keeps
	// growing while it believes snapshots are fresh.
	DroppedSaves int
	// TornSaves counts saves persisted with truncated payloads,
	// simulating storage that tore the write below the rename guarantee.
	TornSaves int
	// Loads and Deletes count the respective delegated operations.
	Loads   int
	Deletes int
}

// NewFaultStore wraps inner. The clock paces injected latency; nil means
// the wall clock.
func NewFaultStore(inner Store, clock vclock.Clock) *FaultStore {
	if clock == nil {
		clock = vclock.Real()
	}
	return &FaultStore{inner: inner, clock: clock}
}

// FailSaves arms the next n saves to return ErrInjected without touching
// the wrapped store.
func (f *FaultStore) FailSaves(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSaves += n
}

// DropSaves arms the next n saves to report success without persisting
// anything, leaving whatever snapshot the store already holds in place.
func (f *FaultStore) DropSaves(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropSaves += n
}

// TearSaves arms the next n saves to persist only a truncated prefix of
// the snapshot, so the CRC check rejects it at restore time.
func (f *FaultStore) TearSaves(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearSaves += n
}

// SetLatency makes every subsequent operation sleep d on the store's
// clock before proceeding; 0 removes the latency.
func (f *FaultStore) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// Reset disarms every pending fault and clears the latency. Counters are
// kept: recovery sweeps call Reset and then read Stats for the totals.
func (f *FaultStore) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSaves, f.dropSaves, f.tearSaves, f.latency = 0, 0, 0, 0
}

// Stats returns a snapshot of the operation and fault counters.
func (f *FaultStore) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// saveFault consumes at most one armed save fault, returning what to do
// with this save. Latency is returned alongside so one lock acquisition
// decides the whole operation.
func (f *FaultStore) saveFault() (fail, drop, tear bool, wait time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	wait = f.latency
	switch {
	case f.failSaves > 0:
		f.failSaves--
		f.stats.FailedSaves++
		fail = true
	case f.dropSaves > 0:
		f.dropSaves--
		f.stats.DroppedSaves++
		drop = true
	case f.tearSaves > 0:
		f.tearSaves--
		f.stats.TornSaves++
		tear = true
	default:
		f.stats.Saves++
	}
	return fail, drop, tear, wait
}

// Save implements Store.
func (f *FaultStore) Save(key string, data []byte) error {
	fail, drop, tear, wait := f.saveFault()
	if wait > 0 {
		f.clock.Sleep(wait)
	}
	switch {
	case fail:
		return ErrInjected
	case drop:
		return nil
	case tear:
		// Keep the header, lose the tail: the snapshot still looks like
		// one (magic intact) but its CRC no longer matches, which is
		// exactly what torn storage below the rename guarantee produces.
		return f.inner.Save(key, data[:len(data)/2])
	default:
		return f.inner.Save(key, data)
	}
}

// Load implements Store.
func (f *FaultStore) Load(key string) ([]byte, bool, error) {
	f.mu.Lock()
	f.stats.Loads++
	wait := f.latency
	f.mu.Unlock()
	if wait > 0 {
		f.clock.Sleep(wait)
	}
	return f.inner.Load(key)
}

// Delete implements Store.
func (f *FaultStore) Delete(key string) error {
	f.mu.Lock()
	f.stats.Deletes++
	wait := f.latency
	f.mu.Unlock()
	if wait > 0 {
		f.clock.Sleep(wait)
	}
	return f.inner.Delete(key)
}
