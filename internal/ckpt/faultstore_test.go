package ckpt

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"streamorca/internal/vclock"
)

// snapBytes assembles a small valid snapshot for store tests.
func snapBytes(t *testing.T, payload int64) []byte {
	t.Helper()
	w := NewWriter()
	defer w.Close()
	err := w.Section("op", "Kind", func(e *Encoder) error {
		e.PutInt(payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), w.Finish()...)
}

func TestFaultStoreTransparentByDefault(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), nil)
	data := snapBytes(t, 7)
	if err := fs.Save("k", data); err != nil {
		t.Fatal(err)
	}
	got, ok, err := fs.Load("k")
	if err != nil || !ok || !bytes.Equal(got, data) {
		t.Fatalf("Load = %v %v %v", got, ok, err)
	}
	if err := fs.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := fs.Load("k"); ok {
		t.Fatal("delete did not delegate")
	}
	st := fs.Stats()
	if st.Saves != 1 || st.Loads != 2 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultStoreFailSavesBudget(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), nil)
	fs.FailSaves(2)
	data := snapBytes(t, 1)
	for i := 0; i < 2; i++ {
		if err := fs.Save("k", data); !errors.Is(err, ErrInjected) {
			t.Fatalf("save %d err = %v, want ErrInjected", i, err)
		}
	}
	if err := fs.Save("k", data); err != nil {
		t.Fatalf("budget exhausted but save still failed: %v", err)
	}
	if st := fs.Stats(); st.FailedSaves != 2 || st.Saves != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFaultStoreDropKeepsStaleSnapshot: a dropped save reports success
// but the store keeps serving the previous snapshot — the staleness
// injection the chaos harness uses against the age gauge.
func TestFaultStoreDropKeepsStaleSnapshot(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), nil)
	old := snapBytes(t, 1)
	if err := fs.Save("k", old); err != nil {
		t.Fatal(err)
	}
	fs.DropSaves(1)
	if err := fs.Save("k", snapBytes(t, 2)); err != nil {
		t.Fatalf("dropped save must look successful, got %v", err)
	}
	got, ok, err := fs.Load("k")
	if err != nil || !ok || !bytes.Equal(got, old) {
		t.Fatalf("store did not keep the stale snapshot: %v %v %v", got, ok, err)
	}
}

// TestFaultStoreTornSaveRejectedByParse: a torn write persists bytes the
// CRC check refuses, so the restore path discards them instead of
// adopting half a snapshot.
func TestFaultStoreTornSaveRejectedByParse(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), nil)
	fs.TearSaves(1)
	if err := fs.Save("k", snapBytes(t, 42)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := fs.Load("k")
	if err != nil || !ok {
		t.Fatalf("Load = %v %v", ok, err)
	}
	if _, perr := Parse(got); perr == nil {
		t.Fatal("torn snapshot parsed cleanly")
	} else if !errors.Is(perr, ErrCorrupt) && !errors.Is(perr, ErrNotSnapshot) {
		t.Fatalf("parse err = %v, want corruption", perr)
	}
}

func TestFaultStoreLatencySleepsOnClock(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	fs := NewFaultStore(NewMemStore(), clock)
	fs.SetLatency(50 * time.Millisecond)
	done := make(chan error, 1)
	data := snapBytes(t, 3)
	go func() { done <- fs.Save("k", data) }()
	clock.BlockUntilWaiters(1)
	select {
	case <-done:
		t.Fatal("save returned before the latency elapsed")
	default:
	}
	clock.Advance(50 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFaultStoreResetDisarms(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), nil)
	fs.FailSaves(5)
	fs.DropSaves(5)
	fs.TearSaves(5)
	fs.SetLatency(time.Hour)
	fs.Reset()
	data := snapBytes(t, 9)
	if err := fs.Save("k", data); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := fs.Load("k")
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reset store did not behave transparently")
	}
}
