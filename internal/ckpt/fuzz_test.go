package ckpt

import (
	"bytes"
	"testing"
	"time"
)

// FuzzParse throws arbitrary bytes — seeded with valid snapshots and
// systematic corruptions of them — at Parse and a full decoder drain.
// Invariants: no panic, valid snapshots round-trip, and any accepted
// snapshot's sections decode without over-slicing.
func FuzzParse(f *testing.F) {
	valid := func(fill func(w *Writer)) []byte {
		w := NewWriter()
		defer w.Close()
		fill(w)
		return append([]byte(nil), w.Finish()...)
	}
	empty := valid(func(*Writer) {})
	full := valid(func(w *Writer) {
		_ = w.Section("agg", "Aggregate", func(e *Encoder) error {
			e.PutUint(2)
			e.PutStr("IBM")
			e.PutTime(time.Unix(0, 42))
			e.PutFloat(1.5)
			e.PutInt(-7)
			e.PutBool(true)
			return nil
		})
		_ = w.Section("cnt", "CountSink", func(e *Encoder) error {
			e.PutInt(1000)
			return nil
		})
	})
	f.Add(empty)
	f.Add(full)
	f.Add(full[:len(full)-5])            // truncation
	f.Add(append([]byte{}, full[4:]...)) // missing magic
	flipped := append([]byte(nil), full...)
	flipped[6] ^= 0x40 // CRC mismatch
	f.Add(flipped)
	skew := append([]byte(nil), full...)
	skew[4] = Version + 3 // version skew
	f.Add(skew)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted input: draining every section with every primitive
		// must stay in bounds (the decoder latches instead of panicking).
		for _, sec := range snap.Sections() {
			d := sec.Decoder()
			for d.Err() == nil && d.Remaining() > 0 {
				_ = d.Int()
				_ = d.Bytes()
				_ = d.Bool()
			}
		}
		// A parsed snapshot implies an intact CRC: re-parsing the same
		// bytes must agree.
		again, err := Parse(bytes.Clone(data))
		if err != nil || len(again.Sections()) != len(snap.Sections()) {
			t.Fatalf("reparse disagrees: %v", err)
		}
	})
}
