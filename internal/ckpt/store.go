package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store persists snapshots under string keys (SAM keys them by job and
// PE id). Save must copy data before returning: the caller recycles the
// slice into the codec buffer pool. Implementations must be safe for
// concurrent use — the per-PE checkpoint drivers run independently.
type Store interface {
	// Save persists a snapshot, replacing any previous one for the key.
	Save(key string, data []byte) error
	// Load returns the latest snapshot for key, reporting whether one
	// exists. The returned slice is owned by the caller.
	Load(key string) ([]byte, bool, error)
	// Delete removes the snapshot for key; deleting a missing key is
	// not an error.
	Delete(key string) error
}

// MemStore is an in-memory snapshot store: the default for tests and
// single-process instances, where a PE restart survives but a process
// crash loses everything.
type MemStore struct {
	mu    sync.Mutex
	snaps map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{snaps: make(map[string][]byte)} }

// Save implements Store.
func (m *MemStore) Save(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snaps[key] = cp
	return nil
}

// Load implements Store.
func (m *MemStore) Load(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.snaps[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

// Delete implements Store.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.snaps, key)
	return nil
}

// Len returns the number of stored snapshots.
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.snaps)
}

// FSStore persists snapshots as files under one directory, surviving
// the process — the store a multi-host deployment would back with
// shared storage for cross-host restore. Writes go through a temp file
// and rename, so a crash mid-save never leaves a torn snapshot (and
// Parse's CRC catches torn storage below the filesystem's guarantees).
type FSStore struct {
	dir string
}

// NewFSStore opens (creating if needed) a filesystem-backed store
// rooted at dir.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: open store %s: %w", dir, err)
	}
	return &FSStore{dir: dir}, nil
}

// path maps a key to a file name, escaping separators so keys like
// "job-1/pe-3" stay a single flat file.
func (f *FSStore) path(key string) string {
	safe := strings.NewReplacer("/", "_", string(filepath.Separator), "_", "..", "_").Replace(key)
	return filepath.Join(f.dir, safe+".ckpt")
}

// Save implements Store.
func (f *FSStore) Save(key string, data []byte) error {
	dst := f.path(key)
	tmp, err := os.CreateTemp(f.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: save %q: %w", key, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), dst)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: save %q: %w", key, werr)
	}
	return nil
}

// Load implements Store.
func (f *FSStore) Load(key string) ([]byte, bool, error) {
	data, err := os.ReadFile(f.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: load %q: %w", key, err)
	}
	return data, true, nil
}

// Delete implements Store.
func (f *FSStore) Delete(key string) error {
	err := os.Remove(f.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ckpt: delete %q: %w", key, err)
	}
	return nil
}
