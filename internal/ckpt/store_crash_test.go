package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// These tests pin FSStore's crash-safety contract: a save interrupted
// mid-write never replaces the previous snapshot, leftover temp files
// from a crashed save are inert, and storage-level truncation below the
// rename guarantee is caught by Parse's CRC — so a torn snapshot makes
// the next restart cold instead of blocking it.

// TestFSStoreCrashMidSaveKeepsPreviousSnapshot simulates a process crash
// between the temp-file write and the rename: the abandoned temp file
// must not shadow or corrupt the committed snapshot.
func TestFSStoreCrashMidSaveKeepsPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	committed := snapBytes(t, 1)
	if err := fs.Save("job/pe", committed); err != nil {
		t.Fatal(err)
	}
	// A crashed save leaves exactly this on disk: a half-written temp
	// file that never got renamed into place.
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		t.Fatal(err)
	}
	next := snapBytes(t, 2)
	if _, err := tmp.Write(next[:len(next)/2]); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}

	got, ok, err := fs.Load("job/pe")
	if err != nil || !ok || !bytes.Equal(got, committed) {
		t.Fatalf("interrupted save disturbed the committed snapshot: %v %v", ok, err)
	}
	if _, err := Parse(got); err != nil {
		t.Fatalf("committed snapshot no longer parses: %v", err)
	}
	// The store keeps working past the debris.
	if err := fs.Save("job/pe", next); err != nil {
		t.Fatal(err)
	}
	got, _, _ = fs.Load("job/pe")
	if !bytes.Equal(got, next) {
		t.Fatal("save after crash debris did not replace the snapshot")
	}
}

// TestFSStoreTornSnapshotRejectedByCRC simulates storage tearing the
// snapshot file after the rename (below the filesystem's guarantees):
// Load returns the bytes, and Parse — the restore path's gate — rejects
// them, so a restart discards the snapshot rather than adopting half of
// one or failing to start.
func TestFSStoreTornSnapshotRejectedByCRC(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	full := snapBytes(t, 99)
	if err := fs.Save("job/pe", full); err != nil {
		t.Fatal(err)
	}
	// Tear the committed file in place.
	var files []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ckpt" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) != 1 {
		t.Fatalf("snapshot files = %v", files)
	}
	if err := os.Truncate(files[0], int64(len(full)/2)); err != nil {
		t.Fatal(err)
	}

	got, ok, err := fs.Load("job/pe")
	if err != nil || !ok {
		t.Fatalf("Load = %v %v", ok, err)
	}
	if _, perr := Parse(got); !errors.Is(perr, ErrCorrupt) {
		t.Fatalf("torn snapshot parse err = %v, want ErrCorrupt", perr)
	}
	// A fresh save repairs the key.
	if err := fs.Save("job/pe", full); err != nil {
		t.Fatal(err)
	}
	got, _, _ = fs.Load("job/pe")
	if _, perr := Parse(got); perr != nil {
		t.Fatalf("repaired snapshot parse err = %v", perr)
	}
}
