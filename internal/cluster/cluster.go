// Package cluster simulates the distributed host layer of System S: a set
// of named hosts, each running a Host Controller (HC) daemon that starts
// and supervises local PE containers, collects their metrics on a fixed
// interval, and pushes batches to SRM (§2.2 — PEs deliver metric values to
// SRM at fixed rates independent of orchestrator calls). The cluster also
// provides the fault-injection surface the failure experiments use: kill a
// single PE or take down a whole host.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"streamorca/internal/ids"
	"streamorca/internal/pe"
	"streamorca/internal/srm"
	"streamorca/internal/vclock"
)

// DefaultMetricsInterval matches the paper's 3-second PE→SRM push rate.
const DefaultMetricsInterval = 3 * time.Second

// HostInfo describes one host for placement decisions.
type HostInfo struct {
	Name string
	Tags []string
	Up   bool
	PEs  int // number of resident PE containers
}

// Cluster is the set of simulated hosts.
type Cluster struct {
	clock    vclock.Clock
	srm      *srm.SRM
	interval time.Duration

	mu     sync.Mutex
	hosts  map[string]*host
	closed bool
}

type host struct {
	name string
	tags []string
	up   bool
	pes  map[ids.PEID]*pe.PE
	// done stops the HC metrics loop; nil while the host is down (a dead
	// host has no HC daemon — KillHost stops the loop, ReviveHost starts
	// a fresh one).
	done chan struct{}
	// pauseUntil delays periodic metric pushes (chaos metric-delay
	// injection); FlushMetrics ignores it.
	pauseUntil time.Time
}

// New builds a cluster pushing metrics to the given SRM every interval
// (DefaultMetricsInterval when interval <= 0).
func New(clock vclock.Clock, s *srm.SRM, interval time.Duration) *Cluster {
	if clock == nil {
		clock = vclock.Real()
	}
	if interval <= 0 {
		interval = DefaultMetricsInterval
	}
	return &Cluster{clock: clock, srm: s, interval: interval, hosts: make(map[string]*host)}
}

// AddHost brings a host (and its HC daemon) into the instance.
func (c *Cluster) AddHost(name string, tags ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cluster: closed")
	}
	if name == "" {
		return fmt.Errorf("cluster: empty host name")
	}
	if _, dup := c.hosts[name]; dup {
		return fmt.Errorf("cluster: host %q already exists", name)
	}
	h := &host{name: name, tags: tags, up: true, pes: make(map[ids.PEID]*pe.PE), done: make(chan struct{})}
	c.hosts[name] = h
	if c.srm != nil {
		c.srm.RegisterHost(name, tags)
	}
	go c.metricsLoop(h, h.done)
	return nil
}

// metricsLoop is the HC's periodic metric push. done is captured per
// incarnation: a revived host gets a fresh channel and a fresh loop.
func (c *Cluster) metricsLoop(h *host, done chan struct{}) {
	tk := c.clock.NewTicker(c.interval)
	defer tk.Stop()
	for {
		select {
		case <-tk.C():
			c.pushHostMetrics(h, false)
		case <-done:
			return
		}
	}
}

// pushHostMetrics pushes one host's PE metrics to SRM. force bypasses an
// injected metric delay (periodic pushes honour it, FlushMetrics not).
func (c *Cluster) pushHostMetrics(h *host, force bool) {
	c.mu.Lock()
	if !h.up || (!force && c.clock.Now().Before(h.pauseUntil)) {
		c.mu.Unlock()
		return
	}
	containers := make([]*pe.PE, 0, len(h.pes))
	for _, p := range h.pes {
		containers = append(containers, p)
	}
	c.mu.Unlock()
	for _, p := range containers {
		if p.State() == pe.Running {
			c.srm.PushSamples(p.MetricsSnapshot())
		}
	}
}

// FlushMetrics synchronously pushes every host's metrics to SRM. Tests and
// experiment drivers call it for deterministic metric visibility instead
// of waiting out the push interval.
func (c *Cluster) FlushMetrics() {
	c.mu.Lock()
	hs := make([]*host, 0, len(c.hosts))
	for _, h := range c.hosts {
		hs = append(hs, h)
	}
	c.mu.Unlock()
	for _, h := range hs {
		c.pushHostMetrics(h, true)
	}
}

// DelayMetrics postpones the named host's periodic metric pushes by d
// from now (the chaos harness's metric-delivery delay). FlushMetrics is
// unaffected, so deterministic tests keep their explicit visibility.
func (c *Cluster) DelayMetrics(name string, d time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[name]
	if !ok {
		return fmt.Errorf("cluster: unknown host %q", name)
	}
	h.pauseUntil = c.clock.Now().Add(d)
	return nil
}

// Hosts returns placement info for every host, sorted by name.
func (c *Cluster) Hosts() []HostInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]HostInfo, 0, len(c.hosts))
	for _, h := range c.hosts {
		out = append(out, HostInfo{
			Name: h.name, Tags: append([]string(nil), h.tags...), Up: h.up, PEs: len(h.pes),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HostUp reports whether the host exists and is alive.
func (c *Cluster) HostUp(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[name]
	return ok && h.up
}

// StartPE builds and starts a PE container on the named host. The HC
// supervises the container: on exit it updates local bookkeeping and
// reports to SRM, which fans out to SAM (and from there to the
// orchestrator) — the paper's failure notification chain.
func (c *Cluster) StartPE(hostName string, cfg pe.Config) (*pe.PE, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: closed")
	}
	h, ok := c.hosts[hostName]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: unknown host %q", hostName)
	}
	if !h.up {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: host %q is down", hostName)
	}
	if _, dup := h.pes[cfg.ID]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: PE %s already on host %q", cfg.ID, hostName)
	}
	c.mu.Unlock()

	cfg.Host = hostName
	if cfg.Clock == nil {
		cfg.Clock = c.clock
	}
	userExit := cfg.OnExit
	job, app := cfg.Job, cfg.App
	cfg.OnExit = func(id ids.PEID, crashed bool, reason string) {
		c.mu.Lock()
		if hh, ok := c.hosts[hostName]; ok {
			delete(hh.pes, id)
		}
		c.mu.Unlock()
		if c.srm != nil {
			c.srm.ReportPEExit(srm.PEExit{
				PE: id, Job: job, App: app, Host: hostName,
				Crashed: crashed, Reason: reason, At: c.clock.Now(),
			})
		}
		if userExit != nil {
			userExit(id, crashed, reason)
		}
	}
	container, err := pe.New(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	h2, ok := c.hosts[hostName]
	if !ok || !h2.up {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: host %q vanished during start", hostName)
	}
	h2.pes[cfg.ID] = container
	c.mu.Unlock()
	if err := container.Start(); err != nil {
		return nil, err
	}
	return container, nil
}

// StopPE cleanly stops a PE container (job cancellation path).
func (c *Cluster) StopPE(id ids.PEID) error {
	p, err := c.findPE(id)
	if err != nil {
		return err
	}
	p.Stop()
	return nil
}

// KillPE injects a crash failure into a running PE.
func (c *Cluster) KillPE(id ids.PEID, reason string) error {
	p, err := c.findPE(id)
	if err != nil {
		return err
	}
	p.Kill(reason)
	return nil
}

// PEContainer returns the container for a resident PE.
func (c *Cluster) PEContainer(id ids.PEID) (*pe.PE, bool) {
	p, err := c.findPE(id)
	return p, err == nil
}

func (c *Cluster) findPE(id ids.PEID) (*pe.PE, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range c.hosts {
		if p, ok := h.pes[id]; ok {
			return p, nil
		}
	}
	return nil, fmt.Errorf("cluster: no resident PE %s", id)
}

// KillHost simulates a host failure: every resident PE dies with a
// "host failure" reason carrying the same detection timestamp, and SRM is
// notified of the host going down. The shared cause and timestamp let the
// ORCA service assign all resulting PE failure events one epoch (§4.2).
func (c *Cluster) KillHost(name string) error {
	c.mu.Lock()
	h, ok := c.hosts[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown host %q", name)
	}
	if !h.up {
		c.mu.Unlock()
		return fmt.Errorf("cluster: host %q already down", name)
	}
	h.up = false
	// The HC daemon dies with its host: stop the metrics loop instead of
	// leaving it ticking against a dead host for the cluster's lifetime.
	if h.done != nil {
		close(h.done)
		h.done = nil
	}
	victims := make([]*pe.PE, 0, len(h.pes))
	for _, p := range h.pes {
		victims = append(victims, p)
	}
	c.mu.Unlock()

	at := c.clock.Now()
	reason := HostFailureReason(name, at)
	for _, p := range victims {
		p.Kill(reason)
	}
	if c.srm != nil {
		c.srm.ReportHostDown(name, at)
	}
	return nil
}

// HostFailureReason formats the crash reason attached to every PE killed
// by one host failure. The ORCA service reconstructs the same string from
// the host-down notification, so the host failure event and its PE
// failure events share one epoch (§4.2).
func HostFailureReason(host string, at time.Time) string {
	return fmt.Sprintf("host failure: %s at %s", host, at.UTC().Format(time.RFC3339Nano))
}

// ReviveHost brings a failed host back (empty, as a rebooted machine).
// The rebooted HC resumes its periodic metric pushes with a fresh loop.
func (c *Cluster) ReviveHost(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cluster: closed")
	}
	h, ok := c.hosts[name]
	if !ok {
		return fmt.Errorf("cluster: unknown host %q", name)
	}
	if !h.up {
		h.done = make(chan struct{})
		go c.metricsLoop(h, h.done)
	}
	h.up = true
	if c.srm != nil {
		c.srm.ReportHostUp(name)
	}
	return nil
}

// Close stops every host controller loop and every resident PE.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var all []*pe.PE
	for _, h := range c.hosts {
		if h.done != nil {
			close(h.done)
			h.done = nil
		}
		for _, p := range h.pes {
			all = append(all, p)
		}
	}
	c.mu.Unlock()
	for _, p := range all {
		p.Stop()
	}
}
