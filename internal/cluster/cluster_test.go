package cluster

import (
	"sync"
	"testing"
	"time"

	"streamorca/internal/ids"
	"streamorca/internal/opapi"
	"streamorca/internal/pe"
	"streamorca/internal/srm"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

var intS = tuple.MustSchema(tuple.Attribute{Name: "v", Type: tuple.Int})

type idleSource struct {
	opapi.Base
}

func (s *idleSource) Run(stop <-chan struct{}) error {
	<-stop
	return nil
}

func testRegistry() *opapi.Registry {
	r := opapi.NewRegistry()
	r.Register("Idle", func() opapi.Operator { return &idleSource{} })
	return r
}

func idleCfg(id ids.PEID, job ids.JobID) pe.Config {
	return pe.Config{
		ID: id, Job: job, App: "app",
		Ops:      []pe.OpSpec{{Name: "src", Kind: "Idle", Outputs: []*tuple.Schema{intS}}},
		Registry: testRegistry(),
	}
}

func TestAddHostAndInfo(t *testing.T) {
	c := New(nil, srm.New(), time.Hour)
	defer c.Close()
	if err := c.AddHost("h1", "ssd"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost("h1"); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if err := c.AddHost(""); err == nil {
		t.Fatal("empty host accepted")
	}
	hosts := c.Hosts()
	if len(hosts) != 1 || hosts[0].Name != "h1" || !hosts[0].Up || hosts[0].Tags[0] != "ssd" {
		t.Fatalf("Hosts() = %+v", hosts)
	}
	if !c.HostUp("h1") || c.HostUp("ghost") {
		t.Fatal("HostUp wrong")
	}
}

func TestStartStopPE(t *testing.T) {
	s := srm.New()
	c := New(nil, s, time.Hour)
	defer c.Close()
	_ = c.AddHost("h1")
	var mu sync.Mutex
	var exits []srm.PEExit
	s.OnPEExit(func(e srm.PEExit) {
		mu.Lock()
		exits = append(exits, e)
		mu.Unlock()
	})
	p, err := c.StartPE("h1", idleCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Host() != "h1" {
		t.Fatalf("Host() = %q", p.Host())
	}
	if _, ok := c.PEContainer(1); !ok {
		t.Fatal("container not resident")
	}
	if got := c.Hosts()[0].PEs; got != 1 {
		t.Fatalf("host PE count = %d", got)
	}
	if err := c.StopPE(1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(exits) != 1 || exits[0].Crashed || exits[0].PE != 1 || exits[0].Host != "h1" {
		t.Fatalf("exits = %+v", exits)
	}
	if _, ok := c.PEContainer(1); ok {
		t.Fatal("container still resident after stop")
	}
}

func TestStartPEErrors(t *testing.T) {
	c := New(nil, srm.New(), time.Hour)
	defer c.Close()
	_ = c.AddHost("h1")
	if _, err := c.StartPE("ghost", idleCfg(1, 1)); err == nil {
		t.Fatal("unknown host accepted")
	}
	if _, err := c.StartPE("h1", idleCfg(2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartPE("h1", idleCfg(2, 1)); err == nil {
		t.Fatal("duplicate PE id accepted")
	}
	if err := c.StopPE(99); err == nil {
		t.Fatal("stop of unknown PE succeeded")
	}
	if err := c.KillPE(99, "x"); err == nil {
		t.Fatal("kill of unknown PE succeeded")
	}
}

func TestKillPEReportsCrash(t *testing.T) {
	s := srm.New()
	c := New(nil, s, time.Hour)
	defer c.Close()
	_ = c.AddHost("h1")
	exitCh := make(chan srm.PEExit, 1)
	s.OnPEExit(func(e srm.PEExit) { exitCh <- e })
	if _, err := c.StartPE("h1", idleCfg(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.KillPE(3, "fault injection"); err != nil {
		t.Fatal(err)
	}
	e := <-exitCh
	if !e.Crashed || e.Reason != "fault injection" || e.Job != 2 || e.App != "app" {
		t.Fatalf("exit = %+v", e)
	}
}

func TestKillHostKillsAllPEsWithSharedReason(t *testing.T) {
	s := srm.New()
	c := New(nil, s, time.Hour)
	defer c.Close()
	_ = c.AddHost("h1")
	_ = c.AddHost("h2")
	var mu sync.Mutex
	var exits []srm.PEExit
	var downs []srm.HostDown
	s.OnPEExit(func(e srm.PEExit) { mu.Lock(); exits = append(exits, e); mu.Unlock() })
	s.OnHostDown(func(d srm.HostDown) { mu.Lock(); downs = append(downs, d); mu.Unlock() })
	for i := ids.PEID(1); i <= 3; i++ {
		if _, err := c.StartPE("h1", idleCfg(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.StartPE("h2", idleCfg(9, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.KillHost("h1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(exits)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d PE exits after host kill", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	reason := exits[0].Reason
	for _, e := range exits {
		if !e.Crashed || e.Reason != reason || e.Host != "h1" {
			t.Fatalf("exit = %+v", e)
		}
	}
	if len(downs) != 1 || downs[0].Host != "h1" {
		t.Fatalf("downs = %+v", downs)
	}
	if c.HostUp("h1") {
		t.Fatal("host still up")
	}
	if err := c.KillHost("h1"); err == nil {
		t.Fatal("double host kill succeeded")
	}
	if err := c.KillHost("ghost"); err == nil {
		t.Fatal("unknown host kill succeeded")
	}
	// Starting a PE on a dead host fails; revive restores it.
	if _, err := c.StartPE("h1", idleCfg(7, 1)); err == nil {
		t.Fatal("started PE on dead host")
	}
	if err := c.ReviveHost("h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartPE("h1", idleCfg(7, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.ReviveHost("ghost"); err == nil {
		t.Fatal("revive unknown host succeeded")
	}
}

func TestMetricsLoopPushesToSRM(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	s := srm.New()
	c := New(clock, s, time.Second)
	defer c.Close()
	_ = c.AddHost("h1")
	if _, err := c.StartPE("h1", idleCfg(1, 4)); err != nil {
		t.Fatal(err)
	}
	if got := s.Query([]ids.JobID{4}); len(got) != 0 {
		t.Fatalf("samples before tick: %d", len(got))
	}
	// The HC's ticker registers asynchronously; keep advancing one period
	// until a push lands.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Query([]ids.JobID{4})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no samples after metric interval")
		}
		clock.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
}

func TestFlushMetrics(t *testing.T) {
	s := srm.New()
	c := New(nil, s, time.Hour)
	defer c.Close()
	_ = c.AddHost("h1")
	if _, err := c.StartPE("h1", idleCfg(1, 5)); err != nil {
		t.Fatal(err)
	}
	c.FlushMetrics()
	if len(s.Query([]ids.JobID{5})) == 0 {
		t.Fatal("FlushMetrics pushed nothing")
	}
}

func TestCloseStopsEverything(t *testing.T) {
	c := New(nil, srm.New(), time.Hour)
	_ = c.AddHost("h1")
	p, err := c.StartPE("h1", idleCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if p.State() != pe.Stopped {
		t.Fatalf("PE state after Close = %v", p.State())
	}
	if err := c.AddHost("h2"); err == nil {
		t.Fatal("AddHost after Close succeeded")
	}
	if _, err := c.StartPE("h1", idleCfg(2, 1)); err == nil {
		t.Fatal("StartPE after Close succeeded")
	}
	c.Close() // idempotent
}

// TestKillHostStopsLoopReviveRestartsIt pins the HC lifecycle: a killed
// host's metrics loop terminates with the host, and a revived host gets
// a fresh loop that resumes periodic pushes.
func TestKillHostStopsLoopReviveRestartsIt(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	s := srm.New()
	c := New(clock, s, time.Second)
	defer c.Close()
	_ = c.AddHost("h1")
	if _, err := c.StartPE("h1", idleCfg(1, 20)); err != nil {
		t.Fatal(err)
	}
	if err := c.KillHost("h1"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	if c.hosts["h1"].done != nil {
		c.mu.Unlock()
		t.Fatal("killed host still owns a live metrics loop")
	}
	c.mu.Unlock()

	if err := c.ReviveHost("h1"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	if c.hosts["h1"].done == nil {
		c.mu.Unlock()
		t.Fatal("revived host has no metrics loop")
	}
	c.mu.Unlock()
	if _, err := c.StartPE("h1", idleCfg(2, 21)); err != nil {
		t.Fatal(err)
	}
	// The revived HC's ticker registers asynchronously; keep advancing
	// one period until its push lands.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Query([]ids.JobID{21})) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("revived host pushes no metrics")
		}
		clock.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
}

// TestDelayMetricsPausesPeriodicPushes: an injected metric delay holds
// back periodic pushes until it elapses, while FlushMetrics (the
// deterministic-test path) still goes through.
func TestDelayMetricsPausesPeriodicPushes(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	s := srm.New()
	c := New(clock, s, time.Hour)
	defer c.Close()
	_ = c.AddHost("h1")
	if _, err := c.StartPE("h1", idleCfg(1, 22)); err != nil {
		t.Fatal(err)
	}
	if err := c.DelayMetrics("ghost", time.Second); err == nil {
		t.Fatal("DelayMetrics accepted unknown host")
	}
	if err := c.DelayMetrics("h1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	h := c.hosts["h1"]
	c.pushHostMetrics(h, false)
	if len(s.Query([]ids.JobID{22})) != 0 {
		t.Fatal("delayed host still pushed periodically")
	}
	c.pushHostMetrics(h, true)
	if len(s.Query([]ids.JobID{22})) == 0 {
		t.Fatal("forced flush blocked by metric delay")
	}
	clock.Advance(11 * time.Second)
	if _, err := c.StartPE("h1", idleCfg(2, 23)); err != nil {
		t.Fatal(err)
	}
	c.pushHostMetrics(h, false)
	if len(s.Query([]ids.JobID{23})) == 0 {
		t.Fatal("periodic pushes did not resume after the delay elapsed")
	}
}
