// Package compiler turns application builder programs into ADL artifacts,
// playing the role of the SPL compiler in §2.1: it assembles the logical
// graph (operators, composite instances, stream connections, exports and
// imports), expands declared parallel regions (OpHandle.Parallel) into
// hash-split / replica / merge sub-graphs, and partitions operators into
// PEs according to the developer's partition constraints and the
// selected fusion strategy. A logical operator is therefore not always
// one runtime instance: a parallel declaration compiles to width
// replicated instances in separate PEs, bracketed by an auto-inserted
// split and merge. Host placement happens later, at submission time,
// inside SAM — matching the paper's split between compile-time
// partitioning and runtime placement.
package compiler

import (
	"fmt"
	"strings"

	"streamorca/internal/adl"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// AppBuilder accumulates an application definition. Builders are not safe
// for concurrent use; errors accumulate and surface from Build.
type AppBuilder struct {
	name      string
	ops       []*OpHandle
	byName    map[string]*OpHandle
	comps     []adl.CompositeInstance
	conns     []adl.Connection
	exports   []adl.Export
	imports   []adl.Import
	pools     []adl.HostPool
	poolNames map[string]bool
	stack     []string // composite instance path
	regions   []adl.Region
	errs      []error
}

// NewApp starts a builder for an application with the given name.
func NewApp(name string) *AppBuilder {
	b := &AppBuilder{name: name, byName: make(map[string]*OpHandle), poolNames: make(map[string]bool)}
	if name == "" {
		b.errs = append(b.errs, fmt.Errorf("compiler: empty application name"))
	}
	return b
}

// OpHandle is a fluent reference to one operator under construction.
type OpHandle struct {
	b         *AppBuilder
	name      string // fully qualified
	kind      string
	composite string
	params    opapi.Params
	inputs    []*tuple.Schema
	outputs   []*tuple.Schema
	coloc     string // partition colocation tag
	isolate   bool   // own PE
	pool      string // host pool for the PE this operator lands in
	isolatePE bool   // demand exclusive host for its PE
	parallel  int    // parallel-region width; 0 = not a region
}

// Name returns the operator's fully qualified instance name.
func (h *OpHandle) Name() string { return h.name }

// AddOperator declares an operator of the given kind. The instance name is
// qualified by the enclosing composite path, mirroring SPL's fully
// qualified names (e.g. "comp1.op3").
func (b *AppBuilder) AddOperator(name, kind string) *OpHandle {
	h := &OpHandle{b: b, kind: kind, params: opapi.Params{}}
	if name == "" || kind == "" {
		b.errs = append(b.errs, fmt.Errorf("compiler: operator with empty name or kind"))
		return h
	}
	if len(b.stack) > 0 {
		h.composite = b.stack[len(b.stack)-1]
		h.name = h.composite + "." + name
	} else {
		h.name = name
	}
	if _, dup := b.byName[h.name]; dup {
		b.errs = append(b.errs, fmt.Errorf("compiler: duplicate operator %q", h.name))
		return h
	}
	b.byName[h.name] = h
	b.ops = append(b.ops, h)
	return h
}

// In declares the operator's input port schemas in port order.
func (h *OpHandle) In(schemas ...*tuple.Schema) *OpHandle {
	h.inputs = schemas
	return h
}

// Out declares the operator's output port schemas in port order.
func (h *OpHandle) Out(schemas ...*tuple.Schema) *OpHandle {
	h.outputs = schemas
	return h
}

// Param sets one configuration parameter.
func (h *OpHandle) Param(key, value string) *OpHandle {
	h.params[key] = value
	return h
}

// Colocate tags the operator with a partition colocation group: all
// operators sharing a tag are fused into the same PE (§2.1's partition
// constraints).
func (h *OpHandle) Colocate(tag string) *OpHandle {
	h.coloc = tag
	return h
}

// Isolate places the operator alone in its own PE, so restarting it never
// cascades into logically unrelated operators (§4.3).
func (h *OpHandle) Isolate() *OpHandle {
	h.isolate = true
	return h
}

// Pool requests that the PE containing this operator be placed on hosts of
// the named host pool.
func (h *OpHandle) Pool(name string) *OpHandle {
	h.pool = name
	return h
}

// IsolateHost demands that the PE containing this operator run on a host
// with no other PE of the same application.
func (h *OpHandle) IsolateHost() *OpHandle {
	h.isolatePE = true
	return h
}

// Parallel declares the operator as a key-partitioned parallel region of
// the given initial width — the SPL "user-defined parallelism"
// annotation. Build replaces the operator with width replicas wrapped in
// an auto-inserted hash split and merge, each in its own PE, and records
// the expansion in the ADL's Regions so SAM's ResizeRegion actuation can
// change the width at runtime.
//
// The operator's kind must declare an OpModel.PartitionKey and the
// instance must set that parameter: its value names the tuple attribute
// the split hashes on, which is the attribute the kind's per-key state
// is keyed by. The operator must have exactly one input and one output
// port and may not be colocated or host-isolated.
func (h *OpHandle) Parallel(width int) *OpHandle {
	h.parallel = width
	return h
}

// BeginComposite opens a composite operator instance of the given type;
// operators added until EndComposite belong to it. Instance names nest
// ("outer.inner").
func (b *AppBuilder) BeginComposite(kind, instance string) {
	if kind == "" || instance == "" {
		b.errs = append(b.errs, fmt.Errorf("compiler: composite with empty kind or instance"))
		return
	}
	parent := ""
	qualified := instance
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		qualified = parent + "." + instance
	}
	for _, c := range b.comps {
		if c.Name == qualified {
			b.errs = append(b.errs, fmt.Errorf("compiler: duplicate composite instance %q", qualified))
			return
		}
	}
	b.comps = append(b.comps, adl.CompositeInstance{Name: qualified, Kind: kind, Parent: parent})
	b.stack = append(b.stack, qualified)
}

// EndComposite closes the innermost open composite.
func (b *AppBuilder) EndComposite() {
	if len(b.stack) == 0 {
		b.errs = append(b.errs, fmt.Errorf("compiler: EndComposite without BeginComposite"))
		return
	}
	b.stack = b.stack[:len(b.stack)-1]
}

// Composite runs body inside a composite instance scope; it is the
// reusable-subgraph idiom from Figure 2.
func (b *AppBuilder) Composite(kind, instance string, body func()) {
	b.BeginComposite(kind, instance)
	body()
	b.EndComposite()
}

// Connect adds a stream connection between two operator ports.
func (b *AppBuilder) Connect(from *OpHandle, fromPort int, to *OpHandle, toPort int) {
	if from == nil || to == nil || from.name == "" || to.name == "" {
		b.errs = append(b.errs, fmt.Errorf("compiler: Connect with invalid handles"))
		return
	}
	b.conns = append(b.conns, adl.Connection{FromOp: from.name, FromPort: fromPort, ToOp: to.name, ToPort: toPort})
}

// Export publishes an operator output port to other jobs.
func (b *AppBuilder) Export(h *OpHandle, port int, streamID string, props map[string]string) {
	b.exports = append(b.exports, adl.Export{Operator: h.name, Port: port, StreamID: streamID, Properties: props})
}

// Import subscribes an operator input port to exported streams.
func (b *AppBuilder) Import(h *OpHandle, port int, streamID string, props map[string]string) {
	b.imports = append(b.imports, adl.Import{Operator: h.name, Port: port, StreamID: streamID, Properties: props})
}

// HostPool declares a named host pool for placement.
func (b *AppBuilder) HostPool(p adl.HostPool) {
	if p.Name == "" {
		b.errs = append(b.errs, fmt.Errorf("compiler: host pool with empty name"))
		return
	}
	if b.poolNames[p.Name] {
		b.errs = append(b.errs, fmt.Errorf("compiler: duplicate host pool %q", p.Name))
		return
	}
	b.poolNames[p.Name] = true
	b.pools = append(b.pools, p)
}

// FusionMode selects the partitioning strategy.
type FusionMode int

// Fusion strategies. FuseByTag is the default: colocation groups fuse,
// everything else gets its own PE. FuseAuto additionally merges connected
// partitions greedily down to Options.TargetPEs, emulating the
// measurement-driven COLA partitioner the paper cites [18].
const (
	FuseByTag FusionMode = iota
	FuseNone
	FuseAll
	FuseAuto
)

// Options configures Build.
type Options struct {
	Fusion    FusionMode
	TargetPEs int // only for FuseAuto; <=0 means one PE per colocation group
	// Registry resolves operator kinds for build-time validation
	// against each kind's operator model; nil means opapi.Default.
	Registry *opapi.Registry
}

// Build assembles, partitions, and validates the ADL. Validation runs
// every operator against its registered operator model (unknown kinds,
// missing/mistyped/out-of-range parameters, port-arity and schema
// constraints) and every connection against the declared port schemas;
// all violations accumulate and surface in one error.
func (b *AppBuilder) Build(opts Options) (*adl.Application, error) {
	if len(b.stack) != 0 {
		b.errs = append(b.errs, fmt.Errorf("compiler: %d unclosed composites", len(b.stack)))
	}
	reg := opts.Registry
	if reg == nil {
		reg = opapi.Default
	}
	b.expandRegions(reg)
	b.validateOperators(reg)
	b.validateEndpoints()
	if len(b.errs) > 0 {
		return nil, joinErrors(b.errs)
	}
	app := &adl.Application{
		Name:       b.name,
		Composites: append([]adl.CompositeInstance(nil), b.comps...),
		Connects:   append([]adl.Connection(nil), b.conns...),
		Exports:    append([]adl.Export(nil), b.exports...),
		Imports:    append([]adl.Import(nil), b.imports...),
		HostPools:  append([]adl.HostPool(nil), b.pools...),
	}
	for _, h := range b.ops {
		op := adl.Operator{Name: h.name, Kind: h.kind, Composite: h.composite, Params: h.params.Clone()}
		for _, s := range h.inputs {
			op.Inputs = append(op.Inputs, adl.Port{Schema: schemaAttrs(s)})
		}
		for _, s := range h.outputs {
			op.Outputs = append(op.Outputs, adl.Port{Schema: schemaAttrs(s)})
		}
		app.Operators = append(app.Operators, op)
	}
	pes, err := partition(b.ops, b.conns, opts)
	if err != nil {
		return nil, err
	}
	app.PEs = pes
	app.Regions = append([]adl.Region(nil), b.regions...)
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: generated invalid ADL: %w", err)
	}
	return app, nil
}

// validateOperators checks every declared operator against the
// registry: the kind must be registered, and kinds carrying an operator
// model are validated for parameter and port conformance. Violations
// accumulate with operator-qualified messages.
func (b *AppBuilder) validateOperators(reg *opapi.Registry) {
	for _, h := range b.ops {
		if h.name == "" || h.kind == "" {
			continue // already reported by AddOperator
		}
		if !reg.Registered(h.kind) {
			b.errs = append(b.errs, fmt.Errorf("compiler: operator %q: unknown operator kind %q", h.name, h.kind))
			continue
		}
		model := reg.Model(h.kind)
		if model == nil {
			continue // registered without a descriptor: unvalidated
		}
		for _, err := range model.Validate(h.params, h.inputs, h.outputs) {
			b.errs = append(b.errs, fmt.Errorf("compiler: operator %q (kind %s): %w", h.name, h.kind, err))
		}
	}
}

// validateEndpoints checks every connection, export, and import against
// the declared port schema lists: port indexes must fall inside the
// endpoint's schema list and the two ends of a connection must carry
// identical schemas — instead of deferring the mismatch to a runtime
// wiring panic.
func (b *AppBuilder) validateEndpoints() {
	outPort := func(op string, port int) (*tuple.Schema, error) {
		h := b.byName[op]
		if h == nil {
			return nil, nil // unreported only for handles AddOperator rejected
		}
		if port < 0 || port >= len(h.outputs) {
			return nil, fmt.Errorf("%q declares %d output port(s), no port %d", op, len(h.outputs), port)
		}
		return h.outputs[port], nil
	}
	inPort := func(op string, port int) (*tuple.Schema, error) {
		h := b.byName[op]
		if h == nil {
			return nil, nil
		}
		if port < 0 || port >= len(h.inputs) {
			return nil, fmt.Errorf("%q declares %d input port(s), no port %d", op, len(h.inputs), port)
		}
		return h.inputs[port], nil
	}
	for _, c := range b.conns {
		from, errFrom := outPort(c.FromOp, c.FromPort)
		to, errTo := inPort(c.ToOp, c.ToPort)
		bad := false
		for _, err := range []error{errFrom, errTo} {
			if err != nil {
				b.errs = append(b.errs, fmt.Errorf("compiler: connect %s:%d -> %s:%d: %w", c.FromOp, c.FromPort, c.ToOp, c.ToPort, err))
				bad = true
			}
		}
		if bad || b.byName[c.FromOp] == nil || b.byName[c.ToOp] == nil {
			continue
		}
		if !from.Equal(to) {
			b.errs = append(b.errs, fmt.Errorf("compiler: connect %s:%d -> %s:%d: schema mismatch (%s vs %s)",
				c.FromOp, c.FromPort, c.ToOp, c.ToPort, from, to))
		}
	}
	for _, e := range b.exports {
		if _, err := outPort(e.Operator, e.Port); err != nil {
			b.errs = append(b.errs, fmt.Errorf("compiler: export from %s:%d: %w", e.Operator, e.Port, err))
		}
	}
	for _, im := range b.imports {
		if _, err := inPort(im.Operator, im.Port); err != nil {
			b.errs = append(b.errs, fmt.Errorf("compiler: import into %s:%d: %w", im.Operator, im.Port, err))
		}
	}
}

func schemaAttrs(s *tuple.Schema) []tuple.Attribute {
	if s == nil {
		return nil
	}
	attrs := make([]tuple.Attribute, s.NumAttrs())
	for i := range attrs {
		attrs[i] = s.Attr(i)
	}
	return attrs
}

func joinErrors(errs []error) error {
	msgs := make([]string, len(errs))
	for i, e := range errs {
		// Each accumulated error carries its own "compiler:" prefix;
		// keep just one on the joined message.
		msgs[i] = strings.TrimPrefix(e.Error(), "compiler: ")
	}
	return fmt.Errorf("compiler: %s", strings.Join(msgs, "; "))
}
