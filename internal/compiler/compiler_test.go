package compiler

import (
	"strings"
	"testing"

	"streamorca/internal/adl"
	"streamorca/internal/tuple"

	// Register the built-in operator kinds these programs use, so Build's
	// operator-model validation resolves them.
	_ "streamorca/internal/ops"
)

var intSchema = tuple.MustSchema(tuple.Attribute{Name: "v", Type: tuple.Int})

// buildFigure2 assembles the paper's Figure 2 program with the builder.
func buildFigure2(t *testing.T, opts Options) *adl.Application {
	t.Helper()
	b := NewApp("Figure2")
	op1 := b.AddOperator("op1", "Beacon").Out(intSchema)
	op2 := b.AddOperator("op2", "Beacon").Out(intSchema)
	splitMerge := func(inst string) (in, out *OpHandle) {
		var op3, op6 *OpHandle
		b.Composite("composite1", inst, func() {
			op3 = b.AddOperator("op3", "Split").In(intSchema).Out(intSchema, intSchema)
			op4 := b.AddOperator("op4", "Functor").In(intSchema).Out(intSchema)
			op5 := b.AddOperator("op5", "Functor").In(intSchema).Out(intSchema)
			op6 = b.AddOperator("op6", "Merge").In(intSchema, intSchema).Out(intSchema)
			b.Connect(op3, 0, op4, 0)
			b.Connect(op3, 1, op5, 0)
			b.Connect(op4, 0, op6, 0)
			b.Connect(op5, 0, op6, 1)
		})
		return op3, op6
	}
	in1, out1 := splitMerge("c1")
	in2, out2 := splitMerge("c2")
	sink1 := b.AddOperator("op7", "CountSink").In(intSchema)
	sink2 := b.AddOperator("op8", "CountSink").In(intSchema)
	b.Connect(op1, 0, in1, 0)
	b.Connect(op2, 0, in2, 0)
	b.Connect(out1, 0, sink1, 0)
	b.Connect(out2, 0, sink2, 0)
	app, err := b.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestBuildFigure2FuseNone(t *testing.T) {
	app := buildFigure2(t, Options{Fusion: FuseNone})
	if len(app.Operators) != 12 {
		t.Fatalf("operators = %d", len(app.Operators))
	}
	if len(app.PEs) != 12 {
		t.Fatalf("FuseNone produced %d PEs", len(app.PEs))
	}
	if len(app.Composites) != 2 {
		t.Fatalf("composites = %d", len(app.Composites))
	}
	// Qualified names.
	if app.OperatorByName("c1.op3") == nil || app.OperatorByName("c2.op6") == nil {
		t.Fatal("composite-qualified names missing")
	}
	if app.OperatorByName("c1.op3").Composite != "c1" {
		t.Fatal("composite membership wrong")
	}
}

func TestBuildFigure2FuseAll(t *testing.T) {
	app := buildFigure2(t, Options{Fusion: FuseAll})
	if len(app.PEs) != 1 {
		t.Fatalf("FuseAll produced %d PEs", len(app.PEs))
	}
	if len(app.PEs[0].Operators) != 12 {
		t.Fatalf("PE holds %d operators", len(app.PEs[0].Operators))
	}
}

func TestBuildFigure2FuseAuto(t *testing.T) {
	app := buildFigure2(t, Options{Fusion: FuseAuto, TargetPEs: 3})
	if len(app.PEs) != 3 {
		t.Fatalf("FuseAuto(3) produced %d PEs", len(app.PEs))
	}
	total := 0
	for _, pe := range app.PEs {
		total += len(pe.Operators)
	}
	if total != 12 {
		t.Fatalf("fusion lost operators: %d", total)
	}
}

func TestColocationFusesAcrossComposites(t *testing.T) {
	// The paper's Figure 3: operators from different composite instances
	// can share a PE. Tag c1.op4 and c2.op4 together.
	b := NewApp("X")
	src := b.AddOperator("src", "Beacon").Out(intSchema)
	var f1, f2 *OpHandle
	b.Composite("comp", "c1", func() {
		f1 = b.AddOperator("f", "Functor").In(intSchema).Out(intSchema).Colocate("shared")
	})
	b.Composite("comp", "c2", func() {
		f2 = b.AddOperator("f", "Functor").In(intSchema).Out(intSchema).Colocate("shared")
	})
	sink := b.AddOperator("sink", "CountSink").In(intSchema)
	b.Connect(src, 0, f1, 0)
	b.Connect(f1, 0, f2, 0)
	b.Connect(f2, 0, sink, 0)
	app, err := b.Build(Options{Fusion: FuseByTag})
	if err != nil {
		t.Fatal(err)
	}
	if app.PEOfOperator("c1.f") != app.PEOfOperator("c2.f") {
		t.Fatal("colocation tag did not fuse across composites")
	}
	if app.PEOfOperator("src") == app.PEOfOperator("c1.f") {
		t.Fatal("untagged operator fused under FuseByTag")
	}
}

func TestIsolateGetsOwnPEUnderFuseAll(t *testing.T) {
	b := NewApp("X")
	src := b.AddOperator("src", "Beacon").Out(intSchema)
	iso := b.AddOperator("iso", "Functor").In(intSchema).Out(intSchema).Isolate()
	sink := b.AddOperator("sink", "CountSink").In(intSchema)
	b.Connect(src, 0, iso, 0)
	b.Connect(iso, 0, sink, 0)
	app, err := b.Build(Options{Fusion: FuseAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.PEs) != 2 {
		t.Fatalf("PEs = %d", len(app.PEs))
	}
	isoPE := app.PEOfOperator("iso")
	if len(app.OperatorsInPE(isoPE)) != 1 {
		t.Fatal("isolated operator shares a PE")
	}
}

func TestIsolateSurvivesFuseAuto(t *testing.T) {
	b := NewApp("X")
	prev := b.AddOperator("src", "Beacon").Out(intSchema)
	iso := b.AddOperator("iso", "Functor").In(intSchema).Out(intSchema).Isolate()
	b.Connect(prev, 0, iso, 0)
	prev = iso
	for _, n := range []string{"a", "b", "c", "d"} {
		next := b.AddOperator(n, "Functor").In(intSchema).Out(intSchema)
		b.Connect(prev, 0, next, 0)
		prev = next
	}
	app, err := b.Build(Options{Fusion: FuseAuto, TargetPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	isoPE := app.PEOfOperator("iso")
	if got := app.OperatorsInPE(isoPE); len(got) != 1 {
		t.Fatalf("isolated op fused: %v", got)
	}
}

func TestIsolateAndColocateConflict(t *testing.T) {
	b := NewApp("X")
	b.AddOperator("bad", "Functor").In(intSchema).Out(intSchema).Isolate().Colocate("tag")
	if _, err := b.Build(Options{}); err == nil || !strings.Contains(err.Error(), "isolated and colocated") {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolPropagationAndConflict(t *testing.T) {
	b := NewApp("X")
	b.HostPool(adl.HostPool{Name: "fast", Hosts: []string{"h1"}})
	a := b.AddOperator("a", "Beacon").Out(intSchema).Colocate("g").Pool("fast")
	c := b.AddOperator("c", "CountSink").In(intSchema).Colocate("g")
	b.Connect(a, 0, c, 0)
	app, err := b.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if app.PEs[0].Pool != "fast" {
		t.Fatalf("pool = %q", app.PEs[0].Pool)
	}

	b2 := NewApp("Y")
	b2.HostPool(adl.HostPool{Name: "p1"})
	b2.HostPool(adl.HostPool{Name: "p2"})
	x := b2.AddOperator("x", "Beacon").Out(intSchema).Colocate("g").Pool("p1")
	y := b2.AddOperator("y", "CountSink").In(intSchema).Colocate("g").Pool("p2")
	b2.Connect(x, 0, y, 0)
	if _, err := b2.Build(Options{}); err == nil || !strings.Contains(err.Error(), "conflicting pools") {
		t.Fatalf("err = %v", err)
	}
}

func TestIsolateHostFlag(t *testing.T) {
	b := NewApp("X")
	b.AddOperator("a", "Beacon").Out(intSchema).IsolateHost()
	app, err := b.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !app.PEs[0].IsolatePE {
		t.Fatal("IsolateHost not propagated")
	}
}

func TestExportImportPropagation(t *testing.T) {
	b := NewApp("X")
	src := b.AddOperator("src", "Beacon").Out(intSchema)
	sink := b.AddOperator("sink", "CountSink").In(intSchema)
	b.Export(src, 0, "stream1", map[string]string{"k": "v"})
	b.Import(sink, 0, "stream1", nil)
	app, err := b.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Exports) != 1 || app.Exports[0].Operator != "src" || app.Exports[0].StreamID != "stream1" {
		t.Fatalf("exports = %+v", app.Exports)
	}
	if len(app.Imports) != 1 || app.Imports[0].Operator != "sink" {
		t.Fatalf("imports = %+v", app.Imports)
	}
}

func TestBuilderErrorAccumulation(t *testing.T) {
	b := NewApp("")
	b.AddOperator("", "")
	b.EndComposite()
	b.Connect(nil, 0, nil, 0)
	_, err := b.Build(Options{})
	if err == nil {
		t.Fatal("Build succeeded with accumulated errors")
	}
	for _, want := range []string{"empty application name", "empty name or kind", "EndComposite", "invalid handles"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestUnclosedCompositeFails(t *testing.T) {
	b := NewApp("X")
	b.BeginComposite("k", "c")
	b.AddOperator("a", "Beacon").Out(intSchema)
	if _, err := b.Build(Options{}); err == nil || !strings.Contains(err.Error(), "unclosed") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateOperatorAndPool(t *testing.T) {
	b := NewApp("X")
	b.AddOperator("a", "Beacon").Out(intSchema)
	b.AddOperator("a", "Beacon").Out(intSchema)
	if _, err := b.Build(Options{}); err == nil || !strings.Contains(err.Error(), "duplicate operator") {
		t.Fatalf("err = %v", err)
	}
	b2 := NewApp("Y")
	b2.HostPool(adl.HostPool{Name: "p"})
	b2.HostPool(adl.HostPool{Name: "p"})
	b2.AddOperator("a", "Beacon").Out(intSchema)
	if _, err := b2.Build(Options{}); err == nil || !strings.Contains(err.Error(), "duplicate host pool") {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedComposites(t *testing.T) {
	b := NewApp("X")
	var deep *OpHandle
	b.Composite("outerK", "outer", func() {
		b.Composite("innerK", "inner", func() {
			deep = b.AddOperator("op", "Beacon").Out(intSchema)
		})
	})
	app, err := b.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Name() != "outer.inner.op" {
		t.Fatalf("deep name = %q", deep.Name())
	}
	chain := app.CompositeChain("outer.inner.op")
	if len(chain) != 2 || chain[0] != "outer.inner" || chain[1] != "outer" {
		t.Fatalf("chain = %v", chain)
	}
}

func TestNoOperatorsFails(t *testing.T) {
	b := NewApp("X")
	if _, err := b.Build(Options{}); err == nil {
		t.Fatal("empty application built")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a1 := buildFigure2(t, Options{Fusion: FuseAuto, TargetPEs: 4})
	a2 := buildFigure2(t, Options{Fusion: FuseAuto, TargetPEs: 4})
	d1, _ := a1.Marshal()
	d2, _ := a2.Marshal()
	if string(d1) != string(d2) {
		t.Fatal("Build is not deterministic")
	}
}
