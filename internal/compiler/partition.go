package compiler

import (
	"fmt"
	"sort"

	"streamorca/internal/adl"
)

// partition fuses operators into PEs according to the fusion mode and the
// per-operator constraints (colocation tags, isolation, pools). The result
// is deterministic for a given builder program.
func partition(ops []*OpHandle, conns []adl.Connection, opts Options) ([]adl.PE, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("compiler: application has no operators")
	}
	uf := newUnionFind(len(ops))
	index := make(map[string]int, len(ops))
	for i, h := range ops {
		index[h.name] = i
	}

	// Colocation tags always fuse, regardless of mode.
	tagRoot := make(map[string]int)
	for i, h := range ops {
		if h.coloc == "" {
			continue
		}
		if h.isolate {
			return nil, fmt.Errorf("compiler: operator %q is both isolated and colocated (tag %q)", h.name, h.coloc)
		}
		if r, ok := tagRoot[h.coloc]; ok {
			uf.union(r, i)
		} else {
			tagRoot[h.coloc] = i
		}
	}

	switch opts.Fusion {
	case FuseByTag, FuseNone:
		// Nothing further: untagged operators stay alone.
	case FuseAll:
		// Fuse everything that is not isolated into one PE.
		first := -1
		for i, h := range ops {
			if h.isolate {
				continue
			}
			if first < 0 {
				first = i
			} else {
				uf.union(first, i)
			}
		}
	case FuseAuto:
		if err := fuseAuto(ops, conns, index, uf, opts.TargetPEs); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("compiler: unknown fusion mode %d", opts.Fusion)
	}

	// Collect groups deterministically: order by the smallest operator
	// position in the builder program.
	groups := make(map[int][]int)
	for i := range ops {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool {
		return minOf(groups[roots[a]]) < minOf(groups[roots[b]])
	})

	var pes []adl.PE
	for idx, r := range roots {
		members := groups[r]
		sort.Ints(members)
		pe := adl.PE{Index: idx}
		for _, m := range members {
			h := ops[m]
			if h.isolate && len(members) > 1 {
				return nil, fmt.Errorf("compiler: isolated operator %q fused with %d others", h.name, len(members)-1)
			}
			pe.Operators = append(pe.Operators, h.name)
			if h.pool != "" {
				if pe.Pool != "" && pe.Pool != h.pool {
					return nil, fmt.Errorf("compiler: PE %d has conflicting pools %q and %q", idx, pe.Pool, h.pool)
				}
				pe.Pool = h.pool
			}
			if h.isolatePE {
				pe.IsolatePE = true
			}
		}
		pes = append(pes, pe)
	}
	return pes, nil
}

// fuseAuto greedily merges connected partitions until at most target PEs
// remain, preferring to merge the two smallest connected groups — a
// size-balancing heuristic in the spirit of COLA [18]. Isolated operators
// never merge.
func fuseAuto(ops []*OpHandle, conns []adl.Connection, index map[string]int, uf *unionFind, target int) error {
	if target <= 0 {
		return nil
	}
	count := func() int {
		seen := make(map[int]bool)
		for i := range ops {
			seen[uf.find(i)] = true
		}
		return len(seen)
	}
	size := func(root int) int {
		n := 0
		for i := range ops {
			if uf.find(i) == root {
				n++
			}
		}
		return n
	}
	for count() > target {
		// Candidate merges: connected pairs of distinct, non-isolated groups.
		type cand struct{ a, b, cost int }
		best := cand{-1, -1, 1 << 30}
		for _, c := range conns {
			fi, ok1 := index[c.FromOp]
			ti, ok2 := index[c.ToOp]
			if !ok1 || !ok2 {
				continue
			}
			ra, rb := uf.find(fi), uf.find(ti)
			if ra == rb || ops[fi].isolate || ops[ti].isolate {
				continue
			}
			if hasIsolated(ops, uf, ra) || hasIsolated(ops, uf, rb) {
				continue
			}
			cost := size(ra) + size(rb)
			if cost < best.cost || (cost == best.cost && (ra < best.a || (ra == best.a && rb < best.b))) {
				best = cand{ra, rb, cost}
			}
		}
		if best.a < 0 {
			return nil // nothing mergeable; accept more PEs than target
		}
		uf.union(best.a, best.b)
	}
	return nil
}

func hasIsolated(ops []*OpHandle, uf *unionFind, root int) bool {
	for i, h := range ops {
		if h.isolate && uf.find(i) == root {
			return true
		}
	}
	return false
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// unionFind is a standard disjoint-set with path compression.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if rb < ra {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}
