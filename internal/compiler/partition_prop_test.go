package compiler

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"streamorca/internal/adl"
	"streamorca/internal/tuple"
)

// randomProgram describes a generated builder program for the
// partitioning property tests.
type randomProgram struct {
	nOps   int
	tags   []int // colocation tag per op; -1 = none, -2 = isolated
	chain  bool  // connect ops in a chain
	fusion FusionMode
	target int
}

func genProgram(r *rand.Rand) randomProgram {
	p := randomProgram{
		nOps:   1 + r.Intn(24),
		fusion: FusionMode(r.Intn(4)),
		target: 1 + r.Intn(6),
		chain:  r.Intn(2) == 0,
	}
	nTags := 1 + r.Intn(4)
	for i := 0; i < p.nOps; i++ {
		switch r.Intn(4) {
		case 0:
			p.tags = append(p.tags, -2) // isolated
		case 1:
			p.tags = append(p.tags, -1) // untagged
		default:
			p.tags = append(p.tags, r.Intn(nTags))
		}
	}
	return p
}

func (p randomProgram) build() (*AppBuilder, []string) {
	b := NewApp("Prop")
	var prev *OpHandle
	var names []string
	for i := 0; i < p.nOps; i++ {
		h := b.AddOperator(fmt.Sprintf("op%02d", i), "Functor").In(intSchema).Out(intSchema)
		switch {
		case p.tags[i] == -2:
			h.Isolate()
		case p.tags[i] >= 0:
			h.Colocate(fmt.Sprintf("tag%d", p.tags[i]))
		}
		if p.chain && prev != nil {
			b.Connect(prev, 0, h, 0)
		}
		prev = h
		names = append(names, h.Name())
	}
	return b, names
}

// TestPartitionProperties drives random builder programs through every
// fusion mode and checks the partitioning invariants:
//  1. every operator is assigned to exactly one PE;
//  2. isolated operators sit alone;
//  3. operators sharing a colocation tag share a PE;
//  4. PE indices are dense from 0.
func TestPartitionProperties(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)
		b, names := p.build()
		app, err := b.Build(Options{Fusion: p.fusion, TargetPEs: p.target})
		if err != nil {
			// The only legitimate failure for these programs is an
			// isolated+colocated conflict, which genProgram never emits.
			t.Logf("seed %d: unexpected Build error: %v", seed, err)
			return false
		}
		seen := make(map[string]int)
		for _, pe := range app.PEs {
			for _, op := range pe.Operators {
				if _, dup := seen[op]; dup {
					return false
				}
				seen[op] = pe.Index
			}
		}
		if len(seen) != len(names) {
			return false
		}
		tagPE := make(map[int]int)
		for i, name := range names {
			switch {
			case p.tags[i] == -2:
				if len(app.OperatorsInPE(seen[name])) != 1 {
					return false
				}
			case p.tags[i] >= 0:
				if prev, ok := tagPE[p.tags[i]]; ok && prev != seen[name] {
					return false
				}
				tagPE[p.tags[i]] = seen[name]
			}
		}
		for i, pe := range app.PEs {
			if pe.Index != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFuseAutoRespectsTargetWhenFeasible: with a connected chain and no
// isolation, FuseAuto must reach exactly the requested PE count whenever
// target <= nOps.
func TestFuseAutoRespectsTargetWhenFeasible(t *testing.T) {
	check := func(nOpsRaw, targetRaw uint8) bool {
		nOps := 1 + int(nOpsRaw)%20
		target := 1 + int(targetRaw)%nOps
		b := NewApp("Auto")
		var prev *OpHandle
		for i := 0; i < nOps; i++ {
			h := b.AddOperator(fmt.Sprintf("op%02d", i), "Functor").In(intSchema).Out(intSchema)
			if prev != nil {
				b.Connect(prev, 0, h, 0)
			}
			prev = h
		}
		app, err := b.Build(Options{Fusion: FuseAuto, TargetPEs: target})
		if err != nil {
			return false
		}
		return len(app.PEs) == target
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedADLAlwaysRoundTrips: every generated ADL must survive a
// marshal/unmarshal cycle with identical partitioning.
func TestGeneratedADLAlwaysRoundTrips(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)
		b, names := p.build()
		app, err := b.Build(Options{Fusion: p.fusion, TargetPEs: p.target})
		if err != nil {
			return false
		}
		data, err := app.Marshal()
		if err != nil {
			return false
		}
		got, err := unmarshalADL(data)
		if err != nil {
			return false
		}
		for _, name := range names {
			if got.PEOfOperator(name) != app.PEOfOperator(name) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

var _ = tuple.Int

// unmarshalADL avoids an import cycle on the adl package's test helpers.
func unmarshalADL(data []byte) (*appView, error) {
	a, err := adl.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return &appView{a}, nil
}

type appView struct{ *adl.Application }
