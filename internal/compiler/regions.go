package compiler

import (
	"fmt"
	"strconv"

	"streamorca/internal/adl"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// The kinds the compiler inserts around a parallel region. They name the
// built-in library's Split and Merge operators (validated against the
// registry like every other kind), and the region contract depends on
// Split's hash mode routing tuples with opapi.PartitionOf — the same
// function SplitState implementations partition their keys with.
const (
	regionSplitKind = "Split"
	regionMergeKind = "Merge"
)

// regionOpName builds the instance name of one of a region's expanded
// operators: "<declared name>/split", "/merge", or a replica index.
// The "/" separator cannot collide with builder-declared names, which
// qualify composites with ".".
func regionOpName(region, member string) string { return region + "/" + member }

// expandRegions replaces every operator declared Parallel with its
// region expansion: a hash split on the kind's partition-key attribute,
// width replicas of the declared operator, and a merge — each isolated
// in its own PE so SAM can restart and resize them independently.
// Stream connections to and from the declared operator are rewired to
// the split and merge, so neighbours never know the region exists.
func (b *AppBuilder) expandRegions(reg *opapi.Registry) {
	if len(b.errs) > 0 {
		return // name/handle errors make rewiring unreliable
	}
	var out []*OpHandle
	for _, h := range b.ops {
		if h.parallel == 0 {
			out = append(out, h)
			continue
		}
		region, err := b.expandRegion(h, reg)
		if err != nil {
			b.errs = append(b.errs, err)
			out = append(out, h)
			continue
		}
		out = append(out, region...)
	}
	b.ops = out
}

// expandRegion expands one declared operator, returning the replacement
// handles in pipeline order (split, replicas, merge).
func (b *AppBuilder) expandRegion(h *OpHandle, reg *opapi.Registry) ([]*OpHandle, error) {
	if h.parallel < 1 {
		return nil, fmt.Errorf("compiler: operator %q: parallel width %d < 1", h.name, h.parallel)
	}
	model := reg.Model(h.kind)
	if model == nil || model.PartitionKey == "" {
		return nil, fmt.Errorf("compiler: operator %q: kind %s declares no partition key, cannot be parallelised", h.name, h.kind)
	}
	key := h.params.Get(model.PartitionKey, "")
	if key == "" {
		return nil, fmt.Errorf("compiler: operator %q: parallel region needs the %s parameter (the partition-key attribute)", h.name, model.PartitionKey)
	}
	if len(h.inputs) != 1 || len(h.outputs) != 1 {
		return nil, fmt.Errorf("compiler: operator %q: parallel regions need exactly 1 input and 1 output port, have %d/%d", h.name, len(h.inputs), len(h.outputs))
	}
	if h.coloc != "" || h.isolatePE {
		return nil, fmt.Errorf("compiler: operator %q: parallel regions cannot be colocated or host-isolated", h.name)
	}
	for _, e := range b.exports {
		if e.Operator == h.name {
			return nil, fmt.Errorf("compiler: operator %q: parallel regions cannot export streams", h.name)
		}
	}
	for _, im := range b.imports {
		if im.Operator == h.name {
			return nil, fmt.Errorf("compiler: operator %q: parallel regions cannot import streams", h.name)
		}
	}
	in, outSchema := h.inputs[0], h.outputs[0]
	w := h.parallel

	add := func(member, kind string) (*OpHandle, error) {
		nh := &OpHandle{
			b:         b,
			name:      regionOpName(h.name, member),
			kind:      kind,
			composite: h.composite,
			params:    opapi.Params{},
			isolate:   true,
			pool:      h.pool,
		}
		if _, dup := b.byName[nh.name]; dup {
			return nil, fmt.Errorf("compiler: region %q collides with operator %q", h.name, nh.name)
		}
		b.byName[nh.name] = nh
		return nh, nil
	}
	delete(b.byName, h.name)

	split, err := add("split", regionSplitKind)
	if err != nil {
		return nil, err
	}
	split.params["mode"] = "hash"
	split.params["attr"] = key
	split.inputs = []*tuple.Schema{in}

	handles := []*OpHandle{split}
	replicas := make([]string, 0, w)
	for i := 0; i < w; i++ {
		r, err := add(strconv.Itoa(i), h.kind)
		if err != nil {
			return nil, err
		}
		r.params = h.params.Clone()
		r.inputs = []*tuple.Schema{in}
		r.outputs = []*tuple.Schema{outSchema}
		handles = append(handles, r)
		replicas = append(replicas, r.name)
		split.outputs = append(split.outputs, in)
	}
	mrg, err := add("merge", regionMergeKind)
	if err != nil {
		return nil, err
	}
	for range replicas {
		mrg.inputs = append(mrg.inputs, outSchema)
	}
	mrg.outputs = []*tuple.Schema{outSchema}
	handles = append(handles, mrg)

	// Rewire the neighbours, then wire the interior: split port i feeds
	// replica i, whose single output feeds merge port i.
	for ci := range b.conns {
		c := &b.conns[ci]
		if c.ToOp == h.name {
			c.ToOp = split.name
		}
		if c.FromOp == h.name {
			c.FromOp = mrg.name
		}
	}
	for i, rn := range replicas {
		b.conns = append(b.conns,
			adl.Connection{FromOp: split.name, FromPort: i, ToOp: rn, ToPort: 0},
			adl.Connection{FromOp: rn, FromPort: 0, ToOp: mrg.name, ToPort: i},
		)
	}
	b.regions = append(b.regions, adl.Region{
		Name:     h.name,
		Key:      key,
		Width:    w,
		Split:    split.name,
		Merge:    mrg.name,
		Replicas: replicas,
	})
	return handles, nil
}

// ResizeRegion rewrites an ADL's parallel region to a new width: grown
// regions gain replicas cloned from replica 0 (each in a fresh PE with
// a new, previously unused partition index, so untouched PEs keep their
// indexes); shrunk regions lose their highest-indexed replicas and
// those replicas' PEs. The split's output ports, the merge's input
// ports, the interior connections, and the Regions record are all
// updated to match. It is the compile-time half of SAM's ResizeRegion
// actuation — the runtime half restarts the region's PEs and migrates
// the per-key operator state between partitionings.
func ResizeRegion(app *adl.Application, region string, width int) (*adl.Application, error) {
	if width < 1 {
		return nil, fmt.Errorf("compiler: resize region %q: width %d < 1", region, width)
	}
	r := app.Region(region)
	if r == nil {
		return nil, fmt.Errorf("compiler: resize: no region %q in application %q", region, app.Name)
	}
	out := app.Clone()
	ro := out.Region(region)
	template := out.OperatorByName(ro.Replicas[0])
	if template == nil {
		return nil, fmt.Errorf("compiler: resize region %q: replica %q missing", region, ro.Replicas[0])
	}
	templatePE := peOf(out, template.Name)
	if templatePE == nil {
		return nil, fmt.Errorf("compiler: resize region %q: replica %q has no PE", region, template.Name)
	}

	// Drop the interior wiring; it is rebuilt for the new width below.
	conns := out.Connects[:0]
	for _, c := range out.Connects {
		if c.FromOp == ro.Split || c.ToOp == ro.Merge {
			continue
		}
		conns = append(conns, c)
	}
	out.Connects = conns

	switch {
	case width < ro.Width:
		removed := map[string]bool{}
		for _, name := range ro.Replicas[width:] {
			removed[name] = true
		}
		ops := out.Operators[:0]
		for _, op := range out.Operators {
			if !removed[op.Name] {
				ops = append(ops, op)
			}
		}
		out.Operators = ops
		var pes []adl.PE
		for _, pe := range out.PEs {
			kept := pe.Operators[:0]
			for _, name := range pe.Operators {
				if !removed[name] {
					kept = append(kept, name)
				}
			}
			pe.Operators = kept
			if len(kept) > 0 {
				pes = append(pes, pe)
			}
		}
		out.PEs = pes
		ro.Replicas = ro.Replicas[:width]
	case width > ro.Width:
		next := 0
		for _, pe := range out.PEs {
			if pe.Index >= next {
				next = pe.Index + 1
			}
		}
		for i := ro.Width; i < width; i++ {
			op := adl.Operator{
				Name:      regionOpName(region, strconv.Itoa(i)),
				Kind:      template.Kind,
				Composite: template.Composite,
				Inputs:    clonePorts(template.Inputs),
				Outputs:   clonePorts(template.Outputs),
			}
			if template.Params != nil {
				op.Params = opapi.Params(template.Params).Clone()
			}
			if out.OperatorByName(op.Name) != nil {
				return nil, fmt.Errorf("compiler: resize region %q: operator %q already exists", region, op.Name)
			}
			out.Operators = append(out.Operators, op)
			out.PEs = append(out.PEs, adl.PE{
				Index:     next,
				Operators: []string{op.Name},
				Pool:      templatePE.Pool,
				IsolatePE: templatePE.IsolatePE,
				Restart:   templatePE.Restart,
			})
			next++
			ro.Replicas = append(ro.Replicas, op.Name)
		}
	}
	ro.Width = width

	split := out.OperatorByName(ro.Split)
	mrg := out.OperatorByName(ro.Merge)
	if split == nil || mrg == nil {
		return nil, fmt.Errorf("compiler: resize region %q: split or merge operator missing", region)
	}
	split.Outputs = replicatePort(split.Outputs[0], width)
	mrg.Inputs = replicatePort(mrg.Inputs[0], width)
	for i, rn := range ro.Replicas {
		out.Connects = append(out.Connects,
			adl.Connection{FromOp: ro.Split, FromPort: i, ToOp: rn, ToPort: 0},
			adl.Connection{FromOp: rn, FromPort: 0, ToOp: ro.Merge, ToPort: i},
		)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: resize region %q produced invalid ADL: %w", region, err)
	}
	return out, nil
}

func peOf(app *adl.Application, opName string) *adl.PE {
	for i := range app.PEs {
		for _, n := range app.PEs[i].Operators {
			if n == opName {
				return &app.PEs[i]
			}
		}
	}
	return nil
}

func clonePorts(ports []adl.Port) []adl.Port {
	out := make([]adl.Port, len(ports))
	for i, p := range ports {
		out[i] = adl.Port{Schema: append([]tuple.Attribute(nil), p.Schema...)}
	}
	return out
}

func replicatePort(p adl.Port, n int) []adl.Port {
	out := make([]adl.Port, n)
	for i := range out {
		out[i] = adl.Port{Schema: append([]tuple.Attribute(nil), p.Schema...)}
	}
	return out
}
