package compiler

import (
	"strings"
	"testing"

	"streamorca/internal/adl"
	"streamorca/internal/tuple"
)

func regionApp(t *testing.T, width int) *adl.Application {
	t.Helper()
	in := tuple.MustSchema(tuple.Attribute{Name: "user", Type: tuple.String}, tuple.Attribute{Name: "score", Type: tuple.Float})
	b := NewApp("regionapp")
	src := b.AddOperator("src", "Beacon").Out(in)
	agg := b.AddOperator("agg", "Aggregate").
		Param("window", "1s").Param("groupBy", "user").Param("valueAttr", "score").
		In(in).Out(in).Parallel(width)
	sink := b.AddOperator("sink", "CountSink").In(in)
	b.Connect(src, 0, agg, 0)
	b.Connect(agg, 0, sink, 0)
	app, err := b.Build(Options{Fusion: FuseNone})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return app
}

func TestParallelExpandsRegion(t *testing.T) {
	app := regionApp(t, 3)
	r := app.Region("agg")
	if r == nil {
		t.Fatal("no region record for agg")
	}
	if r.Width != 3 || len(r.Replicas) != 3 || r.Key != "user" {
		t.Fatalf("region = %+v", r)
	}
	if app.OperatorByName("agg") != nil {
		t.Fatal("declared operator should be replaced by the expansion")
	}
	split := app.OperatorByName(r.Split)
	if split == nil || split.Kind != "Split" || split.Params["mode"] != "hash" || split.Params["attr"] != "user" {
		t.Fatalf("split = %+v", split)
	}
	if mrg := app.OperatorByName(r.Merge); mrg == nil || len(mrg.Inputs) != 3 {
		t.Fatalf("merge = %+v", mrg)
	}
	// The neighbours were rewired to the split/merge pair, and every
	// replica sits alone in its own PE.
	for _, c := range app.Connects {
		if c.ToOp == "agg" || c.FromOp == "agg" {
			t.Fatalf("stale connection to declared operator: %+v", c)
		}
	}
	for _, rep := range r.Replicas {
		idx := app.PEOfOperator(rep)
		if idx < 0 || len(app.OperatorsInPE(idx)) != 1 {
			t.Fatalf("replica %s not isolated: PE %d = %v", rep, idx, app.OperatorsInPE(idx))
		}
	}
}

func TestParallelRequiresPartitionKey(t *testing.T) {
	in := tuple.MustSchema(tuple.Attribute{Name: "user", Type: tuple.String})
	b := NewApp("bad")
	f := b.AddOperator("f", "Functor").In(in).Out(in).Parallel(2)
	_ = f
	_, err := b.Build(Options{Fusion: FuseNone})
	if err == nil || !strings.Contains(err.Error(), "no partition key") {
		t.Fatalf("want partition-key error, got %v", err)
	}
}

func TestResizeRegionGrowAndShrink(t *testing.T) {
	app := regionApp(t, 2)
	grown, err := ResizeRegion(app, "agg", 3)
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	gr := grown.Region("agg")
	if gr.Width != 3 || len(gr.Replicas) != 3 {
		t.Fatalf("grown region = %+v", gr)
	}
	// Untouched PEs keep their indexes; the new replica got a fresh one.
	for _, op := range []string{"agg/0", "agg/1", "agg/split", "agg/merge", "src", "sink"} {
		if app.PEOfOperator(op) != grown.PEOfOperator(op) {
			t.Fatalf("PE index of %s changed: %d -> %d", op, app.PEOfOperator(op), grown.PEOfOperator(op))
		}
	}
	if idx := grown.PEOfOperator("agg/2"); idx < 0 {
		t.Fatal("new replica has no PE")
	}
	shrunk, err := ResizeRegion(grown, "agg", 1)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	sr := shrunk.Region("agg")
	if sr.Width != 1 || len(sr.Replicas) != 1 {
		t.Fatalf("shrunk region = %+v", sr)
	}
	for _, gone := range []string{"agg/1", "agg/2"} {
		if shrunk.OperatorByName(gone) != nil {
			t.Fatalf("removed replica %s still present", gone)
		}
	}
	if mrg := shrunk.OperatorByName(sr.Merge); len(mrg.Inputs) != 1 {
		t.Fatalf("merge ports not shrunk: %d", len(mrg.Inputs))
	}
	// The original application is untouched by either rewrite.
	if err := app.Validate(); err != nil || app.Region("agg").Width != 2 {
		t.Fatalf("input mutated: %v width=%d", err, app.Region("agg").Width)
	}
}
