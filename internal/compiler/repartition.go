package compiler

import (
	"fmt"

	"streamorca/internal/adl"
)

// Repartition recompiles an application's PE partitioning from its ADL —
// the §4.3 capability the paper calls "trivial to implement by ...
// triggering application recompilation" but leaves out of its own
// implementation. The logical graph (operators, composites, connections,
// exports/imports) is preserved; only the operator→PE assignment changes.
// Each operator keeps the host pool of the partition it previously lived
// in, so placement intent survives the rewrite.
//
// Repartitioning applies to the ADL artifact: like MakeExclusive, it must
// happen before submission. Running jobs are unaffected.
func Repartition(app *adl.Application, opts Options) (*adl.Application, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: repartition input: %w", err)
	}
	out := app.Clone()

	poolOf := make(map[string]string)
	isolateHost := make(map[string]bool)
	for _, pe := range app.PEs {
		for _, op := range pe.Operators {
			poolOf[op] = pe.Pool
			isolateHost[op] = pe.IsolatePE
		}
	}

	handles := make([]*OpHandle, 0, len(out.Operators))
	for i := range out.Operators {
		op := &out.Operators[i]
		handles = append(handles, &OpHandle{
			name:      op.Name,
			kind:      op.Kind,
			pool:      poolOf[op.Name],
			isolatePE: isolateHost[op.Name],
		})
	}
	pes, err := partition(handles, out.Connects, opts)
	if err != nil {
		return nil, fmt.Errorf("compiler: repartition: %w", err)
	}
	out.PEs = pes
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: repartition produced invalid ADL: %w", err)
	}
	return out, nil
}
