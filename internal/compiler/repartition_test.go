package compiler

import (
	"strings"
	"testing"

	"streamorca/internal/adl"
)

func repartitionFixture(t *testing.T) *adl.Application {
	t.Helper()
	b := NewApp("RP")
	b.HostPool(adl.HostPool{Name: "p1"})
	a := b.AddOperator("a", "Beacon").Out(intSchema).Pool("p1")
	c := b.AddOperator("c", "Functor").In(intSchema).Out(intSchema)
	d := b.AddOperator("d", "CountSink").In(intSchema)
	b.Connect(a, 0, c, 0)
	b.Connect(c, 0, d, 0)
	app, err := b.Build(Options{Fusion: FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestRepartitionFuseAll(t *testing.T) {
	app := repartitionFixture(t)
	if len(app.PEs) != 3 {
		t.Fatalf("fixture PEs = %d", len(app.PEs))
	}
	got, err := Repartition(app, Options{Fusion: FuseAuto, TargetPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PEs) != 1 {
		t.Fatalf("repartitioned PEs = %d", len(got.PEs))
	}
	// Logical view unchanged.
	if len(got.Operators) != 3 || len(got.Connects) != 2 {
		t.Fatal("repartition altered the logical graph")
	}
	// Original untouched.
	if len(app.PEs) != 3 {
		t.Fatal("repartition mutated its input")
	}
}

func TestRepartitionPreservesPools(t *testing.T) {
	app := repartitionFixture(t)
	got, err := Repartition(app, Options{Fusion: FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	pe := got.PEOfOperator("a")
	for _, p := range got.PEs {
		if p.Index == pe && p.Pool != "p1" {
			t.Fatalf("pool lost: %+v", p)
		}
	}
}

func TestRepartitionPoolConflictFails(t *testing.T) {
	app := repartitionFixture(t)
	// Pin the two connected operators to different pools: fusing them
	// into one PE must fail.
	app.HostPools = append(app.HostPools, adl.HostPool{Name: "p2"})
	for i := range app.PEs {
		for _, op := range app.PEs[i].Operators {
			if op == "c" {
				app.PEs[i].Pool = "p2"
			}
		}
	}
	_, err := Repartition(app, Options{Fusion: FuseAll})
	if err == nil || !strings.Contains(err.Error(), "conflicting pools") {
		t.Fatalf("err = %v", err)
	}
}

func TestRepartitionRejectsInvalidInput(t *testing.T) {
	app := repartitionFixture(t)
	app.Name = ""
	if _, err := Repartition(app, Options{}); err == nil {
		t.Fatal("invalid input accepted")
	}
}
