package compiler

import (
	"strings"
	"testing"

	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

var floatSchema = tuple.MustSchema(tuple.Attribute{Name: "x", Type: tuple.Float})

// testRegistry builds a private registry exercising every descriptor
// feature: required params, ranges, enums, fixed and variadic arities,
// and port schema constraints.
func testRegistry() *opapi.Registry {
	reg := opapi.NewRegistry()
	noop := func() opapi.Operator { return &struct{ opapi.Base }{} }
	reg.RegisterOp("Src", noop, &opapi.OpModel{
		Outputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "count", Type: opapi.ParamInt, Min: opapi.Bound(0), Max: opapi.Bound(1000)},
			{Name: "period", Type: opapi.ParamDuration, Min: opapi.Bound(0)},
		},
	})
	reg.RegisterOp("Xform", noop, &opapi.OpModel{
		Inputs:  opapi.ExactlyPorts(1),
		Outputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "mode", Type: opapi.ParamEnum, Enum: []string{"fast", "slow"}},
			{Name: "rate", Type: opapi.ParamFloat, Required: true},
			{Name: "strict", Type: opapi.ParamBool},
		},
	})
	reg.RegisterOp("Fan", noop, &opapi.OpModel{
		Inputs:  opapi.ExactlyPorts(1),
		Outputs: opapi.AtLeastPorts(2),
	})
	reg.RegisterOp("Snk", noop, &opapi.OpModel{
		Inputs: opapi.ExactlyPorts(1).WithAttrs(tuple.Attribute{Name: "v", Type: tuple.Int}),
	})
	reg.Register("Opaque", noop) // no model: resolvable but unvalidated
	return reg
}

func TestBuildValidatesAgainstOperatorModel(t *testing.T) {
	reg := testRegistry()
	cases := []struct {
		name    string
		program func(b *AppBuilder)
		want    []string // substrings of the accumulated error; empty = build must succeed
	}{
		{
			name: "valid program",
			program: func(b *AppBuilder) {
				src := b.AddOperator("src", "Src").Out(intSchema).Param("count", "10")
				mid := b.AddOperator("mid", "Xform").In(intSchema).Out(intSchema).
					Param("rate", "1.5").Param("mode", "fast").Param("strict", "true")
				snk := b.AddOperator("snk", "Snk").In(intSchema)
				b.Connect(src, 0, mid, 0)
				b.Connect(mid, 0, snk, 0)
			},
		},
		{
			name: "unknown kind",
			program: func(b *AppBuilder) {
				b.AddOperator("src", "Sorce").Out(intSchema)
			},
			want: []string{`operator "src": unknown operator kind "Sorce"`},
		},
		{
			name: "mistyped param values",
			program: func(b *AppBuilder) {
				b.AddOperator("src", "Src").Out(intSchema).
					Param("count", "ten").Param("period", "fast")
			},
			want: []string{
				`operator "src" (kind Src): param "count": invalid int64 value "ten"`,
				`param "period": invalid duration value "fast"`,
			},
		},
		{
			name: "out-of-range param",
			program: func(b *AppBuilder) {
				b.AddOperator("src", "Src").Out(intSchema).Param("count", "5000")
			},
			want: []string{`param "count": value 5000 above maximum 1000`},
		},
		{
			name: "missing required param",
			program: func(b *AppBuilder) {
				x := b.AddOperator("x", "Xform").In(intSchema).Out(intSchema)
				src := b.AddOperator("src", "Src").Out(intSchema)
				b.Connect(src, 0, x, 0)
			},
			want: []string{`operator "x" (kind Xform): required param "rate" (float64) missing`},
		},
		{
			name: "unknown param name",
			program: func(b *AppBuilder) {
				b.AddOperator("src", "Src").Out(intSchema).Param("speed", "3")
			},
			want: []string{`unknown param "speed" (kind Src accepts: count, period)`},
		},
		{
			name: "enum violation",
			program: func(b *AppBuilder) {
				b.AddOperator("x", "Xform").In(intSchema).Out(intSchema).
					Param("rate", "1").Param("mode", "turbo")
			},
			want: []string{`param "mode": value "turbo" not in {fast, slow}`},
		},
		{
			name: "template values defer to submission time",
			program: func(b *AppBuilder) {
				src := b.AddOperator("src", "Src").Out(intSchema).Param("count", "{{n}}")
				snk := b.AddOperator("snk", "Snk").In(intSchema)
				b.Connect(src, 0, snk, 0)
			},
		},
		{
			name: "input arity violation",
			program: func(b *AppBuilder) {
				b.AddOperator("x", "Xform").In(intSchema, intSchema).Out(intSchema).Param("rate", "1")
			},
			want: []string{`operator "x" (kind Xform): declares 2 input port(s), want exactly 1`},
		},
		{
			name: "variadic minimum violation",
			program: func(b *AppBuilder) {
				b.AddOperator("f", "Fan").In(intSchema).Out(intSchema)
			},
			want: []string{`operator "f" (kind Fan): declares 1 output port(s), want at least 2`},
		},
		{
			name: "port schema constraint violation",
			program: func(b *AppBuilder) {
				b.AddOperator("snk", "Snk").In(floatSchema)
			},
			want: []string{`operator "snk" (kind Snk): input port 0 schema <float64 x> lacks attribute "v" (int64)`},
		},
		{
			name: "connect port index out of range",
			program: func(b *AppBuilder) {
				src := b.AddOperator("src", "Src").Out(intSchema)
				snk := b.AddOperator("snk", "Snk").In(intSchema)
				b.Connect(src, 1, snk, 0)
				b.Connect(src, 0, snk, -1)
			},
			want: []string{
				`connect src:1 -> snk:0: "src" declares 1 output port(s), no port 1`,
				`connect src:0 -> snk:-1: "snk" declares 1 input port(s), no port -1`,
			},
		},
		{
			name: "connect schema mismatch",
			program: func(b *AppBuilder) {
				src := b.AddOperator("src", "Src").Out(floatSchema)
				snk := b.AddOperator("snk", "Opaque").In(intSchema)
				b.Connect(src, 0, snk, 0)
			},
			want: []string{`connect src:0 -> snk:0: schema mismatch (<float64 x> vs <int64 v>)`},
		},
		{
			name: "export and import port out of range",
			program: func(b *AppBuilder) {
				src := b.AddOperator("src", "Src").Out(intSchema)
				snk := b.AddOperator("snk", "Snk").In(intSchema)
				b.Connect(src, 0, snk, 0)
				b.Export(src, 3, "s1", nil)
				b.Import(snk, 2, "s1", nil)
			},
			want: []string{
				`export from src:3: "src" declares 1 output port(s), no port 3`,
				`import into snk:2: "snk" declares 1 input port(s), no port 2`,
			},
		},
		{
			name: "modelless kind skips param validation",
			program: func(b *AppBuilder) {
				src := b.AddOperator("src", "Src").Out(intSchema)
				snk := b.AddOperator("snk", "Opaque").In(intSchema).Param("whatever", "x")
				b.Connect(src, 0, snk, 0)
			},
		},
		{
			name: "violations accumulate across operators",
			program: func(b *AppBuilder) {
				b.AddOperator("a", "Mystery").Out(intSchema)
				b.AddOperator("b", "Src").Out(intSchema).Param("count", "no")
				b.AddOperator("c", "Xform").In(intSchema).Out(intSchema)
			},
			want: []string{
				`operator "a": unknown operator kind "Mystery"`,
				`operator "b" (kind Src): param "count": invalid int64 value "no"`,
				`operator "c" (kind Xform): required param "rate" (float64) missing`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewApp("V")
			tc.program(b)
			_, err := b.Build(Options{Registry: reg})
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("Build failed: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Build succeeded, want validation errors")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error missing %q\ngot: %v", want, err)
				}
			}
		})
	}
}

// TestBuildValidatesDefaultRegistry exercises validation against the
// process-wide registry the built-in library registers into (Options
// with a nil Registry).
func TestBuildValidatesDefaultRegistry(t *testing.T) {
	b := NewApp("D")
	b.AddOperator("src", "Beacon").Out(intSchema).Param("count", "ten")
	b.AddOperator("agg", "Aggregate").In(intSchema).Out(intSchema).
		Param("window", "-5s").Param("valueAttr", "v").Param("windowSize", "3")
	_, err := b.Build(Options{})
	if err == nil {
		t.Fatal("Build succeeded, want validation errors")
	}
	for _, want := range []string{
		`operator "src" (kind Beacon): param "count": invalid int64 value "ten"`,
		`param "window": value -5s below minimum`,
		`unknown param "windowSize"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q\ngot: %v", want, err)
		}
	}
}

// TestBuildErrorMessageFormat pins the accumulated multi-error shape:
// one "compiler:" prefix, semicolon-separated, operator-qualified.
func TestBuildErrorMessageFormat(t *testing.T) {
	b := NewApp("F")
	b.AddOperator("a", "Nope").Out(intSchema)
	b.AddOperator("b", "Beacon").Out(intSchema).Param("count", "x")
	_, err := b.Build(Options{})
	if err == nil {
		t.Fatal("Build succeeded")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "compiler: ") {
		t.Errorf("missing compiler prefix: %q", msg)
	}
	if strings.Contains(msg, "compiler: compiler:") {
		t.Errorf("doubled prefix: %q", msg)
	}
	if got := strings.Count(msg, "; "); got != 1 {
		t.Errorf("want 2 semicolon-separated errors, got separator count %d: %q", got, msg)
	}
	if strings.Index(msg, `operator "a"`) > strings.Index(msg, `operator "b"`) {
		t.Errorf("errors not in declaration order: %q", msg)
	}
}
