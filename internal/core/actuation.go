package core

import (
	"fmt"
	"sort"

	"streamorca/internal/adl"
	"streamorca/internal/compiler"
	"streamorca/internal/graph"
	"streamorca/internal/ids"
	"streamorca/internal/sam"
)

// This file implements the actuation and inspection APIs the ORCA logic
// invokes from its event handlers (§3, §4.2, §4.3). The service acts as a
// proxy for job submission and control commands; it refuses to act on
// jobs it did not start (ErrUnmanagedJob).

// SubmitApplication submits a registered application directly (outside
// the dependency manager), returning the new job id. A job-submitted
// event is delivered if a matching JobEventScope is registered.
func (s *Service) SubmitApplication(appName string, params map[string]string) (ids.JobID, error) {
	return s.submitInternal(appName, params, "")
}

func (s *Service) submitInternal(appName string, params map[string]string, configID string) (ids.JobID, error) {
	s.mu.Lock()
	app, ok := s.apps[appName]
	s.mu.Unlock()
	if !ok {
		return ids.InvalidJob, fmt.Errorf("core: application %q is not registered with orchestrator %q", appName, s.cfg.Name)
	}
	job, err := s.cfg.SAM.SubmitJob(app, sam.SubmitOptions{Params: params, Owner: s.cfg.Name})
	s.recordActuation("SubmitApplication", appName, err)
	if err != nil {
		return ids.InvalidJob, err
	}
	jobADL, ok1 := s.cfg.SAM.JobADL(job)
	peIDs, hosts, ok2 := s.cfg.SAM.PEPlacement(job)
	if !ok1 || !ok2 {
		_ = s.cfg.SAM.CancelJob(job) //orcalint:ignore actuationcheck best-effort rollback; the vanished-job error below is the one the caller acts on
		return ids.InvalidJob, fmt.Errorf("core: job %s vanished during submission", job)
	}
	g, err := graph.Build(jobADL, job, peIDs, hosts)
	if err != nil {
		_ = s.cfg.SAM.CancelJob(job) //orcalint:ignore actuationcheck best-effort rollback; the graph-build error below is the one the caller acts on
		return ids.InvalidJob, fmt.Errorf("core: graph for %s: %w", appName, err)
	}
	s.mu.Lock()
	s.graphs[job] = g
	s.managed[job] = appName
	s.mu.Unlock()
	s.enqueue(&eventData{
		kind: KindJobSubmitted, job: job, app: appName,
		ctx: &JobContext{Job: job, App: appName, ConfigID: configID, At: s.clock.Now()},
	})
	return job, nil
}

// CancelJob cancels a managed job. Cancelling a job the orchestrator did
// not start returns ErrUnmanagedJob.
func (s *Service) CancelJob(job ids.JobID) error {
	return s.cancelInternal(job, "")
}

func (s *Service) cancelInternal(job ids.JobID, configID string) error {
	s.mu.Lock()
	appName, ok := s.managed[job]
	s.mu.Unlock()
	if !ok {
		s.recordActuation("CancelJob", job.String(), ErrUnmanagedJob)
		return ErrUnmanagedJob
	}
	err := s.cfg.SAM.CancelJob(job)
	s.recordActuation("CancelJob", job.String(), err)
	if err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.managed, job)
	delete(s.graphs, job)
	s.mu.Unlock()
	if configID == "" {
		// A direct cancellation may still concern a dependency-managed
		// job; keep the dependency manager's view consistent.
		configID = s.deps.noteJobCancelled(job)
	}
	s.enqueue(&eventData{
		kind: KindJobCancelled, job: job, app: appName,
		ctx: &JobContext{Job: job, App: appName, ConfigID: configID, Cancelled: true, At: s.clock.Now()},
	})
	return nil
}

// RestartPE restarts a PE of a managed job (the failover actuation of
// §5.2) and updates the stream graph's physical view.
func (s *Service) RestartPE(pe ids.PEID) error {
	job, ok := s.jobOfPE(pe)
	if !ok {
		s.recordActuation("RestartPE", pe.String(), ErrUnmanagedJob)
		return ErrUnmanagedJob
	}
	err := s.cfg.SAM.RestartPE(pe)
	s.recordActuation("RestartPE", pe.String(), err)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if g, ok := s.graphs[job]; ok {
		g.SetPEState(pe, "running")
		if _, hosts, ok := s.cfg.SAM.PEPlacement(job); ok {
			if info, found := g.PE(pe); found {
				g.SetPEHost(pe, hosts[info.Index])
			}
		}
	}
	s.mu.Unlock()
	return nil
}

// CheckpointPE captures an on-demand state snapshot of a managed PE.
// Paired with RestartPE it gives policies a stateful restart: snapshot,
// restart, and the PE resumes with its aggregate windows and counters
// intact instead of rebuilding them from fresh traffic. It fails when
// the platform runs without a checkpoint store.
func (s *Service) CheckpointPE(pe ids.PEID) error {
	if _, ok := s.jobOfPE(pe); !ok {
		s.recordActuation("CheckpointPE", pe.String(), ErrUnmanagedJob)
		return ErrUnmanagedJob
	}
	err := s.cfg.SAM.CheckpointPE(pe)
	s.recordActuation("CheckpointPE", pe.String(), err)
	return err
}

// StopPE stops a PE of a managed job without restarting it.
func (s *Service) StopPE(pe ids.PEID) error {
	job, ok := s.jobOfPE(pe)
	if !ok {
		s.recordActuation("StopPE", pe.String(), ErrUnmanagedJob)
		return ErrUnmanagedJob
	}
	err := s.cfg.SAM.StopPE(pe)
	s.recordActuation("StopPE", pe.String(), err)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if g, ok := s.graphs[job]; ok {
		g.SetPEState(pe, "stopped")
	}
	s.mu.Unlock()
	return nil
}

// KillPE injects a crash into a managed job's PE (fault injection for
// tests and experiments).
func (s *Service) KillPE(pe ids.PEID, reason string) error {
	if _, ok := s.jobOfPE(pe); !ok {
		s.recordActuation("KillPE", pe.String(), ErrUnmanagedJob)
		return ErrUnmanagedJob
	}
	err := s.cfg.SAM.KillPE(pe, reason)
	s.recordActuation("KillPE", pe.String(), err)
	return err
}

// ResizeRegion changes the width of a managed job's key-partitioned
// parallel region — the elastic-fission actuation. SAM recompiles the
// job's ADL, migrates the replicas' per-key state between
// partitionings through the checkpoint store, and restarts the region
// at the new width; on success the job's stream graph is rebuilt so
// inspection reflects the new topology. Like every actuation, the call
// is journalled under the current event's transaction id.
func (s *Service) ResizeRegion(job ids.JobID, region string, width int) error {
	target := fmt.Sprintf("%s/%s->%d", job, region, width)
	s.mu.Lock()
	_, ok := s.managed[job]
	s.mu.Unlock()
	if !ok {
		s.recordActuation("ResizeRegion", target, ErrUnmanagedJob)
		return ErrUnmanagedJob
	}
	err := s.cfg.SAM.ResizeRegion(job, region, width)
	s.recordActuation("ResizeRegion", target, err)
	if err != nil {
		return err
	}
	jobADL, ok1 := s.cfg.SAM.JobADL(job)
	peIDs, hosts, ok2 := s.cfg.SAM.PEPlacement(job)
	if ok1 && ok2 {
		if g, gerr := graph.Build(jobADL, job, peIDs, hosts); gerr == nil {
			s.mu.Lock()
			s.graphs[job] = g
			s.mu.Unlock()
		} else {
			s.cfg.Logf("core: rebuild graph after resize of %s: %v", job, gerr)
		}
	}
	return nil
}

// RegionWidth reports the current width of a managed job's parallel
// region, for routines that track how far they have scaled.
func (s *Service) RegionWidth(job ids.JobID, region string) (int, bool) {
	s.mu.Lock()
	_, ok := s.managed[job]
	s.mu.Unlock()
	if !ok {
		return 0, false
	}
	app, ok := s.cfg.SAM.JobADL(job)
	if !ok {
		return 0, false
	}
	r := app.Region(region)
	if r == nil {
		return 0, false
	}
	return r.Width, true
}

// ControlOperator sends a control command to an operator of a managed
// job.
func (s *Service) ControlOperator(job ids.JobID, opName, cmd string, args map[string]string) error {
	s.mu.Lock()
	_, ok := s.managed[job]
	s.mu.Unlock()
	if !ok {
		s.recordActuation("ControlOperator", opName, ErrUnmanagedJob)
		return ErrUnmanagedJob
	}
	err := s.cfg.SAM.ControlOperator(job, opName, cmd, args)
	s.recordActuation("ControlOperator", opName, err)
	return err
}

// MakeExclusiveHostPools rewrites the registered application's host pools
// to exclusive, so its future submissions run on hosts no other
// application can use (§4.3). It must be called before submission; jobs
// already running are unaffected.
func (s *Service) MakeExclusiveHostPools(appName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	app, ok := s.apps[appName]
	if !ok {
		err := fmt.Errorf("core: application %q is not registered", appName)
		s.journal.record(s.currentTx.Load(), "MakeExclusiveHostPools", appName, err, s.clock.Now())
		return err
	}
	app.MakeExclusive()
	s.journal.record(s.currentTx.Load(), "MakeExclusiveHostPools", appName, nil, s.clock.Now())
	return nil
}

// RepartitionApplication recompiles the registered application's PE
// partitioning with the given fusion options — the §4.3 extension the
// paper describes (annotate and recompile) but does not implement. Like
// MakeExclusiveHostPools, it rewrites the registered artifact and only
// affects future submissions.
func (s *Service) RepartitionApplication(appName string, opts compiler.Options) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	app, ok := s.apps[appName]
	if !ok {
		err := fmt.Errorf("core: application %q is not registered", appName)
		s.journal.record(s.currentTx.Load(), "RepartitionApplication", appName, err, s.clock.Now())
		return err
	}
	rewritten, err := compiler.Repartition(app, opts)
	s.journal.record(s.currentTx.Load(), "RepartitionApplication", appName, err, s.clock.Now())
	if err != nil {
		return err
	}
	s.apps[appName] = rewritten
	return nil
}

// RegisteredApplication returns a copy of the registered (possibly
// rewritten) ADL.
func (s *Service) RegisteredApplication(appName string) (*adl.Application, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	app, ok := s.apps[appName]
	if !ok {
		return nil, false
	}
	return app.Clone(), true
}

// Graph returns the stream graph representation of a managed job (§4.2's
// inspection entry point).
func (s *Service) Graph(job ids.JobID) (*graph.Graph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.graphs[job]
	return g, ok
}

// ManagedJobs lists the jobs this orchestrator started, ordered by id.
func (s *Service) ManagedJobs() []JobSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobSummary, 0, len(s.managed))
	for job, app := range s.managed {
		out = append(out, JobSummary{Job: job, App: app})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// JobsOfApp lists the managed jobs running a given application (replicas
// of the same application are distinct jobs, §5.2).
func (s *Service) JobsOfApp(appName string) []ids.JobID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ids.JobID
	for job, app := range s.managed {
		if app == appName {
			out = append(out, job)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OperatorsInPE answers "which stream operators reside in PE x?" across
// all managed jobs (§4.2).
func (s *Service) OperatorsInPE(pe ids.PEID) []graph.OperatorInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.graphs {
		if ops := g.OperatorsInPE(pe); ops != nil {
			return ops
		}
	}
	return nil
}

// CompositesInPE answers "which composites reside in PE x?".
func (s *Service) CompositesInPE(pe ids.PEID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.graphs {
		if _, ok := g.PE(pe); ok {
			return g.CompositesInPE(pe)
		}
	}
	return nil
}

// EnclosingComposite answers "what is the enclosing composite operator
// instance name for operator y?" within a managed job.
func (s *Service) EnclosingComposite(job ids.JobID, opName string) (string, bool) {
	s.mu.Lock()
	g, ok := s.graphs[job]
	s.mu.Unlock()
	if !ok {
		return "", false
	}
	return g.EnclosingComposite(opName)
}

// PEOfOperator answers "what is the PE id for operator instance y?".
func (s *Service) PEOfOperator(job ids.JobID, opName string) (ids.PEID, bool) {
	s.mu.Lock()
	g, ok := s.graphs[job]
	s.mu.Unlock()
	if !ok {
		return ids.InvalidPE, false
	}
	return g.PEOfOperator(opName)
}

// HostOfPE returns the host a managed PE runs on.
func (s *Service) HostOfPE(pe ids.PEID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.graphs {
		if h, ok := g.HostOfPE(pe); ok {
			return h, true
		}
	}
	return "", false
}

func (s *Service) jobOfPE(pe ids.PEID) (ids.JobID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for job, g := range s.graphs {
		if _, ok := g.PE(pe); ok {
			return job, true
		}
	}
	return ids.InvalidJob, false
}
