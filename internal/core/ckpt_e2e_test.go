package core

import (
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/tuple"
)

// ckptHarness is newHarness plus a checkpoint store on the platform.
func ckptHarness(t *testing.T, store ckpt.Store, hostNames ...string) *harness {
	t.Helper()
	return newStoreHarness(t, store, hostNames...)
}

// aggApp builds Beacon -> Aggregate -> CollectSink across three PEs.
// The manual clock never advances, so the aggregate's sliding window
// never expires and its "count" output increases monotonically — a
// direct readout of how much window state the operator holds.
func aggApp(t *testing.T, name, collector string) *adl.Application {
	t.Helper()
	tickS := tuple.MustSchema(
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "price", Type: tuple.Float},
	)
	outS := tuple.MustSchema(
		tuple.Attribute{Name: "avg", Type: tuple.Float},
		tuple.Attribute{Name: "count", Type: tuple.Int},
	)
	b := compiler.NewApp(name)
	src := b.AddOperator("src", ops.KindBeacon).Out(tickS).Param("count", "0")
	agg := b.AddOperator("agg", ops.KindAggregate).In(tickS).Out(outS).
		Param("window", "10m").Param("valueAttr", "price")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(outS).Param("collectorId", collector)
	b.Connect(src, 0, agg, 0)
	b.Connect(agg, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestHandlePEFailureRestoresAggregateState is the end-to-end recovery
// path: checkpoint the aggregation PE, kill it, let the ORCA policy's
// HandlePEFailure restart it, and verify the restarted operator resumes
// from the checkpointed window instead of an empty one (output counts
// continue past the pre-failure value rather than restarting at 1).
func TestHandlePEFailureRestoresAggregateState(t *testing.T) {
	store := ckpt.NewMemStore()
	h := ckptHarness(t, store)
	coll := "ckpt-e2e"
	ops.ResetCollector(coll)
	app := aggApp(t, "CkptE2E", coll)
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	coll2 := ops.Collector(coll)
	// preLen carries the collector length once the dead PE's in-flight
	// output drained: the handler quiesces, records the boundary, and
	// only then restarts — so the tuple at index preLen is the restored
	// container's first output.
	preLen := make(chan int, 1)
	restarted := make(chan ids.PEID, 4)
	h.observe(t, NewPEFailureScope("pf").AddApplicationFilter("CkptE2E"))
	h.rec.onEvent = func(svc *Service, kind EventKind, ctx any, scopes []string) {
		if kind == KindPEFailure {
			fc := ctx.(*PEFailureContext)
			stable := coll2.Len()
			for i := 0; i < 50; i++ {
				time.Sleep(time.Millisecond)
				if n := coll2.Len(); n != stable {
					stable, i = n, 0
				}
			}
			preLen <- coll2.Len()
			if err := svc.RestartPE(fc.PE); err != nil {
				t.Errorf("restart %s: %v", fc.PE, err)
				return
			}
			restarted <- fc.PE
		}
	}
	h.start(t)
	job, err := h.svc.SubmitApplication("CkptE2E", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.svc.Graph(job)
	aggPE, ok := g.PEOfOperator("agg")
	if !ok {
		t.Fatal("no agg PE")
	}

	lastCount := func() int64 {
		tp, ok := ops.Collector(coll).Last()
		if !ok {
			return 0
		}
		return tp.Int("count")
	}
	waitFor(t, "window to accumulate", func() bool { return lastCount() >= 50 })

	// Observe the fill BEFORE capturing: the captured state can only be
	// at or past this value, so the continuity assertion below holds for
	// every restored run and no cold one.
	countAtCkpt := lastCount()
	// On-demand snapshot through the orchestrator actuation.
	if err := h.svc.CheckpointPE(aggPE); err != nil {
		t.Fatal(err)
	}

	if err := h.svc.KillPE(aggPE, "injected stateful-PE failure"); err != nil {
		t.Fatal(err)
	}
	var boundary int
	select {
	case boundary = <-preLen:
	case <-time.After(10 * time.Second):
		t.Fatal("failure event never delivered")
	}
	select {
	case <-restarted:
	case <-time.After(10 * time.Second):
		t.Fatal("policy never restarted the PE")
	}

	// Continuity: the restored window's FIRST output resumes past the
	// checkpointed fill. A cold restart would emit count 1 there (and,
	// since this window never expires, would eventually catch up — which
	// is why the assertion pins the first post-restart tuple, not an
	// eventual value).
	waitFor(t, "post-restart output", func() bool { return coll2.Len() > boundary })
	if got := coll2.Tuples()[boundary].Int("count"); got <= countAtCkpt {
		t.Fatalf("first post-restart count %d <= checkpointed %d: window restarted cold", got, countAtCkpt)
	}

	// The restarted container must report the restore in its metrics.
	c, ok := h.inst.Cluster.PEContainer(aggPE)
	if !ok {
		t.Fatal("restarted container missing")
	}
	if got := c.PEMetrics().Counter(metrics.PEStateRestores).Value(); got < 1 {
		t.Fatalf("nStateRestores = %d", got)
	}
}

// TestCancelJobDropsCheckpoints: cancelling a job garbage-collects its
// PEs' snapshots from the store.
func TestCancelJobDropsCheckpoints(t *testing.T) {
	store := ckpt.NewMemStore()
	h := ckptHarness(t, store)
	coll := "ckpt-cancel"
	ops.ResetCollector(coll)
	app := aggApp(t, "CkptCancel", coll)
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	h.observe(t, NewJobEventScope("jobs").AddApplicationFilter("CkptCancel"))
	h.start(t)
	job, err := h.svc.SubmitApplication("CkptCancel", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.svc.Graph(job)
	aggPE, _ := g.PEOfOperator("agg")
	waitFor(t, "flow", func() bool { return ops.Collector(coll).Len() > 2 })
	if err := h.svc.CheckpointPE(aggPE); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("snapshots = %d", store.Len())
	}
	if err := h.svc.CancelJob(job); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("snapshots after cancel = %d", store.Len())
	}
}
