package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"streamorca/internal/ids"
	"streamorca/internal/vclock"
)

// This file implements §4.4: managing a set of applications with
// dependency relations inside one orchestrator — automatic submission of
// required applications (respecting uptime requirements), starvation-safe
// cancellation, and garbage collection of unused applications with
// resurrection from the cancellation queue.

// AppConfig describes one application configuration registered with the
// dependency manager (§4.4's five items).
type AppConfig struct {
	// ID is the configuration's string identifier.
	ID string
	// AppName names a registered application.
	AppName string
	// Params are submission-time application parameters.
	Params map[string]string
	// GarbageCollectable marks the application eligible for automatic
	// cancellation when unused.
	GarbageCollectable bool
	// GCTimeout is how long a garbage-collectable application keeps
	// running after becoming unused before it is cancelled; a later
	// submission that reuses it within the timeout rescues it from the
	// cancellation queue.
	GCTimeout time.Duration
}

// depEdge records that `from` depends on `to`, and that `to` must have
// been up for `uptime` before `from` may be submitted.
type depEdge struct {
	from   string
	to     string
	uptime time.Duration
}

type depManager struct {
	svc *Service

	mu          sync.Mutex
	configs     map[string]*AppConfig
	edges       []depEdge
	running     map[string]ids.JobID
	jobToConfig map[ids.JobID]string
	submittedAt map[string]time.Time
	explicit    map[string]bool
	submitting  map[string]bool
	gcTimers    map[string]vclock.Timer
}

func newDepManager(svc *Service) *depManager {
	return &depManager{
		svc:         svc,
		configs:     make(map[string]*AppConfig),
		running:     make(map[string]ids.JobID),
		jobToConfig: make(map[ids.JobID]string),
		submittedAt: make(map[string]time.Time),
		explicit:    make(map[string]bool),
		submitting:  make(map[string]bool),
		gcTimers:    make(map[string]vclock.Timer),
	}
}

// RegisterAppConfig registers an application configuration (§4.4).
func (s *Service) RegisterAppConfig(cfg AppConfig) error {
	if cfg.ID == "" {
		return fmt.Errorf("core: app config needs an id")
	}
	s.mu.Lock()
	_, appKnown := s.apps[cfg.AppName]
	s.mu.Unlock()
	if !appKnown {
		return fmt.Errorf("core: app config %q references unregistered application %q", cfg.ID, cfg.AppName)
	}
	dm := s.deps
	dm.mu.Lock()
	defer dm.mu.Unlock()
	if _, dup := dm.configs[cfg.ID]; dup {
		return fmt.Errorf("core: app config %q already registered", cfg.ID)
	}
	cp := cfg
	dm.configs[cfg.ID] = &cp
	return nil
}

// RegisterDependency declares that configuration fromID depends on
// configuration toID, with an uptime requirement: fromID's submission is
// delayed until toID has been running for at least uptime. Registering a
// dependency that would create a cycle fails (§4.4).
func (s *Service) RegisterDependency(fromID, toID string, uptime time.Duration) error {
	dm := s.deps
	dm.mu.Lock()
	defer dm.mu.Unlock()
	if _, ok := dm.configs[fromID]; !ok {
		return fmt.Errorf("core: unknown app config %q", fromID)
	}
	if _, ok := dm.configs[toID]; !ok {
		return fmt.Errorf("core: unknown app config %q", toID)
	}
	if fromID == toID {
		return fmt.Errorf("core: app config %q cannot depend on itself", fromID)
	}
	if uptime < 0 {
		return fmt.Errorf("core: negative uptime requirement")
	}
	if dm.reachesLocked(toID, fromID) {
		return fmt.Errorf("core: dependency %s -> %s would create a cycle", fromID, toID)
	}
	dm.edges = append(dm.edges, depEdge{from: fromID, to: toID, uptime: uptime})
	return nil
}

// reachesLocked reports whether `from` can reach `to` following
// dependency edges.
func (dm *depManager) reachesLocked(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range dm.edges {
			if e.from != cur || seen[e.to] {
				continue
			}
			if e.to == to {
				return true
			}
			seen[e.to] = true
			stack = append(stack, e.to)
		}
	}
	return false
}

// StartApp requests the start of a configuration: the service spawns a
// submission thread that takes a snapshot of the dependency graph, prunes
// everything not connected to the target, submits all not-yet-running
// dependencies in uptime-respecting order, and finally submits the target
// (§4.4). The call blocks until the target is submitted, so policies can
// sequence follow-up actions; run it in a goroutine for fire-and-forget.
func (s *Service) StartApp(configID string) error {
	dm := s.deps
	dm.mu.Lock()
	target, ok := dm.configs[configID]
	if !ok {
		dm.mu.Unlock()
		return fmt.Errorf("core: unknown app config %q", configID)
	}
	_ = target
	// Snapshot: needed = target plus transitive dependencies.
	needed := map[string]bool{configID: true}
	stack := []string{configID}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range dm.edges {
			if e.from == cur && !needed[e.to] {
				needed[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	edges := append([]depEdge(nil), dm.edges...)
	dm.explicit[configID] = true
	// Resurrection (§4.4): any needed application sitting in the GC
	// cancellation queue is about to be reused — rescue it now so the
	// pending timeout cannot cancel a dependency out from under us.
	for id := range needed {
		if t, queued := dm.gcTimers[id]; queued {
			t.Stop()
			delete(dm.gcTimers, id)
		}
	}
	dm.mu.Unlock()

	for {
		id, wait, done, err := dm.nextSubmission(configID, needed, edges)
		if err != nil {
			s.recordActuation("StartApp", configID, err)
			return err
		}
		if done {
			s.recordActuation("StartApp", configID, nil)
			return nil
		}
		if wait > 0 {
			s.clock.Sleep(wait)
			continue
		}
		if err := dm.submitConfig(id); err != nil {
			return fmt.Errorf("core: start %s: submitting dependency %s: %w", configID, id, err)
		}
	}
}

// nextSubmission picks the next config to submit: among needed configs
// that are not running and have all dependencies satisfied, the one with
// the lowest remaining uptime wait (§4.4). done is true once the target
// itself is running.
func (dm *depManager) nextSubmission(target string, needed map[string]bool, edges []depEdge) (id string, wait time.Duration, done bool, err error) {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	if _, running := dm.running[target]; running {
		return "", 0, true, nil
	}
	now := dm.svc.clock.Now()
	bestID := ""
	var bestWait time.Duration
	idsSorted := make([]string, 0, len(needed))
	for id := range needed {
		idsSorted = append(idsSorted, id)
	}
	sort.Strings(idsSorted)
	for _, id := range idsSorted {
		if _, running := dm.running[id]; running {
			continue
		}
		if dm.submitting[id] {
			continue
		}
		satisfied := true
		var need time.Duration
		for _, e := range edges {
			if e.from != id {
				continue
			}
			at, ok := dm.submittedAt[e.to]
			if !ok {
				satisfied = false
				break
			}
			if w := at.Add(e.uptime).Sub(now); w > need {
				need = w
			}
		}
		if !satisfied {
			continue
		}
		if bestID == "" || need < bestWait {
			bestID, bestWait = id, need
		}
	}
	if bestID == "" {
		return "", 0, false, fmt.Errorf("core: no submittable dependency for %s (concurrent start in progress?)", target)
	}
	if bestWait > 0 {
		return "", bestWait, false, nil
	}
	dm.submitting[bestID] = true
	return bestID, 0, false, nil
}

// submitConfig submits one configuration's application, rescuing it from
// the GC cancellation queue if it was pending there.
func (dm *depManager) submitConfig(id string) error {
	dm.mu.Lock()
	cfg := dm.configs[id]
	if t, queued := dm.gcTimers[id]; queued {
		// Resurrection: the app is still running and about to be reused —
		// drop the pending cancellation instead of restarting it (§4.4).
		t.Stop()
		delete(dm.gcTimers, id)
		delete(dm.submitting, id)
		dm.mu.Unlock()
		return nil
	}
	dm.mu.Unlock()

	job, err := dm.svc.submitInternal(cfg.AppName, cfg.Params, id)

	dm.mu.Lock()
	delete(dm.submitting, id)
	if err == nil {
		dm.running[id] = job
		dm.jobToConfig[job] = id
		dm.submittedAt[id] = dm.svc.clock.Now()
	}
	dm.mu.Unlock()
	return err
}

// StopApp requests cancellation of a configuration's job. If the target
// feeds another running application the request fails, preventing
// starvation. Otherwise the target is cancelled and every application
// that fed it (directly or transitively) becomes a garbage-collection
// candidate: GC-able, unused, not explicitly submitted apps are enqueued
// for cancellation after their GC timeout (§4.4).
func (s *Service) StopApp(configID string) error {
	dm := s.deps
	dm.mu.Lock()
	job, running := dm.running[configID]
	if !running {
		dm.mu.Unlock()
		return fmt.Errorf("core: app config %q is not running", configID)
	}
	// Starvation check: someone running depends on the target.
	for _, e := range dm.edges {
		if e.to != configID {
			continue
		}
		if _, up := dm.running[e.from]; up {
			dm.mu.Unlock()
			return fmt.Errorf("core: cannot cancel %s: running application %s depends on it", configID, e.from)
		}
	}
	dm.clearRunningLocked(configID, job)
	dm.mu.Unlock()

	err := s.cancelInternal(job, configID)
	s.recordActuation("StopApp", configID, err)
	if err != nil {
		return err
	}
	dm.collectGarbageFrom(configID)
	return nil
}

// collectGarbageFrom enqueues GC-eligible feeders of the cancelled config.
func (dm *depManager) collectGarbageFrom(cancelled string) {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	for _, e := range dm.edges {
		if e.from != cancelled {
			continue
		}
		dm.maybeEnqueueGCLocked(e.to)
	}
}

func (dm *depManager) maybeEnqueueGCLocked(id string) {
	cfg, ok := dm.configs[id]
	if !ok {
		return
	}
	if _, running := dm.running[id]; !running {
		return
	}
	if _, queued := dm.gcTimers[id]; queued {
		return
	}
	if !cfg.GarbageCollectable || dm.explicit[id] {
		return
	}
	for _, e := range dm.edges {
		if e.to == id {
			if _, up := dm.running[e.from]; up {
				return // still feeding someone
			}
		}
	}
	dm.gcTimers[id] = dm.svc.clock.AfterFunc(cfg.GCTimeout, func() { dm.gcFire(id) })
}

// gcFire runs when a GC timeout elapses: it re-validates eligibility and
// cancels the application, then re-evaluates its own feeders.
func (dm *depManager) gcFire(id string) {
	dm.mu.Lock()
	delete(dm.gcTimers, id)
	job, running := dm.running[id]
	if !running {
		dm.mu.Unlock()
		return
	}
	for _, e := range dm.edges {
		if e.to == id {
			if _, up := dm.running[e.from]; up {
				dm.mu.Unlock()
				return // reused since enqueued
			}
		}
	}
	dm.clearRunningLocked(id, job)
	dm.mu.Unlock()

	if err := dm.svc.cancelInternal(job, id); err != nil {
		dm.svc.cfg.Logf("orca %s: gc cancel %s: %v", dm.svc.cfg.Name, id, err)
		return
	}
	dm.collectGarbageFrom(id)
}

func (dm *depManager) clearRunningLocked(id string, job ids.JobID) {
	delete(dm.running, id)
	delete(dm.jobToConfig, job)
	delete(dm.submittedAt, id)
	delete(dm.explicit, id)
	if t, ok := dm.gcTimers[id]; ok {
		t.Stop()
		delete(dm.gcTimers, id)
	}
}

// noteJobCancelled keeps the dependency view consistent when a managed
// job is cancelled directly (outside StopApp); it returns the config id
// the job belonged to, if any.
func (dm *depManager) noteJobCancelled(job ids.JobID) string {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	id, ok := dm.jobToConfig[job]
	if !ok {
		return ""
	}
	dm.clearRunningLocked(id, job)
	return id
}

// RunningConfigs returns the currently running configurations and their
// job ids.
func (s *Service) RunningConfigs() map[string]ids.JobID {
	dm := s.deps
	dm.mu.Lock()
	defer dm.mu.Unlock()
	out := make(map[string]ids.JobID, len(dm.running))
	for id, job := range dm.running {
		out[id] = job
	}
	return out
}

// PendingGC returns the configuration ids currently queued for garbage
// collection.
func (s *Service) PendingGC() []string {
	dm := s.deps
	dm.mu.Lock()
	defer dm.mu.Unlock()
	out := make([]string, 0, len(dm.gcTimers))
	for id := range dm.gcTimers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
