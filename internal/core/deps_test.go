package core

import (
	"strings"
	"testing"
	"time"

	"streamorca/internal/ids"
	"streamorca/internal/ops"
)

// figure7 registers the paper's Figure 7 application set: four source
// applications (fb, tw, fox, msnbc), sn depending on fb and tw with a
// 20 s uptime requirement, and all depending on all four sources with an
// 80 s uptime requirement. fox is not garbage collectable; every other
// application is, with a 30 s GC timeout.
func figure7(t *testing.T, h *harness) {
	t.Helper()
	for _, name := range []string{"fb", "tw", "fox", "msnbc", "sn", "all"} {
		ops.ResetCollector("f7-" + name)
		if err := h.svc.RegisterApplication(simpleApp(t, name, "f7-"+name, "0")); err != nil {
			t.Fatal(err)
		}
		gc := name != "fox"
		if err := h.svc.RegisterAppConfig(AppConfig{
			ID: name, AppName: name, GarbageCollectable: gc, GCTimeout: 30 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustDep := func(from, to string, up time.Duration) {
		t.Helper()
		if err := h.svc.RegisterDependency(from, to, up); err != nil {
			t.Fatal(err)
		}
	}
	mustDep("sn", "fb", 20*time.Second)
	mustDep("sn", "tw", 20*time.Second)
	for _, src := range []string{"fb", "tw", "fox", "msnbc"} {
		mustDep("all", src, 80*time.Second)
	}
}

// startAppAsync runs StartApp on a goroutine and returns a channel with
// its result.
func startAppAsync(h *harness, id string) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- h.svc.StartApp(id) }()
	return ch
}

func running(h *harness, id string) bool {
	_, ok := h.svc.RunningConfigs()[id]
	return ok
}

func TestRegisterAppConfigValidation(t *testing.T) {
	h := newHarness(t)
	if err := h.svc.RegisterAppConfig(AppConfig{ID: "", AppName: "x"}); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := h.svc.RegisterAppConfig(AppConfig{ID: "a", AppName: "unregistered"}); err == nil {
		t.Fatal("unregistered app accepted")
	}
	if err := h.svc.RegisterApplication(simpleApp(t, "App", "rc", "0")); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.RegisterAppConfig(AppConfig{ID: "a", AppName: "App"}); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.RegisterAppConfig(AppConfig{ID: "a", AppName: "App"}); err == nil {
		t.Fatal("duplicate config accepted")
	}
}

func TestRegisterDependencyValidation(t *testing.T) {
	h := newHarness(t)
	if err := h.svc.RegisterApplication(simpleApp(t, "App", "rd", "0")); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := h.svc.RegisterAppConfig(AppConfig{ID: id, AppName: "App"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.svc.RegisterDependency("ghost", "a", 0); err == nil {
		t.Fatal("unknown from accepted")
	}
	if err := h.svc.RegisterDependency("a", "ghost", 0); err == nil {
		t.Fatal("unknown to accepted")
	}
	if err := h.svc.RegisterDependency("a", "a", 0); err == nil {
		t.Fatal("self dependency accepted")
	}
	if err := h.svc.RegisterDependency("a", "b", -time.Second); err == nil {
		t.Fatal("negative uptime accepted")
	}
	if err := h.svc.RegisterDependency("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.RegisterDependency("b", "c", 0); err != nil {
		t.Fatal(err)
	}
	// c -> a would close the cycle a -> b -> c -> a (§4.4: registration
	// error on cycles).
	if err := h.svc.RegisterDependency("c", "a", 0); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle err = %v", err)
	}
}

// TestFigure7SubmissionOrderAndTiming reproduces §4.4's walkthrough:
// submitting `all` starts the four sources immediately, prunes sn, sleeps
// 80 virtual seconds, then submits all.
func TestFigure7SubmissionOrderAndTiming(t *testing.T) {
	h := newHarness(t)
	h.observe(t, NewJobEventScope("jobs"))
	h.start(t)
	figure7(t, h)

	done := startAppAsync(h, "all")
	waitFor(t, "roots submitted", func() bool {
		return running(h, "fb") && running(h, "tw") && running(h, "fox") && running(h, "msnbc")
	})
	if running(h, "sn") {
		t.Fatal("sn submitted although not needed by all")
	}
	if running(h, "all") {
		t.Fatal("all submitted before its uptime requirement")
	}
	// The submission thread sleeps on the manual clock. Advancing less
	// than the requirement must not release it.
	h.clock.BlockUntilWaiters(2) // the pull loop waits too: 2 = it + the StartApp sleeper
	h.clock.Advance(79 * time.Second)
	if running(h, "all") {
		t.Fatal("all submitted after 79s")
	}
	h.clock.BlockUntilWaiters(2) // the pull loop waits too: 2 = it + the StartApp sleeper
	h.clock.Advance(time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !running(h, "all") {
		t.Fatal("all not running after StartApp returned")
	}

	waitFor(t, "job events", func() bool { return h.rec.countKind(KindJobSubmitted) == 5 })
	var order []string
	for _, e := range h.rec.snapshot() {
		if e.kind == KindJobSubmitted {
			order = append(order, e.ctx.(*JobContext).ConfigID)
		}
	}
	// Roots submit in deterministic id order, then the target.
	want := []string{"fb", "fox", "msnbc", "tw", "all"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("submission order = %v, want %v", order, want)
		}
	}
}

// TestFigure7SnSubmitsWithShorterWait checks §4.4's tie-break: sn's 20 s
// requirement is already satisfied once fb and tw have been up for 80 s.
func TestFigure7SnSubmitsWithShorterWait(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	done := startAppAsync(h, "all")
	waitFor(t, "roots", func() bool { return running(h, "fb") && running(h, "tw") })
	h.clock.BlockUntilWaiters(2) // the pull loop waits too: 2 = it + the StartApp sleeper
	h.clock.Advance(80 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// fb and tw have 80s uptime; sn needs only 20s: immediate.
	if err := h.svc.StartApp("sn"); err != nil {
		t.Fatal(err)
	}
	if !running(h, "sn") {
		t.Fatal("sn not running")
	}
}

func TestFigure7SnWaitsTwentySeconds(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	done := startAppAsync(h, "sn")
	waitFor(t, "sn roots", func() bool { return running(h, "fb") && running(h, "tw") })
	if running(h, "sn") || running(h, "fox") || running(h, "msnbc") {
		t.Fatal("pruning failed: unrelated apps submitted or sn early")
	}
	h.clock.BlockUntilWaiters(2) // the pull loop waits too: 2 = it + the StartApp sleeper
	h.clock.Advance(20 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !running(h, "sn") {
		t.Fatal("sn not running after uptime wait")
	}
}

func TestStarvationPrevention(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	done := startAppAsync(h, "sn")
	waitFor(t, "roots", func() bool { return running(h, "fb") && running(h, "tw") })
	h.clock.BlockUntilWaiters(2) // the pull loop waits too: 2 = it + the StartApp sleeper
	h.clock.Advance(20 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// fb feeds the running sn: cancelling it must fail (§4.4).
	err := h.svc.StopApp("fb")
	if err == nil || !strings.Contains(err.Error(), "depends on it") {
		t.Fatalf("StopApp(fb) = %v", err)
	}
	if !running(h, "fb") {
		t.Fatal("fb cancelled despite starvation check")
	}
}

func TestGarbageCollectionWithTimeoutsAndNonGCable(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	done := startAppAsync(h, "all")
	waitFor(t, "roots", func() bool { return running(h, "fox") })
	h.clock.BlockUntilWaiters(2) // the pull loop waits too: 2 = it + the StartApp sleeper
	h.clock.Advance(80 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if err := h.svc.StopApp("all"); err != nil {
		t.Fatal(err)
	}
	if running(h, "all") {
		t.Fatal("all still running")
	}
	// fb, tw, msnbc are GC candidates; fox is not GC-able.
	pending := h.svc.PendingGC()
	if len(pending) != 3 || pending[0] != "fb" || pending[1] != "msnbc" || pending[2] != "tw" {
		t.Fatalf("PendingGC = %v", pending)
	}
	if !running(h, "fb") || !running(h, "fox") {
		t.Fatal("candidates cancelled before their timeout")
	}
	// Fire the GC timeouts.
	h.clock.Advance(30 * time.Second)
	waitFor(t, "gc cancellations", func() bool {
		return !running(h, "fb") && !running(h, "tw") && !running(h, "msnbc")
	})
	if !running(h, "fox") {
		t.Fatal("non-GC-able fox cancelled")
	}
	if len(h.svc.PendingGC()) != 0 {
		t.Fatalf("PendingGC = %v", h.svc.PendingGC())
	}
}

func TestGCResurrection(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	// Bring up sn (and fb, tw).
	done := startAppAsync(h, "sn")
	waitFor(t, "roots", func() bool { return running(h, "fb") && running(h, "tw") })
	h.clock.BlockUntilWaiters(2) // the pull loop waits too: 2 = it + the StartApp sleeper
	h.clock.Advance(20 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	snJob := h.svc.RunningConfigs()["sn"]
	fbJob := h.svc.RunningConfigs()["fb"]

	if err := h.svc.StopApp("sn"); err != nil {
		t.Fatal(err)
	}
	if got := h.svc.PendingGC(); len(got) != 2 {
		t.Fatalf("PendingGC = %v", got)
	}
	// Restart sn before the GC timeout: fb and tw are rescued from the
	// cancellation queue without being restarted (§4.4).
	if err := h.svc.StartApp("sn"); err != nil {
		t.Fatal(err)
	}
	if got := h.svc.PendingGC(); len(got) != 0 {
		t.Fatalf("PendingGC after resurrection = %v", got)
	}
	if h.svc.RunningConfigs()["fb"] != fbJob {
		t.Fatal("fb was restarted instead of rescued")
	}
	if h.svc.RunningConfigs()["sn"] == snJob {
		t.Fatal("sn job id unchanged after restart")
	}
	// The rescued apps survive an elapsed timeout.
	h.clock.Advance(time.Hour)
	if !running(h, "fb") || !running(h, "tw") {
		t.Fatal("rescued app cancelled by stale timer")
	}
}

func TestStopAppErrors(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	if err := h.svc.StopApp("sn"); err == nil {
		t.Fatal("stopping a non-running config succeeded")
	}
	if err := h.svc.StartApp("ghost"); err == nil {
		t.Fatal("starting an unknown config succeeded")
	}
}

func TestDirectCancelKeepsDependencyViewConsistent(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	if err := h.svc.StartApp("fb"); err != nil {
		t.Fatal(err)
	}
	job := h.svc.RunningConfigs()["fb"]
	if job == ids.InvalidJob {
		t.Fatal("fb has no job")
	}
	// Cancel through the generic actuation rather than StopApp.
	if err := h.svc.CancelJob(job); err != nil {
		t.Fatal(err)
	}
	if running(h, "fb") {
		t.Fatal("dependency manager still lists fb running")
	}
	// fb can be started again afterwards.
	if err := h.svc.StartApp("fb"); err != nil {
		t.Fatal(err)
	}
	if !running(h, "fb") {
		t.Fatal("fb not running after restart")
	}
}

func TestStartAppIdempotentWhenRunning(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	if err := h.svc.StartApp("fb"); err != nil {
		t.Fatal(err)
	}
	job := h.svc.RunningConfigs()["fb"]
	if err := h.svc.StartApp("fb"); err != nil {
		t.Fatal(err)
	}
	if h.svc.RunningConfigs()["fb"] != job {
		t.Fatal("running target resubmitted")
	}
}

func TestGCFireSkipsReusedApp(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	figure7(t, h)
	// sn up, then stopped: fb/tw queued.
	done := startAppAsync(h, "sn")
	waitFor(t, "roots", func() bool { return running(h, "fb") && running(h, "tw") })
	h.clock.BlockUntilWaiters(2) // the pull loop waits too: 2 = it + the StartApp sleeper
	h.clock.Advance(20 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := h.svc.StopApp("sn"); err != nil {
		t.Fatal(err)
	}
	// Restart sn: rescues fb/tw. A later timeout tick must not cancel.
	if err := h.svc.StartApp("sn"); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(31 * time.Second)
	if !running(h, "fb") || !running(h, "tw") || !running(h, "sn") {
		t.Fatalf("configs = %v", h.svc.RunningConfigs())
	}
}
