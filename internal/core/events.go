// Package core implements the paper's contribution: the orchestrator.
//
// An orchestrator has two halves (§3). The ORCA logic is user code — a
// set of Routines built from typed subscriptions (OnPEFailure,
// OnOperatorMetric, ...) that pair each event scope with its handler,
// declared in a Setup that returns errors instead of panicking and
// composed with guard combinators (Threshold, SuppressFor, OncePerEpoch,
// ...) for the cross-cutting activation logic. The ORCA service is the
// runtime half: it maintains an in-memory stream graph for every managed
// application, pulls metrics from SRM on a configurable interval, receives
// failure notifications pushed by SAM, matches everything against the
// registered subscopes, and delivers events one at a time with a context
// rich enough to disambiguate the logical and physical views of the
// application. The service also manages application sets with dependency
// relations (§4.4): automatic submission with uptime requirements,
// starvation-safe cancellation, and garbage collection of unused jobs.
package core

import (
	"time"

	"streamorca/internal/ids"
	"streamorca/internal/metrics"
)

// EventKind enumerates the event types the ORCA service can deliver.
type EventKind int

// Event kinds (§4.1: service-generated events — start, job submission,
// job cancellation, timer — plus events sourced from the platform:
// metrics, failures, and user events raised through the command tool).
const (
	KindOrcaStart EventKind = iota + 1
	KindOperatorMetric
	KindPEMetric
	KindPortMetric
	KindPEFailure
	KindHostFailure
	KindJobSubmitted
	KindJobCancelled
	KindTimer
	KindUserEvent
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case KindOrcaStart:
		return "orcaStart"
	case KindOperatorMetric:
		return "operatorMetric"
	case KindPEMetric:
		return "peMetric"
	case KindPortMetric:
		return "portMetric"
	case KindPEFailure:
		return "peFailure"
	case KindHostFailure:
		return "hostFailure"
	case KindJobSubmitted:
		return "jobSubmitted"
	case KindJobCancelled:
		return "jobCancelled"
	case KindTimer:
		return "timer"
	case KindUserEvent:
		return "userEvent"
	default:
		return "unknown"
	}
}

// OrcaStartContext accompanies the start notification — the only event
// that is always in scope (§4.1).
type OrcaStartContext struct {
	// Name is the orchestrator's registered name.
	Name string
	// At is the service start time.
	At time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// OperatorMetricContext describes one operator metric observation. Epoch
// is the logical clock shared by all metrics of one SRM pull round
// (§4.2), letting handlers decide whether two metrics were measured
// together.
type OperatorMetricContext struct {
	Job          ids.JobID
	App          string
	InstanceName string // fully qualified operator instance name
	OperatorKind string
	PE           ids.PEID
	Metric       string
	Custom       bool
	Value        int64
	Epoch        uint64
	At           time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// PEMetricContext describes one PE-scoped metric observation.
type PEMetricContext struct {
	Job    ids.JobID
	App    string
	PE     ids.PEID
	Metric string
	Value  int64
	Epoch  uint64
	At     time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// PortMetricContext describes one operator-port metric observation.
type PortMetricContext struct {
	Job          ids.JobID
	App          string
	InstanceName string
	OperatorKind string
	PE           ids.PEID
	Port         int
	Dir          metrics.Direction
	Metric       string
	Value        int64
	Epoch        uint64
	At           time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// PEFailureContext describes a PE crash pushed from SAM. All failures
// sharing a cause and detection timestamp (e.g. one host failure killing
// several PEs) carry the same Epoch (§4.2).
type PEFailureContext struct {
	PE        ids.PEID
	Job       ids.JobID
	App       string
	Host      string
	Reason    string
	Operators []string // fused operators resident in the failed PE
	Epoch     uint64
	At        time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// HostFailureContext describes a detected host failure. Its Epoch matches
// the epoch of the PE failure events the same incident produced.
type HostFailureContext struct {
	Host  string
	Epoch uint64
	At    time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// JobContext accompanies job submission and cancellation events. ConfigID
// names the application configuration (§4.4) when the job was managed by
// the dependency manager; it is empty for direct submissions.
type JobContext struct {
	Job      ids.JobID
	App      string
	ConfigID string
	// Cancelled distinguishes the two event kinds sharing this context:
	// false for a submission, true for a cancellation — so a single
	// OnJobEvent subscription covering both directions can tell them
	// apart without registering one scope per direction.
	Cancelled bool
	At        time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// TimerContext accompanies timer-expiration events.
type TimerContext struct {
	Name string
	At   time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// UserEventContext accompanies user-generated events raised through the
// command interface (§4.1).
type UserEventContext struct {
	Name    string
	Payload map[string]string
	At      time.Time
	// TxID is the event's delivery transaction id — a per-service,
	// monotonically increasing sequence assigned at delivery (§7's
	// reliable-delivery extension). Actuations invoked from the handler
	// are journalled under this id.
	TxID uint64
}

// eventData is the neutral representation the scope matcher operates on;
// ctx holds the typed context delivered to the handler.
type eventData struct {
	kind         EventKind
	job          ids.JobID
	app          string
	operator     string
	operatorKind string
	pe           ids.PEID
	host         string
	port         int
	dir          metrics.Direction
	metric       string
	custom       bool
	name         string // timer or user event name
	ctx          any
}

// delivered is one queued event with the subscope keys it matched.
type delivered struct {
	data   *eventData
	scopes []string
}
