package core

import (
	"testing"

	"streamorca/internal/adl"
	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/ops"
)

// TestHostFailureRestartRelocatesPE: when a PE's host dies, RestartPE
// re-places the PE onto a surviving host of the pool and the stream graph
// reflects the new placement.
func TestHostFailureRestartRelocatesPE(t *testing.T) {
	h := newHarness(t, "h1", "h2")
	ops.ResetCollector("rel")
	app := simpleApp(t, "Rel", "rel", "0")
	// Pin both PEs to h1 initially via an explicit pool listing both
	// hosts but ordered so h1 wins the first placements.
	app.HostPools = []adl.HostPool{{Name: "pool", Hosts: []string{"h1", "h2"}}}
	for i := range app.PEs {
		app.PEs[i].Pool = "pool"
	}
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	h.rec.onStart = func(svc *Service) {
		_ = svc.RegisterEventScope(NewPEFailureScope("pf").AddApplicationFilter("Rel"))
		_ = svc.RegisterEventScope(NewHostFailureScope("hf"))
	}
	h.start(t)
	job, err := h.svc.SubmitApplication("Rel", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flow", func() bool { return ops.Collector("rel").Len() > 2 })
	g, _ := h.svc.Graph(job)

	// Find a PE on h1 (placement spreads, so at least one is there).
	var victim ids.PEID
	var victimHost string
	for _, pe := range g.PEIDs() {
		host, _ := g.HostOfPE(pe)
		if host == "h1" {
			victim, victimHost = pe, host
			break
		}
	}
	if victim == ids.InvalidPE {
		t.Fatalf("no PE on h1; placement: %v", g.PEIDs())
	}
	_ = victimHost

	if err := h.inst.Cluster.KillHost("h1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failure events", func() bool { return h.rec.countKind(KindPEFailure) >= 1 })

	// Restart: must land on h2, the only surviving host.
	if err := h.svc.RestartPE(victim); err != nil {
		t.Fatal(err)
	}
	host, ok := g.HostOfPE(victim)
	if !ok || host != "h2" {
		t.Fatalf("relocated host = %q, %v", host, ok)
	}
	info, _ := g.PE(victim)
	if info.State != "running" {
		t.Fatalf("state = %q", info.State)
	}
	// Traffic resumes once every crashed PE is restarted.
	for _, pe := range g.PEIDs() {
		if inf, _ := g.PE(pe); inf.State == "crashed" {
			if err := h.svc.RestartPE(pe); err != nil {
				t.Fatal(err)
			}
		}
	}
	n := ops.Collector("rel").Len()
	waitFor(t, "flow after relocation", func() bool { return ops.Collector("rel").Len() > n })
}

// TestRestartUnderTraffic hammers restart while tuples flow to catch
// wiring races: the pipeline must keep making progress after each of
// several rapid restarts of the middle PE.
func TestRestartUnderTraffic(t *testing.T) {
	h := newHarness(t)
	ops.ResetCollector("rut")
	app := pipelineApp(t, "RUT", "rut")
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	h.start(t)
	job, err := h.svc.SubmitApplication("RUT", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.svc.Graph(job)
	midPE, ok := g.PEOfOperator("mid")
	if !ok {
		t.Fatal("no mid PE")
	}
	waitFor(t, "initial flow", func() bool { return ops.Collector("rut").Len() > 5 })
	for i := 0; i < 5; i++ {
		if err := h.svc.KillPE(midPE, "stress"); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "crash observed", func() bool {
			info, _ := g.PE(midPE)
			return info.State == "crashed"
		})
		if err := h.svc.RestartPE(midPE); err != nil {
			t.Fatal(err)
		}
		n := ops.Collector("rut").Len()
		waitFor(t, "flow resumed", func() bool { return ops.Collector("rut").Len() > n })
	}
}

// pipelineApp builds src -> mid -> sink across three PEs with an
// unbounded source.
func pipelineApp(t *testing.T, name, collector string) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	// No period: the harness clock is manual, so a sleeping source would
	// stall; the bounded queues provide backpressure instead.
	src := b.AddOperator("src", ops.KindBeacon).Out(intS).Param("count", "0")
	mid := b.AddOperator("mid", ops.KindFunctor).In(intS).Out(intS).Param("addInt", "seq:1")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(intS).Param("collectorId", collector)
	b.Connect(src, 0, mid, 0)
	b.Connect(mid, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}
