package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/tuple"
)

// TestHostFailureRestartRelocatesPE: when a PE's host dies, RestartPE
// re-places the PE onto a surviving host of the pool and the stream graph
// reflects the new placement.
func TestHostFailureRestartRelocatesPE(t *testing.T) {
	h := newHarness(t, "h1", "h2")
	ops.ResetCollector("rel")
	app := simpleApp(t, "Rel", "rel", "0")
	// Pin both PEs to h1 initially via an explicit pool listing both
	// hosts but ordered so h1 wins the first placements.
	app.HostPools = []adl.HostPool{{Name: "pool", Hosts: []string{"h1", "h2"}}}
	for i := range app.PEs {
		app.PEs[i].Pool = "pool"
	}
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	h.observe(t,
		NewPEFailureScope("pf").AddApplicationFilter("Rel"),
		NewHostFailureScope("hf"))
	h.start(t)
	job, err := h.svc.SubmitApplication("Rel", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flow", func() bool { return ops.Collector("rel").Len() > 2 })
	g, _ := h.svc.Graph(job)

	// Find a PE on h1 (placement spreads, so at least one is there).
	var victim ids.PEID
	var victimHost string
	for _, pe := range g.PEIDs() {
		host, _ := g.HostOfPE(pe)
		if host == "h1" {
			victim, victimHost = pe, host
			break
		}
	}
	if victim == ids.InvalidPE {
		t.Fatalf("no PE on h1; placement: %v", g.PEIDs())
	}
	_ = victimHost

	if err := h.inst.Cluster.KillHost("h1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failure events", func() bool { return h.rec.countKind(KindPEFailure) >= 1 })

	// Restart: must land on h2, the only surviving host.
	if err := h.svc.RestartPE(victim); err != nil {
		t.Fatal(err)
	}
	host, ok := g.HostOfPE(victim)
	if !ok || host != "h2" {
		t.Fatalf("relocated host = %q, %v", host, ok)
	}
	info, _ := g.PE(victim)
	if info.State != "running" {
		t.Fatalf("state = %q", info.State)
	}
	// Traffic resumes once every crashed PE is restarted.
	for _, pe := range g.PEIDs() {
		if inf, _ := g.PE(pe); inf.State == "crashed" {
			if err := h.svc.RestartPE(pe); err != nil {
				t.Fatal(err)
			}
		}
	}
	n := ops.Collector("rel").Len()
	waitFor(t, "flow after relocation", func() bool { return ops.Collector("rel").Len() > n })
}

// TestRestartUnderTraffic hammers restart while tuples flow to catch
// wiring races: the pipeline must keep making progress after each of
// several rapid restarts of the middle PE.
func TestRestartUnderTraffic(t *testing.T) {
	h := newHarness(t)
	ops.ResetCollector("rut")
	app := pipelineApp(t, "RUT", "rut")
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	h.start(t)
	job, err := h.svc.SubmitApplication("RUT", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.svc.Graph(job)
	midPE, ok := g.PEOfOperator("mid")
	if !ok {
		t.Fatal("no mid PE")
	}
	waitFor(t, "initial flow", func() bool { return ops.Collector("rut").Len() > 5 })
	for i := 0; i < 5; i++ {
		if err := h.svc.KillPE(midPE, "stress"); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "crash observed", func() bool {
			info, _ := g.PE(midPE)
			return info.State == "crashed"
		})
		if err := h.svc.RestartPE(midPE); err != nil {
			t.Fatal(err)
		}
		n := ops.Collector("rut").Len()
		waitFor(t, "flow resumed", func() bool { return ops.Collector("rut").Len() > n })
	}
}

// stalenessRouter is a minimal checkpoint-aware failover routine: it
// observes every replica's lastCheckpointAgeMs through an OnPEMetric
// subscription and, on a failure of the active replica, promotes the
// backup with the freshest snapshot (replicas without one rank last),
// deduplicated per failure epoch with OncePerEpoch. Failed PEs restart
// after the owning replica's collector quiesced, so the test can pin
// the first post-restart output tuple.
type stalenessRouter struct {
	app      string
	colls    map[ids.JobID]*ops.Collection
	jobs     []ids.JobID
	promoted chan ids.JobID
	restarts chan restartMark

	mu     sync.Mutex
	active ids.JobID
	ages   map[ids.JobID]map[ids.PEID]int64
}

type restartMark struct {
	pe       ids.PEID
	boundary int // collector length once the dead PE's output drained
}

func (p *stalenessRouter) Name() string { return "stalenessRouter" }

func (p *stalenessRouter) Setup(sc *SetupContext) error {
	p.ages = make(map[ids.JobID]map[ids.PEID]int64)
	promote := OncePerEpoch(
		func(ctx *PEFailureContext) uint64 { return ctx.Epoch },
		p.promoteFreshest)
	return sc.Subscribe(
		OnPEMetric(
			NewPEMetricScope("ages").AddApplicationFilter(p.app).
				AddPEMetric(metrics.PECheckpointAgeMs),
			func(ctx *PEMetricContext, act *Actions) error {
				p.mu.Lock()
				m := p.ages[ctx.Job]
				if m == nil {
					m = make(map[ids.PEID]int64)
					p.ages[ctx.Job] = m
				}
				if ctx.Value >= 0 {
					m[ctx.PE] = ctx.Value
				} else {
					delete(m, ctx.PE)
				}
				p.mu.Unlock()
				return nil
			}),
		OnPEFailure(
			NewPEFailureScope("fails").AddApplicationFilter(p.app),
			func(ctx *PEFailureContext, act *Actions) error {
				_ = promote(ctx, act) // ErrSkipped for backup failures
				return p.restartFailed(ctx, act)
			}))
}

// staleness reports a replica's worst observed snapshot age; unknown
// (no snapshot reported) ranks after every known age.
func (p *stalenessRouter) staleness(job ids.JobID) (int64, bool) {
	var worst int64
	known := false
	for _, age := range p.ages[job] {
		if !known || age > worst {
			worst, known = age, true
		}
	}
	return worst, known
}

func (p *stalenessRouter) promoteFreshest(ctx *PEFailureContext, act *Actions) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ctx.Job != p.active {
		return ErrSkipped
	}
	best := ids.InvalidJob
	var bestAge int64
	bestKnown := false
	for _, j := range p.jobs {
		if j == ctx.Job {
			continue
		}
		age, known := p.staleness(j)
		switch {
		case best == ids.InvalidJob && !known:
			best = j
		case known && (!bestKnown || age < bestAge):
			best, bestAge, bestKnown = j, age, true
		}
	}
	if best == ids.InvalidJob {
		return ErrSkipped
	}
	p.active = best
	p.promoted <- best
	return nil
}

func (p *stalenessRouter) restartFailed(ctx *PEFailureContext, act *Actions) error {
	// Drain the dead PE's in-flight output so everything past the
	// boundary comes from the restored container.
	coll := p.colls[ctx.Job]
	stable := coll.Len()
	for i := 0; i < 50; i++ {
		time.Sleep(time.Millisecond)
		if n := coll.Len(); n != stable {
			stable, i = n, 0
		}
	}
	if err := act.RestartPE(ctx.PE); err != nil {
		return err
	}
	p.restarts <- restartMark{pe: ctx.PE, boundary: stable}
	return nil
}

// replicaAggApp builds Beacon -> Aggregate -> CollectSink across three
// PEs with a submission-time collector id, so several replicas of the
// same application write distinct collections.
func replicaAggApp(t *testing.T, name string) *adl.Application {
	t.Helper()
	tickS := tuple.MustSchema(
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "price", Type: tuple.Float},
	)
	outS := tuple.MustSchema(
		tuple.Attribute{Name: "avg", Type: tuple.Float},
		tuple.Attribute{Name: "count", Type: tuple.Int},
	)
	b := compiler.NewApp(name)
	src := b.AddOperator("src", ops.KindBeacon).Out(tickS).Param("count", "0")
	agg := b.AddOperator("agg", ops.KindAggregate).In(tickS).Out(outS).
		Param("window", "10m").Param("valueAttr", "price")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(outS).Param("collectorId", "{{coll}}")
	b.Connect(src, 0, agg, 0)
	b.Connect(agg, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestStalenessRankedFailover is the checkpoint-aware failover e2e: two
// backups hold snapshots of different ages, the active replica dies,
// and the routine promotes the replica with the fresher snapshot — the
// stale one is skipped even though it has the longer uptime — after
// that replica already proved it resumes from restore (its window
// continues past the checkpointed fill, and nStateRestores increments
// on the promoted PE).
func TestStalenessRankedFailover(t *testing.T) {
	h := newStoreHarness(t, ckpt.NewMemStore())
	app := replicaAggApp(t, "SRF")
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	router := &stalenessRouter{
		app:      "SRF",
		colls:    make(map[ids.JobID]*ops.Collection),
		promoted: make(chan ids.JobID, 4),
		restarts: make(chan restartMark, 4),
	}
	// The routine shares the harness service with the recorder routine:
	// run its Setup against a hand-built context, as Compose would.
	if err := router.Setup(&SetupContext{svc: h.svc, routine: router.Name()}); err != nil {
		t.Fatal(err)
	}
	h.start(t)

	collID := func(i int) string { return fmt.Sprintf("srf-%d", i) }
	lastCount := func(coll *ops.Collection) int64 {
		tp, ok := coll.Last()
		if !ok {
			return 0
		}
		return tp.Int("count")
	}
	var jobs []ids.JobID
	for i := 0; i < 3; i++ {
		ops.ResetCollector(collID(i))
		job, err := h.svc.SubmitApplication("SRF", map[string]string{"coll": collID(i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
		router.colls[job] = ops.Collector(collID(i))
	}
	router.mu.Lock()
	router.jobs = append([]ids.JobID(nil), jobs...)
	router.active = jobs[0]
	router.mu.Unlock()

	aggPE := func(job ids.JobID) ids.PEID {
		pe, ok := h.svc.PEOfOperator(job, "agg")
		if !ok {
			t.Fatalf("job %s has no agg PE", job)
		}
		return pe
	}
	for _, j := range jobs {
		coll := router.colls[j]
		waitFor(t, "replica warm", func() bool { return lastCount(coll) >= 30 })
	}

	// Backup 1 snapshots first; ten virtual seconds later backup 2
	// snapshots, crashes, and restores — leaving backup 1 with the stale
	// snapshot and backup 2 with the fresh one plus a proven restore.
	if err := h.svc.CheckpointPE(aggPE(jobs[1])); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(10 * time.Second)
	countAtCkpt := lastCount(router.colls[jobs[2]])
	if err := h.svc.CheckpointPE(aggPE(jobs[2])); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.KillPE(aggPE(jobs[2]), "backup fault"); err != nil {
		t.Fatal(err)
	}
	var mark restartMark
	select {
	case mark = <-router.restarts:
	case <-time.After(10 * time.Second):
		t.Fatal("backup PE never restarted")
	}
	coll2 := router.colls[jobs[2]]
	waitFor(t, "post-restore output", func() bool { return coll2.Len() > mark.boundary })
	if got := coll2.Tuples()[mark.boundary].Int("count"); got <= countAtCkpt {
		t.Fatalf("restored window refilled cold: first post-restart count %d <= checkpointed %d", got, countAtCkpt)
	}

	// One pull round delivers every replica's snapshot age.
	h.inst.FlushMetrics()
	h.svc.PullMetricsNow()
	waitFor(t, "ages observed", func() bool {
		router.mu.Lock()
		defer router.mu.Unlock()
		_, ok1 := router.staleness(jobs[1])
		_, ok2 := router.staleness(jobs[2])
		return ok1 && ok2
	})
	router.mu.Lock()
	staleAge, _ := router.staleness(jobs[1])
	freshAge, _ := router.staleness(jobs[2])
	router.mu.Unlock()
	if staleAge <= freshAge {
		t.Fatalf("staleness inverted: backup1 %dms, backup2 %dms", staleAge, freshAge)
	}

	// Active replica dies: the fresh-snapshot backup must win.
	if err := h.svc.KillPE(aggPE(jobs[0]), "active fault"); err != nil {
		t.Fatal(err)
	}
	select {
	case winner := <-router.promoted:
		if winner != jobs[2] {
			t.Fatalf("promoted %s, want fresh-snapshot replica %s (stale %s must be skipped)",
				winner, jobs[2], jobs[1])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no promotion after active failure")
	}
	c, ok := h.inst.Cluster.PEContainer(aggPE(jobs[2]))
	if !ok {
		t.Fatal("promoted container missing")
	}
	if got := c.PEMetrics().Counter(metrics.PEStateRestores).Value(); got < 1 {
		t.Fatalf("promoted PE nStateRestores = %d, want >= 1", got)
	}
	select {
	case <-router.restarts: // failed active restarted too
	case <-time.After(10 * time.Second):
		t.Fatal("active PE never restarted")
	}
}

// pipelineApp builds src -> mid -> sink across three PEs with an
// unbounded source.
func pipelineApp(t *testing.T, name, collector string) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	// No period: the harness clock is manual, so a sleeping source would
	// stall; the bounded queues provide backpressure instead.
	src := b.AddOperator("src", ops.KindBeacon).Out(intS).Param("count", "0")
	mid := b.AddOperator("mid", ops.KindFunctor).In(intS).Out(intS).Param("addInt", "seq:1")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(intS).Param("collectorId", collector)
	b.Connect(src, 0, mid, 0)
	b.Connect(mid, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}
