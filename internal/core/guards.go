package core

import (
	"errors"
	"sync"
	"time"
)

// This file implements reusable guard combinators: handler wrappers that
// express the cross-cutting activation logic adaptation routines keep
// re-implementing by hand — actuation thresholds (§5.1's ratio test),
// suppression windows (§5.1's 10-minute re-trigger bound), debouncing,
// and per-incident deduplication (§4.2's failure epochs). Each guard
// owns its own state, so policies compose them instead of maintaining
// bespoke mutex-and-timestamp fields.
//
// Firing discipline: a guard considers its inner handler to have fired
// only when it returned nil. ErrSkipped and real errors leave the
// guard's state untouched — a suppression window is not consumed by a
// skipped or failed actuation, so the next delivery may retry.

// ErrSkipped is returned by handlers (and guards) to report that the
// activation condition was not met and no actuation happened. It is not
// a failure: the service does not count it in Stats.HandlerErrors, and
// outer guards treat the invocation as not having fired.
var ErrSkipped = errors.New("core: handler skipped")

// Threshold invokes inner only when observe reports a valid value
// strictly above limit — the paper's actuation-threshold pattern ("the
// unknown/known ratio exceeds 1.0", §5.1). observe runs on every
// delivery, so it can also fold the observation into policy state
// (recording a time series, pairing metrics by epoch) and report
// ok=false while the condition is not yet evaluable.
func Threshold[C any](observe func(*C) (float64, bool), limit float64, inner Handler[C]) Handler[C] {
	return func(ctx *C, act *Actions) error {
		v, ok := observe(ctx)
		if !ok || v <= limit {
			return ErrSkipped
		}
		return inner(ctx, act)
	}
}

// AtLeast is the inclusive variant of Threshold: inner fires when the
// observed value reaches limit (§5.3's "enough new profiles
// accumulated" trigger).
func AtLeast[C any](observe func(*C) (float64, bool), limit float64, inner Handler[C]) Handler[C] {
	return func(ctx *C, act *Actions) error {
		v, ok := observe(ctx)
		if !ok || v < limit {
			return ErrSkipped
		}
		return inner(ctx, act)
	}
}

// SuppressFor bounds re-trigger frequency: after inner fires, further
// deliveries are skipped until d has elapsed on the service clock
// (§5.1's 10-minute suppression). A skipped or failed inner invocation
// does not arm the window.
func SuppressFor[C any](d time.Duration, inner Handler[C]) Handler[C] {
	var mu sync.Mutex
	var last time.Time
	var fired bool
	return func(ctx *C, act *Actions) error {
		now := act.Clock().Now()
		mu.Lock()
		suppressed := fired && now.Sub(last) < d
		mu.Unlock()
		if suppressed {
			return ErrSkipped
		}
		err := inner(ctx, act)
		if err == nil {
			mu.Lock()
			last, fired = now, true
			mu.Unlock()
		}
		return err
	}
}

// Debounce invokes inner only once holds has been true for n consecutive
// deliveries — a health check that must fail repeatedly before the
// routine actuates. A delivery where holds is false resets the streak;
// a successful firing resets it too, so sustained conditions re-fire
// every n deliveries rather than on each one.
func Debounce[C any](n int, holds func(*C) bool, inner Handler[C]) Handler[C] {
	var mu sync.Mutex
	streak := 0
	return func(ctx *C, act *Actions) error {
		mu.Lock()
		if !holds(ctx) {
			streak = 0
			mu.Unlock()
			return ErrSkipped
		}
		streak++
		ready := streak >= n
		mu.Unlock()
		if !ready {
			return ErrSkipped
		}
		err := inner(ctx, act)
		if err == nil {
			mu.Lock()
			streak = 0
			mu.Unlock()
		}
		return err
	}
}

// OncePerEpoch fires inner at most once per event epoch: all failures
// sharing a cause and detection timestamp carry the same epoch (§4.2),
// so a host failure killing several PEs triggers one actuation, not one
// per crashed PE. Only a firing records the epoch — a skipped delivery
// leaves the epoch open for a later event in the same incident.
func OncePerEpoch[C any](epoch func(*C) uint64, inner Handler[C]) Handler[C] {
	var mu sync.Mutex
	var lastFired uint64
	var fired bool
	return func(ctx *C, act *Actions) error {
		e := epoch(ctx)
		mu.Lock()
		dup := fired && e == lastFired
		mu.Unlock()
		if dup {
			return ErrSkipped
		}
		err := inner(ctx, act)
		if err == nil {
			mu.Lock()
			lastFired, fired = e, true
			mu.Unlock()
		}
		return err
	}
}
