package core

import (
	"sync"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/compiler"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

var (
	testEpoch = time.Date(2012, 8, 27, 0, 0, 0, 0, time.UTC)
	intS      = tuple.MustSchema(tuple.Attribute{Name: "seq", Type: tuple.Int})
)

// recorder is an Orchestrator capturing every delivered event in order.
type recorder struct {
	Base
	mu      sync.Mutex
	started int
	events  []recordedEvent
	onStart func(svc *Service)
	onEvent func(svc *Service, kind EventKind, ctx any, scopes []string)
}

type recordedEvent struct {
	kind   EventKind
	ctx    any
	scopes []string
}

func (r *recorder) record(svc *Service, kind EventKind, ctx any, scopes []string) {
	r.mu.Lock()
	r.events = append(r.events, recordedEvent{kind: kind, ctx: ctx, scopes: scopes})
	cb := r.onEvent
	r.mu.Unlock()
	if cb != nil {
		cb(svc, kind, ctx, scopes)
	}
}

func (r *recorder) HandleOrcaStart(svc *Service, ctx *OrcaStartContext) {
	r.mu.Lock()
	r.started++
	r.events = append(r.events, recordedEvent{kind: KindOrcaStart, ctx: ctx})
	cb := r.onStart
	r.mu.Unlock()
	if cb != nil {
		cb(svc)
	}
}

func (r *recorder) HandleOperatorMetric(svc *Service, ctx *OperatorMetricContext, scopes []string) {
	r.record(svc, KindOperatorMetric, ctx, scopes)
}

func (r *recorder) HandlePEMetric(svc *Service, ctx *PEMetricContext, scopes []string) {
	r.record(svc, KindPEMetric, ctx, scopes)
}

func (r *recorder) HandlePortMetric(svc *Service, ctx *PortMetricContext, scopes []string) {
	r.record(svc, KindPortMetric, ctx, scopes)
}

func (r *recorder) HandlePEFailure(svc *Service, ctx *PEFailureContext, scopes []string) {
	r.record(svc, KindPEFailure, ctx, scopes)
}

func (r *recorder) HandleHostFailure(svc *Service, ctx *HostFailureContext, scopes []string) {
	r.record(svc, KindHostFailure, ctx, scopes)
}

func (r *recorder) HandleJobSubmitted(svc *Service, ctx *JobContext, scopes []string) {
	r.record(svc, KindJobSubmitted, ctx, scopes)
}

func (r *recorder) HandleJobCancelled(svc *Service, ctx *JobContext, scopes []string) {
	r.record(svc, KindJobCancelled, ctx, scopes)
}

func (r *recorder) HandleTimer(svc *Service, ctx *TimerContext, scopes []string) {
	r.record(svc, KindTimer, ctx, scopes)
}

func (r *recorder) HandleUserEvent(svc *Service, ctx *UserEventContext, scopes []string) {
	r.record(svc, KindUserEvent, ctx, scopes)
}

// snapshot returns a copy of the recorded events.
func (r *recorder) snapshot() []recordedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]recordedEvent(nil), r.events...)
}

// countKind returns how many events of a kind were recorded.
func (r *recorder) countKind(k EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.kind == k {
			n++
		}
	}
	return n
}

// harness bundles a platform, a manual clock, a service, and a recorder.
type harness struct {
	inst  *platform.Instance
	clock *vclock.Manual
	svc   *Service
	rec   *recorder
}

func newHarness(t *testing.T, hostNames ...string) *harness {
	t.Helper()
	if len(hostNames) == 0 {
		hostNames = []string{"h1"}
	}
	clock := vclock.NewManual(testEpoch)
	specs := make([]platform.HostSpec, len(hostNames))
	for i, n := range hostNames {
		specs[i] = platform.HostSpec{Name: n}
	}
	inst, err := platform.NewInstance(platform.Options{
		Clock:           clock,
		Hosts:           specs,
		MetricsInterval: time.Hour, // tests flush explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	rec := &recorder{}
	svc, err := NewService(Config{
		Name:         "testOrca",
		SAM:          inst.SAM,
		SRM:          inst.SRM,
		Clock:        clock,
		PullInterval: time.Hour, // tests pull explicitly
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return &harness{inst: inst, clock: clock, svc: svc, rec: rec}
}

func (h *harness) start(t *testing.T) {
	t.Helper()
	if err := h.svc.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "start event", func() bool {
		h.rec.mu.Lock()
		defer h.rec.mu.Unlock()
		return h.rec.started == 1
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// figure2App builds the paper's Figure 2 application with real operators:
// two beacons feeding two split-and-merge composite1 instances, each
// ending in a collect sink, partitioned into 3 PEs as in Figure 3.
func figure2App(t *testing.T, name string) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	op1 := b.AddOperator("op1", ops.KindBeacon).Out(intS).Param("count", "10").Colocate("srcs")
	op2 := b.AddOperator("op2", ops.KindBeacon).Out(intS).Param("count", "10").Colocate("srcs")
	mkComp := func(inst string) (*compiler.OpHandle, *compiler.OpHandle) {
		var op3, op6 *compiler.OpHandle
		b.Composite("composite1", inst, func() {
			op3 = b.AddOperator("op3", ops.KindSplit).In(intS).Out(intS, intS).Colocate("srcs")
			op4 := b.AddOperator("op4", ops.KindFunctor).In(intS).Out(intS).Colocate("mid")
			op5 := b.AddOperator("op5", ops.KindFunctor).In(intS).Out(intS).Colocate("mid")
			op6 = b.AddOperator("op6", ops.KindMerge).In(intS, intS).Out(intS).Colocate("mid")
			b.Connect(op3, 0, op4, 0)
			b.Connect(op3, 1, op5, 0)
			b.Connect(op4, 0, op6, 0)
			b.Connect(op5, 0, op6, 1)
		})
		return op3, op6
	}
	in1, out1 := mkComp("c1")
	in2, out2 := mkComp("c2")
	sink1 := b.AddOperator("op7", ops.KindCollectSink).In(intS).
		Param("collectorId", name+"-sink1").Colocate("sinks")
	sink2 := b.AddOperator("op8", ops.KindCollectSink).In(intS).
		Param("collectorId", name+"-sink2").Colocate("sinks")
	b.Connect(op1, 0, in1, 0)
	b.Connect(op2, 0, in2, 0)
	b.Connect(out1, 0, sink1, 0)
	b.Connect(out2, 0, sink2, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseByTag})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// simpleApp builds Beacon -> CollectSink in two PEs.
func simpleApp(t *testing.T, name, collector, count string) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	src := b.AddOperator("src", ops.KindBeacon).Out(intS).Param("count", count)
	sink := b.AddOperator("sink", ops.KindCollectSink).In(intS).Param("collectorId", collector)
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}
