package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

var (
	testEpoch = time.Date(2012, 8, 27, 0, 0, 0, 0, time.UTC)
	intS      = tuple.MustSchema(tuple.Attribute{Name: "seq", Type: tuple.Int})
)

// recorder captures every delivered event in order through recording
// routine subscriptions — the routine-mode successor of the legacy
// Orchestrator-based test recorder. Scopes registered with observe get a
// typed recording handler each; consecutive handler invocations for the
// same delivered event (one event matching several observed scopes)
// coalesce into a single recordedEvent carrying every matched key, which
// preserves the "delivered once, with all matching keys" view the
// assertions take.
type recorder struct {
	mu      sync.Mutex
	started int
	events  []recordedEvent
	// onEvent runs on every recording-handler invocation, inside
	// delivery; scopes carries the single key that invocation served.
	onEvent func(svc *Service, kind EventKind, ctx any, scopes []string)
}

type recordedEvent struct {
	kind   EventKind
	ctx    any
	scopes []string
}

// routine returns the Routine backing the recorder: its Setup subscribes
// the start handler; event scopes join via observe.
func (r *recorder) routine() Routine {
	return NewRoutine("recorder", func(sc *SetupContext) error {
		return sc.Subscribe(OnStart(func(ctx *OrcaStartContext, act *Actions) error {
			r.mu.Lock()
			r.started++
			r.events = append(r.events, recordedEvent{kind: KindOrcaStart, ctx: ctx})
			r.mu.Unlock()
			return nil
		}))
	})
}

// record appends one handler invocation, merging it into the previous
// record when it reports the same delivered event under another key.
func (r *recorder) record(svc *Service, kind EventKind, ctx any, key string) {
	r.mu.Lock()
	if n := len(r.events); n > 0 && r.events[n-1].ctx == ctx {
		r.events[n-1].scopes = append(r.events[n-1].scopes, key)
	} else {
		r.events = append(r.events, recordedEvent{kind: kind, ctx: ctx, scopes: []string{key}})
	}
	cb := r.onEvent
	r.mu.Unlock()
	if cb != nil {
		cb(svc, kind, ctx, []string{key})
	}
}

// observe subscribes a recording handler for each scope — before Start
// or at any later point (subscriptions registered mid-run receive every
// subsequent matching event, like any routine subscription).
func (r *recorder) observe(svc *Service, scopes ...Scope) error {
	sc := &SetupContext{svc: svc, routine: "recorder"}
	for _, scope := range scopes {
		sub, err := r.subscription(scope)
		if err != nil {
			return err
		}
		if err := sc.Subscribe(sub); err != nil {
			return err
		}
	}
	return nil
}

// subscription pairs one scope with its typed recording handler.
func (r *recorder) subscription(scope Scope) (*Subscription, error) {
	switch sc := scope.(type) {
	case *OperatorMetricScope:
		return OnOperatorMetric(sc, func(ctx *OperatorMetricContext, act *Actions) error {
			r.record(act.Service, KindOperatorMetric, ctx, sc.Key())
			return nil
		}), nil
	case *PEMetricScope:
		return OnPEMetric(sc, func(ctx *PEMetricContext, act *Actions) error {
			r.record(act.Service, KindPEMetric, ctx, sc.Key())
			return nil
		}), nil
	case *PortMetricScope:
		return OnPortMetric(sc, func(ctx *PortMetricContext, act *Actions) error {
			r.record(act.Service, KindPortMetric, ctx, sc.Key())
			return nil
		}), nil
	case *PEFailureScope:
		return OnPEFailure(sc, func(ctx *PEFailureContext, act *Actions) error {
			r.record(act.Service, KindPEFailure, ctx, sc.Key())
			return nil
		}), nil
	case *HostFailureScope:
		return OnHostFailure(sc, func(ctx *HostFailureContext, act *Actions) error {
			r.record(act.Service, KindHostFailure, ctx, sc.Key())
			return nil
		}), nil
	case *JobEventScope:
		return OnJobEvent(sc, func(ctx *JobContext, act *Actions) error {
			kind := KindJobSubmitted
			if ctx.Cancelled {
				kind = KindJobCancelled
			}
			r.record(act.Service, kind, ctx, sc.Key())
			return nil
		}), nil
	case *TimerScope:
		return OnTimer(sc, func(ctx *TimerContext, act *Actions) error {
			r.record(act.Service, KindTimer, ctx, sc.Key())
			return nil
		}), nil
	case *UserEventScope:
		return OnUserEvent(sc, func(ctx *UserEventContext, act *Actions) error {
			r.record(act.Service, KindUserEvent, ctx, sc.Key())
			return nil
		}), nil
	default:
		return nil, fmt.Errorf("recorder: unsupported scope type %T", scope)
	}
}

// snapshot returns a copy of the recorded events.
func (r *recorder) snapshot() []recordedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]recordedEvent, len(r.events))
	copy(out, r.events)
	return out
}

// countKind returns how many events of a kind were recorded.
func (r *recorder) countKind(k EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.kind == k {
			n++
		}
	}
	return n
}

// harness bundles a platform, a manual clock, a routine-mode service,
// and a recorder.
type harness struct {
	inst  *platform.Instance
	clock *vclock.Manual
	svc   *Service
	rec   *recorder
}

func newHarness(t *testing.T, hostNames ...string) *harness {
	t.Helper()
	return newStoreHarness(t, nil, hostNames...)
}

// newStoreHarness is newHarness plus an optional checkpoint store on the
// platform.
func newStoreHarness(t *testing.T, store ckpt.Store, hostNames ...string) *harness {
	t.Helper()
	if len(hostNames) == 0 {
		hostNames = []string{"h1"}
	}
	clock := vclock.NewManual(testEpoch)
	specs := make([]platform.HostSpec, len(hostNames))
	for i, n := range hostNames {
		specs[i] = platform.HostSpec{Name: n}
	}
	inst, err := platform.NewInstance(platform.Options{
		Clock:           clock,
		Hosts:           specs,
		MetricsInterval: time.Hour, // tests flush explicitly
		Checkpoint:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	rec := &recorder{}
	svc, err := NewRoutineService(Config{
		Name:         "testOrca",
		SAM:          inst.SAM,
		SRM:          inst.SRM,
		Clock:        clock,
		PullInterval: time.Hour, // tests pull explicitly
	}, rec.routine())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return &harness{inst: inst, clock: clock, svc: svc, rec: rec}
}

// observe registers recording subscriptions for the given scopes.
func (h *harness) observe(t *testing.T, scopes ...Scope) {
	t.Helper()
	if err := h.rec.observe(h.svc, scopes...); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) start(t *testing.T) {
	t.Helper()
	if err := h.svc.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "start event", func() bool {
		h.rec.mu.Lock()
		defer h.rec.mu.Unlock()
		return h.rec.started == 1
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// figure2App builds the paper's Figure 2 application with real operators:
// two beacons feeding two split-and-merge composite1 instances, each
// ending in a collect sink, partitioned into 3 PEs as in Figure 3.
func figure2App(t *testing.T, name string) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	op1 := b.AddOperator("op1", ops.KindBeacon).Out(intS).Param("count", "10").Colocate("srcs")
	op2 := b.AddOperator("op2", ops.KindBeacon).Out(intS).Param("count", "10").Colocate("srcs")
	mkComp := func(inst string) (*compiler.OpHandle, *compiler.OpHandle) {
		var op3, op6 *compiler.OpHandle
		b.Composite("composite1", inst, func() {
			op3 = b.AddOperator("op3", ops.KindSplit).In(intS).Out(intS, intS).Colocate("srcs")
			op4 := b.AddOperator("op4", ops.KindFunctor).In(intS).Out(intS).Colocate("mid")
			op5 := b.AddOperator("op5", ops.KindFunctor).In(intS).Out(intS).Colocate("mid")
			op6 = b.AddOperator("op6", ops.KindMerge).In(intS, intS).Out(intS).Colocate("mid")
			b.Connect(op3, 0, op4, 0)
			b.Connect(op3, 1, op5, 0)
			b.Connect(op4, 0, op6, 0)
			b.Connect(op5, 0, op6, 1)
		})
		return op3, op6
	}
	in1, out1 := mkComp("c1")
	in2, out2 := mkComp("c2")
	sink1 := b.AddOperator("op7", ops.KindCollectSink).In(intS).
		Param("collectorId", name+"-sink1").Colocate("sinks")
	sink2 := b.AddOperator("op8", ops.KindCollectSink).In(intS).
		Param("collectorId", name+"-sink2").Colocate("sinks")
	b.Connect(op1, 0, in1, 0)
	b.Connect(op2, 0, in2, 0)
	b.Connect(out1, 0, sink1, 0)
	b.Connect(out2, 0, sink2, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseByTag})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// simpleApp builds Beacon -> CollectSink in two PEs.
func simpleApp(t *testing.T, name, collector, count string) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	src := b.AddOperator("src", ops.KindBeacon).Out(intS).Param("count", count)
	sink := b.AddOperator("sink", ops.KindCollectSink).In(intS).Param("collectorId", collector)
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}
