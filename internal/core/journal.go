package core

import (
	"fmt"
	"sync"
	"time"
)

// This file implements the paper's §7 fault-tolerance extension: every
// delivered event carries a transaction id, and every actuation performed
// through the ORCA service is journalled together with the transaction id
// of the event whose handler issued it. With the journal, event delivery
// becomes auditable and actuations become replayable: after an
// orchestrator restart, the last journalled transaction id tells exactly
// which event handling completed its side effects.

// ActuationRecord is one journalled actuation.
type ActuationRecord struct {
	// Seq is the journal position (1-based, monotonically increasing).
	Seq uint64
	// TxID is the transaction id of the event being handled when the
	// actuation was issued; 0 when the actuation came from outside a
	// handler (e.g. a background submission thread).
	TxID uint64
	// Action names the actuation (e.g. "SubmitApplication").
	Action string
	// Target describes what was acted on (application, job, PE...).
	Target string
	// Err is the actuation's error message, "" on success.
	Err string
	// At is the actuation time.
	At time.Time
}

// journal stores actuation records; it keeps the most recent maxJournal
// entries.
type journal struct {
	mu      sync.Mutex
	seq     uint64
	entries []ActuationRecord
	limit   int
}

// maxJournal bounds in-memory journal growth.
const maxJournal = 4096

func newJournal() *journal { return &journal{limit: maxJournal} }

func (j *journal) record(txID uint64, action, target string, err error, at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	rec := ActuationRecord{Seq: j.seq, TxID: txID, Action: action, Target: target, At: at}
	if err != nil {
		rec.Err = err.Error()
	}
	j.entries = append(j.entries, rec)
	if len(j.entries) > j.limit {
		j.entries = j.entries[len(j.entries)-j.limit:]
	}
}

func (j *journal) snapshot() []ActuationRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]ActuationRecord(nil), j.entries...)
}

// ActuationJournal returns the recorded actuations, oldest first (up to
// the retention limit).
func (s *Service) ActuationJournal() []ActuationRecord {
	return s.journal.snapshot()
}

// CurrentTxID returns the transaction id of the event currently being
// handled, or 0 outside a handler. ORCA logic can persist it alongside
// its own state to make adaptation decisions replay-safe.
func (s *Service) CurrentTxID() uint64 { return s.currentTx.Load() }

// recordActuation journals one actuation under the current transaction.
func (s *Service) recordActuation(action, target string, err error) {
	s.journal.record(s.currentTx.Load(), action, target, err, s.clock.Now())
}

// assignTx stamps the event's context with the next transaction id and
// returns it.
func (s *Service) assignTx(d *eventData) uint64 {
	tx := s.nextTx.Add(1)
	switch ctx := d.ctx.(type) {
	case *OrcaStartContext:
		ctx.TxID = tx
	case *OperatorMetricContext:
		ctx.TxID = tx
	case *PEMetricContext:
		ctx.TxID = tx
	case *PortMetricContext:
		ctx.TxID = tx
	case *PEFailureContext:
		ctx.TxID = tx
	case *HostFailureContext:
		ctx.TxID = tx
	case *JobContext:
		ctx.TxID = tx
	case *TimerContext:
		ctx.TxID = tx
	case *UserEventContext:
		ctx.TxID = tx
	default:
		panic(fmt.Sprintf("core: unknown context type %T", d.ctx))
	}
	return tx
}
