package core

import (
	"testing"

	"streamorca/internal/compiler"
	"streamorca/internal/ops"
)

// TestTxIDsAreAssignedInDeliveryOrder covers the §7 extension: every
// delivered event carries a monotonically increasing transaction id.
func TestTxIDsAreAssignedInDeliveryOrder(t *testing.T) {
	h := newHarness(t)
	h.observe(t, NewUserEventScope("all"))
	h.start(t)
	for _, n := range []string{"a", "b", "c"} {
		h.svc.RaiseUserEvent(n, nil)
	}
	waitFor(t, "events", func() bool { return h.rec.countKind(KindUserEvent) == 3 })
	var last uint64
	for _, e := range h.rec.snapshot() {
		var tx uint64
		switch ctx := e.ctx.(type) {
		case *OrcaStartContext:
			tx = ctx.TxID
		case *UserEventContext:
			tx = ctx.TxID
		default:
			continue
		}
		if tx <= last {
			t.Fatalf("tx ids not increasing: %d after %d", tx, last)
		}
		last = tx
	}
}

// TestActuationJournalTagsHandlerActions: actuations issued inside an
// event handler are journalled under that event's transaction id;
// actuations from outside carry tx 0.
func TestActuationJournalTagsHandlerActions(t *testing.T) {
	h := newHarness(t)
	ops.ResetCollector("aj")
	if err := h.svc.RegisterApplication(simpleApp(t, "AJ", "aj", "0")); err != nil {
		t.Fatal(err)
	}
	var handledTx uint64
	h.observe(t, NewUserEventScope("all"))
	h.rec.onEvent = func(svc *Service, kind EventKind, ctx any, scopes []string) {
		if kind != KindUserEvent {
			return
		}
		handledTx = ctx.(*UserEventContext).TxID
		if svc.CurrentTxID() != handledTx {
			t.Errorf("CurrentTxID %d != event tx %d", svc.CurrentTxID(), handledTx)
		}
		if _, err := svc.SubmitApplication("AJ", nil); err != nil {
			t.Error(err)
		}
	}
	h.start(t)
	h.svc.RaiseUserEvent("go", nil)
	waitFor(t, "handler ran", func() bool { return h.rec.countKind(KindUserEvent) == 1 })

	// An actuation outside any handler is journalled under tx 0.
	jobs := h.svc.ManagedJobs()
	if len(jobs) != 1 {
		t.Fatalf("managed jobs = %v", jobs)
	}
	if err := h.svc.CancelJob(jobs[0].Job); err != nil {
		t.Fatal(err)
	}

	journal := h.svc.ActuationJournal()
	if len(journal) < 2 {
		t.Fatalf("journal = %+v", journal)
	}
	var sawSubmit, sawCancel bool
	var lastSeq uint64
	for _, rec := range journal {
		if rec.Seq <= lastSeq {
			t.Fatalf("journal sequence not increasing: %+v", journal)
		}
		lastSeq = rec.Seq
		switch rec.Action {
		case "SubmitApplication":
			sawSubmit = true
			if rec.TxID != handledTx || rec.Target != "AJ" || rec.Err != "" {
				t.Fatalf("submit record = %+v (want tx %d)", rec, handledTx)
			}
		case "CancelJob":
			sawCancel = true
			if rec.TxID != 0 || rec.Err != "" {
				t.Fatalf("cancel record = %+v (want tx 0)", rec)
			}
		}
	}
	if !sawSubmit || !sawCancel {
		t.Fatalf("journal missing actions: %+v", journal)
	}
	if h.svc.CurrentTxID() != 0 {
		t.Fatal("CurrentTxID non-zero outside handlers")
	}
}

// TestActuationJournalRecordsFailures: refused actuations are journalled
// with their error, so replay can distinguish attempted from effective
// actions.
func TestActuationJournalRecordsFailures(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	if err := h.svc.CancelJob(424242); err == nil {
		t.Fatal("expected ErrUnmanagedJob")
	}
	journal := h.svc.ActuationJournal()
	if len(journal) != 1 || journal[0].Action != "CancelJob" || journal[0].Err == "" {
		t.Fatalf("journal = %+v", journal)
	}
}

// TestRepartitionApplication covers the §4.3 extension: rewriting the
// registered artifact's partitioning before submission.
func TestRepartitionApplication(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	ops.ResetCollector("rp")
	app := simpleApp(t, "RP", "rp", "8") // FuseNone: 2 PEs
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.RepartitionApplication("RP", compiler.Options{Fusion: compiler.FuseAll}); err != nil {
		t.Fatal(err)
	}
	got, _ := h.svc.RegisteredApplication("RP")
	if len(got.PEs) != 1 {
		t.Fatalf("repartitioned PEs = %d", len(got.PEs))
	}
	// The rewritten application still runs.
	job, err := h.svc.SubmitApplication("RP", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "completion", func() bool { return ops.Collector("rp").Finals() == 1 })
	g, _ := h.svc.Graph(job)
	if len(g.PEIDs()) != 1 {
		t.Fatalf("running PEs = %v", g.PEIDs())
	}
	if err := h.svc.RepartitionApplication("ghost", compiler.Options{}); err == nil {
		t.Fatal("repartition of unknown app succeeded")
	}
	// Both attempts are journalled.
	var n int
	for _, rec := range h.svc.ActuationJournal() {
		if rec.Action == "RepartitionApplication" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("repartition journal entries = %d", n)
	}
}
