package core

import "sync"

// eventQueue is the service's unbounded FIFO. Events are queued in the
// order they were received and handed to the dispatch goroutine one at a
// time, implementing §4.2's delivery discipline.
type eventQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*delivered
	closed bool
}

func newEventQueue() *eventQueue {
	q := &eventQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an event; pushing to a closed queue drops the event.
func (q *eventQueue) push(d *delivered) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, d)
	q.cond.Signal()
}

// pop blocks until an event is available or the queue is closed and
// drained; ok is false in the latter case.
func (q *eventQueue) pop() (*delivered, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	d := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return d, true
}

// depth returns the number of queued events.
func (q *eventQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close wakes the dispatcher; queued events are still drained.
func (q *eventQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
