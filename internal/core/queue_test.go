package core

import (
	"sync"
	"testing"
	"testing/quick"

	"streamorca/internal/ids"
)

func TestEventQueueFIFO(t *testing.T) {
	q := newEventQueue()
	for i := 0; i < 5; i++ {
		q.push(&delivered{scopes: []string{string(rune('a' + i))}})
	}
	if q.depth() != 5 {
		t.Fatalf("depth = %d", q.depth())
	}
	for i := 0; i < 5; i++ {
		d, ok := q.pop()
		if !ok || d.scopes[0] != string(rune('a'+i)) {
			t.Fatalf("pop %d = %v, %v", i, d, ok)
		}
	}
}

func TestEventQueueCloseDrains(t *testing.T) {
	q := newEventQueue()
	q.push(&delivered{})
	q.close()
	if _, ok := q.pop(); !ok {
		t.Fatal("queued event lost on close")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed empty queue returned an event")
	}
	q.push(&delivered{}) // dropped
	if q.depth() != 0 {
		t.Fatal("push after close enqueued")
	}
}

func TestEventQueueBlockingPop(t *testing.T) {
	q := newEventQueue()
	got := make(chan *delivered, 1)
	go func() {
		d, _ := q.pop()
		got <- d
	}()
	want := &delivered{scopes: []string{"x"}}
	q.push(want)
	if d := <-got; d != want {
		t.Fatalf("pop returned %v", d)
	}
}

// TestEventQueueConcurrentProperty: with one consumer and several
// producers, every pushed event is popped exactly once and per-producer
// order is preserved.
func TestEventQueueConcurrentProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) > 8 {
			counts = counts[:8]
		}
		q := newEventQueue()
		total := 0
		for _, c := range counts {
			total += int(c % 32)
		}
		var wg sync.WaitGroup
		for p, c := range counts {
			n := int(c % 32)
			wg.Add(1)
			go func(p, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					q.push(&delivered{data: &eventData{port: p, job: ids.JobID(i)}})
				}
			}(p, n)
		}
		seen := make(map[int]int) // producer -> last index seen
		for i := 0; i < total; i++ {
			d, ok := q.pop()
			if !ok {
				return false
			}
			p := d.data.port
			idx := int(d.data.job)
			if last, ok := seen[p]; ok && idx <= last {
				return false // per-producer order violated
			}
			seen[p] = idx
		}
		wg.Wait()
		return q.depth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
