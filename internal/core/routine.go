package core

import (
	"fmt"
	"strings"
)

// This file implements the composable Routine API — the successor of the
// wide Orchestrator interface. A routine pairs each event scope with its
// handler in one typed expression (OnPEFailure, OnOperatorMetric, ...),
// declares everything in a Setup that returns errors instead of
// panicking, and actuates through the Actions surface its handlers
// receive. Independent routines compose into one service with Compose.

// Routine is the unit of adaptation logic in the composable API: the Go
// analogue of one of the paper's user-written adaptation routines. A
// routine declares its event subscriptions — and performs its initial
// actuations, such as submitting the applications it manages — in Setup.
//
// Service.Start runs every routine's Setup before event delivery begins;
// a Setup error aborts the start and propagates out of Start, so
// misconfiguration (duplicate scope keys, unknown applications, rejected
// submissions) surfaces to the caller instead of panicking inside an
// event handler.
type Routine interface {
	// Name identifies the routine in diagnostics and setup errors.
	Name() string
	// Setup declares subscriptions (sc.Subscribe) and performs initial
	// actuations (sc.Actions()). It runs exactly once, inside
	// Service.Start, before any event is delivered.
	Setup(sc *SetupContext) error
}

// Closer is an optional Routine extension: a routine implementing it
// has Close invoked during Service.Stop, before event delivery shuts
// down, so the actuation surface still works — the place to cancel
// managed jobs, reset stores, or release external resources the
// routine's Setup acquired. Hooks run in reverse setup order; a routine
// needing teardown for closure-local state can register a function with
// SetupContext.OnStop instead.
type Closer interface {
	Close(act *Actions)
}

// routineFunc adapts a bare setup function into a Routine.
type routineFunc struct {
	name  string
	setup func(*SetupContext) error
}

func (r *routineFunc) Name() string                 { return r.name }
func (r *routineFunc) Setup(sc *SetupContext) error { return r.setup(sc) }

// NewRoutine builds a Routine from a name and a setup function — enough
// for stateless policies whose handlers close over local state.
func NewRoutine(name string, setup func(*SetupContext) error) Routine {
	return &routineFunc{name: name, setup: setup}
}

// composite runs several routines as one.
type composite struct {
	name     string
	routines []Routine
}

func (c *composite) Name() string { return c.name }

func (c *composite) Setup(sc *SetupContext) error {
	for _, r := range c.routines {
		child := &SetupContext{svc: sc.svc, routine: r.Name()}
		if err := r.Setup(child); err != nil {
			return fmt.Errorf("routine %q: %w", r.Name(), err)
		}
	}
	return nil
}

// Close implements Closer by delegating to every child that implements
// it, in reverse order — so composing routines keeps their teardown.
func (c *composite) Close(act *Actions) {
	for i := len(c.routines) - 1; i >= 0; i-- {
		if cl, ok := c.routines[i].(Closer); ok {
			cl.Close(act)
		}
	}
}

// Compose bundles several independent routines into one, so a single
// service can run multiple adaptation concerns (e.g. a failover routine
// and a model-recompute routine side by side). Setups run in argument
// order; the first error aborts the remaining ones and propagates. A nil
// routine yields a composite whose Setup reports it, so the mistake
// surfaces as a Start error rather than a panic.
func Compose(routines ...Routine) Routine {
	names := make([]string, len(routines))
	for i, r := range routines {
		if r == nil {
			return NewRoutine("composite", func(*SetupContext) error {
				return fmt.Errorf("core: composed routine %d is nil", i)
			})
		}
		names[i] = r.Name()
	}
	return &composite{name: strings.Join(names, "+"), routines: routines}
}

// SetupContext is handed to Routine.Setup: it registers the routine's
// subscriptions and exposes the actuation surface for initial actions.
type SetupContext struct {
	svc     *Service
	routine string
}

// Routine returns the name of the routine being set up.
func (sc *SetupContext) Routine() string { return sc.routine }

// Actions returns the actuation and inspection surface — the same one
// the routine's handlers receive. Note that StartApp blocks until the
// target configuration is submitted (§4.4); dependency uptime
// requirements are waited out on the service clock.
func (sc *SetupContext) Actions() *Actions { return sc.svc.Actions() }

// OnStop registers a teardown hook for this routine, run exactly once
// inside Service.Stop — in reverse registration order, before event
// delivery shuts down, with the actuation surface still live. It is the
// function-style counterpart of implementing Closer. Hooks do not run
// when Start itself fails: a routine whose Setup errored never finished
// acquiring what the hook would release. A nil fn is ignored.
func (sc *SetupContext) OnStop(fn func(act *Actions)) {
	if fn == nil {
		return
	}
	sc.svc.mu.Lock()
	sc.svc.stopHooks = append(sc.svc.stopHooks, fn)
	sc.svc.mu.Unlock()
}

// Subscribe registers subscriptions built with the On* constructors.
// Scope keys must be unique across the whole service; a duplicate key —
// within this routine, from another routine, or from a directly
// registered scope — is an error, as is a nil scope.
func (sc *SetupContext) Subscribe(subs ...*Subscription) error {
	for _, sub := range subs {
		if sub == nil {
			return fmt.Errorf("core: routine %q: nil subscription", sc.routine)
		}
		if sub.start {
			sc.svc.mu.Lock()
			sub.routine = sc.routine
			sc.svc.startSubs = append(sc.svc.startSubs, sub)
			sc.svc.mu.Unlock()
			continue
		}
		if sub.scope == nil {
			return fmt.Errorf("core: routine %q: subscription with nil scope", sc.routine)
		}
		if err := sc.svc.RegisterEventScope(sub.scope); err != nil {
			return fmt.Errorf("core: routine %q: %w", sc.routine, err)
		}
		sc.svc.mu.Lock()
		sub.routine = sc.routine
		sc.svc.subs[sub.scope.Key()] = sub
		sc.svc.mu.Unlock()
	}
	return nil
}

// Actions is the actuation and inspection surface routine handlers
// receive. It embeds the Service, so every actuation (SubmitApplication,
// RestartPE, CheckpointPE, StartApp, ...), inspection (Graph,
// PEOfOperator, ...), and timer API is available directly; the embedded
// Service field is the escape hatch for anything not yet mirrored here.
type Actions struct {
	*Service
}

// Actions returns the service's actuation surface — the same value the
// routine handlers receive. Useful for driving handlers directly in
// tests and for actuating from outside an event handler.
func (s *Service) Actions() *Actions {
	return s.actions
}

// Handler is a typed event handler: it receives the event context and
// the actuation surface, and returns an error when the reaction failed.
// Returning ErrSkipped reports "condition not met, nothing done" — guards
// treat a skipped invocation as not having fired, and the service does
// not count it as a handler error.
type Handler[C any] func(ctx *C, act *Actions) error

// Subscription pairs one event scope with its typed handler. Build them
// with the On* constructors and register them via SetupContext.Subscribe.
type Subscription struct {
	scope   Scope
	start   bool // OrcaStart subscription: always in scope, no Scope value
	routine string
	invoke  func(s *Service, ctx any) error
}

// newSub wraps a typed handler into a Subscription's untyped invoke.
func newSub[C any](scope Scope, h Handler[C]) *Subscription {
	return &Subscription{scope: scope, invoke: func(s *Service, ctx any) error {
		return h(ctx.(*C), s.Actions())
	}}
}

// OnStart subscribes to the service start notification — the only event
// that is always in scope (§4.1), so it takes no Scope argument. Most
// routines do their start-time work directly in Setup; OnStart is for
// logic that must observe the delivery-ordered start event itself.
func OnStart(h Handler[OrcaStartContext]) *Subscription {
	sub := newSub(nil, h)
	sub.start = true
	return sub
}

// OnOperatorMetric subscribes to operator-scoped metric events.
func OnOperatorMetric(scope *OperatorMetricScope, h Handler[OperatorMetricContext]) *Subscription {
	return newSub(scope, h)
}

// OnPEMetric subscribes to PE-scoped metric events.
func OnPEMetric(scope *PEMetricScope, h Handler[PEMetricContext]) *Subscription {
	return newSub(scope, h)
}

// OnPortMetric subscribes to operator-port metric events.
func OnPortMetric(scope *PortMetricScope, h Handler[PortMetricContext]) *Subscription {
	return newSub(scope, h)
}

// OnPEFailure subscribes to PE crash events.
func OnPEFailure(scope *PEFailureScope, h Handler[PEFailureContext]) *Subscription {
	return newSub(scope, h)
}

// OnHostFailure subscribes to host failure events.
func OnHostFailure(scope *HostFailureScope, h Handler[HostFailureContext]) *Subscription {
	return newSub(scope, h)
}

// OnJobEvent subscribes to job submission/cancellation events; narrow
// the scope with SubmissionsOnly or CancellationsOnly to tell them
// apart, or register one subscription per direction.
func OnJobEvent(scope *JobEventScope, h Handler[JobContext]) *Subscription {
	return newSub(scope, h)
}

// OnTimer subscribes to timer-expiration events.
func OnTimer(scope *TimerScope, h Handler[TimerContext]) *Subscription {
	return newSub(scope, h)
}

// OnUserEvent subscribes to user-raised events.
func OnUserEvent(scope *UserEventScope, h Handler[UserEventContext]) *Subscription {
	return newSub(scope, h)
}
