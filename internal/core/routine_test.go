package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/vclock"
)

// newRoutineHarness boots a platform plus a routine-mode service on a
// manual clock.
func newRoutineHarness(t *testing.T, routines ...Routine) (*platform.Instance, *Service, *vclock.Manual) {
	t.Helper()
	clock := vclock.NewManual(testEpoch)
	inst, err := platform.NewInstance(platform.Options{
		Clock:           clock,
		Hosts:           []platform.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	svc, err := NewRoutineService(Config{
		Name:         "routineOrca",
		SAM:          inst.SAM,
		SRM:          inst.SRM,
		Clock:        clock,
		PullInterval: time.Hour,
	}, routines...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return inst, svc, clock
}

func TestNewRoutineServiceValidation(t *testing.T) {
	h := newHarness(t)
	cfg := Config{Name: "x", SAM: h.inst.SAM, SRM: h.inst.SRM}
	if _, err := NewRoutineService(cfg); err == nil {
		t.Fatal("no routines accepted")
	}
	if _, err := NewRoutineService(cfg, nil); err == nil {
		t.Fatal("nil routine accepted")
	}
	if _, err := NewRoutineService(cfg, NewRoutine("", func(*SetupContext) error { return nil })); err == nil {
		t.Fatal("unnamed routine accepted")
	}
}

// TestRoutineTypedSubscriptionsDispatch covers the tentpole end to end:
// Setup submits an application, subscribes typed handlers (start, job
// events, user events, timers, PE failures), and each handler receives
// its context with a working Actions surface.
func TestRoutineTypedSubscriptionsDispatch(t *testing.T) {
	var mu sync.Mutex
	var startName string
	var submitted []string
	var users []string
	var timers []string
	var failures []string
	restarted := make(chan struct{}, 1)

	r := NewRoutine("probe", func(sc *SetupContext) error {
		if sc.Routine() != "probe" {
			return fmt.Errorf("routine name = %q", sc.Routine())
		}
		return sc.Subscribe(
			OnStart(func(ctx *OrcaStartContext, act *Actions) error {
				mu.Lock()
				startName = ctx.Name
				mu.Unlock()
				return nil
			}),
			OnJobEvent(NewJobEventScope("jobs"), func(ctx *JobContext, act *Actions) error {
				mu.Lock()
				submitted = append(submitted, ctx.App)
				mu.Unlock()
				return nil
			}),
			OnUserEvent(NewUserEventScope("users").AddNameFilter("go"), func(ctx *UserEventContext, act *Actions) error {
				mu.Lock()
				users = append(users, ctx.Name)
				mu.Unlock()
				// Actuate from a handler: start a timer through Actions.
				return act.StartTimer("fromUser", time.Second)
			}),
			OnTimer(NewTimerScope("timers"), func(ctx *TimerContext, act *Actions) error {
				mu.Lock()
				timers = append(timers, ctx.Name)
				mu.Unlock()
				return nil
			}),
			OnPEFailure(NewPEFailureScope("pf").AddApplicationFilter("RT"), func(ctx *PEFailureContext, act *Actions) error {
				mu.Lock()
				failures = append(failures, ctx.Reason)
				mu.Unlock()
				if err := act.RestartPE(ctx.PE); err != nil {
					return err
				}
				restarted <- struct{}{}
				return nil
			}),
		)
	})
	_, svc, clock := newRoutineHarness(t, r)
	ops.ResetCollector("rt")
	if err := svc.RegisterApplication(simpleApp(t, "RT", "rt", "0")); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "start subscription", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return startName == "routineOrca"
	})

	job, err := svc.SubmitApplication("RT", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(submitted) == 1 && submitted[0] == "RT"
	})

	svc.RaiseUserEvent("ignored", nil) // filtered out by the scope
	svc.RaiseUserEvent("go", nil)
	waitFor(t, "user event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(users) == 1
	})
	clock.Advance(time.Second)
	waitFor(t, "timer from handler actuation", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(timers) == 1 && timers[0] == "fromUser"
	})

	g, _ := svc.Graph(job)
	sinkPE, _ := g.PEOfOperator("sink")
	if err := svc.KillPE(sinkPE, "routine fault"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-restarted:
	case <-time.After(10 * time.Second):
		t.Fatal("failure handler never restarted the PE")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(failures) != 1 || failures[0] != "routine fault" {
		t.Fatalf("failures = %v", failures)
	}
}

// TestRoutineSetupErrorAbortsStart pins the satellite bugfix: setup
// failures (unknown application here) propagate out of Service.Start,
// the error names the routine, and the service is cleanly stopped.
func TestRoutineSetupErrorAbortsStart(t *testing.T) {
	r := NewRoutine("broken", func(sc *SetupContext) error {
		_, err := sc.Actions().SubmitApplication("Ghost", nil)
		return err
	})
	_, svc, _ := newRoutineHarness(t, r)
	err := svc.Start()
	if err == nil {
		t.Fatal("Start succeeded despite setup error")
	}
	if !strings.Contains(err.Error(), `routine "broken"`) {
		t.Fatalf("error lacks routine name: %v", err)
	}
	svc.Stop() // must be a safe no-op after the aborted start
	if err := svc.Start(); err == nil {
		t.Fatal("second Start after aborted setup accepted")
	}
}

// TestRoutineSetupDuplicateScopeKey covers the duplicate-key error path
// through Subscribe: the second subscription with the same key fails the
// whole Start.
func TestRoutineSetupDuplicateScopeKey(t *testing.T) {
	r := NewRoutine("dup", func(sc *SetupContext) error {
		return sc.Subscribe(
			OnUserEvent(NewUserEventScope("k"), func(*UserEventContext, *Actions) error { return nil }),
			OnTimer(NewTimerScope("k"), func(*TimerContext, *Actions) error { return nil }),
		)
	})
	_, svc, _ := newRoutineHarness(t, r)
	err := svc.Start()
	if err == nil || !strings.Contains(err.Error(), `"k"`) {
		t.Fatalf("duplicate scope key not rejected: %v", err)
	}
}

// TestComposeRunsRoutinesInOrderAndPrefixesErrors: Compose joins several
// routines into one service; a failing child aborts the rest and its
// name appears in the error chain.
func TestComposeRunsRoutinesInOrder(t *testing.T) {
	var order []string
	mk := func(name string) Routine {
		return NewRoutine(name, func(sc *SetupContext) error {
			order = append(order, name)
			return sc.Subscribe(OnUserEvent(NewUserEventScope(name), func(*UserEventContext, *Actions) error { return nil }))
		})
	}
	composed := Compose(mk("a"), mk("b"), mk("c"))
	if composed.Name() != "a+b+c" {
		t.Fatalf("composite name = %q", composed.Name())
	}
	_, svc, _ := newRoutineHarness(t, composed)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,b,c" {
		t.Fatalf("setup order = %v", order)
	}
}

// TestComposeNilRoutineSurfacesAsSetupError: a nil child must not panic
// at composition time; it fails Start with a descriptive error.
func TestComposeNilRoutineSurfacesAsSetupError(t *testing.T) {
	ok := NewRoutine("fine", func(sc *SetupContext) error { return nil })
	composed := Compose(ok, nil)
	_, svc, _ := newRoutineHarness(t, composed)
	err := svc.Start()
	if err == nil || !strings.Contains(err.Error(), "routine 1 is nil") {
		t.Fatalf("nil composed routine not reported: %v", err)
	}
}

func TestComposeChildErrorNamed(t *testing.T) {
	ok := NewRoutine("fine", func(sc *SetupContext) error { return nil })
	bad := NewRoutine("explodes", func(sc *SetupContext) error { return errors.New("boom") })
	never := NewRoutine("never", func(sc *SetupContext) error {
		t.Error("routine after the failing one was set up")
		return nil
	})
	_, svc, _ := newRoutineHarness(t, Compose(ok, bad, never))
	err := svc.Start()
	if err == nil || !strings.Contains(err.Error(), `routine "explodes"`) || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("composite error = %v", err)
	}
}

// TestRoutineHandlerErrorsCounted: a handler error is logged and counted
// in Stats.HandlerErrors; ErrSkipped is not.
func TestRoutineHandlerErrorsCounted(t *testing.T) {
	r := NewRoutine("errs", func(sc *SetupContext) error {
		return sc.Subscribe(OnUserEvent(NewUserEventScope("u"), func(ctx *UserEventContext, act *Actions) error {
			switch ctx.Name {
			case "fail":
				return errors.New("handler failure")
			case "skip":
				return ErrSkipped
			}
			return nil
		}))
	})
	_, svc, _ := newRoutineHarness(t, r)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	svc.RaiseUserEvent("fail", nil)
	svc.RaiseUserEvent("skip", nil)
	svc.RaiseUserEvent("ok", nil)
	waitFor(t, "events drained", func() bool { return svc.Stats().Delivered >= 4 }) // start + 3
	if got := svc.Stats().HandlerErrors; got != 1 {
		t.Fatalf("HandlerErrors = %d, want 1 (ErrSkipped must not count)", got)
	}
}

// closingRoutine is a Routine with a Closer teardown, for the stop-hook
// tests.
type closingRoutine struct {
	name    string
	setup   func(*SetupContext) error
	onClose func(*Actions)
}

func (c *closingRoutine) Name() string                 { return c.name }
func (c *closingRoutine) Setup(sc *SetupContext) error { return c.setup(sc) }
func (c *closingRoutine) Close(act *Actions)           { c.onClose(act) }

// TestStopHooksRunOnceInReverseOrder: Stop runs OnStop hooks and Closer
// teardowns exactly once, last-registered first, with the actuation
// surface still live; a second Stop does not re-run them.
func TestStopHooksRunOnceInReverseOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	note := func(step string, act *Actions) {
		if act.Stats().QueueDepth < 0 {
			t.Errorf("actuation surface dead during %s", step)
		}
		mu.Lock()
		order = append(order, step)
		mu.Unlock()
	}
	first := NewRoutine("first", func(sc *SetupContext) error {
		sc.OnStop(func(act *Actions) { note("first-stop", act) })
		return nil
	})
	second := &closingRoutine{
		name: "second",
		setup: func(sc *SetupContext) error {
			sc.OnStop(func(act *Actions) { note("second-stop", act) })
			return nil
		},
		onClose: func(act *Actions) { note("second-close", act) },
	}
	_, svc, _ := newRoutineHarness(t, first, second)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	svc.Stop() // idempotent: hooks must not run again
	mu.Lock()
	defer mu.Unlock()
	want := []string{"second-close", "second-stop", "first-stop"}
	if len(order) != len(want) {
		t.Fatalf("hooks ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hooks ran %v, want %v", order, want)
		}
	}
}

// TestStopHooksSkippedOnFailedStart: a Setup error aborts the start
// without running teardown hooks — the routines never finished
// acquiring what the hooks would release.
func TestStopHooksSkippedOnFailedStart(t *testing.T) {
	ran := false
	bad := Compose(
		NewRoutine("acquires", func(sc *SetupContext) error {
			sc.OnStop(func(*Actions) { ran = true })
			return nil
		}),
		NewRoutine("fails", func(sc *SetupContext) error {
			return fmt.Errorf("boom")
		}),
	)
	_, svc, _ := newRoutineHarness(t, bad)
	if err := svc.Start(); err == nil {
		t.Fatal("failed setup did not abort Start")
	}
	svc.Stop()
	if ran {
		t.Fatal("stop hook ran after aborted start")
	}
}

// TestComposeDelegatesClose: composing routines keeps their Closer
// teardowns, run in reverse order.
func TestComposeDelegatesClose(t *testing.T) {
	var mu sync.Mutex
	var order []string
	mk := func(name string) Routine {
		return &closingRoutine{
			name:  name,
			setup: func(*SetupContext) error { return nil },
			onClose: func(*Actions) {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			},
		}
	}
	_, svc, _ := newRoutineHarness(t, Compose(mk("a"), NewRoutine("plain", func(*SetupContext) error { return nil }), mk("b")))
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("composite close order = %v, want [b a]", order)
	}
}

// --- guard combinators ---

// guardActions returns an Actions bound to a manual clock for driving
// guards directly.
func guardActions(t *testing.T) (*Actions, *vclock.Manual) {
	t.Helper()
	h := newHarness(t)
	return h.svc.Actions(), h.clock
}

type obs struct{ v float64 }

func TestThresholdAndAtLeastGuards(t *testing.T) {
	act, _ := guardActions(t)
	var fired int
	inner := func(*obs, *Actions) error { fired++; return nil }
	strict := Threshold(func(o *obs) (float64, bool) { return o.v, o.v >= 0 }, 1.0, inner)

	if err := strict(&obs{v: 1.0}, act); !errors.Is(err, ErrSkipped) {
		t.Fatalf("at-limit value fired strict threshold: %v", err)
	}
	if err := strict(&obs{v: -5}, act); !errors.Is(err, ErrSkipped) {
		t.Fatal("unevaluable observation fired")
	}
	if err := strict(&obs{v: 1.5}, act); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}

	incl := AtLeast(func(o *obs) (float64, bool) { return o.v, true }, 2.0, inner)
	if err := incl(&obs{v: 2.0}, act); err != nil {
		t.Fatal(err)
	}
	if err := incl(&obs{v: 1.9}, act); !errors.Is(err, ErrSkipped) {
		t.Fatal("below-limit value fired AtLeast")
	}
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestSuppressForGuard(t *testing.T) {
	act, clock := guardActions(t)
	var fired int
	failNext := false
	h := SuppressFor(10*time.Minute, func(*obs, *Actions) error {
		if failNext {
			return errors.New("actuation failed")
		}
		fired++
		return nil
	})
	if err := h(&obs{}, act); err != nil || fired != 1 {
		t.Fatalf("first invocation: err=%v fired=%d", err, fired)
	}
	if err := h(&obs{}, act); !errors.Is(err, ErrSkipped) {
		t.Fatal("second invocation not suppressed")
	}
	clock.Advance(10 * time.Minute)
	// A failed actuation must not arm the window...
	failNext = true
	if err := h(&obs{}, act); err == nil || errors.Is(err, ErrSkipped) {
		t.Fatalf("inner error not propagated: %v", err)
	}
	// ...so the immediate retry may fire.
	failNext = false
	if err := h(&obs{}, act); err != nil || fired != 2 {
		t.Fatalf("retry after failure: err=%v fired=%d", err, fired)
	}
}

func TestDebounceGuard(t *testing.T) {
	act, _ := guardActions(t)
	var fired int
	h := Debounce(3, func(o *obs) bool { return o.v > 0 }, func(*obs, *Actions) error {
		fired++
		return nil
	})
	bad, good := &obs{v: 0}, &obs{v: 1}
	for _, o := range []*obs{good, good, bad, good, good} {
		if err := h(o, act); !errors.Is(err, ErrSkipped) {
			t.Fatalf("fired early: %v", err)
		}
	}
	if err := h(good, act); err != nil || fired != 1 {
		t.Fatalf("third consecutive hold: err=%v fired=%d", err, fired)
	}
	// Firing resets the streak.
	if err := h(good, act); !errors.Is(err, ErrSkipped) {
		t.Fatal("streak not reset after firing")
	}
}

func TestOncePerEpochGuard(t *testing.T) {
	act, _ := guardActions(t)
	var fired int
	skipNext := false
	h := OncePerEpoch(func(o *obs) uint64 { return uint64(o.v) }, func(*obs, *Actions) error {
		if skipNext {
			return ErrSkipped
		}
		fired++
		return nil
	})
	e1, e2 := &obs{v: 1}, &obs{v: 2}
	if err := h(e1, act); err != nil || fired != 1 {
		t.Fatalf("first epoch-1 event: err=%v fired=%d", err, fired)
	}
	if err := h(e1, act); !errors.Is(err, ErrSkipped) {
		t.Fatal("second epoch-1 event fired")
	}
	// A skipped inner does not consume the epoch.
	skipNext = true
	if err := h(e2, act); !errors.Is(err, ErrSkipped) {
		t.Fatalf("skip not propagated: %v", err)
	}
	skipNext = false
	if err := h(e2, act); err != nil || fired != 2 {
		t.Fatalf("epoch-2 retry: err=%v fired=%d", err, fired)
	}
}

// TestScopeRegistrationConcurrentWithDispatch is the satellite
// race-detector test: scopes register and unregister from a background
// goroutine while the dispatch loop matches and delivers events.
func TestScopeRegistrationConcurrentWithDispatch(t *testing.T) {
	var handled atomic.Int64
	r := NewRoutine("churn", func(sc *SetupContext) error {
		return sc.Subscribe(OnUserEvent(NewUserEventScope("stable"), func(*UserEventContext, *Actions) error {
			handled.Add(1)
			return nil
		}))
	})
	_, svc, _ := newRoutineHarness(t, r)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}

	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			key := fmt.Sprintf("churn-%d", i%8)
			if err := svc.RegisterEventScope(NewUserEventScope(key)); err == nil {
				svc.UnregisterEventScope(key)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			svc.RaiseUserEvent("e", nil)
		}
	}()
	wg.Wait()
	waitFor(t, "all events drained", func() bool { return handled.Load() == rounds })
}
