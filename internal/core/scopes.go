package core

import (
	"fmt"

	"streamorca/internal/graph"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
)

// Scope is one registered subscope. The ORCA service's event scope is the
// disjunction of all registered subscopes; an event is delivered when it
// matches at least one, and delivered exactly once with the keys of every
// subscope it matched (§4.1/§4.2).
//
// Filter semantics: values added for the same attribute are disjunctive
// (any may match); filters on different attributes are conjunctive (all
// must match); an attribute with no filter matches everything.
type Scope interface {
	// Key returns the developer-assigned subscope key.
	Key() string
	// kind returns the event kind the subscope selects.
	kind() EventKind
	// matches evaluates the subscope against an event, resolving
	// graph-structural filters (composite containment) through the
	// service's stream graph for the event's job.
	matches(d *eventData, g *graph.Graph) bool
	// validate checks the subscope is well-formed at registration time.
	validate() error
}

// structural holds the filters shared by scopes whose events attach to a
// point in the application graph.
type structural struct {
	apps           []string
	compositeTypes []string
	compositeInsts []string
	operatorTypes  []string
	operatorNames  []string
	pes            []ids.PEID
}

func (f *structural) matchStructural(d *eventData, g *graph.Graph) bool {
	if len(f.apps) > 0 && !containsStr(f.apps, d.app) {
		return false
	}
	if len(f.pes) > 0 && !containsPE(f.pes, d.pe) {
		return false
	}
	if len(f.operatorTypes) > 0 && !containsStr(f.operatorTypes, d.operatorKind) {
		return false
	}
	if len(f.operatorNames) > 0 && !containsStr(f.operatorNames, d.operator) {
		return false
	}
	if len(f.compositeTypes) > 0 {
		if g == nil || d.operator == "" {
			return false
		}
		ok := false
		for _, kind := range f.compositeTypes {
			if g.InCompositeType(d.operator, kind) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.compositeInsts) > 0 {
		if g == nil || d.operator == "" {
			return false
		}
		ok := false
		for _, inst := range f.compositeInsts {
			if containsStr(g.CompositeChain(d.operator), inst) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// OperatorMetricScope subscribes to operator-scoped metric events — the
// scope type of the paper's Figure 5.
type OperatorMetricScope struct {
	key string
	structural
	metricNames []string
	customOnly  bool
}

// NewOperatorMetricScope creates a subscope with the given key.
func NewOperatorMetricScope(key string) *OperatorMetricScope {
	return &OperatorMetricScope{key: key}
}

// Key implements Scope.
func (s *OperatorMetricScope) Key() string { return s.key }

func (s *OperatorMetricScope) kind() EventKind { return KindOperatorMetric }

// AddApplicationFilter restricts events to the named applications.
func (s *OperatorMetricScope) AddApplicationFilter(apps ...string) *OperatorMetricScope {
	s.apps = append(s.apps, apps...)
	return s
}

// AddCompositeTypeFilter restricts events to operators residing (at any
// nesting depth) inside composite instances of the named types.
func (s *OperatorMetricScope) AddCompositeTypeFilter(kinds ...string) *OperatorMetricScope {
	s.compositeTypes = append(s.compositeTypes, kinds...)
	return s
}

// AddCompositeInstanceFilter restricts events to operators inside the
// named composite instances.
func (s *OperatorMetricScope) AddCompositeInstanceFilter(insts ...string) *OperatorMetricScope {
	s.compositeInsts = append(s.compositeInsts, insts...)
	return s
}

// AddOperatorTypeFilter restricts events to operators of the named kinds.
func (s *OperatorMetricScope) AddOperatorTypeFilter(kinds ...string) *OperatorMetricScope {
	s.operatorTypes = append(s.operatorTypes, kinds...)
	return s
}

// AddOperatorNameFilter restricts events to the named operator instances.
func (s *OperatorMetricScope) AddOperatorNameFilter(names ...string) *OperatorMetricScope {
	s.operatorNames = append(s.operatorNames, names...)
	return s
}

// AddPEFilter restricts events to operators resident in the given PEs.
func (s *OperatorMetricScope) AddPEFilter(pes ...ids.PEID) *OperatorMetricScope {
	s.pes = append(s.pes, pes...)
	return s
}

// AddOperatorMetric restricts events to the named metrics (built-in names
// like metrics.OpQueueSize, or custom metric names).
func (s *OperatorMetricScope) AddOperatorMetric(names ...string) *OperatorMetricScope {
	s.metricNames = append(s.metricNames, names...)
	return s
}

// CustomMetricsOnly restricts events to operator-defined custom metrics.
func (s *OperatorMetricScope) CustomMetricsOnly() *OperatorMetricScope {
	s.customOnly = true
	return s
}

func (s *OperatorMetricScope) matches(d *eventData, g *graph.Graph) bool {
	if d.kind != KindOperatorMetric {
		return false
	}
	if s.customOnly && !d.custom {
		return false
	}
	if len(s.metricNames) > 0 && !containsStr(s.metricNames, d.metric) {
		return false
	}
	return s.matchStructural(d, g)
}

func (s *OperatorMetricScope) validate() error { return validateKey(s.key) }

// PEMetricScope subscribes to PE-scoped metric events (byte counters,
// restart counts).
type PEMetricScope struct {
	key         string
	apps        []string
	pes         []ids.PEID
	metricNames []string
}

// NewPEMetricScope creates a subscope with the given key.
func NewPEMetricScope(key string) *PEMetricScope { return &PEMetricScope{key: key} }

// Key implements Scope.
func (s *PEMetricScope) Key() string { return s.key }

func (s *PEMetricScope) kind() EventKind { return KindPEMetric }

// AddApplicationFilter restricts events to the named applications.
func (s *PEMetricScope) AddApplicationFilter(apps ...string) *PEMetricScope {
	s.apps = append(s.apps, apps...)
	return s
}

// AddPEFilter restricts events to the given PEs.
func (s *PEMetricScope) AddPEFilter(pes ...ids.PEID) *PEMetricScope {
	s.pes = append(s.pes, pes...)
	return s
}

// AddPEMetric restricts events to the named PE metrics.
func (s *PEMetricScope) AddPEMetric(names ...string) *PEMetricScope {
	s.metricNames = append(s.metricNames, names...)
	return s
}

func (s *PEMetricScope) matches(d *eventData, _ *graph.Graph) bool {
	if d.kind != KindPEMetric {
		return false
	}
	if len(s.apps) > 0 && !containsStr(s.apps, d.app) {
		return false
	}
	if len(s.pes) > 0 && !containsPE(s.pes, d.pe) {
		return false
	}
	return len(s.metricNames) == 0 || containsStr(s.metricNames, d.metric)
}

func (s *PEMetricScope) validate() error { return validateKey(s.key) }

// PortMetricScope subscribes to operator-port metric events — e.g. the
// final-punctuation metric of a sink operator the dynamic-composition use
// case watches (§5.3).
type PortMetricScope struct {
	key string
	structural
	metricNames []string
	dirSet      bool
	dir         metrics.Direction
	ports       []int
}

// NewPortMetricScope creates a subscope with the given key.
func NewPortMetricScope(key string) *PortMetricScope { return &PortMetricScope{key: key} }

// Key implements Scope.
func (s *PortMetricScope) Key() string { return s.key }

func (s *PortMetricScope) kind() EventKind { return KindPortMetric }

// AddApplicationFilter restricts events to the named applications.
func (s *PortMetricScope) AddApplicationFilter(apps ...string) *PortMetricScope {
	s.apps = append(s.apps, apps...)
	return s
}

// AddOperatorTypeFilter restricts events to operators of the named kinds.
func (s *PortMetricScope) AddOperatorTypeFilter(kinds ...string) *PortMetricScope {
	s.operatorTypes = append(s.operatorTypes, kinds...)
	return s
}

// AddOperatorNameFilter restricts events to the named operator instances.
func (s *PortMetricScope) AddOperatorNameFilter(names ...string) *PortMetricScope {
	s.operatorNames = append(s.operatorNames, names...)
	return s
}

// AddCompositeTypeFilter restricts events to operators inside composites
// of the named types.
func (s *PortMetricScope) AddCompositeTypeFilter(kinds ...string) *PortMetricScope {
	s.compositeTypes = append(s.compositeTypes, kinds...)
	return s
}

// AddPortFilter restricts events to the given port indices.
func (s *PortMetricScope) AddPortFilter(ports ...int) *PortMetricScope {
	s.ports = append(s.ports, ports...)
	return s
}

// SetDirection restricts events to input or output ports.
func (s *PortMetricScope) SetDirection(d metrics.Direction) *PortMetricScope {
	s.dirSet = true
	s.dir = d
	return s
}

// AddPortMetric restricts events to the named port metrics.
func (s *PortMetricScope) AddPortMetric(names ...string) *PortMetricScope {
	s.metricNames = append(s.metricNames, names...)
	return s
}

func (s *PortMetricScope) matches(d *eventData, g *graph.Graph) bool {
	if d.kind != KindPortMetric {
		return false
	}
	if s.dirSet && d.dir != s.dir {
		return false
	}
	if len(s.ports) > 0 && !containsInt(s.ports, d.port) {
		return false
	}
	if len(s.metricNames) > 0 && !containsStr(s.metricNames, d.metric) {
		return false
	}
	return s.matchStructural(d, g)
}

func (s *PortMetricScope) validate() error { return validateKey(s.key) }

// PEFailureScope subscribes to PE crash events — Figure 5's second
// subscope.
type PEFailureScope struct {
	key   string
	apps  []string
	pes   []ids.PEID
	hosts []string
}

// NewPEFailureScope creates a subscope with the given key.
func NewPEFailureScope(key string) *PEFailureScope { return &PEFailureScope{key: key} }

// Key implements Scope.
func (s *PEFailureScope) Key() string { return s.key }

func (s *PEFailureScope) kind() EventKind { return KindPEFailure }

// AddApplicationFilter restricts events to failures of the named
// applications' PEs.
func (s *PEFailureScope) AddApplicationFilter(apps ...string) *PEFailureScope {
	s.apps = append(s.apps, apps...)
	return s
}

// AddPEFilter restricts events to the given PEs.
func (s *PEFailureScope) AddPEFilter(pes ...ids.PEID) *PEFailureScope {
	s.pes = append(s.pes, pes...)
	return s
}

// AddHostFilter restricts events to failures detected on the named hosts.
func (s *PEFailureScope) AddHostFilter(hosts ...string) *PEFailureScope {
	s.hosts = append(s.hosts, hosts...)
	return s
}

func (s *PEFailureScope) matches(d *eventData, _ *graph.Graph) bool {
	if d.kind != KindPEFailure {
		return false
	}
	if len(s.apps) > 0 && !containsStr(s.apps, d.app) {
		return false
	}
	if len(s.pes) > 0 && !containsPE(s.pes, d.pe) {
		return false
	}
	return len(s.hosts) == 0 || containsStr(s.hosts, d.host)
}

func (s *PEFailureScope) validate() error { return validateKey(s.key) }

// HostFailureScope subscribes to host failure events.
type HostFailureScope struct {
	key   string
	hosts []string
}

// NewHostFailureScope creates a subscope with the given key.
func NewHostFailureScope(key string) *HostFailureScope { return &HostFailureScope{key: key} }

// Key implements Scope.
func (s *HostFailureScope) Key() string { return s.key }

func (s *HostFailureScope) kind() EventKind { return KindHostFailure }

// AddHostFilter restricts events to the named hosts.
func (s *HostFailureScope) AddHostFilter(hosts ...string) *HostFailureScope {
	s.hosts = append(s.hosts, hosts...)
	return s
}

func (s *HostFailureScope) matches(d *eventData, _ *graph.Graph) bool {
	if d.kind != KindHostFailure {
		return false
	}
	return len(s.hosts) == 0 || containsStr(s.hosts, d.host)
}

func (s *HostFailureScope) validate() error { return validateKey(s.key) }

// JobEventScope subscribes to job submission and/or cancellation events
// the service itself generates (§4.1, §4.4).
type JobEventScope struct {
	key        string
	apps       []string
	submission bool
	cancel     bool
}

// NewJobEventScope creates a subscope delivering both submissions and
// cancellations; narrow with SubmissionsOnly or CancellationsOnly.
func NewJobEventScope(key string) *JobEventScope {
	return &JobEventScope{key: key, submission: true, cancel: true}
}

// Key implements Scope.
func (s *JobEventScope) Key() string { return s.key }

func (s *JobEventScope) kind() EventKind { return KindJobSubmitted }

// AddApplicationFilter restricts events to the named applications.
func (s *JobEventScope) AddApplicationFilter(apps ...string) *JobEventScope {
	s.apps = append(s.apps, apps...)
	return s
}

// SubmissionsOnly drops cancellation events.
func (s *JobEventScope) SubmissionsOnly() *JobEventScope {
	s.submission, s.cancel = true, false
	return s
}

// CancellationsOnly drops submission events.
func (s *JobEventScope) CancellationsOnly() *JobEventScope {
	s.submission, s.cancel = false, true
	return s
}

func (s *JobEventScope) matches(d *eventData, _ *graph.Graph) bool {
	switch d.kind {
	case KindJobSubmitted:
		if !s.submission {
			return false
		}
	case KindJobCancelled:
		if !s.cancel {
			return false
		}
	default:
		return false
	}
	return len(s.apps) == 0 || containsStr(s.apps, d.app)
}

func (s *JobEventScope) validate() error { return validateKey(s.key) }

// TimerScope subscribes to timer-expiration events.
type TimerScope struct {
	key   string
	names []string
}

// NewTimerScope creates a subscope with the given key.
func NewTimerScope(key string) *TimerScope { return &TimerScope{key: key} }

// Key implements Scope.
func (s *TimerScope) Key() string { return s.key }

func (s *TimerScope) kind() EventKind { return KindTimer }

// AddTimerFilter restricts events to the named timers.
func (s *TimerScope) AddTimerFilter(names ...string) *TimerScope {
	s.names = append(s.names, names...)
	return s
}

func (s *TimerScope) matches(d *eventData, _ *graph.Graph) bool {
	if d.kind != KindTimer {
		return false
	}
	return len(s.names) == 0 || containsStr(s.names, d.name)
}

func (s *TimerScope) validate() error { return validateKey(s.key) }

// UserEventScope subscribes to user-generated events raised through the
// command interface.
type UserEventScope struct {
	key   string
	names []string
}

// NewUserEventScope creates a subscope with the given key.
func NewUserEventScope(key string) *UserEventScope { return &UserEventScope{key: key} }

// Key implements Scope.
func (s *UserEventScope) Key() string { return s.key }

func (s *UserEventScope) kind() EventKind { return KindUserEvent }

// AddNameFilter restricts events to the named user events.
func (s *UserEventScope) AddNameFilter(names ...string) *UserEventScope {
	s.names = append(s.names, names...)
	return s
}

func (s *UserEventScope) matches(d *eventData, _ *graph.Graph) bool {
	if d.kind != KindUserEvent {
		return false
	}
	return len(s.names) == 0 || containsStr(s.names, d.name)
}

func (s *UserEventScope) validate() error { return validateKey(s.key) }

func validateKey(key string) error {
	if key == "" {
		return fmt.Errorf("core: subscope with empty key")
	}
	return nil
}

func containsStr(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

func containsPE(list []ids.PEID, v ids.PEID) bool {
	for _, p := range list {
		if p == v {
			return true
		}
	}
	return false
}

func containsInt(list []int, v int) bool {
	for _, i := range list {
		if i == v {
			return true
		}
	}
	return false
}
