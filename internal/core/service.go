package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/cluster"
	"streamorca/internal/graph"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/sam"
	"streamorca/internal/srm"
	"streamorca/internal/vclock"
)

// DefaultPullInterval is the ORCA service's metric pull period against
// SRM (paper default: 15 seconds, §4.2).
const DefaultPullInterval = 15 * time.Second

// ErrUnmanagedJob is returned when the ORCA logic attempts to act on a job
// the service did not start (§3).
var ErrUnmanagedJob = errors.New("core: job is not managed by this orchestrator")

// Config assembles an ORCA service.
type Config struct {
	// Name identifies the orchestrator to the platform (SAM tracks
	// orchestrators as manageable entities, §3).
	Name string
	// SAM and SRM are the platform daemons the service proxies.
	SAM *sam.SAM
	SRM *srm.SRM
	// Clock drives pull intervals, timers, uptime requirements, and GC
	// timeouts; nil means the wall clock.
	Clock vclock.Clock
	// PullInterval overrides DefaultPullInterval.
	PullInterval time.Duration
	// Logf receives service diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Stats exposes service counters for monitoring and the experiments.
type Stats struct {
	QueueDepth     int
	Delivered      uint64
	MatchedEvents  uint64
	DroppedEvents  uint64 // events matching no subscope
	HandlerPanics  uint64
	HandlerErrors  uint64 // routine handlers returning a non-ErrSkipped error
	MetricEpoch    uint64
	FailureEpoch   uint64
	ManagedJobs    int
	RegisteredApps int
}

// JobSummary identifies one managed job.
type JobSummary struct {
	Job ids.JobID
	App string
}

// Service is the ORCA service: the runtime half of an orchestrator. It
// runs a set of composable Routines (NewRoutineService) under the scope
// matcher and the single-threaded delivery discipline.
type Service struct {
	cfg      Config
	routines []Routine
	actions  *Actions
	clock    vclock.Clock

	mu        sync.Mutex
	apps      map[string]*adl.Application // registered, by name
	scopes    []Scope
	scopeKeys map[string]bool
	subs      map[string]*Subscription // scope key -> owning subscription
	startSubs []*Subscription
	graphs    map[ids.JobID]*graph.Graph
	managed   map[ids.JobID]string // job -> app name
	timers    map[string]vclock.Timer

	metricEpoch  uint64
	failEpochs   map[string]uint64
	nextFailure  uint64
	pullInterval atomic.Int64

	queue     *eventQueue
	stopCh    chan struct{}
	closeOnce sync.Once
	done      sync.WaitGroup
	started   atomic.Bool
	startSeen atomic.Bool // OrcaStart handled; metric pulls gate on this

	// stopHooks are routine teardown callbacks (SetupContext.OnStop and
	// Closer routines); Stop runs them once, in reverse registration
	// order, before event delivery shuts down.
	stopHooks []func(*Actions)
	stopOnce  sync.Once

	delivered   uint64
	matched     uint64
	dropped     uint64
	panics      uint64
	handlerErrs uint64

	nextTx    atomic.Uint64
	currentTx atomic.Uint64
	journal   *journal

	deps *depManager
}

// NewRoutineService builds a service running the given adaptation
// routines. Their Setups run inside Start, in argument order; the first
// error aborts the start and is returned from Start.
func NewRoutineService(cfg Config, routines ...Routine) (*Service, error) {
	if len(routines) == 0 {
		return nil, fmt.Errorf("core: orchestrator %q has no routines", cfg.Name)
	}
	for i, r := range routines {
		if r == nil {
			return nil, fmt.Errorf("core: orchestrator %q: routine %d is nil", cfg.Name, i)
		}
		if r.Name() == "" {
			return nil, fmt.Errorf("core: orchestrator %q: routine %d has no name", cfg.Name, i)
		}
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: orchestrator needs a name")
	}
	if cfg.SAM == nil || cfg.SRM == nil {
		return nil, fmt.Errorf("core: orchestrator %q needs SAM and SRM", cfg.Name)
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.PullInterval <= 0 {
		cfg.PullInterval = DefaultPullInterval
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Service{
		cfg:        cfg,
		routines:   routines,
		clock:      cfg.Clock,
		apps:       make(map[string]*adl.Application),
		scopeKeys:  make(map[string]bool),
		subs:       make(map[string]*Subscription),
		graphs:     make(map[ids.JobID]*graph.Graph),
		managed:    make(map[ids.JobID]string),
		timers:     make(map[string]vclock.Timer),
		failEpochs: make(map[string]uint64),
		queue:      newEventQueue(),
		stopCh:     make(chan struct{}),
	}
	s.actions = &Actions{Service: s}
	s.pullInterval.Store(int64(cfg.PullInterval))
	s.journal = newJournal()
	s.deps = newDepManager(s)
	return s, nil
}

// Name returns the orchestrator's name.
func (s *Service) Name() string { return s.cfg.Name }

// Clock returns the service clock (useful to ORCA logic for timestamps).
func (s *Service) Clock() vclock.Clock { return s.clock }

// RegisterApplication makes an application controllable from this
// orchestrator — the Go equivalent of listing an ADL path in the
// orchestrator's description file (§3).
func (s *Service) RegisterApplication(app *adl.Application) error {
	if err := app.Validate(); err != nil {
		return fmt.Errorf("core: register %q: %w", app.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.apps[app.Name]; dup {
		return fmt.Errorf("core: application %q already registered", app.Name)
	}
	s.apps[app.Name] = app.Clone()
	return nil
}

// Start launches the service: it registers with SAM as the owner of its
// jobs, subscribes to host failures, runs every routine's Setup, starts
// the dispatch and metric-pull goroutines, and delivers the start
// notification (§3). A Setup error aborts the start and is returned;
// the service is then stopped (jobs a partial setup already submitted
// keep running — cancel them or close the platform as the policy
// requires).
func (s *Service) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return fmt.Errorf("core: orchestrator %q started twice", s.cfg.Name)
	}
	s.cfg.SAM.AddListener(s.cfg.Name, sam.Listener{PEFailed: s.onPEFailure})
	s.cfg.SRM.OnHostDown(s.onHostDown)
	for _, r := range s.routines {
		if err := r.Setup(&SetupContext{svc: s, routine: r.Name()}); err != nil {
			s.abortStart()
			return fmt.Errorf("core: orchestrator %q: routine %q setup: %w", s.cfg.Name, r.Name(), err)
		}
		if cl, ok := r.(Closer); ok {
			s.mu.Lock()
			s.stopHooks = append(s.stopHooks, cl.Close)
			s.mu.Unlock()
		}
	}
	s.queue.push(&delivered{data: &eventData{
		kind: KindOrcaStart,
		ctx:  &OrcaStartContext{Name: s.cfg.Name, At: s.clock.Now()},
	}})
	s.done.Add(2)
	go s.dispatchLoop()
	go s.pullLoop()
	return nil
}

// abortStart unwinds a failed Start before the delivery goroutines
// exist: subsequent Stop calls become no-ops and late event pushes are
// dropped by the closed queue. Stop hooks do not run — the routines
// never finished setting up.
func (s *Service) abortStart() {
	s.stopOnce.Do(func() {}) // mark hooks as spent
	s.closeOnce.Do(func() { close(s.stopCh) })
	s.queue.close()
	s.mu.Lock()
	for name, t := range s.timers {
		t.Stop()
		delete(s.timers, name)
	}
	s.mu.Unlock()
	s.cfg.SAM.RemoveListener(s.cfg.Name)
}

// Stop shuts down event delivery and timers, running every registered
// teardown hook (SetupContext.OnStop, Closer routines) first, while the
// actuation surface still works. Managed jobs keep running; cancel them
// from a hook or beforehand if the policy requires it.
func (s *Service) Stop() {
	if !s.started.Load() {
		return
	}
	select {
	case <-s.stopCh:
		return // already stopped
	default:
	}
	s.runStopHooks()
	s.closeOnce.Do(func() { close(s.stopCh) })
	s.queue.close()
	s.mu.Lock()
	for name, t := range s.timers {
		t.Stop()
		delete(s.timers, name)
	}
	s.mu.Unlock()
	s.cfg.SAM.RemoveListener(s.cfg.Name)
	s.done.Wait()
}

// runStopHooks runs the registered teardown hooks exactly once, in
// reverse registration order (last set up, first torn down). A panicking
// hook is contained and logged so the remaining hooks — and the shutdown
// itself — still run.
func (s *Service) runStopHooks() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		hooks := append([]func(*Actions){}, s.stopHooks...)
		s.mu.Unlock()
		for i := len(hooks) - 1; i >= 0; i-- {
			func() {
				defer func() {
					if r := recover(); r != nil {
						s.cfg.Logf("orca %s: stop hook panic: %v", s.cfg.Name, r)
					}
				}()
				hooks[i](s.actions)
			}()
		}
	})
}

// RegisterEventScope adds a subscope to the service's event scope (§4.1).
// Multiple subscopes of the same type may be registered; keys must be
// unique.
func (s *Service) RegisterEventScope(sc Scope) error {
	if err := sc.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scopeKeys[sc.Key()] {
		return fmt.Errorf("core: subscope key %q already registered", sc.Key())
	}
	s.scopeKeys[sc.Key()] = true
	s.scopes = append(s.scopes, sc)
	return nil
}

// UnregisterEventScope removes a subscope by key. Removing the scope of
// a routine subscription retires the subscription with it.
func (s *Service) UnregisterEventScope(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.scopeKeys[key] {
		return
	}
	delete(s.scopeKeys, key)
	delete(s.subs, key)
	for i, sc := range s.scopes {
		if sc.Key() == key {
			s.scopes = append(s.scopes[:i], s.scopes[i+1:]...)
			break
		}
	}
}

// SetMetricPullInterval changes the SRM pull period; the change applies
// from the next pull (§4.2: developers can change the frequency at any
// point of the execution).
func (s *Service) SetMetricPullInterval(d time.Duration) {
	if d > 0 {
		s.pullInterval.Store(int64(d))
	}
}

// dispatchLoop is the single delivery goroutine: one event, one handler,
// run to completion (§4.2).
func (s *Service) dispatchLoop() {
	defer s.done.Done()
	for {
		d, ok := s.queue.pop()
		if !ok {
			return
		}
		s.deliver(d)
	}
}

func (s *Service) deliver(d *delivered) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddUint64(&s.panics, 1)
			s.cfg.Logf("orca %s: handler panic on %s event: %v", s.cfg.Name, d.data.kind, r)
		}
	}()
	atomic.AddUint64(&s.delivered, 1)
	tx := s.assignTx(d.data)
	s.currentTx.Store(tx)
	defer s.currentTx.Store(0)
	if d.data.kind == KindOrcaStart {
		s.mu.Lock()
		subs := append([]*Subscription(nil), s.startSubs...)
		s.mu.Unlock()
		for _, sub := range subs {
			s.invokeSub(sub, d.data)
		}
		s.startSeen.Store(true)
		return
	}
	// Routine subscriptions own their scope keys: each matched key pairs
	// the event with exactly one typed handler. A matched key without an
	// owning subscription (a scope registered directly via
	// RegisterEventScope) keeps the event alive in Stats but delivers
	// nowhere.
	for _, key := range d.scopes {
		s.mu.Lock()
		sub := s.subs[key]
		s.mu.Unlock()
		if sub != nil {
			s.invokeSub(sub, d.data)
		}
	}
}

// invokeSub runs one routine subscription's handler. ErrSkipped reports
// "condition not met" and is not an error; anything else is logged and
// counted in Stats.HandlerErrors.
func (s *Service) invokeSub(sub *Subscription, data *eventData) {
	if err := sub.invoke(s, data.ctx); err != nil && !errors.Is(err, ErrSkipped) {
		atomic.AddUint64(&s.handlerErrs, 1)
		s.cfg.Logf("orca %s: routine %q: %s handler: %v", s.cfg.Name, sub.routine, data.kind, err)
	}
}

// enqueue matches an event against the registered subscopes and queues it
// with the matched keys; events matching nothing are dropped (§4.1).
func (s *Service) enqueue(d *eventData) {
	s.mu.Lock()
	g := s.graphs[d.job]
	var keys []string
	for _, sc := range s.scopes {
		if sc.matches(d, g) {
			keys = append(keys, sc.Key())
		}
	}
	s.mu.Unlock()
	if len(keys) == 0 {
		atomic.AddUint64(&s.dropped, 1)
		return
	}
	atomic.AddUint64(&s.matched, 1)
	s.queue.push(&delivered{data: d, scopes: keys})
}

// pullLoop periodically queries SRM for all managed jobs' metrics.
func (s *Service) pullLoop() {
	defer s.done.Done()
	for {
		d := time.Duration(s.pullInterval.Load())
		select {
		case <-s.stopCh:
			return
		case <-s.clock.After(d):
			if s.startSeen.Load() {
				s.PullMetricsNow()
			}
		}
	}
}

// PullMetricsNow performs one SRM metric pull immediately: all samples of
// the managed jobs are fetched in one round, stamped with a fresh shared
// epoch, matched, and enqueued. Experiment drivers call it directly for
// deterministic rounds.
func (s *Service) PullMetricsNow() {
	s.mu.Lock()
	jobs := make([]ids.JobID, 0, len(s.managed))
	for j := range s.managed {
		jobs = append(jobs, j)
	}
	s.metricEpoch++
	epoch := s.metricEpoch
	s.mu.Unlock()
	if len(jobs) == 0 {
		return
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i] < jobs[j] })
	for _, m := range s.cfg.SRM.Query(jobs) {
		s.enqueue(sampleToEvent(m, epoch))
	}
}

func sampleToEvent(m metrics.Sample, epoch uint64) *eventData {
	d := &eventData{
		job: m.Job, app: m.App, pe: m.PE,
		operator: m.Operator, operatorKind: m.OperatorKind,
		port: m.Port, dir: m.Dir, metric: m.Name, custom: m.Custom,
	}
	switch m.Scope {
	case metrics.OperatorScope:
		d.kind = KindOperatorMetric
		d.ctx = &OperatorMetricContext{
			Job: m.Job, App: m.App, InstanceName: m.Operator, OperatorKind: m.OperatorKind,
			PE: m.PE, Metric: m.Name, Custom: m.Custom, Value: m.Value, Epoch: epoch, At: m.At,
		}
	case metrics.PEScope:
		d.kind = KindPEMetric
		d.ctx = &PEMetricContext{
			Job: m.Job, App: m.App, PE: m.PE, Metric: m.Name, Value: m.Value, Epoch: epoch, At: m.At,
		}
	case metrics.PortScope:
		d.kind = KindPortMetric
		d.ctx = &PortMetricContext{
			Job: m.Job, App: m.App, InstanceName: m.Operator, OperatorKind: m.OperatorKind,
			PE: m.PE, Port: m.Port, Dir: m.Dir, Metric: m.Name, Value: m.Value, Epoch: epoch, At: m.At,
		}
	}
	return d
}

// onPEFailure receives SAM's push notification (§4.2): it assigns an
// epoch derived from the crash reason and detection timestamp, updates
// the graph, and enqueues the event.
func (s *Service) onPEFailure(f sam.PEFailure) {
	epoch := s.failureEpoch(f.Reason, f.At)
	s.mu.Lock()
	if g, ok := s.graphs[f.Job]; ok {
		g.SetPEState(f.PE, "crashed")
	}
	s.mu.Unlock()
	s.enqueue(&eventData{
		kind: KindPEFailure, job: f.Job, app: f.App, pe: f.PE, host: f.Host,
		ctx: &PEFailureContext{
			PE: f.PE, Job: f.Job, App: f.App, Host: f.Host, Reason: f.Reason,
			Operators: f.Operators, Epoch: epoch, At: f.At,
		},
	})
}

// onHostDown receives SRM's host failure notification. Reconstructing the
// same reason string the host's PE kills carried aligns the epochs.
func (s *Service) onHostDown(h srm.HostDown) {
	epoch := s.failureEpoch(cluster.HostFailureReason(h.Host, h.At), h.At)
	s.enqueue(&eventData{
		kind: KindHostFailure, host: h.Host,
		ctx: &HostFailureContext{Host: h.Host, Epoch: epoch, At: h.At},
	})
}

func (s *Service) failureEpoch(reason string, at time.Time) uint64 {
	key := fmt.Sprintf("%s@%d", reason, at.UnixNano())
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.failEpochs[key]; ok {
		return e
	}
	s.nextFailure++
	s.failEpochs[key] = s.nextFailure
	return s.nextFailure
}

// StartTimer schedules a named one-shot timer event after d. Re-using a
// name replaces the pending timer.
func (s *Service) StartTimer(name string, d time.Duration) error {
	if name == "" {
		return fmt.Errorf("core: timer needs a name")
	}
	s.mu.Lock()
	if old, ok := s.timers[name]; ok {
		old.Stop()
	}
	s.timers[name] = s.clock.AfterFunc(d, func() {
		s.mu.Lock()
		delete(s.timers, name)
		s.mu.Unlock()
		s.enqueue(&eventData{
			kind: KindTimer, name: name,
			ctx: &TimerContext{Name: name, At: s.clock.Now()},
		})
	})
	s.mu.Unlock()
	return nil
}

// StartPeriodicTimer schedules a recurring timer event every interval.
func (s *Service) StartPeriodicTimer(name string, every time.Duration) error {
	if name == "" {
		return fmt.Errorf("core: timer needs a name")
	}
	if every <= 0 {
		return fmt.Errorf("core: periodic timer %q needs a positive interval", name)
	}
	var arm func()
	arm = func() {
		s.mu.Lock()
		select {
		case <-s.stopCh:
			s.mu.Unlock()
			return
		default:
		}
		s.timers[name] = s.clock.AfterFunc(every, func() {
			s.enqueue(&eventData{
				kind: KindTimer, name: name,
				ctx: &TimerContext{Name: name, At: s.clock.Now()},
			})
			arm()
		})
		s.mu.Unlock()
	}
	s.mu.Lock()
	if old, ok := s.timers[name]; ok {
		old.Stop()
	}
	s.mu.Unlock()
	arm()
	return nil
}

// CancelTimer stops a pending (or periodic) timer.
func (s *Service) CancelTimer(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.timers[name]; ok {
		t.Stop()
		delete(s.timers, name)
	}
}

// RaiseUserEvent injects a user-generated event, as the paper's command
// tool does with a direct call into the ORCA service (§3).
func (s *Service) RaiseUserEvent(name string, payload map[string]string) {
	s.enqueue(&eventData{
		kind: KindUserEvent, name: name,
		ctx: &UserEventContext{Name: name, Payload: payload, At: s.clock.Now()},
	})
}

// Stats returns service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	managed := len(s.managed)
	apps := len(s.apps)
	me := s.metricEpoch
	fe := s.nextFailure
	s.mu.Unlock()
	return Stats{
		QueueDepth:     s.queue.depth(),
		Delivered:      atomic.LoadUint64(&s.delivered),
		MatchedEvents:  atomic.LoadUint64(&s.matched),
		DroppedEvents:  atomic.LoadUint64(&s.dropped),
		HandlerPanics:  atomic.LoadUint64(&s.panics),
		HandlerErrors:  atomic.LoadUint64(&s.handlerErrs),
		MetricEpoch:    me,
		FailureEpoch:   fe,
		ManagedJobs:    managed,
		RegisteredApps: apps,
	}
}
