package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/sam"
)

func TestNewServiceValidation(t *testing.T) {
	h := newHarness(t)
	noop := NewRoutine("noop", func(*SetupContext) error { return nil })
	if _, err := NewRoutineService(Config{SAM: h.inst.SAM, SRM: h.inst.SRM}, noop); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewRoutineService(Config{Name: "x"}, noop); err == nil {
		t.Fatal("missing daemons accepted")
	}
	if _, err := NewRoutineService(Config{Name: "x", SAM: h.inst.SAM, SRM: h.inst.SRM}); err == nil {
		t.Fatal("no routines accepted")
	}
	if _, err := NewRoutineService(Config{Name: "x", SAM: h.inst.SAM, SRM: h.inst.SRM}, nil); err == nil {
		t.Fatal("nil routine accepted")
	}
	if _, err := NewRoutineService(Config{Name: "x", SAM: h.inst.SAM, SRM: h.inst.SRM},
		NewRoutine("", func(*SetupContext) error { return nil })); err == nil {
		t.Fatal("unnamed routine accepted")
	}
}

func TestStartDeliversOrcaStartFirstAndOnce(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	evs := h.rec.snapshot()
	if len(evs) == 0 || evs[0].kind != KindOrcaStart {
		t.Fatalf("first event = %+v", evs)
	}
	if err := h.svc.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	ctx := evs[0].ctx.(*OrcaStartContext)
	if ctx.Name != "testOrca" {
		t.Fatalf("start context = %+v", ctx)
	}
}

func TestRegisterApplication(t *testing.T) {
	h := newHarness(t)
	app := simpleApp(t, "A", "ra", "1")
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.RegisterApplication(app); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	bad := simpleApp(t, "B", "rb", "1")
	bad.PEs = nil
	if err := h.svc.RegisterApplication(bad); err == nil {
		t.Fatal("invalid ADL registered")
	}
	// Registered ADL is cloned: mutating the original must not affect it.
	app.Name = "mutated"
	if _, ok := h.svc.RegisteredApplication("A"); !ok {
		t.Fatal("registered app lost after caller mutation")
	}
}

func TestSubmitApplicationBuildsGraphAndManages(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	ops.ResetCollector("sub1")
	if err := h.svc.RegisterApplication(simpleApp(t, "Sub", "sub1", "5")); err != nil {
		t.Fatal(err)
	}
	job, err := h.svc.SubmitApplication("Sub", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tuples", func() bool { return ops.Collector("sub1").Len() == 5 })
	g, ok := h.svc.Graph(job)
	if !ok {
		t.Fatal("no graph for managed job")
	}
	if g.App() != "Sub" || len(g.OperatorNames()) != 2 || len(g.PEIDs()) != 2 {
		t.Fatalf("graph: app=%s ops=%v pes=%v", g.App(), g.OperatorNames(), g.PEIDs())
	}
	pe, ok := g.PEOfOperator("sink")
	if !ok {
		t.Fatal("sink has no PE")
	}
	if host, ok := h.svc.HostOfPE(pe); !ok || host != "h1" {
		t.Fatalf("HostOfPE = %q, %v", host, ok)
	}
	managed := h.svc.ManagedJobs()
	if len(managed) != 1 || managed[0].Job != job || managed[0].App != "Sub" {
		t.Fatalf("ManagedJobs = %+v", managed)
	}
	if jobs := h.svc.JobsOfApp("Sub"); len(jobs) != 1 || jobs[0] != job {
		t.Fatalf("JobsOfApp = %v", jobs)
	}
	if _, err := h.svc.SubmitApplication("Ghost", nil); err == nil {
		t.Fatal("unregistered app submitted")
	}
}

func TestJobEventsRequireScope(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	ops.ResetCollector("je")
	if err := h.svc.RegisterApplication(simpleApp(t, "JE", "je", "1")); err != nil {
		t.Fatal(err)
	}
	// No scope: submission event dropped.
	job, err := h.svc.SubmitApplication("JE", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drop counted", func() bool { return h.svc.Stats().DroppedEvents >= 1 })
	if h.rec.countKind(KindJobSubmitted) != 0 {
		t.Fatal("unscoped job event delivered")
	}
	// With a scope, both cancel of this job and future submissions flow;
	// the shared JobContext tells the directions apart via Cancelled.
	h.observe(t, NewJobEventScope("jobs").AddApplicationFilter("JE"))
	if err := h.svc.CancelJob(job); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cancel event", func() bool { return h.rec.countKind(KindJobCancelled) == 1 })
	evs := h.rec.snapshot()
	last := evs[len(evs)-1]
	jc := last.ctx.(*JobContext)
	if jc.Job != job || jc.App != "JE" || jc.ConfigID != "" || !jc.Cancelled {
		t.Fatalf("cancel context = %+v", jc)
	}
	if len(last.scopes) != 1 || last.scopes[0] != "jobs" {
		t.Fatalf("scopes = %v", last.scopes)
	}
}

func TestActingOnUnmanagedJobFails(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	ops.ResetCollector("um")
	// Submit directly through SAM: the orchestrator did not start it.
	app := simpleApp(t, "Um", "um", "0")
	job, err := h.inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.svc.CancelJob(job); !errors.Is(err, ErrUnmanagedJob) {
		t.Fatalf("CancelJob err = %v", err)
	}
	info, _ := h.inst.SAM.Job(job)
	pe := info.PEs[0].ID
	if err := h.svc.RestartPE(pe); !errors.Is(err, ErrUnmanagedJob) {
		t.Fatalf("RestartPE err = %v", err)
	}
	if err := h.svc.StopPE(pe); !errors.Is(err, ErrUnmanagedJob) {
		t.Fatalf("StopPE err = %v", err)
	}
	if err := h.svc.KillPE(pe, "x"); !errors.Is(err, ErrUnmanagedJob) {
		t.Fatalf("KillPE err = %v", err)
	}
	if err := h.svc.ControlOperator(job, "src", "x", nil); !errors.Is(err, ErrUnmanagedJob) {
		t.Fatalf("ControlOperator err = %v", err)
	}
}

// TestFigure5ScopeMatching reproduces the paper's Figure 5/6 example: an
// operator metric subscope selecting queueSize events from Split/Merge
// operators inside composite1 instances, plus a PE failure subscope with
// an application filter.
func TestFigure5ScopeMatching(t *testing.T) {
	h := newHarness(t)
	app := figure2App(t, "Figure2")
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	h.observe(t,
		NewOperatorMetricScope("opMetricScope").
			AddCompositeTypeFilter("composite1").
			AddOperatorTypeFilter(ops.KindSplit, ops.KindMerge).
			AddOperatorMetric(metrics.OpQueueSize),
		NewPEFailureScope("failureScope").AddApplicationFilter("Figure2"))
	h.start(t)
	ops.ResetCollector("Figure2-sink1")
	ops.ResetCollector("Figure2-sink2")
	if _, err := h.svc.SubmitApplication("Figure2", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pipeline output", func() bool {
		return ops.Collector("Figure2-sink1").Finals() == 1 && ops.Collector("Figure2-sink2").Finals() == 1
	})
	h.inst.FlushMetrics()
	h.svc.PullMetricsNow()
	waitFor(t, "metric events", func() bool { return h.rec.countKind(KindOperatorMetric) >= 4 })
	got := map[string]bool{}
	var epoch uint64
	for _, e := range h.rec.snapshot() {
		if e.kind != KindOperatorMetric {
			continue
		}
		ctx := e.ctx.(*OperatorMetricContext)
		// Only queueSize from Split/Merge inside composite1 instances.
		if ctx.Metric != metrics.OpQueueSize {
			t.Fatalf("unexpected metric %q delivered", ctx.Metric)
		}
		if ctx.OperatorKind != ops.KindSplit && ctx.OperatorKind != ops.KindMerge {
			t.Fatalf("unexpected operator kind %q", ctx.OperatorKind)
		}
		if len(e.scopes) != 1 || e.scopes[0] != "opMetricScope" {
			t.Fatalf("scopes = %v", e.scopes)
		}
		if epoch == 0 {
			epoch = ctx.Epoch
		} else if ctx.Epoch != epoch {
			t.Fatalf("epochs differ within one pull: %d vs %d", ctx.Epoch, epoch)
		}
		got[ctx.InstanceName] = true
	}
	for _, want := range []string{"c1.op3", "c1.op6", "c2.op3", "c2.op6"} {
		if !got[want] {
			t.Fatalf("missing metric event for %s (got %v)", want, got)
		}
	}
	// A second pull increments the epoch.
	h.svc.PullMetricsNow()
	waitFor(t, "second round", func() bool {
		for _, e := range h.rec.snapshot() {
			if e.kind == KindOperatorMetric && e.ctx.(*OperatorMetricContext).Epoch == epoch+1 {
				return true
			}
		}
		return false
	})
}

func TestEventDeliveredOnceWithAllMatchingScopeKeys(t *testing.T) {
	h := newHarness(t)
	if err := h.svc.RegisterApplication(simpleApp(t, "Multi", "multi", "3")); err != nil {
		t.Fatal(err)
	}
	h.observe(t,
		NewOperatorMetricScope("byName").
			AddOperatorNameFilter("src").AddOperatorMetric(metrics.OpTuplesSubmitted),
		NewOperatorMetricScope("byKind").
			AddOperatorTypeFilter(ops.KindBeacon).AddOperatorMetric(metrics.OpTuplesSubmitted))
	h.start(t)
	ops.ResetCollector("multi")
	if _, err := h.svc.SubmitApplication("Multi", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "done", func() bool { return ops.Collector("multi").Finals() == 1 })
	h.inst.FlushMetrics()
	h.svc.PullMetricsNow()
	waitFor(t, "metric event", func() bool { return h.rec.countKind(KindOperatorMetric) >= 1 })
	n := 0
	for _, e := range h.rec.snapshot() {
		if e.kind != KindOperatorMetric {
			continue
		}
		n++
		if len(e.scopes) != 2 || e.scopes[0] != "byName" || e.scopes[1] != "byKind" {
			t.Fatalf("scopes = %v", e.scopes)
		}
	}
	if n != 1 {
		t.Fatalf("event delivered %d times", n)
	}
}

func TestScopeRegistrationErrors(t *testing.T) {
	h := newHarness(t)
	if err := h.svc.RegisterEventScope(NewOperatorMetricScope("")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := h.svc.RegisterEventScope(NewOperatorMetricScope("k")); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.RegisterEventScope(NewPEFailureScope("k")); err == nil {
		t.Fatal("duplicate key accepted")
	}
	h.svc.UnregisterEventScope("k")
	if err := h.svc.RegisterEventScope(NewPEFailureScope("k")); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
	h.svc.UnregisterEventScope("never-registered") // no-op
}

func TestPEFailureEventAndEpochGrouping(t *testing.T) {
	h := newHarness(t, "h1", "h2")
	if err := h.svc.RegisterApplication(simpleApp(t, "F", "f1", "0")); err != nil {
		t.Fatal(err)
	}
	h.observe(t,
		NewPEFailureScope("pf").AddApplicationFilter("F"),
		NewHostFailureScope("hf"))
	h.start(t)
	ops.ResetCollector("f1")
	job, err := h.svc.SubmitApplication("F", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.svc.Graph(job)
	sinkPE, _ := g.PEOfOperator("sink")

	// Single PE kill: one event, its own epoch.
	if err := h.svc.KillPE(sinkPE, "injected"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pe failure event", func() bool { return h.rec.countKind(KindPEFailure) == 1 })
	var first *PEFailureContext
	for _, e := range h.rec.snapshot() {
		if e.kind == KindPEFailure {
			first = e.ctx.(*PEFailureContext)
		}
	}
	if first.PE != sinkPE || first.Job != job || first.App != "F" || first.Reason != "injected" {
		t.Fatalf("failure ctx = %+v", first)
	}
	if len(first.Operators) != 1 || first.Operators[0] != "sink" {
		t.Fatalf("failure operators = %v", first.Operators)
	}
	if g2, _ := h.svc.Graph(job); g2 != nil {
		if info, _ := g2.PE(sinkPE); info.State != "crashed" {
			t.Fatalf("graph PE state = %q", info.State)
		}
	}

	// Host failure kills both PEs of a second job placed on one host:
	// both PE failure events and the host failure event share an epoch.
	app2 := simpleApp(t, "F2", "f2", "0")
	app2.HostPools = []adl.HostPool{{Name: "only-h2", Hosts: []string{"h2"}}}
	for i := range app2.PEs {
		app2.PEs[i].Pool = "only-h2"
	}
	if err := h.svc.RegisterApplication(app2); err != nil {
		t.Fatal(err)
	}
	h.observe(t, NewPEFailureScope("pf2").AddApplicationFilter("F2"))
	ops.ResetCollector("f2")
	if _, err := h.svc.SubmitApplication("F2", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.inst.Cluster.KillHost("h2"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "host failure fan-out", func() bool {
		return h.rec.countKind(KindPEFailure) == 3 && h.rec.countKind(KindHostFailure) == 1
	})
	var hostEpoch uint64
	for _, e := range h.rec.snapshot() {
		if e.kind == KindHostFailure {
			hostEpoch = e.ctx.(*HostFailureContext).Epoch
		}
	}
	shared := 0
	for _, e := range h.rec.snapshot() {
		if e.kind != KindPEFailure {
			continue
		}
		ctx := e.ctx.(*PEFailureContext)
		if ctx.App == "F2" {
			if ctx.Epoch != hostEpoch {
				t.Fatalf("PE failure epoch %d != host epoch %d", ctx.Epoch, hostEpoch)
			}
			if ctx.Host != "h2" {
				t.Fatalf("failure host = %q", ctx.Host)
			}
			shared++
		} else if ctx.Epoch == hostEpoch {
			t.Fatal("unrelated failure shares the host epoch")
		}
	}
	if shared != 2 {
		t.Fatalf("host failure produced %d PE events for F2", shared)
	}
}

func TestTimers(t *testing.T) {
	h := newHarness(t)
	h.observe(t, NewTimerScope("timers").AddTimerFilter("once", "tick"))
	h.start(t)
	if err := h.svc.StartTimer("", time.Second); err == nil {
		t.Fatal("empty timer name accepted")
	}
	if err := h.svc.StartTimer("once", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(10 * time.Second)
	waitFor(t, "one-shot timer", func() bool { return h.rec.countKind(KindTimer) == 1 })

	if err := h.svc.StartPeriodicTimer("tick", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(5 * time.Second)
	waitFor(t, "tick 1", func() bool { return h.rec.countKind(KindTimer) == 2 })
	h.clock.Advance(5 * time.Second)
	waitFor(t, "tick 2", func() bool { return h.rec.countKind(KindTimer) == 3 })
	h.svc.CancelTimer("tick")
	h.clock.Advance(20 * time.Second)
	time.Sleep(10 * time.Millisecond)
	if h.rec.countKind(KindTimer) != 3 {
		t.Fatal("cancelled timer fired")
	}
	if err := h.svc.StartPeriodicTimer("bad", 0); err == nil {
		t.Fatal("non-positive period accepted")
	}
	// An unscoped timer is dropped.
	if err := h.svc.StartTimer("unscoped", time.Second); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(time.Second)
	time.Sleep(10 * time.Millisecond)
	if h.rec.countKind(KindTimer) != 3 {
		t.Fatal("unscoped timer delivered")
	}
}

func TestUserEvents(t *testing.T) {
	h := newHarness(t)
	h.observe(t, NewUserEventScope("user").AddNameFilter("reload"))
	h.start(t)
	h.svc.RaiseUserEvent("reload", map[string]string{"model": "v2"})
	h.svc.RaiseUserEvent("ignored", nil)
	waitFor(t, "user event", func() bool { return h.rec.countKind(KindUserEvent) == 1 })
	for _, e := range h.rec.snapshot() {
		if e.kind == KindUserEvent {
			ctx := e.ctx.(*UserEventContext)
			if ctx.Name != "reload" || ctx.Payload["model"] != "v2" {
				t.Fatalf("user ctx = %+v", ctx)
			}
		}
	}
}

func TestEventsDeliveredInOrderOneAtATime(t *testing.T) {
	h := newHarness(t)
	seen := make(chan string, 64)
	h.rec.onEvent = func(svc *Service, kind EventKind, ctx any, scopes []string) {
		if kind == KindUserEvent {
			seen <- ctx.(*UserEventContext).Name
			time.Sleep(2 * time.Millisecond) // hold the dispatcher
		}
	}
	h.observe(t, NewUserEventScope("all"))
	h.start(t)
	names := []string{"e1", "e2", "e3", "e4", "e5"}
	for _, n := range names {
		h.svc.RaiseUserEvent(n, nil)
	}
	for _, want := range names {
		select {
		case got := <-seen:
			if got != want {
				t.Fatalf("out of order: got %s want %s", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("event never delivered")
		}
	}
}

func TestRestartStopControlOnManagedJob(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	ops.ResetCollector("act")
	app := simpleApp(t, "Act", "act", "0")
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	job, err := h.svc.SubmitApplication("Act", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flow", func() bool { return ops.Collector("act").Len() > 2 })
	g, _ := h.svc.Graph(job)
	sinkPE, _ := g.PEOfOperator("sink")
	if err := h.svc.KillPE(sinkPE, "fault"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "crashed in graph", func() bool {
		info, _ := g.PE(sinkPE)
		return info.State == "crashed"
	})
	if err := h.svc.RestartPE(sinkPE); err != nil {
		t.Fatal(err)
	}
	info, _ := g.PE(sinkPE)
	if info.State != "running" {
		t.Fatalf("PE state after restart = %q", info.State)
	}
	n := ops.Collector("act").Len()
	waitFor(t, "flow after restart", func() bool { return ops.Collector("act").Len() > n })
	if err := h.svc.StopPE(sinkPE); err != nil {
		t.Fatal(err)
	}
	info, _ = g.PE(sinkPE)
	if info.State != "stopped" {
		t.Fatalf("PE state after stop = %q", info.State)
	}
}

func TestMakeExclusiveHostPools(t *testing.T) {
	h := newHarness(t)
	if err := h.svc.MakeExclusiveHostPools("ghost"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := h.svc.RegisterApplication(simpleApp(t, "Ex", "ex", "1")); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.MakeExclusiveHostPools("Ex"); err != nil {
		t.Fatal(err)
	}
	app, _ := h.svc.RegisteredApplication("Ex")
	if len(app.HostPools) == 0 || !app.HostPools[0].Exclusive {
		t.Fatalf("pools = %+v", app.HostPools)
	}
}

func TestInspectionQueries(t *testing.T) {
	h := newHarness(t)
	h.start(t)
	app := figure2App(t, "Insp")
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	ops.ResetCollector("Insp-sink1")
	ops.ResetCollector("Insp-sink2")
	job, err := h.svc.SubmitApplication("Insp", nil)
	if err != nil {
		t.Fatal(err)
	}
	midPE, ok := h.svc.PEOfOperator(job, "c1.op4")
	if !ok {
		t.Fatal("PEOfOperator failed")
	}
	opsIn := h.svc.OperatorsInPE(midPE)
	if len(opsIn) != 6 {
		t.Fatalf("OperatorsInPE = %d ops", len(opsIn))
	}
	comps := h.svc.CompositesInPE(midPE)
	if len(comps) != 2 || comps[0] != "c1" || comps[1] != "c2" {
		t.Fatalf("CompositesInPE = %v", comps)
	}
	encl, ok := h.svc.EnclosingComposite(job, "c2.op5")
	if !ok || encl != "c2" {
		t.Fatalf("EnclosingComposite = %q, %v", encl, ok)
	}
	if _, ok := h.svc.EnclosingComposite(999, "x"); ok {
		t.Fatal("inspection on unknown job succeeded")
	}
	if h.svc.OperatorsInPE(9999) != nil || h.svc.CompositesInPE(9999) != nil {
		t.Fatal("inspection on unknown PE returned data")
	}
	if _, ok := h.svc.HostOfPE(9999); ok {
		t.Fatal("HostOfPE on unknown PE succeeded")
	}
}

func TestHandlerPanicIsRecovered(t *testing.T) {
	h := newHarness(t)
	h.observe(t, NewUserEventScope("all"))
	h.rec.onEvent = func(svc *Service, kind EventKind, ctx any, scopes []string) {
		if kind == KindUserEvent && ctx.(*UserEventContext).Name == "boom" {
			panic("handler bug")
		}
	}
	h.start(t)
	h.svc.RaiseUserEvent("boom", nil)
	h.svc.RaiseUserEvent("after", nil)
	waitFor(t, "delivery continues after panic", func() bool { return h.rec.countKind(KindUserEvent) == 2 })
	if h.svc.Stats().HandlerPanics != 1 {
		t.Fatalf("panics = %d", h.svc.Stats().HandlerPanics)
	}
}

func TestStatsAndPullInterval(t *testing.T) {
	h := newHarness(t)
	h.observe(t, NewOperatorMetricScope("m").AddOperatorMetric(metrics.OpTuplesSubmitted))
	h.start(t)
	ops.ResetCollector("st")
	if err := h.svc.RegisterApplication(simpleApp(t, "St", "st", "4")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.svc.SubmitApplication("St", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "done", func() bool { return ops.Collector("st").Finals() == 1 })
	h.inst.FlushMetrics()
	// The pull loop runs on the manual clock: shorten the interval and
	// advance to trigger a pull.
	h.svc.SetMetricPullInterval(time.Second)
	waitFor(t, "pull fires", func() bool {
		h.clock.Advance(time.Second)
		return h.rec.countKind(KindOperatorMetric) >= 1
	})
	st := h.svc.Stats()
	if st.ManagedJobs != 1 || st.RegisteredApps != 1 || st.MetricEpoch == 0 || st.Delivered == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStopIsIdempotentAndStopsDelivery(t *testing.T) {
	h := newHarness(t)
	h.observe(t, NewUserEventScope("all"))
	h.start(t)
	h.svc.Stop()
	h.svc.Stop()
	h.svc.RaiseUserEvent("late", nil)
	time.Sleep(10 * time.Millisecond)
	if h.rec.countKind(KindUserEvent) != 0 {
		t.Fatal("event delivered after Stop")
	}
}

func TestScopeFilterSemanticsTable(t *testing.T) {
	// Pure matching-semantics checks on eventData, no platform needed.
	d := &eventData{
		kind: KindOperatorMetric, app: "A", operator: "x.op", operatorKind: "Split",
		pe: 7, metric: "queueSize", custom: false,
	}
	cases := []struct {
		name  string
		scope Scope
		want  bool
	}{
		{"no filters matches", NewOperatorMetricScope("k"), true},
		{"same attr disjunctive", NewOperatorMetricScope("k").AddApplicationFilter("B", "A"), true},
		{"wrong app", NewOperatorMetricScope("k").AddApplicationFilter("B"), false},
		{"cross attr conjunctive", NewOperatorMetricScope("k").AddApplicationFilter("A").AddOperatorTypeFilter("Merge"), false},
		{"kind and app", NewOperatorMetricScope("k").AddApplicationFilter("A").AddOperatorTypeFilter("Split"), true},
		{"metric name", NewOperatorMetricScope("k").AddOperatorMetric("queueSize"), true},
		{"wrong metric", NewOperatorMetricScope("k").AddOperatorMetric("nTuplesProcessed"), false},
		{"custom only rejects builtin", NewOperatorMetricScope("k").CustomMetricsOnly(), false},
		{"pe filter", NewOperatorMetricScope("k").AddPEFilter(7, 9), true},
		{"wrong pe", NewOperatorMetricScope("k").AddPEFilter(9), false},
		{"operator name", NewOperatorMetricScope("k").AddOperatorNameFilter("x.op"), true},
		{"wrong kind scope", NewPEFailureScope("k"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.scope.matches(d, nil); got != tc.want {
				t.Fatalf("matches = %v, want %v", got, tc.want)
			}
		})
	}
	// Composite filters require a graph; absent graph means no match.
	if NewOperatorMetricScope("k").AddCompositeTypeFilter("c").matches(d, nil) {
		t.Fatal("composite filter matched without graph")
	}
}

func TestPortMetricScopeSemantics(t *testing.T) {
	d := &eventData{
		kind: KindPortMetric, app: "A", operator: "sink", operatorKind: "CollectSink",
		pe: 3, port: 0, dir: metrics.Input, metric: metrics.PortFinalPunctsQueued,
	}
	if !NewPortMetricScope("k").AddPortMetric(metrics.PortFinalPunctsQueued).matches(d, nil) {
		t.Fatal("port metric scope failed")
	}
	if NewPortMetricScope("k").SetDirection(metrics.Output).matches(d, nil) {
		t.Fatal("direction filter failed")
	}
	if NewPortMetricScope("k").AddPortFilter(1, 2).matches(d, nil) {
		t.Fatal("port filter failed")
	}
	if !NewPortMetricScope("k").AddPortFilter(0).AddOperatorNameFilter("sink").matches(d, nil) {
		t.Fatal("combined port scope failed")
	}
}

func TestJobEventScopeDirections(t *testing.T) {
	sub := &eventData{kind: KindJobSubmitted, app: "A"}
	can := &eventData{kind: KindJobCancelled, app: "A"}
	both := NewJobEventScope("k")
	if !both.matches(sub, nil) || !both.matches(can, nil) {
		t.Fatal("default job scope misses events")
	}
	if NewJobEventScope("k").SubmissionsOnly().matches(can, nil) {
		t.Fatal("SubmissionsOnly matched a cancel")
	}
	if NewJobEventScope("k").CancellationsOnly().matches(sub, nil) {
		t.Fatal("CancellationsOnly matched a submit")
	}
	if NewJobEventScope("k").AddApplicationFilter("B").matches(sub, nil) {
		t.Fatal("app filter failed")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []EventKind{KindOrcaStart, KindOperatorMetric, KindPEMetric, KindPortMetric,
		KindPEFailure, KindHostFailure, KindJobSubmitted, KindJobCancelled, KindTimer, KindUserEvent}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(0).String() != "unknown" {
		t.Fatal("zero kind not unknown")
	}
	if !strings.Contains(ids.PEID(3).String(), "3") {
		t.Fatal("PEID string")
	}
}

// TestPEMetricScopeDeliversByteCounters covers the PE-scoped metric path
// (the §1 example of a built-in metric: connection/byte throughput).
func TestPEMetricScopeDeliversByteCounters(t *testing.T) {
	h := newHarness(t)
	ops.ResetCollector("pm")
	if err := h.svc.RegisterApplication(simpleApp(t, "PM", "pm", "50")); err != nil {
		t.Fatal(err)
	}
	h.observe(t, NewPEMetricScope("bytes").
		AddApplicationFilter("PM").
		AddPEMetric(metrics.PETupleBytesProcessed, metrics.PETupleBytesSubmitted))
	h.start(t)
	if _, err := h.svc.SubmitApplication("PM", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "done", func() bool { return ops.Collector("pm").Finals() == 1 })
	h.inst.FlushMetrics()
	h.svc.PullMetricsNow()
	waitFor(t, "pe metric events", func() bool { return h.rec.countKind(KindPEMetric) >= 2 })
	var sawBytes bool
	for _, e := range h.rec.snapshot() {
		if e.kind != KindPEMetric {
			continue
		}
		ctx := e.ctx.(*PEMetricContext)
		if ctx.Metric != metrics.PETupleBytesProcessed && ctx.Metric != metrics.PETupleBytesSubmitted {
			t.Fatalf("unexpected PE metric %q", ctx.Metric)
		}
		if ctx.Value > 0 {
			sawBytes = true
		}
	}
	if !sawBytes {
		t.Fatal("no non-zero byte counters: cross-PE link not serializing?")
	}
}

// TestPEFailureScopeHostFilter: host-attribute filtering on failure
// scopes (conjunctive with the application filter).
func TestPEFailureScopeHostFilter(t *testing.T) {
	h := newHarness(t, "h1", "h2")
	ops.ResetCollector("hf1")
	app := simpleApp(t, "HF", "hf1", "0")
	if err := h.svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	h.observe(t, NewPEFailureScope("onlyH2").
		AddApplicationFilter("HF").AddHostFilter("h2"))
	h.start(t)
	job, err := h.svc.SubmitApplication("HF", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.svc.Graph(job)
	var onH1, onH2 ids.PEID
	for _, pe := range g.PEIDs() {
		if host, _ := g.HostOfPE(pe); host == "h1" {
			onH1 = pe
		} else {
			onH2 = pe
		}
	}
	if onH1 == ids.InvalidPE || onH2 == ids.InvalidPE {
		t.Fatalf("placement not spread: %v", g.PEIDs())
	}
	// Failure on h1 is filtered out; failure on h2 is delivered.
	if err := h.svc.KillPE(onH1, "filtered"); err != nil {
		t.Fatal(err)
	}
	if err := h.svc.KillPE(onH2, "delivered"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "h2 failure", func() bool { return h.rec.countKind(KindPEFailure) >= 1 })
	for _, e := range h.rec.snapshot() {
		if e.kind == KindPEFailure {
			ctx := e.ctx.(*PEFailureContext)
			if ctx.Host != "h2" || ctx.Reason != "delivered" {
				t.Fatalf("filtered failure delivered: %+v", ctx)
			}
		}
	}
}
