package exp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamorca/internal/chaos"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/load"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
)

// ChaosConfig parameterises the chaos scenario: a checkpointing
// three-host platform runs a Beacon -> Aggregate -> CollectSink
// pipeline while a seeded chaos.Schedule injects PE kills, host
// outages, checkpoint-store faults, and metric delays, and the ORCA
// policy rides SAM's bounded-retry actuations through it. After the
// injection window a recovery sweep disarms the store, revives the
// cluster, and restarts whatever is still down; the scenario fails if
// any PE is lost forever or the pipeline stays silent.
type ChaosConfig struct {
	// Seed drives schedule generation and the retry jitter; one seed
	// reproduces the whole run's fault sequence.
	Seed int64
	// Faults is the number of scheduled events.
	Faults int
	// Window is the injection window the events spread across.
	Window time.Duration
	// Kinds restricts the injected fault kinds; nil means all.
	Kinds []chaos.Kind
	// TickPeriod is the source's inter-tuple delay.
	TickPeriod time.Duration
	// MetricsInterval is the HC push period — deliberately short and
	// un-flushed, so MetricDelay faults displace real deliveries.
	MetricsInterval time.Duration
	// CheckpointInterval is the periodic snapshot period the Ckpt*
	// faults interfere with.
	CheckpointInterval time.Duration
	// StoreDir, when non-empty, backs the checkpoint store with the
	// filesystem; empty uses memory. Either way the store is wrapped in
	// a ckpt.FaultStore.
	StoreDir string
	// MaxDuration bounds the run.
	MaxDuration time.Duration
}

// DefaultChaos returns the scaled-down default configuration.
func DefaultChaos(seed int64) ChaosConfig {
	cfg := ChaosConfig{
		Seed:               seed,
		Faults:             16,
		Window:             800 * time.Millisecond,
		TickPeriod:         time.Millisecond,
		MetricsInterval:    20 * time.Millisecond,
		CheckpointInterval: 25 * time.Millisecond,
		MaxDuration:        30 * time.Second,
	}
	if raceEnabled {
		cfg.Window *= 2
		cfg.TickPeriod *= 4
		cfg.MetricsInterval *= 2
		cfg.CheckpointInterval *= 2
		cfg.MaxDuration *= 2
	}
	return cfg
}

// ChaosResult captures what the run injected and how the platform held
// up.
type ChaosResult struct {
	// Fingerprint is the schedule's stable hash; two runs with one seed
	// report the same value.
	Fingerprint string
	// FaultsApplied and FaultsSkipped split the schedule into events
	// that took effect and events whose target was unavailable.
	FaultsApplied int
	FaultsSkipped int
	// PerKind maps each fault kind name to its applied count.
	PerKind map[string]int
	// RestartsAttempted counts journalled restart attempts;
	// RestartsSucceeded counts restart actuations that ended in success.
	RestartsAttempted int
	RestartsSucceeded int
	// Degradations counts PEs SAM abandoned after exhausting its retry
	// budget (each later recovered by the sweep).
	Degradations int
	// StoreStats snapshots the fault store's counters.
	StoreStats ckpt.FaultStats
	// MaxGapMs and P99GapMs summarise the sink's inter-output gaps over
	// the whole run — the recovery-gap statistics.
	MaxGapMs float64
	P99GapMs float64
	// LostForever counts PEs the recovery sweep could not bring back;
	// the scenario errors unless it is zero.
	LostForever int
	// FinalCount is the sink's tuple count at the end of the run.
	FinalCount int
}

// BenchReport renders the chaos result in the shared BENCH_*.json
// schema (load.Report): the schedule fingerprint and fault counts are
// deterministic Meta for a fixed seed; gap statistics and the final
// count are wall-clock-dependent Metrics.
func (r *ChaosResult) BenchReport(seed int64) *load.Report {
	return &load.Report{
		Name: "chaos",
		Seed: seed,
		Meta: map[string]string{
			"fingerprint":    r.Fingerprint,
			"faults_applied": strconv.Itoa(r.FaultsApplied),
			"faults_skipped": strconv.Itoa(r.FaultsSkipped),
		},
		Metrics: map[string]float64{
			"restarts_attempted": float64(r.RestartsAttempted),
			"restarts_succeeded": float64(r.RestartsSucceeded),
			"degradations":       float64(r.Degradations),
			"max_gap_ms":         r.MaxGapMs,
			"p99_gap_ms":         r.P99GapMs,
			"final_count":        float64(r.FinalCount),
		},
	}
}

// chaosPolicy restarts every failed PE, leaning on SAM's bounded-retry
// actuation. Degradation events — SAM announcing it abandoned a PE —
// are counted, not re-actuated: the post-run sweep recovers them, and
// re-restarting from inside the handler would hide the retry budget the
// scenario measures.
type chaosPolicy struct {
	app          string
	degradations atomic.Int64
}

func (p *chaosPolicy) Name() string { return "chaos" }

func (p *chaosPolicy) Setup(sc *core.SetupContext) error {
	if _, err := sc.Actions().SubmitApplication(p.app, nil); err != nil {
		return err
	}
	return sc.Subscribe(core.OnPEFailure(
		core.NewPEFailureScope("cf").AddApplicationFilter(p.app),
		func(ctx *core.PEFailureContext, act *core.Actions) error {
			if strings.HasPrefix(ctx.Reason, "restart abandoned") {
				p.degradations.Add(1)
				return nil
			}
			// Failure can outlive the restart budget (host still down);
			// the journal records the attempts and the sweep finishes
			// the job, so the handler itself never errors.
			_ = act.RestartPE(ctx.PE) //orcalint:ignore actuationcheck the attempt journal records failures and the sweep retries; erroring here would tear down the experiment
			return nil
		}))
}

// gapSampler watches a collector's length on the wall clock and records
// the gaps between consecutive output arrivals.
type gapSampler struct {
	mu   sync.Mutex
	gaps []time.Duration
	stop chan struct{}
	done chan struct{}
}

func startGapSampler(length func() int) *gapSampler {
	g := &gapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(g.done)
		lastLen := length()
		lastAt := time.Now()
		for {
			select {
			case <-g.stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if n := length(); n > lastLen {
				now := time.Now()
				g.mu.Lock()
				g.gaps = append(g.gaps, now.Sub(lastAt))
				g.mu.Unlock()
				lastLen, lastAt = n, now
			}
		}
	}()
	return g
}

// halt stops sampling and returns (max, p99) of the recorded gaps in
// milliseconds.
func (g *gapSampler) halt() (float64, float64) {
	close(g.stop)
	<-g.done
	g.mu.Lock()
	gaps := append([]time.Duration(nil), g.gaps...)
	g.mu.Unlock()
	if len(gaps) == 0 {
		return 0, 0
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	p99 := gaps[len(gaps)*99/100]
	return ms(gaps[len(gaps)-1]), ms(p99)
}

// RunChaos executes the scenario: boot, warm up, inject the seeded
// schedule, sweep, and verify nothing was lost.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	var inner ckpt.Store = ckpt.NewMemStore()
	if cfg.StoreDir != "" {
		fs, err := ckpt.NewFSStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		inner = fs
	}
	store := ckpt.NewFaultStore(inner, nil)

	inst, err := platform.NewInstance(platform.Options{
		Hosts:              []platform.HostSpec{{Name: "h1"}, {Name: "h2"}, {Name: "h3"}},
		MetricsInterval:    cfg.MetricsInterval,
		Checkpoint:         store,
		CheckpointInterval: cfg.CheckpointInterval,
		Retry: sam.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			JitterSeed:  cfg.Seed,
		},
	})
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	tickS := tuple.MustSchema(
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "price", Type: tuple.Float},
	)
	outS := tuple.MustSchema(
		tuple.Attribute{Name: "avg", Type: tuple.Float},
		tuple.Attribute{Name: "count", Type: tuple.Int},
	)
	appName := "ChaosSmoke"
	collID := uniq("chaos")
	b := compiler.NewApp(appName)
	src := b.AddOperator("src", ops.KindBeacon).Out(tickS).
		Param("count", "0").Param("period", cfg.TickPeriod.String())
	agg := b.AddOperator("agg", ops.KindAggregate).In(tickS).Out(outS).
		Param("window", "10m").Param("valueAttr", "price")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(outS).Param("collectorId", collID)
	b.Connect(src, 0, agg, 0)
	b.Connect(agg, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		return nil, err
	}

	coll := ops.Collector(collID)
	policy := &chaosPolicy{app: appName}
	svc, err := core.NewRoutineService(core.Config{
		Name: "chaosOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: cfg.MetricsInterval,
	}, policy)
	if err != nil {
		return nil, err
	}
	if err := svc.RegisterApplication(app); err != nil {
		return nil, err
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	defer svc.Stop()

	if !waitUntil(cfg.MaxDuration/4, time.Millisecond, func() bool { return coll.Len() >= 5 }) {
		return nil, fmt.Errorf("chaos: pipeline never warmed up")
	}

	schedule := chaos.Generate(cfg.Seed, chaos.GenOptions{
		Duration: cfg.Window,
		Count:    cfg.Faults,
		Hosts:    3,
		PEs:      len(app.PEs),
		Kinds:    cfg.Kinds,
		Store:    true,
	})
	res := &ChaosResult{Fingerprint: schedule.Fingerprint(), PerKind: map[string]int{}}

	sampler := startGapSampler(coll.Len)
	runner := &chaos.Runner{Cluster: inst.Cluster, SAM: inst.SAM, Store: store}
	report := runner.Run(schedule)
	res.FaultsApplied, res.FaultsSkipped = report.Applied, report.Skipped
	for k, n := range report.PerKind {
		res.PerKind[k.String()] = n
	}

	// Recovery sweep: disarm the store, revive the cluster, and restart
	// whatever the faults (or the exhausted retry budgets) left down.
	store.Reset()
	for _, h := range inst.Cluster.Hosts() {
		if !h.Up {
			if err := inst.Cluster.ReviveHost(h.Name); err != nil {
				return nil, fmt.Errorf("chaos: revive %s: %w", h.Name, err)
			}
		}
	}
	downPEs := func() []ids.PEID {
		var down []ids.PEID
		for _, job := range inst.SAM.Jobs() {
			for _, p := range job.PEs {
				if p.State != "running" {
					down = append(down, p.ID)
				}
			}
		}
		return down
	}
	sweepOK := waitUntil(cfg.MaxDuration/2, 5*time.Millisecond, func() bool {
		down := downPEs()
		for _, id := range down {
			_ = svc.RestartPE(id) //orcalint:ignore actuationcheck recovery sweep keeps retrying until the deadline; stragglers are counted as LostForever
		}
		return len(down) == 0
	})
	res.LostForever = len(downPEs())

	res.MaxGapMs, res.P99GapMs = sampler.halt()
	res.Degradations = int(policy.degradations.Load())
	res.StoreStats = store.Stats()
	for _, rec := range inst.SAM.AttemptJournal() {
		if rec.Action != "restart" {
			continue
		}
		res.RestartsAttempted++
		if rec.Err == "" {
			res.RestartsSucceeded++
		}
	}

	if !sweepOK || res.LostForever > 0 {
		return res, fmt.Errorf("chaos: %d PEs lost forever after recovery sweep", res.LostForever)
	}
	preLen := coll.Len()
	if !waitUntil(cfg.MaxDuration/4, time.Millisecond, func() bool { return coll.Len() > preLen }) {
		return res, fmt.Errorf("chaos: no output after recovery sweep")
	}
	res.FinalCount = coll.Len()
	return res, nil
}
