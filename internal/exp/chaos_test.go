package exp

import (
	"testing"

	"streamorca/internal/chaos"
)

// deterministicKinds restricts the schedule to the kinds whose applied
// counts cannot depend on wall-clock races: PE kills (the runner waits
// out concurrent restarts) and one-shot store faults. Host outages and
// latency injections stay covered by TestChaosSmoke below and the
// chaos package's own tests.
var deterministicKinds = []chaos.Kind{
	chaos.KillPE, chaos.CkptFail, chaos.CkptTear, chaos.CkptDrop,
}

// TestChaosDeterminism: two runs with one seed inject the same fault
// schedule (identical fingerprints) and apply the same events, and
// neither loses a PE.
func TestChaosDeterminism(t *testing.T) {
	cfg := DefaultChaos(42)
	cfg.Kinds = deterministicKinds
	first, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("first run: %v (result %+v)", err, first)
	}
	second, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("second run: %v (result %+v)", err, second)
	}
	if first.Fingerprint != second.Fingerprint {
		t.Fatalf("fingerprints diverged: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	if first.FaultsApplied != second.FaultsApplied || first.FaultsSkipped != second.FaultsSkipped {
		t.Fatalf("applied/skipped diverged: %d/%d vs %d/%d",
			first.FaultsApplied, first.FaultsSkipped, second.FaultsApplied, second.FaultsSkipped)
	}
	for _, res := range []*ChaosResult{first, second} {
		if res.LostForever != 0 {
			t.Fatalf("lost PEs: %+v", res)
		}
		if res.FaultsApplied == 0 {
			t.Fatalf("no faults applied: %+v", res)
		}
	}
}

// TestChaosSmoke runs the full fault mix — host outages included — on
// a filesystem-backed store and checks the platform comes back whole.
func TestChaosSmoke(t *testing.T) {
	cfg := DefaultChaos(7)
	cfg.StoreDir = t.TempDir()
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("RunChaos: %v (result %+v)", err, res)
	}
	if res.LostForever != 0 {
		t.Fatalf("lost PEs: %+v", res)
	}
	if res.FaultsApplied+res.FaultsSkipped < cfg.Faults {
		t.Fatalf("schedule not fully driven: %+v", res)
	}
	if res.RestartsAttempted == 0 {
		t.Fatalf("no restarts journalled: %+v", res)
	}
	if res.FinalCount == 0 {
		t.Fatalf("no output: %+v", res)
	}
}
