package exp

import (
	"fmt"
	"time"

	"streamorca/internal/apps"
	"streamorca/internal/core"
	"streamorca/internal/extjob"
	"streamorca/internal/policies"
)

// E1Config parameterises experiment E1 (Figure 8): adaptation to the
// incoming data distribution via external model recomputation (§5.1).
type E1Config struct {
	// TweetPeriod is the inter-tweet emission delay.
	TweetPeriod time.Duration
	// ShiftAt is the tweet index where complaints shift to the unknown
	// cause (the paper's "around epoch 250" moment).
	ShiftAt int64
	// RecentWindow sizes the cause matcher's sliding ratio window.
	RecentWindow int64
	// Threshold is the actuation ratio (paper: 1.0).
	Threshold float64
	// JobLatency is the simulated batch-job duration.
	JobLatency time.Duration
	// Suppression bounds re-trigger frequency (paper: 10 minutes,
	// scaled).
	Suppression time.Duration
	// PullEvery is the experiment's metric pull cadence.
	PullEvery time.Duration
	// MaxDuration bounds the run.
	MaxDuration time.Duration
}

// DefaultE1 returns the scaled-down default configuration.
func DefaultE1() E1Config {
	return E1Config{
		TweetPeriod:  100 * time.Microsecond,
		ShiftAt:      4000,
		RecentWindow: 400,
		Threshold:    1.0,
		JobLatency:   30 * time.Millisecond,
		Suppression:  300 * time.Millisecond,
		PullEvery:    4 * time.Millisecond,
		MaxDuration:  30 * time.Second,
	}
}

// E1Result captures the Figure 8 curve and its milestones.
type E1Result struct {
	// Series is the unknown/known ratio per metric epoch.
	Series []policies.RatioPoint
	// CrossEpoch is the first epoch where the ratio exceeded the
	// threshold (0 if never).
	CrossEpoch uint64
	// RecoverEpoch is the first post-adaptation epoch back below 1.0
	// (0 if never).
	RecoverEpoch uint64
	// Triggers counts launched batch jobs.
	Triggers int
	// ModelVersion is the cause model's final version (2 after one
	// recomputation).
	ModelVersion int64
	// FinalCauses is the recomputed cause vocabulary.
	FinalCauses []string
}

// RunE1 executes the experiment: start the sentiment application under a
// ModelRecompute orchestrator, shift the complaint distribution
// mid-stream, and observe threshold crossing, batch-job triggering, and
// ratio recovery.
func RunE1(cfg E1Config) (*E1Result, error) {
	inst, err := newPlatform("h1", "h2")
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	modelID := uniq("e1-model")
	storeID := uniq("e1-store")
	collector := uniq("e1-display")
	extjob.SetModel(modelID, extjob.NewModel("flash", "screen"))

	app, err := apps.SentimentApp(apps.SentimentConfig{
		Name: "Sentiment", Collector: collector,
		ModelID: modelID, StoreID: storeID,
		Product: "iPhone", Seed: 42,
		Count: 0, Period: cfg.TweetPeriod,
		Causes: "flash,screen", ShiftAt: cfg.ShiftAt, CausesAfter: "antenna",
		RecentWindow: cfg.RecentWindow,
	})
	if err != nil {
		return nil, err
	}

	runner := extjob.NewRunner(nil, cfg.JobLatency)
	policy := &policies.ModelRecompute{
		App: "Sentiment", MatcherOp: apps.MatcherOp,
		ModelID: modelID, StoreID: storeID,
		Threshold: cfg.Threshold, Suppression: cfg.Suppression,
		Runner: runner, MinSupport: 10,
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "sentimentOrca", SAM: inst.SAM, SRM: inst.SRM,
		PullInterval: time.Hour, // driven explicitly below
	}, policy)
	if err != nil {
		return nil, err
	}
	if err := svc.RegisterApplication(app); err != nil {
		return nil, err
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	defer svc.Stop()

	model := extjob.GetModel(modelID)
	res := &E1Result{}
	deadline := time.Now().Add(cfg.MaxDuration)
	for time.Now().Before(deadline) {
		time.Sleep(cfg.PullEvery)
		inst.FlushMetrics()
		svc.PullMetricsNow()
		series := policy.Series()
		res.Series = series
		if res.CrossEpoch == 0 {
			for _, p := range series {
				if p.Ratio > cfg.Threshold {
					res.CrossEpoch = p.Epoch
					break
				}
			}
		}
		if res.CrossEpoch != 0 && model.Version() >= 2 && res.RecoverEpoch == 0 {
			for _, p := range series {
				if p.Epoch > res.CrossEpoch && p.Ratio < 1.0 {
					res.RecoverEpoch = p.Epoch
					break
				}
			}
		}
		if res.RecoverEpoch != 0 {
			// Let a few more epochs accumulate for the plot's tail.
			for i := 0; i < 10; i++ {
				time.Sleep(cfg.PullEvery)
				inst.FlushMetrics()
				svc.PullMetricsNow()
			}
			res.Series = policy.Series()
			break
		}
	}
	res.Triggers = policy.Triggers()
	res.ModelVersion = model.Version()
	res.FinalCauses = model.Causes()
	if res.CrossEpoch == 0 {
		return res, fmt.Errorf("e1: ratio never crossed the threshold")
	}
	if res.Triggers == 0 {
		return res, fmt.Errorf("e1: orchestrator never triggered the batch job")
	}
	if res.RecoverEpoch == 0 {
		return res, fmt.Errorf("e1: ratio never recovered below 1.0")
	}
	return res, nil
}
