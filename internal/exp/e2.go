package exp

import (
	"fmt"
	"time"

	"streamorca/internal/apps"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/ops"
	"streamorca/internal/policies"
)

// E2Config parameterises experiment E2 (Figure 9): replica failover on
// PE failure (§5.2). The paper's 600-second sliding window maps to
// Window; a tick plays the role of one second of market data.
type E2Config struct {
	// Window is the aggregation window (paper: 600 s).
	Window time.Duration
	// TickPeriod is the inter-tick delay; Window/TickPeriod ticks fill a
	// window.
	TickPeriod time.Duration
	// Sample is the output sampling cadence for the result series.
	Sample time.Duration
	// MaxDuration bounds the run.
	MaxDuration time.Duration
}

// DefaultE2 returns the scaled-down default configuration: a 600 ms
// window over 1 ms ticks — the same 600-sample window as the paper.
// Under the race detector the instrumented source cannot sustain 1 ms
// ticks, so the window and tick period stretch together (the window
// still holds the same ~600 samples).
func DefaultE2() E2Config {
	cfg := E2Config{
		Window:      600 * time.Millisecond,
		TickPeriod:  time.Millisecond,
		Sample:      25 * time.Millisecond,
		MaxDuration: 30 * time.Second,
	}
	if raceEnabled {
		cfg.Window *= 4
		cfg.TickPeriod *= 4
		cfg.Sample *= 4
		cfg.MaxDuration *= 2
	}
	return cfg
}

// E2Sample is one row of the Figure 9 series: the replicas' latest
// window fill and output volume at a point in time.
type E2Sample struct {
	Elapsed time.Duration
	Active  int // replica index
	// WindowCounts is each replica's most recent window size (the
	// "count" attribute of its last output tuple); -1 when no output yet.
	WindowCounts []int64
	// Outputs is each replica's cumulative output tuple count.
	Outputs []int
}

// E2Result captures the failover experiment.
type E2Result struct {
	Replicas        int
	Hosts           []string // host of each replica's aggregation PE
	ActiveBefore    int
	ActiveAfter     int
	KilledReplica   int
	FailoverLatency time.Duration // kill -> promotion observed
	OutputGap       time.Duration // kill -> first post-restart output from the failed replica
	RefillTime      time.Duration // kill -> failed replica's window back to >=95% of a healthy one
	FullWindow      int64         // healthy window size at kill time
	Series          []E2Sample
	Failovers       int
	Restarts        int
}

// RunE2 executes the failover experiment: three Trend Calculator
// replicas in exclusive host pools, kill the active replica's
// stateful aggregation PE, observe the promotion, the failed replica's
// output gap, and its slow window refill. E2 runs without a checkpoint
// store — no snapshot ages exist, so the staleness-ranked policy falls
// back to its uptime tie-break and promotes the oldest backup, exactly
// the paper's Figure 9 behaviour (RunStalenessFailover covers the
// checkpoint-aware promotion).
func RunE2(cfg E2Config) (*E2Result, error) {
	inst, err := newPlatform("h1", "h2", "h3", "h4")
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	app, err := apps.TrendApp(apps.TrendConfig{
		Name: "TrendCalculator", Symbols: "IBM", Seed: 7,
		Count: 0, Period: cfg.TickPeriod, Window: cfg.Window,
	})
	if err != nil {
		return nil, err
	}
	collPrefix := uniq("e2")
	collName := func(i int) string { return fmt.Sprintf("%s-replica-%d", collPrefix, i) }
	policy := &policies.Failover{
		App: "TrendCalculator", Replicas: 3,
		SubmitParams: func(i int) map[string]string {
			return map[string]string{"collector": collName(i)}
		},
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "trendOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, policy)
	if err != nil {
		return nil, err
	}
	if err := svc.RegisterApplication(app); err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ {
		ops.ResetCollector(collName(i))
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	defer svc.Stop()

	if !waitUntil(cfg.MaxDuration/3, time.Millisecond, func() bool { return len(policy.Jobs()) == 3 }) {
		return nil, fmt.Errorf("e2: replicas never came up")
	}
	jobs := policy.Jobs()
	res := &E2Result{Replicas: 3}

	// Exclusive pools must have separated the replicas' hosts.
	hostSet := map[string]bool{}
	for _, j := range jobs {
		pe, ok := svc.PEOfOperator(j, apps.TrendAggregateOp)
		if !ok {
			return nil, fmt.Errorf("e2: replica %s has no aggregation PE", j)
		}
		host, _ := svc.HostOfPE(pe)
		res.Hosts = append(res.Hosts, host)
		hostSet[host] = true
	}
	if len(hostSet) != 3 {
		return nil, fmt.Errorf("e2: replicas share hosts: %v", res.Hosts)
	}

	lastCount := func(i int) int64 {
		t, ok := ops.Collector(collName(i)).Last()
		if !ok {
			return -1
		}
		return t.Int("count")
	}
	fullWindow := int64(cfg.Window / cfg.TickPeriod)
	// Warm up: wait until every replica's window is ~full.
	warm := waitUntil(cfg.MaxDuration/2, time.Millisecond, func() bool {
		for i := 0; i < 3; i++ {
			if lastCount(i) < fullWindow*8/10 {
				return false
			}
		}
		return true
	})
	if !warm {
		return nil, fmt.Errorf("e2: windows never filled (counts %d %d %d, want ~%d)",
			lastCount(0), lastCount(1), lastCount(2), fullWindow)
	}
	res.FullWindow = lastCount(0)

	activeJob := policy.Active()
	res.ActiveBefore = policy.ReplicaIndex(activeJob)
	res.KilledReplica = res.ActiveBefore
	aggPE, _ := svc.PEOfOperator(activeJob, apps.TrendAggregateOp)
	killedLen := ops.Collector(collName(res.KilledReplica)).Len()

	sampleTicker := time.NewTicker(cfg.Sample)
	defer sampleTicker.Stop()
	start := time.Now()
	record := func() {
		s := E2Sample{Elapsed: time.Since(start), Active: policy.ReplicaIndex(policy.Active())}
		for i := 0; i < 3; i++ {
			s.WindowCounts = append(s.WindowCounts, lastCount(i))
			s.Outputs = append(s.Outputs, ops.Collector(collName(i)).Len())
		}
		res.Series = append(res.Series, s)
	}
	record()
	if err := svc.KillPE(aggPE, "injected failure of active replica"); err != nil {
		return nil, err
	}

	// Failover latency: until the policy promotes a backup.
	if !waitUntil(cfg.MaxDuration/3, 100*time.Microsecond, func() bool { return policy.Failovers() >= 1 }) {
		return nil, fmt.Errorf("e2: failover never happened")
	}
	res.FailoverLatency = time.Since(start)
	res.ActiveAfter = policy.ReplicaIndex(policy.Active())

	// Output gap: until the failed replica produces output again.
	if !waitUntil(cfg.MaxDuration/3, 100*time.Microsecond, func() bool {
		return ops.Collector(collName(res.KilledReplica)).Len() > killedLen
	}) {
		return nil, fmt.Errorf("e2: failed replica never resumed output")
	}
	res.OutputGap = time.Since(start)

	// Refill: sample the series until the failed replica's window count
	// is back to >=95% of a healthy replica's.
	healthy := res.ActiveAfter
	deadline := time.Now().Add(cfg.MaxDuration / 2)
	for time.Now().Before(deadline) {
		<-sampleTicker.C
		record()
		kc, hc := lastCount(res.KilledReplica), lastCount(healthy)
		if kc >= 0 && hc > 0 && kc*100 >= hc*95 {
			res.RefillTime = time.Since(start)
			break
		}
	}
	if res.RefillTime == 0 {
		return nil, fmt.Errorf("e2: window never refilled")
	}
	record()
	res.Failovers = policy.Failovers()
	res.Restarts = policy.Restarts()
	return res, nil
}

var _ = ids.InvalidJob
