package exp

import (
	"fmt"
	"time"

	"streamorca/internal/apps"
	"streamorca/internal/core"
	"streamorca/internal/policies"
)

// E3Config parameterises experiment E3 (Figure 10): on-demand dynamic
// application composition (§5.3).
type E3Config struct {
	// ProfilePeriod is each C1 reader's emission delay.
	ProfilePeriod time.Duration
	// Threshold is the new-profile count that spawns a C3 job (paper
	// example: 1500).
	Threshold int64
	// PullEvery is the metric pull cadence.
	PullEvery time.Duration
	// MaxDuration bounds the run.
	MaxDuration time.Duration
}

// DefaultE3 returns the scaled default configuration.
func DefaultE3() E3Config {
	return E3Config{
		ProfilePeriod: 100 * time.Microsecond,
		Threshold:     1500,
		PullEvery:     4 * time.Millisecond,
		MaxDuration:   30 * time.Second,
	}
}

// E3Sample is one row of the job-count timeline (the expansion and
// contraction of Figure 10's application graph).
type E3Sample struct {
	Elapsed time.Duration
	Jobs    int
}

// E3Result captures the composition experiment.
type E3Result struct {
	// BaseJobs is the steady-state job count (2 C1 + 3 C2 = 5).
	BaseJobs int
	// MaxJobs is the peak concurrent job count (base + C3 jobs).
	MaxJobs int
	// FinalJobs is the job count after contraction.
	FinalJobs int
	// Submissions and Cancellations list C3 attributes in event order.
	Submissions   []string
	Cancellations []string
	// StoreProfiles is the deduplicated profile-store size at the end.
	StoreProfiles int
	// Timeline is the sampled job count.
	Timeline []E3Sample
}

// RunE3 executes the composition experiment: C2 query applications are
// started through the dependency manager (bringing their C1 readers up
// automatically); profile-discovery metrics spawn C3 segmentation jobs
// per attribute; final punctuations contract the graph again.
func RunE3(cfg E3Config) (*E3Result, error) {
	inst, err := newPlatform("h1", "h2", "h3")
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	storeID := uniq("e3-profiles")
	social := apps.SocialConfig{StoreID: storeID, Seed: 11, Period: cfg.ProfilePeriod}

	c1 := map[string]string{"TwitterStreamReader": "twitter", "MySpaceStreamReader": "myspace"}
	c2Names := []string{"TwitterQuery", "BlogQuery", "FacebookQuery"}

	collPrefix := uniq("e3-seg")
	policy := &policies.Composition{
		C2Configs: []string{"cfg-TwitterQuery", "cfg-BlogQuery", "cfg-FacebookQuery"},
		C3App:     "AttributeAggregator",
		C3Collector: func(attr string) string {
			return fmt.Sprintf("%s-%s", collPrefix, attr)
		},
		Threshold: cfg.Threshold,
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "socialOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, policy)
	if err != nil {
		return nil, err
	}

	// Register applications and dependency configurations before start.
	for name, source := range c1 {
		app, err := apps.C1App(name, source, social)
		if err != nil {
			return nil, err
		}
		if err := svc.RegisterApplication(app); err != nil {
			return nil, err
		}
		if err := svc.RegisterAppConfig(core.AppConfig{
			ID: "cfg-" + name, AppName: name,
			GarbageCollectable: true, GCTimeout: 50 * time.Millisecond,
		}); err != nil {
			return nil, err
		}
	}
	for _, name := range c2Names {
		app, err := apps.C2App(name, social)
		if err != nil {
			return nil, err
		}
		if err := svc.RegisterApplication(app); err != nil {
			return nil, err
		}
		if err := svc.RegisterAppConfig(core.AppConfig{ID: "cfg-" + name, AppName: name}); err != nil {
			return nil, err
		}
		// None of the C1 applications build internal state, so all
		// uptime requirements are zero (§5.3).
		for c1name := range c1 {
			if err := svc.RegisterDependency("cfg-"+name, "cfg-"+c1name, 0); err != nil {
				return nil, err
			}
		}
	}
	c3, err := apps.C3App("AttributeAggregator", social)
	if err != nil {
		return nil, err
	}
	if err := svc.RegisterApplication(c3); err != nil {
		return nil, err
	}

	if err := svc.Start(); err != nil {
		return nil, err
	}
	defer svc.Stop()

	res := &E3Result{}
	if !waitUntil(cfg.MaxDuration/3, time.Millisecond, func() bool {
		return len(inst.SAM.Jobs()) == 5
	}) {
		return nil, fmt.Errorf("e3: C1/C2 set never came up (%d jobs)", len(inst.SAM.Jobs()))
	}
	res.BaseJobs = 5

	start := time.Now()
	deadline := start.Add(cfg.MaxDuration)
	wantAttrs := map[string]bool{"age": true, "gender": true, "location": true}
	for time.Now().Before(deadline) {
		time.Sleep(cfg.PullEvery)
		inst.FlushMetrics()
		svc.PullMetricsNow()
		n := len(inst.SAM.Jobs())
		res.Timeline = append(res.Timeline, E3Sample{Elapsed: time.Since(start), Jobs: n})
		if n > res.MaxJobs {
			res.MaxJobs = n
		}
		done := true
		cancelled := map[string]bool{}
		for _, a := range policy.Cancellations() {
			cancelled[a] = true
		}
		for a := range wantAttrs {
			if !cancelled[a] {
				done = false
			}
		}
		if done && len(inst.SAM.Jobs()) == res.BaseJobs {
			break
		}
	}
	res.Submissions = policy.Submissions()
	res.Cancellations = policy.Cancellations()
	res.FinalJobs = len(inst.SAM.Jobs())
	res.StoreProfiles = apps.GetProfileStore(storeID).Len()

	got := map[string]bool{}
	for _, a := range res.Submissions {
		got[a] = true
	}
	for a := range wantAttrs {
		if !got[a] {
			return res, fmt.Errorf("e3: no C3 submission for attribute %q (subs %v)", a, res.Submissions)
		}
	}
	if len(res.Cancellations) < 3 {
		return res, fmt.Errorf("e3: contraction incomplete: cancellations %v", res.Cancellations)
	}
	if res.MaxJobs <= res.BaseJobs {
		return res, fmt.Errorf("e3: graph never expanded (max %d)", res.MaxJobs)
	}
	if res.FinalJobs != res.BaseJobs {
		return res, fmt.Errorf("e3: graph did not contract (final %d)", res.FinalJobs)
	}
	return res, nil
}
