package exp

import (
	"fmt"
	"time"

	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
)

// E5Result captures the hot-path overhead experiment (§3's claim that
// orchestrator metric delivery never touches the tuple path: the ORCA
// service pulls SRM, and HC→SRM pushes happen regardless).
type E5Result struct {
	Tuples          int64
	BaselineTPS     float64
	WithOrcaTPS     float64
	OverheadPercent float64 // positive = orchestrator made it slower
	MetricEvents    uint64  // events the orchestrator consumed meanwhile
}

var e5Schema = tuple.MustSchema(tuple.Attribute{Name: "seq", Type: tuple.Int})

// RunE5 measures pipeline throughput for n tuples across three PEs, with
// and without an orchestrator aggressively pulling broad metric scopes.
func RunE5(n int64) (*E5Result, error) {
	res := &E5Result{Tuples: n}

	runOnce := func(withOrca bool) (float64, uint64, error) {
		inst, err := newPlatform("h1")
		if err != nil {
			return 0, 0, err
		}
		defer inst.Close()
		collector := uniq("e5")
		ops.ResetCollector(collector)
		b := compiler.NewApp("E5")
		src := b.AddOperator("src", ops.KindBeacon).Out(e5Schema).Param("count", fmt.Sprint(n))
		fn := b.AddOperator("fn", ops.KindFunctor).In(e5Schema).Out(e5Schema).Param("addInt", "seq:1")
		sink := b.AddOperator("sink", ops.KindCollectSink).In(e5Schema).
			Param("collectorId", collector).Param("limit", "1")
		b.Connect(src, 0, fn, 0)
		b.Connect(fn, 0, sink, 0)
		app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
		if err != nil {
			return 0, 0, err
		}

		var svc *core.Service
		var events uint64
		stopPull := make(chan struct{})
		pullDone := make(chan struct{})
		if withOrca {
			svc, err = core.NewRoutineService(core.Config{
				Name: "e5orca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
			}, e5Routine{})
			if err != nil {
				return 0, 0, err
			}
			if err := svc.RegisterApplication(app); err != nil {
				return 0, 0, err
			}
			if err := svc.Start(); err != nil {
				return 0, 0, err
			}
			defer svc.Stop()
			go func() {
				defer close(pullDone)
				for {
					select {
					case <-stopPull:
						return
					case <-time.After(2 * time.Millisecond):
						inst.FlushMetrics()
						svc.PullMetricsNow()
					}
				}
			}()
		} else {
			close(pullDone)
		}

		start := time.Now()
		if withOrca {
			if _, err := svc.SubmitApplication("E5", nil); err != nil {
				return 0, 0, err
			}
		} else {
			if _, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{}); err != nil {
				return 0, 0, err
			}
		}
		if !waitUntil(5*time.Minute, 200*time.Microsecond, func() bool {
			return ops.Collector(collector).Finals() == 1
		}) {
			return 0, 0, fmt.Errorf("e5: pipeline never finished")
		}
		elapsed := time.Since(start)
		close(stopPull)
		<-pullDone
		if withOrca {
			events = svc.Stats().MatchedEvents
		}
		return float64(n) / elapsed.Seconds(), events, nil
	}

	tps, _, err := runOnce(false)
	if err != nil {
		return nil, err
	}
	res.BaselineTPS = tps
	tps, events, err := runOnce(true)
	if err != nil {
		return nil, err
	}
	res.WithOrcaTPS = tps
	res.MetricEvents = events
	res.OverheadPercent = (res.BaselineTPS - res.WithOrcaTPS) / res.BaselineTPS * 100
	return res, nil
}

// e5Routine consumes metric events without acting, to measure pure
// delivery cost: a broad unfiltered subscription with a no-op handler.
type e5Routine struct{}

func (e5Routine) Name() string { return "e5" }

func (e5Routine) Setup(sc *core.SetupContext) error {
	return sc.Subscribe(core.OnOperatorMetric(core.NewOperatorMetricScope("all"),
		func(*core.OperatorMetricContext, *core.Actions) error { return nil }))
}

var _ = metrics.OpQueueSize
