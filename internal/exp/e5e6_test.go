package exp

import "testing"

// TestExperimentE5 asserts the §3 hot-path claim's shape: attaching an
// aggressively pulling orchestrator costs little pipeline throughput
// (well under 2x; typically a few percent — the assertion is generous to
// absorb CI noise).
func TestExperimentE5(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput experiment")
	}
	res, err := RunE5(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineTPS <= 0 || res.WithOrcaTPS <= 0 {
		t.Fatalf("throughputs: %f / %f", res.BaselineTPS, res.WithOrcaTPS)
	}
	if res.WithOrcaTPS < res.BaselineTPS/2 {
		t.Fatalf("orchestrator halved throughput: %.0f -> %.0f tps (%.1f%%)",
			res.BaselineTPS, res.WithOrcaTPS, res.OverheadPercent)
	}
	if res.MetricEvents == 0 {
		t.Fatal("orchestrator consumed no metric events; measurement invalid")
	}
}

// TestExperimentE6 asserts the failure-reaction ordering: platform
// auto-restart <= orchestrated restart <= orchestrated restart with a
// slow handler, and the slow-handler penalty reflects the injected 5 ms.
func TestExperimentE6(t *testing.T) {
	if testing.Short() {
		t.Skip("latency experiment")
	}
	res, err := RunE6(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoRestart <= 0 || res.OrcaRestart <= 0 || res.OrcaSlowHandler <= 0 {
		t.Fatalf("latencies: %+v", res)
	}
	// The slow handler must cost at least most of its injected delay over
	// the no-op orchestrated path.
	if res.OrcaSlowHandler < res.OrcaRestart+res.HandlerDelay/2 {
		t.Fatalf("handler delay not reflected: noop=%v slow=%v (injected %v)",
			res.OrcaRestart, res.OrcaSlowHandler, res.HandlerDelay)
	}
	// Orchestrated recovery should be the same order of magnitude as
	// auto-restart (one extra in-process hop), not 10x.
	if res.OrcaRestart > res.AutoRestart*10+res.HandlerDelay {
		t.Fatalf("orchestrated restart implausibly slow: auto=%v orca=%v",
			res.AutoRestart, res.OrcaRestart)
	}
}
