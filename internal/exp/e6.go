package exp

import (
	"fmt"
	"sort"
	"time"

	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/ops"
	"streamorca/internal/sam"
)

// E6Result quantifies §3's failure-reaction claim: orchestrated recovery
// costs the platform's own detection plus one extra hop (SAM → ORCA
// service) plus whatever the user handler does.
type E6Result struct {
	Trials int
	// AutoRestart is the median kill→running latency under SAM's own
	// restart flag (no orchestrator involved).
	AutoRestart time.Duration
	// OrcaRestart is the median latency with a no-op ORCA failure
	// handler calling RestartPE.
	OrcaRestart time.Duration
	// OrcaSlowHandler adds a deliberate 5 ms of user handler work.
	OrcaSlowHandler time.Duration
	// HandlerDelay is the injected user-handler latency.
	HandlerDelay time.Duration
}

// e6Policy restarts failed PEs, optionally simulating user handler work.
type e6Policy struct {
	app   string
	delay time.Duration
	done  chan ids.PEID
}

func (p *e6Policy) Name() string { return "e6" }

func (p *e6Policy) Setup(sc *core.SetupContext) error {
	return sc.Subscribe(core.OnPEFailure(
		core.NewPEFailureScope("f").AddApplicationFilter(p.app), p.onPEFailure))
}

func (p *e6Policy) onPEFailure(ctx *core.PEFailureContext, act *core.Actions) error {
	if p.delay > 0 {
		time.Sleep(p.delay) // the user-specific failure handling routine
	}
	if err := act.RestartPE(ctx.PE); err != nil {
		return err
	}
	p.done <- ctx.PE
	return nil
}

// RunE6 measures kill→recovered latency over several trials for three
// recovery paths and reports medians.
func RunE6(trials int) (*E6Result, error) {
	if trials <= 0 {
		trials = 5
	}
	res := &E6Result{Trials: trials, HandlerDelay: 5 * time.Millisecond}

	mkApp := func(name, collector string, auto bool) (*compiler.AppBuilder, error) {
		b := compiler.NewApp(name)
		src := b.AddOperator("src", ops.KindBeacon).Out(e5Schema).
			Param("count", "0").Param("period", "500us")
		sink := b.AddOperator("sink", ops.KindCollectSink).In(e5Schema).
			Param("collectorId", collector).Param("limit", "10")
		b.Connect(src, 0, sink, 0)
		return b, nil
	}

	sinkPEOf := func(inst interface {
		Job(ids.JobID) (sam.JobInfo, bool)
	}, job ids.JobID) ids.PEID {
		info, _ := inst.Job(job)
		for _, p := range info.PEs {
			if len(p.Operators) == 1 && p.Operators[0] == "sink" {
				return p.ID
			}
		}
		return ids.InvalidPE
	}

	waitRunning := func(s *sam.SAM, job ids.JobID, pe ids.PEID, restarts int) bool {
		return waitUntil(10*time.Second, 50*time.Microsecond, func() bool {
			info, ok := s.Job(job)
			if !ok {
				return false
			}
			for _, p := range info.PEs {
				if p.ID == pe {
					return p.State == "running" && p.Restarts >= restarts
				}
			}
			return false
		})
	}

	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}

	// (a) platform auto-restart. SAM notifies the owner's listener after
	// performing the auto-restart inside its failure handler, so the
	// notification timestamp marks restart completion without polling
	// (sleep-based polling would swamp the µs-scale latencies with timer
	// granularity).
	var autos []time.Duration
	{
		inst, err := newPlatform("h1")
		if err != nil {
			return nil, err
		}
		collector := uniq("e6a")
		ops.ResetCollector(collector)
		b, _ := mkApp("E6auto", collector, true)
		app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
		if err != nil {
			inst.Close()
			return nil, err
		}
		for i := range app.PEs {
			app.PEs[i].Restart = true
		}
		restarted := make(chan time.Time, trials)
		inst.SAM.AddListener("e6probe", sam.Listener{
			PEFailed: func(sam.PEFailure) { restarted <- time.Now() },
		})
		job, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{Owner: "e6probe"})
		if err != nil {
			inst.Close()
			return nil, err
		}
		pe := sinkPEOf(inst.SAM, job)
		for i := 1; i <= trials; i++ {
			start := time.Now()
			if err := inst.SAM.KillPE(pe, "e6"); err != nil {
				inst.Close()
				return nil, err
			}
			select {
			case at := <-restarted:
				autos = append(autos, at.Sub(start))
			case <-time.After(10 * time.Second):
				inst.Close()
				return nil, fmt.Errorf("e6: auto-restart trial %d never recovered", i)
			}
			if !waitRunning(inst.SAM, job, pe, i) {
				inst.Close()
				return nil, fmt.Errorf("e6: auto-restart trial %d inconsistent state", i)
			}
		}
		inst.Close()
	}
	res.AutoRestart = median(autos)

	// (b, c) orchestrated restart, with and without handler work.
	orcaRun := func(delay time.Duration) (time.Duration, error) {
		inst, err := newPlatform("h1")
		if err != nil {
			return 0, err
		}
		defer inst.Close()
		collector := uniq("e6o")
		ops.ResetCollector(collector)
		b, _ := mkApp("E6orca", collector, false)
		app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
		if err != nil {
			return 0, err
		}
		policy := &e6Policy{app: "E6orca", delay: delay, done: make(chan ids.PEID, trials)}
		svc, err := core.NewRoutineService(core.Config{
			Name: "e6orca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
		}, policy)
		if err != nil {
			return 0, err
		}
		if err := svc.RegisterApplication(app); err != nil {
			return 0, err
		}
		if err := svc.Start(); err != nil {
			return 0, err
		}
		defer svc.Stop()
		job, err := svc.SubmitApplication("E6orca", nil)
		if err != nil {
			return 0, err
		}
		pe := sinkPEOf(inst.SAM, job)
		var ds []time.Duration
		for i := 1; i <= trials; i++ {
			start := time.Now()
			if err := svc.KillPE(pe, "e6"); err != nil {
				return 0, err
			}
			select {
			case <-policy.done:
				ds = append(ds, time.Since(start))
			case <-time.After(10 * time.Second):
				return 0, fmt.Errorf("e6: orca trial %d never recovered", i)
			}
			if !waitRunning(inst.SAM, job, pe, i) {
				return 0, fmt.Errorf("e6: orca trial %d PE not running", i)
			}
		}
		return median(ds), nil
	}
	var err error
	if res.OrcaRestart, err = orcaRun(0); err != nil {
		return nil, err
	}
	if res.OrcaSlowHandler, err = orcaRun(res.HandlerDelay); err != nil {
		return nil, err
	}
	return res, nil
}
