// Package exp implements the paper's experiments as runnable,
// self-contained functions returning structured results. Integration
// tests assert the *shape* of each result (who wins, where crossings
// fall); cmd/expdriver prints the same results as CSV series for
// EXPERIMENTS.md. Scales are configurable: the defaults compress the
// paper's wall-clock scales (600 s windows, 15 s pulls) by three orders
// of magnitude while preserving every ratio that matters.
package exp

import (
	"fmt"
	"sync/atomic"
	"time"

	"streamorca/internal/platform"
)

// runSeq uniquifies the shared-registry ids (models, stores, collectors)
// across experiment runs within one process.
var runSeq atomic.Int64

func uniq(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, runSeq.Add(1))
}

// newPlatform boots a real-clock instance with the given hosts and a
// long HC metric push interval — experiments flush metrics explicitly so
// each orchestrator pull round sees fresh values.
func newPlatform(hosts ...string) (*platform.Instance, error) {
	specs := make([]platform.HostSpec, len(hosts))
	for i, h := range hosts {
		specs[i] = platform.HostSpec{Name: h}
	}
	return platform.NewInstance(platform.Options{
		Hosts:           specs,
		MetricsInterval: time.Hour,
	})
}

// waitUntil polls cond every step until it holds or the deadline passes;
// it reports whether the condition held.
func waitUntil(timeout, step time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(step)
	}
	return cond()
}
