package exp

import (
	"testing"
	"time"
)

// TestExperimentE1 asserts Figure 8's shape: the unknown/known ratio
// starts below the threshold, crosses it after the cause-distribution
// shift, the orchestrator triggers exactly enough batch jobs, and after
// the model refresh the ratio stabilises below 1.0 with the new cause in
// the model.
func TestExperimentE1(t *testing.T) {
	res, err := RunE1(DefaultE1())
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossEpoch == 0 || res.RecoverEpoch <= res.CrossEpoch {
		t.Fatalf("milestones: cross=%d recover=%d", res.CrossEpoch, res.RecoverEpoch)
	}
	// Early epochs (before the shift propagates) sit below the threshold.
	var sawLowBeforeCross bool
	for _, p := range res.Series {
		if p.Epoch < res.CrossEpoch && p.Ratio < 1.0 {
			sawLowBeforeCross = true
			break
		}
	}
	if !sawLowBeforeCross {
		t.Fatalf("no pre-shift low-ratio measurements: %+v", res.Series[:min(5, len(res.Series))])
	}
	if res.Triggers < 1 {
		t.Fatalf("triggers = %d", res.Triggers)
	}
	if res.ModelVersion < 2 {
		t.Fatalf("model version = %d", res.ModelVersion)
	}
	found := false
	for _, c := range res.FinalCauses {
		if c == "antenna" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recomputed model misses the new cause: %v", res.FinalCauses)
	}
	// The tail of the series (post-recovery) stays below 1.0.
	tail := res.Series[len(res.Series)-1]
	if tail.Ratio >= 1.0 {
		t.Fatalf("tail ratio = %f", tail.Ratio)
	}
}

// TestExperimentE2 asserts Figure 9's shape: replicas on distinct hosts,
// failover to the oldest backup, an output gap for the failed replica,
// and a window refill that takes on the order of the window duration.
func TestExperimentE2(t *testing.T) {
	cfg := DefaultE2()
	res, err := RunE2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveBefore == res.ActiveAfter {
		t.Fatalf("active replica unchanged: %d", res.ActiveBefore)
	}
	// The promoted replica is the oldest healthy one: replica 1 when 0
	// was active and killed (submission order ties broken by age).
	if res.ActiveBefore == 0 && res.ActiveAfter != 1 {
		t.Fatalf("promoted replica %d, want the oldest backup (1)", res.ActiveAfter)
	}
	if res.Failovers != 1 || res.Restarts != 1 {
		t.Fatalf("failovers=%d restarts=%d", res.Failovers, res.Restarts)
	}
	if res.FailoverLatency <= 0 || res.FailoverLatency > cfg.Window {
		t.Fatalf("failover latency %v out of range", res.FailoverLatency)
	}
	// Refill takes roughly a window: at least half of it, definitely
	// longer than the failover itself.
	if res.RefillTime < cfg.Window/2 {
		t.Fatalf("window refilled implausibly fast: %v (window %v)", res.RefillTime, cfg.Window)
	}
	if res.RefillTime <= res.FailoverLatency {
		t.Fatal("refill faster than failover")
	}
	// Right after restart the failed replica's window must have been
	// observed smaller than the healthy one's (the Figure 9b dashed box).
	sawSmall := false
	for _, s := range res.Series {
		kc := s.WindowCounts[res.KilledReplica]
		hc := s.WindowCounts[res.ActiveAfter]
		if kc >= 0 && hc > 0 && kc < hc/2 {
			sawSmall = true
			break
		}
	}
	if !sawSmall {
		t.Fatal("never observed the refilling window below half of healthy")
	}
}

// TestExperimentE3 asserts Figure 10's shape: the application graph
// expands with C3 jobs per attribute and contracts back to the base set.
func TestExperimentE3(t *testing.T) {
	res, err := RunE3(DefaultE3())
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseJobs != 5 || res.MaxJobs < 6 || res.FinalJobs != 5 {
		t.Fatalf("jobs: base=%d max=%d final=%d", res.BaseJobs, res.MaxJobs, res.FinalJobs)
	}
	if len(res.Submissions) < 3 || len(res.Cancellations) < 3 {
		t.Fatalf("subs=%v cancels=%v", res.Submissions, res.Cancellations)
	}
	if res.StoreProfiles == 0 {
		t.Fatal("profile store empty")
	}
	// The timeline must actually show expansion and contraction.
	var expanded, contracted bool
	for _, s := range res.Timeline {
		if s.Jobs > res.BaseJobs {
			expanded = true
		}
		if expanded && s.Jobs == res.BaseJobs {
			contracted = true
		}
	}
	if !expanded || !contracted {
		t.Fatalf("timeline lacks expansion/contraction: %+v", res.Timeline)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = time.Second
