package exp

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/load"
	"streamorca/internal/metrics"
	"streamorca/internal/platform"
	"streamorca/internal/policies"
	"streamorca/internal/tuple"
	"streamorca/internal/workload"
)

// FissionConfig parameterises the fission scenario — the adaptation
// showcase. The run has two halves:
//
//   - Capacity probes: the same pipeline (open-loop source -> a
//     key-partitioned KeyedWorker region -> latency sink) is driven to
//     saturation on a skew-free workload at width 1 and again at width
//     MaxWidth, establishing that replicas multiply the region's
//     capacity ceiling (sustained tps at MaxWidth must be at least
//     MinSpeedup x width 1).
//   - Adaptive phase: the region starts at width 1 under a Zipf-skewed
//     load offered above its capacity, and a policies.Fission routine —
//     not the dataplane — watches the region's ingress rate gauge and
//     actuates ResizeRegion through its Threshold/Debounce gate. The
//     run asserts the routine widened at least once; the region's
//     per-key state rides the width changes through snapshot migration.
type FissionConfig struct {
	// Seed drives key generation and payloads.
	Seed int64
	// ProbeRate is the deliberately oversubscribing offered rate of the
	// capacity probes; ProbeDuration its schedule length. The probe
	// measures sustained (delivered) throughput, not offered.
	ProbeRate     float64
	ProbeDuration time.Duration
	// AdaptFactor sets the adaptive phase's offered rate as a multiple
	// of the measured width-1 capacity; AdaptDuration its length.
	AdaptFactor   float64
	AdaptDuration time.Duration
	// Keys is the user-key-space size; Skew the adaptive phase's Zipf
	// exponent (the probes always run skew-free).
	Keys int
	Skew float64
	// WorkDelay is the KeyedWorker's per-tuple service time — the
	// capacity ceiling one replica has and added replicas multiply
	// (being a wait, not a CPU burn, the multiplication holds even on a
	// single-core machine: parallel replicas overlap their waits).
	WorkDelay time.Duration
	// MaxWidth caps the region (and is the wide probe's width).
	MaxWidth int
	// MinSpeedup is the required sustained-throughput ratio between the
	// MaxWidth and width-1 probes.
	MinSpeedup float64
	// WidenFraction positions the routine's WidenAboveRate at this
	// fraction of the measured width-1 capacity.
	WidenFraction float64
	// MetricsInterval is the HC push period and the orchestrator pull
	// interval; CheckpointInterval the periodic snapshot period.
	MetricsInterval    time.Duration
	CheckpointInterval time.Duration
	// MaxDuration bounds the whole run.
	MaxDuration time.Duration
}

// DefaultFission returns the scaled-down default configuration.
func DefaultFission(seed int64) FissionConfig {
	cfg := FissionConfig{
		Seed:               seed,
		ProbeRate:          5000,
		ProbeDuration:      400 * time.Millisecond,
		AdaptFactor:        1.5,
		AdaptDuration:      2 * time.Second,
		Keys:               20000,
		Skew:               1.1,
		WorkDelay:          time.Millisecond,
		MaxWidth:           3,
		MinSpeedup:         1.5,
		WidenFraction:      0.5,
		MetricsInterval:    25 * time.Millisecond,
		CheckpointInterval: 50 * time.Millisecond,
		MaxDuration:        60 * time.Second,
	}
	if raceEnabled {
		cfg.MetricsInterval *= 2
		cfg.CheckpointInterval *= 2
		cfg.MaxDuration *= 2
	}
	return cfg
}

// FissionResult captures the probes' capacity ceilings and the adaptive
// phase's actuations.
type FissionResult struct {
	// W1Sustained and WideSustained are the probes' sustained tps at
	// width 1 and MaxWidth; Speedup their ratio.
	W1Sustained   float64
	WideSustained float64
	Speedup       float64
	// WidenAboveRate is the ingress threshold handed to the routine.
	WidenAboveRate int64
	// AdaptRate is the adaptive phase's offered rate.
	AdaptRate float64
	// Widenings and FinalWidth report the routine's actuations;
	// Log is its width-change history.
	Widenings  int
	FinalWidth int
	Log        []policies.WidthChange
	// Offered/Delivered/Lost count the adaptive phase's tuples. Lost is
	// expected to be non-zero: every resize drops the region's
	// in-flight tuples (§5.2 at-most-once semantics).
	Offered   int64
	Delivered int64
	Lost      int64
	// P50Ms/P99Ms are the adaptive phase's latency percentiles.
	P50Ms, P99Ms float64
	// ReplicaTuples maps each final-width replica to the tuples it
	// processed since it (re)started at the last resize.
	ReplicaTuples map[string]int64
	// HotKeyShare is the adaptive key generator's analytic top-1%
	// traffic share.
	HotKeyShare float64
}

// fissionSchema is the event schema all fission pipelines share.
func fissionSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Attribute{Name: "user", Type: tuple.String},
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "ts", Type: tuple.Timestamp},
	)
}

// fissionApp builds source -> KeyedWorker region (width w) -> sink.
func fissionApp(name, injID, meterID string, width int, delay time.Duration) (*adl.Application, error) {
	s := fissionSchema()
	b := compiler.NewApp(name)
	src := b.AddOperator("src", load.KindLoadSource).Out(s).Param("injectorId", injID)
	work := b.AddOperator("work", load.KindKeyedWorker).In(s).Out(s).
		Param("keyAttr", "user").Param("delay", delay.String()).
		Parallel(width)
	lat := b.AddOperator("lat", load.KindLatencySink).In(s).
		Param("meterId", meterID).Param("tsAttr", "ts")
	b.Connect(src, 0, work, 0)
	b.Connect(work, 0, lat, 0)
	return b.Build(compiler.Options{Fusion: compiler.FuseNone})
}

// fissionRun is one driven pipeline execution: submit the app through
// the given service, offer the load, drain, and report sustained tps.
type fissionRun struct {
	svc   *core.Service
	inst  *platform.Instance
	job   ids.JobID
	inj   *load.Injector
	meter *load.Meter
	start time.Time
}

func startFissionRun(inst *platform.Instance, svc *core.Service, injID, meterID string, cfg FissionConfig) (*fissionRun, error) {
	jobs := svc.ManagedJobs()
	if len(jobs) != 1 {
		return nil, fmt.Errorf("fission: expected 1 managed job, got %d", len(jobs))
	}
	r := &fissionRun{
		svc: svc, inst: inst, job: jobs[0].Job,
		inj: load.InjectorFor(injID), meter: load.MeterFor(meterID),
	}
	running := func() bool {
		for _, j := range inst.SAM.Jobs() {
			if j.ID != r.job {
				continue
			}
			for _, p := range j.PEs {
				if p.State != "running" {
					return false
				}
			}
			return true
		}
		return false
	}
	if !waitUntil(cfg.MaxDuration/8, time.Millisecond, running) {
		return nil, fmt.Errorf("fission: pipeline never came up")
	}
	r.start = time.Now()
	r.meter.Arm(r.start, 200*time.Millisecond)
	return r, nil
}

// drive offers rate tuples/sec for duration with seeded keys of the
// given skew, closes the stream, and drains. It returns the driver
// stats and the instant of the last observed delivery.
func (r *fissionRun) drive(cfg FissionConfig, rate float64, duration time.Duration, skew float64) (load.Stats, time.Time, error) {
	keys := workload.NewKeyGen(workload.KeyConfig{Seed: cfg.Seed, N: cfg.Keys, Skew: skew})
	payload := rand.New(rand.NewSource(cfg.Seed + 1))
	s := fissionSchema()
	userRef, seqRef := s.MustRef("user"), s.MustRef("seq")
	st, err := load.RunOpenLoop(load.OpenLoopConfig{
		Injector: r.inj,
		Make: func(i int64) tuple.Tuple {
			t := tuple.New(s)
			userRef.SetStr(t, keys.Next())
			seqRef.SetInt(t, int64(payload.Intn(1000))+i)
			return t
		},
		TsAttr: "ts", Rate: rate, Duration: duration,
	})
	if err != nil {
		return st, time.Time{}, err
	}
	r.inj.Close()
	quietFor := 4 * cfg.MetricsInterval
	deadline := time.Now().Add(cfg.MaxDuration / 8)
	lastN, lastChange := r.meter.Delivered(), time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(cfg.MetricsInterval / 2)
		if n := r.meter.Delivered(); n != lastN {
			lastN, lastChange = n, time.Now()
			continue
		}
		if lastN >= st.Offered || time.Since(lastChange) > quietFor {
			break
		}
	}
	return st, lastChange, nil
}

// fissionProbe saturates a fixed-width pipeline on a skew-free
// workload and returns its sustained throughput.
func fissionProbe(cfg FissionConfig, width int) (float64, error) {
	inst, err := newPlatform("h1", "h2", "h3")
	if err != nil {
		return 0, err
	}
	defer inst.Close()
	appName := fmt.Sprintf("FissionProbe%d", width)
	injID, meterID := uniq("fission-inj"), uniq("fission-meter")
	app, err := fissionApp(appName, injID, meterID, width, cfg.WorkDelay)
	if err != nil {
		return 0, err
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "probeOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, &loadPolicy{app: appName})
	if err != nil {
		return 0, err
	}
	if err := svc.RegisterApplication(app); err != nil {
		return 0, err
	}
	if err := svc.Start(); err != nil {
		return 0, err
	}
	defer svc.Stop()
	run, err := startFissionRun(inst, svc, injID, meterID, cfg)
	if err != nil {
		return 0, err
	}
	_, lastAt, err := run.drive(cfg, cfg.ProbeRate, cfg.ProbeDuration, 0)
	if err != nil {
		return 0, err
	}
	delivered := run.meter.Delivered()
	if delivered == 0 {
		return 0, fmt.Errorf("fission: width-%d probe delivered nothing", width)
	}
	elapsed := lastAt.Sub(run.start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("fission: width-%d probe too fast to measure", width)
	}
	return float64(delivered) / elapsed, nil
}

// RunFission executes the fission scenario and returns its
// measurements; the capacity and adaptation assertions are enforced
// here, so a passing run is the demonstration.
func RunFission(cfg FissionConfig) (*FissionResult, error) {
	if cfg.MaxWidth < 2 {
		return nil, fmt.Errorf("fission: MaxWidth %d < 2 proves nothing", cfg.MaxWidth)
	}

	res := &FissionResult{}
	w1, err := fissionProbe(cfg, 1)
	if err != nil {
		return nil, err
	}
	wide, err := fissionProbe(cfg, cfg.MaxWidth)
	if err != nil {
		return nil, err
	}
	res.W1Sustained, res.WideSustained = w1, wide
	res.Speedup = wide / w1
	if res.Speedup < cfg.MinSpeedup {
		return res, fmt.Errorf("fission: width %d sustained only %.2fx width 1 (%.0f vs %.0f tps), need >= %.2fx",
			cfg.MaxWidth, res.Speedup, wide, w1, cfg.MinSpeedup)
	}

	// Adaptive phase: width 1 under a skewed overload, a checkpointing
	// platform (so resizes migrate real per-key state), and the Fission
	// routine deciding when to widen.
	inst, err := platform.NewInstance(platform.Options{
		Hosts:              []platform.HostSpec{{Name: "h1"}, {Name: "h2"}, {Name: "h3"}},
		MetricsInterval:    cfg.MetricsInterval,
		Checkpoint:         ckpt.NewMemStore(),
		CheckpointInterval: cfg.CheckpointInterval,
	})
	if err != nil {
		return res, err
	}
	defer inst.Close()

	appName := "Fission"
	injID, meterID := uniq("fission-inj"), uniq("fission-meter")
	app, err := fissionApp(appName, injID, meterID, 1, cfg.WorkDelay)
	if err != nil {
		return res, err
	}
	res.WidenAboveRate = int64(cfg.WidenFraction * w1)
	res.AdaptRate = cfg.AdaptFactor * w1
	policy := &policies.Fission{
		App: appName, Region: "work",
		MaxWidth:       cfg.MaxWidth,
		WidenAboveRate: res.WidenAboveRate,
		Cooldown:       8 * cfg.MetricsInterval,
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "fissionOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: cfg.MetricsInterval,
	}, policy)
	if err != nil {
		return res, err
	}
	if err := svc.RegisterApplication(app); err != nil {
		return res, err
	}
	if err := svc.Start(); err != nil {
		return res, err
	}
	defer svc.Stop()

	run, err := startFissionRun(inst, svc, injID, meterID, cfg)
	if err != nil {
		return res, err
	}
	st, _, err := run.drive(cfg, res.AdaptRate, cfg.AdaptDuration, cfg.Skew)
	if err != nil {
		return res, err
	}

	keys := workload.NewKeyGen(workload.KeyConfig{Seed: cfg.Seed, N: cfg.Keys, Skew: cfg.Skew})
	res.HotKeyShare = keys.TopShare(0.01)
	res.Offered = st.Offered
	res.Delivered = run.meter.Delivered()
	res.Lost = res.Offered - res.Delivered
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	res.P50Ms, res.P99Ms = ms(run.meter.Hist.Quantile(0.5)), ms(run.meter.Hist.Quantile(0.99))
	res.Widenings = policy.Widenings()
	res.FinalWidth = policy.Width()
	res.Log = policy.Log()

	res.ReplicaTuples = map[string]int64{}
	if resized, ok := inst.SAM.JobADL(policy.Job()); ok {
		if region := resized.Region("work"); region != nil {
			for _, rep := range region.Replicas {
				if peID, ok := svc.PEOfOperator(policy.Job(), rep); ok {
					if c, ok := inst.Cluster.PEContainer(peID); ok {
						res.ReplicaTuples[rep] = c.PEMetrics().Counter(metrics.PETuplesProcessed).Value()
					}
				}
			}
		}
	}

	if res.Delivered == 0 {
		return res, fmt.Errorf("fission: adaptive phase delivered nothing")
	}
	if res.Widenings < 1 {
		return res, fmt.Errorf("fission: routine never widened the region (ingress threshold %d tps, offered %.0f tps)",
			res.WidenAboveRate, res.AdaptRate)
	}
	if w, ok := svc.RegionWidth(policy.Job(), "work"); !ok || w != res.FinalWidth {
		return res, fmt.Errorf("fission: platform width %d (ok=%v) disagrees with routine width %d", w, ok, res.FinalWidth)
	}
	return res, nil
}

// BenchReport renders the result in the shared BENCH_*.json schema.
// Deterministic facts (config echo, analytic key skew) go in Meta;
// wall-clock-dependent measurements in Metrics.
func (r *FissionResult) BenchReport(cfg FissionConfig) *load.Report {
	rep := &load.Report{
		Name: "fission",
		Seed: cfg.Seed,
		Meta: map[string]string{
			"keys":          strconv.Itoa(cfg.Keys),
			"skew":          strconv.FormatFloat(cfg.Skew, 'f', -1, 64),
			"work_delay":    cfg.WorkDelay.String(),
			"max_width":     strconv.Itoa(cfg.MaxWidth),
			"min_speedup":   strconv.FormatFloat(cfg.MinSpeedup, 'f', -1, 64),
			"adapt_factor":  strconv.FormatFloat(cfg.AdaptFactor, 'f', -1, 64),
			"hot_key_share": strconv.FormatFloat(r.HotKeyShare, 'f', 4, 64),
		},
		Metrics: map[string]float64{
			"w1_sustained_tps":   r.W1Sustained,
			"wide_sustained_tps": r.WideSustained,
			"speedup_x":          r.Speedup,
			"widen_above_tps":    float64(r.WidenAboveRate),
			"adapt_offered_tps":  r.AdaptRate,
			"adaptive_widenings": float64(r.Widenings),
			"final_width":        float64(r.FinalWidth),
			"delivered":          float64(r.Delivered),
			"lost":               float64(r.Lost),
			"p50_ms":             r.P50Ms,
			"p99_ms":             r.P99Ms,
		},
	}
	var replicaTotal int64
	for _, n := range r.ReplicaTuples {
		replicaTotal += n
	}
	for name, n := range r.ReplicaTuples {
		rep.Metrics["tuples_"+name] = float64(n)
		if replicaTotal > 0 {
			rep.Metrics["share_"+name] = float64(n) / float64(replicaTotal)
		}
	}
	return rep
}
