package exp

import (
	"testing"
	"time"
)

// TestFissionScenarioSmoke runs a shrunk elastic-fission scenario end
// to end: the capacity probes must show the configured speedup, the
// adaptation routine (not the driver) must widen the region at least
// once under the skewed load, and the recorded bench report must carry
// consistent widths and per-replica traffic shares.
func TestFissionScenarioSmoke(t *testing.T) {
	cfg := DefaultFission(7)
	cfg.MaxWidth = 2
	cfg.MinSpeedup = 1.3
	cfg.ProbeRate = 3000
	cfg.ProbeDuration = 300 * time.Millisecond
	cfg.AdaptDuration = time.Second
	cfg.Keys = 5000
	if raceEnabled {
		cfg.ProbeRate = 1500
	}
	res, err := RunFission(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < cfg.MinSpeedup {
		t.Fatalf("speedup %.2fx, want >= %.2fx", res.Speedup, cfg.MinSpeedup)
	}
	if res.Widenings < 1 || res.FinalWidth < 2 {
		t.Fatalf("routine never widened: %d widenings, final width %d", res.Widenings, res.FinalWidth)
	}
	if len(res.Log) != res.Widenings {
		t.Fatalf("log has %d entries for %d widenings", len(res.Log), res.Widenings)
	}
	width := 1
	for _, ch := range res.Log {
		if ch.From != width || ch.To != width+1 {
			t.Fatalf("non-sequential width change %+v (at width %d)", ch, width)
		}
		width = ch.To
	}
	if width != res.FinalWidth {
		t.Fatalf("log ends at width %d, final width %d", width, res.FinalWidth)
	}
	if res.Delivered == 0 {
		t.Fatalf("nothing delivered in the adaptive phase")
	}

	rep := res.BenchReport(cfg)
	if rep.Metrics["final_width"] != float64(res.FinalWidth) {
		t.Fatalf("report final_width = %v", rep.Metrics["final_width"])
	}
	shareSum := 0.0
	for k, v := range rep.Metrics {
		if len(k) > 6 && k[:6] == "share_" {
			shareSum += v
		}
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("replica shares sum to %v, want 1", shareSum)
	}
}
