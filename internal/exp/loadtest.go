package exp

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"streamorca/internal/chaos"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/load"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
	"streamorca/internal/workload"
)

// LoadConfig parameterises the loadtest and chaos-load scenarios: an
// open-loop driver offers Zipf-skewed user events at a constant rate
// into a checkpointing three-host pipeline (LoadSource -> hash-split
// over three Functor workers -> merge -> LatencySink, with an
// Aggregate/CountSink branch keeping checkpointable state in the
// graph), and a LatencySink meters source-to-sink latency against the
// intended send instants. ChaosFaults > 0 layers a seeded
// chaos.Schedule over the run, so recovery shows up as measured
// p999/throughput dips instead of bespoke counters.
type LoadConfig struct {
	// Seed drives key generation, payloads, the fault schedule, and the
	// retry jitter.
	Seed int64
	// Rate is the offered open-loop rate in tuples/sec.
	Rate float64
	// Duration is the offered-load schedule length.
	Duration time.Duration
	// Users, when > 0, switches to the closed-loop driver: Users
	// concurrent senders with Think pauses instead of a constant rate.
	Users int
	// Think is each closed-loop user's pause between sends.
	Think time.Duration
	// Keys is the user-key-space size; Skew its Zipf exponent.
	Keys int
	Skew float64
	// AggWindow is the stateful side-branch's aggregation window.
	AggWindow time.Duration
	// ThroughputWindow is the width of the windowed-throughput bins.
	ThroughputWindow time.Duration
	// MetricsInterval is the HC push period; the run samples the per-PE
	// ingest/egress rate gauges at the same cadence.
	MetricsInterval time.Duration
	// CheckpointInterval is the periodic snapshot period.
	CheckpointInterval time.Duration
	// StoreDir, when non-empty, backs the checkpoint store with the
	// filesystem; empty uses memory.
	StoreDir string
	// ChaosFaults, when > 0, injects a seeded fault schedule of that
	// many events spread over ChaosWindow (limited to Kinds when set).
	ChaosFaults int
	ChaosWindow time.Duration
	ChaosKinds  []chaos.Kind
	// MaxDuration bounds the whole run.
	MaxDuration time.Duration
}

// DefaultLoad returns the scaled-down default configuration for the
// pure loadtest scenario.
func DefaultLoad(seed int64) LoadConfig {
	cfg := LoadConfig{
		Seed:               seed,
		Rate:               2000,
		Duration:           2 * time.Second,
		Keys:               50000,
		Skew:               1.1,
		AggWindow:          250 * time.Millisecond,
		ThroughputWindow:   200 * time.Millisecond,
		MetricsInterval:    25 * time.Millisecond,
		CheckpointInterval: 50 * time.Millisecond,
		MaxDuration:        60 * time.Second,
	}
	if raceEnabled {
		cfg.Rate = 500
		cfg.MetricsInterval *= 2
		cfg.CheckpointInterval *= 2
		cfg.MaxDuration *= 2
	}
	return cfg
}

// DefaultChaosLoad returns the default configuration for chaos-load:
// the same workload with a seeded fault schedule injected mid-run.
func DefaultChaosLoad(seed int64) LoadConfig {
	cfg := DefaultLoad(seed)
	cfg.Duration = 3 * time.Second
	cfg.ChaosFaults = 12
	cfg.ChaosWindow = 800 * time.Millisecond
	if raceEnabled {
		cfg.ChaosWindow *= 2
	}
	return cfg
}

// LoadResult captures one run's offered load, delivery, latency
// distribution, and (for chaos-load) the injected schedule's outcome.
type LoadResult struct {
	// Offered counts tuples pushed by the driver; Missed counts
	// scheduled tuples the driver abandoned (non-zero fails the run);
	// Delivered counts tuples the LatencySink recorded; Lost is
	// Offered - Delivered after the drain (in-flight tuples dropped by
	// killed PEs, per the paper's §5.2 at-most-once semantics).
	Offered   int64
	Missed    int64
	Delivered int64
	Lost      int64
	// OfferedRate and SustainedRate are tuples/sec over the driver's
	// elapsed schedule: what was asked for vs what came out the sink.
	OfferedRate   float64
	SustainedRate float64
	// Latency percentiles, source to sink, charged against intended
	// send instants (coordinated-omission-correct).
	P50Ms, P99Ms, P999Ms, MaxMs, MeanMs float64
	// MinWindowRate and MaxWindowRate bracket the per-window
	// throughput; a chaos run shows the dip in MinWindowRate.
	MinWindowRate float64
	MaxWindowRate float64
	Windows       int
	// WorkerTuples maps each hash-partitioned worker to the tuples it
	// processed — the hot-partition imbalance the Zipf keys induce.
	WorkerTuples map[string]int64
	// MaxIngestRate and MaxEgressRate are the highest per-PE
	// ingest/egress rate gauges observed during the run.
	MaxIngestRate int64
	MaxEgressRate int64
	// HotKeyShare is the key generator's analytic top-1% traffic share.
	HotKeyShare float64
	// Chaos outcome; Fingerprint is empty for pure load runs.
	Fingerprint   string
	FaultsApplied int
	FaultsSkipped int
	LostForever   int
}

// loadPolicy restarts every failed PE through SAM's bounded-retry
// actuation, like the chaos policy: retry-budget exhaustions ("restart
// abandoned") are left to the recovery sweep.
type loadPolicy struct {
	app string
}

func (p *loadPolicy) Name() string { return "load" }

func (p *loadPolicy) Setup(sc *core.SetupContext) error {
	if _, err := sc.Actions().SubmitApplication(p.app, nil); err != nil {
		return err
	}
	return sc.Subscribe(core.OnPEFailure(
		core.NewPEFailureScope("lf").AddApplicationFilter(p.app),
		func(ctx *core.PEFailureContext, act *core.Actions) error {
			if !strings.HasPrefix(ctx.Reason, "restart abandoned") {
				_ = act.RestartPE(ctx.PE) //orcalint:ignore actuationcheck the attempt journal records failures and the sweep retries; erroring here would tear down the experiment
			}
			return nil
		}))
}

// rateSampler polls every PE's ingest/egress rate gauges and keeps the
// maxima — the throughput high-water marks the report publishes.
type rateSampler struct {
	stop chan struct{}
	done chan struct{}

	maxIn  int64
	maxOut int64
}

func startRateSampler(inst *platform.Instance, interval time.Duration) *rateSampler {
	s := &rateSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(interval):
			}
			for _, job := range inst.SAM.Jobs() {
				for _, p := range job.PEs {
					c, ok := inst.Cluster.PEContainer(p.ID)
					if !ok {
						continue
					}
					if v := c.PEMetrics().Counter(metrics.PEIngestRate).Value(); v > s.maxIn {
						s.maxIn = v
					}
					if v := c.PEMetrics().Counter(metrics.PEEgressRate).Value(); v > s.maxOut {
						s.maxOut = v
					}
				}
			}
		}
	}()
	return s
}

func (s *rateSampler) halt() (int64, int64) {
	close(s.stop)
	<-s.done
	return s.maxIn, s.maxOut
}

// RunLoadTest executes the loadtest (ChaosFaults == 0) or chaos-load
// (ChaosFaults > 0) scenario and returns its measurements.
func RunLoadTest(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Rate <= 0 && cfg.Users <= 0 {
		return nil, fmt.Errorf("loadtest: need Rate > 0 (open loop) or Users > 0 (closed loop)")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadtest: need Duration > 0")
	}

	var inner ckpt.Store = ckpt.NewMemStore()
	if cfg.StoreDir != "" {
		fs, err := ckpt.NewFSStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		inner = fs
	}
	// The fault store stays in place even for pure load runs: un-armed
	// it is transparent, and chaos-load arms it through the schedule.
	store := ckpt.NewFaultStore(inner, nil)

	opts := platform.Options{
		Hosts:              []platform.HostSpec{{Name: "h1"}, {Name: "h2"}, {Name: "h3"}},
		MetricsInterval:    cfg.MetricsInterval,
		Checkpoint:         store,
		CheckpointInterval: cfg.CheckpointInterval,
	}
	if cfg.ChaosFaults > 0 {
		opts.Retry = sam.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			JitterSeed:  cfg.Seed,
		}
	}
	inst, err := platform.NewInstance(opts)
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	eventS := tuple.MustSchema(
		tuple.Attribute{Name: "user", Type: tuple.String},
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "score", Type: tuple.Float},
		tuple.Attribute{Name: "ts", Type: tuple.Timestamp},
	)
	aggS := tuple.MustSchema(
		tuple.Attribute{Name: "avg", Type: tuple.Float},
		tuple.Attribute{Name: "count", Type: tuple.Int},
	)

	appName := "LoadTest"
	injID := uniq("load-inj")
	meterID := uniq("load-meter")
	workers := []string{"w0", "w1", "w2"}

	b := compiler.NewApp(appName)
	src := b.AddOperator("src", load.KindLoadSource).Out(eventS).Param("injectorId", injID)
	split := b.AddOperator("split", ops.KindSplit).In(eventS).Out(eventS, eventS, eventS).
		Param("mode", "hash").Param("attr", "user")
	mrg := b.AddOperator("mrg", ops.KindMerge).In(eventS, eventS, eventS).Out(eventS)
	b.Connect(src, 0, split, 0)
	for i, w := range workers {
		// Pass-through Functors: the Functor copies same-named attributes
		// (the ts Timestamp included), so the latency path survives the
		// partitioned hop.
		wh := b.AddOperator(w, ops.KindFunctor).In(eventS).Out(eventS)
		b.Connect(split, i, wh, 0)
		b.Connect(wh, 0, mrg, i)
	}
	// Duplicate-split tee after the merge: port 0 feeds the latency
	// sink, port 1 the stateful aggregation branch whose windows make
	// the pipeline genuinely checkpointing.
	tee := b.AddOperator("tee", ops.KindSplit).In(eventS).Out(eventS, eventS).
		Param("mode", "duplicate")
	lat := b.AddOperator("lat", load.KindLatencySink).In(eventS).
		Param("meterId", meterID).Param("tsAttr", "ts")
	agg := b.AddOperator("agg", ops.KindAggregate).In(eventS).Out(aggS).
		Param("window", cfg.AggWindow.String()).Param("valueAttr", "score")
	cnt := b.AddOperator("cnt", ops.KindCountSink).In(aggS)
	b.Connect(mrg, 0, tee, 0)
	b.Connect(tee, 0, lat, 0)
	b.Connect(tee, 1, agg, 0)
	b.Connect(agg, 0, cnt, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		return nil, err
	}

	policy := &loadPolicy{app: appName}
	svc, err := core.NewRoutineService(core.Config{
		Name: "loadOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: cfg.MetricsInterval,
	}, policy)
	if err != nil {
		return nil, err
	}
	if err := svc.RegisterApplication(app); err != nil {
		return nil, err
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	defer svc.Stop()

	jobs := svc.ManagedJobs()
	if len(jobs) != 1 {
		return nil, fmt.Errorf("loadtest: expected 1 managed job, got %d", len(jobs))
	}
	job := jobs[0].Job
	running := func() bool {
		for _, j := range inst.SAM.Jobs() {
			if j.ID != job {
				continue
			}
			for _, p := range j.PEs {
				if p.State != "running" {
					return false
				}
			}
			return true
		}
		return false
	}
	if !waitUntil(cfg.MaxDuration/4, time.Millisecond, running) {
		return nil, fmt.Errorf("loadtest: pipeline never came up")
	}

	keys := workload.NewKeyGen(workload.KeyConfig{Seed: cfg.Seed, N: cfg.Keys, Skew: cfg.Skew})
	payload := rand.New(rand.NewSource(cfg.Seed + 1))
	userRef := eventS.MustRef("user")
	seqRef := eventS.MustRef("seq")
	scoreRef := eventS.MustRef("score")
	mk := func(i int64) tuple.Tuple {
		t := tuple.New(eventS)
		userRef.SetStr(t, keys.Next())
		seqRef.SetInt(t, i)
		scoreRef.SetFloat(t, payload.Float64()*100)
		return t
	}

	inj := load.InjectorFor(injID)
	meter := load.MeterFor(meterID)
	start := time.Now()
	meter.Arm(start, cfg.ThroughputWindow)
	sampler := startRateSampler(inst, cfg.MetricsInterval)

	driveStop := make(chan struct{})
	stopTimer := time.AfterFunc(cfg.MaxDuration, func() { close(driveStop) })
	defer stopTimer.Stop()

	type driveOut struct {
		st  load.Stats
		err error
	}
	driveDone := make(chan driveOut, 1)
	go func() {
		var out driveOut
		if cfg.Users > 0 {
			out.st, out.err = load.RunClosedLoop(load.ClosedLoopConfig{
				Injector: inj, Make: mk, TsAttr: "ts",
				Users: cfg.Users, Think: cfg.Think, Duration: cfg.Duration,
				Stop: driveStop,
			})
		} else {
			out.st, out.err = load.RunOpenLoop(load.OpenLoopConfig{
				Injector: inj, Make: mk, TsAttr: "ts",
				Rate: cfg.Rate, Duration: cfg.Duration,
				Stop: driveStop,
			})
		}
		driveDone <- out
	}()

	res := &LoadResult{HotKeyShare: keys.TopShare(0.01)}

	// Chaos-load: once the pipeline is visibly delivering, inject the
	// seeded schedule while the driver keeps offering, then sweep.
	if cfg.ChaosFaults > 0 {
		if !waitUntil(cfg.MaxDuration/4, time.Millisecond, func() bool { return meter.Delivered() >= 20 }) {
			return nil, fmt.Errorf("loadtest: pipeline never warmed up under load")
		}
		schedule := chaos.Generate(cfg.Seed, chaos.GenOptions{
			Duration: cfg.ChaosWindow,
			Count:    cfg.ChaosFaults,
			Hosts:    3,
			PEs:      len(app.PEs),
			Kinds:    cfg.ChaosKinds,
			Store:    true,
		})
		res.Fingerprint = schedule.Fingerprint()
		runner := &chaos.Runner{Cluster: inst.Cluster, SAM: inst.SAM, Store: store}
		report := runner.Run(schedule)
		res.FaultsApplied, res.FaultsSkipped = report.Applied, report.Skipped

		// Recovery sweep, as in the chaos scenario: disarm the store,
		// revive hosts, restart what is still down.
		store.Reset()
		for _, h := range inst.Cluster.Hosts() {
			if !h.Up {
				if err := inst.Cluster.ReviveHost(h.Name); err != nil {
					return nil, fmt.Errorf("loadtest: revive %s: %w", h.Name, err)
				}
			}
		}
		downPEs := func() []ids.PEID {
			var down []ids.PEID
			for _, j := range inst.SAM.Jobs() {
				for _, p := range j.PEs {
					if p.State != "running" {
						down = append(down, p.ID)
					}
				}
			}
			return down
		}
		sweepOK := waitUntil(cfg.MaxDuration/2, 5*time.Millisecond, func() bool {
			down := downPEs()
			for _, id := range down {
				_ = svc.RestartPE(id) //orcalint:ignore actuationcheck recovery sweep keeps retrying until the deadline; stragglers are counted as LostForever
			}
			return len(down) == 0
		})
		res.LostForever = len(downPEs())
		if !sweepOK || res.LostForever > 0 {
			return res, fmt.Errorf("loadtest: %d PEs lost forever after recovery sweep", res.LostForever)
		}
	}

	drive := <-driveDone
	if drive.err != nil {
		return res, drive.err
	}
	// All pushes returned; close the stream and let the pipeline drain:
	// delivery is complete when the meter stays quiet for a beat.
	inj.Close()
	quietFor := 4 * cfg.MetricsInterval
	drainDeadline := time.Now().Add(cfg.MaxDuration / 4)
	lastN, lastChange := meter.Delivered(), time.Now()
	for time.Now().Before(drainDeadline) {
		time.Sleep(cfg.MetricsInterval / 2)
		if n := meter.Delivered(); n != lastN {
			lastN, lastChange = n, time.Now()
			continue
		}
		if lastN >= drive.st.Offered || time.Since(lastChange) > quietFor {
			break
		}
	}

	res.MaxIngestRate, res.MaxEgressRate = sampler.halt()
	res.Offered = drive.st.Offered
	res.Missed = drive.st.Missed
	res.Delivered = meter.Delivered()
	res.Lost = res.Offered - res.Delivered
	if sec := drive.st.Elapsed.Seconds(); sec > 0 {
		res.OfferedRate = float64(res.Offered) / sec
		res.SustainedRate = float64(res.Delivered) / sec
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	h := meter.Hist
	res.P50Ms, res.P99Ms, res.P999Ms = ms(h.Quantile(0.5)), ms(h.Quantile(0.99)), ms(h.Quantile(0.999))
	res.MaxMs, res.MeanMs = ms(h.Max()), ms(h.Mean())
	rates := meter.WindowRates(time.Now())
	res.Windows = len(rates)
	for i, r := range rates {
		if i == 0 || r < res.MinWindowRate {
			res.MinWindowRate = r
		}
		if r > res.MaxWindowRate {
			res.MaxWindowRate = r
		}
	}
	res.WorkerTuples = map[string]int64{}
	for _, w := range workers {
		if peID, ok := svc.PEOfOperator(job, w); ok {
			if c, ok := inst.Cluster.PEContainer(peID); ok {
				res.WorkerTuples[w] = c.PEMetrics().Counter(metrics.PETuplesProcessed).Value()
			}
		}
	}

	if res.Missed > 0 {
		return res, fmt.Errorf("loadtest: driver abandoned %d scheduled tuples", res.Missed)
	}
	if res.Delivered == 0 {
		return res, fmt.Errorf("loadtest: nothing delivered")
	}
	if cfg.ChaosFaults == 0 && res.Lost != 0 {
		return res, fmt.Errorf("loadtest: %d tuples lost without chaos", res.Lost)
	}
	return res, nil
}

// BenchReport renders the result in the shared BENCH_*.json schema.
// Deterministic facts (config echo, schedule fingerprint, offered
// count) go in Meta; wall-clock-dependent measurements in Metrics.
func (r *LoadResult) BenchReport(scenario string, cfg LoadConfig) *load.Report {
	rep := &load.Report{
		Name: scenario,
		Seed: cfg.Seed,
		Meta: map[string]string{
			"rate":     strconv.FormatFloat(cfg.Rate, 'f', -1, 64),
			"duration": cfg.Duration.String(),
			"keys":     strconv.Itoa(cfg.Keys),
			"skew":     strconv.FormatFloat(cfg.Skew, 'f', -1, 64),
			"offered":  strconv.FormatInt(r.Offered, 10),
		},
		Metrics: map[string]float64{
			"delivered":      float64(r.Delivered),
			"lost":           float64(r.Lost),
			"offered_tps":    r.OfferedRate,
			"sustained_tps":  r.SustainedRate,
			"p50_ms":         r.P50Ms,
			"p99_ms":         r.P99Ms,
			"p999_ms":        r.P999Ms,
			"max_ms":         r.MaxMs,
			"mean_ms":        r.MeanMs,
			"min_window_tps": r.MinWindowRate,
			"max_window_tps": r.MaxWindowRate,
			"max_ingest_tps": float64(r.MaxIngestRate),
			"max_egress_tps": float64(r.MaxEgressRate),
			"hot_key_share":  r.HotKeyShare,
		},
	}
	if cfg.Users > 0 {
		rep.Meta["users"] = strconv.Itoa(cfg.Users)
		rep.Meta["think"] = cfg.Think.String()
	}
	if r.Fingerprint != "" {
		rep.Meta["fingerprint"] = r.Fingerprint
		rep.Metrics["faults_applied"] = float64(r.FaultsApplied)
		rep.Metrics["faults_skipped"] = float64(r.FaultsSkipped)
	}
	var workerTotal int64
	for _, n := range r.WorkerTuples {
		workerTotal += n
	}
	for w, n := range r.WorkerTuples {
		rep.Metrics["tuples_"+w] = float64(n)
		// Per-worker share of the region's traffic: the imbalance a
		// Zipf-hot partition shows, and what a rebalance (a region
		// resize re-cutting the key space) visibly moves.
		if workerTotal > 0 {
			rep.Metrics["share_"+w] = float64(n) / float64(workerTotal)
		}
	}
	return rep
}
