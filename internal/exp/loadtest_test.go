package exp

import (
	"testing"
	"time"
)

// TestLoadtestOpenLoopSmoke runs a shrunk open-loop load test end to
// end: offered == delivered (no loss without chaos), latency recorded
// for every tuple, throughput windows populated, and the hash
// partition visibly carrying the Zipf hot keys.
func TestLoadtestOpenLoopSmoke(t *testing.T) {
	cfg := DefaultLoad(11)
	cfg.Rate = 400
	cfg.Duration = 600 * time.Millisecond
	cfg.Keys = 2000
	if raceEnabled {
		cfg.Rate = 200
	}
	res, err := RunLoadTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.Delivered != res.Offered {
		t.Fatalf("delivered %d of %d offered", res.Delivered, res.Offered)
	}
	if res.Lost != 0 || res.Missed != 0 {
		t.Fatalf("lost %d, missed %d without chaos", res.Lost, res.Missed)
	}
	if res.P50Ms <= 0 {
		t.Fatalf("p50 = %vms, want > 0", res.P50Ms)
	}
	if res.P999Ms < res.P50Ms || res.MaxMs < res.P999Ms {
		t.Fatalf("percentiles not ordered: p50=%v p999=%v max=%v", res.P50Ms, res.P999Ms, res.MaxMs)
	}
	if res.SustainedRate <= 0 {
		t.Fatalf("sustained rate %v, want > 0", res.SustainedRate)
	}
	if res.Windows == 0 || res.MaxWindowRate <= 0 {
		t.Fatalf("no throughput windows recorded: %d windows, max %v", res.Windows, res.MaxWindowRate)
	}
	var workerSum int64
	for _, n := range res.WorkerTuples {
		workerSum += n
	}
	if workerSum != res.Delivered {
		t.Fatalf("workers processed %d, delivered %d — partitioned path leaks", workerSum, res.Delivered)
	}
	if res.HotKeyShare < 0.2 {
		t.Fatalf("hot-key share %v implausibly low for skew %v", res.HotKeyShare, cfg.Skew)
	}
	if res.Fingerprint != "" {
		t.Fatalf("pure load run has a chaos fingerprint %q", res.Fingerprint)
	}
}

// TestLoadtestClosedLoopSmoke drives the same pipeline with the
// closed-loop (users + think time) driver.
func TestLoadtestClosedLoopSmoke(t *testing.T) {
	cfg := DefaultLoad(13)
	cfg.Rate = 0
	cfg.Users = 8
	cfg.Think = 10 * time.Millisecond
	cfg.Duration = 500 * time.Millisecond
	cfg.Keys = 1000
	res, err := RunLoadTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.Delivered != res.Offered {
		t.Fatalf("delivered %d of %d offered", res.Delivered, res.Offered)
	}
	bound := int64(cfg.Users) * (int64(cfg.Duration/cfg.Think) + 2)
	if res.Offered > bound {
		t.Fatalf("offered %d exceeds closed-loop bound %d", res.Offered, bound)
	}
}

// TestChaosLoadSmoke layers a seeded fault schedule over the load run:
// the schedule must apply, the sweep must recover every PE, and the
// meter must keep a continuous record across the kills.
func TestChaosLoadSmoke(t *testing.T) {
	cfg := DefaultChaosLoad(5)
	cfg.Rate = 300
	cfg.Duration = 1200 * time.Millisecond
	cfg.Keys = 2000
	cfg.ChaosFaults = 8
	cfg.ChaosWindow = 400 * time.Millisecond
	if raceEnabled {
		cfg.Rate = 150
	}
	res, err := RunLoadTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint == "" {
		t.Fatal("chaos-load run reported no schedule fingerprint")
	}
	if res.FaultsApplied == 0 {
		t.Fatal("no faults applied")
	}
	if res.LostForever != 0 {
		t.Fatalf("%d PEs lost forever", res.LostForever)
	}
	if res.Delivered == 0 || res.P50Ms <= 0 {
		t.Fatalf("no latency record across chaos: delivered %d, p50 %v", res.Delivered, res.P50Ms)
	}
	if res.Lost < 0 {
		t.Fatalf("negative loss %d: meter double-counted", res.Lost)
	}
}

// TestChaosLoadDeterministicSchedule pins the regression-gate contract:
// two same-seed runs inject the identical schedule (fingerprints and
// offered counts match), even though wall-clock metrics differ.
func TestChaosLoadDeterministicSchedule(t *testing.T) {
	run := func() *LoadResult {
		cfg := DefaultChaosLoad(42)
		cfg.Rate = 250
		cfg.Duration = 800 * time.Millisecond
		cfg.Keys = 1000
		cfg.ChaosFaults = 6
		cfg.ChaosWindow = 300 * time.Millisecond
		res, err := RunLoadTest(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints diverge for one seed: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if a.Offered != b.Offered {
		t.Fatalf("offered counts diverge for one seed: %d vs %d", a.Offered, b.Offered)
	}
	if a.HotKeyShare != b.HotKeyShare {
		t.Fatalf("hot-key shares diverge: %v vs %v", a.HotKeyShare, b.HotKeyShare)
	}
}

// TestLoadResultBenchReport pins the shared report schema.
func TestLoadResultBenchReport(t *testing.T) {
	res := &LoadResult{
		Offered: 100, Delivered: 98, Lost: 2,
		P50Ms: 1.5, P999Ms: 9.9, SustainedRate: 490,
		Fingerprint:   "abc",
		FaultsApplied: 3,
		WorkerTuples:  map[string]int64{"w0": 50, "w1": 30, "w2": 18},
	}
	cfg := DefaultChaosLoad(7)
	rep := res.BenchReport("chaos-load", cfg)
	if rep.Name != "chaos-load" || rep.Seed != 7 {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if rep.Meta["fingerprint"] != "abc" || rep.Meta["offered"] != "100" {
		t.Fatalf("deterministic meta wrong: %+v", rep.Meta)
	}
	if rep.Metrics["p50_ms"] != 1.5 || rep.Metrics["delivered"] != 98 || rep.Metrics["tuples_w1"] != 30 {
		t.Fatalf("metrics wrong: %+v", rep.Metrics)
	}
}
