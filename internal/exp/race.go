//go:build race

package exp

// raceEnabled reports whether the race detector is compiled in; the
// real-time experiment defaults stretch their periods under it, since
// instrumented code cannot sustain the normal tick rates.
const raceEnabled = true
