package exp

import (
	"fmt"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/tuple"
)

// RecoveryConfig parameterises the stateful-restart smoke scenario: a
// checkpointing platform runs Beacon -> Aggregate -> CollectSink, the
// orchestrator snapshots the aggregation PE, a fault kills it, and the
// ORCA policy restarts it with restore. The scenario asserts that the
// recovered window resumes past its pre-failure fill instead of
// restarting empty — the stateful counterpart of E2's Figure 9 gap.
type RecoveryConfig struct {
	// TickPeriod is the source's inter-tuple delay.
	TickPeriod time.Duration
	// WarmCount is the window fill to reach before the checkpoint.
	WarmCount int64
	// StoreDir, when non-empty, backs the checkpoint store with the
	// filesystem (exercising the persistent store); empty uses memory.
	StoreDir string
	// MaxDuration bounds the run.
	MaxDuration time.Duration
}

// DefaultRecovery returns the scaled-down default configuration.
func DefaultRecovery() RecoveryConfig {
	cfg := RecoveryConfig{
		TickPeriod:  time.Millisecond,
		WarmCount:   100,
		MaxDuration: 30 * time.Second,
	}
	if raceEnabled {
		cfg.TickPeriod *= 4
		cfg.MaxDuration *= 2
	}
	return cfg
}

// RecoveryResult captures the scenario's observations.
type RecoveryResult struct {
	// CountAtCheckpoint is the window fill observed just before the
	// snapshot was taken (a lower bound on the captured fill).
	CountAtCheckpoint int64
	// MaxPreFailure is the highest window fill observed before restart.
	MaxPreFailure int64
	// FirstPostRestart is the first window fill emitted after restart;
	// recovery succeeded iff it exceeds CountAtCheckpoint (a cold
	// restart would resume at 1, a restored one at the captured fill
	// plus one — tuples processed between capture and kill may make
	// MaxPreFailure slightly higher still, so it is reported but not
	// asserted on).
	FirstPostRestart int64
	// Restores is the restarted container's nStateRestores metric.
	Restores int64
}

// recoveryPolicy restarts the failed PE after quiescing the sink, so
// the result's pre/post boundary is unambiguous. It is a core.Routine:
// scope registration and the application submission happen in Setup, so
// a misconfigured run fails Service.Start instead of panicking inside a
// handler.
type recoveryPolicy struct {
	app       string
	coll      *ops.Collection
	maxPre    chan int64
	restarted chan ids.PEID
}

func (p *recoveryPolicy) Name() string { return "recovery" }

func (p *recoveryPolicy) Setup(sc *core.SetupContext) error {
	if _, err := sc.Actions().SubmitApplication(p.app, nil); err != nil {
		return err
	}
	return sc.Subscribe(core.OnPEFailure(
		core.NewPEFailureScope("pf").AddApplicationFilter(p.app), p.onPEFailure))
}

func (p *recoveryPolicy) onPEFailure(ctx *core.PEFailureContext, act *core.Actions) error {
	// Drain in-flight output of the dead PE before restarting, so every
	// output after this point comes from the restored container.
	stable := p.coll.Len()
	for i := 0; i < 50; i++ {
		time.Sleep(time.Millisecond)
		if n := p.coll.Len(); n != stable {
			stable, i = n, 0
		}
	}
	var hi int64
	for _, tp := range p.coll.Tuples() {
		if c := tp.Int("count"); c > hi {
			hi = c
		}
	}
	p.maxPre <- hi
	if err := act.RestartPE(ctx.PE); err != nil {
		return fmt.Errorf("recovery: restart %s: %w", ctx.PE, err)
	}
	p.restarted <- ctx.PE
	return nil
}

// RunRecovery executes the scenario, returning an error when the
// restarted PE failed to recover its checkpointed state.
func RunRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	var store ckpt.Store = ckpt.NewMemStore()
	if cfg.StoreDir != "" {
		fs, err := ckpt.NewFSStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		store = fs
	}
	inst, err := platform.NewInstance(platform.Options{
		Hosts:           []platform.HostSpec{{Name: "h1"}, {Name: "h2"}},
		MetricsInterval: time.Hour,
		Checkpoint:      store,
	})
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	tickS := tuple.MustSchema(
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "price", Type: tuple.Float},
	)
	outS := tuple.MustSchema(
		tuple.Attribute{Name: "avg", Type: tuple.Float},
		tuple.Attribute{Name: "count", Type: tuple.Int},
	)
	appName := "RecoverySmoke"
	collID := uniq("recovery")
	b := compiler.NewApp(appName)
	src := b.AddOperator("src", ops.KindBeacon).Out(tickS).
		Param("count", "0").Param("period", cfg.TickPeriod.String())
	agg := b.AddOperator("agg", ops.KindAggregate).In(tickS).Out(outS).
		Param("window", "10m").Param("valueAttr", "price")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(outS).Param("collectorId", collID)
	b.Connect(src, 0, agg, 0)
	b.Connect(agg, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		return nil, err
	}

	coll := ops.Collector(collID)
	policy := &recoveryPolicy{
		app: appName, coll: coll,
		maxPre:    make(chan int64, 1),
		restarted: make(chan ids.PEID, 1),
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "recoveryOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, policy)
	if err != nil {
		return nil, err
	}
	if err := svc.RegisterApplication(app); err != nil {
		return nil, err
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	defer svc.Stop()

	lastCount := func() int64 {
		tp, ok := coll.Last()
		if !ok {
			return 0
		}
		return tp.Int("count")
	}
	if !waitUntil(cfg.MaxDuration/2, time.Millisecond, func() bool { return lastCount() >= cfg.WarmCount }) {
		return nil, fmt.Errorf("recovery: window never warmed (count %d, want %d)", lastCount(), cfg.WarmCount)
	}
	jobs := svc.ManagedJobs()
	if len(jobs) != 1 {
		return nil, fmt.Errorf("recovery: %d managed jobs", len(jobs))
	}
	aggPE, ok := svc.PEOfOperator(jobs[0].Job, "agg")
	if !ok {
		return nil, fmt.Errorf("recovery: no aggregation PE")
	}

	res := &RecoveryResult{}
	// Read the fill BEFORE capturing: the captured state can only be at
	// or past this observation, so "first post-restart > this" holds for
	// every restored run and no cold one.
	res.CountAtCheckpoint = lastCount()
	if err := svc.CheckpointPE(aggPE); err != nil {
		return nil, fmt.Errorf("recovery: checkpoint: %w", err)
	}

	if err := svc.KillPE(aggPE, "injected stateful-PE failure"); err != nil {
		return nil, err
	}
	select {
	case res.MaxPreFailure = <-policy.maxPre:
	case <-time.After(cfg.MaxDuration / 2):
		return nil, fmt.Errorf("recovery: failure event never delivered")
	}
	select {
	case <-policy.restarted:
	case <-time.After(cfg.MaxDuration / 2):
		return nil, fmt.Errorf("recovery: policy never restarted the PE")
	}
	preLen := coll.Len()
	if !waitUntil(cfg.MaxDuration/2, time.Millisecond, func() bool { return coll.Len() > preLen }) {
		return nil, fmt.Errorf("recovery: no output after restart")
	}
	res.FirstPostRestart = coll.Tuples()[preLen].Int("count")

	if c, ok := inst.Cluster.PEContainer(aggPE); ok {
		res.Restores = c.PEMetrics().Counter(metrics.PEStateRestores).Value()
	}
	// A restored window resumes at CountAtCheckpoint+1 or later; a cold
	// one at 1. Asserting against the checkpointed fill (not
	// MaxPreFailure) tolerates the tuples that race between the capture
	// and the kill without losing any discriminating power.
	if res.FirstPostRestart <= res.CountAtCheckpoint {
		return res, fmt.Errorf("recovery: window restarted cold: first post-restart count %d <= checkpointed %d",
			res.FirstPostRestart, res.CountAtCheckpoint)
	}
	if res.Restores < 1 {
		return res, fmt.Errorf("recovery: restarted container reports no state restores")
	}
	return res, nil
}
