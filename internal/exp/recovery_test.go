package exp

import "testing"

// TestRecoveryScenario pins the recovery smoke: a checkpointed
// aggregation PE restarted by the policy resumes past its pre-failure
// window fill (a cold restart would resume at 1).
func TestRecoveryScenario(t *testing.T) {
	cfg := DefaultRecovery()
	cfg.StoreDir = t.TempDir() // exercise the persistent store end to end
	res, err := RunRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CountAtCheckpoint < cfg.WarmCount {
		t.Fatalf("checkpointed too early: count %d < warm %d", res.CountAtCheckpoint, cfg.WarmCount)
	}
	if res.FirstPostRestart <= res.MaxPreFailure {
		t.Fatalf("no continuity: first post-restart %d <= pre max %d", res.FirstPostRestart, res.MaxPreFailure)
	}
	if res.Restores < 1 {
		t.Fatalf("restores = %d", res.Restores)
	}
}
