package exp

import (
	"fmt"
	"time"

	"streamorca/internal/apps"
	"streamorca/internal/ckpt"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/policies"
)

// StalenessFailoverConfig parameterises the checkpoint-aware failover
// scenario: three Trend Calculator replicas under the §5.2 policy
// rebuilt around snapshot staleness. The two backups are driven to
// snapshots of very different ages — the older-uptime backup holds the
// stale one — the active replica's aggregation PE is killed, and the
// scenario asserts the fresher-snapshot replica wins the promotion and
// serves from restored (not refilled) window state.
type StalenessFailoverConfig struct {
	// Window is the aggregation window (paper: 600 s).
	Window time.Duration
	// TickPeriod is the inter-tick delay.
	TickPeriod time.Duration
	// MaxSnapshotAge is the policy's staleness gate: how old the active
	// replica's snapshot may grow before the gate refreshes it.
	MaxSnapshotAge time.Duration
	// SkewDelay separates the two backups' checkpoint times, creating
	// the staleness gap the promotion ranks on.
	SkewDelay time.Duration
	// StoreDir, when non-empty, backs the checkpoint store with the
	// filesystem; empty uses memory.
	StoreDir string
	// MaxDuration bounds the run.
	MaxDuration time.Duration
}

// DefaultStalenessFailover returns the scaled-down default
// configuration (same compression as E2: 600 ms window over 1 ms
// ticks).
func DefaultStalenessFailover() StalenessFailoverConfig {
	cfg := StalenessFailoverConfig{
		Window:         600 * time.Millisecond,
		TickPeriod:     time.Millisecond,
		MaxSnapshotAge: 100 * time.Millisecond,
		SkewDelay:      250 * time.Millisecond,
		MaxDuration:    30 * time.Second,
	}
	if raceEnabled {
		cfg.Window *= 4
		cfg.TickPeriod *= 4
		cfg.MaxSnapshotAge *= 4
		cfg.SkewDelay *= 4
		cfg.MaxDuration *= 2
	}
	return cfg
}

// StalenessFailoverResult captures the scenario's observations.
type StalenessFailoverResult struct {
	// ActiveBefore / PromotedReplica / StaleReplica are replica indexes.
	ActiveBefore    int
	PromotedReplica int
	StaleReplica    int
	// StaleAgeMs and FreshAgeMs are the snapshot ages the policy had
	// observed for the two backups when the active replica died.
	StaleAgeMs int64
	FreshAgeMs int64
	// SnapshotRefreshes counts the staleness gate's CheckpointPE
	// actuations against the active replica (Threshold + Debounce).
	SnapshotRefreshes int
	// CountAtCheckpoint is the fresh backup's window fill just before
	// its snapshot + crash; MinPostRestore is the smallest window fill
	// it emitted after the restoring restart (a cold refill would start
	// near 1).
	CountAtCheckpoint int64
	MinPostRestore    int64
	// PromotedStateRestores is nStateRestores on the promoted replica's
	// aggregation PE.
	PromotedStateRestores int64
	// PrePromotionCheckpoints counts the successful CheckpointPE
	// actuations journalled inside the failure event's transaction —
	// the policy snapshotting the demoted replica before promoting.
	PrePromotionCheckpoints int
	Failovers               int
	Restarts                int
}

// RunStalenessFailover executes the scenario, returning an error when
// the promotion ignored snapshot staleness or the promoted replica did
// not serve from restored state.
func RunStalenessFailover(cfg StalenessFailoverConfig) (*StalenessFailoverResult, error) {
	var store ckpt.Store = ckpt.NewMemStore()
	if cfg.StoreDir != "" {
		fs, err := ckpt.NewFSStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		store = fs
	}
	inst, err := platform.NewInstance(platform.Options{
		Hosts: []platform.HostSpec{
			{Name: "h1"}, {Name: "h2"}, {Name: "h3"}, {Name: "h4"},
		},
		MetricsInterval: time.Hour, // the scenario flushes explicitly
		Checkpoint:      store,
	})
	if err != nil {
		return nil, err
	}
	defer inst.Close()

	app, err := apps.TrendApp(apps.TrendConfig{
		Name: "TrendCalculator", Symbols: "IBM", Seed: 11,
		Count: 0, Period: cfg.TickPeriod, Window: cfg.Window,
	})
	if err != nil {
		return nil, err
	}
	collPrefix := uniq("staleness")
	collName := func(i int) string { return fmt.Sprintf("%s-replica-%d", collPrefix, i) }
	policy := &policies.Failover{
		App: "TrendCalculator", Replicas: 3,
		MaxSnapshotAge: cfg.MaxSnapshotAge,
		SubmitParams: func(i int) map[string]string {
			return map[string]string{"collector": collName(i)}
		},
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "stalenessOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, policy)
	if err != nil {
		return nil, err
	}
	if err := svc.RegisterApplication(app); err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ {
		ops.ResetCollector(collName(i))
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	defer svc.Stop()

	if !waitUntil(cfg.MaxDuration/3, time.Millisecond, func() bool { return len(policy.Jobs()) == 3 }) {
		return nil, fmt.Errorf("staleness-failover: replicas never came up")
	}
	jobs := policy.Jobs()
	aggPE := func(j ids.JobID) (ids.PEID, error) {
		pe, ok := svc.PEOfOperator(j, apps.TrendAggregateOp)
		if !ok {
			return ids.InvalidPE, fmt.Errorf("staleness-failover: replica %s has no aggregation PE", j)
		}
		return pe, nil
	}
	lastCount := func(i int) int64 {
		t, ok := ops.Collector(collName(i)).Last()
		if !ok {
			return -1
		}
		return t.Int("count")
	}
	fullWindow := int64(cfg.Window / cfg.TickPeriod)
	warm := waitUntil(cfg.MaxDuration/2, time.Millisecond, func() bool {
		for i := 0; i < 3; i++ {
			if lastCount(i) < fullWindow*8/10 {
				return false
			}
		}
		return true
	})
	if !warm {
		return nil, fmt.Errorf("staleness-failover: windows never filled (counts %d %d %d, want ~%d)",
			lastCount(0), lastCount(1), lastCount(2), fullWindow)
	}

	res := &StalenessFailoverResult{
		ActiveBefore: policy.ReplicaIndex(policy.Active()),
		StaleReplica: 1,
	}
	activeAgg, err := aggPE(jobs[0])
	if err != nil {
		return nil, err
	}
	backup1Agg, err := aggPE(jobs[1])
	if err != nil {
		return nil, err
	}
	backup2Agg, err := aggPE(jobs[2])
	if err != nil {
		return nil, err
	}

	// Part 1 — the staleness gate. Anchor the active replica's snapshot
	// once, let it age past MaxSnapshotAge, and deliver pull rounds until
	// the Threshold+Debounce composition re-checkpoints it.
	if err := svc.CheckpointPE(activeAgg); err != nil {
		return nil, fmt.Errorf("staleness-failover: seed active snapshot: %w", err)
	}
	time.Sleep(cfg.MaxSnapshotAge + 2*cfg.TickPeriod)
	gateDeadline := time.Now().Add(cfg.MaxDuration / 3)
	for policy.SnapshotRefreshes() == 0 && time.Now().Before(gateDeadline) {
		inst.FlushMetrics()
		svc.PullMetricsNow()
		time.Sleep(5 * cfg.TickPeriod)
	}
	res.SnapshotRefreshes = policy.SnapshotRefreshes()
	if res.SnapshotRefreshes == 0 {
		return res, fmt.Errorf("staleness-failover: gate never refreshed the active snapshot")
	}

	// Part 2 — skewed backup snapshots. Backup 1 checkpoints first and
	// ages; backup 2 then checkpoints, crashes, and restores, ending up
	// with the fresh snapshot despite the younger uptime.
	if err := svc.CheckpointPE(backup1Agg); err != nil {
		return nil, fmt.Errorf("staleness-failover: checkpoint backup 1: %w", err)
	}
	time.Sleep(cfg.SkewDelay)
	res.CountAtCheckpoint = lastCount(2)
	if err := svc.CheckpointPE(backup2Agg); err != nil {
		return nil, fmt.Errorf("staleness-failover: checkpoint backup 2: %w", err)
	}
	postKill := ops.Collector(collName(2)).Len()
	if err := svc.KillPE(backup2Agg, "injected backup failure"); err != nil {
		return nil, err
	}
	if !waitUntil(cfg.MaxDuration/3, time.Millisecond, func() bool { return policy.Restarts() >= 1 }) {
		return nil, fmt.Errorf("staleness-failover: backup never restarted")
	}
	if !waitUntil(cfg.MaxDuration/3, time.Millisecond, func() bool {
		return ops.Collector(collName(2)).Len() >= postKill+5
	}) {
		return nil, fmt.Errorf("staleness-failover: backup never resumed output")
	}
	// Restored-not-refilled: every post-restart window fill stays near
	// the checkpointed fill; a cold refill would climb from 1.
	res.MinPostRestore = -1
	for _, tp := range ops.Collector(collName(2)).Tuples()[postKill:] {
		if c := tp.Int("count"); res.MinPostRestore < 0 || c < res.MinPostRestore {
			res.MinPostRestore = c
		}
	}
	if res.MinPostRestore*2 < res.CountAtCheckpoint {
		return res, fmt.Errorf("staleness-failover: window refilled cold after restore: min post-restore %d vs checkpointed %d",
			res.MinPostRestore, res.CountAtCheckpoint)
	}

	// One pull round feeds the promotion ranking both backups' ages.
	inst.FlushMetrics()
	svc.PullMetricsNow()
	agesKnown := waitUntil(cfg.MaxDuration/3, time.Millisecond, func() bool {
		_, ok1 := policy.ReplicaStaleness(jobs[1])
		_, ok2 := policy.ReplicaStaleness(jobs[2])
		return ok1 && ok2
	})
	if !agesKnown {
		return res, fmt.Errorf("staleness-failover: backup snapshot ages never observed")
	}
	stale, _ := policy.ReplicaStaleness(jobs[1])
	fresh, _ := policy.ReplicaStaleness(jobs[2])
	res.StaleAgeMs, res.FreshAgeMs = stale.Milliseconds(), fresh.Milliseconds()
	if res.StaleAgeMs <= res.FreshAgeMs {
		return res, fmt.Errorf("staleness-failover: staleness gap inverted (%dms vs %dms)", res.StaleAgeMs, res.FreshAgeMs)
	}

	// Part 3 — the failover. Kill the active replica's aggregation PE:
	// the policy must checkpoint the demoted replica's surviving PEs and
	// promote the fresher-snapshot backup, skipping the stale one even
	// though it has the longer uptime.
	if err := svc.KillPE(activeAgg, "injected failure of active replica"); err != nil {
		return nil, err
	}
	if !waitUntil(cfg.MaxDuration/3, 100*time.Microsecond, func() bool { return policy.Failovers() >= 1 }) {
		return res, fmt.Errorf("staleness-failover: failover never happened")
	}
	res.PromotedReplica = policy.ReplicaIndex(policy.Active())
	if res.PromotedReplica != 2 {
		return res, fmt.Errorf("staleness-failover: promoted replica %d, want 2 (freshest snapshot; stale replica 1 must be skipped)",
			res.PromotedReplica)
	}
	// Only actuations journalled under the failure event's transaction
	// count: a staleness-gate refresh delivered around the same moment
	// carries a metric event's TxID and must not satisfy this check.
	for _, rec := range svc.ActuationJournal() {
		if rec.Action == "CheckpointPE" && rec.TxID == policy.LastPromotionTx() && rec.Err == "" {
			res.PrePromotionCheckpoints++
		}
	}
	if res.PrePromotionCheckpoints == 0 {
		return res, fmt.Errorf("staleness-failover: no pre-promotion CheckpointPE in the actuation journal")
	}
	if c, ok := inst.Cluster.PEContainer(backup2Agg); ok {
		res.PromotedStateRestores = c.PEMetrics().Counter(metrics.PEStateRestores).Value()
	}
	if res.PromotedStateRestores < 1 {
		return res, fmt.Errorf("staleness-failover: promoted replica reports no state restores")
	}
	res.Failovers = policy.Failovers()
	res.Restarts = policy.Restarts()
	return res, nil
}
