package exp

import "testing"

// TestStalenessFailoverScenario pins the checkpoint-aware failover
// smoke: the staleness gate refreshes the active replica's snapshot,
// the fresher-snapshot backup wins the promotion over the stale one,
// and it serves from restored window state.
func TestStalenessFailoverScenario(t *testing.T) {
	cfg := DefaultStalenessFailover()
	cfg.StoreDir = t.TempDir() // exercise the persistent store end to end
	res, err := RunStalenessFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PromotedReplica != 2 || res.StaleReplica != 1 {
		t.Fatalf("promotion = %+v", res)
	}
	if res.StaleAgeMs <= res.FreshAgeMs {
		t.Fatalf("staleness gap missing: %+v", res)
	}
	if res.SnapshotRefreshes < 1 || res.PrePromotionCheckpoints < 1 {
		t.Fatalf("checkpoint actuations missing: %+v", res)
	}
	if res.PromotedStateRestores < 1 {
		t.Fatalf("promoted replica never restored: %+v", res)
	}
}
