// Package extjob simulates the external batch-processing system of use
// case §5.1 (a Hadoop/BigInsights job computing the causes of negative
// sentiment from a tweet corpus). The streaming application appends
// negative tweets to a Store; the orchestrator submits a Runner job that,
// after a configurable latency, recomputes the cause Model from the
// stored corpus and publishes it atomically; the streaming operators
// observe the new model version and reload — exactly the control loop the
// paper's Figure 8 exercises.
package extjob

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"streamorca/internal/vclock"
)

// Model is the published set of known complaint causes, versioned so
// consumers can detect refreshes.
type Model struct {
	mu      sync.RWMutex
	causes  map[string]bool
	version int64
}

// NewModel returns a model pre-loaded with the given causes at version 1
// (the offline pre-computation the application boots from, §5.1).
func NewModel(causes ...string) *Model {
	m := &Model{causes: make(map[string]bool, len(causes)), version: 1}
	for _, c := range causes {
		m.causes[c] = true
	}
	return m
}

// Contains reports whether a cause is known.
func (m *Model) Contains(cause string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.causes[cause]
}

// Version returns the model version; it increments on every publish.
func (m *Model) Version() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// Causes returns the known causes.
func (m *Model) Causes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.causes))
	for c := range m.causes {
		out = append(out, c)
	}
	return out
}

// publish atomically replaces the cause set.
func (m *Model) publish(causes map[string]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.causes = causes
	m.version++
}

// Store is the corpus of negative tweets awaiting batch processing (the
// paper's on-disk store of negative tweets).
type Store struct {
	mu    sync.Mutex
	texts []string
}

// NewStore returns an empty corpus.
func NewStore() *Store { return &Store{} }

// Append adds one document.
func (s *Store) Append(text string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.texts = append(s.texts, text)
}

// Len returns the corpus size.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.texts)
}

// Snapshot copies the corpus.
func (s *Store) Snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.texts...)
}

// Reset clears the corpus.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.texts = nil
}

// ExtractCause parses the complaint cause out of a tweet following the
// corpus convention "... because of the <cause>". It returns "" when the
// document carries no cause.
func ExtractCause(text string) string {
	const marker = "because of the "
	i := strings.LastIndex(text, marker)
	if i < 0 {
		return ""
	}
	return strings.TrimSpace(text[i+len(marker):])
}

// Runner executes cause-recomputation jobs. At most one job runs at a
// time, mirroring the paper's policy of not re-triggering while a Hadoop
// job is in flight.
type Runner struct {
	clock   vclock.Clock
	latency time.Duration

	mu        sync.Mutex
	running   bool
	completed int
}

// NewRunner builds a runner whose jobs take latency of (virtual) time.
func NewRunner(clock vclock.Clock, latency time.Duration) *Runner {
	if clock == nil {
		clock = vclock.Real()
	}
	return &Runner{clock: clock, latency: latency}
}

// Running reports whether a job is in flight.
func (r *Runner) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

// Completed returns how many jobs have finished.
func (r *Runner) Completed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completed
}

// Submit starts a recomputation job over the store: after the job
// latency, every cause appearing at least minSupport times in the corpus
// becomes part of the published model. Submitting while a job is running
// fails. onDone, if non-nil, runs after publication.
func (r *Runner) Submit(store *Store, model *Model, minSupport int, onDone func()) error {
	if store == nil || model == nil {
		return fmt.Errorf("extjob: Submit needs a store and a model")
	}
	if minSupport <= 0 {
		minSupport = 1
	}
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return fmt.Errorf("extjob: a job is already running")
	}
	r.running = true
	r.mu.Unlock()

	go func() {
		r.clock.Sleep(r.latency)
		counts := make(map[string]int)
		for _, text := range store.Snapshot() {
			if c := ExtractCause(text); c != "" {
				counts[c]++
			}
		}
		causes := make(map[string]bool)
		for c, n := range counts {
			if n >= minSupport {
				causes[c] = true
			}
		}
		model.publish(causes)
		r.mu.Lock()
		r.running = false
		r.completed++
		r.mu.Unlock()
		if onDone != nil {
			onDone()
		}
	}()
	return nil
}

// Shared registries let stream operators (configured by string params)
// and orchestrator policies address the same model/store instances, like
// a shared filesystem path would in the paper's deployment.
var (
	regMu  sync.Mutex
	models = make(map[string]*Model)
	stores = make(map[string]*Store)
)

// GetModel returns (creating if needed) the named shared model.
func GetModel(id string) *Model {
	regMu.Lock()
	defer regMu.Unlock()
	m, ok := models[id]
	if !ok {
		m = NewModel()
		models[id] = m
	}
	return m
}

// SetModel installs a pre-loaded model under a name (boot-time state).
func SetModel(id string, m *Model) {
	regMu.Lock()
	defer regMu.Unlock()
	models[id] = m
}

// GetStore returns (creating if needed) the named shared corpus.
func GetStore(id string) *Store {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := stores[id]
	if !ok {
		s = NewStore()
		stores[id] = s
	}
	return s
}
