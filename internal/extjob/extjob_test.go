package extjob

import (
	"testing"
	"time"

	"streamorca/internal/vclock"
)

func TestModelBasics(t *testing.T) {
	m := NewModel("flash", "screen")
	if !m.Contains("flash") || m.Contains("antenna") {
		t.Fatal("Contains wrong")
	}
	if m.Version() != 1 {
		t.Fatalf("Version = %d", m.Version())
	}
	if len(m.Causes()) != 2 {
		t.Fatalf("Causes = %v", m.Causes())
	}
}

func TestStoreAppendSnapshot(t *testing.T) {
	s := NewStore()
	s.Append("a")
	s.Append("b")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	snap := s.Snapshot()
	s.Append("c")
	if len(snap) != 2 {
		t.Fatal("snapshot not isolated")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestExtractCause(t *testing.T) {
	if c := ExtractCause("I hate my phone because of the antenna"); c != "antenna" {
		t.Fatalf("cause = %q", c)
	}
	if c := ExtractCause("I love my phone"); c != "" {
		t.Fatalf("cause = %q", c)
	}
}

func TestRunnerRecomputesModelAfterLatency(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	r := NewRunner(clock, 10*time.Minute)
	store := NewStore()
	for i := 0; i < 5; i++ {
		store.Append("I hate my phone because of the antenna")
	}
	store.Append("I hate my phone because of the rare-issue")
	model := NewModel("flash")
	done := make(chan struct{})
	if err := r.Submit(store, model, 3, func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	if !r.Running() {
		t.Fatal("job not running")
	}
	// A second submission while running fails (the 10-minute suppression
	// in §5.1 exists on top of this).
	if err := r.Submit(store, model, 3, nil); err == nil {
		t.Fatal("concurrent job accepted")
	}
	if model.Version() != 1 {
		t.Fatal("model published before latency elapsed")
	}
	clock.BlockUntilWaiters(1)
	clock.Advance(10 * time.Minute)
	<-done
	if model.Version() != 2 {
		t.Fatalf("version = %d", model.Version())
	}
	if !model.Contains("antenna") {
		t.Fatal("recomputed model misses the frequent cause")
	}
	if model.Contains("rare-issue") {
		t.Fatal("min support ignored")
	}
	if model.Contains("flash") {
		t.Fatal("recomputation did not replace the model")
	}
	if r.Running() || r.Completed() != 1 {
		t.Fatalf("runner state: running=%v completed=%d", r.Running(), r.Completed())
	}
}

func TestRunnerSubmitValidation(t *testing.T) {
	r := NewRunner(nil, 0)
	if err := r.Submit(nil, NewModel(), 1, nil); err == nil {
		t.Fatal("nil store accepted")
	}
	if err := r.Submit(NewStore(), nil, 1, nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestRegistries(t *testing.T) {
	m1 := GetModel("reg-test-model")
	m2 := GetModel("reg-test-model")
	if m1 != m2 {
		t.Fatal("GetModel not shared")
	}
	pre := NewModel("x")
	SetModel("reg-test-model", pre)
	if GetModel("reg-test-model") != pre {
		t.Fatal("SetModel ignored")
	}
	s1 := GetStore("reg-test-store")
	s2 := GetStore("reg-test-store")
	if s1 != s2 {
		t.Fatal("GetStore not shared")
	}
}
