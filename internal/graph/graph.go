// Package graph implements the in-memory stream graph representation the
// ORCA service maintains for every managed application (§3, third key
// concept): a queryable snapshot holding both the logical view (operators,
// composite containment, stream connections) and the physical view (PE
// partitions, hosts, PE states). Event handlers combine it with event
// contexts to disambiguate logical and physical layouts before actuating.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"streamorca/internal/adl"
	"streamorca/internal/ids"
)

// OperatorInfo describes one operator instance of a running job.
type OperatorInfo struct {
	Name      string
	Kind      string
	Composite string // enclosing composite instance, "" if top-level
	PE        ids.PEID
	Params    map[string]string
}

// CompositeInfo describes one composite operator instance.
type CompositeInfo struct {
	Name   string
	Kind   string
	Parent string
}

// PEInfo describes one processing element of a running job.
type PEInfo struct {
	ID        ids.PEID
	Index     int // partition index within the application's ADL
	Host      string
	Operators []string
	State     string
}

// Graph is the queryable representation of one running application.
// Structure (operators, composites, connections) is immutable after Build;
// PE placement and state are updated by the ORCA service as the platform
// reports changes. All methods are safe for concurrent use.
type Graph struct {
	app string
	job ids.JobID

	mu    sync.RWMutex
	ops   map[string]*OperatorInfo
	comps map[string]*CompositeInfo
	pes   map[ids.PEID]*PEInfo
	conns []adl.Connection

	// Memoised containment chains: the §4.1 point that the filter API can
	// precompute what the SQL approach recomputes recursively per query.
	chains     map[string][]string
	kindChains map[string][]string
}

// Build constructs a graph from a validated ADL plus the physical identity
// SAM assigned at submission: partition index → global PE id and host.
func Build(app *adl.Application, job ids.JobID, peIDs map[int]ids.PEID, hosts map[int]string) (*Graph, error) {
	g := &Graph{
		app:        app.Name,
		job:        job,
		ops:        make(map[string]*OperatorInfo, len(app.Operators)),
		comps:      make(map[string]*CompositeInfo, len(app.Composites)),
		pes:        make(map[ids.PEID]*PEInfo, len(app.PEs)),
		conns:      append([]adl.Connection(nil), app.Connects...),
		chains:     make(map[string][]string, len(app.Operators)),
		kindChains: make(map[string][]string, len(app.Operators)),
	}
	for _, c := range app.Composites {
		g.comps[c.Name] = &CompositeInfo{Name: c.Name, Kind: c.Kind, Parent: c.Parent}
	}
	for _, pe := range app.PEs {
		id, ok := peIDs[pe.Index]
		if !ok {
			return nil, fmt.Errorf("graph: no PE id for partition %d of %s", pe.Index, app.Name)
		}
		g.pes[id] = &PEInfo{
			ID: id, Index: pe.Index, Host: hosts[pe.Index],
			Operators: append([]string(nil), pe.Operators...),
			State:     "running",
		}
		for _, opName := range pe.Operators {
			src := app.OperatorByName(opName)
			if src == nil {
				return nil, fmt.Errorf("graph: PE %d names unknown operator %q", pe.Index, opName)
			}
			g.ops[opName] = &OperatorInfo{
				Name: src.Name, Kind: src.Kind, Composite: src.Composite,
				PE: id, Params: src.Params,
			}
		}
	}
	for name := range g.ops {
		g.chains[name] = app.CompositeChain(name)
		g.kindChains[name] = app.CompositeKindChain(name)
	}
	return g, nil
}

// App returns the application name.
func (g *Graph) App() string { return g.app }

// Job returns the job id the application runs as.
func (g *Graph) Job() ids.JobID { return g.job }

// Operator returns a copy of the named operator's info.
func (g *Graph) Operator(name string) (OperatorInfo, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if op, ok := g.ops[name]; ok {
		return *op, true
	}
	return OperatorInfo{}, false
}

// Composite returns a copy of the named composite instance's info.
func (g *Graph) Composite(name string) (CompositeInfo, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if c, ok := g.comps[name]; ok {
		return *c, true
	}
	return CompositeInfo{}, false
}

// PE returns a copy of the identified PE's info.
func (g *Graph) PE(id ids.PEID) (PEInfo, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if p, ok := g.pes[id]; ok {
		cp := *p
		cp.Operators = append([]string(nil), p.Operators...)
		return cp, true
	}
	return PEInfo{}, false
}

// OperatorNames returns every operator name, sorted.
func (g *Graph) OperatorNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	names := make([]string, 0, len(g.ops))
	for n := range g.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PEIDs returns every PE id, sorted.
func (g *Graph) PEIDs() []ids.PEID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]ids.PEID, 0, len(g.pes))
	for id := range g.pes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OperatorsInPE answers "which stream operators reside in PE x?" (§4.2).
func (g *Graph) OperatorsInPE(id ids.PEID) []OperatorInfo {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.pes[id]
	if !ok {
		return nil
	}
	out := make([]OperatorInfo, 0, len(p.Operators))
	for _, n := range p.Operators {
		if op, ok := g.ops[n]; ok {
			out = append(out, *op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CompositesInPE answers "which composites reside in PE x?": the set of
// composite instances with at least one operator fused into the PE.
func (g *Graph) CompositesInPE(id ids.PEID) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.pes[id]
	if !ok {
		return nil
	}
	seen := make(map[string]bool)
	for _, n := range p.Operators {
		for _, comp := range g.chains[n] {
			seen[comp] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// EnclosingComposite answers "what is the enclosing composite operator
// instance name for operator y?".
func (g *Graph) EnclosingComposite(opName string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	op, ok := g.ops[opName]
	if !ok || op.Composite == "" {
		return "", false
	}
	return op.Composite, true
}

// PEOfOperator answers "what is the PE id for operator instance y?".
func (g *Graph) PEOfOperator(opName string) (ids.PEID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	op, ok := g.ops[opName]
	if !ok {
		return ids.InvalidPE, false
	}
	return op.PE, true
}

// HostOfPE returns the host a PE is placed on.
func (g *Graph) HostOfPE(id ids.PEID) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.pes[id]
	if !ok {
		return "", false
	}
	return p.Host, true
}

// CompositeChain returns the composite instances enclosing the operator,
// innermost first.
func (g *Graph) CompositeChain(opName string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]string(nil), g.chains[opName]...)
}

// CompositeKindChain returns the composite types enclosing the operator,
// innermost first.
func (g *Graph) CompositeKindChain(opName string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]string(nil), g.kindChains[opName]...)
}

// InCompositeType reports whether the operator is transitively contained
// in a composite instance of the given type. This is the memoised check
// behind composite-type scope filters (§4.1).
func (g *Graph) InCompositeType(opName, kind string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, k := range g.kindChains[opName] {
		if k == kind {
			return true
		}
	}
	return false
}

// Upstream returns the names of operators feeding opName.
func (g *Graph) Upstream(opName string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for _, c := range g.conns {
		if c.ToOp == opName {
			out = append(out, c.FromOp)
		}
	}
	sort.Strings(out)
	return out
}

// Downstream returns the names of operators fed by opName.
func (g *Graph) Downstream(opName string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for _, c := range g.conns {
		if c.FromOp == opName {
			out = append(out, c.ToOp)
		}
	}
	sort.Strings(out)
	return out
}

// SetPEState records a PE lifecycle change reported by the platform.
func (g *Graph) SetPEState(id ids.PEID, state string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.pes[id]; ok {
		p.State = state
	}
}

// SetPEHost records a placement change (e.g. restart on another host).
func (g *Graph) SetPEHost(id ids.PEID, host string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.pes[id]; ok {
		p.Host = host
	}
}
