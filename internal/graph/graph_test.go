package graph

import (
	"testing"

	"streamorca/internal/adl"
	"streamorca/internal/ids"
	"streamorca/internal/tuple"
)

func intSchema() []tuple.Attribute { return []tuple.Attribute{{Name: "v", Type: tuple.Int}} }

// figure2 reproduces the paper's Figure 2/3 layout: two composite1
// instances whose operators are fused into PEs that cross composite
// boundaries (op3'/op3” in PE with the sources, op4-6 of both instances
// in one PE).
func figure2() *adl.Application {
	app := &adl.Application{Name: "Figure2"}
	app.Composites = []adl.CompositeInstance{
		{Name: "composite1'", Kind: "composite1"},
		{Name: "composite1''", Kind: "composite1"},
	}
	add := func(name, kind, comp string, nin, nout int) {
		op := adl.Operator{Name: name, Kind: kind, Composite: comp}
		for i := 0; i < nin; i++ {
			op.Inputs = append(op.Inputs, adl.Port{Schema: intSchema()})
		}
		for i := 0; i < nout; i++ {
			op.Outputs = append(op.Outputs, adl.Port{Schema: intSchema()})
		}
		app.Operators = append(app.Operators, op)
	}
	add("op1", "Beacon", "", 0, 1)
	add("op2", "Beacon", "", 0, 1)
	for _, s := range []string{"'", "''"} {
		comp := "composite1" + s
		add("op3"+s, "Split", comp, 1, 2)
		add("op4"+s, "Functor", comp, 1, 1)
		add("op5"+s, "Functor", comp, 1, 1)
		add("op6"+s, "Merge", comp, 2, 1)
	}
	add("op7", "Sink", "", 1, 0)
	conn := func(f string, fp int, t string, tp int) {
		app.Connects = append(app.Connects, adl.Connection{FromOp: f, FromPort: fp, ToOp: t, ToPort: tp})
	}
	conn("op1", 0, "op3'", 0)
	conn("op2", 0, "op3''", 0)
	for _, s := range []string{"'", "''"} {
		conn("op3"+s, 0, "op4"+s, 0)
		conn("op3"+s, 1, "op5"+s, 0)
		conn("op4"+s, 0, "op6"+s, 0)
		conn("op5"+s, 0, "op6"+s, 1)
	}
	conn("op6'", 0, "op7", 0)
	conn("op6''", 0, "op7", 0)
	app.PEs = []adl.PE{
		{Index: 0, Operators: []string{"op1", "op2", "op3'", "op3''"}},
		{Index: 1, Operators: []string{"op4'", "op5'", "op6'", "op4''", "op5''", "op6''"}},
		{Index: 2, Operators: []string{"op7"}},
	}
	return app
}

func buildFigure2(t *testing.T) *Graph {
	t.Helper()
	app := figure2()
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := Build(app, 5,
		map[int]ids.PEID{0: 101, 1: 102, 2: 103},
		map[int]string{0: "hostA", 1: "hostA", 2: "hostB"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildIdentity(t *testing.T) {
	g := buildFigure2(t)
	if g.App() != "Figure2" || g.Job() != 5 {
		t.Fatalf("identity %s/%v", g.App(), g.Job())
	}
	if len(g.OperatorNames()) != 11 {
		t.Fatalf("operators: %v", g.OperatorNames())
	}
	pes := g.PEIDs()
	if len(pes) != 3 || pes[0] != 101 {
		t.Fatalf("PEIDs: %v", pes)
	}
}

func TestBuildRejectsMissingPEID(t *testing.T) {
	app := figure2()
	if _, err := Build(app, 1, map[int]ids.PEID{0: 101}, nil); err == nil {
		t.Fatal("Build accepted missing PE id")
	}
}

func TestOperatorsInPE(t *testing.T) {
	g := buildFigure2(t)
	ops := g.OperatorsInPE(101)
	if len(ops) != 4 || ops[0].Name != "op1" || ops[3].Name != "op3''" {
		t.Fatalf("OperatorsInPE(101) = %+v", ops)
	}
	if g.OperatorsInPE(999) != nil {
		t.Fatal("unknown PE returned operators")
	}
}

func TestCompositesInPE(t *testing.T) {
	g := buildFigure2(t)
	// PE 102 holds operators from both composite instances.
	comps := g.CompositesInPE(102)
	if len(comps) != 2 || comps[0] != "composite1'" || comps[1] != "composite1''" {
		t.Fatalf("CompositesInPE(102) = %v", comps)
	}
	// PE 103 holds only the top-level sink.
	if got := g.CompositesInPE(103); len(got) != 0 {
		t.Fatalf("CompositesInPE(103) = %v", got)
	}
}

func TestEnclosingCompositeAndPEOfOperator(t *testing.T) {
	g := buildFigure2(t)
	comp, ok := g.EnclosingComposite("op4'")
	if !ok || comp != "composite1'" {
		t.Fatalf("EnclosingComposite(op4') = %q, %v", comp, ok)
	}
	if _, ok := g.EnclosingComposite("op1"); ok {
		t.Fatal("top-level operator has enclosing composite")
	}
	pe, ok := g.PEOfOperator("op6''")
	if !ok || pe != 102 {
		t.Fatalf("PEOfOperator(op6'') = %v, %v", pe, ok)
	}
	if _, ok := g.PEOfOperator("ghost"); ok {
		t.Fatal("unknown operator resolved to a PE")
	}
}

func TestHostOfPE(t *testing.T) {
	g := buildFigure2(t)
	if h, ok := g.HostOfPE(103); !ok || h != "hostB" {
		t.Fatalf("HostOfPE(103) = %q, %v", h, ok)
	}
	if _, ok := g.HostOfPE(999); ok {
		t.Fatal("unknown PE resolved to a host")
	}
}

func TestChainsAndContainment(t *testing.T) {
	g := buildFigure2(t)
	if chain := g.CompositeChain("op5''"); len(chain) != 1 || chain[0] != "composite1''" {
		t.Fatalf("CompositeChain(op5'') = %v", chain)
	}
	if kinds := g.CompositeKindChain("op5''"); len(kinds) != 1 || kinds[0] != "composite1" {
		t.Fatalf("CompositeKindChain(op5'') = %v", kinds)
	}
	if !g.InCompositeType("op3'", "composite1") {
		t.Fatal("op3' not in composite1")
	}
	if g.InCompositeType("op1", "composite1") {
		t.Fatal("op1 in composite1")
	}
}

func TestUpstreamDownstream(t *testing.T) {
	g := buildFigure2(t)
	up := g.Upstream("op7")
	if len(up) != 2 || up[0] != "op6'" || up[1] != "op6''" {
		t.Fatalf("Upstream(op7) = %v", up)
	}
	down := g.Downstream("op3'")
	if len(down) != 2 || down[0] != "op4'" {
		t.Fatalf("Downstream(op3') = %v", down)
	}
}

func TestStateAndHostUpdates(t *testing.T) {
	g := buildFigure2(t)
	g.SetPEState(102, "crashed")
	if p, _ := g.PE(102); p.State != "crashed" {
		t.Fatalf("PE state = %q", p.State)
	}
	g.SetPEHost(102, "hostC")
	if h, _ := g.HostOfPE(102); h != "hostC" {
		t.Fatalf("host after update = %q", h)
	}
	// Updates to unknown PEs are ignored.
	g.SetPEState(999, "x")
	g.SetPEHost(999, "x")
}

func TestPECopiesAreIndependent(t *testing.T) {
	g := buildFigure2(t)
	p, _ := g.PE(101)
	p.Operators[0] = "mutated"
	p2, _ := g.PE(101)
	if p2.Operators[0] == "mutated" {
		t.Fatal("PE() exposed internal storage")
	}
}

// nestedGraph builds a graph with composite nesting depth 3 to exercise
// the naive evaluator's transitive closure.
func nestedGraph(t *testing.T) *Graph {
	t.Helper()
	app := &adl.Application{Name: "Nested"}
	app.Composites = []adl.CompositeInstance{
		{Name: "outer", Kind: "outerKind"},
		{Name: "mid", Kind: "midKind", Parent: "outer"},
		{Name: "inner", Kind: "innerKind", Parent: "mid"},
	}
	app.Operators = []adl.Operator{
		{Name: "deep", Kind: "Split", Composite: "inner",
			Outputs: []adl.Port{{Schema: intSchema()}}},
		{Name: "shallow", Kind: "Split", Composite: "outer",
			Outputs: []adl.Port{{Schema: intSchema()}}},
		{Name: "top", Kind: "Merge",
			Inputs: []adl.Port{{Schema: intSchema()}}},
	}
	app.PEs = []adl.PE{{Index: 0, Operators: []string{"deep", "shallow", "top"}}}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := Build(app, 1, map[int]ids.PEID{0: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNaiveMatchBasics(t *testing.T) {
	g := nestedGraph(t)
	q := NaiveQuery{MetricName: "queueSize", OperatorKinds: []string{"Split"}, CompositeKinds: []string{"outerKind"}}
	if !NaiveMatch(g, "deep", "queueSize", q) {
		t.Fatal("deep operator not matched through transitive containment")
	}
	if !NaiveMatch(g, "shallow", "queueSize", q) {
		t.Fatal("shallow operator not matched")
	}
	if NaiveMatch(g, "top", "queueSize", q) {
		t.Fatal("top-level Merge matched (wrong kind, no composite)")
	}
	if NaiveMatch(g, "deep", "otherMetric", q) {
		t.Fatal("wrong metric matched")
	}
	if NaiveMatch(g, "ghost", "queueSize", q) {
		t.Fatal("unknown operator matched")
	}
}

func TestNaiveMatchInnerKindOnly(t *testing.T) {
	g := nestedGraph(t)
	q := NaiveQuery{CompositeKinds: []string{"innerKind"}}
	if !NaiveMatch(g, "deep", "m", q) {
		t.Fatal("deep not matched for innerKind")
	}
	if NaiveMatch(g, "shallow", "m", q) {
		t.Fatal("shallow matched for innerKind")
	}
}

func TestNaiveMatchNoCompositeFilterMatchesAll(t *testing.T) {
	g := nestedGraph(t)
	q := NaiveQuery{OperatorKinds: []string{"Merge"}}
	if !NaiveMatch(g, "top", "m", q) {
		t.Fatal("kind-only query failed")
	}
}

// TestNaiveMatchAgreesWithMemoisedChains is the E7 equivalence check at
// unit level: for every operator and composite kind, the naive recursive
// evaluation must agree with the memoised InCompositeType.
func TestNaiveMatchAgreesWithMemoisedChains(t *testing.T) {
	for _, g := range []*Graph{buildFigure2(t), nestedGraph(t)} {
		kinds := []string{"composite1", "outerKind", "midKind", "innerKind", "nope"}
		for _, op := range g.OperatorNames() {
			info, _ := g.Operator(op)
			for _, kind := range kinds {
				want := g.InCompositeType(op, kind)
				got := NaiveMatch(g, op, "m", NaiveQuery{CompositeKinds: []string{kind}})
				// NaiveMatch also requires kind match when set; here only
				// composite filter is set, so results must agree.
				if got != want {
					t.Fatalf("app %s op %s kind %s: naive=%v memoised=%v (info=%+v)",
						g.App(), op, kind, got, want, info)
				}
			}
		}
	}
}
