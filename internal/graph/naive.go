package graph

// This file implements the "SQL approach" the paper contrasts with the
// scope-filter API in §4.1: evaluating composite containment with a
// recursive query (the WITH CompPairs(...) UNION ALL construction). It is
// used as the baseline for experiment E7 — it must return exactly the same
// answers as the memoised filter path, while recomputing the transitive
// containment closure on every evaluation, as a recursive SQL query over
// instance tables would.

// NaiveQuery mirrors the WHERE clause of the paper's example query: an
// operator-metric selection by metric name, operator kinds (disjunctive),
// and composite kinds (disjunctive).
type NaiveQuery struct {
	MetricName     string
	OperatorKinds  []string
	CompositeKinds []string
}

// compPair is one row of the recursive CompPairs CTE: a composite instance
// together with one of its (transitive) ancestors, including itself.
type compPair struct {
	comp   string
	parent string
}

// NaiveMatch evaluates the query against a single candidate metric
// (operator instance + metric name) the way the recursive SQL would:
// rebuild CompPairs from the instance tables, then join. It deliberately
// performs no memoisation.
func NaiveMatch(g *Graph, opName, metricName string, q NaiveQuery) bool {
	if q.MetricName != "" && metricName != q.MetricName {
		return false
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	op, ok := g.ops[opName]
	if !ok {
		return false
	}
	if len(q.OperatorKinds) > 0 && !containsString(q.OperatorKinds, op.Kind) {
		return false
	}
	if len(q.CompositeKinds) == 0 {
		return true
	}
	// Recursive CTE: seed with (comp, parent) base rows, iterate UNION ALL
	// until fixpoint, exactly as CompPairs does.
	var pairs []compPair
	for _, c := range g.comps {
		pairs = append(pairs, compPair{comp: c.Name, parent: c.Name})
		if c.Parent != "" {
			pairs = append(pairs, compPair{comp: c.Name, parent: c.Parent})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range pairs {
			anc, ok := g.comps[p.parent]
			if !ok || anc.Parent == "" {
				continue
			}
			next := compPair{comp: p.comp, parent: anc.Parent}
			if !containsPair(pairs, next) {
				pairs = append(pairs, next)
				changed = true
			}
		}
	}
	// Final join: the operator's direct composite must reach, via the
	// closure, an ancestor whose kind is one of the requested kinds.
	if op.Composite == "" {
		return false
	}
	for _, p := range pairs {
		if p.comp != op.Composite {
			continue
		}
		if anc, ok := g.comps[p.parent]; ok && containsString(q.CompositeKinds, anc.Kind) {
			return true
		}
	}
	return false
}

func containsString(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

func containsPair(list []compPair, v compPair) bool {
	for _, p := range list {
		if p == v {
			return true
		}
	}
	return false
}
