// Package ids defines the small shared identifier types used across the
// platform daemons and the orchestrator. Keeping them in one leaf package
// avoids import cycles between the runtime components that exchange them.
package ids

import "fmt"

// JobID identifies a submitted application instance (a "job"). IDs are
// assigned by SAM and are unique for the lifetime of a platform instance.
type JobID int64

// String renders the id as SAM reports it.
func (j JobID) String() string { return fmt.Sprintf("job-%d", int64(j)) }

// InvalidJob is the zero, never-assigned job id.
const InvalidJob JobID = 0

// PEID identifies a processing element. PE ids are globally unique across
// jobs, as in System S, so a PE failure event alone pins down the job.
type PEID int64

// String renders the id as the platform tools print it.
func (p PEID) String() string { return fmt.Sprintf("pe-%d", int64(p)) }

// InvalidPE is the zero, never-assigned PE id.
const InvalidPE PEID = 0
