package ids

import "testing"

func TestStrings(t *testing.T) {
	if JobID(7).String() != "job-7" {
		t.Fatalf("JobID string = %q", JobID(7).String())
	}
	if PEID(12).String() != "pe-12" {
		t.Fatalf("PEID string = %q", PEID(12).String())
	}
	if InvalidJob != 0 || InvalidPE != 0 {
		t.Fatal("invalid sentinels non-zero")
	}
}
