package lint

import (
	"go/ast"
)

// ActuationCheck reports discarded results of platform actuations.
var ActuationCheck = &Analyzer{
	Name: "actuationcheck",
	Doc: `actuation results must not be discarded

Every actuation (RestartPE, CheckpointPE, ResizeRegion, ...) returns an
error that feeds the retry, journalling, and degradation machinery; a
discarded result hides a failed actuation and the routine keeps acting
on a world model that no longer holds. The analyzer flags actuation
calls whose result is dropped — as a bare call statement, behind go or
defer, or assigned to the blank identifier — and guard-wrapped Handler
invocations treated the same way. Genuinely best-effort call sites
(rollback paths, sweep loops) carry an //orcalint:ignore actuationcheck
directive with the reason.`,
	Run: runActuationCheck,
}

// Actuation methods per declaring package. The orca facade re-exports
// these types as aliases, so facade calls resolve to the same objects.
var actuationMethods = map[string]map[string]bool{
	corePath: {
		"SubmitApplication":      true,
		"CancelJob":              true,
		"RestartPE":              true,
		"CheckpointPE":           true,
		"StopPE":                 true,
		"KillPE":                 true,
		"ResizeRegion":           true,
		"ControlOperator":        true,
		"MakeExclusiveHostPools": true,
		"RepartitionApplication": true,
		"StartApp":               true,
		"StopApp":                true,
	},
	samPath: {
		"SubmitJob":       true,
		"CancelJob":       true,
		"RestartPE":       true,
		"CheckpointPE":    true,
		"StopPE":          true,
		"KillPE":          true,
		"ControlOperator": true,
		"ResizeRegion":    true,
	},
}

func runActuationCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "dropped by a bare call statement")
				}
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "dropped by the go statement")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "dropped by the defer statement")
			case *ast.AssignStmt:
				checkDiscardingAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscardingAssign flags assignments that send an actuation's error
// result to the blank identifier.
func checkDiscardingAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 {
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		// The error is always the last result, so the last LHS is the
		// one that must not be blank.
		if ok && isBlank(as.Lhs[len(as.Lhs)-1]) {
			checkDiscardedCall(pass, call, "assigned to the blank identifier")
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if ok && i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			checkDiscardedCall(pass, call, "assigned to the blank identifier")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// checkDiscardedCall reports the call if it is an actuation method or a
// guard-wrapped Handler invocation.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	if m := calledMethod(pass.TypesInfo, call); m != nil {
		if methodRecv(m) == nil || m.Pkg() == nil {
			return
		}
		if actuationMethods[m.Pkg().Path()][m.Name()] {
			pass.Reportf(call.Pos(),
				"error from actuation %s.%s %s: actuation outcomes feed the retry and journalling machinery, and a dropped error hides a failed actuation (add //orcalint:ignore actuationcheck <reason> if this site is genuinely best-effort)",
				m.Pkg().Name(), m.Name(), how)
		}
		return
	}
	// Not a named method: a guard-wrapped handler invocation has the
	// defined function type core.Handler[C].
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsValue() && typeIs(tv.Type, corePath, "Handler") {
		pass.Reportf(call.Pos(),
			"error from a core.Handler call %s: the handler's error is the signal guards and the dispatcher act on",
			how)
	}
}
