// Package lint implements orcalint, the platform's static-analysis
// suite: a set of analyzers encoding the cross-layer contracts the
// codebase otherwise keeps only by convention — the declarative layer
// (operator models, metric-name constants, checkpoint SPIs) and the
// imperative layer (Open/Bind calls, routine observers, actuations)
// must never drift, and drift is cheapest to catch at lint time, before
// a job is ever built or submitted.
//
// The package is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, an
// analysistest-style fixture harness) on the standard library alone, so
// the module keeps its zero-dependency property. Packages under
// analysis are type-checked from syntax; their dependencies are
// resolved through the build cache's export data (go list -export), the
// same mechanism go vet uses.
//
// Suppression: a diagnostic can be silenced with a directive comment
//
//	//orcalint:ignore <analyzer>[,<analyzer>] <reason>
//
// placed either at the end of the offending line or alone on the line
// immediately above it. The reason is mandatory — an undocumented
// exemption is itself a diagnostic — so every suppressed finding
// carries its justification in the source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one orcalint check: a name for directives and the
// catalog, one-line and long documentation, and the Run function
// applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -list output, and
	// ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the analyzer's documentation; the first line is the
	// catalog summary.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Analyzers lists every orcalint analyzer, in catalog order.
var Analyzers = []*Analyzer{ActuationCheck, BatchSPI, MetricKey, ParamDrift, StateSPI}

// Summary returns the first line of the analyzer's documentation.
func (a *Analyzer) Summary() string {
	if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
		return a.Doc[:i]
	}
	return a.Doc
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg  *Package
	diag *[]Diagnostic
}

// Diagnostic is one finding: a position and a message, tagged with the
// analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless an ignore directive covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.ignored(p.Analyzer.Name, position) {
		return
	}
	*p.diag = append(*p.diag, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective records one parsed //orcalint:ignore comment.
type ignoreDirective struct {
	analyzers []string // empty means malformed
	line      int      // line the directive suppresses
	used      bool
	reason    bool
}

func (d *ignoreDirective) covers(analyzer string, line int) bool {
	if d.line != line || !d.reason {
		return false
	}
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

const ignorePrefix = "//orcalint:ignore"

// parseIgnores extracts the file's ignore directives. A directive that
// shares its line with code suppresses that line; a directive alone on
// a line suppresses the next line.
func parseIgnores(fset *token.FileSet, f *ast.File) []*fileDirective {
	src := codeLines(fset, f)
	var out []*fileDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			d := &ignoreDirective{}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				d.analyzers = strings.Split(fields[0], ",")
				d.reason = len(fields) > 1
			}
			pos := fset.Position(c.Pos())
			if src[pos.Line] {
				d.line = pos.Line // end-of-line directive
			} else {
				d.line = pos.Line + 1 // directive on its own line
			}
			out = append(out, &fileDirective{ignoreDirective: d, pos: pos})
		}
	}
	return out
}

// codeLines reports which lines of a file hold non-comment tokens, so
// a directive can tell "end of code line" from "own line".
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		default:
			lines[fset.Position(n.Pos()).Line] = true
			return true
		}
	})
	return lines
}

// runAnalyzers applies each analyzer to the package and returns the
// findings sorted by position. Malformed or unused directives are
// reported as findings of the pseudo-analyzer "orcalint" so a typoed
// suppression never silently rots.
func runAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			pkg:       pkg,
			diag:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	for _, d := range pkg.directives {
		if len(d.analyzers) == 0 || !d.reason {
			diags = append(diags, Diagnostic{
				Analyzer: "orcalint",
				Pos:      d.pos,
				Message:  "malformed ignore directive: want //orcalint:ignore <analyzer>[,<analyzer>] <reason>",
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// fileDirectives pairs a parsed directive with its position for the
// malformed-directive report.
type fileDirective struct {
	*ignoreDirective
	pos token.Position
}

// ignored reports whether an ignore directive in the package covers the
// (analyzer, position) pair.
func (p *Package) ignored(analyzer string, pos token.Position) bool {
	for _, d := range p.directives {
		if d.pos.Filename == pos.Filename && d.covers(analyzer, pos.Line) {
			d.used = true
			return true
		}
	}
	return false
}
