package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `package p

func a() {
	_ = 1 //orcalint:ignore statespi end-of-line reason
	//orcalint:ignore metrickey,paramdrift own-line reason
	_ = 2
	//orcalint:ignore actuationcheck
	_ = 3
}
`

func TestIgnoreDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, directives: parseIgnores(fset, f)}
	if n := len(pkg.directives); n != 3 {
		t.Fatalf("parsed %d directives, want 3", n)
	}
	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }

	// End-of-line form covers its own line, for its analyzer only.
	if !pkg.ignored("statespi", at(4)) {
		t.Error("end-of-line directive does not cover its own line")
	}
	if pkg.ignored("metrickey", at(4)) {
		t.Error("directive covers an analyzer it does not name")
	}
	// Own-line form covers the next line, for every listed analyzer.
	for _, a := range []string{"metrickey", "paramdrift"} {
		if !pkg.ignored(a, at(6)) {
			t.Errorf("own-line directive does not cover the next line for %s", a)
		}
	}
	if pkg.ignored("metrickey", at(5)) {
		t.Error("own-line directive covers its own (code-free) line")
	}
	// A directive without a reason suppresses nothing and is itself a
	// finding.
	if pkg.ignored("actuationcheck", at(8)) {
		t.Error("reason-less directive suppresses a diagnostic")
	}
	diags, err := runAnalyzers(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "orcalint" ||
		!strings.Contains(diags[0].Message, "malformed ignore directive") {
		t.Fatalf("want one malformed-directive finding, got %v", diags)
	}
	if diags[0].Pos.Line != 7 {
		t.Errorf("malformed-directive finding at line %d, want 7", diags[0].Pos.Line)
	}
}

func TestCatalog(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Analyzers {
		if a.Name == "" || a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q is not a lower-case single word", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run function", a.Name)
		}
		if a.Summary() == "" || strings.Contains(a.Summary(), "\n") {
			t.Errorf("analyzer %s has no one-line summary", a.Name)
		}
	}
	if len(Analyzers) < 4 {
		t.Errorf("catalog lists %d analyzers, want at least 4", len(Analyzers))
	}
}
