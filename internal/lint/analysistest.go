package lint

import (
	"fmt"
	"regexp"
	"strconv"
)

// This file is the package's analysistest equivalent: fixtures under
// testdata/src/<name> are real module packages (the go tool skips
// testdata directories in wildcard patterns, so they never leak into
// builds) annotated with expectation comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Each expectation must be matched by a diagnostic reported on its line,
// and every diagnostic must be claimed by an expectation — unexpected
// findings and stale expectations both fail.

// expectation is one parsed want comment pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Patterns may be backquoted (the usual form, since diagnostic messages
// quote identifiers) or double-quoted.
var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)
)

// CheckFixture loads the fixture package testdata/src/<fixture>
// (relative to dir), applies the analyzers, and returns one error
// message per mismatch between diagnostics and want comments.
func CheckFixture(dir string, analyzers []*Analyzer, fixture string) ([]string, error) {
	pkgs, err := Load(dir, "./testdata/src/"+fixture)
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("fixture %s: loaded %d packages, want 1", fixture, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := runAnalyzers(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	wants, err := parseWants(pkg)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, d := range diags {
		if !claimWant(wants, d) {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %v", w.file, w.line, w.re))
		}
	}
	return problems, nil
}

// parseWants extracts every expectation comment from the fixture's
// syntax.
func parseWants(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: unquote %s: %w", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: compile %q: %w", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// claimWant marks the first unmatched expectation on the diagnostic's
// line whose pattern matches the message.
func claimWant(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
