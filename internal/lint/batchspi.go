package lint

import "go/types"

// BatchSPI reports batch-execution SPI implementations that break the
// fallback contract or will silently never be called.
var BatchSPI = &Analyzer{
	Name: "batchspi",
	Doc: `ProcessBatch implementers must keep the per-tuple fallback intact

The batch execution SPI is opt-in on top of the per-tuple Operator
contract: the PE delivery loop hands whole batches to operators
implementing ProcessBatch(int, *tuple.Batch) error, but still needs the
per-tuple Process for everything batching does not cover (singleton
deliveries, mark-adjacent items, non-batch upstreams). A type with
ProcessBatch but no correctly-shaped Process either fails the Operator
interface entirely or — worse, with a mis-typed Process — falls out of
the batch fast path without anyone noticing. The analyzer reports
ProcessBatch without a matching Process, and near-miss ProcessBatch
signatures the runtime's interface assertion will silently never
select.`,
	Run: runBatchSPI,
}

func runBatchSPI(pass *Pass) error {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		checkBatchMethods(pass, named)
	}
	return nil
}

func checkBatchMethods(pass *Pass, named *types.Named) {
	pb := lookupMethod(named, "ProcessBatch")
	if pb == nil {
		return
	}
	typeName := named.Obj().Name()
	if !sigMatches(pb, "int", "*"+tuplePath+".Batch") {
		pass.Reportf(safePos(pass, pb, named),
			"type %s has a method ProcessBatch whose signature does not match the batch SPI (want func(int, *tuple.Batch) error): the runtime's BatchOperator assertion will silently never select it",
			typeName)
		return
	}
	proc := lookupMethod(named, "Process")
	if proc == nil {
		pass.Reportf(safePos(pass, pb, named),
			"type %s implements ProcessBatch but not Process: BatchOperator embeds Operator, so the per-tuple fallback the delivery loop requires is missing",
			typeName)
		return
	}
	if !sigMatches(proc, "int", tuplePath+".Tuple") {
		pass.Reportf(safePos(pass, proc, named),
			"type %s implements ProcessBatch but its Process signature does not match the operator SPI (want func(int, tuple.Tuple) error): the per-tuple fallback contract is broken",
			typeName)
	}
}
