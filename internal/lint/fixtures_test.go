package lint

import "testing"

// Each analyzer runs over its fixture package under testdata/src; the
// fixture's want comments pin both the positive diagnostics and, by
// their absence, the negative cases.
func testFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	problems, err := CheckFixture(".", []*Analyzer{a}, fixture)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestParamDrift(t *testing.T)     { testFixture(t, ParamDrift, "paramdrift") }
func TestBatchSPI(t *testing.T)       { testFixture(t, BatchSPI, "batchspi") }
func TestMetricKey(t *testing.T)      { testFixture(t, MetricKey, "metrickey") }
func TestStateSPI(t *testing.T)       { testFixture(t, StateSPI, "statespi") }
func TestActuationCheck(t *testing.T) { testFixture(t, ActuationCheck, "actuationcheck") }
