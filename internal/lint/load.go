package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file loads packages for analysis without golang.org/x/tools: it
// shells out to `go list -export -deps -json` for package metadata and
// build-cache export data, parses the target packages' sources, and
// type-checks them with the standard library's gc importer reading the
// export files — the same pipeline go vet drives, minus the toolchain
// plumbing.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	directives []*fileDirective
}

// listEntry mirrors the subset of `go list -json` output the loader
// needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir, "" for
// the current directory), type-checks the non-dependency matches from
// source, and returns them sorted by import path. Test files are not
// analyzed: orcalint guards production contracts, and tests exercise
// mismatches deliberately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	var targets []listEntry
	for _, e := range entries {
		if e.Error != nil && !e.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	imp := newExportImporter(exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		p, err := typeCheck(t, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func goList(dir string, patterns ...string) ([]listEntry, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// newExportImporter returns a types.Importer resolving import paths
// through build-cache export data files.
func newExportImporter(exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(token.NewFileSet(), "gc", lookup)
}

// typeCheck parses and type-checks one package from its listed sources.
func typeCheck(e listEntry, imp types.Importer) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(e.GoFiles))
	var directives []*fileDirective
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		directives = append(directives, parseIgnores(fset, f)...)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", e.ImportPath, err)
	}
	return &Package{
		PkgPath:    e.ImportPath,
		Dir:        e.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
		directives: directives,
	}, nil
}

// Run loads the packages matching patterns and applies every analyzer,
// returning all findings sorted by position — the entry point shared by
// cmd/orcalint and the fixture harness.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
