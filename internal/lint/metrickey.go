package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MetricKey reports raw string literals in positions where a metric
// name flows.
var MetricKey = &Analyzer{
	Name: "metrickey",
	Doc: `metric names must be named constants, never raw string literals

A misspelled metric-name literal compiles, matches nothing, and the
subscribing routine observes nothing forever. The analyzer flags string
literals used where a metric name flows: the metric filters of
operator/PE/port metric scopes (AddOperatorMetric, AddPEMetric,
AddPortMetric), CustomMetric registrations, and comparisons or switches
on the metric-name field of a metric event context or sample
(ctx.Metric, Sample.Name). Use the internal/metrics constants (or their
streams.Metric* re-exports) for built-ins and an exported constant next
to the CustomMetric call for custom metrics, so every producer and
consumer of a name shares one point of truth.`,
	Run: runMetricKey,
}

// metricFilterMethods are the scope-builder methods whose every
// argument is a metric name.
var metricFilterMethods = map[string]bool{
	"AddOperatorMetric": true,
	"AddPEMetric":       true,
	"AddPortMetric":     true,
}

func runMetricKey(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkMetricCall(pass, n)
			case *ast.BinaryExpr:
				checkMetricComparison(pass, n)
			case *ast.SwitchStmt:
				checkMetricSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkMetricCall(pass *Pass, call *ast.CallExpr) {
	m := calledMethod(pass.TypesInfo, call)
	if m == nil {
		return
	}
	switch {
	case metricFilterMethods[m.Name()] && funcIsFrom(m, corePath):
		for _, arg := range call.Args {
			reportMetricLiteral(pass, arg, m.Name())
		}
	case m.Name() == "CustomMetric" && len(call.Args) == 1 && isStringParamMethod(m):
		reportMetricLiteral(pass, call.Args[0], "CustomMetric")
	}
}

// isStringParamMethod reports whether the method takes exactly one
// string parameter — distinguishing the operator-context CustomMetric
// from unrelated same-named methods.
func isStringParamMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	b, ok := sig.Params().At(0).Type().(*types.Basic)
	return ok && b.Kind() == types.String
}

// metricNameExpr reports whether e reads a metric-name field: the
// Metric field of a core event context, or the Name field of a
// metrics.Sample.
func metricNameExpr(pass *Pass, e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return false
	}
	switch field.Pkg().Path() {
	case corePath:
		return field.Name() == "Metric"
	case metricsPath:
		return field.Name() == "Name" && typeIs(selection.Recv(), metricsPath, "Sample")
	}
	return false
}

func checkMetricComparison(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if metricNameExpr(pass, be.X) {
		reportMetricLiteral(pass, be.Y, "comparison")
	}
	if metricNameExpr(pass, be.Y) {
		reportMetricLiteral(pass, be.X, "comparison")
	}
}

func checkMetricSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !metricNameExpr(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, v := range cc.List {
			reportMetricLiteral(pass, v, "switch case")
		}
	}
}

func reportMetricLiteral(pass *Pass, e ast.Expr, where string) {
	if !isStringLiteral(e) {
		return
	}
	v, _ := stringConst(pass.TypesInfo, e)
	if v == "" {
		return // empty string is an absence test, not a metric name
	}
	pass.Reportf(e.Pos(),
		"metric name %q in %s must be a named constant (internal/metrics, a streams.Metric* re-export, or the exported constant beside its CustomMetric registration), not a string literal",
		v, where)
}
