package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ParamDrift reports drift between an operator kind's declarative
// OpModel and the Bind*/Binder calls its implementation actually
// performs.
var ParamDrift = &Analyzer{
	Name: "paramdrift",
	Doc: `operator OpModel parameter declarations must match the Bind* calls in the operator's methods

For every RegisterOp(kind, factory, &OpModel{...}) whose factory
resolves to a local operator type, the analyzer cross-checks the
model's ParamSpec list against every Params binding call
(BindInt/BindFloat/BindBool/BindDuration/BindEnum/Get and the Binder
equivalents) in the operator type's methods. It reports parameters that
are bound but undeclared (the compiler would reject every legitimate
use of the name at Build time), declared but never bound (a misspelled
Bind key silently takes its default forever), bound under a different
type than declared, and a PartitionKey naming a parameter the model
does not declare.`,
	Run: runParamDrift,
}

// bindKind maps binding method names to the ParamType they imply.
var binderMethods = map[string]paramType{
	"Int": paramInt, "Float": paramFloat, "Bool": paramBool,
	"Duration": paramDuration, "Enum": paramEnum, "Str": paramString,
}

var paramsMethods = map[string]paramType{
	"BindInt": paramInt, "BindFloat": paramFloat, "BindBool": paramBool,
	"BindDuration": paramDuration, "BindEnum": paramEnum,
	// Get reads the raw submitted string of a param of any declared
	// type, so it counts as a binding but implies no type.
	"Get": paramAny,
}

// paramType mirrors opapi.ParamType's constant values; the analyzer
// reads the declared type as a folded constant, so the two cannot
// drift without the fixture tests noticing.
type paramType int64

const (
	// paramAny marks a binding that implies no particular declared type.
	paramAny paramType = 0

	paramString paramType = iota
	paramInt
	paramFloat
	paramBool
	paramDuration
	paramEnum
)

func (t paramType) String() string {
	switch t {
	case paramString:
		return "string"
	case paramInt:
		return "int64"
	case paramFloat:
		return "float64"
	case paramBool:
		return "boolean"
	case paramDuration:
		return "duration"
	case paramEnum:
		return "enum"
	default:
		return fmt.Sprintf("paramType(%d)", int64(t))
	}
}

// declaredParam is one ParamSpec read from a registration's model
// literal.
type declaredParam struct {
	name string
	typ  paramType
	pos  token.Pos
}

// bindCall is one parameter binding found in an operator's methods.
type bindCall struct {
	key string
	typ paramType
	pos token.Pos
}

// registration pairs a RegisterOp call's declarative model with the
// operator type its factory constructs.
type registration struct {
	kind         string
	pos          token.Pos
	params       []declaredParam
	partitionKey string
	partitionPos token.Pos
	opType       *types.Named
}

func runParamDrift(pass *Pass) error {
	funcDecls := indexFuncDecls(pass)
	var regs []registration
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			m := calledMethod(pass.TypesInfo, call)
			if m == nil || m.Name() != "RegisterOp" || !funcIsFrom(m, opapiPath) || len(call.Args) != 3 {
				return true
			}
			reg := registration{pos: call.Pos()}
			if k, ok := stringConst(pass.TypesInfo, call.Args[0]); ok {
				reg.kind = k
			}
			reg.opType = factoryResultType(pass, funcDecls, call.Args[1])
			model, ok := modelLiteral(call.Args[2])
			if !ok {
				return true // nil model or non-literal: nothing declarative to check
			}
			readModel(pass, funcDecls, model, &reg)
			regs = append(regs, reg)
			return true
		})
	}
	for i := range regs {
		checkRegistration(pass, &regs[i])
	}
	return nil
}

// indexFuncDecls maps each package-level function object to its
// declaration, so factory closures and parameter-list helpers can be
// resolved through one call hop.
func indexFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// modelLiteral unwraps &OpModel{...} (or OpModel{...}) into its
// composite literal.
func modelLiteral(e ast.Expr) (*ast.CompositeLit, bool) {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	return lit, ok
}

// readModel extracts the declared parameters and partition key from an
// OpModel composite literal. A Params field given as a call to a local
// helper that returns a []ParamSpec literal (the shared-parameter-block
// idiom) is followed through one hop.
func readModel(pass *Pass, decls map[*types.Func]*ast.FuncDecl, model *ast.CompositeLit, reg *registration) {
	for _, elt := range model.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Params":
			if lit := paramListLiteral(pass, decls, kv.Value); lit != nil {
				reg.params = append(reg.params, readParamSpecs(pass, lit)...)
			}
		case "PartitionKey":
			if v, ok := stringConst(pass.TypesInfo, kv.Value); ok {
				reg.partitionKey = v
				reg.partitionPos = kv.Value.Pos()
			}
		}
	}
}

// paramListLiteral resolves a Params field value to a []ParamSpec
// composite literal — directly, or through a call to a local helper
// whose body is a single "return []ParamSpec{...}".
func paramListLiteral(pass *Pass, decls map[*types.Func]*ast.FuncDecl, e ast.Expr) *ast.CompositeLit {
	e = unparen(e)
	if lit, ok := e.(*ast.CompositeLit); ok {
		return lit
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calledMethod(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	decl, ok := decls[fn]
	if !ok || decl.Body == nil || len(decl.Body.List) != 1 {
		return nil
	}
	ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	lit, _ := unparen(ret.Results[0]).(*ast.CompositeLit)
	return lit
}

// readParamSpecs reads Name and Type out of each ParamSpec element.
func readParamSpecs(pass *Pass, list *ast.CompositeLit) []declaredParam {
	var out []declaredParam
	for _, elt := range list.Elts {
		spec, ok := unparen(elt).(*ast.CompositeLit)
		if !ok {
			continue
		}
		p := declaredParam{pos: spec.Pos()}
		for _, f := range spec.Elts {
			kv, ok := f.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Name":
				if v, ok := stringConst(pass.TypesInfo, kv.Value); ok {
					p.name = v
					p.pos = kv.Value.Pos()
				}
			case "Type":
				if v, ok := intConst(pass.TypesInfo, kv.Value); ok {
					p.typ = paramType(v)
				}
			}
		}
		if p.name != "" {
			out = append(out, p)
		}
	}
	return out
}

// factoryResultType resolves the operator type a factory constructs:
// the named type behind the value returned by the func literal (or
// local function) passed as RegisterOp's factory argument.
func factoryResultType(pass *Pass, decls map[*types.Func]*ast.FuncDecl, e ast.Expr) *types.Named {
	var body *ast.BlockStmt
	switch fun := unparen(e).(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if decl, ok := decls[obj]; ok {
				body = decl.Body
			}
		}
	}
	if body == nil {
		return nil
	}
	var result *types.Named
	ast.Inspect(body, func(n ast.Node) bool {
		if result != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[ret.Results[0]]; ok {
			if n := namedType(tv.Type); n != nil && n.Obj().Pkg() == pass.Pkg {
				result = n
			}
		}
		return true
	})
	return result
}

// collectBinds gathers every parameter binding in the methods of the
// operator type. The second result reports whether any binding used a
// non-constant key, which disables the declared-but-unbound check (the
// analyzer cannot see which names a dynamic key covers).
func collectBinds(pass *Pass, opType *types.Named) ([]bindCall, bool) {
	var binds []bindCall
	dynamic := false
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := namedType(methodRecv(obj))
			if recv == nil || recv.Obj() != opType.Obj() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				m := calledMethod(pass.TypesInfo, call)
				if m == nil || !funcIsFrom(m, opapiPath) || len(call.Args) < 1 {
					return true
				}
				var typ paramType
				recvT := methodRecv(m)
				switch {
				case typeIs(recvT, opapiPath, "Binder"):
					t, ok := binderMethods[m.Name()]
					if !ok {
						return true
					}
					typ = t
				case typeIs(recvT, opapiPath, "Params"):
					t, ok := paramsMethods[m.Name()]
					if !ok {
						return true
					}
					typ = t
				default:
					return true
				}
				key, ok := stringConst(pass.TypesInfo, call.Args[0])
				if !ok {
					dynamic = true
					return true
				}
				binds = append(binds, bindCall{key: key, typ: typ, pos: call.Args[0].Pos()})
				return true
			})
		}
	}
	return binds, dynamic
}

func checkRegistration(pass *Pass, reg *registration) {
	declared := make(map[string]declaredParam, len(reg.params))
	names := make([]string, 0, len(reg.params))
	for _, p := range reg.params {
		declared[p.name] = p
		names = append(names, p.name)
	}
	sort.Strings(names)
	if reg.partitionKey != "" {
		if _, ok := declared[reg.partitionKey]; !ok {
			pass.Reportf(reg.partitionPos,
				"kind %q: PartitionKey names param %q, which the OpModel does not declare (declared: %s)",
				reg.kind, reg.partitionKey, orNone(names))
		}
	}
	if reg.opType == nil {
		return // factory not statically resolvable: model-only checks done
	}
	binds, dynamic := collectBinds(pass, reg.opType)
	bound := make(map[string]bool, len(binds))
	for _, b := range binds {
		bound[b.key] = true
		d, ok := declared[b.key]
		if !ok {
			pass.Reportf(b.pos,
				"kind %q: %s binds param %q, which its OpModel does not declare (declared: %s)",
				reg.kind, reg.opType.Obj().Name(), b.key, orNone(names))
			continue
		}
		if d.typ != paramAny && b.typ != paramAny && d.typ != b.typ {
			pass.Reportf(b.pos,
				"kind %q: param %q is declared %s but bound as %s",
				reg.kind, b.key, d.typ, b.typ)
		}
	}
	if dynamic {
		return
	}
	for _, p := range reg.params {
		if !bound[p.name] {
			pass.Reportf(p.pos,
				"kind %q: declared param %q is never bound by %s — a submitted value would silently never be read",
				reg.kind, p.name, reg.opType.Obj().Name())
		}
	}
}

func orNone(names []string) string {
	if len(names) == 0 {
		return "(none)"
	}
	return strings.Join(names, ", ")
}
