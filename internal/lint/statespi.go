package lint

import (
	"go/token"
	"go/types"
)

// StateSPI reports half-implemented checkpoint SPIs: types that save
// state they can never restore, or split state they can never merge.
var StateSPI = &Analyzer{
	Name: "statespi",
	Doc: `checkpoint SPI methods must come in complete pairs

A type with a SaveState(*ckpt.Encoder) error method but no matching
RestoreState compiles and checkpoints happily — and silently never
restores, because the PE runtime gates restoration on the full
StatefulOperator interface. The analyzer reports SaveState without
RestoreState (and vice versa), MergeState without SplitState (and vice
versa), and Merge/Split pairs on types that do not implement the full
StatefulOperator contract PartitionedStateOperator embeds.`,
	Run: runStateSPI,
}

func runStateSPI(pass *Pass) error {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		checkStateMethods(pass, named)
	}
	return nil
}

// spiMethod looks up one checkpoint SPI method on *named and verifies
// its exact signature; a same-named method with a different shape is
// reported as a near-miss rather than silently skipped.
func spiMethod(pass *Pass, named *types.Named, name string, params ...string) *types.Func {
	f := lookupMethod(named, name)
	if f == nil {
		return nil
	}
	if !sigMatches(f, params...) {
		pass.Reportf(safePos(pass, f, named),
			"type %s has a method %s whose signature does not match the checkpoint SPI (want func(%s) error): it will never be called by the checkpoint driver",
			named.Obj().Name(), name, joinComma(params))
		return nil
	}
	return f
}

// safePos returns the method's position when it is declared in the
// package under analysis, and the type's position otherwise (a method
// promoted from an imported embedded type has no position in this
// package's file set).
func safePos(pass *Pass, f *types.Func, named *types.Named) token.Pos {
	if f.Pkg() == pass.Pkg {
		return f.Pos()
	}
	return named.Obj().Pos()
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

func checkStateMethods(pass *Pass, named *types.Named) {
	enc := "*" + ckptPath + ".Encoder"
	dec := "*" + ckptPath + ".Decoder"
	save := spiMethod(pass, named, "SaveState", enc)
	restore := spiMethod(pass, named, "RestoreState", dec)
	merge := spiMethod(pass, named, "MergeState", dec)
	split := spiMethod(pass, named, "SplitState", enc, "int", "int")

	typeName := named.Obj().Name()
	switch {
	case save != nil && restore == nil:
		pass.Reportf(save.Pos(),
			"type %s implements SaveState but not RestoreState: snapshots are captured but a restarted PE silently never restores them (StatefulOperator requires both)",
			typeName)
	case restore != nil && save == nil:
		pass.Reportf(restore.Pos(),
			"type %s implements RestoreState but not SaveState: no snapshot is ever captured for it to restore (StatefulOperator requires both)",
			typeName)
	}
	switch {
	case merge != nil && split == nil:
		pass.Reportf(merge.Pos(),
			"type %s implements MergeState but not SplitState: a region resize could fold its state but never re-cut it (PartitionedStateOperator requires both)",
			typeName)
	case split != nil && merge == nil:
		pass.Reportf(split.Pos(),
			"type %s implements SplitState but not MergeState: a region resize could re-cut its state but never fold it (PartitionedStateOperator requires both)",
			typeName)
	}
	if merge != nil && split != nil && (save == nil || restore == nil) {
		pass.Reportf(merge.Pos(),
			"type %s implements MergeState/SplitState without the full StatefulOperator contract: PartitionedStateOperator embeds StatefulOperator, so migration state has no capture/restore path",
			typeName)
	}
}
