// Package actuationcheck is an orcalint fixture: actuation calls whose
// error results are dropped in every shape the analyzer recognises,
// alongside handled and legitimately-exempted forms.
package actuationcheck

import (
	"streamorca/internal/core"
	"streamorca/internal/ids"
)

func discards(act *core.Actions, pe ids.PEID, job ids.JobID) {
	act.RestartPE(pe)                      // want `error from actuation core.RestartPE dropped by a bare call statement`
	go act.CheckpointPE(pe)                // want `error from actuation core.CheckpointPE dropped by the go statement`
	defer act.CancelJob(job)               // want `error from actuation core.CancelJob dropped by the defer statement`
	_ = act.ResizeRegion(job, "reg", 2)    // want `error from actuation core.ResizeRegion assigned to the blank identifier`
	_, _ = act.SubmitApplication("a", nil) // want `error from actuation core.SubmitApplication assigned to the blank identifier`
}

func handled(act *core.Actions, pe ids.PEID) error {
	if err := act.RestartPE(pe); err != nil { // handled: clean
		return err
	}
	job, err := act.SubmitApplication("a", nil) // handled: clean
	_ = job
	return err
}

func exempted(act *core.Actions, pe ids.PEID) {
	_ = act.CheckpointPE(pe) //orcalint:ignore actuationcheck best-effort snapshot in a fixture
	//orcalint:ignore actuationcheck own-line directive form, also best-effort
	_ = act.RestartPE(pe)
}

func handlerCalls(h core.Handler[core.PEFailureContext], ctx *core.PEFailureContext, act *core.Actions) error {
	h(ctx, act)        // want `error from a core.Handler call dropped by a bare call statement`
	_ = h(ctx, act)    // want `error from a core.Handler call assigned to the blank identifier`
	return h(ctx, act) // returned to the dispatcher: clean
}
