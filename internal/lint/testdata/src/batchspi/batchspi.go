// Package batchspi is an orcalint fixture: batch-execution SPI
// implementations that are complete, missing their per-tuple fallback,
// or subtly mis-typed. Everything compiles; only the complete ones
// would actually be selected by the PE runtime's BatchOperator
// assertion.
package batchspi

import "streamorca/internal/tuple"

// complete implements both halves of the contract: clean.
type complete struct{ n int64 }

func (c *complete) Process(port int, t tuple.Tuple) error { c.n++; return nil }
func (c *complete) ProcessBatch(port int, b *tuple.Batch) error {
	c.n += int64(b.Len())
	return nil
}

// batchOnly has no per-tuple fallback at all.
type batchOnly struct{ n int64 }

func (o *batchOnly) ProcessBatch(port int, b *tuple.Batch) error { // want `implements ProcessBatch but not Process`
	o.n += int64(b.Len())
	return nil
}

// nearMissBatch takes the batch by value, so the interface assertion
// never selects it and the type silently stays on the per-tuple path.
type nearMissBatch struct{ n int64 }

func (m *nearMissBatch) Process(port int, t tuple.Tuple) error { m.n++; return nil }
func (m *nearMissBatch) ProcessBatch(port int, b tuple.Batch) error { // want `signature does not match the batch SPI`
	m.n += int64(b.Len())
	return nil
}

// brokenFallback pairs a correct ProcessBatch with a Process that drops
// the error result, breaking the Operator interface underneath.
type brokenFallback struct{ n int64 }

func (f *brokenFallback) Process(port int, t tuple.Tuple) { f.n++ } // want `Process signature does not match the operator SPI`
func (f *brokenFallback) ProcessBatch(port int, b *tuple.Batch) error {
	f.n += int64(b.Len())
	return nil
}

// tupleOnly never opted into batching: nothing to report.
type tupleOnly struct{ n int64 }

func (t *tupleOnly) Process(port int, tp tuple.Tuple) error { t.n++; return nil }

// suppressed documents a deliberate exemption through the escape hatch.
type suppressed struct{ n int64 }

func (s *suppressed) ProcessBatch(port int, b *tuple.Batch) error { //orcalint:ignore batchspi fixture type fed batches by a bespoke harness
	s.n += int64(b.Len())
	return nil
}
