// Package metrickey is an orcalint fixture: metric names spelled as
// raw string literals in positions where a misspelling silently matches
// nothing, next to the constant-based forms the analyzer accepts.
package metrickey

import (
	"streamorca/internal/core"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
)

// localMetric is the exported-constant-beside-the-registration idiom
// for custom metrics.
const localMetric = "fixtureCounter"

func scopes() {
	core.NewOperatorMetricScope("s1").
		AddOperatorMetric("nTuplesProcessed") // want `metric name "nTuplesProcessed" in AddOperatorMetric must be a named constant`
	core.NewOperatorMetricScope("s2").
		AddOperatorMetric(metrics.OpTuplesProcessed) // constant: clean
	core.NewPEMetricScope("s3").
		AddPEMetric("ingestRatePerSec") // want `metric name "ingestRatePerSec" in AddPEMetric must be a named constant`
	core.NewPortMetricScope("s4").
		AddPortMetric(metrics.PortFinalPunctsQueued) // constant: clean
}

func observe(ctx *core.OperatorMetricContext, pe *core.PEMetricContext) bool {
	if ctx.Metric == "nTuplesProcessed" { // want `metric name "nTuplesProcessed" in comparison must be a named constant`
		return true
	}
	if ctx.Metric == metrics.OpTuplesProcessed { // constant: clean
		return true
	}
	if "queueSize" == ctx.Metric { // want `metric name "queueSize" in comparison must be a named constant`
		return true
	}
	switch pe.Metric {
	case "peQueueDepth": // want `metric name "peQueueDepth" in switch case must be a named constant`
		return true
	case metrics.PEIngestRate: // constant: clean
		return true
	}
	return false
}

func sample(s metrics.Sample) bool {
	if s.Name == "nTuplesProcessed" { // want `metric name "nTuplesProcessed" in comparison must be a named constant`
		return true
	}
	return s.Name != "" // empty string is an absence test, not a name: clean
}

func custom(ctx opapi.Context) {
	ctx.CustomMetric("adhocCounter").Inc() // want `metric name "adhocCounter" in CustomMetric must be a named constant`
	ctx.CustomMetric(localMetric).Inc()    // constant: clean
}
