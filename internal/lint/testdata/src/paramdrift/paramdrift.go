// Package paramdrift is an orcalint fixture: operator registrations
// whose OpModel declarations drift from the Bind calls in their
// implementations. The code compiles; every defect here is invisible to
// the compiler and caught only by the analyzer.
package paramdrift

import (
	"streamorca/internal/opapi"
)

func init() {
	// Drifted operator: binds an undeclared param, declares one it
	// never binds, and binds a third under the wrong type.
	opapi.Default.RegisterOp("Drifted", func() opapi.Operator { return &drifted{} }, &opapi.OpModel{
		Doc: "fixture operator with drifted params",
		Params: []opapi.ParamSpec{
			{Name: "rate", Type: opapi.ParamInt},
			{Name: "window", Type: opapi.ParamDuration}, // want `declared param "window" is never bound`
			{Name: "mode", Type: opapi.ParamEnum, Enum: []string{"a", "b"}},
		},
	})

	// PartitionKey naming a param the model does not declare.
	opapi.Default.RegisterOp("BadKey", func() opapi.Operator { return &keyed{} }, &opapi.OpModel{
		Doc: "fixture operator with a dangling partition key",
		Params: []opapi.ParamSpec{
			{Name: "attr", Type: opapi.ParamString},
		},
		PartitionKey: "key", // want `PartitionKey names param "key", which the OpModel does not declare`
	})

	// Clean operator: declarations and binds agree — no diagnostics.
	opapi.Default.RegisterOp("Clean", newClean, &opapi.OpModel{
		Doc:    "fixture operator with matching params",
		Params: cleanParams(),
	})

	// Dynamic binder: a non-constant key disables the unbound check, so
	// the never-bound "extra" param is not reported.
	opapi.Default.RegisterOp("Dynamic", func() opapi.Operator { return &dynamic{} }, &opapi.OpModel{
		Doc: "fixture operator binding through a computed key",
		Params: []opapi.ParamSpec{
			{Name: "extra", Type: opapi.ParamString},
		},
	})
}

type drifted struct {
	opapi.Base
}

func (d *drifted) Open(ctx opapi.Context) error {
	p := ctx.Params()
	if _, err := p.BindInt("rate", 1); err != nil {
		return err
	}
	if _, err := p.BindInt("burst", 0); err != nil { // want `binds param "burst", which its OpModel does not declare`
		return err
	}
	cfg := p.Bind()
	cfg.Str("mode", "a") // want `param "mode" is declared enum but bound as string`
	return cfg.Err()
}

type keyed struct {
	opapi.Base
}

func (k *keyed) Open(ctx opapi.Context) error {
	ctx.Params().Get("attr", "")
	return nil
}

type clean struct {
	opapi.Base
	limit int64
}

func newClean() opapi.Operator { return &clean{} }

// cleanParams is the shared parameter-block idiom: the analyzer follows
// the helper call to the literal it returns.
func cleanParams() []opapi.ParamSpec {
	return []opapi.ParamSpec{
		{Name: "limit", Type: opapi.ParamInt},
		{Name: "label", Type: opapi.ParamString},
	}
}

func (c *clean) Open(ctx opapi.Context) error {
	p := ctx.Params()
	limit, err := p.BindInt("limit", 10)
	if err != nil {
		return err
	}
	c.limit = limit
	p.Get("label", "")
	return nil
}

type dynamic struct {
	opapi.Base
}

func (d *dynamic) Open(ctx opapi.Context) error {
	for _, key := range []string{"extra"} {
		ctx.Params().Get(key, "")
	}
	return nil
}
