// Package statespi is an orcalint fixture: checkpoint SPI
// implementations that are complete, half-done, or subtly mis-typed.
// Everything compiles; only the complete pairs would actually be driven
// by the PE checkpoint machinery.
package statespi

import "streamorca/internal/ckpt"

// saveOnly checkpoints state it can never get back.
type saveOnly struct{ n int64 }

func (s *saveOnly) SaveState(e *ckpt.Encoder) error { // want `implements SaveState but not RestoreState`
	e.PutInt(s.n)
	return nil
}

// restoreOnly waits for a snapshot nothing ever writes.
type restoreOnly struct{ n int64 }

func (r *restoreOnly) RestoreState(d *ckpt.Decoder) error { // want `implements RestoreState but not SaveState`
	r.n = d.Int()
	return d.Err()
}

// nearMiss drops the error result, so the interface assertion in the
// checkpoint driver never sees it.
type nearMiss struct{ n int64 }

func (m *nearMiss) SaveState(e *ckpt.Encoder) { // want `signature does not match the checkpoint SPI`
	e.PutInt(m.n)
}

// mergeOnly could fold migrated state but never re-cut it.
type mergeOnly struct{ n int64 }

func (m *mergeOnly) SaveState(e *ckpt.Encoder) error { e.PutInt(m.n); return nil }
func (m *mergeOnly) RestoreState(d *ckpt.Decoder) error {
	m.n = d.Int()
	return d.Err()
}

func (m *mergeOnly) MergeState(d *ckpt.Decoder) error { // want `implements MergeState but not SplitState`
	m.n += d.Int()
	return d.Err()
}

// migrateNoBase has the partitioned pair but not the stateful base, so
// its migration state has no capture/restore path.
type migrateNoBase struct{ n int64 }

func (m *migrateNoBase) MergeState(d *ckpt.Decoder) error { // want `without the full StatefulOperator contract`
	m.n += d.Int()
	return d.Err()
}

func (m *migrateNoBase) SplitState(e *ckpt.Encoder, part, width int) error {
	e.PutInt(m.n)
	return nil
}

// complete implements the full partitioned-state contract: clean.
type complete struct{ n int64 }

func (c *complete) SaveState(e *ckpt.Encoder) error { e.PutInt(c.n); return nil }
func (c *complete) RestoreState(d *ckpt.Decoder) error {
	c.n = d.Int()
	return d.Err()
}
func (c *complete) MergeState(d *ckpt.Decoder) error { c.n += d.Int(); return d.Err() }
func (c *complete) SplitState(e *ckpt.Encoder, part, width int) error {
	e.PutInt(c.n / int64(width))
	return nil
}

// suppressed documents a deliberate exemption through the escape hatch.
type suppressed struct{ n int64 }

func (s *suppressed) SaveState(e *ckpt.Encoder) error { //orcalint:ignore statespi fixture type restored by an external replayer
	e.PutInt(s.n)
	return nil
}
