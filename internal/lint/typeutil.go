package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Import paths of the packages whose contracts the analyzers encode.
const (
	opapiPath   = "streamorca/internal/opapi"
	corePath    = "streamorca/internal/core"
	samPath     = "streamorca/internal/sam"
	ckptPath    = "streamorca/internal/ckpt"
	metricsPath = "streamorca/internal/metrics"
	tuplePath   = "streamorca/internal/tuple"
)

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// stringConst returns the constant string value of e, if it has one
// (literals, named constants, constant expressions alike).
func stringConst(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// intConst returns the constant integer value of e, if it has one.
func intConst(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	return v, ok
}

// isStringLiteral reports whether e is written as a raw string literal
// (after stripping parentheses) — as opposed to a named constant, which
// also has a constant value but references a single point of truth.
func isStringLiteral(e ast.Expr) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	return ok && lit.Kind.String() == "STRING"
}

// deref returns the element type of a pointer, or t itself.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedType returns the named type of t (through aliases and one
// pointer), or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIs reports whether t (through one pointer) is the named type
// pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Origin().Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calledMethod resolves a call expression's callee to a method or
// function object, or nil when the callee is not a named callable
// (e.g. a func-typed variable).
func calledMethod(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified function: pkg.Fn(...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// methodRecv returns the receiver type of a method object, or nil for
// plain functions.
func methodRecv(f *types.Func) types.Type {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// funcIsFrom reports whether the function or method is declared in the
// given package.
func funcIsFrom(f *types.Func, pkgPath string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath
}

// lookupMethod finds a method named name in the method set of *T,
// embedded promotions included.
func lookupMethod(named *types.Named, name string) *types.Func {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == name {
			return f
		}
	}
	return nil
}

// sigMatches reports whether f's signature has exactly the given
// parameter types (each "pkgPath.Name" with a leading "*" for
// pointers, or a bare basic-type name) and returns exactly one error.
func sigMatches(f *types.Func, params ...string) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() != len(params) || sig.Results().Len() != 1 {
		return false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return false
	}
	for i, want := range params {
		if typeString(sig.Params().At(i).Type()) != want {
			return false
		}
	}
	return true
}

func typeString(t types.Type) string {
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		return "*" + typeString(tt.Elem())
	case *types.Named:
		obj := tt.Origin().Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Name()
	case *types.Basic:
		return tt.Name()
	default:
		return t.String()
	}
}

func isErrorType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}
