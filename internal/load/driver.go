package load

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamorca/internal/tuple"
)

// OpenLoopConfig parameterises RunOpenLoop.
type OpenLoopConfig struct {
	// Injector receives the generated tuples.
	Injector *Injector
	// Make builds tuple i. Called sequentially from the driver
	// goroutine; the tuple's tsAttr is overwritten after Make returns.
	Make func(i int64) tuple.Tuple
	// TsAttr is the Timestamp attribute stamped with the intended send
	// instant (default "ts"). Must exist on Make's schema.
	TsAttr string
	// Rate is the offered rate in tuples/sec (required > 0).
	Rate float64
	// Duration is the schedule length; the driver offers
	// Rate*Duration tuples at instants start + i/Rate.
	Duration time.Duration
	// Grace bounds how long past the schedule end the driver keeps
	// pushing a back-pressured backlog before giving up (default:
	// Duration, minimum 1s).
	Grace time.Duration
	// Stop aborts the run early when closed (optional).
	Stop <-chan struct{}
}

// ClosedLoopConfig parameterises RunClosedLoop.
type ClosedLoopConfig struct {
	Injector *Injector
	// Make builds tuple i. The driver serialises calls across users, so
	// seeded generators need no locking of their own.
	Make func(i int64) tuple.Tuple
	// TsAttr is the Timestamp attribute stamped at send (default "ts").
	TsAttr string
	// Users is the number of concurrent simulated users (required > 0).
	Users int
	// Think is each user's pause between its completed send and its
	// next one.
	Think time.Duration
	// Duration is how long users keep sending.
	Duration time.Duration
	// Stop aborts the run early when closed (optional).
	Stop <-chan struct{}
}

// Stats summarises a driver run.
type Stats struct {
	// Offered is the number of tuples pushed into the injector.
	Offered int64
	// Missed is the number of scheduled tuples abandoned because the
	// run was stopped or the grace budget ran out while back-pressured.
	Missed int64
	// Elapsed is the wall time from first to last push.
	Elapsed time.Duration
	// MaxBehind is the worst observed lag between a tuple's intended
	// send instant and the completion of its push — how far the
	// pipeline's back-pressure pushed the driver off schedule.
	MaxBehind time.Duration
}

// tsRefFor resolves the timestamp attribute on the first tuple's schema.
func tsRefFor(t tuple.Tuple, attr string) (tuple.FieldRef, error) {
	if attr == "" {
		attr = "ts"
	}
	return t.Schema().TypedRef(attr, tuple.Timestamp)
}

// stopOrDeadline returns a channel closed when parent closes or the
// deadline passes, plus a cleanup func.
func stopOrDeadline(parent <-chan struct{}, d time.Duration) (<-chan struct{}, func()) {
	done := make(chan struct{})
	var once sync.Once
	timer := time.AfterFunc(d, func() { once.Do(func() { close(done) }) })
	quit := make(chan struct{})
	go func() {
		select {
		case <-parent:
			once.Do(func() { close(done) })
		case <-quit:
		}
	}()
	return done, func() { timer.Stop(); close(quit) }
}

// RunOpenLoop drives the injector at a constant offered rate,
// coordinated-omission-correctly: tuple i is stamped with its intended
// send instant start + i/Rate before the (possibly blocking) push, so
// the latency a downstream LatencySink records includes any time the
// tuple spent waiting behind a stalled pipeline. The driver never
// skips a scheduled tuple to catch up; it only abandons the remainder
// when the grace budget past the schedule end is exhausted.
func RunOpenLoop(cfg OpenLoopConfig) (Stats, error) {
	var st Stats
	if cfg.Injector == nil || cfg.Make == nil {
		return st, fmt.Errorf("load: open loop needs an Injector and a Make func")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return st, fmt.Errorf("load: open loop needs Rate > 0 and Duration > 0")
	}
	n := int64(cfg.Rate*cfg.Duration.Seconds() + 0.5)
	if n < 1 {
		n = 1
	}
	grace := cfg.Grace
	if grace <= 0 {
		grace = cfg.Duration
	}
	if grace < time.Second {
		grace = time.Second
	}
	stepNs := float64(time.Second) / cfg.Rate

	start := time.Now()
	done, cleanup := stopOrDeadline(cfg.Stop, cfg.Duration+grace)
	defer cleanup()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	var tsRef tuple.FieldRef
	for i := int64(0); i < n; i++ {
		intended := start.Add(time.Duration(float64(i) * stepNs))
		if wait := time.Until(intended); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-done:
				st.Missed = n - i
				st.Elapsed = time.Since(start)
				return st, nil
			}
		}
		t := cfg.Make(i)
		if !tsRef.Valid() {
			ref, err := tsRefFor(t, cfg.TsAttr)
			if err != nil {
				return st, fmt.Errorf("load: open loop: %w", err)
			}
			tsRef = ref
		}
		tsRef.SetTime(t, intended)
		if !cfg.Injector.Push(t, done) {
			st.Missed = n - i
			break
		}
		st.Offered++
		if behind := time.Since(intended); behind > st.MaxBehind {
			st.MaxBehind = behind
		}
	}
	st.Elapsed = time.Since(start)
	return st, nil
}

// RunClosedLoop simulates Users concurrent users: each sends a tuple
// (stamped with the actual send instant), waits for the push to be
// accepted, thinks for Think, and repeats until Duration elapses. The
// offered rate is bounded by Users/Think and throttles naturally under
// back-pressure — the classic closed-loop model the open-loop driver
// exists to correct for.
func RunClosedLoop(cfg ClosedLoopConfig) (Stats, error) {
	var st Stats
	if cfg.Injector == nil || cfg.Make == nil {
		return st, fmt.Errorf("load: closed loop needs an Injector and a Make func")
	}
	if cfg.Users <= 0 || cfg.Duration <= 0 {
		return st, fmt.Errorf("load: closed loop needs Users > 0 and Duration > 0")
	}

	start := time.Now()
	done, cleanup := stopOrDeadline(cfg.Stop, cfg.Duration)
	defer cleanup()

	var (
		seq     atomic.Int64
		offered atomic.Int64
		makeMu  sync.Mutex
		tsRef   tuple.FieldRef
		refErr  error
	)
	next := func() (tuple.Tuple, tuple.FieldRef, error) {
		makeMu.Lock()
		defer makeMu.Unlock()
		t := cfg.Make(seq.Add(1) - 1)
		if !tsRef.Valid() && refErr == nil {
			tsRef, refErr = tsRefFor(t, cfg.TsAttr)
		}
		return t, tsRef, refErr
	}

	var wg sync.WaitGroup
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				t, ref, err := next()
				if err != nil {
					return
				}
				ref.SetTime(t, time.Now())
				if !cfg.Injector.Push(t, done) {
					return
				}
				offered.Add(1)
				if cfg.Think > 0 {
					select {
					case <-time.After(cfg.Think):
					case <-done:
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if refErr != nil {
		return st, fmt.Errorf("load: closed loop: %w", refErr)
	}
	st.Offered = offered.Load()
	st.Elapsed = time.Since(start)
	return st, nil
}
