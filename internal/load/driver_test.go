package load

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"

	"streamorca/internal/tuple"
)

var driverSchema = tuple.MustSchema(
	tuple.Attribute{Name: "seq", Type: tuple.Int},
	tuple.Attribute{Name: "ts", Type: tuple.Timestamp},
)

func makeSeq(i int64) tuple.Tuple {
	t := tuple.New(driverSchema)
	ref := driverSchema.MustRef("seq")
	ref.SetInt(t, i)
	return t
}

// drain consumes the injector directly (no platform), records each
// tuple's latency against its stamped timestamp, and optionally stalls
// once mid-stream — a stand-in for a pipeline that stops draining.
func drain(in *Injector, h *Histogram, stallAt int64, stall time.Duration) <-chan int64 {
	done := make(chan int64, 1)
	tsRef := driverSchema.MustRef("ts")
	go func() {
		var n int64
		for {
			t, ok := <-in.ch
			if !ok {
				done <- n
				return
			}
			if n == stallAt && stall > 0 {
				time.Sleep(stall)
			}
			h.Record(time.Since(tsRef.Time(t)))
			n++
		}
	}()
	return done
}

// TestOpenLoopCoordinatedOmission is the coordinated-omission gate: a
// consumer that stalls for half a second mid-run must inflate the
// recorded p999 by roughly the stall, even though fewer tuples were
// delivered during the stall — because the open-loop driver stamps
// intended send instants, every tuple that queued behind the stall is
// charged its full scheduling delay. A closed-loop-style measurement
// (latency from actual dequeue) would hide exactly this.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	const (
		rate  = 2000.0
		dur   = time.Second
		stall = 500 * time.Millisecond
	)
	run := func(name string, stallDur time.Duration) (Stats, *Histogram) {
		in := InjectorFor("co-" + name)
		h := NewHistogram()
		done := drain(in, h, 400, stallDur)
		st, err := RunOpenLoop(OpenLoopConfig{
			Injector: in,
			Make:     makeSeq,
			Rate:     rate,
			Duration: dur,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in.Close()
		delivered := <-done
		if st.Missed != 0 {
			t.Fatalf("%s: missed %d tuples", name, st.Missed)
		}
		if delivered != st.Offered {
			t.Fatalf("%s: delivered %d != offered %d", name, delivered, st.Offered)
		}
		if got := h.Count(); got != st.Offered {
			t.Fatalf("%s: recorded %d != offered %d — every offered tuple must be charged", name, got, st.Offered)
		}
		return st, h
	}

	smoothSt, smooth := run("smooth", 0)
	stalled, hist := run("stalled", stall)

	if p := hist.Quantile(0.999); p < stall/2 {
		t.Fatalf("stalled p999 = %v, want >= %v: the stall's scheduling delay must be charged", p, stall/2)
	}
	if p := smoothSt.MaxBehind; p > stall/2 {
		t.Skipf("control run itself fell %v behind; machine too loaded to compare", p)
	}
	if sp, cp := hist.Quantile(0.999), smooth.Quantile(0.999); sp < 4*cp {
		t.Fatalf("stalled p999 %v not clearly above smooth p999 %v", sp, cp)
	}
	if stalled.MaxBehind < stall/2 {
		t.Fatalf("driver MaxBehind = %v, want >= %v under back-pressure", stalled.MaxBehind, stall/2)
	}
}

// TestOpenLoopOffersScheduledCount pins the schedule arithmetic.
func TestOpenLoopOffersScheduledCount(t *testing.T) {
	in := InjectorFor("ol-count")
	h := NewHistogram()
	done := drain(in, h, -1, 0)
	st, err := RunOpenLoop(OpenLoopConfig{
		Injector: in,
		Make:     makeSeq,
		Rate:     1000,
		Duration: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Close()
	<-done
	if st.Offered != 250 || st.Missed != 0 {
		t.Fatalf("offered %d missed %d, want 250/0", st.Offered, st.Missed)
	}
	if st.Elapsed < 240*time.Millisecond {
		t.Fatalf("elapsed %v: rate not paced", st.Elapsed)
	}
}

func TestOpenLoopRejectsBadConfig(t *testing.T) {
	if _, err := RunOpenLoop(OpenLoopConfig{}); err == nil {
		t.Fatal("want error for missing injector")
	}
	if _, err := RunOpenLoop(OpenLoopConfig{Injector: InjectorFor("bad"), Make: makeSeq}); err == nil {
		t.Fatal("want error for zero rate")
	}
}

// TestClosedLoopThinkTimeBoundsRate verifies the closed-loop model:
// Users/Think bounds the offered rate, and every push is recorded.
func TestClosedLoopThinkTimeBoundsRate(t *testing.T) {
	in := InjectorFor("cl")
	h := NewHistogram()
	done := drain(in, h, -1, 0)
	const (
		users = 4
		think = 20 * time.Millisecond
		dur   = 400 * time.Millisecond
	)
	st, err := RunClosedLoop(ClosedLoopConfig{
		Injector: in,
		Make:     makeSeq,
		Users:    users,
		Think:    think,
		Duration: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Close()
	delivered := <-done
	if st.Offered == 0 {
		t.Fatal("closed loop offered nothing")
	}
	// Each user sends at most once per think period (plus its first).
	bound := int64(users) * (int64(dur/think) + 2)
	if st.Offered > bound {
		t.Fatalf("offered %d exceeds think-time bound %d", st.Offered, bound)
	}
	if delivered != st.Offered {
		t.Fatalf("delivered %d != offered %d", delivered, st.Offered)
	}
}

func TestInjectorCloseIdempotent(t *testing.T) {
	in := InjectorFor("close-twice")
	in.Close()
	in.Close()
	if _, ok := <-in.ch; ok {
		t.Fatal("closed injector yielded a tuple")
	}
}

func TestWriteReportDeterministic(t *testing.T) {
	dir := t.TempDir()
	r := &Report{
		Name: "x", Seed: 42,
		Meta:    map[string]string{"b": "2", "a": "1"},
		Metrics: map[string]float64{"p50_ms": 1.5, "delivered": 10},
	}
	p1, p2 := dir+"/r1.json", dir+"/r2.json"
	if err := WriteReport(p1, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(p2, r); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same report serialised differently")
	}
	var back Report
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "x" || back.Seed != 42 || back.Metrics["p50_ms"] != 1.5 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if err := WriteReport(dir+"/bad.json", &Report{}); err == nil {
		t.Fatal("want error for unnamed report")
	}
}
