// Package load is the load-generation and latency-measurement
// subsystem: open-loop (constant-rate, coordinated-omission-correct)
// and closed-loop (N users with think time) drivers that inject tuples
// into a running application through a LoadSource operator, a
// LatencySink operator that measures source-to-sink latency from a
// timestamp attribute stamped at injection, a mergeable log-bucketed
// histogram for tail percentiles, and a shared bench-report schema all
// BENCH_*.json files use.
//
// The open-loop driver is the heavy-traffic regression gate's core:
// latency is charged against each tuple's *intended* send instant
// (start + i/rate), so a pipeline that stalls inflates the recorded
// tail even though fewer tuples were delivered during the stall —
// the coordinated-omission correction.
package load

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// subBits sets the histogram's resolution: 2^subBits sub-buckets per
// power-of-two value range, giving a relative quantile error of at
// most 1/2^subBits (~3.1% at 5). Raising it multiplies the (fixed)
// bucket count.
const subBits = 5

// numBuckets covers every non-negative int64 nanosecond value: the
// top octave (bit length 63) ends at bucket index 57<<subBits + 63.
const numBuckets = (63-subBits-1)<<subBits + (1 << (subBits + 1))

// Histogram is a low-overhead mergeable latency histogram with
// log-linear buckets: values below 2^(subBits+1) ns are exact, larger
// values land in one of 2^subBits linear sub-buckets of their
// power-of-two range. Record is four atomic operations and never
// allocates, so it can sit on a sink's per-tuple path. The zero value
// is NOT ready; use NewHistogram.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 until the first Record
	return h
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	exp := bits.Len64(uint64(v))
	if exp <= subBits+1 {
		return int(v)
	}
	shift := uint(exp - subBits - 1)
	return int(shift)<<subBits + int(uint64(v)>>shift)
}

// bucketMid returns the representative (midpoint) value of a bucket.
func bucketMid(idx int) int64 {
	if idx < 1<<(subBits+1) {
		return int64(idx)
	}
	b := uint(idx>>subBits - 1)
	m := int64(idx) - int64(b)<<subBits
	return m<<b + 1<<b>>1
}

// Record adds one latency observation. Negative durations (clock skew)
// clamp to zero. Safe for concurrent use.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average recorded latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded latency (exact, not bucketed).
func (h *Histogram) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest recorded latency (exact, not bucketed).
func (h *Histogram) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Quantile returns the latency at quantile q in [0,1] — the bucket
// midpoint, accurate to the histogram's ~3% relative error, clamped to
// the exact observed max. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			v := bucketMid(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max.Load())
}

// Merge folds o's observations into h. Safe to call concurrently with
// Record on either histogram; the merge itself is not atomic across
// buckets (quantiles read mid-merge may be transiently off).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := 0; i < numBuckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if o.count.Load() > 0 {
		for {
			cur := h.max.Load()
			v := o.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
		for {
			cur := h.min.Load()
			v := o.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}
