package load

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketAccuracy pins the histogram's documented error bound: a
// bucket's representative midpoint is within 1/2^subBits of any value
// the bucket covers.
func TestBucketAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		v := rng.Int63n(int64(10 * time.Minute))
		mid := bucketMid(bucketIndex(v))
		diff := mid - v
		if diff < 0 {
			diff = -diff
		}
		if bound := v >> subBits; v >= 1<<(subBits+1) && diff > bound {
			t.Fatalf("value %d: bucket mid %d off by %d (> %d)", v, mid, diff, bound)
		}
		if v < 1<<(subBits+1) && mid != v {
			t.Fatalf("small value %d not exact: got %d", v, mid)
		}
	}
}

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1 << 40, 1<<62 + 5, 1<<63 - 1} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, numBuckets)
		}
		prev = idx
	}
}

func TestQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		lo := want - want/16
		hi := want + want/16
		if got < lo || got > hi {
			t.Fatalf("q%.3f = %v, want within [%v, %v]", q, got, lo, hi)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if got := h.Max(); got != 1000*time.Microsecond {
		t.Fatalf("max = %v, want 1ms", got)
	}
	if got := h.Min(); got != 1*time.Microsecond {
		t.Fatalf("min = %v, want 1µs", got)
	}
	if got, want := h.Mean(), 500500*time.Nanosecond; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestQuantileEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	h.Record(70 * time.Nanosecond)
	// A single observation: every quantile is the observation, and the
	// bucket midpoint must clamp to the exact max.
	if got := h.Quantile(0.999); got != 70*time.Nanosecond {
		t.Fatalf("single-sample p999 = %v, want 70ns", got)
	}
}

// TestMerge pins mergeability: recording two disjoint streams into two
// histograms and merging must match recording everything into one.
func TestMerge(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Second)))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		all.Record(d)
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%.3f: merged %v != direct %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	if a.Max() != all.Max() || a.Min() != all.Min() || a.Mean() != all.Mean() {
		t.Fatalf("merged extrema/mean diverge: (%v,%v,%v) vs (%v,%v,%v)",
			a.Min(), a.Max(), a.Mean(), all.Min(), all.Max(), all.Mean())
	}
}

// TestRecordConcurrent exercises Record under the race detector.
func TestRecordConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const per = 2000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Millisecond))))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 8*per {
		t.Fatalf("count = %d, want %d", got, 8*per)
	}
}
