package load

import (
	"fmt"
	"sync"

	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// Operator kinds registered by this package.
const (
	// KindLoadSource is a source fed externally through an Injector:
	// the driver pushes tuples, the operator submits them downstream.
	KindLoadSource = "LoadSource"
	// KindLatencySink reads a timestamp attribute off every tuple and
	// records now-ts into the meter named by its meterId parameter.
	KindLatencySink = "LatencySink"
)

// injectorCap bounds the hand-off channel between a driver and its
// LoadSource. Small enough that a stalled pipeline back-pressures the
// driver quickly (the open-loop driver keeps charging latency against
// intended send times while blocked), large enough to ride out
// scheduling jitter at high rates.
const injectorCap = 256

// Injector is the hand-off between an external driver and a LoadSource
// operator, resolved from a process-global registry by the operator's
// injectorId parameter — the same pattern as the sink collector
// registry, and for the same reason: the channel must outlive PE
// restarts so a chaos-killed source PE reattaches mid-run.
//
// Ownership: exactly one driver pushes and, after its last push
// returns, closes. Closing delivers a final punctuation downstream.
type Injector struct {
	ch        chan tuple.Tuple
	closeOnce sync.Once
}

// Push hands one tuple to the source, blocking while the pipeline's
// back-pressure holds the channel full. It returns false if stop
// closes first (the tuple is dropped); a nil stop blocks indefinitely.
func (in *Injector) Push(t tuple.Tuple, stop <-chan struct{}) bool {
	select {
	case in.ch <- t:
		return true
	case <-stop:
		return false
	}
}

// Close marks the end of the stream: the LoadSource drains what was
// pushed, then returns and emits a final punctuation. Idempotent; must
// only be called after every Push has returned.
func (in *Injector) Close() { in.closeOnce.Do(func() { close(in.ch) }) }

var (
	injectorsMu sync.Mutex
	injectors   = map[string]*Injector{}
)

// InjectorFor returns the process-global injector with the given id,
// creating it on first use.
func InjectorFor(id string) *Injector {
	injectorsMu.Lock()
	defer injectorsMu.Unlock()
	in, ok := injectors[id]
	if !ok {
		in = &Injector{ch: make(chan tuple.Tuple, injectorCap)}
		injectors[id] = in
	}
	return in
}

// loadSource forwards tuples from its injector to output port 0.
//
// Parameters:
//
//	injectorId string  registry id the driver pushes into (required)
type loadSource struct {
	opapi.Base
	ctx opapi.Context
	inj *Injector
}

func (s *loadSource) Open(ctx opapi.Context) error {
	s.ctx = ctx
	cfg := ctx.Params().Bind()
	id := cfg.Str("injectorId", "")
	if err := cfg.Err(); err != nil {
		return fmt.Errorf("LoadSource %s: %w", ctx.Name(), err)
	}
	if id == "" {
		return fmt.Errorf("LoadSource %s: injectorId is required", ctx.Name())
	}
	s.inj = InjectorFor(id)
	return nil
}

func (s *loadSource) Run(stop <-chan struct{}) error {
	for {
		select {
		case t, ok := <-s.inj.ch:
			if !ok {
				return nil // injector closed: final punctuation
			}
			if err := s.ctx.Submit(0, t); err != nil {
				return err
			}
		case <-stop:
			return nil
		}
	}
}

// latencySink records source-to-sink latency: each tuple carries the
// instant it was (intended to be) injected in a Timestamp attribute;
// the sink charges now-ts to the meter's histogram.
//
// Parameters:
//
//	meterId string  meter registry id (required)
//	tsAttr  string  Timestamp attribute stamped at injection (default "ts")
type latencySink struct {
	opapi.Base
	ctx   opapi.Context
	meter *Meter
	tsRef tuple.FieldRef
}

func (s *latencySink) Open(ctx opapi.Context) error {
	s.ctx = ctx
	cfg := ctx.Params().Bind()
	id := cfg.Str("meterId", "")
	tsAttr := cfg.Str("tsAttr", "ts")
	if err := cfg.Err(); err != nil {
		return fmt.Errorf("LatencySink %s: %w", ctx.Name(), err)
	}
	if id == "" {
		return fmt.Errorf("LatencySink %s: meterId is required", ctx.Name())
	}
	ref, err := ctx.InputSchema(0).TypedRef(tsAttr, tuple.Timestamp)
	if err != nil {
		return fmt.Errorf("LatencySink %s: %w", ctx.Name(), err)
	}
	s.meter = MeterFor(id)
	s.tsRef = ref
	return nil
}

func (s *latencySink) Process(port int, t tuple.Tuple) error {
	now := s.ctx.Clock().Now()
	lat := now.Sub(s.tsRef.Time(t))
	if lat < 0 {
		lat = 0
	}
	s.meter.Record(now, lat)
	return nil
}

// ProcessBatch charges the whole run against one clock reading — the
// tuples of a frame are delivered at the same instant, so per-tuple
// clock reads would only add measurement jitter on top of cost.
func (s *latencySink) ProcessBatch(port int, b *tuple.Batch) error {
	now := s.ctx.Clock().Now()
	ref, meter := s.tsRef, s.meter
	for _, t := range b.Tuples() {
		lat := now.Sub(ref.Time(t))
		if lat < 0 {
			lat = 0
		}
		meter.Record(now, lat)
	}
	return nil
}

func init() {
	opapi.Default.RegisterOp(KindLoadSource,
		func() opapi.Operator { return &loadSource{} },
		&opapi.OpModel{
			Doc:     "Source fed by an external load driver through a registered injector channel.",
			Inputs:  opapi.PortSpec{},
			Outputs: opapi.ExactlyPorts(1),
			Params: []opapi.ParamSpec{
				{Name: "injectorId", Type: opapi.ParamString, Required: true,
					Doc: "injector registry id the driver pushes into"},
			},
		})
	opapi.Default.RegisterOp(KindLatencySink,
		func() opapi.Operator { return &latencySink{} },
		&opapi.OpModel{
			Doc:     "Sink recording source-to-sink latency from an injection-stamped Timestamp attribute.",
			Inputs:  opapi.ExactlyPorts(1),
			Outputs: opapi.PortSpec{},
			Params: []opapi.ParamSpec{
				{Name: "meterId", Type: opapi.ParamString, Required: true,
					Doc: "meter registry id latencies are recorded into"},
				{Name: "tsAttr", Type: opapi.ParamString, Default: "ts",
					Doc: "Timestamp attribute stamped at injection"},
			},
		})
}
