package load

import (
	"sync"
	"sync/atomic"
	"time"
)

// Meter accumulates what a LatencySink observes for one run: the
// latency histogram plus per-window delivery counts for windowed
// throughput. Meters live in a process-global registry (like the sink
// collector registry) so they survive PE restarts — a chaos-killed
// sink PE reattaches to the same Meter and the run's statistics stay
// continuous.
type Meter struct {
	// Hist is the source-to-sink latency histogram.
	Hist *Histogram

	delivered atomic.Int64

	mu      sync.Mutex
	start   time.Time
	width   time.Duration
	windows []int64
}

// Arm configures windowed throughput accounting: deliveries are binned
// by arrival time into consecutive windows of the given width starting
// at start. Call before the run; un-armed meters still count and
// record latency.
func (m *Meter) Arm(start time.Time, width time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.start = start
	m.width = width
	m.windows = nil
}

// Record registers one delivered tuple observed at time at with the
// given source-to-sink latency.
func (m *Meter) Record(at time.Time, lat time.Duration) {
	m.Hist.Record(lat)
	m.delivered.Add(1)
	m.mu.Lock()
	if m.width > 0 {
		if idx := int(at.Sub(m.start) / m.width); idx >= 0 {
			for len(m.windows) <= idx {
				m.windows = append(m.windows, 0)
			}
			m.windows[idx]++
		}
	}
	m.mu.Unlock()
}

// Delivered returns the number of tuples recorded so far.
func (m *Meter) Delivered() int64 { return m.delivered.Load() }

// WindowRates returns the per-window throughput in tuples/sec, one
// entry per elapsed window. A trailing partial window is excluded so
// its rate is not under-reported.
func (m *Meter) WindowRates(now time.Time) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.width <= 0 || len(m.windows) == 0 {
		return nil
	}
	full := int(now.Sub(m.start) / m.width)
	if full > len(m.windows) {
		full = len(m.windows)
	}
	rates := make([]float64, 0, full)
	perSec := m.width.Seconds()
	for i := 0; i < full; i++ {
		rates = append(rates, float64(m.windows[i])/perSec)
	}
	return rates
}

var (
	metersMu sync.Mutex
	meters   = map[string]*Meter{}
)

// MeterFor returns the process-global meter with the given id, creating
// it on first use. LatencySink operators resolve their meter by id at
// Open, so drivers and sinks share one Meter across PE restarts.
func MeterFor(id string) *Meter {
	metersMu.Lock()
	defer metersMu.Unlock()
	m, ok := meters[id]
	if !ok {
		m = &Meter{Hist: NewHistogram()}
		meters[id] = m
	}
	return m
}
