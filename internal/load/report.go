package load

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the one schema every BENCH_*.json record uses: a scenario
// name, the seed that reproduces the run, string run metadata, and a
// flat numeric metrics map. Meta holds the deterministic facts (config
// echo, schedule fingerprint, offered counts); Metrics holds measured,
// wall-clock-dependent numbers (latencies, throughput). Keeping the
// split explicit lets determinism smokes diff Meta across same-seed
// runs while tolerating Metrics jitter.
type Report struct {
	Name    string             `json:"name"`
	Seed    int64              `json:"seed"`
	Meta    map[string]string  `json:"meta,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// WriteReport serialises the report to path as indented JSON with a
// trailing newline. Map keys marshal sorted, so byte-identical inputs
// produce byte-identical files.
func WriteReport(path string, r *Report) error {
	if r.Name == "" {
		return fmt.Errorf("load: report needs a name")
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
