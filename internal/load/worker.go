package load

import (
	"fmt"
	"sort"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// KindKeyedWorker is a stateful pass-through worker with a fixed
// per-tuple service time: the operator the fission scenario
// parallelises. Each tuple costs a configurable delay (standing in for
// real per-tuple work such as a model-scoring call) and/or a CPU spin,
// and bumps a per-key counter before the tuple is forwarded unchanged,
// so (a) one replica has a measurable capacity ceiling that added
// replicas multiply — the delay form multiplies even on a single-core
// machine, since parallel replicas overlap their waits — and (b) the
// region carries per-key state that a width change must migrate.
const KindKeyedWorker = "KeyedWorker"

// keyedWorker counts tuples per key and charges a service time per
// tuple.
//
// Parameters:
//
//	keyAttr string  string attribute the per-key state is keyed by (required)
//	delay   string  Go duration charged per tuple (default 0)
//	spin    int     LCG iterations burned per tuple (default 0)
type keyedWorker struct {
	opapi.Base
	ctx    opapi.Context
	keyRef tuple.FieldRef
	delay  time.Duration
	spin   int64
	counts map[string]int64

	// sink receives the spin loop's running value so the compiler
	// cannot discard the loop as dead code.
	sink uint64
}

func (w *keyedWorker) Open(ctx opapi.Context) error {
	w.ctx = ctx
	cfg := ctx.Params().Bind()
	keyAttr := cfg.Str("keyAttr", "")
	w.delay = cfg.Duration("delay", 0)
	w.spin = cfg.Int("spin", 0)
	if err := cfg.Err(); err != nil {
		return fmt.Errorf("KeyedWorker %s: %w", ctx.Name(), err)
	}
	if keyAttr == "" {
		return fmt.Errorf("KeyedWorker %s: keyAttr is required", ctx.Name())
	}
	ref, err := ctx.InputSchema(0).TypedRef(keyAttr, tuple.String)
	if err != nil {
		return fmt.Errorf("KeyedWorker %s: %w", ctx.Name(), err)
	}
	w.keyRef = ref
	if w.counts == nil {
		w.counts = make(map[string]int64)
	}
	return nil
}

func (w *keyedWorker) Process(port int, t tuple.Tuple) error {
	if w.delay > 0 && !opapi.Sleep(w.ctx.Clock(), w.delay, w.ctx.Done()) {
		return nil // shutting down: drop
	}
	x := w.sink
	for i := int64(0); i < w.spin; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	w.sink = x
	w.counts[w.keyRef.Str(t)]++
	return w.ctx.Submit(0, t)
}

// SaveState snapshots the per-key counters in sorted key order, so
// identical state always produces identical bytes.
func (w *keyedWorker) SaveState(e *ckpt.Encoder) error {
	keys := make([]string, 0, len(w.counts))
	for k := range w.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.PutUint(uint64(len(keys)))
	for _, k := range keys {
		e.PutStr(k)
		e.PutInt(w.counts[k])
	}
	return nil
}

// RestoreState replaces the counters with the snapshot's.
func (w *keyedWorker) RestoreState(d *ckpt.Decoder) error {
	n := d.Uint()
	if err := d.Err(); err != nil {
		return err
	}
	counts := make(map[string]int64, min(n, 1024))
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		k := d.Str()
		counts[k] = d.Int()
	}
	if err := d.Err(); err != nil {
		return err
	}
	w.counts = counts
	return nil
}

// MergeState folds another partition's counters in, summing on key
// overlap.
func (w *keyedWorker) MergeState(d *ckpt.Decoder) error {
	n := d.Uint()
	if err := d.Err(); err != nil {
		return err
	}
	if w.counts == nil {
		w.counts = make(map[string]int64, min(n, 1024))
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		k := d.Str()
		v := d.Int()
		if d.Err() == nil {
			w.counts[k] += v
		}
	}
	return d.Err()
}

// SplitState writes only the keys opapi.PartitionOf assigns to
// partition part of width — the same hash the region's split applies
// per tuple to the string key attribute.
func (w *keyedWorker) SplitState(e *ckpt.Encoder, part, width int) error {
	keys := make([]string, 0, len(w.counts))
	for k := range w.counts {
		if opapi.PartitionOf(k, 0, width) == part {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	e.PutUint(uint64(len(keys)))
	for _, k := range keys {
		e.PutStr(k)
		e.PutInt(w.counts[k])
	}
	return nil
}

func init() {
	opapi.Default.RegisterOp(KindKeyedWorker,
		func() opapi.Operator { return &keyedWorker{} },
		&opapi.OpModel{
			Doc:          "Stateful CPU-bound pass-through worker counting tuples per key; the canonical parallel-region operator.",
			Inputs:       opapi.ExactlyPorts(1),
			Outputs:      opapi.ExactlyPorts(1),
			PartitionKey: "keyAttr",
			Params: []opapi.ParamSpec{
				{Name: "keyAttr", Type: opapi.ParamString, Required: true,
					Doc: "string attribute the per-key state is keyed by"},
				{Name: "delay", Type: opapi.ParamDuration, Default: "0s",
					Doc: "service time charged per tuple (simulated work)"},
				{Name: "spin", Type: opapi.ParamInt, Default: "0", Min: opapi.Bound(0),
					Doc: "CPU iterations burned per tuple (simulated work)"},
			},
		})
}
