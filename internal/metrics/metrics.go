// Package metrics implements the platform's runtime metrics: built-in
// counters maintained for every operator, port, and PE, plus custom
// (operator-defined) metrics. The per-host controllers snapshot these sets
// periodically and push them to SRM, which is the single source the
// orchestrator pulls from — metric collection therefore never touches the
// tuple hot path, matching the paper's §3 performance argument.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamorca/internal/ids"
)

// Built-in operator metric names.
const (
	OpTuplesProcessed = "nTuplesProcessed"
	OpTuplesSubmitted = "nTuplesSubmitted"
	OpPunctsProcessed = "nPunctsProcessed"
	OpQueueSize       = "queueSize"
	OpExceptions      = "nExceptionsCaught"
)

// Built-in port metric names.
const (
	PortTuplesProcessed   = "nTuplesProcessed"
	PortTuplesSubmitted   = "nTuplesSubmitted"
	PortFinalPunctsQueued = "nFinalPunctsQueued"
)

// Built-in PE metric names.
const (
	PETupleBytesProcessed = "nTupleBytesProcessed"
	PETupleBytesSubmitted = "nTupleBytesSubmitted"
	PETuplesProcessed     = "nTuplesProcessed"
	PETuplesSubmitted     = "nTuplesSubmitted"
	// PETuplesDropped counts tuples the container accepted but never
	// delivered to an operator: the undelivered remainder of a batch
	// whose earlier tuple crashed the PE mid-delivery. The delivery loop
	// logs the loss and accounts it here, so a frame tail lost to a
	// mid-batch failure is visible instead of silent.
	PETuplesDropped = "nTuplesDropped"
	PERestarts      = "nRestarts"
	// PERestartAttempts is the cumulative count of restart attempts SAM
	// spent on this PE, retries included; compared against nRestarts it
	// exposes how hard the retry layer had to work.
	PERestartAttempts = "nRestartAttempts"
	// PECheckpoints counts completed state snapshots of the container;
	// PECheckpointBytes accumulates their encoded sizes; PEStateRestores
	// counts operators whose state a restart restored from a snapshot.
	PECheckpoints     = "nCheckpoints"
	PECheckpointBytes = "nCheckpointBytes"
	PEStateRestores   = "nStateRestores"
	// PECheckpointAgeMs is a gauge: milliseconds elapsed on the platform
	// clock since the container's state was last anchored to a snapshot
	// (a completed checkpoint, or a restore at start-up), -1 while no
	// such anchor exists. It is the checkpoint-aware failover policy's
	// health signal: the smaller the age, the less state a restart of
	// this PE would lose.
	PECheckpointAgeMs = "lastCheckpointAgeMs"
	// PEIngestRate and PEEgressRate are gauges: the container's tuple
	// ingest and egress rates in tuples/sec, computed from the deltas of
	// nTuplesProcessed / nTuplesSubmitted between metric snapshots. Load
	// drivers read them for sustained-throughput reporting, and the
	// ingest rate of a region's split PE is the offered-load signal the
	// fission routine (internal/policies.Fission) widens hot parallel
	// regions on.
	PEIngestRate = "ingestRatePerSec"
	PEEgressRate = "egressRatePerSec"
)

// Counter is a 64-bit metric cell. Built-in counters are monotonic except
// queue gauges, which use Set.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Set stores an absolute value (gauge semantics).
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Set is a named collection of counters, safe for concurrent use. Counters
// are created on first access and never removed.
type Set struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewSet returns an empty metric set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns the named counter, creating it at zero if needed.
func (s *Set) Counter(name string) *Counter {
	s.mu.RLock()
	c, ok := s.counters[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.counters[name]; ok {
		return c
	}
	c = &Counter{}
	s.counters[name] = c
	return c
}

// Lookup returns the named counter without creating it.
func (s *Set) Lookup(name string) (*Counter, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.counters[name]
	return c, ok
}

// Names returns the counter names in sorted order.
func (s *Set) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a point-in-time copy of every counter.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.counters))
	for n, c := range s.counters {
		out[n] = c.Value()
	}
	return out
}

// OpMetrics holds one operator instance's metrics: the built-in set plus
// operator-created custom metrics, kept apart so samples can be tagged.
type OpMetrics struct {
	Builtin *Set
	Custom  *Set
}

// NewOpMetrics returns empty operator metrics with the standard built-ins
// pre-created so they always appear in snapshots.
func NewOpMetrics() *OpMetrics {
	m := &OpMetrics{Builtin: NewSet(), Custom: NewSet()}
	for _, n := range []string{OpTuplesProcessed, OpTuplesSubmitted, OpPunctsProcessed, OpQueueSize, OpExceptions} {
		m.Builtin.Counter(n)
	}
	return m
}

// Scope identifies what entity a metric sample describes.
type Scope uint8

// Sample scopes.
const (
	OperatorScope Scope = iota + 1
	PortScope
	PEScope
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case OperatorScope:
		return "operator"
	case PortScope:
		return "port"
	case PEScope:
		return "pe"
	default:
		return "unknown"
	}
}

// Direction distinguishes input from output ports in port-scoped samples.
type Direction uint8

// Port directions.
const (
	Input Direction = iota + 1
	Output
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return "unknown"
	}
}

// Sample is one metric observation as stored by SRM and delivered to the
// orchestrator. It carries enough identity for the ORCA service to resolve
// the sample against its stream-graph representation.
type Sample struct {
	Scope        Scope
	Job          ids.JobID
	App          string
	PE           ids.PEID
	Operator     string // fully qualified logical instance name
	OperatorKind string
	Port         int
	Dir          Direction
	Name         string
	Custom       bool
	Value        int64
	At           time.Time
}
