package metrics

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Set(-7)
	if c.Value() != -7 {
		t.Fatalf("Value after Set = %d", c.Value())
	}
}

func TestCounterConcurrentInc(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("Value = %d, want %d", c.Value(), workers*per)
	}
}

func TestSetCounterIdentity(t *testing.T) {
	s := NewSet()
	a := s.Counter("x")
	b := s.Counter("x")
	if a != b {
		t.Fatal("Counter returned distinct cells for the same name")
	}
	a.Inc()
	if got, ok := s.Lookup("x"); !ok || got.Value() != 1 {
		t.Fatalf("Lookup(x) = %v, %v", got, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Fatal("Lookup created a counter")
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s.Counter(n)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestSetSnapshotIsCopy(t *testing.T) {
	s := NewSet()
	s.Counter("a").Add(10)
	snap := s.Snapshot()
	s.Counter("a").Add(5)
	if snap["a"] != 10 {
		t.Fatalf("snapshot mutated: %d", snap["a"])
	}
}

func TestSetConcurrentCreate(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Counter("shared").Inc()
		}()
	}
	wg.Wait()
	if got := s.Counter("shared").Value(); got != 16 {
		t.Fatalf("shared counter = %d", got)
	}
}

func TestNewOpMetricsPrecreatesBuiltins(t *testing.T) {
	m := NewOpMetrics()
	for _, n := range []string{OpTuplesProcessed, OpTuplesSubmitted, OpPunctsProcessed, OpQueueSize, OpExceptions} {
		if _, ok := m.Builtin.Lookup(n); !ok {
			t.Fatalf("built-in %q missing", n)
		}
	}
	if len(m.Custom.Names()) != 0 {
		t.Fatal("custom set not empty")
	}
}

func TestScopeAndDirectionStrings(t *testing.T) {
	if OperatorScope.String() != "operator" || PortScope.String() != "port" || PEScope.String() != "pe" {
		t.Fatal("scope names wrong")
	}
	if Scope(0).String() != "unknown" {
		t.Fatal("zero scope not unknown")
	}
	if Input.String() != "input" || Output.String() != "output" || Direction(0).String() != "unknown" {
		t.Fatal("direction names wrong")
	}
}

// Property: a set's snapshot always reflects the sum of Adds applied to it.
func TestSetSnapshotProperty(t *testing.T) {
	f := func(deltas []int8) bool {
		s := NewSet()
		var want int64
		for _, d := range deltas {
			s.Counter("c").Add(int64(d))
			want += int64(d)
		}
		if len(deltas) == 0 {
			return len(s.Snapshot()) == 0
		}
		return s.Snapshot()["c"] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
