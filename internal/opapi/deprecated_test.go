//lint:file-ignore SA1019 this file deliberately pins the deprecated silent accessors until their removal (see the deprecation timeline in the repo root doc.go)

package opapi

import (
	"testing"
	"time"
)

// TestDeprecatedSilentAccessors pins the legacy behaviour of the
// deprecated Params.Int/Float/Bool/Duration accessors — silent default
// fallback on malformed values — until they are removed. All production
// callers have migrated to the Bind* family; this is the only remaining
// user in the repository.
func TestDeprecatedSilentAccessors(t *testing.T) {
	p := Params{"i": "42", "f": "2.5", "b": "true", "d": "3s", "bad": "x"}
	if p.Int("i", 0) != 42 || p.Int("bad", 7) != 7 || p.Int("missing", 7) != 7 {
		t.Fatal("Int wrong")
	}
	if p.Float("f", 0) != 2.5 || p.Float("bad", 1.5) != 1.5 {
		t.Fatal("Float wrong")
	}
	if !p.Bool("b", false) || !p.Bool("bad", true) || p.Bool("missing", false) {
		t.Fatal("Bool wrong")
	}
	if p.Duration("d", 0) != 3*time.Second || p.Duration("bad", time.Minute) != time.Minute {
		t.Fatal("Duration wrong")
	}
}
