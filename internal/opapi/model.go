package opapi

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"streamorca/internal/tuple"
)

// This file defines the declarative operator model — the platform's
// analogue of SPL's operator model (§2.1 of the paper): a typed
// description of an operator kind's parameters and ports that the
// compiler validates applications against at Build time, so
// misconfigured graphs fail before SAM ever places a PE.

// ParamType enumerates the value types a declared parameter can take.
type ParamType uint8

// Declared parameter types. ParamEnum values must be members of the
// spec's Enum list.
const (
	ParamString ParamType = iota + 1
	ParamInt
	ParamFloat
	ParamBool
	ParamDuration
	ParamEnum
)

// String returns the catalog name of the parameter type.
func (t ParamType) String() string {
	switch t {
	case ParamString:
		return "string"
	case ParamInt:
		return "int64"
	case ParamFloat:
		return "float64"
	case ParamBool:
		return "boolean"
	case ParamDuration:
		return "duration"
	case ParamEnum:
		return "enum"
	default:
		return fmt.Sprintf("ParamType(%d)", uint8(t))
	}
}

func (t ParamType) valid() bool { return t >= ParamString && t <= ParamEnum }

// Bound wraps a numeric range endpoint for ParamSpec.Min/Max literals.
func Bound(v float64) *float64 { return &v }

// ParamSpec declares one configuration parameter of an operator kind.
type ParamSpec struct {
	// Name is the parameter key.
	Name string
	// Type is the declared value type.
	Type ParamType
	// Required marks parameters that must be present (and non-empty).
	Required bool
	// Default documents the value the operator assumes when the
	// parameter is absent. It is catalog information; operators still
	// apply their defaults at Open.
	Default string
	// Enum lists the allowed values for ParamEnum parameters.
	Enum []string
	// Min and Max, when set, bound numeric values inclusively: the
	// parsed value for ParamInt/ParamFloat, seconds for ParamDuration.
	Min, Max *float64
	// Doc is a one-line description shown in the catalog.
	Doc string
}

// Check validates a present parameter value against the spec. Values
// containing a submission-time template reference ("{{key}}") are not
// checkable until substitution and pass unchecked; empty values are
// treated as absent by the binding accessors and pass too.
func (s *ParamSpec) Check(value string) error {
	if value == "" || strings.Contains(value, "{{") {
		return nil
	}
	switch s.Type {
	case ParamString:
		return nil
	case ParamInt:
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("param %q: invalid int64 value %q", s.Name, value)
		}
		return s.checkRange(float64(n), value)
	case ParamFloat:
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("param %q: invalid float64 value %q", s.Name, value)
		}
		return s.checkRange(f, value)
	case ParamBool:
		if _, err := strconv.ParseBool(value); err != nil {
			return fmt.Errorf("param %q: invalid boolean value %q", s.Name, value)
		}
		return nil
	case ParamDuration:
		d, err := time.ParseDuration(value)
		if err != nil {
			return fmt.Errorf("param %q: invalid duration value %q", s.Name, value)
		}
		// Report duration bounds with units, not bare seconds.
		if s.Min != nil && d.Seconds() < *s.Min {
			return fmt.Errorf("param %q: value %s below minimum %v", s.Name, value, secondsToDuration(*s.Min))
		}
		if s.Max != nil && d.Seconds() > *s.Max {
			return fmt.Errorf("param %q: value %s above maximum %v", s.Name, value, secondsToDuration(*s.Max))
		}
		return nil
	case ParamEnum:
		for _, allowed := range s.Enum {
			if value == allowed {
				return nil
			}
		}
		return fmt.Errorf("param %q: value %q not in {%s}", s.Name, value, strings.Join(s.Enum, ", "))
	default:
		return fmt.Errorf("param %q: invalid declared type %v", s.Name, s.Type)
	}
}

// secondsToDuration renders a duration bound (stored in seconds) with
// units for messages and catalogs.
func secondsToDuration(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func (s *ParamSpec) checkRange(v float64, raw string) error {
	if s.Min != nil && v < *s.Min {
		return fmt.Errorf("param %q: value %s below minimum %v", s.Name, raw, *s.Min)
	}
	if s.Max != nil && v > *s.Max {
		return fmt.Errorf("param %q: value %s above maximum %v", s.Name, raw, *s.Max)
	}
	return nil
}

// PortSpec declares the arity of one side (inputs or outputs) of an
// operator kind, plus optional schema constraints. The zero value
// declares "no ports" (a source's input side, a sink's output side).
type PortSpec struct {
	// Min and Max bound the number of ports; Max < 0 means unbounded
	// (variadic).
	Min, Max int
	// Attrs lists attributes every port's schema on this side must
	// declare, with matching types.
	Attrs []tuple.Attribute
}

// ExactlyPorts declares a fixed arity of n ports.
func ExactlyPorts(n int) PortSpec { return PortSpec{Min: n, Max: n} }

// AtLeastPorts declares a variadic arity of n or more ports.
func AtLeastPorts(n int) PortSpec { return PortSpec{Min: n, Max: -1} }

// WithAttrs returns a copy of the spec requiring the given attributes
// on every port schema of this side.
func (ps PortSpec) WithAttrs(attrs ...tuple.Attribute) PortSpec {
	ps.Attrs = attrs
	return ps
}

// String renders the arity for catalogs and error messages: "none",
// "exactly 2", "at least 1", "between 1 and 3".
func (ps PortSpec) String() string {
	switch {
	case ps.Min == 0 && ps.Max == 0:
		return "none"
	case ps.Max < 0 && ps.Min <= 0:
		return "any number"
	case ps.Max < 0:
		return fmt.Sprintf("at least %d", ps.Min)
	case ps.Min == ps.Max:
		return fmt.Sprintf("exactly %d", ps.Min)
	default:
		return fmt.Sprintf("between %d and %d", ps.Min, ps.Max)
	}
}

// CheckArity validates a declared port count against the spec.
func (ps PortSpec) CheckArity(side string, n int) error {
	if n < ps.Min || (ps.Max >= 0 && n > ps.Max) {
		return fmt.Errorf("declares %d %s port(s), want %s", n, side, ps)
	}
	return nil
}

// CheckSchema validates one port's schema against the side's attribute
// constraints.
func (ps PortSpec) CheckSchema(side string, port int, s *tuple.Schema) error {
	if len(ps.Attrs) == 0 {
		return nil
	}
	if s == nil {
		return fmt.Errorf("%s port %d has no schema, want attributes %v", side, port, ps.Attrs)
	}
	for _, want := range ps.Attrs {
		i := s.Index(want.Name)
		if i < 0 {
			return fmt.Errorf("%s port %d schema %s lacks attribute %q (%s)", side, port, s, want.Name, want.Type)
		}
		if got := s.Attr(i).Type; got != want.Type {
			return fmt.Errorf("%s port %d attribute %q is %s, want %s", side, port, want.Name, got, want.Type)
		}
	}
	return nil
}

// OpModel is the declarative descriptor of one operator kind: its
// parameters and port shapes. Kinds registered with a model are
// validated by compiler.Build; kinds registered without one (plain
// Register) are resolvable but unvalidated.
//
// Models are registered once at init time and must not be mutated
// afterwards.
type OpModel struct {
	// Kind is the operator kind name; filled in by the registry at
	// registration when left empty.
	Kind string
	// Doc is a one-line description for the catalog.
	Doc string
	// Params declares the accepted configuration parameters.
	// Parameters not declared here are rejected at Build.
	Params []ParamSpec
	// Inputs and Outputs declare the port shapes.
	Inputs, Outputs PortSpec
	// PartitionKey, when non-empty, names the declared parameter whose
	// value is the tuple attribute this kind's state is keyed by. It is
	// what makes a kind eligible for key-partitioned parallel regions
	// (compiler OpHandle.Parallel): the compiler reads the instance's
	// value of this parameter and routes the auto-inserted hash split on
	// that attribute, so every tuple of one key reaches the replica that
	// owns the key's state. Kinds whose state spans keys (or that keep
	// no per-key state at all) leave it empty and cannot be parallelised.
	PartitionKey string
}

// ParamSpec returns the declared spec for name, or nil.
func (m *OpModel) ParamSpec(name string) *ParamSpec {
	for i := range m.Params {
		if m.Params[i].Name == name {
			return &m.Params[i]
		}
	}
	return nil
}

// paramNames returns the declared parameter names, sorted, for error
// messages.
func (m *OpModel) paramNames() string {
	if len(m.Params) == 0 {
		return "(none)"
	}
	names := make([]string, len(m.Params))
	for i, s := range m.Params {
		names[i] = s.Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ValidateParams checks a parameter map against the declared specs:
// required parameters must be present and non-empty, present keys must
// be declared, and present values must parse, fall in range, and (for
// enums) be members. Template values ("{{key}}") defer to submission
// time. All violations are returned, not just the first.
func (m *OpModel) ValidateParams(p Params) []error {
	var errs []error
	for i := range m.Params {
		s := &m.Params[i]
		if s.Required {
			if v, ok := p[s.Name]; !ok || v == "" {
				errs = append(errs, fmt.Errorf("required param %q (%s) missing", s.Name, s.Type))
			}
		}
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := m.ParamSpec(k)
		if s == nil {
			errs = append(errs, fmt.Errorf("unknown param %q (kind %s accepts: %s)", k, m.Kind, m.paramNames()))
			continue
		}
		if err := s.Check(p[k]); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// ValidatePorts checks declared port schema lists against the model's
// arity and schema constraints.
func (m *OpModel) ValidatePorts(inputs, outputs []*tuple.Schema) []error {
	var errs []error
	if err := m.Inputs.CheckArity("input", len(inputs)); err != nil {
		errs = append(errs, err)
	} else {
		for i, s := range inputs {
			if err := m.Inputs.CheckSchema("input", i, s); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if err := m.Outputs.CheckArity("output", len(outputs)); err != nil {
		errs = append(errs, err)
	} else {
		for i, s := range outputs {
			if err := m.Outputs.CheckSchema("output", i, s); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errs
}

// Validate runs both parameter and port validation, returning every
// violation.
func (m *OpModel) Validate(p Params, inputs, outputs []*tuple.Schema) []error {
	return append(m.ValidateParams(p), m.ValidatePorts(inputs, outputs)...)
}

// check verifies the model itself is well-formed; the registry calls it
// at registration and panics on violations, since models are authored
// in init functions and a bad one is a programming error.
func (m *OpModel) check() error {
	seen := make(map[string]bool, len(m.Params))
	for i := range m.Params {
		s := &m.Params[i]
		if s.Name == "" {
			return fmt.Errorf("model %s: param %d has empty name", m.Kind, i)
		}
		if seen[s.Name] {
			return fmt.Errorf("model %s: duplicate param %q", m.Kind, s.Name)
		}
		seen[s.Name] = true
		if !s.Type.valid() {
			return fmt.Errorf("model %s: param %q has invalid type", m.Kind, s.Name)
		}
		if s.Type == ParamEnum && len(s.Enum) == 0 {
			return fmt.Errorf("model %s: enum param %q lists no values", m.Kind, s.Name)
		}
		if s.Type != ParamEnum && len(s.Enum) > 0 {
			return fmt.Errorf("model %s: non-enum param %q lists enum values", m.Kind, s.Name)
		}
		if s.Min != nil && s.Max != nil && *s.Min > *s.Max {
			return fmt.Errorf("model %s: param %q has min %v > max %v", m.Kind, s.Name, *s.Min, *s.Max)
		}
		// The advertised default must satisfy the spec itself, so the
		// catalog never documents a value the operator would reject.
		if s.Default != "" {
			if err := s.Check(s.Default); err != nil {
				return fmt.Errorf("model %s: default violates its own spec: %v", m.Kind, err)
			}
		}
	}
	for side, ps := range map[string]PortSpec{"input": m.Inputs, "output": m.Outputs} {
		if ps.Min < 0 {
			return fmt.Errorf("model %s: negative %s arity minimum", m.Kind, side)
		}
		if ps.Max >= 0 && ps.Max < ps.Min {
			return fmt.Errorf("model %s: %s arity max %d < min %d", m.Kind, side, ps.Max, ps.Min)
		}
	}
	if m.PartitionKey != "" {
		if !seen[m.PartitionKey] {
			return fmt.Errorf("model %s: partition key names undeclared param %q", m.Kind, m.PartitionKey)
		}
	}
	return nil
}
