package opapi

import (
	"strings"
	"testing"
	"time"

	"streamorca/internal/tuple"
)

func TestParamsBindAccessors(t *testing.T) {
	p := Params{
		"i": "42", "f": "2.5", "b": "true", "d": "3s", "e": "fast",
		"badi": "x", "badf": "x", "badb": "x", "badd": "x", "bade": "turbo",
		"empty": "",
	}
	if v, err := p.BindInt("i", 0); v != 42 || err != nil {
		t.Fatalf("BindInt = %d, %v", v, err)
	}
	if v, err := p.BindInt("missing", 7); v != 7 || err != nil {
		t.Fatalf("BindInt absent = %d, %v", v, err)
	}
	if v, err := p.BindInt("empty", 7); v != 7 || err != nil {
		t.Fatalf("BindInt empty = %d, %v", v, err)
	}
	if _, err := p.BindInt("badi", 7); err == nil {
		t.Fatal("BindInt swallowed malformed value")
	}
	if v, err := p.BindFloat("f", 0); v != 2.5 || err != nil {
		t.Fatalf("BindFloat = %g, %v", v, err)
	}
	if _, err := p.BindFloat("badf", 0); err == nil {
		t.Fatal("BindFloat swallowed malformed value")
	}
	if v, err := p.BindBool("b", false); !v || err != nil {
		t.Fatalf("BindBool = %v, %v", v, err)
	}
	if _, err := p.BindBool("badb", false); err == nil {
		t.Fatal("BindBool swallowed malformed value")
	}
	if v, err := p.BindDuration("d", 0); v != 3*time.Second || err != nil {
		t.Fatalf("BindDuration = %v, %v", v, err)
	}
	if _, err := p.BindDuration("badd", 0); err == nil {
		t.Fatal("BindDuration swallowed malformed value")
	}
	if v, err := p.BindEnum("e", "slow", "fast", "slow"); v != "fast" || err != nil {
		t.Fatalf("BindEnum = %q, %v", v, err)
	}
	if v, err := p.BindEnum("missing", "slow", "fast", "slow"); v != "slow" || err != nil {
		t.Fatalf("BindEnum absent = %q, %v", v, err)
	}
	if _, err := p.BindEnum("bade", "slow", "fast", "slow"); err == nil {
		t.Fatal("BindEnum accepted out-of-set value")
	}
}

func TestBinderAccumulates(t *testing.T) {
	p := Params{"n": "1", "bad1": "x", "bad2": "y"}
	b := p.Bind()
	if b.Int("n", 0) != 1 || b.Str("s", "dflt") != "dflt" {
		t.Fatal("Binder values wrong")
	}
	b.Int("bad1", 0)
	b.Duration("bad2", 0)
	err := b.Err()
	if err == nil {
		t.Fatal("Binder.Err lost the errors")
	}
	for _, want := range []string{`param "bad1"`, `param "bad2"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if (Params{"n": "1"}).Bind().Err() != nil {
		t.Fatal("clean Binder reported an error")
	}
}

func TestParamSpecCheck(t *testing.T) {
	cases := []struct {
		spec  ParamSpec
		value string
		ok    bool
	}{
		{ParamSpec{Name: "p", Type: ParamInt}, "5", true},
		{ParamSpec{Name: "p", Type: ParamInt}, "5.5", false},
		{ParamSpec{Name: "p", Type: ParamInt, Min: Bound(0)}, "-1", false},
		{ParamSpec{Name: "p", Type: ParamInt, Max: Bound(10)}, "11", false},
		{ParamSpec{Name: "p", Type: ParamFloat}, "1e3", true},
		{ParamSpec{Name: "p", Type: ParamFloat}, "one", false},
		{ParamSpec{Name: "p", Type: ParamBool}, "true", true},
		{ParamSpec{Name: "p", Type: ParamBool}, "yes", false},
		{ParamSpec{Name: "p", Type: ParamDuration}, "150ms", true},
		{ParamSpec{Name: "p", Type: ParamDuration}, "150", false},
		{ParamSpec{Name: "p", Type: ParamDuration, Min: Bound(1)}, "500ms", false},
		{ParamSpec{Name: "p", Type: ParamEnum, Enum: []string{"a", "b"}}, "a", true},
		{ParamSpec{Name: "p", Type: ParamEnum, Enum: []string{"a", "b"}}, "c", false},
		{ParamSpec{Name: "p", Type: ParamString}, "anything", true},
		// Template references and empty values defer to submission time.
		{ParamSpec{Name: "p", Type: ParamInt}, "{{n}}", true},
		{ParamSpec{Name: "p", Type: ParamInt}, "", true},
	}
	for _, tc := range cases {
		err := tc.spec.Check(tc.value)
		if tc.ok && err != nil {
			t.Errorf("%v Check(%q) = %v, want ok", tc.spec.Type, tc.value, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%v Check(%q) passed, want error", tc.spec.Type, tc.value)
		}
	}
}

func TestOpModelValidate(t *testing.T) {
	m := &OpModel{
		Kind:    "M",
		Inputs:  ExactlyPorts(1).WithAttrs(tuple.Attribute{Name: "v", Type: tuple.Int}),
		Outputs: AtLeastPorts(1),
		Params: []ParamSpec{
			{Name: "rate", Type: ParamFloat, Required: true},
			{Name: "mode", Type: ParamEnum, Enum: []string{"a", "b"}},
		},
	}
	intS := tuple.MustSchema(tuple.Attribute{Name: "v", Type: tuple.Int})
	strS := tuple.MustSchema(tuple.Attribute{Name: "v", Type: tuple.String})

	if errs := m.Validate(Params{"rate": "1"}, []*tuple.Schema{intS}, []*tuple.Schema{intS, intS}); len(errs) != 0 {
		t.Fatalf("valid config rejected: %v", errs)
	}
	errs := m.Validate(Params{"mode": "c", "ghost": "1"}, nil, nil)
	joined := make([]string, len(errs))
	for i, e := range errs {
		joined[i] = e.Error()
	}
	all := strings.Join(joined, "; ")
	for _, want := range []string{
		`required param "rate" (float64) missing`,
		`unknown param "ghost" (kind M accepts: mode, rate)`,
		`value "c" not in {a, b}`,
		`declares 0 input port(s), want exactly 1`,
		`declares 0 output port(s), want at least 1`,
	} {
		if !strings.Contains(all, want) {
			t.Errorf("missing %q in %q", want, all)
		}
	}
	// Wrong attribute type on a constrained port.
	errs = m.ValidatePorts([]*tuple.Schema{strS}, []*tuple.Schema{intS})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), `attribute "v" is rstring, want int64`) {
		t.Fatalf("port type constraint: %v", errs)
	}
}

func TestRegistryModels(t *testing.T) {
	r := NewRegistry()
	noop := func() Operator { return &dummyOp{} }
	r.RegisterOp("WithModel", noop, &OpModel{Outputs: ExactlyPorts(1)})
	r.Register("NoModel", noop)
	if m := r.Model("WithModel"); m == nil || m.Kind != "WithModel" {
		t.Fatalf("Model() = %+v, want kind filled in", m)
	}
	if r.Model("NoModel") != nil {
		t.Fatal("modelless kind returned a model")
	}
	if r.Model("Ghost") != nil || r.Registered("Ghost") {
		t.Fatal("unknown kind resolved")
	}
	if !r.Registered("NoModel") {
		t.Fatal("registered kind not reported")
	}
}

func TestRegistryRejectsMalformedModels(t *testing.T) {
	noop := func() Operator { return &dummyOp{} }
	bad := []*OpModel{
		{Params: []ParamSpec{{Name: "", Type: ParamInt}}},
		{Params: []ParamSpec{{Name: "a", Type: ParamInt}, {Name: "a", Type: ParamInt}}},
		{Params: []ParamSpec{{Name: "a", Type: ParamEnum}}},
		{Params: []ParamSpec{{Name: "a", Type: ParamInt, Min: Bound(2), Max: Bound(1)}}},
		{Inputs: PortSpec{Min: 2, Max: 1}},
	}
	for i, m := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("malformed model %d registered without panic", i)
				}
			}()
			NewRegistry().RegisterOp("K", noop, m)
		}()
	}
}

func TestPortSpecString(t *testing.T) {
	cases := []struct {
		ps   PortSpec
		want string
	}{
		{PortSpec{}, "none"},
		{ExactlyPorts(2), "exactly 2"},
		{AtLeastPorts(1), "at least 1"},
		{AtLeastPorts(0), "any number"},
		{PortSpec{Min: 1, Max: 3}, "between 1 and 3"},
	}
	for _, tc := range cases {
		if got := tc.ps.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
