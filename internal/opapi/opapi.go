// Package opapi defines the operator SPI: the interfaces an operator
// implements, the context the PE runtime hands it, parameter access, and
// the operator-kind registry the compiler and runtime resolve kinds
// against (the equivalent of SPL's operator model).
package opapi

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/metrics"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

// Params are operator configuration values from the ADL (merged from the
// application builder and submission-time parameters).
type Params map[string]string

// Get returns the value for key, or def when absent.
func (p Params) Get(key, def string) string {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// The silent Int/Float/Bool/Duration accessors (absent-or-malformed →
// default) were deprecated when the error-reporting Bind* family landed
// and have been removed after their release of overlap; bind typed
// parameters with BindInt/BindFloat/BindBool/BindDuration/BindEnum or an
// accumulating Binder so misconfiguration surfaces as an Open error.

// lookup returns the raw value, treating absent and empty entries as
// "use the default".
func (p Params) lookup(key string) (string, bool) {
	v, ok := p[key]
	return v, ok && v != ""
}

// BindInt returns the integer value for key, def when absent or empty,
// and an error when the value is present but malformed. It is the
// error-reporting replacement for Int.
func (p Params) BindInt(key string, def int64) (int64, error) {
	v, ok := p.lookup(key)
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return def, fmt.Errorf("param %q: invalid int64 value %q", key, v)
	}
	return n, nil
}

// BindFloat returns the float value for key, def when absent or empty,
// and an error when the value is present but malformed.
func (p Params) BindFloat(key string, def float64) (float64, error) {
	v, ok := p.lookup(key)
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return def, fmt.Errorf("param %q: invalid float64 value %q", key, v)
	}
	return f, nil
}

// BindBool returns the boolean value for key, def when absent or empty,
// and an error when the value is present but malformed.
func (p Params) BindBool(key string, def bool) (bool, error) {
	v, ok := p.lookup(key)
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return def, fmt.Errorf("param %q: invalid boolean value %q", key, v)
	}
	return b, nil
}

// BindDuration returns the duration value for key, def when absent or
// empty, and an error when the value is present but malformed.
func (p Params) BindDuration(key string, def time.Duration) (time.Duration, error) {
	v, ok := p.lookup(key)
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return def, fmt.Errorf("param %q: invalid duration value %q", key, v)
	}
	return d, nil
}

// BindEnum returns the value for key when it is one of allowed, def
// when absent or empty, and an error otherwise.
func (p Params) BindEnum(key, def string, allowed ...string) (string, error) {
	v, ok := p.lookup(key)
	if !ok {
		return def, nil
	}
	for _, a := range allowed {
		if v == a {
			return v, nil
		}
	}
	return def, fmt.Errorf("param %q: value %q not in {%s}", key, v, strings.Join(allowed, ", "))
}

// Binder accumulates binding errors across several parameter reads, so
// an operator's Open can bind its whole configuration and check once:
//
//	cfg := ctx.Params().Bind()
//	count := cfg.Int("count", 0)
//	period := cfg.Duration("period", 0)
//	if err := cfg.Err(); err != nil { return err }
type Binder struct {
	p    Params
	errs []error
}

// Bind starts an error-accumulating binding pass over the parameters.
func (p Params) Bind() *Binder { return &Binder{p: p} }

// Str returns the string value for key, or def when absent or empty —
// the same "empty means use the default" rule as every other binding
// accessor, so a submission-time template substituting to "" falls back
// instead of keying on the empty string.
func (b *Binder) Str(key, def string) string {
	if v, ok := b.p.lookup(key); ok {
		return v
	}
	return def
}

// Int binds an integer parameter, recording malformed values.
func (b *Binder) Int(key string, def int64) int64 {
	v, err := b.p.BindInt(key, def)
	b.record(err)
	return v
}

// Float binds a float parameter, recording malformed values.
func (b *Binder) Float(key string, def float64) float64 {
	v, err := b.p.BindFloat(key, def)
	b.record(err)
	return v
}

// Bool binds a boolean parameter, recording malformed values.
func (b *Binder) Bool(key string, def bool) bool {
	v, err := b.p.BindBool(key, def)
	b.record(err)
	return v
}

// Duration binds a duration parameter, recording malformed values.
func (b *Binder) Duration(key string, def time.Duration) time.Duration {
	v, err := b.p.BindDuration(key, def)
	b.record(err)
	return v
}

// Enum binds an enumerated parameter, recording out-of-set values.
func (b *Binder) Enum(key, def string, allowed ...string) string {
	v, err := b.p.BindEnum(key, def, allowed...)
	b.record(err)
	return v
}

func (b *Binder) record(err error) {
	if err != nil {
		b.errs = append(b.errs, err)
	}
}

// Err returns every binding error accumulated so far, joined, or nil.
func (b *Binder) Err() error { return errors.Join(b.errs...) }

// Clone returns an independent copy of the parameter map.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Context is the runtime environment the PE provides to an operator
// instance. All methods are safe to call from the operator's processing
// goroutine; Submit may be called from a Source's Run goroutine.
type Context interface {
	// Name returns the fully qualified logical instance name.
	Name() string
	// Kind returns the operator type name.
	Kind() string
	// App returns the application name.
	App() string
	// Params returns the operator's configuration.
	Params() Params
	// NumInputs returns the number of input ports.
	NumInputs() int
	// NumOutputs returns the number of output ports.
	NumOutputs() int
	// InputSchema returns the schema of input port i.
	InputSchema(i int) *tuple.Schema
	// OutputSchema returns the schema of output port i.
	OutputSchema(i int) *tuple.Schema
	// Submit sends a tuple on output port i.
	Submit(i int, t tuple.Tuple) error
	// SubmitMark sends a punctuation on output port i. Final marks are
	// normally managed by the runtime; sources emit them via Run's return.
	SubmitMark(i int, m tuple.Mark) error
	// CustomMetric returns (creating if needed) a custom metric counter,
	// visible to SRM and hence to orchestrator metric scopes (§2.1).
	CustomMetric(name string) *metrics.Counter
	// Clock returns the platform clock (virtual in tests).
	Clock() vclock.Clock
	// Done is closed when the containing PE stops or crashes. Operators
	// performing long waits must select on it (or use Sleep) so shutdown
	// is never blocked behind a pending clock wait.
	Done() <-chan struct{}
	// Logf writes to the PE's log.
	Logf(format string, args ...any)
}

// Sleep waits d on the clock, returning early with false when stop
// closes first. Operators use it instead of Clock().Sleep so that PE
// shutdown (and tests driving a manual clock) never deadlock behind an
// uninterruptible wait.
func Sleep(clock vclock.Clock, d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	select {
	case <-clock.After(d):
		return true
	case <-stop:
		return false
	}
}

// Operator is a stream operator instance. The PE runtime serialises all
// Process/ProcessMark calls for one instance, so implementations need no
// internal locking unless they share state elsewhere.
//
// A returned error is treated as an uncaught exception: it crashes the
// containing PE (as in the paper's PE failure scenarios). Recoverable
// conditions should be handled internally and, if worth surfacing,
// reflected in a custom metric.
type Operator interface {
	// Open is called once before any tuple delivery.
	Open(ctx Context) error
	// Process handles one tuple arriving on an input port.
	Process(port int, t tuple.Tuple) error
	// ProcessMark handles a punctuation arriving on an input port. Final
	// marks are delivered once per port; forwarding is the runtime's job.
	ProcessMark(port int, m tuple.Mark) error
	// Close is called once when the PE shuts down cleanly.
	Close() error
}

// BatchOperator is an opt-in extension of Operator for columnar batch
// execution: the PE runtime detects the interface at container assembly
// and hands whole queue batches — transport frames, coalesced intra-PE
// runs — to ProcessBatch as one call, instead of unpacking them into
// per-tuple Process calls. Punctuation never enters a batch; marks
// interleave in position through ProcessMark as usual.
//
// Contract:
//
//   - ProcessBatch(port, b) must be semantically equivalent to calling
//     Process(port, t) for each tuple of b in order. Process stays
//     mandatory and live: single-item deliveries and every non-batch
//     path still use it (the batchspi analyzer enforces the pair).
//   - The Batch and the slice Tuples returns are valid only for the
//     duration of the call; the runtime reuses the view. The tuples
//     themselves follow the normal framing rules: retaining one past
//     the call requires Clone, submitting it downstream is safe.
//   - While ProcessBatch runs, Submit/SubmitMark coalesce: outputs are
//     buffered and forwarded as whole batches when the call returns, so
//     intra-PE hops between two batch operators stay batched.
//   - An error crashes the containing PE exactly like a Process error;
//     the tuples of the delivery not known to have been processed are
//     accounted as dropped on the PE's nTuplesDropped counter.
type BatchOperator interface {
	Operator
	ProcessBatch(port int, b *tuple.Batch) error
}

// Source is implemented by operators with no input ports. The runtime
// calls Run on a dedicated goroutine; it should emit tuples via the
// context until stop is closed or the stream is exhausted. Returning nil
// after exhaustion emits a final punctuation downstream.
type Source interface {
	Operator
	Run(stop <-chan struct{}) error
}

// Controllable is implemented by operators that accept orchestrator
// control commands (e.g. a dynamic filter changing its predicate at
// runtime, §3). Control calls arrive on the processing goroutine.
type Controllable interface {
	Control(cmd string, args map[string]string) error
}

// StatefulOperator is implemented by operators whose in-memory state
// should survive a PE restart. The PE checkpoint driver periodically
// (and on demand) calls SaveState to serialise the state into a
// snapshot section; when a restarted PE finds a snapshot, it calls
// RestoreState after Open and before any tuple delivery.
//
// Contract:
//
//   - SaveState writes the state through the encoder; RestoreState
//     reads the same values back in the same order and must fully
//     overwrite the operator's state (a restore never merges).
//   - For operators with input ports both calls run on the processing
//     goroutine, serialised with Process/ProcessMark/Control. For
//     sources, SaveState may run concurrently with Run, so shared
//     state needs the operator's own synchronisation (an atomic
//     cursor is usually enough).
//   - Only state the operator writes is captured: queued input items,
//     in-flight tuples, and built-in metrics are not part of a
//     snapshot (restore-based recovery still loses the tuples in
//     flight at the crash, as §5.2's partial fault tolerance allows).
//   - A RestoreState error (or a decoder error latched during it)
//     discards the section and the operator starts fresh; it must not
//     leave itself half-restored in a way Open did not already handle.
type StatefulOperator interface {
	Operator
	SaveState(enc *ckpt.Encoder) error
	RestoreState(dec *ckpt.Decoder) error
}

// PartitionedStateOperator is implemented by stateful operators whose
// state is keyed by the attribute their OpModel.PartitionKey declares,
// which makes the state migratable across width changes of a parallel
// region (SAM's ResizeRegion actuation).
//
// Both methods speak the SaveState wire format and must work on a
// fresh, never-Opened instance: migration happens between PE
// incarnations, on a scratch instance that only ever transcodes state.
//
//   - MergeState folds another partition's SaveState-format state into
//     this instance (unlike RestoreState, which overwrites). Keys never
//     collide across well-formed partitions, but a merge must tolerate
//     overlap by combining rather than dropping.
//   - SplitState writes, in SaveState format, only the keys this
//     instance owns that PartitionOf(key, ...) assigns to partition
//     part of width — so restoring each partition's output on its new
//     replica reconstructs the region's state exactly once.
type PartitionedStateOperator interface {
	StatefulOperator
	MergeState(dec *ckpt.Decoder) error
	SplitState(enc *ckpt.Encoder, part, width int) error
}

// PartitionOf maps a tuple's partition-key value to a replica index in
// a parallel region of the given width. It is the single routing
// function shared by the auto-inserted hash split (per-tuple) and by
// SplitState implementations (per-key, at migration time): both sides
// must agree or a key's tuples would land on a replica that does not
// hold the key's state.
//
// The key value is hashed as the string form sv, a '|' separator, and
// the decimal form of iv — FNV-1a over that byte sequence. String-typed
// keys pass iv = 0 (an unresolvable int attribute reads as zero);
// int-typed keys pass sv = "".
func PartitionOf(sv string, iv int64, width int) int {
	if width <= 1 {
		return 0
	}
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(sv); i++ {
		h ^= uint32(sv[i])
		h *= prime32
	}
	h ^= '|'
	h *= prime32
	var num [20]byte
	for _, c := range strconv.AppendInt(num[:0], iv, 10) {
		h ^= uint32(c)
		h *= prime32
	}
	return int(h) % width
}

// Base provides no-op defaults so operators only implement what they
// need.
type Base struct{}

// Open implements Operator.
func (Base) Open(Context) error { return nil }

// Process implements Operator.
func (Base) Process(int, tuple.Tuple) error { return nil }

// ProcessMark implements Operator.
func (Base) ProcessMark(int, tuple.Mark) error { return nil }

// Close implements Operator.
func (Base) Close() error { return nil }

// Factory constructs a fresh operator instance of some kind.
type Factory func() Operator

// Registry maps operator kinds to factories and their declarative
// descriptors. The platform uses Default; tests may build private
// registries.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]registryEntry
}

type registryEntry struct {
	factory Factory
	model   *OpModel
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: make(map[string]registryEntry)} }

// Register adds a kind without a descriptor: the kind resolves at
// runtime but the compiler cannot validate its configuration. Prefer
// RegisterOp. Registering a duplicate kind panics, since kind
// registration happens at init time and a collision is a programming
// error.
func (r *Registry) Register(kind string, f Factory) { r.RegisterOp(kind, f, nil) }

// RegisterOp adds a kind together with its operator model. The model
// (when non-nil) must be well-formed — malformed models panic, like
// duplicate kinds, because registration is init-time code. The registry
// fills in model.Kind and owns the model afterwards; callers must not
// mutate it.
func (r *Registry) RegisterOp(kind string, f Factory, model *OpModel) {
	if kind == "" || f == nil {
		panic("opapi: empty kind or nil factory")
	}
	if model != nil {
		if model.Kind == "" {
			model.Kind = kind
		}
		if err := model.check(); err != nil {
			panic("opapi: " + err.Error())
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[kind]; dup {
		panic(fmt.Sprintf("opapi: operator kind %q registered twice", kind))
	}
	r.entries[kind] = registryEntry{factory: f, model: model}
}

// New instantiates an operator of the given kind.
func (r *Registry) New(kind string) (Operator, error) {
	r.mu.RLock()
	e, ok := r.entries[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("opapi: unknown operator kind %q", kind)
	}
	return e.factory(), nil
}

// Registered reports whether the kind is known to the registry.
func (r *Registry) Registered(kind string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[kind]
	return ok
}

// Model returns the descriptor registered for kind, or nil when the
// kind is unknown or was registered without one.
func (r *Registry) Model(kind string) *OpModel {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[kind].model
}

// Kinds returns the registered kind names, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	kinds := make([]string, 0, len(r.entries))
	for k := range r.entries {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Default is the process-wide registry the built-in operator library
// registers into.
var Default = NewRegistry()
