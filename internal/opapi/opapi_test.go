package opapi

import (
	"testing"
	"time"

	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

func TestParamsAccessors(t *testing.T) {
	p := Params{
		"s": "hello", "i": "42", "f": "2.5", "b": "true", "d": "3s",
		"badi": "x", "badf": "x", "badb": "x", "badd": "x",
	}
	if p.Get("s", "d") != "hello" || p.Get("missing", "d") != "d" {
		t.Fatal("Get wrong")
	}
	if v, err := p.BindInt("i", 0); v != 42 || err != nil {
		t.Fatalf("BindInt = %d, %v", v, err)
	}
	if v, err := p.BindInt("missing", 7); v != 7 || err != nil {
		t.Fatalf("BindInt missing = %d, %v", v, err)
	}
	if v, err := p.BindInt("badi", 7); v != 7 || err == nil {
		t.Fatalf("BindInt malformed = %d, %v", v, err)
	}
	if v, err := p.BindFloat("f", 0); v != 2.5 || err != nil {
		t.Fatalf("BindFloat = %v, %v", v, err)
	}
	if _, err := p.BindFloat("badf", 1.5); err == nil {
		t.Fatal("BindFloat malformed must error")
	}
	if v, err := p.BindBool("b", false); !v || err != nil {
		t.Fatalf("BindBool = %v, %v", v, err)
	}
	if _, err := p.BindBool("badb", true); err == nil {
		t.Fatal("BindBool malformed must error")
	}
	if v, err := p.BindDuration("d", 0); v != 3*time.Second || err != nil {
		t.Fatalf("BindDuration = %v, %v", v, err)
	}
	if _, err := p.BindDuration("badd", time.Minute); err == nil {
		t.Fatal("BindDuration malformed must error")
	}
}

func TestParamsClone(t *testing.T) {
	p := Params{"k": "v"}
	c := p.Clone()
	c["k"] = "other"
	if p["k"] != "v" {
		t.Fatal("Clone shares storage")
	}
}

type dummyOp struct {
	Base
	id int // non-zero size so distinct instances get distinct addresses
}

func TestRegistryRegisterAndNew(t *testing.T) {
	r := NewRegistry()
	r.Register("Dummy", func() Operator { return &dummyOp{} })
	op, err := r.New("Dummy")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*dummyOp); !ok {
		t.Fatalf("New returned %T", op)
	}
	op2, _ := r.New("Dummy")
	if op == op2 {
		t.Fatal("factory returned a shared instance")
	}
	if _, err := r.New("Ghost"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("Dup", func() Operator { return &dummyOp{} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register("Dup", func() Operator { return &dummyOp{} })
}

func TestRegistryEmptyKindPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("empty kind did not panic")
		}
	}()
	r.Register("", func() Operator { return &dummyOp{} })
}

func TestRegistryKindsSorted(t *testing.T) {
	r := NewRegistry()
	for _, k := range []string{"Zeta", "Alpha", "Mid"} {
		r.Register(k, func() Operator { return &dummyOp{} })
	}
	kinds := r.Kinds()
	if len(kinds) != 3 || kinds[0] != "Alpha" || kinds[2] != "Zeta" {
		t.Fatalf("Kinds() = %v", kinds)
	}
}

func TestBaseDefaults(t *testing.T) {
	var b Base
	if err := b.Open(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Process(0, tuple.Tuple{}); err != nil {
		t.Fatal(err)
	}
	if err := b.ProcessMark(0, tuple.FinalMark); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSleepInterruptible(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- Sleep(clock, time.Minute, stop) }()
	clock.BlockUntilWaiters(1)
	close(stop)
	if slept := <-done; slept {
		t.Fatal("Sleep reported completion after interrupt")
	}
	// Completed sleep returns true. The interrupted waiter above is
	// still registered on the manual clock, so wait for a second one.
	go func() { done <- Sleep(clock, time.Second, make(chan struct{})) }()
	clock.BlockUntilWaiters(2)
	clock.Advance(time.Second)
	if slept := <-done; !slept {
		t.Fatal("Sleep reported interrupt after completion")
	}
	// Non-positive duration returns immediately.
	if !Sleep(clock, 0, nil) {
		t.Fatal("zero Sleep reported interrupt")
	}
}
