package ops

import (
	"fmt"
	"math"
	"time"

	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// aggregate maintains a per-group sliding time window over one numeric
// attribute and emits summary statistics for the group on every input
// tuple — the windowed analytics shape of the paper's Trend Calculator
// (§5.2): min/max/average price and Bollinger bands over a 600-second
// window per stock symbol.
//
// Output attributes are filled by name when the output schema declares
// them: the group attribute (copied), "min", "max", "avg", "stddev",
// "bbUpper", "bbLower" (avg ± 2σ), and "count" (int64 window size).
//
// The window is processing-time based on the platform clock, so
// experiments on a virtual clock control window motion exactly. A crash
// loses the window — rebuilding it takes a full window duration of fresh
// tuples, which is precisely the recovery gap Figure 9 shows.
//
// Parameters:
//
//	window    string  Go duration of the sliding window (required)
//	groupBy   string  grouping attribute (optional: one global group)
//	valueAttr string  numeric attribute to aggregate (required, float64)
type aggregate struct {
	opapi.Base
	ctx       opapi.Context
	window    time.Duration
	groupBy   string
	valueAttr string
	groups    map[string][]sample
}

type sample struct {
	at time.Time
	v  float64
}

func (a *aggregate) Open(ctx opapi.Context) error {
	a.ctx = ctx
	p := ctx.Params()
	a.window = p.Duration("window", 0)
	if a.window <= 0 {
		return fmt.Errorf("Aggregate %s: window parameter required", ctx.Name())
	}
	a.valueAttr = p.Get("valueAttr", "")
	if a.valueAttr == "" {
		return fmt.Errorf("Aggregate %s: valueAttr parameter required", ctx.Name())
	}
	if idx := ctx.InputSchema(0).Index(a.valueAttr); idx < 0 || ctx.InputSchema(0).Attr(idx).Type != tuple.Float {
		return fmt.Errorf("Aggregate %s: valueAttr %q must be a float64 input attribute", ctx.Name(), a.valueAttr)
	}
	a.groupBy = p.Get("groupBy", "")
	a.groups = make(map[string][]sample)
	return nil
}

func (a *aggregate) Process(port int, t tuple.Tuple) error {
	key := ""
	if a.groupBy != "" {
		key = t.String(a.groupBy)
	}
	now := a.ctx.Clock().Now()
	win := append(a.groups[key], sample{at: now, v: t.Float(a.valueAttr)})
	cut := now.Add(-a.window)
	drop := 0
	for drop < len(win) && !win[drop].at.After(cut) {
		drop++
	}
	win = win[drop:]
	a.groups[key] = win

	var sum, sumSq float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range win {
		sum += s.v
		sumSq += s.v * s.v
		if s.v < lo {
			lo = s.v
		}
		if s.v > hi {
			hi = s.v
		}
	}
	n := float64(len(win))
	avg := sum / n
	variance := sumSq/n - avg*avg
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)

	out := tuple.New(a.ctx.OutputSchema(0))
	schema := a.ctx.OutputSchema(0)
	if a.groupBy != "" && schema.Index(a.groupBy) >= 0 {
		_ = out.SetString(a.groupBy, key)
	}
	setIf := func(name string, v float64) {
		if schema.Index(name) >= 0 {
			_ = out.SetFloat(name, v)
		}
	}
	setIf("min", lo)
	setIf("max", hi)
	setIf("avg", avg)
	setIf("stddev", sd)
	setIf("bbUpper", avg+2*sd)
	setIf("bbLower", avg-2*sd)
	if schema.Index("count") >= 0 {
		_ = out.SetInt("count", int64(len(win)))
	}
	return a.ctx.Submit(0, out)
}
