package ops

import (
	"fmt"
	"math"
	"sort"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// aggregate maintains a per-group sliding time window over one numeric
// attribute and emits summary statistics for the group on every input
// tuple — the windowed analytics shape of the paper's Trend Calculator
// (§5.2): min/max/average price and Bollinger bands over a 600-second
// window per stock symbol.
//
// Output attributes are filled by name when the output schema declares
// them: the group attribute (copied), "min", "max", "avg", "stddev",
// "bbUpper", "bbLower" (avg ± 2σ), and "count" (int64 window size).
//
// The window is processing-time based on the platform clock, so
// experiments on a virtual clock control window motion exactly. On a
// platform without a checkpoint store a crash loses the window —
// rebuilding it takes a full window duration of fresh tuples, which is
// precisely the recovery gap Figure 9 shows. The operator is stateful:
// with checkpointing enabled, a restarted PE restores the group windows
// from the latest snapshot and closes that gap.
//
// Parameters:
//
//	window    string  Go duration of the sliding window (required)
//	groupBy   string  grouping attribute (optional: one global group)
//	valueAttr string  numeric attribute to aggregate (required, float64)
type aggregate struct {
	opapi.Base
	ctx      opapi.Context
	window   time.Duration
	groupBy  string
	valueRef tuple.FieldRef
	groupRef tuple.FieldRef // valid only when groupBy is set and a string
	groups   map[string][]sample

	// Output refs compiled at Open: each stat is written only when the
	// output schema declares the attribute.
	outGroup                                      tuple.FieldRef
	outMin, outMax, outAvg, outSD, outBBU, outBBL tuple.FieldRef
	outCount                                      tuple.FieldRef
}

type sample struct {
	at time.Time
	v  float64
}

func (a *aggregate) Open(ctx opapi.Context) error {
	a.ctx = ctx
	p := ctx.Params()
	var err error
	if a.window, err = p.BindDuration("window", 0); err != nil {
		return fmt.Errorf("Aggregate %s: %w", ctx.Name(), err)
	}
	if a.window <= 0 {
		return fmt.Errorf("Aggregate %s: window parameter required", ctx.Name())
	}
	valueAttr := p.Get("valueAttr", "")
	if valueAttr == "" {
		return fmt.Errorf("Aggregate %s: valueAttr parameter required", ctx.Name())
	}
	ref, err := ctx.InputSchema(0).TypedRef(valueAttr, tuple.Float)
	if err != nil {
		return fmt.Errorf("Aggregate %s: valueAttr %q must be a float64 input attribute", ctx.Name(), valueAttr)
	}
	a.valueRef = ref
	a.groupBy = p.Get("groupBy", "")
	if a.groupBy != "" {
		if ref, err := ctx.InputSchema(0).TypedRef(a.groupBy, tuple.String); err == nil {
			a.groupRef = ref
		}
	}
	out := ctx.OutputSchema(0)
	optFloat := func(name string) tuple.FieldRef {
		ref, err := out.TypedRef(name, tuple.Float)
		if err != nil {
			return tuple.FieldRef{}
		}
		return ref
	}
	a.outMin, a.outMax, a.outAvg = optFloat("min"), optFloat("max"), optFloat("avg")
	a.outSD, a.outBBU, a.outBBL = optFloat("stddev"), optFloat("bbUpper"), optFloat("bbLower")
	if ref, err := out.TypedRef("count", tuple.Int); err == nil {
		a.outCount = ref
	}
	if a.groupBy != "" {
		if ref, err := out.TypedRef(a.groupBy, tuple.String); err == nil {
			a.outGroup = ref
		}
	}
	a.groups = make(map[string][]sample)
	return nil
}

func (a *aggregate) Process(port int, t tuple.Tuple) error {
	return a.ingest(t, a.ctx.Clock().Now())
}

// ProcessBatch ingests the whole run against one clock reading: every
// tuple of a batch arrives at the same processing-time instant, so the
// (comparatively expensive) platform-clock read runs once per frame
// instead of once per tuple.
func (a *aggregate) ProcessBatch(port int, b *tuple.Batch) error {
	now := a.ctx.Clock().Now()
	for _, t := range b.Tuples() {
		if err := a.ingest(t, now); err != nil {
			return err
		}
	}
	return nil
}

// ingest slides the group window to now, folds in the tuple's value,
// and emits the group's refreshed statistics.
func (a *aggregate) ingest(t tuple.Tuple, now time.Time) error {
	key := ""
	if a.groupRef.Valid() {
		key = a.groupRef.Str(t)
	}
	win := append(a.groups[key], sample{at: now, v: a.valueRef.Float(t)})
	cut := now.Add(-a.window)
	drop := 0
	for drop < len(win) && !win[drop].at.After(cut) {
		drop++
	}
	win = win[drop:]
	a.groups[key] = win

	var sum, sumSq float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range win {
		sum += s.v
		sumSq += s.v * s.v
		if s.v < lo {
			lo = s.v
		}
		if s.v > hi {
			hi = s.v
		}
	}
	n := float64(len(win))
	avg := sum / n
	variance := sumSq/n - avg*avg
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)

	out := tuple.New(a.ctx.OutputSchema(0))
	if a.outGroup.Valid() {
		a.outGroup.SetStr(out, key)
	}
	setIf := func(ref tuple.FieldRef, v float64) {
		if ref.Valid() {
			ref.SetFloat(out, v)
		}
	}
	setIf(a.outMin, lo)
	setIf(a.outMax, hi)
	setIf(a.outAvg, avg)
	setIf(a.outSD, sd)
	setIf(a.outBBU, avg+2*sd)
	setIf(a.outBBL, avg-2*sd)
	if a.outCount.Valid() {
		a.outCount.SetInt(out, int64(len(win)))
	}
	return a.ctx.Submit(0, out)
}

// SaveState snapshots every group's window. Groups are written in
// sorted key order so identical state always produces identical bytes.
func (a *aggregate) SaveState(e *ckpt.Encoder) error {
	keys := make([]string, 0, len(a.groups))
	for k := range a.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.PutUint(uint64(len(keys)))
	for _, k := range keys {
		e.PutStr(k)
		win := a.groups[k]
		e.PutUint(uint64(len(win)))
		for _, s := range win {
			e.PutTime(s.at)
			e.PutFloat(s.v)
		}
	}
	return nil
}

// RestoreState replaces the group windows with the snapshot's. Expiry
// needs no special handling: restored samples carry their original
// timestamps, so the next Process drops whatever aged out while the PE
// was down.
func (a *aggregate) RestoreState(d *ckpt.Decoder) error {
	n := d.Uint()
	if err := d.Err(); err != nil {
		return err
	}
	// The count is decoder-controlled: cap the allocation hint so a
	// hostile value cannot force a huge up-front allocation (the loop
	// below stops at the first decode error regardless).
	groups := make(map[string][]sample, min(n, 1024))
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		k := d.Str()
		m := d.Uint()
		var win []sample
		for j := uint64(0); j < m && d.Err() == nil; j++ {
			at := d.Time()
			v := d.Float()
			win = append(win, sample{at: at, v: v})
		}
		groups[k] = win
	}
	if err := d.Err(); err != nil {
		return err
	}
	a.groups = groups
	return nil
}

// MergeState folds another partition's SaveState-format state into the
// current group windows (repartitioning a parallel region narrower: the
// surviving replicas absorb the removed replicas' groups). Overlapping
// keys concatenate and re-sort their windows by sample time, so the
// expiry scan in Process keeps seeing a time-ordered window.
func (a *aggregate) MergeState(d *ckpt.Decoder) error {
	n := d.Uint()
	if err := d.Err(); err != nil {
		return err
	}
	if a.groups == nil {
		a.groups = make(map[string][]sample, min(n, 1024))
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		k := d.Str()
		m := d.Uint()
		win := a.groups[k]
		merged := len(win) > 0
		for j := uint64(0); j < m && d.Err() == nil; j++ {
			at := d.Time()
			v := d.Float()
			win = append(win, sample{at: at, v: v})
		}
		if d.Err() == nil {
			if merged {
				sort.Slice(win, func(x, y int) bool { return win[x].at.Before(win[y].at) })
			}
			a.groups[k] = win
		}
	}
	return d.Err()
}

// SplitState writes, in SaveState format, only the groups that
// opapi.PartitionOf assigns to partition part of width. The hash input
// matches what the region's hash split computes per tuple for a string
// key attribute (iv reads as zero when the attribute is not an int), so
// a key's window lands on the replica its tuples will keep reaching.
func (a *aggregate) SplitState(e *ckpt.Encoder, part, width int) error {
	keys := make([]string, 0, len(a.groups))
	for k := range a.groups {
		if opapi.PartitionOf(k, 0, width) == part {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	e.PutUint(uint64(len(keys)))
	for _, k := range keys {
		e.PutStr(k)
		win := a.groups[k]
		e.PutUint(uint64(len(win)))
		for _, s := range win {
			e.PutTime(s.at)
			e.PutFloat(s.v)
		}
	}
	return nil
}
