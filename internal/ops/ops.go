// Package ops provides the built-in operator library (the equivalent of
// the SPL standard toolkit): sources, relational operators, windowed
// aggregation, throttling, and sinks. Every kind registers into
// opapi.Default at init, so the compiler and runtime resolve them by
// name.
package ops

import "streamorca/internal/opapi"

// Registered operator kind names.
const (
	KindBeacon        = "Beacon"
	KindFilter        = "Filter"
	KindDynamicFilter = "DynamicFilter"
	KindFunctor       = "Functor"
	KindSplit         = "Split"
	KindMerge         = "Merge"
	KindThrottle      = "Throttle"
	KindAggregate     = "Aggregate"
	KindCollectSink   = "CollectSink"
	KindFileSink      = "FileSink"
	KindCountSink     = "CountSink"
)

func init() {
	opapi.Default.Register(KindBeacon, func() opapi.Operator { return &beacon{} })
	opapi.Default.Register(KindFilter, func() opapi.Operator { return &filter{} })
	opapi.Default.Register(KindDynamicFilter, func() opapi.Operator { return &dynamicFilter{} })
	opapi.Default.Register(KindFunctor, func() opapi.Operator { return &functor{} })
	opapi.Default.Register(KindSplit, func() opapi.Operator { return &split{} })
	opapi.Default.Register(KindMerge, func() opapi.Operator { return &merge{} })
	opapi.Default.Register(KindThrottle, func() opapi.Operator { return &throttle{} })
	opapi.Default.Register(KindAggregate, func() opapi.Operator { return &aggregate{} })
	opapi.Default.Register(KindCollectSink, func() opapi.Operator { return &collectSink{} })
	opapi.Default.Register(KindFileSink, func() opapi.Operator { return &fileSink{} })
	opapi.Default.Register(KindCountSink, func() opapi.Operator { return &countSink{} })
}
