// Package ops provides the built-in operator library (the equivalent of
// the SPL standard toolkit): sources, relational operators, windowed
// aggregation, throttling, and sinks. Every kind registers into
// opapi.Default at init together with its operator model, so the
// compiler validates applications against the library's parameter and
// port declarations at Build time and the runtime resolves kinds by
// name.
package ops

import "streamorca/internal/opapi"

// Registered operator kind names.
const (
	KindBeacon        = "Beacon"
	KindFilter        = "Filter"
	KindDynamicFilter = "DynamicFilter"
	KindFunctor       = "Functor"
	KindSplit         = "Split"
	KindMerge         = "Merge"
	KindThrottle      = "Throttle"
	KindAggregate     = "Aggregate"
	KindCollectSink   = "CollectSink"
	KindFileSink      = "FileSink"
	KindCountSink     = "CountSink"
)

// Custom metric names published by the library's operators, exported so
// routines and benchmarks subscribe by constant rather than re-spelling
// the string.
const (
	// MetricTuplesDropped counts tuples Filter/DynamicFilter discarded.
	MetricTuplesDropped = "nTuplesDropped"
	// MetricTuplesSeen counts tuples CountSink swallowed.
	MetricTuplesSeen = "nTuplesSeen"
)

// comparisonOps are the predicate operators Filter and DynamicFilter
// accept for their "op" parameter.
var comparisonOps = []string{"eq", "ne", "lt", "le", "gt", "ge", "contains"}

// splitModes are Split's routing disciplines; shared between the
// operator model and Open's BindEnum so the two can never diverge.
var splitModes = []string{"roundrobin", "duplicate", "hash"}

// filterParams is the shared parameter block of Filter and DynamicFilter.
func filterParams() []opapi.ParamSpec {
	return []opapi.ParamSpec{
		{Name: "attr", Type: opapi.ParamString, Doc: "attribute to test; empty passes everything"},
		{Name: "op", Type: opapi.ParamEnum, Enum: comparisonOps, Default: "eq", Doc: "comparison operator"},
		{Name: "value", Type: opapi.ParamString, Doc: "comparison value, parsed per attribute type"},
	}
}

func init() {
	opapi.Default.RegisterOp(KindBeacon, func() opapi.Operator { return &beacon{} }, &opapi.OpModel{
		Doc:     "emits sequentially numbered tuples",
		Outputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "count", Type: opapi.ParamInt, Default: "0", Min: opapi.Bound(0), Doc: "tuples to emit; 0 = unbounded"},
			{Name: "period", Type: opapi.ParamDuration, Default: "0", Min: opapi.Bound(0), Doc: "inter-tuple delay"},
			{Name: "seqAttr", Type: opapi.ParamString, Default: "seq", Doc: "int64 attribute receiving the sequence number"},
		},
	})
	opapi.Default.RegisterOp(KindFilter, func() opapi.Operator { return &filter{} }, &opapi.OpModel{
		Doc:     "passes tuples matching a single-attribute predicate",
		Inputs:  opapi.ExactlyPorts(1),
		Outputs: opapi.ExactlyPorts(1),
		Params:  filterParams(),
	})
	opapi.Default.RegisterOp(KindDynamicFilter, func() opapi.Operator { return &dynamicFilter{} }, &opapi.OpModel{
		Doc:     "filter whose predicate orchestrator control commands replace at runtime",
		Inputs:  opapi.ExactlyPorts(1),
		Outputs: opapi.ExactlyPorts(1),
		Params:  filterParams(),
	})
	opapi.Default.RegisterOp(KindFunctor, func() opapi.Operator { return &functor{} }, &opapi.OpModel{
		Doc:     "projects tuples onto the output schema with optional arithmetic",
		Inputs:  opapi.ExactlyPorts(1),
		Outputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "addInt", Type: opapi.ParamString, Doc: `"attr:delta" adds delta to an int64 attribute`},
			{Name: "scale", Type: opapi.ParamString, Doc: `"attr:factor" multiplies a float64 attribute`},
			{Name: "setStr", Type: opapi.ParamString, Doc: `"attr:value" overwrites a string attribute`},
		},
	})
	opapi.Default.RegisterOp(KindSplit, func() opapi.Operator { return &split{} }, &opapi.OpModel{
		Doc:     "routes each tuple to one (or all) of its output ports",
		Inputs:  opapi.ExactlyPorts(1),
		Outputs: opapi.AtLeastPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "mode", Type: opapi.ParamEnum, Enum: splitModes, Default: "roundrobin", Doc: "routing discipline"},
			{Name: "attr", Type: opapi.ParamString, Doc: "hashing attribute for mode=hash"},
		},
	})
	opapi.Default.RegisterOp(KindMerge, func() opapi.Operator { return &merge{} }, &opapi.OpModel{
		Doc:     "forwards tuples from all input ports to output port 0",
		Inputs:  opapi.AtLeastPorts(1),
		Outputs: opapi.ExactlyPorts(1),
	})
	opapi.Default.RegisterOp(KindThrottle, func() opapi.Operator { return &throttle{} }, &opapi.OpModel{
		Doc:     "delays each tuple by a fixed period",
		Inputs:  opapi.ExactlyPorts(1),
		Outputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "period", Type: opapi.ParamDuration, Default: "0", Min: opapi.Bound(0), Doc: "sleep per tuple"},
		},
	})
	opapi.Default.RegisterOp(KindAggregate, func() opapi.Operator { return &aggregate{} }, &opapi.OpModel{
		Doc:          "per-group sliding-window summary statistics over one numeric attribute",
		Inputs:       opapi.ExactlyPorts(1),
		Outputs:      opapi.ExactlyPorts(1),
		PartitionKey: "groupBy",
		Params: []opapi.ParamSpec{
			{Name: "window", Type: opapi.ParamDuration, Required: true, Min: opapi.Bound(1e-9), Doc: "sliding window length"},
			{Name: "groupBy", Type: opapi.ParamString, Doc: "grouping attribute; empty = one global group"},
			{Name: "valueAttr", Type: opapi.ParamString, Required: true, Doc: "float64 attribute to aggregate"},
		},
	})
	opapi.Default.RegisterOp(KindCollectSink, func() opapi.Operator { return &collectSink{} }, &opapi.OpModel{
		Doc:    "stores received tuples into an observable collection",
		Inputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "collectorId", Type: opapi.ParamString, Doc: "collection to append to (default: instance name)"},
			{Name: "limit", Type: opapi.ParamInt, Default: "0", Min: opapi.Bound(0), Doc: "keep only the most recent N tuples; 0 = all"},
		},
	})
	opapi.Default.RegisterOp(KindFileSink, func() opapi.Operator { return &fileSink{} }, &opapi.OpModel{
		Doc:    "appends one formatted line per tuple to a file",
		Inputs: opapi.ExactlyPorts(1),
		Params: []opapi.ParamSpec{
			{Name: "path", Type: opapi.ParamString, Required: true, Doc: "output file"},
		},
	})
	opapi.Default.RegisterOp(KindCountSink, func() opapi.Operator { return &countSink{} }, &opapi.OpModel{
		Doc:    "discards tuples, tracking only the nTuplesSeen metric",
		Inputs: opapi.ExactlyPorts(1),
	})
}
