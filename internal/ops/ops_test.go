package ops

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

// fakeCtx is a minimal opapi.Context capturing submissions per port.
type fakeCtx struct {
	name    string
	params  opapi.Params
	ins     []*tuple.Schema
	outs    []*tuple.Schema
	emitted map[int][]tuple.Tuple
	marks   map[int][]tuple.Mark
	om      *metrics.OpMetrics
	clock   vclock.Clock
}

func newFakeCtx(params opapi.Params, ins, outs []*tuple.Schema) *fakeCtx {
	return &fakeCtx{
		name: "test", params: params, ins: ins, outs: outs,
		emitted: make(map[int][]tuple.Tuple), marks: make(map[int][]tuple.Mark),
		om: metrics.NewOpMetrics(), clock: vclock.NewManual(time.Unix(0, 0)),
	}
}

func (c *fakeCtx) Name() string                           { return c.name }
func (c *fakeCtx) Kind() string                           { return "test" }
func (c *fakeCtx) App() string                            { return "testApp" }
func (c *fakeCtx) Params() opapi.Params                   { return c.params }
func (c *fakeCtx) NumInputs() int                         { return len(c.ins) }
func (c *fakeCtx) NumOutputs() int                        { return len(c.outs) }
func (c *fakeCtx) InputSchema(i int) *tuple.Schema        { return c.ins[i] }
func (c *fakeCtx) OutputSchema(i int) *tuple.Schema       { return c.outs[i] }
func (c *fakeCtx) Clock() vclock.Clock                    { return c.clock }
func (c *fakeCtx) Done() <-chan struct{}                  { return nil }
func (c *fakeCtx) Logf(string, ...any)                    {}
func (c *fakeCtx) CustomMetric(n string) *metrics.Counter { return c.om.Custom.Counter(n) }

func (c *fakeCtx) Submit(i int, t tuple.Tuple) error {
	if i < 0 || i >= len(c.outs) {
		return fmt.Errorf("bad port %d", i)
	}
	c.emitted[i] = append(c.emitted[i], t)
	return nil
}

func (c *fakeCtx) SubmitMark(i int, m tuple.Mark) error {
	c.marks[i] = append(c.marks[i], m)
	return nil
}

var (
	intS   = tuple.MustSchema(tuple.Attribute{Name: "seq", Type: tuple.Int})
	mixedS = tuple.MustSchema(
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "price", Type: tuple.Float},
		tuple.Attribute{Name: "sym", Type: tuple.String},
		tuple.Attribute{Name: "live", Type: tuple.Bool},
	)
)

func mixed(seq int64, price float64, sym string, live bool) tuple.Tuple {
	return tuple.Build(mixedS).Int("seq", seq).Float("price", price).Str("sym", sym).Bool("live", live).Done()
}

func TestBeaconEmitsCountTuples(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"count": "5"}, nil, []*tuple.Schema{intS})
	b := &beacon{}
	if err := b.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(make(chan struct{})); err != nil {
		t.Fatal(err)
	}
	got := ctx.emitted[0]
	if len(got) != 5 {
		t.Fatalf("emitted %d", len(got))
	}
	for i, tp := range got {
		if tp.Int("seq") != int64(i) {
			t.Fatalf("seq[%d] = %d", i, tp.Int("seq"))
		}
	}
}

func TestBeaconStops(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"count": "0"}, nil, []*tuple.Schema{intS})
	b := &beacon{}
	if err := b.Open(ctx); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	if err := b.Run(stop); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted[0]) != 0 {
		t.Fatalf("emitted %d after immediate stop", len(ctx.emitted[0]))
	}
}

func TestBeaconRequiresOneOutput(t *testing.T) {
	ctx := newFakeCtx(nil, nil, nil)
	if err := (&beacon{}).Open(ctx); err == nil {
		t.Fatal("Beacon accepted zero outputs")
	}
}

func TestFilterNumericPredicates(t *testing.T) {
	cases := []struct {
		op   string
		val  string
		pass bool
	}{
		{"eq", "5", true}, {"eq", "4", false},
		{"ne", "4", true}, {"ne", "5", false},
		{"lt", "6", true}, {"lt", "5", false},
		{"le", "5", true}, {"le", "4", false},
		{"gt", "4", true}, {"gt", "5", false},
		{"ge", "5", true}, {"ge", "6", false},
	}
	for _, tc := range cases {
		ctx := newFakeCtx(opapi.Params{"attr": "seq", "op": tc.op, "value": tc.val},
			[]*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
		f := &filter{}
		if err := f.Open(ctx); err != nil {
			t.Fatal(err)
		}
		if err := f.Process(0, mixed(5, 0, "", false)); err != nil {
			t.Fatal(err)
		}
		got := len(ctx.emitted[0]) == 1
		if got != tc.pass {
			t.Fatalf("op=%s val=%s: pass=%v want %v", tc.op, tc.val, got, tc.pass)
		}
		if !tc.pass && ctx.om.Custom.Counter("nTuplesDropped").Value() != 1 {
			t.Fatalf("op=%s: drop metric not maintained", tc.op)
		}
	}
}

func TestFilterStringAndBool(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"attr": "sym", "op": "contains", "value": "BM"},
		[]*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
	f := &filter{}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_ = f.Process(0, mixed(0, 0, "IBM", false))
	_ = f.Process(0, mixed(0, 0, "AAPL", false))
	if len(ctx.emitted[0]) != 1 {
		t.Fatalf("contains filter passed %d", len(ctx.emitted[0]))
	}
	ctx2 := newFakeCtx(opapi.Params{"attr": "live", "op": "eq", "value": "true"},
		[]*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
	f2 := &filter{}
	if err := f2.Open(ctx2); err != nil {
		t.Fatal(err)
	}
	_ = f2.Process(0, mixed(0, 0, "", true))
	_ = f2.Process(0, mixed(0, 0, "", false))
	if len(ctx2.emitted[0]) != 1 {
		t.Fatalf("bool filter passed %d", len(ctx2.emitted[0]))
	}
}

func TestFilterEmptyAttrPassesAll(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{}, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
	f := &filter{}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_ = f.Process(0, mixed(1, 0, "", false))
	if len(ctx.emitted[0]) != 1 {
		t.Fatal("pass-through filter dropped a tuple")
	}
}

func TestFilterOpenErrors(t *testing.T) {
	bad := []opapi.Params{
		{"attr": "ghost", "value": "1"},
		{"attr": "seq", "op": "zz", "value": "1"},
		{"attr": "seq", "value": "notanint"},
		{"attr": "price", "value": "notafloat"},
		{"attr": "live", "value": "notabool"},
		{"attr": "sym", "op": "lt", "value": "x"},
	}
	for i, p := range bad {
		ctx := newFakeCtx(p, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
		if err := (&filter{}).Open(ctx); err == nil {
			t.Fatalf("case %d: bad params accepted: %v", i, p)
		}
	}
}

func TestDynamicFilterControl(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"attr": "seq", "op": "lt", "value": "10"},
		[]*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
	f := &dynamicFilter{}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_ = f.Process(0, mixed(5, 0, "", false))
	if len(ctx.emitted[0]) != 1 {
		t.Fatal("initial predicate failed")
	}
	if err := f.Control("setPredicate", map[string]string{"attr": "seq", "op": "gt", "value": "100"}); err != nil {
		t.Fatal(err)
	}
	_ = f.Process(0, mixed(5, 0, "", false))
	if len(ctx.emitted[0]) != 1 {
		t.Fatal("new predicate not applied")
	}
	if err := f.Control("bogus", nil); err == nil {
		t.Fatal("bogus command accepted")
	}
	if err := f.Control("setPredicate", map[string]string{"attr": "ghost"}); err == nil {
		t.Fatal("bad predicate accepted")
	}
}

func TestFunctorCopyAndTransforms(t *testing.T) {
	outS := tuple.MustSchema(
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "price", Type: tuple.Float},
		tuple.Attribute{Name: "sym", Type: tuple.String},
	)
	ctx := newFakeCtx(opapi.Params{"addInt": "seq:10", "scale": "price:2", "setStr": "sym:fixed"},
		[]*tuple.Schema{mixedS}, []*tuple.Schema{outS})
	f := &functor{}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Process(0, mixed(5, 1.5, "orig", true)); err != nil {
		t.Fatal(err)
	}
	out := ctx.emitted[0][0]
	if out.Int("seq") != 15 || out.Float("price") != 3.0 || out.String("sym") != "fixed" {
		t.Fatalf("functor output: %s", out.Format())
	}
}

func TestFunctorBadSpecs(t *testing.T) {
	for _, p := range []opapi.Params{
		{"addInt": "noseparator"},
		{"addInt": "seq:notanumber"},
		{"scale": "price:notanumber"},
		{"setStr": ":"},
	} {
		ctx := newFakeCtx(p, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
		if err := (&functor{}).Open(ctx); err == nil {
			t.Fatalf("bad spec accepted: %v", p)
		}
	}
}

func TestSplitRoundRobin(t *testing.T) {
	ctx := newFakeCtx(nil, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS, mixedS})
	s := &split{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_ = s.Process(0, mixed(int64(i), 0, "", false))
	}
	if len(ctx.emitted[0]) != 2 || len(ctx.emitted[1]) != 2 {
		t.Fatalf("round robin: %d/%d", len(ctx.emitted[0]), len(ctx.emitted[1]))
	}
}

func TestSplitDuplicate(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"mode": "duplicate"}, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS, mixedS})
	s := &split{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_ = s.Process(0, mixed(1, 0, "", false))
	if len(ctx.emitted[0]) != 1 || len(ctx.emitted[1]) != 1 {
		t.Fatal("duplicate mode did not fan out")
	}
}

func TestSplitHashIsStable(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"mode": "hash", "attr": "sym"}, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS, mixedS})
	s := &split{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_ = s.Process(0, mixed(0, 0, "IBM", false))
	}
	if !(len(ctx.emitted[0]) == 3 || len(ctx.emitted[1]) == 3) {
		t.Fatalf("hash split scattered one key: %d/%d", len(ctx.emitted[0]), len(ctx.emitted[1]))
	}
}

func TestSplitBadParams(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"mode": "hash"}, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
	if err := (&split{}).Open(ctx); err == nil {
		t.Fatal("hash without attr accepted")
	}
	ctx2 := newFakeCtx(opapi.Params{"mode": "zigzag"}, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
	if err := (&split{}).Open(ctx2); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestMergeForwards(t *testing.T) {
	ctx := newFakeCtx(nil, []*tuple.Schema{mixedS, mixedS}, []*tuple.Schema{mixedS})
	m := &merge{}
	if err := m.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_ = m.Process(0, mixed(1, 0, "", false))
	_ = m.Process(1, mixed(2, 0, "", false))
	if len(ctx.emitted[0]) != 2 {
		t.Fatalf("merge emitted %d", len(ctx.emitted[0]))
	}
}

func TestThrottleSleepsPerTuple(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"period": "10ms"}, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})
	manual := ctx.clock.(*vclock.Manual)
	th := &throttle{}
	if err := th.Open(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = th.Process(0, mixed(1, 0, "", false))
		close(done)
	}()
	manual.BlockUntilWaiters(1)
	manual.Advance(10 * time.Millisecond)
	<-done
	if len(ctx.emitted[0]) != 1 {
		t.Fatal("throttle lost the tuple")
	}
}

var aggOutS = tuple.MustSchema(
	tuple.Attribute{Name: "sym", Type: tuple.String},
	tuple.Attribute{Name: "min", Type: tuple.Float},
	tuple.Attribute{Name: "max", Type: tuple.Float},
	tuple.Attribute{Name: "avg", Type: tuple.Float},
	tuple.Attribute{Name: "bbUpper", Type: tuple.Float},
	tuple.Attribute{Name: "bbLower", Type: tuple.Float},
	tuple.Attribute{Name: "count", Type: tuple.Int},
)

func TestAggregateSlidingWindow(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"window": "10s", "groupBy": "sym", "valueAttr": "price"},
		[]*tuple.Schema{mixedS}, []*tuple.Schema{aggOutS})
	manual := ctx.clock.(*vclock.Manual)
	a := &aggregate{}
	if err := a.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i, price := range []float64{10, 20, 30} {
		_ = a.Process(0, mixed(int64(i), price, "IBM", false))
		manual.Advance(time.Second)
	}
	out := ctx.emitted[0][2]
	if out.String("sym") != "IBM" || out.Float("min") != 10 || out.Float("max") != 30 || out.Float("avg") != 20 || out.Int("count") != 3 {
		t.Fatalf("window stats: %s", out.Format())
	}
	if out.Float("bbUpper") <= out.Float("avg") || out.Float("bbLower") >= out.Float("avg") {
		t.Fatalf("bollinger bands wrong: %s", out.Format())
	}
	// Advance past the window: old samples evicted.
	manual.Advance(20 * time.Second)
	_ = a.Process(0, mixed(3, 100, "IBM", false))
	out = ctx.emitted[0][3]
	if out.Int("count") != 1 || out.Float("min") != 100 {
		t.Fatalf("eviction failed: %s", out.Format())
	}
}

func TestAggregateGroupsAreIndependent(t *testing.T) {
	ctx := newFakeCtx(opapi.Params{"window": "1h", "groupBy": "sym", "valueAttr": "price"},
		[]*tuple.Schema{mixedS}, []*tuple.Schema{aggOutS})
	a := &aggregate{}
	if err := a.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_ = a.Process(0, mixed(0, 10, "IBM", false))
	_ = a.Process(0, mixed(0, 99, "AAPL", false))
	out := ctx.emitted[0][1]
	if out.String("sym") != "AAPL" || out.Int("count") != 1 || out.Float("avg") != 99 {
		t.Fatalf("groups mixed: %s", out.Format())
	}
}

func TestAggregateOpenErrors(t *testing.T) {
	for _, p := range []opapi.Params{
		{"groupBy": "sym", "valueAttr": "price"},                  // no window
		{"window": "10s", "groupBy": "sym"},                       // no valueAttr
		{"window": "10s", "groupBy": "sym", "valueAttr": "sym"},   // non-float
		{"window": "10s", "groupBy": "sym", "valueAttr": "ghost"}, // missing
	} {
		ctx := newFakeCtx(p, []*tuple.Schema{mixedS}, []*tuple.Schema{aggOutS})
		if err := (&aggregate{}).Open(ctx); err == nil {
			t.Fatalf("bad params accepted: %v", p)
		}
	}
}

func TestCollectSinkAndRegistry(t *testing.T) {
	ResetCollector("c1")
	ctx := newFakeCtx(opapi.Params{"collectorId": "c1"}, []*tuple.Schema{mixedS}, nil)
	s := &collectSink{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_ = s.Process(0, mixed(1, 0, "", false))
	_ = s.Process(0, mixed(2, 0, "", false))
	_ = s.ProcessMark(0, tuple.FinalMark)
	c := Collector("c1")
	if c.Len() != 2 || c.Finals() != 1 {
		t.Fatalf("collection: len=%d finals=%d", c.Len(), c.Finals())
	}
	last, ok := c.Last()
	if !ok || last.Int("seq") != 2 {
		t.Fatalf("Last() = %v, %v", last.Format(), ok)
	}
	c.Reset()
	if c.Len() != 0 || c.Finals() != 0 {
		t.Fatal("Reset did not clear")
	}
	if _, ok := c.Last(); ok {
		t.Fatal("Last on empty collection")
	}
}

func TestCollectSinkLimit(t *testing.T) {
	ResetCollector("lim")
	ctx := newFakeCtx(opapi.Params{"collectorId": "lim", "limit": "2"}, []*tuple.Schema{mixedS}, nil)
	s := &collectSink{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		_ = s.Process(0, mixed(i, 0, "", false))
	}
	c := Collector("lim")
	got := c.Tuples()
	if len(got) != 2 || got[0].Int("seq") != 3 || got[1].Int("seq") != 4 {
		t.Fatalf("limited collection: %v", got)
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	ctx := newFakeCtx(opapi.Params{"path": path}, []*tuple.Schema{mixedS}, nil)
	s := &fileSink{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_ = s.Process(0, mixed(7, 0, "IBM", false))
	_ = s.ProcessMark(0, tuple.FinalMark)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "seq=7") || !strings.Contains(string(data), `sym="IBM"`) {
		t.Fatalf("file contents: %q", data)
	}
}

func TestFileSinkRequiresPath(t *testing.T) {
	ctx := newFakeCtx(nil, []*tuple.Schema{mixedS}, nil)
	if err := (&fileSink{}).Open(ctx); err == nil {
		t.Fatal("FileSink accepted missing path")
	}
}

func TestCountSink(t *testing.T) {
	ctx := newFakeCtx(nil, []*tuple.Schema{mixedS}, nil)
	s := &countSink{}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_ = s.Process(0, mixed(0, 0, "", false))
	}
	if ctx.om.Custom.Counter("nTuplesSeen").Value() != 3 {
		t.Fatal("nTuplesSeen wrong")
	}
}

func TestAllKindsRegistered(t *testing.T) {
	for _, kind := range []string{
		KindBeacon, KindFilter, KindDynamicFilter, KindFunctor, KindSplit,
		KindMerge, KindThrottle, KindAggregate, KindCollectSink, KindFileSink, KindCountSink,
	} {
		if _, err := opapi.Default.New(kind); err != nil {
			t.Fatalf("kind %s not registered: %v", kind, err)
		}
		// Every built-in must also carry an operator model, so the
		// compiler validates its configuration at Build time.
		if opapi.Default.Model(kind) == nil {
			t.Fatalf("kind %s registered without an operator model", kind)
		}
	}
}

// TestMalformedParamsFailOpen verifies the built-ins no longer swallow
// malformed parameter values into silent defaults: a present but
// unparseable value fails Open (the runtime backstop behind Build-time
// model validation, e.g. for values substituted at submission time).
func TestMalformedParamsFailOpen(t *testing.T) {
	cases := []struct {
		name string
		op   opapi.Operator
		ctx  *fakeCtx
	}{
		{"beacon count", &beacon{}, newFakeCtx(opapi.Params{"count": "ten"}, nil, []*tuple.Schema{intS})},
		{"beacon period", &beacon{}, newFakeCtx(opapi.Params{"period": "soon"}, nil, []*tuple.Schema{intS})},
		{"throttle period", &throttle{}, newFakeCtx(opapi.Params{"period": "x"}, []*tuple.Schema{intS}, []*tuple.Schema{intS})},
		{"filter op", &filter{}, newFakeCtx(opapi.Params{"attr": "seq", "op": "startswith", "value": "1"}, []*tuple.Schema{intS}, []*tuple.Schema{intS})},
		{"split mode", &split{}, newFakeCtx(opapi.Params{"mode": "random"}, []*tuple.Schema{intS}, []*tuple.Schema{intS})},
		{"aggregate window", &aggregate{}, newFakeCtx(opapi.Params{"window": "wide", "valueAttr": "price"}, []*tuple.Schema{mixedS}, []*tuple.Schema{mixedS})},
		{"collect limit", &collectSink{}, newFakeCtx(opapi.Params{"limit": "lots"}, []*tuple.Schema{intS}, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.op.Open(tc.ctx); err == nil {
				t.Fatal("Open accepted a malformed parameter value")
			}
		})
	}
}
