package ops

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// filter passes tuples matching a single-attribute predicate and counts
// discards in the custom metric "nTuplesDropped" — the paper's example of
// an operator-specific custom metric (§2.1).
//
// Parameters:
//
//	attr  string  attribute to test
//	op    string  eq | ne | lt | le | gt | ge | contains (default eq)
//	value string  comparison value (parsed per attribute type)
type filter struct {
	opapi.Base
	ctx  opapi.Context
	pred func(tuple.Tuple) bool
}

func (f *filter) Open(ctx opapi.Context) error {
	f.ctx = ctx
	p := ctx.Params()
	op, err := p.BindEnum("op", "eq", comparisonOps...)
	if err != nil {
		return fmt.Errorf("Filter %s: %w", ctx.Name(), err)
	}
	pred, err := buildPredicate(ctx.InputSchema(0), p.Get("attr", ""), op, p.Get("value", ""))
	if err != nil {
		return fmt.Errorf("Filter %s: %w", ctx.Name(), err)
	}
	f.pred = pred
	return nil
}

func (f *filter) Process(port int, t tuple.Tuple) error {
	if f.pred(t) {
		return f.ctx.Submit(0, t)
	}
	f.ctx.CustomMetric(MetricTuplesDropped).Inc()
	return nil
}

// ProcessBatch runs the compiled predicate over the whole run and
// accounts discards once, keeping the per-tuple work to predicate +
// submit.
func (f *filter) ProcessBatch(port int, b *tuple.Batch) error {
	pred := f.pred
	dropped := 0
	for _, t := range b.Tuples() {
		if !pred(t) {
			dropped++
			continue
		}
		if err := f.ctx.Submit(0, t); err != nil {
			return err
		}
	}
	if dropped > 0 {
		f.ctx.CustomMetric(MetricTuplesDropped).Add(int64(dropped))
	}
	return nil
}

// dynamicFilter is a filter whose predicate can be replaced at runtime by
// an orchestrator control command — the paper's example of a local,
// operator-level adaptation the orchestrator complements rather than
// replaces (§3). Command "setPredicate" takes args attr/op/value.
type dynamicFilter struct {
	opapi.Base
	ctx  opapi.Context
	mu   sync.Mutex
	pred func(tuple.Tuple) bool
}

func (f *dynamicFilter) Open(ctx opapi.Context) error {
	f.ctx = ctx
	p := ctx.Params()
	op, err := p.BindEnum("op", "eq", comparisonOps...)
	if err != nil {
		return fmt.Errorf("DynamicFilter %s: %w", ctx.Name(), err)
	}
	pred, err := buildPredicate(ctx.InputSchema(0), p.Get("attr", ""), op, p.Get("value", ""))
	if err != nil {
		return fmt.Errorf("DynamicFilter %s: %w", ctx.Name(), err)
	}
	f.pred = pred
	return nil
}

func (f *dynamicFilter) Process(port int, t tuple.Tuple) error {
	f.mu.Lock()
	pass := f.pred(t)
	f.mu.Unlock()
	if pass {
		return f.ctx.Submit(0, t)
	}
	f.ctx.CustomMetric(MetricTuplesDropped).Inc()
	return nil
}

// ProcessBatch snapshots the predicate once per batch — one lock
// acquisition instead of one per tuple; a concurrent setPredicate takes
// effect at the next batch boundary, which per-tuple delivery never
// promised tighter than anyway.
func (f *dynamicFilter) ProcessBatch(port int, b *tuple.Batch) error {
	f.mu.Lock()
	pred := f.pred
	f.mu.Unlock()
	dropped := 0
	for _, t := range b.Tuples() {
		if !pred(t) {
			dropped++
			continue
		}
		if err := f.ctx.Submit(0, t); err != nil {
			return err
		}
	}
	if dropped > 0 {
		f.ctx.CustomMetric(MetricTuplesDropped).Add(int64(dropped))
	}
	return nil
}

func (f *dynamicFilter) Control(cmd string, args map[string]string) error {
	if cmd != "setPredicate" {
		return fmt.Errorf("DynamicFilter: unknown command %q", cmd)
	}
	pred, err := buildPredicate(f.ctx.InputSchema(0), args["attr"], args["op"], args["value"])
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.pred = pred
	f.mu.Unlock()
	return nil
}

// buildPredicate compiles a simple typed comparison: the attribute name
// resolves to a FieldRef once here, so the returned predicate reads the
// tuple's typed storage directly with no per-tuple name lookup. An empty
// attr yields an always-true predicate.
func buildPredicate(schema *tuple.Schema, attr, op, value string) (func(tuple.Tuple) bool, error) {
	if attr == "" {
		return func(tuple.Tuple) bool { return true }, nil
	}
	ref, err := schema.Ref(attr)
	if err != nil {
		return nil, fmt.Errorf("no attribute %q in %s", attr, schema)
	}
	switch ref.Type() {
	case tuple.Int:
		want, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: bad int value %q", attr, value)
		}
		cmp, err := intCmp(op)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) bool { return cmp(ref.Int(t), want) }, nil
	case tuple.Float:
		want, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: bad float value %q", attr, value)
		}
		cmp, err := floatCmp(op)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) bool { return cmp(ref.Float(t), want) }, nil
	case tuple.String:
		switch op {
		case "eq":
			return func(t tuple.Tuple) bool { return ref.Str(t) == value }, nil
		case "ne":
			return func(t tuple.Tuple) bool { return ref.Str(t) != value }, nil
		case "contains":
			return func(t tuple.Tuple) bool { return strings.Contains(ref.Str(t), value) }, nil
		default:
			return nil, fmt.Errorf("operator %q unsupported for strings", op)
		}
	case tuple.Bool:
		want, err := strconv.ParseBool(value)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: bad bool value %q", attr, value)
		}
		switch op {
		case "eq":
			return func(t tuple.Tuple) bool { return ref.Bool(t) == want }, nil
		case "ne":
			return func(t tuple.Tuple) bool { return ref.Bool(t) != want }, nil
		default:
			return nil, fmt.Errorf("operator %q unsupported for bools", op)
		}
	default:
		return nil, fmt.Errorf("attribute %q: unsupported type for filtering", attr)
	}
}

func intCmp(op string) (func(a, b int64) bool, error) {
	switch op {
	case "eq":
		return func(a, b int64) bool { return a == b }, nil
	case "ne":
		return func(a, b int64) bool { return a != b }, nil
	case "lt":
		return func(a, b int64) bool { return a < b }, nil
	case "le":
		return func(a, b int64) bool { return a <= b }, nil
	case "gt":
		return func(a, b int64) bool { return a > b }, nil
	case "ge":
		return func(a, b int64) bool { return a >= b }, nil
	default:
		return nil, fmt.Errorf("unknown comparison %q", op)
	}
}

func floatCmp(op string) (func(a, b float64) bool, error) {
	switch op {
	case "eq":
		return func(a, b float64) bool { return a == b }, nil
	case "ne":
		return func(a, b float64) bool { return a != b }, nil
	case "lt":
		return func(a, b float64) bool { return a < b }, nil
	case "le":
		return func(a, b float64) bool { return a <= b }, nil
	case "gt":
		return func(a, b float64) bool { return a > b }, nil
	case "ge":
		return func(a, b float64) bool { return a >= b }, nil
	default:
		return nil, fmt.Errorf("unknown comparison %q", op)
	}
}

// functor projects each input tuple onto the output schema (matching
// attribute names copy over) and optionally applies arithmetic to one
// attribute.
//
// Parameters:
//
//	addInt   string  "attr:delta"  add delta to an int64 attribute
//	scale    string  "attr:factor" multiply a float64 attribute
//	setStr   string  "attr:value"  overwrite a string attribute
type functor struct {
	opapi.Base
	ctx      opapi.Context
	addRef   tuple.FieldRef
	addDelta int64
	scaleRef tuple.FieldRef
	scaleBy  float64
	setRef   tuple.FieldRef
	setVal   string
	copies   []fieldCopy // compiled input-ref -> output-ref pairs
}

// fieldCopy moves one attribute between schemas through refs resolved at
// Open time, so Process does no name lookups.
type fieldCopy struct {
	in, out tuple.FieldRef
}

func (f *functor) Open(ctx opapi.Context) error {
	f.ctx = ctx
	p := ctx.Params()
	in, out := ctx.InputSchema(0), ctx.OutputSchema(0)
	if spec := p.Get("addInt", ""); spec != "" {
		attr, val, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("Functor %s: addInt: %w", ctx.Name(), err)
		}
		if f.addRef, err = out.TypedRef(attr, tuple.Int); err != nil {
			return fmt.Errorf("Functor %s: addInt: %w", ctx.Name(), err)
		}
		if f.addDelta, err = strconv.ParseInt(val, 10, 64); err != nil {
			return fmt.Errorf("Functor %s: addInt: %w", ctx.Name(), err)
		}
	}
	if spec := p.Get("scale", ""); spec != "" {
		attr, val, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("Functor %s: scale: %w", ctx.Name(), err)
		}
		if f.scaleRef, err = out.TypedRef(attr, tuple.Float); err != nil {
			return fmt.Errorf("Functor %s: scale: %w", ctx.Name(), err)
		}
		if f.scaleBy, err = strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("Functor %s: scale: %w", ctx.Name(), err)
		}
	}
	if spec := p.Get("setStr", ""); spec != "" {
		attr, val, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("Functor %s: setStr: %w", ctx.Name(), err)
		}
		if f.setRef, err = out.TypedRef(attr, tuple.String); err != nil {
			return fmt.Errorf("Functor %s: setStr: %w", ctx.Name(), err)
		}
		f.setVal = val
	}
	for i := 0; i < in.NumAttrs(); i++ {
		a := in.Attr(i)
		if j := out.Index(a.Name); j >= 0 && out.Attr(j).Type == a.Type {
			f.copies = append(f.copies, fieldCopy{in: in.MustRef(a.Name), out: out.MustRef(a.Name)})
		}
	}
	return nil
}

func splitSpec(spec string) (attr, value string, err error) {
	i := strings.IndexByte(spec, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("malformed spec %q (want attr:value)", spec)
	}
	return spec[:i], spec[i+1:], nil
}

func (f *functor) Process(port int, t tuple.Tuple) error {
	out := tuple.New(f.ctx.OutputSchema(0))
	for _, c := range f.copies {
		switch c.in.Type() {
		case tuple.Int:
			c.out.SetInt(out, c.in.Int(t))
		case tuple.Float:
			c.out.SetFloat(out, c.in.Float(t))
		case tuple.String:
			c.out.SetStr(out, c.in.Str(t))
		case tuple.Bool:
			c.out.SetBool(out, c.in.Bool(t))
		case tuple.Timestamp:
			c.out.SetTime(out, c.in.Time(t))
		}
	}
	if f.addRef.Valid() {
		f.addRef.SetInt(out, f.addRef.Int(out)+f.addDelta)
	}
	if f.scaleRef.Valid() {
		f.scaleRef.SetFloat(out, f.scaleRef.Float(out)*f.scaleBy)
	}
	if f.setRef.Valid() {
		f.setRef.SetStr(out, f.setVal)
	}
	return f.ctx.Submit(0, out)
}

// ProcessBatch projects the whole run through column-wise loops: one
// block allocation covers every output tuple (the outputs escape
// downstream on Submit, so the block cannot be reused), and each
// compiled copy / arithmetic spec walks its column across all tuples —
// the type switch and ref bounds run once per column instead of once
// per tuple.
func (f *functor) ProcessBatch(port int, b *tuple.Batch) error {
	n := b.Len()
	outs := tuple.NewBlock(f.ctx.OutputSchema(0), n)
	ins := b.Tuples()
	for _, c := range f.copies {
		switch c.in.Type() {
		case tuple.Int:
			for i := range outs {
				c.out.SetInt(outs[i], c.in.Int(ins[i]))
			}
		case tuple.Float:
			for i := range outs {
				c.out.SetFloat(outs[i], c.in.Float(ins[i]))
			}
		case tuple.String:
			for i := range outs {
				c.out.SetStr(outs[i], c.in.Str(ins[i]))
			}
		case tuple.Bool:
			for i := range outs {
				c.out.SetBool(outs[i], c.in.Bool(ins[i]))
			}
		case tuple.Timestamp:
			for i := range outs {
				c.out.SetTime(outs[i], c.in.Time(ins[i]))
			}
		}
	}
	if f.addRef.Valid() {
		ref, delta := f.addRef, f.addDelta
		for i := range outs {
			ref.SetInt(outs[i], ref.Int(outs[i])+delta)
		}
	}
	if f.scaleRef.Valid() {
		ref, by := f.scaleRef, f.scaleBy
		for i := range outs {
			ref.SetFloat(outs[i], ref.Float(outs[i])*by)
		}
	}
	if f.setRef.Valid() {
		ref, val := f.setRef, f.setVal
		for i := range outs {
			ref.SetStr(outs[i], val)
		}
	}
	for i := range outs {
		if err := f.ctx.Submit(0, outs[i]); err != nil {
			return err
		}
	}
	return nil
}

// split routes each input tuple to one (or all) of its output ports.
//
// Parameters:
//
//	mode string  roundrobin (default) | duplicate | hash
//	attr string  hashing attribute for mode=hash
type split struct {
	opapi.Base
	ctx    opapi.Context
	mode   string
	attr   string
	strRef tuple.FieldRef // set when attr is a string attribute
	intRef tuple.FieldRef // set when attr is an int attribute
	next   int
}

func (s *split) Open(ctx opapi.Context) error {
	s.ctx = ctx
	var err error
	if s.mode, err = ctx.Params().BindEnum("mode", "roundrobin", splitModes...); err != nil {
		return fmt.Errorf("Split %s: %w", ctx.Name(), err)
	}
	s.attr = ctx.Params().Get("attr", "")
	switch s.mode {
	case "roundrobin", "duplicate":
	case "hash":
		if s.attr == "" {
			return fmt.Errorf("Split %s: mode=hash needs attr", ctx.Name())
		}
		// Resolve the hashing attribute once; mistyped or missing slots
		// hash as zero values, as the name-based API used to.
		if ref, err := ctx.InputSchema(0).TypedRef(s.attr, tuple.String); err == nil {
			s.strRef = ref
		}
		if ref, err := ctx.InputSchema(0).TypedRef(s.attr, tuple.Int); err == nil {
			s.intRef = ref
		}
	default:
		return fmt.Errorf("Split %s: unknown mode %q", ctx.Name(), s.mode)
	}
	return nil
}

func (s *split) Process(port int, t tuple.Tuple) error {
	n := s.ctx.NumOutputs()
	switch s.mode {
	case "duplicate":
		for i := 0; i < n; i++ {
			if err := s.ctx.Submit(i, t.Clone()); err != nil {
				return err
			}
		}
		return nil
	case "hash":
		// opapi.PartitionOf is the one routing function: parallel-region
		// state migration (SplitState) hashes keys through the same code,
		// so a migrated key's tuples keep landing on the replica that now
		// holds the key's state.
		var sv string
		var iv int64
		if s.strRef.Valid() {
			sv = s.strRef.Str(t)
		}
		if s.intRef.Valid() {
			iv = s.intRef.Int(t)
		}
		return s.ctx.Submit(opapi.PartitionOf(sv, iv, n), t)
	default: // roundrobin
		i := s.next % n
		s.next++
		return s.ctx.Submit(i, t)
	}
}

// merge forwards tuples from all input ports to output port 0, preserving
// per-port arrival order.
type merge struct {
	opapi.Base
	ctx opapi.Context
}

func (m *merge) Open(ctx opapi.Context) error { m.ctx = ctx; return nil }

func (m *merge) Process(port int, t tuple.Tuple) error { return m.ctx.Submit(0, t) }

// ProcessBatch forwards the run tuple by tuple; with a batch-capable
// downstream the runtime coalesces the submits back into one batch, so
// a merge between two batch operators keeps the frame intact.
func (m *merge) ProcessBatch(port int, b *tuple.Batch) error {
	for _, t := range b.Tuples() {
		if err := m.ctx.Submit(0, t); err != nil {
			return err
		}
	}
	return nil
}
