package ops

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"

	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// filter passes tuples matching a single-attribute predicate and counts
// discards in the custom metric "nTuplesDropped" — the paper's example of
// an operator-specific custom metric (§2.1).
//
// Parameters:
//
//	attr  string  attribute to test
//	op    string  eq | ne | lt | le | gt | ge | contains (default eq)
//	value string  comparison value (parsed per attribute type)
type filter struct {
	opapi.Base
	ctx  opapi.Context
	pred func(tuple.Tuple) bool
}

func (f *filter) Open(ctx opapi.Context) error {
	f.ctx = ctx
	p := ctx.Params()
	pred, err := buildPredicate(ctx.InputSchema(0), p.Get("attr", ""), p.Get("op", "eq"), p.Get("value", ""))
	if err != nil {
		return fmt.Errorf("Filter %s: %w", ctx.Name(), err)
	}
	f.pred = pred
	return nil
}

func (f *filter) Process(port int, t tuple.Tuple) error {
	if f.pred(t) {
		return f.ctx.Submit(0, t)
	}
	f.ctx.CustomMetric("nTuplesDropped").Inc()
	return nil
}

// dynamicFilter is a filter whose predicate can be replaced at runtime by
// an orchestrator control command — the paper's example of a local,
// operator-level adaptation the orchestrator complements rather than
// replaces (§3). Command "setPredicate" takes args attr/op/value.
type dynamicFilter struct {
	opapi.Base
	ctx  opapi.Context
	mu   sync.Mutex
	pred func(tuple.Tuple) bool
}

func (f *dynamicFilter) Open(ctx opapi.Context) error {
	f.ctx = ctx
	p := ctx.Params()
	pred, err := buildPredicate(ctx.InputSchema(0), p.Get("attr", ""), p.Get("op", "eq"), p.Get("value", ""))
	if err != nil {
		return fmt.Errorf("DynamicFilter %s: %w", ctx.Name(), err)
	}
	f.pred = pred
	return nil
}

func (f *dynamicFilter) Process(port int, t tuple.Tuple) error {
	f.mu.Lock()
	pass := f.pred(t)
	f.mu.Unlock()
	if pass {
		return f.ctx.Submit(0, t)
	}
	f.ctx.CustomMetric("nTuplesDropped").Inc()
	return nil
}

func (f *dynamicFilter) Control(cmd string, args map[string]string) error {
	if cmd != "setPredicate" {
		return fmt.Errorf("DynamicFilter: unknown command %q", cmd)
	}
	pred, err := buildPredicate(f.ctx.InputSchema(0), args["attr"], args["op"], args["value"])
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.pred = pred
	f.mu.Unlock()
	return nil
}

// buildPredicate compiles a simple typed comparison. An empty attr yields
// an always-true predicate.
func buildPredicate(schema *tuple.Schema, attr, op, value string) (func(tuple.Tuple) bool, error) {
	if attr == "" {
		return func(tuple.Tuple) bool { return true }, nil
	}
	idx := schema.Index(attr)
	if idx < 0 {
		return nil, fmt.Errorf("no attribute %q in %s", attr, schema)
	}
	switch schema.Attr(idx).Type {
	case tuple.Int:
		want, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: bad int value %q", attr, value)
		}
		cmp, err := intCmp(op)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) bool { return cmp(t.Int(attr), want) }, nil
	case tuple.Float:
		want, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: bad float value %q", attr, value)
		}
		cmp, err := floatCmp(op)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) bool { return cmp(t.Float(attr), want) }, nil
	case tuple.String:
		switch op {
		case "eq":
			return func(t tuple.Tuple) bool { return t.String(attr) == value }, nil
		case "ne":
			return func(t tuple.Tuple) bool { return t.String(attr) != value }, nil
		case "contains":
			return func(t tuple.Tuple) bool { return strings.Contains(t.String(attr), value) }, nil
		default:
			return nil, fmt.Errorf("operator %q unsupported for strings", op)
		}
	case tuple.Bool:
		want, err := strconv.ParseBool(value)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: bad bool value %q", attr, value)
		}
		switch op {
		case "eq":
			return func(t tuple.Tuple) bool { return t.Bool(attr) == want }, nil
		case "ne":
			return func(t tuple.Tuple) bool { return t.Bool(attr) != want }, nil
		default:
			return nil, fmt.Errorf("operator %q unsupported for bools", op)
		}
	default:
		return nil, fmt.Errorf("attribute %q: unsupported type for filtering", attr)
	}
}

func intCmp(op string) (func(a, b int64) bool, error) {
	switch op {
	case "eq":
		return func(a, b int64) bool { return a == b }, nil
	case "ne":
		return func(a, b int64) bool { return a != b }, nil
	case "lt":
		return func(a, b int64) bool { return a < b }, nil
	case "le":
		return func(a, b int64) bool { return a <= b }, nil
	case "gt":
		return func(a, b int64) bool { return a > b }, nil
	case "ge":
		return func(a, b int64) bool { return a >= b }, nil
	default:
		return nil, fmt.Errorf("unknown comparison %q", op)
	}
}

func floatCmp(op string) (func(a, b float64) bool, error) {
	switch op {
	case "eq":
		return func(a, b float64) bool { return a == b }, nil
	case "ne":
		return func(a, b float64) bool { return a != b }, nil
	case "lt":
		return func(a, b float64) bool { return a < b }, nil
	case "le":
		return func(a, b float64) bool { return a <= b }, nil
	case "gt":
		return func(a, b float64) bool { return a > b }, nil
	case "ge":
		return func(a, b float64) bool { return a >= b }, nil
	default:
		return nil, fmt.Errorf("unknown comparison %q", op)
	}
}

// functor projects each input tuple onto the output schema (matching
// attribute names copy over) and optionally applies arithmetic to one
// attribute.
//
// Parameters:
//
//	addInt   string  "attr:delta"  add delta to an int64 attribute
//	scale    string  "attr:factor" multiply a float64 attribute
//	setStr   string  "attr:value"  overwrite a string attribute
type functor struct {
	opapi.Base
	ctx             opapi.Context
	addAttr         string
	addDelta        int64
	scaleAttr       string
	scaleBy         float64
	setAttr, setVal string
	copyIdx         [][2]int // input index -> output index
}

func (f *functor) Open(ctx opapi.Context) error {
	f.ctx = ctx
	p := ctx.Params()
	if spec := p.Get("addInt", ""); spec != "" {
		attr, val, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("Functor %s: addInt: %w", ctx.Name(), err)
		}
		f.addAttr = attr
		if f.addDelta, err = strconv.ParseInt(val, 10, 64); err != nil {
			return fmt.Errorf("Functor %s: addInt: %w", ctx.Name(), err)
		}
	}
	if spec := p.Get("scale", ""); spec != "" {
		attr, val, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("Functor %s: scale: %w", ctx.Name(), err)
		}
		f.scaleAttr = attr
		if f.scaleBy, err = strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("Functor %s: scale: %w", ctx.Name(), err)
		}
	}
	if spec := p.Get("setStr", ""); spec != "" {
		attr, val, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("Functor %s: setStr: %w", ctx.Name(), err)
		}
		f.setAttr, f.setVal = attr, val
	}
	in, out := ctx.InputSchema(0), ctx.OutputSchema(0)
	for i := 0; i < in.NumAttrs(); i++ {
		a := in.Attr(i)
		if j := out.Index(a.Name); j >= 0 && out.Attr(j).Type == a.Type {
			f.copyIdx = append(f.copyIdx, [2]int{i, j})
		}
	}
	return nil
}

func splitSpec(spec string) (attr, value string, err error) {
	i := strings.IndexByte(spec, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("malformed spec %q (want attr:value)", spec)
	}
	return spec[:i], spec[i+1:], nil
}

func (f *functor) Process(port int, t tuple.Tuple) error {
	in := f.ctx.InputSchema(0)
	out := tuple.New(f.ctx.OutputSchema(0))
	for _, pair := range f.copyIdx {
		a := in.Attr(pair[0])
		switch a.Type {
		case tuple.Int:
			_ = out.SetInt(a.Name, t.Int(a.Name))
		case tuple.Float:
			_ = out.SetFloat(a.Name, t.Float(a.Name))
		case tuple.String:
			_ = out.SetString(a.Name, t.String(a.Name))
		case tuple.Bool:
			_ = out.SetBool(a.Name, t.Bool(a.Name))
		case tuple.Timestamp:
			_ = out.SetTime(a.Name, t.Time(a.Name))
		}
	}
	if f.addAttr != "" {
		_ = out.SetInt(f.addAttr, out.Int(f.addAttr)+f.addDelta)
	}
	if f.scaleAttr != "" {
		_ = out.SetFloat(f.scaleAttr, out.Float(f.scaleAttr)*f.scaleBy)
	}
	if f.setAttr != "" {
		_ = out.SetString(f.setAttr, f.setVal)
	}
	return f.ctx.Submit(0, out)
}

// split routes each input tuple to one (or all) of its output ports.
//
// Parameters:
//
//	mode string  roundrobin (default) | duplicate | hash
//	attr string  hashing attribute for mode=hash
type split struct {
	opapi.Base
	ctx  opapi.Context
	mode string
	attr string
	next int
}

func (s *split) Open(ctx opapi.Context) error {
	s.ctx = ctx
	s.mode = ctx.Params().Get("mode", "roundrobin")
	s.attr = ctx.Params().Get("attr", "")
	switch s.mode {
	case "roundrobin", "duplicate":
	case "hash":
		if s.attr == "" {
			return fmt.Errorf("Split %s: mode=hash needs attr", ctx.Name())
		}
	default:
		return fmt.Errorf("Split %s: unknown mode %q", ctx.Name(), s.mode)
	}
	return nil
}

func (s *split) Process(port int, t tuple.Tuple) error {
	n := s.ctx.NumOutputs()
	switch s.mode {
	case "duplicate":
		for i := 0; i < n; i++ {
			if err := s.ctx.Submit(i, t.Clone()); err != nil {
				return err
			}
		}
		return nil
	case "hash":
		h := fnv.New32a()
		fmt.Fprintf(h, "%s|%d", t.String(s.attr), t.Int(s.attr))
		return s.ctx.Submit(int(h.Sum32())%n, t)
	default: // roundrobin
		i := s.next % n
		s.next++
		return s.ctx.Submit(i, t)
	}
}

// merge forwards tuples from all input ports to output port 0, preserving
// per-port arrival order.
type merge struct {
	opapi.Base
	ctx opapi.Context
}

func (m *merge) Open(ctx opapi.Context) error { m.ctx = ctx; return nil }

func (m *merge) Process(port int, t tuple.Tuple) error { return m.ctx.Submit(0, t) }
