package ops

import (
	"bufio"
	"fmt"
	"os"
	"sync"

	"streamorca/internal/ckpt"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// Collection is an externally observable buffer of tuples produced by a
// CollectSink. Experiments and tests attach to it by id to observe
// application output (the stand-in for the paper's live GUI graphs in
// Figure 9).
type Collection struct {
	mu     sync.Mutex
	tuples []tuple.Tuple
	finals int
	limit  int
}

// Tuples returns a copy of the collected tuples.
func (c *Collection) Tuples() []tuple.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]tuple.Tuple(nil), c.tuples...)
}

// Len returns the number of collected tuples.
func (c *Collection) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tuples)
}

// Last returns the most recent tuple, if any.
func (c *Collection) Last() (tuple.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.tuples) == 0 {
		return tuple.Tuple{}, false
	}
	return c.tuples[len(c.tuples)-1], true
}

// Finals returns how many final punctuations the sink received.
func (c *Collection) Finals() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finals
}

// Reset clears the collection.
func (c *Collection) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tuples = nil
	c.finals = 0
}

func (c *Collection) add(t tuple.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tuples = append(c.tuples, t)
	if c.limit > 0 && len(c.tuples) > c.limit {
		c.tuples = c.tuples[len(c.tuples)-c.limit:]
	}
}

func (c *Collection) addFinal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finals++
}

var (
	collectionsMu sync.Mutex
	collections   = make(map[string]*Collection)
)

// Collector returns (creating if needed) the named collection.
func Collector(id string) *Collection {
	collectionsMu.Lock()
	defer collectionsMu.Unlock()
	c, ok := collections[id]
	if !ok {
		c = &Collection{}
		collections[id] = c
	}
	return c
}

// ResetCollector clears the named collection; tests call it between runs.
func ResetCollector(id string) { Collector(id).Reset() }

// collectSink stores received tuples into the Collection named by the
// "collectorId" parameter (default: the operator's own instance name).
//
// Parameters:
//
//	collectorId string  collection to append to
//	limit       int     keep only the most recent N tuples (0 = all)
type collectSink struct {
	opapi.Base
	coll *Collection
}

func (s *collectSink) Open(ctx opapi.Context) error {
	id := ctx.Params().Get("collectorId", ctx.Name())
	limit, err := ctx.Params().BindInt("limit", 0)
	if err != nil {
		return fmt.Errorf("CollectSink %s: %w", ctx.Name(), err)
	}
	s.coll = Collector(id)
	s.coll.mu.Lock()
	s.coll.limit = int(limit)
	s.coll.mu.Unlock()
	return nil
}

func (s *collectSink) Process(port int, t tuple.Tuple) error {
	s.coll.add(t)
	return nil
}

func (s *collectSink) ProcessMark(port int, m tuple.Mark) error {
	if m == tuple.FinalMark {
		s.coll.addFinal()
	}
	return nil
}

// fileSink appends one formatted line per tuple to a file.
//
// Parameters:
//
//	path string  output file (required)
type fileSink struct {
	opapi.Base
	f *os.File
	w *bufio.Writer
}

func (s *fileSink) Open(ctx opapi.Context) error {
	path := ctx.Params().Get("path", "")
	if path == "" {
		return fmt.Errorf("FileSink %s: path parameter required", ctx.Name())
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("FileSink %s: %w", ctx.Name(), err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return nil
}

func (s *fileSink) Process(port int, t tuple.Tuple) error {
	_, err := fmt.Fprintln(s.w, t.Format())
	return err
}

func (s *fileSink) ProcessMark(port int, m tuple.Mark) error {
	if m == tuple.FinalMark {
		return s.w.Flush()
	}
	return nil
}

func (s *fileSink) Close() error {
	if s.w != nil {
		_ = s.w.Flush()
	}
	if s.f != nil {
		return s.f.Close()
	}
	return nil
}

// countSink discards tuples, tracking only the custom metric
// "nTuplesSeen" — the cheapest possible sink for throughput benches.
// The counter is checkpointable state: on a checkpointing platform the
// count survives a PE restart instead of resetting to zero, which is
// what the recovery smoke scenario asserts on.
type countSink struct {
	opapi.Base
	ctx  opapi.Context
	seen *metrics.Counter
}

func (s *countSink) Open(ctx opapi.Context) error {
	s.ctx = ctx
	s.seen = ctx.CustomMetric(MetricTuplesSeen)
	return nil
}

func (s *countSink) Process(port int, t tuple.Tuple) error {
	s.seen.Inc()
	return nil
}

// ProcessBatch counts the whole run with one atomic add.
func (s *countSink) ProcessBatch(port int, b *tuple.Batch) error {
	s.seen.Add(int64(b.Len()))
	return nil
}

// SaveState snapshots the tuple count.
func (s *countSink) SaveState(e *ckpt.Encoder) error {
	e.PutInt(s.seen.Value())
	return nil
}

// RestoreState reinstates the tuple count into the fresh container's
// metric, so SRM-visible totals continue across the restart.
func (s *countSink) RestoreState(d *ckpt.Decoder) error {
	v := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	s.seen.Set(v)
	return nil
}
