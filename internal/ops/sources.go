package ops

import (
	"fmt"
	"time"

	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// beacon is the standard test/demo source: it emits sequentially numbered
// tuples on output port 0.
//
// Parameters:
//
//	count   int     number of tuples to emit; 0 or absent = unbounded
//	period  string  inter-tuple delay as a Go duration; absent = none
//	seqAttr string  int64 attribute receiving the sequence number
//	                (default "seq"; skipped if the schema lacks it)
type beacon struct {
	opapi.Base
	ctx     opapi.Context
	count   int64
	period  time.Duration
	seqAttr string
}

func (b *beacon) Open(ctx opapi.Context) error {
	b.ctx = ctx
	if ctx.NumOutputs() != 1 {
		return fmt.Errorf("Beacon %s: needs exactly 1 output port", ctx.Name())
	}
	cfg := ctx.Params().Bind()
	b.count = cfg.Int("count", 0)
	b.period = cfg.Duration("period", 0)
	b.seqAttr = cfg.Str("seqAttr", "seq")
	if err := cfg.Err(); err != nil {
		return fmt.Errorf("Beacon %s: %w", ctx.Name(), err)
	}
	return nil
}

func (b *beacon) Run(stop <-chan struct{}) error {
	schema := b.ctx.OutputSchema(0)
	var seqRef tuple.FieldRef
	if schema.Index(b.seqAttr) >= 0 {
		ref, err := schema.TypedRef(b.seqAttr, tuple.Int)
		if err != nil {
			return err
		}
		seqRef = ref
	}
	for i := int64(0); b.count == 0 || i < b.count; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		t := tuple.New(schema)
		if seqRef.Valid() {
			seqRef.SetInt(t, i)
		}
		if err := b.ctx.Submit(0, t); err != nil {
			return err
		}
		if !opapi.Sleep(b.ctx.Clock(), b.period, stop) {
			return nil
		}
	}
	return nil
}

// throttle delays each tuple by a fixed period, shaping downstream rates.
//
// Parameters:
//
//	period string  Go duration to sleep per tuple (default 0)
type throttle struct {
	opapi.Base
	ctx    opapi.Context
	period time.Duration
}

func (t *throttle) Open(ctx opapi.Context) error {
	t.ctx = ctx
	var err error
	if t.period, err = ctx.Params().BindDuration("period", 0); err != nil {
		return fmt.Errorf("Throttle %s: %w", ctx.Name(), err)
	}
	return nil
}

func (t *throttle) Process(port int, tp tuple.Tuple) error {
	if !opapi.Sleep(t.ctx.Clock(), t.period, t.ctx.Done()) {
		return nil // shutting down: drop
	}
	return t.ctx.Submit(0, tp)
}
