package ops

import (
	"fmt"
	"sync/atomic"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// beacon is the standard test/demo source: it emits sequentially numbered
// tuples on output port 0. The sequence cursor is checkpointable state:
// on a checkpointing platform a restarted beacon resumes numbering where
// the snapshot left off instead of starting over from zero.
//
// Parameters:
//
//	count   int     number of tuples to emit; 0 or absent = unbounded
//	period  string  inter-tuple delay as a Go duration; absent = none
//	seqAttr string  int64 attribute receiving the sequence number
//	                (default "seq"; skipped if the schema lacks it)
type beacon struct {
	opapi.Base
	ctx     opapi.Context
	count   int64
	period  time.Duration
	seqAttr string
	// next is the sequence cursor; atomic because SaveState runs
	// concurrently with the Run goroutine (sources have no processing
	// loop to serialise against).
	next atomic.Int64
}

func (b *beacon) Open(ctx opapi.Context) error {
	b.ctx = ctx
	if ctx.NumOutputs() != 1 {
		return fmt.Errorf("Beacon %s: needs exactly 1 output port", ctx.Name())
	}
	cfg := ctx.Params().Bind()
	b.count = cfg.Int("count", 0)
	b.period = cfg.Duration("period", 0)
	b.seqAttr = cfg.Str("seqAttr", "seq")
	if err := cfg.Err(); err != nil {
		return fmt.Errorf("Beacon %s: %w", ctx.Name(), err)
	}
	return nil
}

func (b *beacon) Run(stop <-chan struct{}) error {
	schema := b.ctx.OutputSchema(0)
	var seqRef tuple.FieldRef
	if schema.Index(b.seqAttr) >= 0 {
		ref, err := schema.TypedRef(b.seqAttr, tuple.Int)
		if err != nil {
			return err
		}
		seqRef = ref
	}
	for {
		i := b.next.Load()
		if b.count != 0 && i >= b.count {
			return nil
		}
		select {
		case <-stop:
			return nil
		default:
		}
		t := tuple.New(schema)
		if seqRef.Valid() {
			seqRef.SetInt(t, i)
		}
		if err := b.ctx.Submit(0, t); err != nil {
			return err
		}
		// Advance after the emit: a checkpoint between Submit and Add
		// re-emits the in-flight tuple on restart rather than skipping it.
		b.next.Store(i + 1)
		if !opapi.Sleep(b.ctx.Clock(), b.period, stop) {
			return nil
		}
	}
}

// SaveState snapshots the sequence cursor.
func (b *beacon) SaveState(e *ckpt.Encoder) error {
	e.PutInt(b.next.Load())
	return nil
}

// RestoreState resumes numbering from the snapshot's cursor.
func (b *beacon) RestoreState(d *ckpt.Decoder) error {
	v := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	b.next.Store(v)
	return nil
}

// throttle delays each tuple by a fixed period, shaping downstream rates.
//
// Parameters:
//
//	period string  Go duration to sleep per tuple (default 0)
type throttle struct {
	opapi.Base
	ctx    opapi.Context
	period time.Duration
}

func (t *throttle) Open(ctx opapi.Context) error {
	t.ctx = ctx
	var err error
	if t.period, err = ctx.Params().BindDuration("period", 0); err != nil {
		return fmt.Errorf("Throttle %s: %w", ctx.Name(), err)
	}
	return nil
}

func (t *throttle) Process(port int, tp tuple.Tuple) error {
	if !opapi.Sleep(t.ctx.Clock(), t.period, t.ctx.Done()) {
		return nil // shutting down: drop
	}
	return t.ctx.Submit(0, tp)
}
