package pe

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

// batchDoubler is a BatchOperator: ProcessBatch doubles whole runs,
// Process doubles singles. It records how each tuple arrived so tests
// can assert the delivery loop actually chose the batch path.
type batchDoubler struct {
	opapi.Base
	ctx opapi.Context

	mu         sync.Mutex
	batchCalls int
	tupleCalls int
	batchSizes []int
}

func (d *batchDoubler) Open(ctx opapi.Context) error { d.ctx = ctx; return nil }

func (d *batchDoubler) Process(port int, t tuple.Tuple) error {
	d.mu.Lock()
	d.tupleCalls++
	d.mu.Unlock()
	out := tuple.Build(d.ctx.OutputSchema(0)).Int("v", t.Int("v")*2).Done()
	return d.ctx.Submit(0, out)
}

func (d *batchDoubler) ProcessBatch(port int, b *tuple.Batch) error {
	d.mu.Lock()
	d.batchCalls++
	d.batchSizes = append(d.batchSizes, b.Len())
	d.mu.Unlock()
	ref := b.Schema().MustRef("v")
	out := tuple.NewBlock(d.ctx.OutputSchema(0), b.Len())
	for i, t := range b.Tuples() {
		ref.SetInt(out[i], ref.Int(t)*2)
		if err := d.ctx.Submit(0, out[i]); err != nil {
			return err
		}
	}
	return nil
}

func (d *batchDoubler) stats() (batches, tuples int, sizes []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.batchCalls, d.tupleCalls, append([]int(nil), d.batchSizes...)
}

// batchFailer fails the whole run once v reaches its trigger value.
type batchFailer struct {
	opapi.Base
	failAt int64
}

func (f *batchFailer) Process(port int, t tuple.Tuple) error {
	if t.Int("v") >= f.failAt {
		return errors.New("batch boom")
	}
	return nil
}

func (f *batchFailer) ProcessBatch(port int, b *tuple.Batch) error {
	ref := b.Schema().MustRef("v")
	for _, t := range b.Tuples() {
		if ref.Int(t) >= f.failAt {
			return errors.New("batch boom")
		}
	}
	return nil
}

// midFailer is per-tuple only: fails when it sees its trigger value.
type midFailer struct {
	opapi.Base
	failAt int64
}

func (f *midFailer) Process(port int, t tuple.Tuple) error {
	if t.Int("v") >= f.failAt {
		return errors.New("mid boom")
	}
	return nil
}

// feedInts pushes one batch of n int tuples (v = 0..n-1) through the
// operator's external batch inlet, followed by nothing — the test owns
// when (and whether) a final mark arrives.
func feedInts(t *testing.T, p *PE, op string, n int) {
	t.Helper()
	inlet, err := p.ExternalBatchInlet(op, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := GetBatch()
	block := tuple.NewBlock(intSchema, n)
	ref := intSchema.MustRef("v")
	for i := 0; i < n; i++ {
		ref.SetInt(block[i], int64(i))
		b.Items = append(b.Items, TupleItem(block[i]))
	}
	inlet(b)
}

func peCounter(p *PE, name string) int64 {
	c, ok := p.PEMetrics().Lookup(name)
	if !ok {
		return -1
	}
	return c.Value()
}

// TestBatchDelivery: a frame-sized batch reaches a BatchOperator as one
// ProcessBatch call, its outputs stay correct, and the coalesced
// intra-PE hop delivers the downstream sink a whole batch too.
func TestBatchDelivery(t *testing.T) {
	coll := &collector{}
	dbl := &batchDoubler{}
	reg := newTestRegistry(coll, 0)
	reg.Register("BatchDoubler", func() opapi.Operator { return dbl })
	p, err := New(Config{
		ID: 1, Job: 1, App: "batch", Host: "h1",
		Ops:      []OpSpec{midSpec("dbl", "BatchDoubler"), sinkSpec("sink")},
		Wires:    []Wire{{"dbl", 0, "sink", 0}},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	feedInts(t, p, "dbl", 16)
	waitCond(t, "all tuples at sink", func() bool { return len(coll.values()) == 16 })
	for i, v := range coll.values() {
		if v != int64(i*2) {
			t.Fatalf("sink[%d] = %d, want %d", i, v, i*2)
		}
	}
	batches, tuples, sizes := dbl.stats()
	if batches != 1 || tuples != 0 {
		t.Fatalf("delivery split: %d ProcessBatch / %d Process calls (sizes %v), want 1/0", batches, tuples, sizes)
	}
	if sizes[0] != 16 {
		t.Fatalf("ProcessBatch saw %d tuples, want 16", sizes[0])
	}
	if got := peCounter(p, metrics.PETuplesProcessed); got != 32 {
		t.Fatalf("nTuplesProcessed = %d, want 32 (16 at dbl + 16 at sink)", got)
	}
	if got := peCounter(p, metrics.PETuplesDropped); got != 0 {
		t.Fatalf("nTuplesDropped = %d on the clean path", got)
	}
}

// TestBatchDeliveryMarksInterleave: marks inside a batch flow through
// the per-item path in position, splitting the tuple runs around them.
func TestBatchDeliveryMarksInterleave(t *testing.T) {
	coll := &collector{}
	dbl := &batchDoubler{}
	reg := newTestRegistry(coll, 0)
	reg.Register("BatchDoubler", func() opapi.Operator { return dbl })
	p, err := New(Config{
		ID: 1, Job: 1, App: "batch", Host: "h1",
		Ops:      []OpSpec{midSpec("dbl", "BatchDoubler"), sinkSpec("sink")},
		Wires:    []Wire{{"dbl", 0, "sink", 0}},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	inlet, err := p.ExternalBatchInlet("dbl", 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := intSchema.MustRef("v")
	block := tuple.NewBlock(intSchema, 6)
	for i := range block {
		ref.SetInt(block[i], int64(i))
	}
	b := GetBatch()
	for i := 0; i < 4; i++ {
		b.Items = append(b.Items, TupleItem(block[i]))
	}
	b.Items = append(b.Items, MarkItem(tuple.FinalMark))
	// Items after the final mark on the only input port are not
	// delivered: the operator has finalised. Only the 4 leading tuples
	// count.
	b.Items = append(b.Items, TupleItem(block[4]), TupleItem(block[5]))
	inlet(b)

	waitCond(t, "final at sink", func() bool {
		coll.mu.Lock()
		defer coll.mu.Unlock()
		return coll.finals == 1
	})
	if got := coll.values(); len(got) != 4 {
		t.Fatalf("sink got %v, want the 4 pre-mark tuples", got)
	}
	batches, _, sizes := dbl.stats()
	if batches != 1 || sizes[0] != 4 {
		t.Fatalf("runs = %d sizes = %v, want one run of 4", batches, sizes)
	}
	// The post-final remainder was cleanly finalised away, not "lost":
	// the drop counter stays untouched.
	if got := peCounter(p, metrics.PETuplesDropped); got != 0 {
		t.Fatalf("nTuplesDropped = %d after clean finalisation", got)
	}
}

// TestPartialBatchLossPerTuple pins the partial-batch error contract on
// the per-tuple fallback path: a mid-batch Process failure crashes the
// PE, and the undelivered remainder of the accepted batch is counted on
// nTuplesDropped and logged instead of vanishing silently.
func TestPartialBatchLossPerTuple(t *testing.T) {
	var logMu sync.Mutex
	var logs []string
	reg := opapi.NewRegistry()
	reg.Register("MidFailer", func() opapi.Operator { return &midFailer{failAt: 5} })
	exitCh := make(chan exit, 1)
	p, err := New(Config{
		ID: 1, Job: 1, App: "batch", Host: "h1",
		Ops:      []OpSpec{{Name: "fail", Kind: "MidFailer", Inputs: []*tuple.Schema{intSchema}}},
		Registry: reg,
		OnExit:   func(id ids.PEID, crashed bool, reason string) { exitCh <- exit{id, crashed, reason} },
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	feedInts(t, p, "fail", 16) // fails at v=5: 5 delivered, 1 failing, 10 undelivered
	e := <-exitCh
	if !e.crashed || !strings.Contains(e.reason, "mid boom") {
		t.Fatalf("exit = %+v, want crash on mid boom", e)
	}
	if got := peCounter(p, metrics.PETuplesDropped); got != 10 {
		t.Fatalf("nTuplesDropped = %d, want the 10 undelivered trailing tuples", got)
	}
	if got := peCounter(p, metrics.PETuplesProcessed); got != 6 {
		t.Fatalf("nTuplesProcessed = %d, want 6 (5 ok + the failing one)", got)
	}
	logMu.Lock()
	defer logMu.Unlock()
	for _, l := range logs {
		if strings.Contains(l, "dropped 10 undelivered tuple(s)") {
			return
		}
	}
	t.Fatalf("no batch-loss log line; got %q", logs)
}

// TestPartialBatchLossBatchPath pins the same contract on the
// ProcessBatch path: a failing batch call crashes the PE, the failing
// run's tuples are not reported processed, and run + remainder land on
// nTuplesDropped.
func TestPartialBatchLossBatchPath(t *testing.T) {
	reg := opapi.NewRegistry()
	reg.Register("BatchFailer", func() opapi.Operator { return &batchFailer{failAt: 0} })
	exitCh := make(chan exit, 1)
	p, err := New(Config{
		ID: 1, Job: 1, App: "batch", Host: "h1",
		Ops:      []OpSpec{{Name: "fail", Kind: "BatchFailer", Inputs: []*tuple.Schema{intSchema}}},
		Registry: reg,
		OnExit:   func(id ids.PEID, crashed bool, reason string) { exitCh <- exit{id, crashed, reason} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	feedInts(t, p, "fail", 16) // the whole run fails as one ProcessBatch call
	e := <-exitCh
	if !e.crashed || !strings.Contains(e.reason, "batch boom") {
		t.Fatalf("exit = %+v, want crash on batch boom", e)
	}
	if got := peCounter(p, metrics.PETuplesDropped); got != 16 {
		t.Fatalf("nTuplesDropped = %d, want the full 16-tuple run", got)
	}
	if got := peCounter(p, metrics.PETuplesProcessed); got != 0 {
		t.Fatalf("nTuplesProcessed = %d, want 0 (the failed run is not processed)", got)
	}
}

// TestFailedBatchOutputsDropped: outputs an operator submitted before
// its ProcessBatch call failed are discarded, not forwarded — a restart
// replays upstream of the failure, and forwarding partial effects would
// double-deliver them.
func TestFailedBatchOutputsDropped(t *testing.T) {
	coll := &collector{}
	reg := newTestRegistry(coll, 0)
	reg.Register("HalfEmit", func() opapi.Operator { return &halfEmitter{} })
	exitCh := make(chan exit, 1)
	p, err := New(Config{
		ID: 1, Job: 1, App: "batch", Host: "h1",
		Ops:      []OpSpec{midSpec("half", "HalfEmit"), sinkSpec("sink")},
		Wires:    []Wire{{"half", 0, "sink", 0}},
		Registry: reg,
		OnExit:   func(id ids.PEID, crashed bool, reason string) { exitCh <- exit{id, crashed, reason} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	feedInts(t, p, "half", 8)
	e := <-exitCh
	if !e.crashed {
		t.Fatalf("exit = %+v, want crash", e)
	}
	if got := coll.values(); len(got) != 0 {
		t.Fatalf("sink received %v from a failed batch call", got)
	}
	if got := peCounter(p, metrics.PETuplesSubmitted); got != 0 {
		t.Fatalf("nTuplesSubmitted = %d, want 0 — a failed batch must not count its buffered outputs", got)
	}
}

// halfEmitter submits half the batch downstream, then fails the call.
type halfEmitter struct {
	opapi.Base
	ctx opapi.Context
}

func (h *halfEmitter) Open(ctx opapi.Context) error { h.ctx = ctx; return nil }

func (h *halfEmitter) Process(port int, t tuple.Tuple) error { return h.ctx.Submit(0, t) }

func (h *halfEmitter) ProcessBatch(port int, b *tuple.Batch) error {
	for i, t := range b.Tuples() {
		if i == b.Len()/2 {
			return errors.New("half boom")
		}
		if err := h.ctx.Submit(0, t); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkBatchDelivery measures the steady-state batch hot path: one
// frame-sized batch through a BatchOperator into a counting sink, via
// the same inlet the transport uses. The run must be allocation-free
// per tuple — the reusable view, coalescing buffers, and the pooled
// pe.Batch make the only per-frame cost the output block.
func BenchmarkBatchDelivery(b *testing.B) {
	coll := &collector{}
	dbl := &batchDoubler{}
	reg := newTestRegistry(coll, 0)
	reg.Register("BatchDoubler", func() opapi.Operator { return dbl })
	p, err := New(Config{
		ID: 1, Job: 1, App: "bench", Host: "h1",
		Ops:      []OpSpec{{Name: "dbl", Kind: "BatchDoubler", Inputs: []*tuple.Schema{intSchema}, Outputs: []*tuple.Schema{intSchema}}},
		Registry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	inlet, err := p.ExternalBatchInlet("dbl", 0)
	if err != nil {
		b.Fatal(err)
	}

	const frame = 64
	block := tuple.NewBlock(intSchema, frame)
	ref := intSchema.MustRef("v")
	for i := range block {
		ref.SetInt(block[i], int64(i))
	}
	rt := p.byName["dbl"]
	b.ReportAllocs()
	b.ResetTimer()
	sent := int64(0)
	for i := 0; i < b.N; i += frame {
		nb := GetBatch()
		for j := 0; j < frame; j++ {
			nb.Items = append(nb.Items, TupleItem(block[j]))
		}
		inlet(nb)
		sent += frame
		// Stay just ahead of the consumer rather than queueing b.N
		// tuples: the queue would otherwise absorb the whole run and
		// measure enqueue cost only.
		for rt.cProcessed.Value() < sent-4*frame {
			runtime.Gosched()
		}
	}
	for rt.cProcessed.Value() < sent {
		runtime.Gosched()
	}
	b.StopTimer()
}
