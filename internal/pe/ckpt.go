package pe

import (
	"fmt"

	"streamorca/internal/ckpt"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
)

// This file implements the PE's checkpoint driver: periodic and
// on-demand state capture of the container's stateful operators, and
// the restore pass a restarted container runs before processing begins.
//
// Capture is per-operator atomic — each operator's SaveState runs on
// its processing goroutine, serialised with tuple delivery — but not
// globally consistent across operators: the snapshot of op A may be a
// few tuples ahead of op B's. That matches the paper's partial
// fault-tolerance model, where restart-based recovery tolerates bounded
// inconsistency in exchange for staying off the tuple hot path.

// Checkpoint captures the state of every stateful operator in the
// container and persists the snapshot, returning its encoded size.
// Safe to call concurrently with processing; concurrent checkpoints
// serialise. It fails when checkpointing is not configured or the PE
// is not running.
func (p *PE) Checkpoint() (int, error) {
	if p.cfg.Ckpt.Store == nil {
		return 0, fmt.Errorf("pe %s: checkpointing not configured", p.cfg.ID)
	}
	if p.State() != Running {
		return 0, fmt.Errorf("pe %s: not running", p.cfg.ID)
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	// The snapshot header records the capture instant on the platform
	// clock, so a later restore can compute its exact staleness.
	capturedAt := p.cfg.Clock.Now()
	w := ckpt.NewWriterAt(capturedAt)
	defer w.Close()
	for _, rt := range p.statefuls {
		st := rt.op.(opapi.StatefulOperator)
		err := w.Section(rt.spec.Name, rt.spec.Kind, func(e *ckpt.Encoder) error {
			return rt.capture(st, e)
		})
		if err != nil {
			return 0, fmt.Errorf("pe %s: checkpoint %s: %w", p.cfg.ID, rt.spec.Name, err)
		}
	}
	data := w.Finish()
	if err := p.cfg.Ckpt.Store.Save(p.cfg.Ckpt.Key, data); err != nil {
		return 0, fmt.Errorf("pe %s: persist checkpoint: %w", p.cfg.ID, err)
	}
	p.peMetrics.Counter(metrics.PECheckpoints).Inc()
	p.peMetrics.Counter(metrics.PECheckpointBytes).Add(int64(len(data)))
	p.noteStateAnchorAt(capturedAt)
	return len(data), nil
}

// capture runs SaveState at a safe point. Operators with inputs are
// captured on their processing goroutine (a sync message through the
// input queue, like Control); sources are captured inline and must
// synchronise internally, as StatefulOperator documents.
func (rt *opRuntime) capture(st opapi.StatefulOperator, e *ckpt.Encoder) error {
	if len(rt.spec.Inputs) == 0 {
		return st.SaveState(e)
	}
	msg := &syncMsg{fn: func() error { return st.SaveState(e) }, done: make(chan error, 1)}
	select {
	case rt.in <- queued{sync: msg}:
	case <-rt.loopDone:
		return rt.captureQuiescent(st, e)
	case <-rt.pe.kill:
		return fmt.Errorf("pe %s: died before capturing %s", rt.pe.cfg.ID, rt.spec.Name)
	}
	select {
	case err := <-msg.done:
		return err
	case <-rt.loopDone:
		// The loop exited after our message was queued. If it ran the
		// capture on its way out the result is buffered; if it never
		// claimed it, fall back to the quiescent path; a claim without a
		// result means SaveState panicked the loop.
		select {
		case err := <-msg.done:
			return err
		default:
		}
		if !msg.claim() {
			return fmt.Errorf("pe %s: capture of %s aborted by operator crash", rt.pe.cfg.ID, rt.spec.Name)
		}
		return rt.captureQuiescent(st, e)
	case <-rt.pe.kill:
		// Invalidate the queued message before abandoning it: once this
		// function returns, the encoder's pooled buffer is recycled, so
		// a claim here guarantees the loop can no longer run fn against
		// it. Losing the claim means the loop is already running fn —
		// wait out its buffered result (or its crash) instead.
		if msg.claim() {
			return fmt.Errorf("pe %s: died while capturing %s", rt.pe.cfg.ID, rt.spec.Name)
		}
		select {
		case err := <-msg.done:
			return err
		case <-rt.loopDone:
			select {
			case err := <-msg.done:
				return err
			default:
				return fmt.Errorf("pe %s: capture of %s aborted by operator crash", rt.pe.cfg.ID, rt.spec.Name)
			}
		}
	}
}

// captureQuiescent captures an operator whose consume loop has exited.
// Only the clean all-inputs-finalised exit is safe to capture inline: a
// loop that ended in a crash or panic may have left the state
// mid-mutation, and persisting it would overwrite the last good
// snapshot with a CRC-valid but semantically corrupt one. (The crash
// path also closes loopDone before the PE's kill channel, so this check
// — not the kill select — is what keeps a crashing capture out.)
func (rt *opRuntime) captureQuiescent(st opapi.StatefulOperator, e *ckpt.Encoder) error {
	if !rt.finalised.Load() {
		return fmt.Errorf("pe %s: operator %s stopped without finalising", rt.pe.cfg.ID, rt.spec.Name)
	}
	return st.SaveState(e)
}

// restoreState loads the PE's snapshot (if any) and hands each section
// to its operator. A missing snapshot is a clean cold start; a corrupt
// or version-skewed one is logged and discarded — recovery availability
// beats state fidelity, so a bad snapshot never blocks a restart.
func (p *PE) restoreState() {
	data, ok, err := p.cfg.Ckpt.Store.Load(p.cfg.Ckpt.Key)
	if err != nil {
		p.cfg.Logf("pe %s: load checkpoint: %v", p.cfg.ID, err)
		return
	}
	if !ok {
		return
	}
	snap, err := ckpt.Parse(data)
	if err != nil {
		p.cfg.Logf("pe %s: discarding checkpoint %q: %v", p.cfg.ID, p.cfg.Ckpt.Key, err)
		return
	}
	restored := 0
	for _, sec := range snap.Sections() {
		rt, ok := p.byName[sec.Name]
		if !ok || rt.spec.Kind != sec.Kind {
			p.cfg.Logf("pe %s: checkpoint section %s/%s has no matching operator, skipping",
				p.cfg.ID, sec.Name, sec.Kind)
			continue
		}
		st, ok := rt.op.(opapi.StatefulOperator)
		if !ok {
			continue
		}
		err := p.restoreSection(st, sec)
		if err != nil {
			p.cfg.Logf("pe %s: restore %s: %v (starting fresh)", p.cfg.ID, sec.Name, err)
			continue
		}
		restored++
	}
	if restored > 0 {
		p.peMetrics.Counter(metrics.PEStateRestores).Add(int64(restored))
		// The restored container's state is anchored to the adopted
		// snapshot. A v2 snapshot carries its capture instant, so the
		// age gauge starts at the state's true staleness; a v1 snapshot
		// does not, and the restore moment stands in for it — optimistic
		// by at most the capture-to-restart delay, which periodic
		// checkpointing bounds to about one interval.
		if at, ok := snap.CapturedAt(); ok {
			p.noteStateAnchorAt(at)
		} else {
			p.noteStateAnchor()
		}
		p.cfg.Logf("pe %s: restored %d operator state(s) from checkpoint", p.cfg.ID, restored)
	}
}

// restoreSection hands one snapshot section to its operator, containing
// panics: the CRC only guards accidental corruption, so a forged or
// pathological payload must degrade to a fresh start for that operator,
// never take down the restart ("a bad snapshot never blocks a restart").
func (p *PE) restoreSection(st opapi.StatefulOperator, sec ckpt.Section) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("restore panicked: %v", r)
		}
	}()
	dec := sec.Decoder()
	err = st.RestoreState(dec)
	if err == nil {
		err = dec.Err()
	}
	return err
}

// ckptLoop drives periodic checkpoints on the PE clock until the
// container leaves Running.
func (p *PE) ckptLoop() {
	defer p.wg.Done()
	tk := p.cfg.Clock.NewTicker(p.cfg.Ckpt.Interval)
	defer tk.Stop()
	for {
		select {
		case <-tk.C():
			if _, err := p.Checkpoint(); err != nil {
				p.cfg.Logf("pe %s: periodic checkpoint: %v", p.cfg.ID, err)
			}
		case <-p.kill:
			return
		}
	}
}
