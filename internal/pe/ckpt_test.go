package pe

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

// accumulator sums every value it sees — the minimal stateful operator.
type accumulator struct {
	opapi.Base
	ctx opapi.Context
	mu  sync.Mutex
	sum int64
}

func (a *accumulator) Open(ctx opapi.Context) error { a.ctx = ctx; return nil }

func (a *accumulator) Process(port int, t tuple.Tuple) error {
	a.mu.Lock()
	a.sum += t.Int("v")
	a.mu.Unlock()
	return nil
}

func (a *accumulator) SaveState(e *ckpt.Encoder) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	e.PutInt(a.sum)
	return nil
}

func (a *accumulator) RestoreState(d *ckpt.Decoder) error {
	v := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	a.sum = v
	a.mu.Unlock()
	return nil
}

func (a *accumulator) value() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sum
}

func ckptRegistry(acc *accumulator, n int) *opapi.Registry {
	reg := opapi.NewRegistry()
	reg.Register("TestSource", func() opapi.Operator { return &testSource{n: n} })
	reg.Register("Acc", func() opapi.Operator { return acc })
	return reg
}

func accSpec(name string) OpSpec {
	return OpSpec{Name: name, Kind: "Acc", Inputs: []*tuple.Schema{intSchema}}
}

func newCkptPE(t *testing.T, acc *accumulator, n int, cfgCkpt CkptConfig) *PE {
	t.Helper()
	p, err := New(Config{
		ID: 7, Job: 1, App: "ckpt", Host: "h1",
		Ops:      []OpSpec{srcSpec("src"), accSpec("acc")},
		Wires:    []Wire{{"src", 0, "acc", 0}},
		Registry: ckptRegistry(acc, n),
		Ckpt:     cfgCkpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCheckpointRestore: state captured from a running PE is restored
// into a fresh container armed with Restore.
func TestCheckpointRestore(t *testing.T) {
	store := ckpt.NewMemStore()
	acc1 := &accumulator{}
	p1 := newCkptPE(t, acc1, 10, CkptConfig{Store: store, Key: "k"})
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "source drained", func() bool { return acc1.value() == 45 })
	n, err := p1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("snapshot size = %d", n)
	}
	if got := p1.PEMetrics().Counter(metrics.PECheckpoints).Value(); got != 1 {
		t.Fatalf("nCheckpoints = %d", got)
	}
	p1.Stop()

	// A replacement container without Restore starts cold.
	accCold := &accumulator{}
	pCold := newCkptPE(t, accCold, 0, CkptConfig{Store: store, Key: "k"})
	if err := pCold.Start(); err != nil {
		t.Fatal(err)
	}
	if got := accCold.value(); got != 0 {
		t.Fatalf("cold start restored: sum = %d", got)
	}
	pCold.Stop()

	// With Restore armed the state comes back before processing begins,
	// and new tuples extend it.
	acc2 := &accumulator{}
	p2 := newCkptPE(t, acc2, 10, CkptConfig{Store: store, Key: "k", Restore: true})
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "restored sum extended", func() bool { return acc2.value() == 90 })
	if got := p2.PEMetrics().Counter(metrics.PEStateRestores).Value(); got != 1 {
		t.Fatalf("nStateRestores = %d", got)
	}
	p2.Stop()
}

// TestCheckpointAfterFinals: capturing an operator whose inputs have all
// finalised must not hang — the driver falls back to inline capture.
func TestCheckpointAfterFinals(t *testing.T) {
	store := ckpt.NewMemStore()
	acc := &accumulator{}
	p := newCkptPE(t, acc, 5, CkptConfig{Store: store, Key: "k2"})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// The bounded source finishes and the accumulator sees its final
	// punctuation, ending its consume loop.
	waitCond(t, "consume loop exit", func() bool {
		select {
		case <-p.byName["acc"].loopDone:
			return true
		default:
			return false
		}
	})
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snapData, ok, _ := store.Load("k2")
	if !ok {
		t.Fatal("no snapshot saved")
	}
	snap, err := ckpt.Parse(snapData)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sec := range snap.Sections() {
		if sec.Name == "acc" {
			found = true
			if v := sec.Decoder().Int(); v != 10 {
				t.Fatalf("captured sum = %d", v)
			}
		}
	}
	if !found {
		t.Fatal("acc section missing")
	}
	p.Stop()
}

// TestRestoreDiscardsCorruptSnapshot: a corrupt or mismatched snapshot
// is logged and skipped; the PE starts fresh instead of failing.
func TestRestoreDiscardsCorruptSnapshot(t *testing.T) {
	store := ckpt.NewMemStore()
	if err := store.Save("bad", []byte("not a snapshot at all")); err != nil {
		t.Fatal(err)
	}
	var logged []string
	acc := &accumulator{}
	p, err := New(Config{
		ID: 8, Job: 1, App: "ckpt", Host: "h1",
		Ops:      []OpSpec{srcSpec("src"), accSpec("acc")},
		Wires:    []Wire{{"src", 0, "acc", 0}},
		Registry: ckptRegistry(acc, 3),
		Ckpt:     CkptConfig{Store: store, Key: "bad", Restore: true},
		Logf:     func(format string, args ...any) { logged = append(logged, format) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "fresh run completes", func() bool { return acc.value() == 3 })
	if got := p.PEMetrics().Counter(metrics.PEStateRestores).Value(); got != 0 {
		t.Fatalf("nStateRestores = %d", got)
	}
	joined := strings.Join(logged, "\n")
	if !strings.Contains(joined, "discarding checkpoint") {
		t.Fatalf("discard not logged: %q", joined)
	}
	p.Stop()
}

// TestRestoreSurvivesTornFSSnapshot: a snapshot file truncated after
// commit (torn storage below the rename's guarantee) is detected by the
// CRC, logged, and discarded — the replacement container cold-starts
// and runs instead of failing, so a damaged store never blocks a
// restart.
func TestRestoreSurvivesTornFSSnapshot(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	acc1 := &accumulator{}
	p1 := newCkptPE(t, acc1, 10, CkptConfig{Store: store, Key: "torn"})
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "source drained", func() bool { return acc1.value() == 45 })
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p1.Stop()

	// Tear the committed file: drop its tail, keeping the header intact.
	path := filepath.Join(dir, "torn.ckpt")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	var logged []string
	acc2 := &accumulator{}
	p2, err := New(Config{
		ID: 7, Job: 1, App: "ckpt", Host: "h1",
		Ops:      []OpSpec{srcSpec("src"), accSpec("acc")},
		Wires:    []Wire{{"src", 0, "acc", 0}},
		Registry: ckptRegistry(acc2, 3),
		Ckpt:     CkptConfig{Store: store, Key: "torn", Restore: true},
		Logf:     func(format string, args ...any) { logged = append(logged, format) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "cold run completes", func() bool { return acc2.value() == 3 })
	if got := p2.PEMetrics().Counter(metrics.PEStateRestores).Value(); got != 0 {
		t.Fatalf("nStateRestores = %d, want 0 (torn snapshot must not restore)", got)
	}
	if joined := strings.Join(logged, "\n"); !strings.Contains(joined, "discarding checkpoint") {
		t.Fatalf("discard not logged: %q", joined)
	}
	p2.Stop()
}

// TestRestoreSkipsKindMismatch: a section whose operator kind changed
// under a reused name never flows into the new operator.
func TestRestoreSkipsKindMismatch(t *testing.T) {
	store := ckpt.NewMemStore()
	w := ckpt.NewWriter()
	defer w.Close()
	if err := w.Section("acc", "SomethingElse", func(e *ckpt.Encoder) error {
		e.PutInt(999)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("mismatch", w.Finish()); err != nil {
		t.Fatal(err)
	}
	acc := &accumulator{}
	p := newCkptPE(t, acc, 0, CkptConfig{Store: store, Key: "mismatch", Restore: true})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if got := acc.value(); got != 0 {
		t.Fatalf("mismatched section restored: sum = %d", got)
	}
	if got := p.PEMetrics().Counter(metrics.PEStateRestores).Value(); got != 0 {
		t.Fatalf("nStateRestores = %d", got)
	}
	p.Stop()
}

// ageGauge reads the snapshot-age gauge straight off the PE metric set.
func ageGauge(p *PE) int64 {
	return p.PEMetrics().Counter(metrics.PECheckpointAgeMs).Value()
}

// ageSample extracts lastCheckpointAgeMs from a full metric snapshot —
// the value SRM (and therefore the orchestrator's PE-metric events)
// would observe.
func ageSample(t *testing.T, p *PE) int64 {
	t.Helper()
	for _, s := range p.MetricsSnapshot() {
		if s.Scope == metrics.PEScope && s.Name == metrics.PECheckpointAgeMs {
			return s.Value
		}
	}
	t.Fatal("lastCheckpointAgeMs missing from metrics snapshot")
	return 0
}

// TestCheckpointAgeGauge: the gauge reports -1 before any snapshot,
// zeroes on a checkpoint, and ages with the platform clock at snapshot
// time.
func TestCheckpointAgeGauge(t *testing.T) {
	clock := vclock.NewManual(time.Unix(1000, 0))
	store := ckpt.NewMemStore()
	acc := &accumulator{}
	p, err := New(Config{
		ID: 9, Job: 1, App: "ckpt", Host: "h1",
		Ops:      []OpSpec{srcSpec("src"), accSpec("acc")},
		Wires:    []Wire{{"src", 0, "acc", 0}},
		Registry: ckptRegistry(acc, 4),
		Clock:    clock,
		Ckpt:     CkptConfig{Store: store, Key: "age"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if got := ageGauge(p); got != -1 {
		t.Fatalf("pre-checkpoint gauge = %d, want -1", got)
	}
	if got := ageSample(t, p); got != -1 {
		t.Fatalf("pre-checkpoint sample = %d, want -1", got)
	}
	waitCond(t, "source drained", func() bool { return acc.value() == 6 })
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := ageGauge(p); got != 0 {
		t.Fatalf("gauge right after checkpoint = %d, want 0", got)
	}
	clock.Advance(1500 * time.Millisecond)
	if got := ageSample(t, p); got != 1500 {
		t.Fatalf("aged sample = %d, want 1500", got)
	}
	// A second checkpoint re-anchors.
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := ageSample(t, p); got != 0 {
		t.Fatalf("re-anchored sample = %d, want 0", got)
	}
}

// TestCheckpointAgeAnchorsOnRestore: a container that adopted a snapshot
// at start-up reports a fresh age instead of -1, so the failover policy
// can rank a restored replica by the state it actually holds.
func TestCheckpointAgeAnchorsOnRestore(t *testing.T) {
	store := ckpt.NewMemStore()
	acc1 := &accumulator{}
	p1 := newCkptPE(t, acc1, 10, CkptConfig{Store: store, Key: "ra"})
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "source drained", func() bool { return acc1.value() == 45 })
	if _, err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p1.Stop()

	acc2 := &accumulator{}
	p2 := newCkptPE(t, acc2, 0, CkptConfig{Store: store, Key: "ra", Restore: true})
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	defer p2.Stop()
	if got := ageSample(t, p2); got < 0 {
		t.Fatalf("restored container age = %d, want >= 0", got)
	}

	// Without Restore the replacement container has no state anchor.
	acc3 := &accumulator{}
	p3 := newCkptPE(t, acc3, 0, CkptConfig{Store: store, Key: "ra"})
	if err := p3.Start(); err != nil {
		t.Fatal(err)
	}
	defer p3.Stop()
	if got := ageSample(t, p3); got != -1 {
		t.Fatalf("cold container age = %d, want -1", got)
	}
}

// TestCheckpointAgeGaugeRace drives the checkpoint driver (which
// re-anchors the gauge) concurrently with PEMetrics() reads and full
// metric-snapshot dispatch — the paths the per-host controller and the
// orchestrator's pull rounds exercise. Run under -race, it pins the
// gauge's atomicity.
func TestCheckpointAgeGaugeRace(t *testing.T) {
	store := ckpt.NewMemStore()
	acc := &accumulator{}
	p := newCkptPE(t, acc, 0, CkptConfig{Store: store, Key: "race"})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := p.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if got := ageGauge(p); got < -1 {
				t.Errorf("gauge = %d", got)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p.MetricsSnapshot()
		}
	}()
	wg.Wait()
	if got := ageGauge(p); got < 0 {
		t.Fatalf("final gauge = %d, want >= 0", got)
	}
}

// TestCheckpointUnconfigured: Checkpoint without a store fails cleanly.
func TestCheckpointUnconfigured(t *testing.T) {
	acc := &accumulator{}
	p := newCkptPE(t, acc, 1, CkptConfig{})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err == nil {
		t.Fatal("expected error")
	}
	p.Stop()
}
