package pe

import (
	"fmt"

	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

// opContext implements opapi.Context for one operator instance.
type opContext struct {
	rt *opRuntime
}

func newOpContext(rt *opRuntime) *opContext { return &opContext{rt: rt} }

func (c *opContext) Name() string { return c.rt.spec.Name }
func (c *opContext) Kind() string { return c.rt.spec.Kind }
func (c *opContext) App() string  { return c.rt.pe.cfg.App }

func (c *opContext) Params() opapi.Params { return c.rt.spec.Params }

func (c *opContext) NumInputs() int  { return len(c.rt.spec.Inputs) }
func (c *opContext) NumOutputs() int { return len(c.rt.spec.Outputs) }

func (c *opContext) InputSchema(i int) *tuple.Schema {
	if i < 0 || i >= len(c.rt.spec.Inputs) {
		return nil
	}
	return c.rt.spec.Inputs[i]
}

func (c *opContext) OutputSchema(i int) *tuple.Schema {
	if i < 0 || i >= len(c.rt.spec.Outputs) {
		return nil
	}
	return c.rt.spec.Outputs[i]
}

func (c *opContext) Submit(i int, t tuple.Tuple) error {
	if i < 0 || i >= len(c.rt.spec.Outputs) {
		return fmt.Errorf("pe: %s has no output port %d", c.rt.spec.Name, i)
	}
	if !t.Valid() {
		return fmt.Errorf("pe: %s submitted an invalid tuple on port %d", c.rt.spec.Name, i)
	}
	if !t.Schema().Equal(c.rt.spec.Outputs[i]) {
		return fmt.Errorf("pe: %s port %d schema mismatch: got %s want %s",
			c.rt.spec.Name, i, t.Schema(), c.rt.spec.Outputs[i])
	}
	c.rt.emit(i, TupleItem(t))
	return nil
}

func (c *opContext) SubmitMark(i int, m tuple.Mark) error {
	if i < 0 || i >= len(c.rt.spec.Outputs) {
		return fmt.Errorf("pe: %s has no output port %d", c.rt.spec.Name, i)
	}
	if m == tuple.NoMark {
		return fmt.Errorf("pe: %s submitted an empty punctuation", c.rt.spec.Name)
	}
	c.rt.emit(i, MarkItem(m))
	return nil
}

func (c *opContext) CustomMetric(name string) *metrics.Counter {
	return c.rt.om.Custom.Counter(name)
}

func (c *opContext) Clock() vclock.Clock { return c.rt.pe.cfg.Clock }

func (c *opContext) Done() <-chan struct{} { return c.rt.pe.kill }

func (c *opContext) Logf(format string, args ...any) {
	c.rt.pe.cfg.Logf("[%s/%s] %s", c.rt.pe.cfg.App, c.rt.spec.Name, fmt.Sprintf(format, args...))
}
