package pe

import (
	"sync"
	"sync/atomic"

	"streamorca/internal/tuple"
)

// Item is one unit travelling on a stream connection: either a tuple
// (Mark == NoMark) or a punctuation. Items cross PE boundaries through the
// transport package, which serialises the tuple payload.
type Item struct {
	T    tuple.Tuple
	Mark tuple.Mark
}

// TupleItem wraps a tuple.
func TupleItem(t tuple.Tuple) Item { return Item{T: t} }

// MarkItem wraps a punctuation.
func MarkItem(m tuple.Mark) Item { return Item{Mark: m} }

// IsMark reports whether the item is a punctuation.
func (it Item) IsMark() bool { return it.Mark != tuple.NoMark }

// Batch is a reusable group of items delivered through a batch inlet as
// one queue operation, amortising channel synchronisation across a whole
// transport frame. Obtain with GetBatch; handing it to a batch inlet
// transfers ownership to the receiving PE, which recycles it after the
// items have been delivered.
type Batch struct {
	Items []Item
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch returns an empty pooled batch.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.Items = b.Items[:0]
	return b
}

// PutBatch recycles a batch whose items have been fully delivered (or
// dropped). The item slots are cleared so recycled batches do not pin
// tuple storage.
func PutBatch(b *Batch) {
	for i := range b.Items {
		b.Items[i] = Item{}
	}
	b.Items = b.Items[:0]
	batchPool.Put(b)
}

// controlMsg is an in-band orchestrator control command delivered to a
// Controllable operator on its processing goroutine, so control actions
// are serialised with tuple processing.
type controlMsg struct {
	cmd  string
	args map[string]string
	done chan error
}

// syncMsg runs an arbitrary function on the operator's processing
// goroutine — the checkpoint driver uses it to capture operator state
// at a point serialised with tuple delivery. The claim handshake gives
// fn exactly one owner: the consume loop claims before running, and a
// sender that gives up claims to invalidate the message, so an
// abandoned fn can never run against resources the sender has since
// released (the capture encoder's pooled buffer).
type syncMsg struct {
	fn      func() error
	done    chan error
	claimed atomic.Bool
}

// claim reports whether the caller won ownership of fn.
func (m *syncMsg) claim() bool { return m.claimed.CompareAndSwap(false, true) }

// queued is what sits in an operator's input queue: a single item, a
// whole transport batch, a control command, or a synchronised call.
type queued struct {
	port  int
	item  Item
	batch *Batch
	ctl   *controlMsg
	sync  *syncMsg
}
