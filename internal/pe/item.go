package pe

import "streamorca/internal/tuple"

// Item is one unit travelling on a stream connection: either a tuple
// (Mark == NoMark) or a punctuation. Items cross PE boundaries through the
// transport package, which serialises the tuple payload.
type Item struct {
	T    tuple.Tuple
	Mark tuple.Mark
}

// TupleItem wraps a tuple.
func TupleItem(t tuple.Tuple) Item { return Item{T: t} }

// MarkItem wraps a punctuation.
func MarkItem(m tuple.Mark) Item { return Item{Mark: m} }

// IsMark reports whether the item is a punctuation.
func (it Item) IsMark() bool { return it.Mark != tuple.NoMark }

// controlMsg is an in-band orchestrator control command delivered to a
// Controllable operator on its processing goroutine, so control actions
// are serialised with tuple processing.
type controlMsg struct {
	cmd  string
	args map[string]string
	done chan error
}

// queued is what sits in an operator's input queue.
type queued struct {
	port int
	item Item
	ctl  *controlMsg
}
