// Package pe implements the processing element: the runtime container
// that executes a fused partition of operators. In System S a PE is an
// operating-system process; here it is a goroutine container with the
// same observable behaviour — bounded input queues, serialised operator
// execution, built-in metrics, final-punctuation propagation, and
// crash-with-state-loss failure semantics (an operator error or panic
// kills the whole container, §2.2/§5.2).
package pe

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

// State is the PE lifecycle state.
type State int32

// PE lifecycle states.
const (
	Created State = iota
	Running
	Stopped
	Crashed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Running:
		return "running"
	case Stopped:
		return "stopped"
	case Crashed:
		return "crashed"
	default:
		return "unknown"
	}
}

// OpSpec describes one operator instance to run inside the PE.
type OpSpec struct {
	Name    string
	Kind    string
	Params  opapi.Params
	Inputs  []*tuple.Schema
	Outputs []*tuple.Schema
}

// Wire is an intra-PE stream connection between two fused operators.
type Wire struct {
	FromOp   string
	FromPort int
	ToOp     string
	ToPort   int
}

// Config assembles a PE.
type Config struct {
	ID       ids.PEID
	Job      ids.JobID
	App      string
	Host     string
	Ops      []OpSpec
	Wires    []Wire
	Clock    vclock.Clock
	Registry *opapi.Registry
	QueueCap int // per-operator input queue capacity; default 256
	Logf     func(format string, args ...any)
	// OnExit is invoked exactly once, from the PE's own goroutine, when
	// the container leaves the Running state. crashed is false for a
	// clean Stop.
	OnExit func(id ids.PEID, crashed bool, reason string)
	// Ckpt configures operator-state checkpointing; the zero value
	// disables it (restarts come back empty, the paper's §5.2 loss
	// semantics).
	Ckpt CkptConfig
}

// CkptConfig wires a PE to a checkpoint store.
type CkptConfig struct {
	// Store persists snapshots; nil disables checkpointing.
	Store ckpt.Store
	// Key identifies this PE's snapshot in the store (SAM keys by job
	// and PE id, which survive restarts).
	Key string
	// Interval is the automatic checkpoint period on the PE clock;
	// 0 means on-demand checkpoints only (PE.Checkpoint).
	Interval time.Duration
	// Restore makes Start look for a snapshot under Key and restore
	// stateful operators from it before processing begins. SAM arms it
	// on the restart path only, so a fresh submission never picks up a
	// stale snapshot.
	Restore bool
}

// Outlet receives items leaving the PE on a cross-PE or cross-job link.
type Outlet func(Item)

// PE is a running processing element.
type PE struct {
	cfg   Config
	state atomic.Int32

	ops       []*opRuntime
	byName    map[string]*opRuntime
	statefuls []*opRuntime // ops implementing opapi.StatefulOperator

	peMetrics *metrics.Set
	// Hot-path counter cells resolved once at construction: the delivery
	// and submit paths bump these directly instead of going through the
	// Set's name lookup (a map access under RWMutex) per tuple.
	cTuplesIn      *metrics.Counter // PETuplesProcessed
	cTuplesOut     *metrics.Counter // PETuplesSubmitted
	cTuplesDropped *metrics.Counter // PETuplesDropped
	ckptMu         sync.Mutex       // serialises snapshot assembly
	ckptAt         atomic.Int64     // platform-clock unix nanos of the last state anchor; 0 = never

	// Rate-gauge baseline: the counter values and platform-clock instant
	// of the previous metric snapshot, from which the ingest/egress
	// tuples-per-second gauges are derived.
	rateMu     sync.Mutex
	lastRateAt time.Time
	lastIn     int64
	lastOut    int64

	kill     chan struct{} // closed on crash or stop
	stopSrc  chan struct{} // closed to ask sources to finish
	killOnce sync.Once
	exitOnce sync.Once
	wg       sync.WaitGroup

	reason string
	mu     sync.Mutex
}

type opRuntime struct {
	pe   *PE
	spec OpSpec
	op   opapi.Operator
	// batchOp is non-nil when op implements the opt-in batch SPI; the
	// consume loop then delivers whole queue batches through
	// ProcessBatch instead of unpacking them into per-tuple calls.
	batchOp opapi.BatchOperator
	// view and viewTs are the reusable batch presented to ProcessBatch:
	// viewTs accumulates the current run of consecutive tuples, view
	// wraps it without copying storage. Both live on the consume
	// goroutine only.
	view   tuple.Batch
	viewTs []tuple.Tuple
	// coalescing is set for the duration of a ProcessBatch call: emits
	// buffer into outBuf (one pending run per output port) and flush as
	// whole batches when the call returns, keeping intra-PE hops between
	// two batch operators batched. Only touched on the consume
	// goroutine.
	coalescing bool
	outBuf     [][]Item
	in         chan queued
	om         *metrics.OpMetrics
	inPM       []*metrics.Set // per input port
	outPM      []*metrics.Set // per output port
	// Hot-path counter cells resolved once at construction (see the PE
	// struct's cTuples* fields for the rationale).
	cProcessed *metrics.Counter   // builtin nTuplesProcessed
	cSubmitted *metrics.Counter   // builtin nTuplesSubmitted
	cPuncts    *metrics.Counter   // builtin nPunctsProcessed
	pIn        []*metrics.Counter // PortTuplesProcessed per input port
	pOut       []*metrics.Counter // PortTuplesSubmitted per output port

	// routing per output port
	intra   [][]intraTarget
	outlets []*outletSet

	finalSeen []bool
	finals    int
	ctx       *opContext

	// loopDone closes when consumeLoop returns; finalised is set only on
	// the clean all-inputs-finalised exit. The checkpoint driver captures
	// a finalised operator inline (nothing touches it any more) but must
	// refuse a crashed one — its state may be mid-mutation.
	loopDone  chan struct{}
	finalised atomic.Bool
}

type intraTarget struct {
	op   *opRuntime
	port int
}

// outletSet is the mutable fan-out of one output port across PE
// boundaries; import/export links attach and detach at runtime.
type outletSet struct {
	mu   sync.RWMutex
	fns  map[string]Outlet
	next []Outlet // cached snapshot
}

func (s *outletSet) add(id string, fn Outlet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fns == nil {
		s.fns = make(map[string]Outlet)
	}
	s.fns[id] = fn
	s.rebuild()
}

func (s *outletSet) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.fns, id)
	s.rebuild()
}

// rebuild replaces the snapshot with a freshly allocated slice: each()
// iterates its copy of the old snapshot outside the lock, so the backing
// array must never be reused.
func (s *outletSet) rebuild() {
	next := make([]Outlet, 0, len(s.fns))
	for _, fn := range s.fns {
		next = append(next, fn)
	}
	s.next = next
}

func (s *outletSet) each(it Item) {
	s.mu.RLock()
	outs := s.next
	s.mu.RUnlock()
	for _, fn := range outs {
		fn(it)
	}
}

// New assembles a PE from its configuration; Start launches it.
func New(cfg Config) (*PE, error) {
	if cfg.Registry == nil {
		cfg.Registry = opapi.Default
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	p := &PE{
		cfg:       cfg,
		byName:    make(map[string]*opRuntime, len(cfg.Ops)),
		peMetrics: metrics.NewSet(),
		kill:      make(chan struct{}),
		stopSrc:   make(chan struct{}),
	}
	for _, n := range []string{metrics.PETupleBytesProcessed, metrics.PETupleBytesSubmitted,
		metrics.PETuplesProcessed, metrics.PETuplesSubmitted, metrics.PETuplesDropped,
		metrics.PERestarts, metrics.PECheckpoints, metrics.PECheckpointBytes,
		metrics.PEStateRestores} {
		p.peMetrics.Counter(n)
	}
	p.cTuplesIn = p.peMetrics.Counter(metrics.PETuplesProcessed)
	p.cTuplesOut = p.peMetrics.Counter(metrics.PETuplesSubmitted)
	p.cTuplesDropped = p.peMetrics.Counter(metrics.PETuplesDropped)
	// The age gauge starts at "never snapshotted"; the checkpoint driver
	// and the metric snapshotter keep it current from then on.
	p.peMetrics.Counter(metrics.PECheckpointAgeMs).Set(-1)
	p.peMetrics.Counter(metrics.PEIngestRate)
	p.peMetrics.Counter(metrics.PEEgressRate)
	p.lastRateAt = cfg.Clock.Now()
	for _, spec := range cfg.Ops {
		op, err := cfg.Registry.New(spec.Kind)
		if err != nil {
			return nil, fmt.Errorf("pe %s: operator %q: %w", cfg.ID, spec.Name, err)
		}
		rt := &opRuntime{
			pe:        p,
			spec:      spec,
			op:        op,
			in:        make(chan queued, cfg.QueueCap),
			om:        metrics.NewOpMetrics(),
			intra:     make([][]intraTarget, len(spec.Outputs)),
			outlets:   make([]*outletSet, len(spec.Outputs)),
			finalSeen: make([]bool, len(spec.Inputs)),
			loopDone:  make(chan struct{}),
		}
		if bo, ok := op.(opapi.BatchOperator); ok {
			rt.batchOp = bo
			rt.outBuf = make([][]Item, len(spec.Outputs))
		}
		rt.cProcessed = rt.om.Builtin.Counter(metrics.OpTuplesProcessed)
		rt.cSubmitted = rt.om.Builtin.Counter(metrics.OpTuplesSubmitted)
		rt.cPuncts = rt.om.Builtin.Counter(metrics.OpPunctsProcessed)
		for i := range rt.outlets {
			rt.outlets[i] = &outletSet{}
		}
		for range spec.Inputs {
			s := metrics.NewSet()
			rt.pIn = append(rt.pIn, s.Counter(metrics.PortTuplesProcessed))
			s.Counter(metrics.PortFinalPunctsQueued)
			rt.inPM = append(rt.inPM, s)
		}
		for range spec.Outputs {
			s := metrics.NewSet()
			rt.pOut = append(rt.pOut, s.Counter(metrics.PortTuplesSubmitted))
			rt.outPM = append(rt.outPM, s)
		}
		rt.ctx = newOpContext(rt)
		if _, dup := p.byName[spec.Name]; dup {
			return nil, fmt.Errorf("pe %s: duplicate operator %q", cfg.ID, spec.Name)
		}
		p.byName[spec.Name] = rt
		p.ops = append(p.ops, rt)
		if _, ok := op.(opapi.StatefulOperator); ok {
			p.statefuls = append(p.statefuls, rt)
		}
	}
	for _, w := range cfg.Wires {
		from, ok := p.byName[w.FromOp]
		if !ok {
			return nil, fmt.Errorf("pe %s: wire from unknown operator %q", cfg.ID, w.FromOp)
		}
		to, ok := p.byName[w.ToOp]
		if !ok {
			return nil, fmt.Errorf("pe %s: wire to unknown operator %q", cfg.ID, w.ToOp)
		}
		if w.FromPort < 0 || w.FromPort >= len(from.spec.Outputs) || w.ToPort < 0 || w.ToPort >= len(to.spec.Inputs) {
			return nil, fmt.Errorf("pe %s: wire %v port out of range", cfg.ID, w)
		}
		from.intra[w.FromPort] = append(from.intra[w.FromPort], intraTarget{op: to, port: w.ToPort})
	}
	return p, nil
}

// ID returns the PE id.
func (p *PE) ID() ids.PEID { return p.cfg.ID }

// Job returns the owning job id.
func (p *PE) Job() ids.JobID { return p.cfg.Job }

// Host returns the host the PE is placed on.
func (p *PE) Host() string { return p.cfg.Host }

// State returns the current lifecycle state.
func (p *PE) State() State { return State(p.state.Load()) }

// CrashReason returns the recorded failure cause, if any.
func (p *PE) CrashReason() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reason
}

// OperatorNames lists the fused operators.
func (p *PE) OperatorNames() []string {
	names := make([]string, len(p.ops))
	for i, rt := range p.ops {
		names[i] = rt.spec.Name
	}
	return names
}

// Start opens every operator, restores checkpointed state when
// configured, and launches the processing goroutines.
func (p *PE) Start() error {
	if !p.state.CompareAndSwap(int32(Created), int32(Running)) {
		return fmt.Errorf("pe %s: started twice", p.cfg.ID)
	}
	for _, rt := range p.ops {
		if err := rt.op.Open(rt.ctx); err != nil {
			p.crash(fmt.Sprintf("operator %s failed to open: %v", rt.spec.Name, err))
			return fmt.Errorf("pe %s: open %s: %w", p.cfg.ID, rt.spec.Name, err)
		}
	}
	// Restore between Open and goroutine launch: no tuple can race the
	// state overwrite, and operators observe restored state from their
	// very first Process call.
	if p.cfg.Ckpt.Restore && p.cfg.Ckpt.Store != nil {
		p.restoreState()
	}
	for _, rt := range p.ops {
		rt := rt
		if len(rt.spec.Inputs) > 0 {
			p.wg.Add(1)
			go rt.consumeLoop()
		}
		if src, ok := rt.op.(opapi.Source); ok && len(rt.spec.Inputs) == 0 {
			p.wg.Add(1)
			go rt.sourceLoop(src)
		}
	}
	if p.cfg.Ckpt.Store != nil && p.cfg.Ckpt.Interval > 0 && len(p.statefuls) > 0 {
		p.wg.Add(1)
		go p.ckptLoop()
	}
	return nil
}

// Stop shuts the PE down cleanly (job cancellation path).
func (p *PE) Stop() {
	if !p.state.CompareAndSwap(int32(Running), int32(Stopped)) {
		return
	}
	close(p.stopSrc)
	p.killOnce.Do(func() { close(p.kill) })
	p.wg.Wait()
	for _, rt := range p.ops {
		if err := rt.op.Close(); err != nil {
			p.cfg.Logf("pe %s: close %s: %v", p.cfg.ID, rt.spec.Name, err)
		}
	}
	p.fireExit(false, "stopped")
}

// Kill simulates a crash failure (the fault-injection path used by the
// failure experiments): the container dies immediately, queued items and
// operator state are lost, and Close is never called.
func (p *PE) Kill(reason string) {
	if !p.state.CompareAndSwap(int32(Running), int32(Crashed)) {
		return
	}
	p.mu.Lock()
	p.reason = reason
	p.mu.Unlock()
	p.killOnce.Do(func() { close(p.kill) })
	go func() {
		p.wg.Wait()
		p.fireExit(true, reason)
	}()
}

// crash is the internal failure path for operator errors and panics.
func (p *PE) crash(reason string) {
	if !p.state.CompareAndSwap(int32(Running), int32(Crashed)) {
		// Crash during Start before Running: record and fire.
		if p.state.CompareAndSwap(int32(Created), int32(Crashed)) {
			p.mu.Lock()
			p.reason = reason
			p.mu.Unlock()
			p.killOnce.Do(func() { close(p.kill) })
			p.fireExit(true, reason)
		}
		return
	}
	p.mu.Lock()
	p.reason = reason
	p.mu.Unlock()
	p.cfg.Logf("pe %s: crash: %s", p.cfg.ID, reason)
	p.killOnce.Do(func() { close(p.kill) })
	go func() {
		p.wg.Wait()
		p.fireExit(true, reason)
	}()
}

func (p *PE) fireExit(crashed bool, reason string) {
	p.exitOnce.Do(func() {
		if p.cfg.OnExit != nil {
			p.cfg.OnExit(p.cfg.ID, crashed, reason)
		}
	})
}

// ExternalInlet returns a function that feeds items into the named
// operator's input port from outside the PE (cross-PE transport or a
// cross-job import link). Items arriving after the PE died are dropped —
// tuple loss on failure, as the paper's §5.2 scenario requires.
func (p *PE) ExternalInlet(opName string, port int) (func(Item), error) {
	rt, ok := p.byName[opName]
	if !ok {
		return nil, fmt.Errorf("pe %s: no operator %q", p.cfg.ID, opName)
	}
	if port < 0 || port >= len(rt.spec.Inputs) {
		return nil, fmt.Errorf("pe %s: operator %q has no input port %d", p.cfg.ID, opName, port)
	}
	return func(it Item) { rt.enqueue(port, it) }, nil
}

// ExternalBatchInlet returns a function that feeds whole item batches into
// the named operator's input port as a single queue operation — the
// delivery side of the transport's small-batch framing. Ownership of the
// batch transfers to the PE, which recycles it once its items have been
// delivered (or immediately, if the PE has died and the batch is dropped).
func (p *PE) ExternalBatchInlet(opName string, port int) (func(*Batch), error) {
	rt, ok := p.byName[opName]
	if !ok {
		return nil, fmt.Errorf("pe %s: no operator %q", p.cfg.ID, opName)
	}
	if port < 0 || port >= len(rt.spec.Inputs) {
		return nil, fmt.Errorf("pe %s: operator %q has no input port %d", p.cfg.ID, opName, port)
	}
	return func(b *Batch) { rt.enqueueBatch(port, b) }, nil
}

// InputSchema returns the schema of an operator input port, for link
// compatibility checks.
func (p *PE) InputSchema(opName string, port int) (*tuple.Schema, error) {
	rt, ok := p.byName[opName]
	if !ok || port < 0 || port >= len(rt.spec.Inputs) {
		return nil, fmt.Errorf("pe %s: no input %s:%d", p.cfg.ID, opName, port)
	}
	return rt.spec.Inputs[port], nil
}

// OutputSchema returns the schema of an operator output port.
func (p *PE) OutputSchema(opName string, port int) (*tuple.Schema, error) {
	rt, ok := p.byName[opName]
	if !ok || port < 0 || port >= len(rt.spec.Outputs) {
		return nil, fmt.Errorf("pe %s: no output %s:%d", p.cfg.ID, opName, port)
	}
	return rt.spec.Outputs[port], nil
}

// AddOutlet attaches an external consumer to an operator output port under
// a link id; RemoveOutlet detaches it.
func (p *PE) AddOutlet(opName string, port int, linkID string, out Outlet) error {
	rt, ok := p.byName[opName]
	if !ok || port < 0 || port >= len(rt.spec.Outputs) {
		return fmt.Errorf("pe %s: no output %s:%d", p.cfg.ID, opName, port)
	}
	rt.outlets[port].add(linkID, out)
	return nil
}

// RemoveOutlet detaches a previously added external consumer.
func (p *PE) RemoveOutlet(opName string, port int, linkID string) error {
	rt, ok := p.byName[opName]
	if !ok || port < 0 || port >= len(rt.spec.Outputs) {
		return fmt.Errorf("pe %s: no output %s:%d", p.cfg.ID, opName, port)
	}
	rt.outlets[port].remove(linkID)
	return nil
}

// Control delivers a control command to a Controllable operator, returning
// the operator's response. The call is serialised with tuple processing.
func (p *PE) Control(opName, cmd string, args map[string]string) error {
	rt, ok := p.byName[opName]
	if !ok {
		return fmt.Errorf("pe %s: no operator %q", p.cfg.ID, opName)
	}
	if _, ok := rt.op.(opapi.Controllable); !ok {
		return fmt.Errorf("pe %s: operator %q is not controllable", p.cfg.ID, opName)
	}
	msg := &controlMsg{cmd: cmd, args: args, done: make(chan error, 1)}
	if len(rt.spec.Inputs) == 0 {
		// Sources have no consume loop; execute inline (the Run goroutine
		// must tolerate concurrent Control, documented on Controllable).
		return rt.op.(opapi.Controllable).Control(cmd, args)
	}
	select {
	case rt.in <- queued{ctl: msg}:
	case <-p.kill:
		return fmt.Errorf("pe %s: not running", p.cfg.ID)
	}
	select {
	case err := <-msg.done:
		return err
	case <-p.kill:
		return fmt.Errorf("pe %s: died during control", p.cfg.ID)
	}
}

// PEMetrics returns the PE-level metric set.
func (p *PE) PEMetrics() *metrics.Set { return p.peMetrics }

// noteStateAnchor records that the container's state is anchored to a
// snapshot as of now (a completed checkpoint, or a restore at start-up)
// and zeroes the age gauge.
func (p *PE) noteStateAnchor() {
	p.ckptAt.Store(p.cfg.Clock.Now().UnixNano())
	p.peMetrics.Counter(metrics.PECheckpointAgeMs).Set(0)
}

// noteStateAnchorAt anchors the container's state to a snapshot captured
// at the given past instant — the restore path uses the capture timestamp
// a v2 snapshot carries, so the age gauge reflects the true staleness of
// the adopted state rather than resetting to zero at restore time.
func (p *PE) noteStateAnchorAt(at time.Time) {
	nanos := at.UnixNano()
	if nanos == 0 {
		// A manual clock positioned exactly at the epoch would collide
		// with the "never anchored" sentinel; nudge by one nanosecond.
		nanos = 1
	}
	p.ckptAt.Store(nanos)
	p.refreshCheckpointAge()
}

// refreshCheckpointAge recomputes the snapshot-age gauge against the
// platform clock: -1 while the container has never anchored its state.
func (p *PE) refreshCheckpointAge() {
	anchored := p.ckptAt.Load()
	age := int64(-1)
	if anchored != 0 {
		age = (p.cfg.Clock.Now().UnixNano() - anchored) / int64(time.Millisecond)
	}
	p.peMetrics.Counter(metrics.PECheckpointAgeMs).Set(age)
}

// refreshRates recomputes the ingest/egress tuples-per-second gauges
// from the tuple-counter deltas since the previous snapshot. Snapshots
// closer together than 1ms keep the previous gauge values: the delta
// is too small to divide meaningfully and would only add noise.
func (p *PE) refreshRates(at time.Time) {
	in := p.peMetrics.Counter(metrics.PETuplesProcessed).Value()
	out := p.peMetrics.Counter(metrics.PETuplesSubmitted).Value()
	p.rateMu.Lock()
	defer p.rateMu.Unlock()
	dt := at.Sub(p.lastRateAt)
	if dt < time.Millisecond {
		return
	}
	sec := dt.Seconds()
	p.peMetrics.Counter(metrics.PEIngestRate).Set(int64(float64(in-p.lastIn)/sec + 0.5))
	p.peMetrics.Counter(metrics.PEEgressRate).Set(int64(float64(out-p.lastOut)/sec + 0.5))
	p.lastRateAt, p.lastIn, p.lastOut = at, in, out
}

// MetricsSnapshot renders every metric of the container as samples tagged
// with full identity, ready for the host controller to push to SRM.
func (p *PE) MetricsSnapshot() []metrics.Sample {
	at := p.cfg.Clock.Now()
	p.refreshCheckpointAge()
	p.refreshRates(at)
	var out []metrics.Sample
	for name, v := range p.peMetrics.Snapshot() {
		out = append(out, metrics.Sample{
			Scope: metrics.PEScope, Job: p.cfg.Job, App: p.cfg.App, PE: p.cfg.ID,
			Name: name, Value: v, At: at,
		})
	}
	for _, rt := range p.ops {
		base := metrics.Sample{
			Job: p.cfg.Job, App: p.cfg.App, PE: p.cfg.ID,
			Operator: rt.spec.Name, OperatorKind: rt.spec.Kind, At: at,
		}
		// Refresh the queue gauge at snapshot time.
		rt.om.Builtin.Counter(metrics.OpQueueSize).Set(int64(len(rt.in)))
		for name, v := range rt.om.Builtin.Snapshot() {
			s := base
			s.Scope, s.Name, s.Value = metrics.OperatorScope, name, v
			out = append(out, s)
		}
		for name, v := range rt.om.Custom.Snapshot() {
			s := base
			s.Scope, s.Name, s.Value, s.Custom = metrics.OperatorScope, name, v, true
			out = append(out, s)
		}
		for port, pm := range rt.inPM {
			for name, v := range pm.Snapshot() {
				s := base
				s.Scope, s.Port, s.Dir, s.Name, s.Value = metrics.PortScope, port, metrics.Input, name, v
				out = append(out, s)
			}
		}
		for port, pm := range rt.outPM {
			for name, v := range pm.Snapshot() {
				s := base
				s.Scope, s.Port, s.Dir, s.Name, s.Value = metrics.PortScope, port, metrics.Output, name, v
				out = append(out, s)
			}
		}
	}
	return out
}

// enqueue places an item on an operator's input queue, blocking for
// backpressure, and dropping the item if the PE has died.
func (rt *opRuntime) enqueue(port int, it Item) {
	select {
	case rt.in <- queued{port: port, item: it}:
	case <-rt.pe.kill:
	}
}

// enqueueBatch places a whole batch on the queue as one element, blocking
// for backpressure; a batch dropped on PE death is recycled here.
func (rt *opRuntime) enqueueBatch(port int, b *Batch) {
	select {
	case rt.in <- queued{port: port, batch: b}:
	case <-rt.pe.kill:
		PutBatch(b)
	}
}

// consumeLoop is the processing goroutine of one operator *instance*
// with inputs: all Process/ProcessMark/Control calls on this instance
// happen here, serialised. Note the unit is the instance, not the
// logical operator — a logical operator declared parallel runs as
// several replicated instances in separate PEs, each with its own
// consumeLoop, so "one goroutine per operator" holds only within a
// region replica.
func (rt *opRuntime) consumeLoop() {
	defer rt.pe.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			rt.pe.crash(fmt.Sprintf("operator %s panicked: %v", rt.spec.Name, r))
		}
	}()
	defer close(rt.loopDone)
	for {
		select {
		case q := <-rt.in:
			if q.ctl != nil {
				q.ctl.done <- rt.op.(opapi.Controllable).Control(q.ctl.cmd, q.ctl.args)
				continue
			}
			if q.sync != nil {
				if q.sync.claim() {
					q.sync.done <- q.sync.fn()
				}
				continue
			}
			if q.batch != nil {
				done := rt.deliverBatch(q.port, q.batch)
				PutBatch(q.batch)
				if done {
					return // all inputs finalised (or crashed)
				}
				continue
			}
			if rt.deliver(q) {
				return // all inputs finalised
			}
		case <-rt.pe.kill:
			return
		}
	}
}

// countTuples returns the number of tuple (non-mark) items in a run.
func countTuples(items []Item) int {
	n := 0
	for _, it := range items {
		if !it.IsMark() {
			n++
		}
	}
	return n
}

// deliverBatch hands one queued batch to the operator. Batch
// implementers receive each run of consecutive tuples as one
// ProcessBatch call (marks interleave in position through the per-item
// path); everyone else gets the per-item loop. Either way the
// partial-batch contract holds: when a mid-batch failure crashes the
// container, the undelivered remainder of the batch is logged and
// accounted on the PE's nTuplesDropped counter instead of vanishing
// silently. It reports whether the consume loop should exit.
func (rt *opRuntime) deliverBatch(port int, b *Batch) bool {
	items := b.Items
	if rt.batchOp == nil {
		for i, it := range items {
			if rt.deliver(queued{port: port, item: it}) {
				if !rt.finalised.Load() {
					rt.noteBatchLoss(countTuples(items[i+1:]))
				}
				return true
			}
		}
		return false
	}
	i := 0
	for i < len(items) {
		if items[i].IsMark() {
			if rt.deliver(queued{port: port, item: items[i]}) {
				if !rt.finalised.Load() {
					rt.noteBatchLoss(countTuples(items[i+1:]))
				}
				return true
			}
			i++
			continue
		}
		j := i
		for j < len(items) && !items[j].IsMark() {
			rt.viewTs = append(rt.viewTs, items[j].T)
			j++
		}
		n := int64(j - i)
		rt.view.SetView(rt.viewTs)
		rt.coalescing = true
		err := rt.batchOp.ProcessBatch(port, &rt.view)
		rt.coalescing = false
		clear(rt.viewTs)
		rt.viewTs = rt.viewTs[:0]
		rt.view.SetView(nil)
		if err != nil {
			rt.pe.crash(fmt.Sprintf("operator %s: %v", rt.spec.Name, err))
			// The failed call's tuples are not known to have been
			// processed; they and the rest of the batch are lost.
			rt.dropCoalesced()
			rt.noteBatchLoss(int(n) + countTuples(items[j:]))
			return true
		}
		rt.cProcessed.Add(n)
		rt.pIn[port].Add(n)
		rt.pe.cTuplesIn.Add(n)
		rt.flushCoalesced()
		i = j
	}
	return false
}

// noteBatchLoss logs and accounts tuples of an accepted batch that will
// never reach their operator because an earlier failure crashed the
// container mid-batch.
func (rt *opRuntime) noteBatchLoss(lost int) {
	if lost <= 0 {
		return
	}
	rt.pe.cTuplesDropped.Add(int64(lost))
	rt.pe.cfg.Logf("pe %s: operator %s: dropped %d undelivered tuple(s) after mid-batch failure",
		rt.pe.cfg.ID, rt.spec.Name, lost)
}

// flushCoalesced forwards the outputs buffered during a ProcessBatch
// call: every intra-PE target receives its port's run as one batch (one
// queue operation), external outlets receive the items in order (links
// batch internally), and the submission counters advance by the run's
// tuple count in one step per port.
func (rt *opRuntime) flushCoalesced() {
	for port := range rt.outBuf {
		buf := rt.outBuf[port]
		if len(buf) == 0 {
			continue
		}
		if nt := int64(countTuples(buf)); nt > 0 {
			rt.cSubmitted.Add(nt)
			rt.pOut[port].Add(nt)
			rt.pe.cTuplesOut.Add(nt)
		}
		for _, tgt := range rt.intra[port] {
			nb := GetBatch()
			nb.Items = append(nb.Items, buf...)
			tgt.op.enqueueBatch(tgt.port, nb)
		}
		os := rt.outlets[port]
		for _, it := range buf {
			os.each(it)
		}
		clear(buf)
		rt.outBuf[port] = buf[:0]
	}
}

// dropCoalesced discards outputs buffered by a ProcessBatch call that
// failed: the container is crashing, and forwarding the partial effects
// of a failed batch would double-deliver them after a restart replays
// upstream of the failure point.
func (rt *opRuntime) dropCoalesced() {
	for port := range rt.outBuf {
		clear(rt.outBuf[port])
		rt.outBuf[port] = rt.outBuf[port][:0]
	}
}

// deliver processes one queued item; it reports whether the operator has
// now seen final punctuation on every input port.
func (rt *opRuntime) deliver(q queued) bool {
	if q.item.IsMark() {
		rt.cPuncts.Inc()
		if q.item.Mark == tuple.FinalMark {
			if rt.finalSeen[q.port] {
				return false // duplicate final on a port: ignore
			}
			rt.finalSeen[q.port] = true
			rt.finals++
			rt.inPM[q.port].Counter(metrics.PortFinalPunctsQueued).Inc()
		}
		if err := rt.op.ProcessMark(q.port, q.item.Mark); err != nil {
			rt.pe.crash(fmt.Sprintf("operator %s: %v", rt.spec.Name, err))
			return true
		}
		if q.item.Mark == tuple.FinalMark && rt.finals == len(rt.spec.Inputs) {
			rt.forwardFinal()
			rt.finalised.Store(true)
			return true
		}
		return false
	}
	rt.cProcessed.Inc()
	rt.pIn[q.port].Inc()
	rt.pe.cTuplesIn.Inc()
	if err := rt.op.Process(q.port, q.item.T); err != nil {
		rt.pe.crash(fmt.Sprintf("operator %s: %v", rt.spec.Name, err))
		return true
	}
	return false
}

// sourceLoop drives a source operator; a nil return from Run emits final
// punctuation downstream.
func (rt *opRuntime) sourceLoop(src opapi.Source) {
	defer rt.pe.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			rt.pe.crash(fmt.Sprintf("source %s panicked: %v", rt.spec.Name, r))
		}
	}()
	stop := make(chan struct{})
	go func() {
		select {
		case <-rt.pe.stopSrc:
		case <-rt.pe.kill:
		}
		close(stop)
	}()
	if err := src.Run(stop); err != nil {
		rt.pe.crash(fmt.Sprintf("source %s: %v", rt.spec.Name, err))
		return
	}
	select {
	case <-rt.pe.kill:
		return // stopped or crashed: no final punctuation
	default:
	}
	rt.forwardFinal()
}

// forwardFinal emits FinalMark on every output port.
func (rt *opRuntime) forwardFinal() {
	for port := range rt.spec.Outputs {
		rt.emit(port, MarkItem(tuple.FinalMark))
	}
}

// emit routes an item leaving an output port to fused neighbours and
// external outlets, maintaining submission metrics. While a
// ProcessBatch call is in flight the item is buffered instead —
// flushCoalesced forwards the whole run (and accounts its metrics in
// bulk) when the call returns.
func (rt *opRuntime) emit(port int, it Item) {
	if rt.coalescing {
		rt.outBuf[port] = append(rt.outBuf[port], it)
		return
	}
	if !it.IsMark() {
		rt.cSubmitted.Inc()
		rt.pOut[port].Inc()
		rt.pe.cTuplesOut.Inc()
	}
	for _, tgt := range rt.intra[port] {
		tgt.op.enqueue(tgt.port, it)
	}
	rt.outlets[port].each(it)
}
