package pe

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/tuple"
)

var intSchema = tuple.MustSchema(tuple.Attribute{Name: "v", Type: tuple.Int})

// testSource emits n sequential ints and finishes.
type testSource struct {
	opapi.Base
	ctx opapi.Context
	n   int
}

func (s *testSource) Open(ctx opapi.Context) error { s.ctx = ctx; return nil }

func (s *testSource) Run(stop <-chan struct{}) error {
	for i := 0; i < s.n; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		t := tuple.Build(s.ctx.OutputSchema(0)).Int("v", int64(i)).Done()
		if err := s.ctx.Submit(0, t); err != nil {
			return err
		}
	}
	return nil
}

// doubler multiplies values by 2.
type doubler struct {
	opapi.Base
	ctx opapi.Context
}

func (d *doubler) Open(ctx opapi.Context) error { d.ctx = ctx; return nil }

func (d *doubler) Process(port int, t tuple.Tuple) error {
	out := tuple.Build(d.ctx.OutputSchema(0)).Int("v", t.Int("v")*2).Done()
	return d.ctx.Submit(0, out)
}

// collector gathers values and records lifecycle calls.
type collector struct {
	opapi.Base
	mu     sync.Mutex
	got    []int64
	finals int
	closed bool
}

func (c *collector) Process(port int, t tuple.Tuple) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, t.Int("v"))
	return nil
}

func (c *collector) ProcessMark(port int, m tuple.Mark) error {
	if m == tuple.FinalMark {
		c.mu.Lock()
		c.finals++
		c.mu.Unlock()
	}
	return nil
}

func (c *collector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *collector) values() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.got...)
}

// failer errors on the first tuple.
type failer struct{ opapi.Base }

func (f *failer) Process(int, tuple.Tuple) error { return errors.New("boom") }

// panicker panics on the first tuple.
type panicker struct{ opapi.Base }

func (p *panicker) Process(int, tuple.Tuple) error { panic("kaboom") }

// dynFilter is a controllable pass-through with a settable threshold.
type dynFilter struct {
	opapi.Base
	ctx opapi.Context
	min int64
}

func (d *dynFilter) Open(ctx opapi.Context) error { d.ctx = ctx; return nil }

func (d *dynFilter) Process(port int, t tuple.Tuple) error {
	if t.Int("v") >= d.min {
		return d.ctx.Submit(0, t)
	}
	return nil
}

func (d *dynFilter) Control(cmd string, args map[string]string) error {
	if cmd != "setMin" {
		return fmt.Errorf("unknown command %q", cmd)
	}
	var v int64
	if _, err := fmt.Sscanf(args["min"], "%d", &v); err != nil {
		return err
	}
	d.min = v
	return nil
}

type exit struct {
	pe      ids.PEID
	crashed bool
	reason  string
}

func newTestRegistry(coll *collector, n int) *opapi.Registry {
	reg := opapi.NewRegistry()
	reg.Register("TestSource", func() opapi.Operator { return &testSource{n: n} })
	reg.Register("Doubler", func() opapi.Operator { return &doubler{} })
	reg.Register("Coll", func() opapi.Operator { return coll })
	reg.Register("Failer", func() opapi.Operator { return &failer{} })
	reg.Register("Panicker", func() opapi.Operator { return &panicker{} })
	reg.Register("DynFilter", func() opapi.Operator { return &dynFilter{} })
	return reg
}

func srcSpec(name string) OpSpec {
	return OpSpec{Name: name, Kind: "TestSource", Outputs: []*tuple.Schema{intSchema}}
}

func midSpec(name, kind string) OpSpec {
	return OpSpec{Name: name, Kind: kind, Inputs: []*tuple.Schema{intSchema}, Outputs: []*tuple.Schema{intSchema}}
}

func sinkSpec(name string) OpSpec {
	return OpSpec{Name: name, Kind: "Coll", Inputs: []*tuple.Schema{intSchema}}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSinglePEPipeline(t *testing.T) {
	coll := &collector{}
	exitCh := make(chan exit, 1)
	p, err := New(Config{
		ID: 1, Job: 1, App: "test", Host: "h1",
		Ops:      []OpSpec{srcSpec("src"), midSpec("dbl", "Doubler"), sinkSpec("sink")},
		Wires:    []Wire{{"src", 0, "dbl", 0}, {"dbl", 0, "sink", 0}},
		Registry: newTestRegistry(coll, 5),
		OnExit:   func(id ids.PEID, crashed bool, reason string) { exitCh <- exit{id, crashed, reason} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "final punctuation at sink", func() bool {
		coll.mu.Lock()
		defer coll.mu.Unlock()
		return coll.finals == 1
	})
	vals := coll.values()
	if len(vals) != 5 {
		t.Fatalf("sink got %v", vals)
	}
	for i, v := range vals {
		if v != int64(i*2) {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	p.Stop()
	e := <-exitCh
	if e.crashed {
		t.Fatalf("clean stop reported as crash: %+v", e)
	}
	if !coll.closed {
		t.Fatal("Close not called on clean stop")
	}
	if p.State() != Stopped {
		t.Fatalf("state = %v", p.State())
	}
}

func TestPEMetricsSnapshot(t *testing.T) {
	coll := &collector{}
	p, err := New(Config{
		ID: 7, Job: 3, App: "metApp", Host: "h1",
		Ops:      []OpSpec{srcSpec("src"), sinkSpec("sink")},
		Wires:    []Wire{{"src", 0, "sink", 0}},
		Registry: newTestRegistry(coll, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "tuples at sink", func() bool { return len(coll.values()) == 10 })
	samples := p.MetricsSnapshot()
	find := func(scope metrics.Scope, op, name string) (int64, bool) {
		for _, s := range samples {
			if s.Scope == scope && s.Operator == op && s.Name == name {
				return s.Value, true
			}
		}
		return 0, false
	}
	if v, ok := find(metrics.OperatorScope, "src", metrics.OpTuplesSubmitted); !ok || v != 10 {
		t.Fatalf("src nTuplesSubmitted = %d, %v", v, ok)
	}
	if v, ok := find(metrics.OperatorScope, "sink", metrics.OpTuplesProcessed); !ok || v != 10 {
		t.Fatalf("sink nTuplesProcessed = %d, %v", v, ok)
	}
	if v, ok := find(metrics.PEScope, "", metrics.PETuplesProcessed); !ok || v != 10 {
		t.Fatalf("pe nTuplesProcessed = %d, %v", v, ok)
	}
	for _, s := range samples {
		if s.Job != 3 || s.App != "metApp" || s.PE != 7 {
			t.Fatalf("sample identity wrong: %+v", s)
		}
	}
	p.Stop()
}

func TestCrossPEPipeline(t *testing.T) {
	coll := &collector{}
	reg := newTestRegistry(coll, 8)
	up, err := New(Config{ID: 1, Job: 1, App: "x", Ops: []OpSpec{srcSpec("src")}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	down, err := New(Config{ID: 2, Job: 1, App: "x", Ops: []OpSpec{sinkSpec("sink")}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	inlet, err := down.ExternalInlet("sink", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := up.AddOutlet("src", 0, "link1", inlet); err != nil {
		t.Fatal(err)
	}
	if err := down.Start(); err != nil {
		t.Fatal(err)
	}
	if err := up.Start(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "cross-PE final", func() bool {
		coll.mu.Lock()
		defer coll.mu.Unlock()
		return coll.finals == 1
	})
	if got := len(coll.values()); got != 8 {
		t.Fatalf("sink got %d tuples", got)
	}
	up.Stop()
	down.Stop()
}

func TestRemoveOutletStopsFlow(t *testing.T) {
	coll := &collector{}
	reg := opapi.NewRegistry()
	block := make(chan struct{})
	reg.Register("SlowSource", func() opapi.Operator { return &gatedSource{gate: block} })
	reg.Register("Coll", func() opapi.Operator { return coll })
	up, _ := New(Config{ID: 1, Job: 1, App: "x",
		Ops: []OpSpec{{Name: "src", Kind: "SlowSource", Outputs: []*tuple.Schema{intSchema}}}, Registry: reg})
	down, _ := New(Config{ID: 2, Job: 1, App: "x", Ops: []OpSpec{sinkSpec("sink")}, Registry: reg})
	inlet, _ := down.ExternalInlet("sink", 0)
	if err := up.AddOutlet("src", 0, "l", inlet); err != nil {
		t.Fatal(err)
	}
	_ = down.Start()
	_ = up.Start()
	block <- struct{}{} // allow one tuple
	waitCond(t, "first tuple", func() bool { return len(coll.values()) == 1 })
	if err := up.RemoveOutlet("src", 0, "l"); err != nil {
		t.Fatal(err)
	}
	block <- struct{}{} // second tuple goes nowhere
	time.Sleep(10 * time.Millisecond)
	if got := len(coll.values()); got != 1 {
		t.Fatalf("sink got %d tuples after outlet removal", got)
	}
	up.Stop()
	down.Stop()
}

// gatedSource emits one tuple per receive on gate.
type gatedSource struct {
	opapi.Base
	ctx  opapi.Context
	gate chan struct{}
}

func (g *gatedSource) Open(ctx opapi.Context) error { g.ctx = ctx; return nil }

func (g *gatedSource) Run(stop <-chan struct{}) error {
	var i int64
	for {
		select {
		case <-stop:
			return nil
		case <-g.gate:
			t := tuple.Build(g.ctx.OutputSchema(0)).Int("v", i).Done()
			if err := g.ctx.Submit(0, t); err != nil {
				return err
			}
			i++
		}
	}
}

func TestOperatorErrorCrashesPE(t *testing.T) {
	coll := &collector{}
	exitCh := make(chan exit, 1)
	p, _ := New(Config{ID: 1, Job: 1, App: "x",
		Ops:      []OpSpec{srcSpec("src"), midSpec("bad", "Failer"), sinkSpec("sink")},
		Wires:    []Wire{{"src", 0, "bad", 0}, {"bad", 0, "sink", 0}},
		Registry: newTestRegistry(coll, 5),
		OnExit:   func(id ids.PEID, crashed bool, reason string) { exitCh <- exit{id, crashed, reason} },
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	e := <-exitCh
	if !e.crashed || e.reason == "" {
		t.Fatalf("exit = %+v", e)
	}
	if p.State() != Crashed {
		t.Fatalf("state = %v", p.State())
	}
	if p.CrashReason() == "" {
		t.Fatal("no crash reason recorded")
	}
}

func TestOperatorPanicCrashesPE(t *testing.T) {
	coll := &collector{}
	exitCh := make(chan exit, 1)
	p, _ := New(Config{ID: 1, Job: 1, App: "x",
		Ops:      []OpSpec{srcSpec("src"), midSpec("bad", "Panicker"), sinkSpec("sink")},
		Wires:    []Wire{{"src", 0, "bad", 0}, {"bad", 0, "sink", 0}},
		Registry: newTestRegistry(coll, 5),
		OnExit:   func(id ids.PEID, crashed bool, reason string) { exitCh <- exit{id, crashed, reason} },
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	e := <-exitCh
	if !e.crashed {
		t.Fatalf("exit = %+v", e)
	}
}

func TestKillDropsStateAndSkipsClose(t *testing.T) {
	coll := &collector{}
	exitCh := make(chan exit, 1)
	reg := opapi.NewRegistry()
	gate := make(chan struct{}, 100)
	reg.Register("SlowSource", func() opapi.Operator { return &gatedSource{gate: gate} })
	reg.Register("Coll", func() opapi.Operator { return coll })
	p, _ := New(Config{ID: 9, Job: 1, App: "x",
		Ops:      []OpSpec{{Name: "src", Kind: "SlowSource", Outputs: []*tuple.Schema{intSchema}}, sinkSpec("sink")},
		Wires:    []Wire{{"src", 0, "sink", 0}},
		Registry: reg,
		OnExit:   func(id ids.PEID, crashed bool, reason string) { exitCh <- exit{id, crashed, reason} },
	})
	_ = p.Start()
	gate <- struct{}{}
	waitCond(t, "one tuple", func() bool { return len(coll.values()) == 1 })
	p.Kill("injected fault")
	e := <-exitCh
	if !e.crashed || e.reason != "injected fault" || e.pe != 9 {
		t.Fatalf("exit = %+v", e)
	}
	if coll.closed {
		t.Fatal("Close called on crash")
	}
	// Items delivered to a dead PE are dropped silently (tuple loss).
	inlet, _ := p.ExternalInlet("sink", 0)
	inlet(TupleItem(tuple.Build(intSchema).Int("v", 99).Done()))
	if got := len(coll.values()); got != 1 {
		t.Fatalf("dead PE processed a tuple: %v", coll.values())
	}
}

func TestControlCommand(t *testing.T) {
	coll := &collector{}
	reg := opapi.NewRegistry()
	gate := make(chan struct{}, 100)
	reg.Register("SlowSource", func() opapi.Operator { return &gatedSource{gate: gate} })
	reg.Register("Coll", func() opapi.Operator { return coll })
	reg.Register("DynFilter", func() opapi.Operator { return &dynFilter{} })
	p, _ := New(Config{ID: 1, Job: 1, App: "x",
		Ops: []OpSpec{
			{Name: "src", Kind: "SlowSource", Outputs: []*tuple.Schema{intSchema}},
			midSpec("filt", "DynFilter"),
			sinkSpec("sink"),
		},
		Wires:    []Wire{{"src", 0, "filt", 0}, {"filt", 0, "sink", 0}},
		Registry: reg,
	})
	_ = p.Start()
	gate <- struct{}{} // v=0 passes (min 0)
	waitCond(t, "v=0", func() bool { return len(coll.values()) == 1 })
	if err := p.Control("filt", "setMin", map[string]string{"min": "5"}); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // v=1 now filtered
	gate <- struct{}{} // v=2 filtered
	time.Sleep(10 * time.Millisecond)
	if got := len(coll.values()); got != 1 {
		t.Fatalf("filter did not apply: %v", coll.values())
	}
	if err := p.Control("filt", "bogus", nil); err == nil {
		t.Fatal("bogus command accepted")
	}
	if err := p.Control("sink", "x", nil); err == nil {
		t.Fatal("control on non-controllable accepted")
	}
	if err := p.Control("ghost", "x", nil); err == nil {
		t.Fatal("control on unknown operator accepted")
	}
	p.Stop()
}

func TestDuplicateFinalIgnored(t *testing.T) {
	coll := &collector{}
	p, _ := New(Config{ID: 1, Job: 1, App: "x",
		Ops:      []OpSpec{sinkSpec("sink")},
		Registry: newTestRegistry(coll, 0),
	})
	_ = p.Start()
	inlet, _ := p.ExternalInlet("sink", 0)
	inlet(MarkItem(tuple.FinalMark))
	inlet(MarkItem(tuple.FinalMark))
	waitCond(t, "final", func() bool {
		coll.mu.Lock()
		defer coll.mu.Unlock()
		return coll.finals >= 1
	})
	time.Sleep(10 * time.Millisecond)
	coll.mu.Lock()
	finals := coll.finals
	coll.mu.Unlock()
	if finals != 1 {
		t.Fatalf("finals = %d", finals)
	}
	p.Stop()
}

func TestNewRejectsBadConfig(t *testing.T) {
	coll := &collector{}
	reg := newTestRegistry(coll, 1)
	if _, err := New(Config{ID: 1, Ops: []OpSpec{{Name: "x", Kind: "Nope"}}, Registry: reg}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(Config{ID: 1, Ops: []OpSpec{sinkSpec("a"), sinkSpec("a")}, Registry: reg}); err == nil {
		t.Fatal("duplicate operator accepted")
	}
	if _, err := New(Config{ID: 1, Ops: []OpSpec{srcSpec("s")},
		Wires: []Wire{{"s", 0, "ghost", 0}}, Registry: reg}); err == nil {
		t.Fatal("wire to unknown operator accepted")
	}
	if _, err := New(Config{ID: 1, Ops: []OpSpec{srcSpec("s"), sinkSpec("k")},
		Wires: []Wire{{"s", 3, "k", 0}}, Registry: reg}); err == nil {
		t.Fatal("wire port out of range accepted")
	}
}

func TestStartTwiceFails(t *testing.T) {
	coll := &collector{}
	p, _ := New(Config{ID: 1, Ops: []OpSpec{sinkSpec("sink")}, Registry: newTestRegistry(coll, 0)})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
	p.Stop()
}

func TestInletErrors(t *testing.T) {
	coll := &collector{}
	p, _ := New(Config{ID: 1, Ops: []OpSpec{sinkSpec("sink")}, Registry: newTestRegistry(coll, 0)})
	if _, err := p.ExternalInlet("ghost", 0); err == nil {
		t.Fatal("inlet for unknown operator")
	}
	if _, err := p.ExternalInlet("sink", 5); err == nil {
		t.Fatal("inlet for bad port")
	}
	if err := p.AddOutlet("sink", 0, "l", func(Item) {}); err == nil {
		t.Fatal("outlet on sink output accepted")
	}
	if _, err := p.InputSchema("sink", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OutputSchema("sink", 0); err == nil {
		t.Fatal("OutputSchema on sink succeeded")
	}
}
