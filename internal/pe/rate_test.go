package pe

import (
	"testing"
	"time"

	"streamorca/internal/metrics"
	"streamorca/internal/vclock"
)

func peGauge(t *testing.T, samples []metrics.Sample, name string) int64 {
	t.Helper()
	for _, s := range samples {
		if s.Scope == metrics.PEScope && s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("no PE-scope sample %q", name)
	return 0
}

// TestIngressEgressRateGauges pins the tuples-per-second gauges against
// a manual clock: a pipeline that processes 10 tuples (source emit +
// doubler in/out + sink in) over one virtual second must report the
// counter deltas divided by the elapsed time, and a later idle second
// must decay both gauges back to zero.
func TestIngressEgressRateGauges(t *testing.T) {
	coll := &collector{}
	clock := vclock.NewManual(time.Unix(0, 0))
	p, err := New(Config{
		ID: 1, Job: 1, App: "test", Host: "h1", Clock: clock,
		Ops:      []OpSpec{srcSpec("src"), midSpec("dbl", "Doubler"), sinkSpec("sink")},
		Wires:    []Wire{{"src", 0, "dbl", 0}, {"dbl", 0, "sink", 0}},
		Registry: newTestRegistry(coll, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	waitCond(t, "all tuples at sink", func() bool {
		return len(coll.values()) == 10
	})

	// Both gauges exist (pre-created) and read zero before any interval
	// has elapsed: the sub-millisecond snapshot keeps the baseline.
	first := p.MetricsSnapshot()
	if v := peGauge(t, first, metrics.PEIngestRate); v != 0 {
		t.Fatalf("ingest rate before any elapsed time = %d, want 0", v)
	}

	inC := p.peMetrics.Counter(metrics.PETuplesProcessed).Value()
	outC := p.peMetrics.Counter(metrics.PETuplesSubmitted).Value()
	if inC == 0 || outC == 0 {
		t.Fatalf("tuple counters not advancing: in=%d out=%d", inC, outC)
	}

	clock.Advance(time.Second)
	snap := p.MetricsSnapshot()
	if got := peGauge(t, snap, metrics.PEIngestRate); got != inC {
		t.Fatalf("ingest rate = %d tuples/sec, want %d (counter delta over 1s)", got, inC)
	}
	if got := peGauge(t, snap, metrics.PEEgressRate); got != outC {
		t.Fatalf("egress rate = %d tuples/sec, want %d (counter delta over 1s)", got, outC)
	}

	// An idle second decays the gauges to zero — they are rates, not
	// cumulative counters.
	clock.Advance(time.Second)
	idle := p.MetricsSnapshot()
	if got := peGauge(t, idle, metrics.PEIngestRate); got != 0 {
		t.Fatalf("idle ingest rate = %d, want 0", got)
	}
	if got := peGauge(t, idle, metrics.PEEgressRate); got != 0 {
		t.Fatalf("idle egress rate = %d, want 0", got)
	}
}
