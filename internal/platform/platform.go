// Package platform assembles the System S equivalent: SRM (resource
// manager and metrics collector), a simulated host cluster with per-host
// controllers, and SAM (application manager) wired together exactly as
// §2.2 describes. An Instance is what examples, experiments, and the
// orchestrator run against.
package platform

import (
	"fmt"
	"time"

	"streamorca/internal/ckpt"
	"streamorca/internal/cluster"
	"streamorca/internal/opapi"
	"streamorca/internal/sam"
	"streamorca/internal/srm"
	"streamorca/internal/vclock"
)

// HostSpec declares one simulated host.
type HostSpec struct {
	Name string
	Tags []string
}

// Options configures an Instance.
type Options struct {
	// Clock drives all time-dependent behaviour; nil means the wall
	// clock. Experiments use a vclock.Manual for determinism.
	Clock vclock.Clock
	// Hosts to bring up; at least one is required.
	Hosts []HostSpec
	// MetricsInterval is the HC→SRM push period (paper default: 3 s).
	MetricsInterval time.Duration
	// QueueCap bounds operator input queues (default 256).
	QueueCap int
	// Registry resolves operator kinds; nil means opapi.Default.
	Registry *opapi.Registry
	// Checkpoint is the operator-state snapshot store; nil disables
	// checkpointing (restarted PEs come back empty).
	Checkpoint ckpt.Store
	// CheckpointInterval is the per-PE automatic snapshot period; 0
	// means on-demand checkpoints only.
	CheckpointInterval time.Duration
	// Retry bounds and paces SAM's restart and checkpoint actuations.
	// The zero value keeps the single-attempt behaviour deterministic
	// virtual-clock tests rely on; sam.DefaultRetryPolicy() opts into
	// bounded retries with exponential backoff.
	Retry sam.RetryPolicy
	// Logf receives platform diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Instance is one running platform.
type Instance struct {
	Clock   vclock.Clock
	SRM     *srm.SRM
	Cluster *cluster.Cluster
	SAM     *sam.SAM
}

// NewInstance boots the platform daemons and hosts.
func NewInstance(opts Options) (*Instance, error) {
	if len(opts.Hosts) == 0 {
		return nil, fmt.Errorf("platform: at least one host required")
	}
	clock := opts.Clock
	if clock == nil {
		clock = vclock.Real()
	}
	resMgr := srm.New()
	cl := cluster.New(clock, resMgr, opts.MetricsInterval)
	for _, h := range opts.Hosts {
		if err := cl.AddHost(h.Name, h.Tags...); err != nil {
			cl.Close()
			return nil, err
		}
	}
	appMgr := sam.New(sam.Config{
		Clock:        clock,
		Cluster:      cl,
		SRM:          resMgr,
		Registry:     opts.Registry,
		QueueCap:     opts.QueueCap,
		Logf:         opts.Logf,
		Ckpt:         opts.Checkpoint,
		CkptInterval: opts.CheckpointInterval,
		Retry:        opts.Retry,
	})
	return &Instance{Clock: clock, SRM: resMgr, Cluster: cl, SAM: appMgr}, nil
}

// FlushMetrics pushes all host metrics to SRM immediately, giving tests
// and experiment drivers deterministic metric visibility.
func (i *Instance) FlushMetrics() { i.Cluster.FlushMetrics() }

// Close shuts down every job and host controller.
func (i *Instance) Close() { i.Cluster.Close() }
