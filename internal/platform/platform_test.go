package platform

import (
	"testing"
	"time"

	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/ops"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

func TestNewInstanceRequiresHosts(t *testing.T) {
	if _, err := NewInstance(Options{}); err == nil {
		t.Fatal("instance without hosts accepted")
	}
}

func TestNewInstanceRejectsDuplicateHosts(t *testing.T) {
	_, err := NewInstance(Options{Hosts: []HostSpec{{Name: "h1"}, {Name: "h1"}}})
	if err == nil {
		t.Fatal("duplicate hosts accepted")
	}
}

func TestInstanceEndToEnd(t *testing.T) {
	inst, err := NewInstance(Options{
		Hosts:           []HostSpec{{Name: "h1", Tags: []string{"ssd"}}, {Name: "h2"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	if got := len(inst.SRM.Hosts()); got != 2 {
		t.Fatalf("SRM knows %d hosts", got)
	}
	schema := tuple.MustSchema(tuple.Attribute{Name: "seq", Type: tuple.Int})
	ops.ResetCollector("plat")
	b := compiler.NewApp("Plat")
	src := b.AddOperator("src", ops.KindBeacon).Out(schema).Param("count", "5")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(schema).Param("collectorId", "plat")
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	job, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ops.Collector("plat").Finals() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never finished")
		}
		time.Sleep(time.Millisecond)
	}
	// FlushMetrics makes samples visible without waiting out the interval.
	inst.FlushMetrics()
	if len(inst.SRM.Query([]ids.JobID{job})) == 0 {
		t.Fatal("no samples after FlushMetrics")
	}
}

func TestInstanceUsesProvidedClock(t *testing.T) {
	clock := vclock.NewManual(time.Unix(1000, 0))
	inst, err := NewInstance(Options{Clock: clock, Hosts: []HostSpec{{Name: "h1"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if !inst.Clock.Now().Equal(time.Unix(1000, 0)) {
		t.Fatal("instance ignored the provided clock")
	}
}
