package policies

import (
	"fmt"
	"sync"

	"streamorca/internal/apps"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
)

// Composition is the §5.3 adaptation routine: it starts the C2
// applications (their C1 dependencies come up automatically through the
// dependency manager), watches the aggregate per-attribute
// profile-discovery custom metrics across all C2 applications, spawns a
// C3 segmentation job when enough *new* profiles with an attribute
// accumulated (a core.AtLeast guard over the aggregate), and cancels
// each C3 job when its sink reports a final punctuation.
type Composition struct {
	// C2Configs are the dependency-manager configuration ids of the C2
	// applications to start (their C1 dependencies follow automatically).
	C2Configs []string
	// C3App names the registered segmentation application
	// (AttributeAggregator); it is submitted with an "attribute"
	// parameter.
	C3App string
	// C3Collector produces the collector id parameter per attribute.
	C3Collector func(attr string) string
	// Threshold is the number of newly discovered profiles with an
	// attribute that triggers a C3 submission (paper example: 1500).
	Threshold int64

	mu        sync.Mutex
	perApp    map[string]map[string]int64 // attr -> app -> latest count
	totals    map[string]int64            // attr -> last observed aggregate count
	lastSub   map[string]int64            // attr -> aggregate count at last submission
	activeC3  map[string]ids.JobID        // attr -> running C3 job
	jobToAttr map[ids.JobID]string
	subs      []string // attributes, in submission order
	cancels   []string // attributes, in cancellation order
}

// metricToAttr maps the enricher's custom metric names to attributes.
var metricToAttr = map[string]string{
	apps.MetricProfilesWithAge:      "age",
	apps.MetricProfilesWithGender:   "gender",
	apps.MetricProfilesWithLocation: "location",
}

// Name implements core.Routine.
func (p *Composition) Name() string { return "composition" }

// Setup starts the C2 applications (C1 readers come up as dependencies,
// §5.3's actuation) and registers the two metric subscriptions. A
// failing StartApp or a duplicate scope key propagates out of
// Service.Start.
func (p *Composition) Setup(sc *core.SetupContext) error {
	p.mu.Lock()
	p.perApp = make(map[string]map[string]int64)
	p.totals = make(map[string]int64)
	p.lastSub = make(map[string]int64)
	p.activeC3 = make(map[string]ids.JobID)
	p.jobToAttr = make(map[ids.JobID]string)
	p.mu.Unlock()

	act := sc.Actions()
	for _, id := range p.C2Configs {
		if err := act.StartApp(id); err != nil {
			return fmt.Errorf("composition: start %s: %w", id, err)
		}
	}
	c2scope := core.NewOperatorMetricScope("c2profiles").
		CustomMetricsOnly().
		AddOperatorMetric(apps.MetricProfilesWithAge, apps.MetricProfilesWithGender, apps.MetricProfilesWithLocation)
	finalScope := core.NewPortMetricScope("c3final").
		AddApplicationFilter(p.C3App).
		AddPortMetric(metrics.PortFinalPunctsQueued).
		SetDirection(metrics.Input)
	return sc.Subscribe(
		core.OnOperatorMetric(c2scope,
			core.AtLeast(p.observeNewProfiles, float64(p.Threshold), p.submitC3)),
		core.OnPortMetric(finalScope, p.cancelFinished),
	)
}

// observeNewProfiles aggregates per-attribute discovery counts across
// all C2 applications (duplicates included, as the paper notes) and
// reports how many new profiles accumulated since the last submission;
// an attribute whose C3 job is still running is not evaluable.
func (p *Composition) observeNewProfiles(ctx *core.OperatorMetricContext) (float64, bool) {
	attr, ok := metricToAttr[ctx.Metric]
	if !ok {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.perApp[attr] == nil {
		p.perApp[attr] = make(map[string]int64)
	}
	p.perApp[attr][ctx.App] = ctx.Value
	var total int64
	for _, v := range p.perApp[attr] {
		total += v
	}
	p.totals[attr] = total
	if _, busy := p.activeC3[attr]; busy {
		return 0, false
	}
	return float64(total - p.lastSub[attr]), true
}

// submitC3 spawns the segmentation job for the metric's attribute. A
// rejected submission is an error (logged and counted by the service)
// and leaves the aggregate untouched, so the next metric round retries.
func (p *Composition) submitC3(ctx *core.OperatorMetricContext, act *core.Actions) error {
	attr := metricToAttr[ctx.Metric]
	params := map[string]string{"attribute": attr}
	if p.C3Collector != nil {
		params["collector"] = p.C3Collector(attr)
	} else {
		params["collector"] = "segment-" + attr
	}
	job, err := act.SubmitApplication(p.C3App, params)
	if err != nil {
		return fmt.Errorf("composition: submit %s for %q: %w", p.C3App, attr, err)
	}
	p.mu.Lock()
	p.activeC3[attr] = job
	p.jobToAttr[job] = attr
	p.lastSub[attr] = p.totals[attr]
	p.subs = append(p.subs, attr)
	p.mu.Unlock()
	return nil
}

// cancelFinished cancels a C3 job once its sink saw the final
// punctuation — the application has processed all of its tuples (§5.3).
func (p *Composition) cancelFinished(ctx *core.PortMetricContext, act *core.Actions) error {
	if ctx.Metric != metrics.PortFinalPunctsQueued || ctx.Value < 1 {
		return core.ErrSkipped
	}
	p.mu.Lock()
	attr, ok := p.jobToAttr[ctx.Job]
	if ok {
		delete(p.jobToAttr, ctx.Job)
		delete(p.activeC3, attr)
		p.cancels = append(p.cancels, attr)
	}
	p.mu.Unlock()
	if !ok {
		return core.ErrSkipped
	}
	if err := act.CancelJob(ctx.Job); err != nil {
		return fmt.Errorf("composition: cancel %s: %w", ctx.Job, err)
	}
	return nil
}

// Submissions returns the attributes for which C3 jobs were submitted,
// in order.
func (p *Composition) Submissions() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.subs...)
}

// Cancellations returns the attributes whose C3 jobs were cancelled, in
// order.
func (p *Composition) Cancellations() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.cancels...)
}

// ActiveC3 returns the attribute → job map of running C3 jobs.
func (p *Composition) ActiveC3() map[string]ids.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]ids.JobID, len(p.activeC3))
	for a, j := range p.activeC3 {
		out[a] = j
	}
	return out
}
