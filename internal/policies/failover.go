package policies

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"streamorca/internal/core"
	"streamorca/internal/ids"
)

// StatusChange records one active-replica transition (the status file
// updates a GUI would poll in the paper's Figure 9 demo).
type StatusChange struct {
	At        time.Time
	NewActive ids.JobID
	OldActive ids.JobID
	Reason    string
}

// Failover is the §5.2 adaptation routine: it runs N replicas of the
// Trend Calculator in exclusive host pools, tracks which replica is
// active, and on a PE failure of the active replica promotes the oldest
// healthy replica (the one with the longest history, hence the fullest
// sliding windows) before restarting the failed PE. Promotion is guarded
// with core.OncePerEpoch, so one incident taking down several PEs of the
// active replica (§4.2's shared failure epoch) promotes exactly once.
type Failover struct {
	// App names the registered application to replicate.
	App string
	// Replicas is the number of copies to run (paper: 3).
	Replicas int
	// SubmitParams produces per-replica submission parameters (e.g. a
	// distinct display collector per replica).
	SubmitParams func(replica int) map[string]string
	// StatusPath, when non-empty, receives the replica status file.
	StatusPath string

	mu        sync.Mutex
	jobs      []ids.JobID
	birth     map[ids.JobID]time.Time // submit or last restart time
	active    ids.JobID
	failovers int
	restarts  int
	log       []StatusChange
}

// Name implements core.Routine.
func (p *Failover) Name() string { return "failover" }

// Setup configures exclusive host pools, submits the replicas, assigns
// initial active/backup status, and subscribes to PE failures of the
// application (§5.2's actuation description). Every setup failure —
// unknown application, rejected replica submission, duplicate scope
// key — propagates out of Service.Start.
func (p *Failover) Setup(sc *core.SetupContext) error {
	act := sc.Actions()
	if p.Replicas <= 0 {
		p.Replicas = 3
	}
	if err := act.MakeExclusiveHostPools(p.App); err != nil {
		return fmt.Errorf("failover: exclusive pools for %s: %w", p.App, err)
	}
	p.mu.Lock()
	p.birth = make(map[ids.JobID]time.Time)
	p.mu.Unlock()
	for i := 0; i < p.Replicas; i++ {
		var params map[string]string
		if p.SubmitParams != nil {
			params = p.SubmitParams(i)
		}
		job, err := act.SubmitApplication(p.App, params)
		if err != nil {
			return fmt.Errorf("failover: submit replica %d: %w", i, err)
		}
		p.mu.Lock()
		p.jobs = append(p.jobs, job)
		p.birth[job] = act.Clock().Now()
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.active = p.jobs[0]
	p.mu.Unlock()
	p.writeStatus()
	promote := core.OncePerEpoch(
		func(ctx *core.PEFailureContext) uint64 { return ctx.Epoch },
		p.promoteOldestBackup)
	return sc.Subscribe(core.OnPEFailure(
		core.NewPEFailureScope("replicaFailures").AddApplicationFilter(p.App),
		func(ctx *core.PEFailureContext, act *core.Actions) error {
			if err := promote(ctx, act); err != nil && !errors.Is(err, core.ErrSkipped) {
				return err
			}
			return p.restartFailed(ctx, act)
		}))
}

// promoteOldestBackup switches the active replica to the oldest healthy
// backup when the failed PE belongs to the active one; failures of
// backups skip, leaving the incident's epoch open in the OncePerEpoch
// guard for a possibly following active-replica failure.
func (p *Failover) promoteOldestBackup(ctx *core.PEFailureContext, act *core.Actions) error {
	p.mu.Lock()
	if ctx.Job != p.active {
		p.mu.Unlock()
		return core.ErrSkipped
	}
	oldActive := p.active
	best := ids.InvalidJob
	var bestBirth time.Time
	for _, j := range p.jobs {
		if j == ctx.Job {
			continue
		}
		if best == ids.InvalidJob || p.birth[j].Before(bestBirth) {
			best, bestBirth = j, p.birth[j]
		}
	}
	if best == ids.InvalidJob {
		p.mu.Unlock()
		return core.ErrSkipped
	}
	p.active = best
	p.failovers++
	p.log = append(p.log, StatusChange{
		At: ctx.At, NewActive: best, OldActive: oldActive, Reason: ctx.Reason,
	})
	p.mu.Unlock()
	p.writeStatus()
	return nil
}

// restartFailed restarts the failed PE; the replica's window state is
// gone, so it rejoins as the youngest replica.
func (p *Failover) restartFailed(ctx *core.PEFailureContext, act *core.Actions) error {
	if err := act.RestartPE(ctx.PE); err != nil {
		return fmt.Errorf("failover: restart %s: %w", ctx.PE, err)
	}
	p.mu.Lock()
	p.birth[ctx.Job] = act.Clock().Now()
	p.restarts++
	p.mu.Unlock()
	return nil
}

// writeStatus renders the replica table to StatusPath (if configured),
// the file the paper's GUI polls for the "active" highlight.
func (p *Failover) writeStatus() {
	if p.StatusPath == "" {
		return
	}
	p.mu.Lock()
	var b strings.Builder
	for i, j := range p.jobs {
		status := "backup"
		if j == p.active {
			status = "active"
		}
		fmt.Fprintf(&b, "replica %d (%s): %s\n", i, j, status)
	}
	p.mu.Unlock()
	_ = os.WriteFile(p.StatusPath, []byte(b.String()), 0o644)
}

// Active returns the currently active replica's job id.
func (p *Failover) Active() ids.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Jobs returns the replica job ids in submission order.
func (p *Failover) Jobs() []ids.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ids.JobID(nil), p.jobs...)
}

// ReplicaIndex maps a job id back to its replica index, or -1.
func (p *Failover) ReplicaIndex(job ids.JobID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, j := range p.jobs {
		if j == job {
			return i
		}
	}
	return -1
}

// Failovers returns how many active-replica promotions happened.
func (p *Failover) Failovers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failovers
}

// Restarts returns how many failed PEs the policy restarted.
func (p *Failover) Restarts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restarts
}

// Log returns the status-change history, oldest first.
func (p *Failover) Log() []StatusChange {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]StatusChange(nil), p.log...)
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}
