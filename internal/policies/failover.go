package policies

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
)

// StatusChange records one active-replica transition (the status file
// updates a GUI would poll in the paper's Figure 9 demo).
type StatusChange struct {
	At        time.Time
	NewActive ids.JobID
	OldActive ids.JobID
	Reason    string
}

// DefaultStalenessDebounce is how many consecutive over-limit
// snapshot-age observations the staleness gate demands before it
// refreshes the active replica's checkpoint.
const DefaultStalenessDebounce = 2

// Failover is the §5.2 adaptation routine, rebuilt around operator-state
// checkpointing: it runs N replicas of the Trend Calculator in exclusive
// host pools, tracks which replica is active, and on a PE failure of the
// active replica promotes the backup whose latest snapshot is freshest.
//
// The paper promoted the replica with the longest uptime as a proxy for
// the fullest sliding windows. With durable snapshots that proxy is
// obsolete: a replica that restarted five seconds ago but restored from
// a fresh checkpoint holds full windows, while a long-lived replica that
// never snapshotted would come back empty from its next failure. The
// policy therefore ranks candidates by lastCheckpointAgeMs — the
// snapshot-age gauge every PE publishes — observed through an OnPEMetric
// subscription; replicas with no reported snapshot rank after every
// replica with one, and uptime survives only as the tie-break.
//
// Two guard compositions carry the cross-cutting logic. Promotion is
// wrapped in core.OncePerEpoch, so one incident taking down several PEs
// of the active replica (§4.2's shared failure epoch) promotes exactly
// once; before committing a promotion the routine issues CheckpointPE
// against the demoted replica's surviving PEs, so the loser's
// recoverable state is never older than this incident. Independently, a
// core.Threshold over the snapshot-age observation — debounced with
// core.Debounce against metric jitter — refreshes the active replica's
// checkpoint whenever its snapshot grows older than MaxSnapshotAge.
type Failover struct {
	// App names the registered application to replicate.
	App string
	// Replicas is the number of copies to run (paper: 3).
	Replicas int
	// SubmitParams produces per-replica submission parameters (e.g. a
	// distinct display collector per replica).
	SubmitParams func(replica int) map[string]string
	// StatusPath, when non-empty, receives the replica status file.
	StatusPath string
	// MaxSnapshotAge bounds how stale the active replica's latest
	// snapshot may grow before the staleness gate checkpoints it again;
	// 0 disables the gate (snapshot ages are still observed and ranked).
	MaxSnapshotAge time.Duration
	// StalenessDebounce is the number of consecutive over-limit
	// observations the gate requires before refreshing; default
	// DefaultStalenessDebounce.
	StalenessDebounce int

	// gate is the composed snapshot-age handler, built once in Setup
	// (tests drive it directly with synthetic contexts).
	gate core.Handler[core.PEMetricContext]

	mu          sync.Mutex
	jobs        []ids.JobID
	birth       map[ids.JobID]time.Time // submit or last restart time
	ages        map[ids.JobID]map[ids.PEID]int64
	active      ids.JobID
	failovers   int
	restarts    int
	refreshes   int
	promotionTx uint64 // TxID of the event whose handler last promoted
	log         []StatusChange
}

// Name implements core.Routine.
func (p *Failover) Name() string { return "failover" }

// Setup configures exclusive host pools, submits the replicas, assigns
// initial active/backup status, and subscribes to PE failures and
// snapshot-age metrics of the application (§5.2's actuation description
// plus the checkpoint-aware health signal). Every setup failure —
// unknown application, rejected replica submission, duplicate scope
// key — propagates out of Service.Start.
func (p *Failover) Setup(sc *core.SetupContext) error {
	act := sc.Actions()
	if p.Replicas <= 0 {
		p.Replicas = 3
	}
	if p.StalenessDebounce <= 0 {
		p.StalenessDebounce = DefaultStalenessDebounce
	}
	if err := act.MakeExclusiveHostPools(p.App); err != nil {
		return fmt.Errorf("failover: exclusive pools for %s: %w", p.App, err)
	}
	p.mu.Lock()
	p.birth = make(map[ids.JobID]time.Time)
	p.ages = make(map[ids.JobID]map[ids.PEID]int64)
	p.mu.Unlock()
	for i := 0; i < p.Replicas; i++ {
		var params map[string]string
		if p.SubmitParams != nil {
			params = p.SubmitParams(i)
		}
		job, err := act.SubmitApplication(p.App, params)
		if err != nil {
			return fmt.Errorf("failover: submit replica %d: %w", i, err)
		}
		p.mu.Lock()
		p.jobs = append(p.jobs, job)
		p.birth[job] = act.Clock().Now()
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.active = p.jobs[0]
	p.mu.Unlock()
	p.writeStatus()
	promote := core.OncePerEpoch(
		func(ctx *core.PEFailureContext) uint64 { return ctx.Epoch },
		p.promoteFreshest)
	p.gate = p.stalenessGate()
	return sc.Subscribe(
		core.OnPEFailure(
			core.NewPEFailureScope("replicaFailures").AddApplicationFilter(p.App),
			func(ctx *core.PEFailureContext, act *core.Actions) error {
				if err := promote(ctx, act); err != nil && !errors.Is(err, core.ErrSkipped) {
					return err
				}
				return p.restartFailed(ctx, act)
			}),
		core.OnPEMetric(
			core.NewPEMetricScope("snapshotAge").
				AddApplicationFilter(p.App).
				AddPEMetric(metrics.PECheckpointAgeMs),
			p.gate))
}

// stalenessGate builds the snapshot-age handler: every delivery folds
// the observation into the per-replica staleness table, and — when
// MaxSnapshotAge is set — a guard composition re-checkpoints an active
// PE whose snapshot stays stale. The Threshold passes every anchored
// observation of the active replica (limit -1: any age above "never
// snapshotted"), so the per-PE Debounce inside sees under-limit
// deliveries too — its holds predicate checks the MaxSnapshotAge
// breach, a healthy observation resets the streak, and only
// StalenessDebounce consecutive breaching observations of the same PE
// fire the refresh. One Debounce instance per PE keeps two PEs'
// interleaved samples from advancing (or resetting) each other's
// streak.
func (p *Failover) stalenessGate() core.Handler[core.PEMetricContext] {
	if p.MaxSnapshotAge <= 0 {
		return func(ctx *core.PEMetricContext, _ *core.Actions) error {
			p.observeSnapshotAge(ctx)
			return core.ErrSkipped
		}
	}
	limitMs := float64(p.MaxSnapshotAge.Milliseconds())
	var mu sync.Mutex
	perPE := make(map[ids.PEID]core.Handler[core.PEMetricContext])
	debounced := func(ctx *core.PEMetricContext, act *core.Actions) error {
		mu.Lock()
		h := perPE[ctx.PE]
		if h == nil {
			h = core.Debounce(p.StalenessDebounce,
				func(ctx *core.PEMetricContext) bool { return float64(ctx.Value) > limitMs },
				p.refreshActiveSnapshot)
			perPE[ctx.PE] = h
		}
		mu.Unlock()
		return h(ctx, act)
	}
	return core.Threshold(
		func(ctx *core.PEMetricContext) (float64, bool) {
			age, activeReplica := p.observeSnapshotAge(ctx)
			return float64(age), activeReplica
		},
		-1, // strictly above -1 = the PE has anchored its state
		debounced)
}

// observeSnapshotAge records one lastCheckpointAgeMs observation and
// reports it together with whether it concerns the active replica. A
// negative value means the PE has no state anchor; its entry is dropped
// so the replica ranks as unknown rather than on stale data.
func (p *Failover) observeSnapshotAge(ctx *core.PEMetricContext) (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.ages[ctx.Job]
	if m == nil {
		m = make(map[ids.PEID]int64)
		p.ages[ctx.Job] = m
	}
	if ctx.Value >= 0 {
		m[ctx.PE] = ctx.Value
	} else {
		delete(m, ctx.PE)
	}
	return ctx.Value, ctx.Job == p.active
}

// refreshActiveSnapshot is the staleness gate's actuation: checkpoint
// the breaching PE of the active replica so a failover never has to
// fall back on state older than MaxSnapshotAge plus the debounce.
func (p *Failover) refreshActiveSnapshot(ctx *core.PEMetricContext, act *core.Actions) error {
	if err := act.CheckpointPE(ctx.PE); err != nil {
		return fmt.Errorf("failover: refresh snapshot of %s: %w", ctx.PE, err)
	}
	p.mu.Lock()
	p.refreshes++
	p.mu.Unlock()
	return nil
}

// promoteFreshest switches the active replica to the healthy backup with
// the freshest snapshot when the failed PE belongs to the active one;
// failures of backups skip, leaving the incident's epoch open in the
// OncePerEpoch guard for a possibly following active-replica failure.
// Replicas whose snapshot age has never been observed rank after every
// replica with a known age; ties — including the no-data-at-all case,
// e.g. a platform without a checkpoint store — fall back to the paper's
// longest-uptime order.
func (p *Failover) promoteFreshest(ctx *core.PEFailureContext, act *core.Actions) error {
	p.mu.Lock()
	if ctx.Job != p.active {
		p.mu.Unlock()
		return core.ErrSkipped
	}
	p.mu.Unlock()

	// Before the risky promotion, snapshot the demoted replica's
	// surviving PEs: whatever state they still hold becomes durable now,
	// so when this replica rejoins as a backup its recoverable state is
	// never older than this incident. Best-effort — every attempt is
	// journalled by the service, and a refused checkpoint (no store,
	// racing crash) must not block the availability actuation.
	if g, ok := act.Graph(ctx.Job); ok {
		for _, peID := range g.PEIDs() {
			if peID == ctx.PE {
				continue
			}
			if info, ok := g.PE(peID); !ok || info.State != "running" {
				continue
			}
			_ = act.CheckpointPE(peID) //orcalint:ignore actuationcheck best-effort freshness snapshot of the survivors; failover proceeds on the last checkpoint either way
		}
	}

	p.mu.Lock()
	if ctx.Job != p.active { // cannot change: delivery is single-threaded
		p.mu.Unlock()
		return core.ErrSkipped
	}
	oldActive := p.active
	best := ids.InvalidJob
	var bestAge int64
	var bestKnown bool
	var bestBirth time.Time
	for _, j := range p.jobs {
		if j == ctx.Job {
			continue
		}
		age, known := p.stalenessLocked(j)
		better := false
		switch {
		case best == ids.InvalidJob:
			better = true
		case known != bestKnown:
			better = known
		case known && age != bestAge:
			better = age < bestAge
		default:
			better = p.birth[j].Before(bestBirth)
		}
		if better {
			best, bestAge, bestKnown, bestBirth = j, age, known, p.birth[j]
		}
	}
	if best == ids.InvalidJob {
		p.mu.Unlock()
		return core.ErrSkipped
	}
	p.active = best
	p.failovers++
	p.promotionTx = ctx.TxID
	p.log = append(p.log, StatusChange{
		At: ctx.At, NewActive: best, OldActive: oldActive, Reason: ctx.Reason,
	})
	p.mu.Unlock()
	p.writeStatus()
	return nil
}

// stalenessLocked reports a replica's snapshot staleness: the maximum
// observed age across its PEs (a replica is only as recoverable as its
// stalest snapshot), ok=false when none of its PEs has reported one.
func (p *Failover) stalenessLocked(job ids.JobID) (int64, bool) {
	var worst int64
	known := false
	for _, age := range p.ages[job] {
		if !known || age > worst {
			worst, known = age, true
		}
	}
	return worst, known
}

// restartFailed restarts the failed PE; with a checkpoint store the
// fresh container restores the PE's latest snapshot, so the replica
// rejoins with its windows intact even though its uptime resets. The
// PE's recorded snapshot age is dropped until the restarted container
// reports again.
func (p *Failover) restartFailed(ctx *core.PEFailureContext, act *core.Actions) error {
	if err := act.RestartPE(ctx.PE); err != nil {
		return fmt.Errorf("failover: restart %s: %w", ctx.PE, err)
	}
	p.mu.Lock()
	if m := p.ages[ctx.Job]; m != nil {
		delete(m, ctx.PE)
	}
	p.birth[ctx.Job] = act.Clock().Now()
	p.restarts++
	p.mu.Unlock()
	return nil
}

// writeStatus renders the replica table to StatusPath (if configured),
// the file the paper's GUI polls for the "active" highlight.
func (p *Failover) writeStatus() {
	if p.StatusPath == "" {
		return
	}
	p.mu.Lock()
	var b strings.Builder
	for i, j := range p.jobs {
		status := "backup"
		if j == p.active {
			status = "active"
		}
		fmt.Fprintf(&b, "replica %d (%s): %s\n", i, j, status)
	}
	p.mu.Unlock()
	_ = os.WriteFile(p.StatusPath, []byte(b.String()), 0o644)
}

// Active returns the currently active replica's job id.
func (p *Failover) Active() ids.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Jobs returns the replica job ids in submission order.
func (p *Failover) Jobs() []ids.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ids.JobID(nil), p.jobs...)
}

// ReplicaIndex maps a job id back to its replica index, or -1.
func (p *Failover) ReplicaIndex(job ids.JobID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, j := range p.jobs {
		if j == job {
			return i
		}
	}
	return -1
}

// Failovers returns how many active-replica promotions happened.
func (p *Failover) Failovers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failovers
}

// Restarts returns how many failed PEs the policy restarted.
func (p *Failover) Restarts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restarts
}

// LastPromotionTx returns the delivery transaction id of the failure
// event whose handling last promoted a replica (0 before any
// promotion). Journal entries carrying this TxID are the actuations
// of that handling — in particular the pre-promotion CheckpointPE
// calls against the demoted replica.
func (p *Failover) LastPromotionTx() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.promotionTx
}

// SnapshotRefreshes returns how many times the staleness gate
// re-checkpointed the active replica.
func (p *Failover) SnapshotRefreshes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refreshes
}

// ReplicaStaleness reports a replica's observed snapshot staleness; ok
// is false while none of its PEs has reported a snapshot age.
func (p *Failover) ReplicaStaleness(job ids.JobID) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ms, ok := p.stalenessLocked(job)
	return time.Duration(ms) * time.Millisecond, ok
}

// Log returns the status-change history, oldest first.
func (p *Failover) Log() []StatusChange {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]StatusChange(nil), p.log...)
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}
