package policies

import (
	"fmt"
	"sync"
	"time"

	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
)

// WidthChange records one region-width actuation: when it happened, the
// transition, and the signals that justified it.
type WidthChange struct {
	At   time.Time
	From int
	To   int
	// IngestPerSec is the region ingress rate (the split PE's
	// ingestRatePerSec gauge) observed by the delivery that fired.
	IngestPerSec int64
	// QueueDepth is the region's worst operator queueSize observed in
	// the most recent metric pull round at firing time.
	QueueDepth int64
}

// Defaults for the fission routine's tunables.
const (
	// DefaultFissionMaxWidth caps auto-fission at three replicas.
	DefaultFissionMaxWidth = 3
	// DefaultFissionDebounce is how many consecutive overload
	// observations the widen gate demands before it resizes.
	DefaultFissionDebounce = 2
)

// Fission is the elastic data-parallel adaptation routine — the
// paper-native demonstration that an ORCA routine, not the dataplane,
// decides when a parallel region scales. The dataplane only mechanises
// width changes (SAM's ResizeRegion actuation); the decision lives
// here, as ordinary orchestrator logic built from the same subscription
// and guard vocabulary as every other routine.
//
// The routine submits an application containing a key-partitioned
// parallel region and watches the region's ingress: the split PE's
// ingestRatePerSec gauge is the offered load entering the region,
// independent of the current width. It also observes egressRatePerSec
// on the same PE and the application's operator queueSize gauges, so
// the recorded width changes carry the load picture that justified
// them. When the ingress rate stays above WidenAboveRate — or, when
// configured, the region's worst queue depth stays above
// WidenAboveQueue — for WidenDebounce consecutive observations, the
// routine actuates ResizeRegion to width+1, up to MaxWidth. The guard
// composition is the usual one: a Threshold anchors the observation
// and folds it into policy state, a Debounce rides out one-pull
// spikes, and an optional SuppressFor cooldown keeps a sustained
// overload from issuing a resize on every pull round while the
// previous resize is still warming up.
type Fission struct {
	// App names the registered application to submit. It must contain
	// the parallel region named by Region (an operator declared with
	// Parallel in the builder).
	App string
	// Region is the region's name — the name of the operator whose
	// declaration the compiler expanded into split/replicas/merge.
	Region string
	// SubmitParams are the submission parameters for the job.
	SubmitParams map[string]string
	// MaxWidth caps how wide the routine will grow the region;
	// default DefaultFissionMaxWidth.
	MaxWidth int
	// WidenAboveRate is the region ingress rate (tuples/sec, strictly
	// above) that counts as overload. Required.
	WidenAboveRate int64
	// WidenAboveQueue, when positive, makes a region queue depth
	// strictly above it count as overload too — the backpressure
	// signal for loads that saturate without raising the offered rate.
	WidenAboveQueue int64
	// WidenDebounce is the number of consecutive overload observations
	// required before a resize; default DefaultFissionDebounce.
	WidenDebounce int
	// Cooldown, when positive, suppresses further widening for that
	// long after a successful resize.
	Cooldown time.Duration

	// gate is the composed widen handler, built once in Setup (tests
	// drive it directly with synthetic contexts).
	gate core.Handler[core.PEMetricContext]

	mu         sync.Mutex
	job        ids.JobID
	splitPE    ids.PEID
	width      int
	widenings  int
	lastIngest int64
	lastEgress int64
	queue      int64 // worst queueSize of the newest pull epoch
	queueEpoch uint64
	log        []WidthChange
}

// Name implements core.Routine.
func (p *Fission) Name() string { return "fission" }

// Setup submits the application, locates the region's ingress PE (the
// auto-inserted split), builds the widen gate, and subscribes to the
// job's rate gauges and queue depths. Every failure — unknown
// application, missing region, rejected submission — propagates out of
// Service.Start.
func (p *Fission) Setup(sc *core.SetupContext) error {
	act := sc.Actions()
	if p.MaxWidth <= 0 {
		p.MaxWidth = DefaultFissionMaxWidth
	}
	if p.WidenDebounce <= 0 {
		p.WidenDebounce = DefaultFissionDebounce
	}
	if p.WidenAboveRate <= 0 {
		return fmt.Errorf("fission: WidenAboveRate must be positive")
	}
	app, ok := act.RegisteredApplication(p.App)
	if !ok {
		return fmt.Errorf("fission: application %q not registered", p.App)
	}
	region := app.Region(p.Region)
	if region == nil {
		return fmt.Errorf("fission: application %q has no parallel region %q", p.App, p.Region)
	}
	job, err := act.SubmitApplication(p.App, p.SubmitParams)
	if err != nil {
		return fmt.Errorf("fission: submit %s: %w", p.App, err)
	}
	splitPE, ok := act.PEOfOperator(job, region.Split)
	if !ok {
		return fmt.Errorf("fission: job %s has no PE for region ingress %q", job, region.Split)
	}
	p.mu.Lock()
	p.job, p.splitPE, p.width = job, splitPE, region.Width
	p.mu.Unlock()
	p.gate = p.widenGate()
	return sc.Subscribe(
		core.OnPEMetric(
			core.NewPEMetricScope("fissionRates").
				AddApplicationFilter(p.App).
				AddPEMetric(metrics.PEIngestRate, metrics.PEEgressRate),
			p.gate),
		core.OnOperatorMetric(
			core.NewOperatorMetricScope("fissionQueues").
				AddApplicationFilter(p.App).
				AddOperatorMetric(metrics.OpQueueSize),
			func(ctx *core.OperatorMetricContext, _ *core.Actions) error {
				p.observeQueue(ctx)
				return core.ErrSkipped
			}))
}

// widenGate builds the widen handler: every rate delivery folds into
// the policy's load picture, and only anchored ingress observations of
// the region's split PE (Threshold, limit -1: rates are never
// negative) reach the Debounce, whose holds predicate checks the
// overload condition. A healthy observation resets the streak;
// WidenDebounce consecutive overloaded ones actuate the resize,
// optionally cooled down by SuppressFor.
func (p *Fission) widenGate() core.Handler[core.PEMetricContext] {
	widen := core.Handler[core.PEMetricContext](p.widen)
	if p.Cooldown > 0 {
		widen = core.SuppressFor(p.Cooldown, widen)
	}
	debounced := core.Debounce(p.WidenDebounce,
		func(ctx *core.PEMetricContext) bool { return p.overloaded(ctx.Value) },
		widen)
	return core.Threshold(
		func(ctx *core.PEMetricContext) (float64, bool) {
			rate, ingress := p.observeRate(ctx)
			return float64(rate), ingress
		},
		-1,
		debounced)
}

// observeRate folds one rate observation into the load picture and
// reports whether it is an ingress observation of the region's split
// PE — the only deliveries the widen gate evaluates.
func (p *Fission) observeRate(ctx *core.PEMetricContext) (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ctx.Job != p.job || ctx.PE != p.splitPE {
		return ctx.Value, false
	}
	switch ctx.Metric {
	case metrics.PEIngestRate:
		p.lastIngest = ctx.Value
		return ctx.Value, true
	case metrics.PEEgressRate:
		p.lastEgress = ctx.Value
	}
	return ctx.Value, false
}

// observeQueue tracks the job's worst operator queue depth per metric
// epoch — queues from one pull round compare against each other, and a
// new round starts the high-water mark over.
func (p *Fission) observeQueue(ctx *core.OperatorMetricContext) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ctx.Job != p.job {
		return
	}
	if ctx.Epoch != p.queueEpoch {
		p.queueEpoch, p.queue = ctx.Epoch, 0
	}
	if ctx.Value > p.queue {
		p.queue = ctx.Value
	}
}

// overloaded is the widen gate's holds predicate: the ingress rate
// breaches WidenAboveRate, or (when configured) the region's newest
// worst queue depth breaches WidenAboveQueue.
func (p *Fission) overloaded(ingestRate int64) bool {
	if ingestRate > p.WidenAboveRate {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.WidenAboveQueue > 0 && p.queue > p.WidenAboveQueue
}

// widen is the actuation: grow the region by one replica, up to
// MaxWidth. At the cap it skips, leaving the debounce streak consumed
// only by real actuations.
func (p *Fission) widen(ctx *core.PEMetricContext, act *core.Actions) error {
	p.mu.Lock()
	if p.width >= p.MaxWidth {
		p.mu.Unlock()
		return core.ErrSkipped
	}
	job, from := p.job, p.width
	p.mu.Unlock()
	next := from + 1
	if err := act.ResizeRegion(job, p.Region, next); err != nil {
		return fmt.Errorf("fission: widen %s/%s to %d: %w", job, p.Region, next, err)
	}
	p.mu.Lock()
	p.width = next
	p.widenings++
	p.log = append(p.log, WidthChange{
		At: ctx.At, From: from, To: next,
		IngestPerSec: ctx.Value, QueueDepth: p.queue,
	})
	p.mu.Unlock()
	return nil
}

// Job returns the submitted job's id.
func (p *Fission) Job() ids.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.job
}

// Width returns the region width as last actuated by this routine.
func (p *Fission) Width() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.width
}

// Widenings returns how many resizes the routine has actuated.
func (p *Fission) Widenings() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.widenings
}

// Rates returns the latest observed region ingress and egress rates
// (tuples/sec).
func (p *Fission) Rates() (ingest, egress int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastIngest, p.lastEgress
}

// QueueDepth returns the worst operator queue depth observed in the
// newest metric pull round.
func (p *Fission) QueueDepth() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queue
}

// Log returns the width-change history, oldest first.
func (p *Fission) Log() []WidthChange {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]WidthChange(nil), p.log...)
}
